//! Stress and robustness: many tenants, long horizons, degenerate
//! parameters, and failure injection at the admission boundary.

use bless::{BlessDriver, BlessParams, DeployedApp};
use dnn_models::{AppModel, ModelKind, Phase};
use gpu_sim::{BufferSink, CtxKind, Gpu, GpuSpec, HostCosts, KernelDesc, RunOutcome, Simulation};
use harness::runner::{run_validated, System};
use metrics::{TraceValidator, ValidatorConfig};
use sim_core::{SimDuration, SimTime};
use workloads::{multi_workload, PaperWorkload, EIGHT_MODEL_QUOTAS};

#[test]
fn eight_tenants_sustained_load() {
    let spec = GpuSpec::a100();
    let models: Vec<AppModel> = [
        ModelKind::Vgg11,
        ModelKind::ResNet50,
        ModelKind::ResNet101,
        ModelKind::Bert,
    ]
    .iter()
    .cycle()
    .take(8)
    .map(|&m| AppModel::build(m, Phase::Inference))
    .collect();
    let ws = multi_workload(
        models,
        &EIGHT_MODEL_QUOTAS,
        PaperWorkload::MediumLoad,
        5,
        SimTime::from_secs(10),
        77,
    );
    let r = run_validated(
        &System::Bless(BlessParams::default()),
        &ws,
        &spec,
        SimTime::from_secs(600),
        None,
    );
    assert_eq!(r.outcome, RunOutcome::Completed);
    for app in 0..8 {
        assert_eq!(r.log.completed_count(app), 5, "app {app}");
    }
}

#[test]
fn tiny_squads_still_complete() {
    let spec = GpuSpec::a100();
    let params = BlessParams {
        max_kernels_per_squad: 1,
        launch_window: 1,
        ..BlessParams::default()
    };
    let profile =
        profiler::ProfiledApp::profile(&AppModel::build(ModelKind::Vgg11, Phase::Inference), &spec);
    let apps = vec![DeployedApp::new(profile, 1.0, None)];
    let driver = BlessDriver::new(apps, params);
    let mut gpu = Gpu::new(spec, HostCosts::paper());
    let num_sms = gpu.spec().num_sms;
    let sink = BufferSink::new();
    gpu.set_trace_sink(Box::new(sink.clone()));
    let arrivals = vec![gpu_sim::RequestArrival {
        app: 0,
        req: 0,
        at: SimTime::ZERO,
    }];
    let mut sim = Simulation::new(gpu, driver, arrivals);
    assert_eq!(sim.run(SimTime::from_secs(10)), RunOutcome::Completed);
    TraceValidator::new(ValidatorConfig::structural(num_sms))
        .validate(&sink.take())
        .assert_clean();
    assert_eq!(sim.driver.log.completed_count(0), 1);
    // One-kernel squads: squads == kernels.
    assert_eq!(
        sim.driver.squads_launched,
        sim.driver.apps[0].profile.kernel_count()
    );
}

#[test]
fn split_ratio_extremes_work() {
    let spec = GpuSpec::a100();
    for split in [0.0, 1.0] {
        let params = BlessParams {
            split_ratio: split,
            ..BlessParams::default()
        };
        let ws = workloads::pair_workload(
            AppModel::build(ModelKind::ResNet50, Phase::Inference),
            AppModel::build(ModelKind::ResNet50, Phase::Inference),
            (0.5, 0.5),
            PaperWorkload::HighLoad,
            5,
            SimTime::from_secs(10),
            13,
        );
        let r = run_validated(
            &System::Bless(params),
            &ws,
            &spec,
            SimTime::from_secs(120),
            None,
        );
        assert_eq!(r.outcome, RunOutcome::Completed, "split {split}");
        assert_eq!(r.log.completed_count(0), 5);
        assert_eq!(r.log.completed_count(1), 5);
    }
}

#[test]
fn memcpy_heavy_queues_complete() {
    // A queue that is mostly DMA traffic interleaved with compute.
    let mut gpu = Gpu::new(GpuSpec::a100(), HostCosts::paper());
    let ctx = gpu.create_context(CtxKind::Default).unwrap();
    let q = gpu.create_queue(ctx).unwrap();
    let mut handles = Vec::new();
    for i in 0..50 {
        handles.push(
            gpu.launch(q, KernelDesc::memcpy_h2d(format!("h2d{i}"), 1_000_000), 0)
                .unwrap(),
        );
        handles.push(
            gpu.launch(
                q,
                KernelDesc::compute(format!("k{i}"), SimDuration::from_micros(30), 60, 0.3),
                0,
            )
            .unwrap(),
        );
        handles.push(
            gpu.launch(q, KernelDesc::memcpy_d2h(format!("d2h{i}"), 100_000), 0)
                .unwrap(),
        );
    }
    gpu.drain();
    assert!(gpu.is_device_idle());
    for h in handles {
        assert!(gpu.kernel_finished_at(h).is_some());
    }
}

#[test]
fn deployment_larger_than_memory_panics_at_start() {
    // The runtime refuses (panics) when the deployment cannot fit; the
    // admission check exists to catch this beforehand.
    let spec = GpuSpec {
        memory_mib: 512,
        ..GpuSpec::a100()
    };
    let profile =
        profiler::ProfiledApp::profile(&AppModel::build(ModelKind::Bert, Phase::Inference), &spec);
    let apps = vec![DeployedApp::new(profile, 1.0, None)];
    let driver = BlessDriver::new(apps, BlessParams::default());
    let gpu = Gpu::new(spec, HostCosts::paper());
    let arrivals = vec![gpu_sim::RequestArrival {
        app: 0,
        req: 0,
        at: SimTime::ZERO,
    }];
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(move || {
        let mut sim = Simulation::new(gpu, driver, arrivals);
        sim.run(SimTime::from_secs(1))
    }));
    assert!(result.is_err(), "OOM deployment must fail loudly");
}

#[test]
fn zero_request_workload_is_a_clean_noop() {
    let spec = GpuSpec::a100();
    let profile =
        profiler::ProfiledApp::profile(&AppModel::build(ModelKind::Vgg11, Phase::Inference), &spec);
    let apps = vec![DeployedApp::new(profile, 1.0, None)];
    let driver = BlessDriver::new(apps, BlessParams::default());
    let gpu = Gpu::new(spec, HostCosts::paper());
    let mut sim = Simulation::new(gpu, driver, Vec::new());
    assert_eq!(sim.run(SimTime::from_secs(1)), RunOutcome::Completed);
    assert_eq!(sim.driver.squads_launched, 0);
}
