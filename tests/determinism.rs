//! Determinism: identical inputs give bit-identical results — the whole
//! stack (trace generation, simulation, scheduling) is replayable.

use dnn_models::{ModelKind, Phase};
use gpu_sim::GpuSpec;
use harness::cache;
use harness::runner::{run_custom_faulted, run_validated, System};
use sim_core::{FaultPlan, FaultSpec, SimDuration, SimTime};
use workloads::{pair_workload, PaperWorkload, WorkloadSet};

fn workload(seed: u64) -> WorkloadSet {
    pair_workload(
        cache::model(ModelKind::NasNet, Phase::Inference),
        cache::model(ModelKind::Bert, Phase::Inference),
        (0.4, 0.6),
        PaperWorkload::MediumLoad,
        8,
        SimTime::from_secs(10),
        seed,
    )
}

fn log_pairs(log: &metrics::RequestLog) -> Vec<(u64, u64)> {
    let mut out = Vec::new();
    for app in 0..log.apps() {
        for rec in log.records(app) {
            out.push((
                rec.arrival.as_nanos(),
                rec.completion.map_or(0, |c| c.as_nanos()),
            ));
        }
    }
    out
}

fn run_once(seed: u64, sys: &System) -> Vec<(u64, u64)> {
    let spec = GpuSpec::a100();
    // `run_validated` captures a trace and machine-checks the scheduler
    // invariants on every run; tracing is observational, so the golden
    // digests below are identical with or without it.
    let r = run_validated(sys, &workload(seed), &spec, SimTime::from_secs(300), None);
    log_pairs(&r.log)
}

#[test]
fn bless_replays_bit_identically() {
    let sys = System::Bless(bless::BlessParams::default());
    assert_eq!(run_once(42, &sys), run_once(42, &sys));
}

#[test]
fn baselines_replay_bit_identically() {
    for sys in [
        System::Gslice,
        System::Unbound,
        System::Temporal,
        System::ReefPlus,
    ] {
        assert_eq!(run_once(7, &sys), run_once(7, &sys), "{}", sys.name());
    }
}

#[test]
fn different_seeds_give_different_traces() {
    let sys = System::Bless(bless::BlessParams::default());
    assert_ne!(run_once(1, &sys), run_once(2, &sys));
}

/// FNV-1a over the request log's `(arrival, completion)` nanosecond pairs.
fn digest(records: &[(u64, u64)]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &(a, c) in records {
        for v in [a, c] {
            for byte in v.to_le_bytes() {
                h ^= byte as u64;
                h = h.wrapping_mul(0x100_0000_01b3);
            }
        }
    }
    h
}

/// Differential golden snapshot: the digests below were captured from the
/// simulation core *before* the fast-path work (incremental reallocation,
/// slot recycling, prefix-sum prediction, determiner memoization), whose
/// output was verified byte-identical to the checked-in
/// `experiments_output.txt`. Any optimization that perturbs scheduling —
/// even by one nanosecond on one request — changes a digest and fails
/// here, turning "the fast path is exact" from a claim into a regression
/// test.
#[test]
fn request_logs_match_golden_digests() {
    let golden: &[(System, u64)] = &[
        (System::Bless(bless::BlessParams::default()), GOLDEN_BLESS),
        (System::Gslice, GOLDEN_GSLICE),
        (System::Unbound, GOLDEN_UNBOUND),
        (System::Temporal, GOLDEN_TEMPORAL),
        (System::ReefPlus, GOLDEN_REEF),
    ];
    for (sys, want) in golden {
        let got = digest(&run_once(42, sys));
        assert_eq!(
            got,
            *want,
            "{} diverged from the golden request log (digest {got:#018x})",
            sys.name()
        );
    }
}

const GOLDEN_BLESS: u64 = 0x4edd27fa642dd232;
const GOLDEN_GSLICE: u64 = 0x7619303ead11c49c;
const GOLDEN_UNBOUND: u64 = 0x85678e3f84712317;
const GOLDEN_TEMPORAL: u64 = 0x9e8c7240e6bc9143;
const GOLDEN_REEF: u64 = 0x01c8aa234f32301b;

/// The fault matrix exercised by the fault-determinism tests: every
/// injector enabled at once.
fn fault_spec() -> FaultSpec {
    FaultSpec {
        num_apps: 2,
        straggler_prob: 0.05,
        straggler_factor: 3.0,
        drift_prob: 1.0,
        drift_range: (1.2, 1.6),
        crash_count: 4,
        crash_window: (SimTime::from_millis(1), SimTime::from_millis(40)),
        dma_stall_count: 3,
        dma_stall_window: (SimTime::ZERO, SimTime::from_secs(5)),
        dma_stall_len: SimDuration::from_millis(200),
        dma_slow_factor: 4.0,
        ..FaultSpec::default()
    }
}

fn run_faulted(seed: u64, plan: FaultPlan) -> (Vec<(u64, u64)>, gpu_sim::FaultCounters) {
    let spec = GpuSpec::a100();
    let ws = workload(seed);
    let apps = harness::runner::deployment(&ws, &spec, None);
    let driver = bless::BlessDriver::new(apps, bless::BlessParams::default());
    let (driver, outcome, _, counters) =
        run_custom_faulted(driver, &ws, &spec, SimTime::from_secs(300), plan);
    assert_eq!(outcome, gpu_sim::RunOutcome::Completed);
    (log_pairs(&driver.log), counters)
}

#[test]
fn identical_fault_plans_replay_bit_identically() {
    // Same (seed, FaultSpec) -> byte-identical fault schedule...
    let spec = fault_spec();
    let a = FaultPlan::build(42, &spec);
    let b = FaultPlan::build(42, &spec);
    assert_eq!(a, b, "FaultPlan::build must be a pure function");
    assert_eq!(a.crashes(), b.crashes());
    assert_eq!(a.dma_stalls(), b.dma_stalls());

    // ...and a byte-identical faulted request log, fault for fault.
    let (log1, c1) = run_faulted(42, a);
    let (log2, c2) = run_faulted(42, b);
    assert_eq!(log1, log2, "faulted runs must replay bit-identically");
    assert_eq!(c1, c2, "fault counters must replay bit-identically");
    assert!(c1.crashes > 0, "the matrix must actually inject crashes");

    // A different fault seed perturbs the schedule.
    let c = FaultPlan::build(43, &spec);
    assert_ne!(FaultPlan::build(42, &fault_spec()), c);
}

#[test]
fn none_plan_is_byte_identical_to_no_plan() {
    // Installing `FaultPlan::none()` must leave the engine on the exact
    // fast path: the request log digests match the golden BLESS digest
    // captured with no plan installed at all.
    let (log, counters) = run_faulted(42, FaultPlan::none());
    assert_eq!(
        digest(&log),
        GOLDEN_BLESS,
        "FaultPlan::none() perturbed the no-fault schedule"
    );
    assert_eq!(counters, gpu_sim::FaultCounters::default());
}

/// The parallel fleet runner is a pure reordering of the sequential one:
/// at a fixed seed, every GPU's request-log digest and trace-stream digest
/// must be byte-identical between the two, worker pool or not.
#[test]
fn cluster_parallel_matches_sequential_byte_for_byte() {
    use cluster::{run_cluster_opts, ClusterOptions};
    use workloads::{ArrivalPattern, TenantSpec};

    let spec = GpuSpec::a100();
    let kinds = [
        ModelKind::Vgg11,
        ModelKind::ResNet50,
        ModelKind::ResNet101,
        ModelKind::Bert,
    ];
    let tenants: Vec<TenantSpec> = (0..8)
        .map(|i| {
            TenantSpec::new(
                cache::model(kinds[i % kinds.len()], Phase::Inference),
                0.5,
                ArrivalPattern::ClosedLoop {
                    think: SimDuration::from_millis(10),
                    count: 4,
                },
            )
        })
        .collect();
    let profiles: Vec<_> = (0..8)
        .map(|i| cache::profile(kinds[i % kinds.len()], Phase::Inference, &spec))
        .collect();
    let ws = WorkloadSet { tenants, seed: 42 };
    let params = bless::BlessParams::default();
    let horizon = SimTime::from_secs(120);

    // Force a real worker pool on the parallel side — on a single-core
    // host the auto-sized pool would degrade to the sequential loop and
    // the differential would compare it to itself.
    let par_opts = ClusterOptions {
        capture_trace: true,
        workers: Some(3),
        ..ClusterOptions::default()
    };
    let seq_opts = ClusterOptions {
        parallel: false,
        capture_trace: true,
        ..ClusterOptions::default()
    };
    let par =
        run_cluster_opts(&ws, profiles.clone(), 8, &spec, &params, horizon, &par_opts).unwrap();
    let seq = run_cluster_opts(&ws, profiles, 8, &spec, &params, horizon, &seq_opts).unwrap();

    assert_eq!(par.placement, seq.placement);
    assert!(par.placement.gpus_used > 1, "fixture must span GPUs");
    for (p, s) in par.gpus.iter().zip(&seq.gpus) {
        assert_eq!(p.gpu, s.gpu);
        let (pd, sd) = (digest(&log_pairs(&p.log)), digest(&log_pairs(&s.log)));
        assert_eq!(pd, sd, "gpu {}: request-log digest diverged", p.gpu);
        // Trace streams compared as serialized bytes, like the golden
        // trace: any reordering or payload drift shows up here.
        let (pt, st) = (
            fnv_bytes(sim_core::trace::to_jsonl(&p.trace).as_bytes()),
            fnv_bytes(sim_core::trace::to_jsonl(&s.trace).as_bytes()),
        );
        assert_eq!(pt, st, "gpu {}: trace digest diverged", p.gpu);
        assert!(!p.trace.is_empty(), "gpu {} captured no events", p.gpu);
    }
}

/// FNV-1a over raw bytes (the request-log [`digest`] works on pairs).
fn fnv_bytes(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

#[test]
fn model_generation_is_stable_across_calls() {
    // The model zoo must be a pure function of (kind, phase).
    for kind in [ModelKind::Vgg11, ModelKind::NasNet, ModelKind::AlexNet] {
        let a = dnn_models::AppModel::build(kind, Phase::Training);
        let b = dnn_models::AppModel::build(kind, Phase::Training);
        assert_eq!(a.kernels.len(), b.kernels.len());
        for (x, y) in a.kernels.iter().zip(&b.kernels) {
            assert_eq!(x.work.to_bits(), y.work.to_bits(), "bit-identical work");
            assert_eq!(x.max_sms, y.max_sms);
        }
    }
}
