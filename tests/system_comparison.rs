//! Cross-system integration: the paper's headline orderings hold on a
//! shared workload, and every system conserves requests.

use dnn_models::{ModelKind, Phase};
use gpu_sim::{GpuSpec, RunOutcome};
use harness::cache;
use harness::runner::{run_validated, System};
use sim_core::SimTime;
use workloads::{pair_workload, PaperWorkload};

fn workload(seed: u64) -> workloads::WorkloadSet {
    pair_workload(
        cache::model(ModelKind::Vgg11, Phase::Inference),
        cache::model(ModelKind::ResNet50, Phase::Inference),
        (1.0 / 3.0, 2.0 / 3.0),
        PaperWorkload::LowLoad,
        12,
        SimTime::from_secs(10),
        seed,
    )
}

#[test]
fn every_system_conserves_requests() {
    let spec = GpuSpec::a100();
    let mut systems = vec![System::Iso, System::Zico, System::Tally];
    systems.extend(System::inference_set());
    for sys in systems {
        let r = run_validated(&sys, &workload(1), &spec, SimTime::from_secs(300), None);
        assert_eq!(r.outcome, RunOutcome::Completed, "{}", sys.name());
        for app in 0..2 {
            assert_eq!(r.log.completed_count(app), 12, "{} app {app}", sys.name());
        }
        assert!(
            r.utilization > 0.0 && r.utilization <= 1.0,
            "{}",
            sys.name()
        );
    }
}

#[test]
fn figure_4b_ordering() {
    // BLESS < UNBOUND-ish < REEF+ < GSLICE ~ ISO < MIG, TEMPORAL worst-ish:
    // we assert the paper's load-bearing relations rather than the full
    // chain (absolute positions shift with the simulator's calibration).
    let spec = GpuSpec::a100();
    let horizon = SimTime::from_secs(300);
    let get = |sys: &System| run_validated(sys, &workload(2), &spec, horizon, None).mean_ms();

    let bless = get(&System::Bless(bless::BlessParams::default()));
    let gslice = get(&System::Gslice);
    let temporal = get(&System::Temporal);
    let mig = get(&System::Mig);
    let reef = get(&System::ReefPlus);
    let iso = get(&System::Iso);

    assert!(bless < gslice, "BLESS {bless:.2} vs GSLICE {gslice:.2}");
    assert!(
        bless < temporal,
        "BLESS {bless:.2} vs TEMPORAL {temporal:.2}"
    );
    assert!(bless < mig, "BLESS {bless:.2} vs MIG {mig:.2}");
    // REEF+ rides batch-blocking time separation at low load in our
    // substrate and can land slightly ahead on raw latency (the paper
    // measures it 27% behind); it loses decisively on quota deviation
    // (see `deviation_ordering_under_uneven_quotas`) and at higher loads.
    assert!(bless < reef * 1.25, "BLESS {bless:.2} vs REEF+ {reef:.2}");
    assert!(
        bless < iso,
        "bubble squeezing beats the ISO targets: {bless:.2} vs {iso:.2}"
    );
    // MIG rounds 1/3 down to 2 GPCs: strictly worse than GSLICE's exact cap.
    assert!(mig > gslice, "MIG {mig:.2} vs GSLICE {gslice:.2}");
}

#[test]
fn deviation_ordering_under_uneven_quotas() {
    let spec = GpuSpec::a100();
    let horizon = SimTime::from_secs(300);
    let dev = |sys: &System| {
        run_validated(sys, &workload(3), &spec, horizon, None)
            .deviation()
            .as_millis_f64()
    };
    let bless = dev(&System::Bless(bless::BlessParams::default()));
    let temporal = dev(&System::Temporal);
    let reef = dev(&System::ReefPlus);
    assert!(bless < 1.0, "BLESS deviation {bless:.2} ms");
    assert!(temporal > bless, "TEMPORAL {temporal:.2} deviates more");
    assert!(reef > bless, "REEF+ {reef:.2} cannot honor uneven quotas");
}

#[test]
fn iso_matches_profiled_targets() {
    let spec = GpuSpec::a100();
    let r = run_validated(
        &System::Iso,
        &workload(4),
        &spec,
        SimTime::from_secs(300),
        None,
    );
    for app in 0..2 {
        let mean = r.log.stats(app).mean.unwrap().as_nanos() as f64;
        let target = r.iso_targets[app].as_nanos() as f64;
        assert!(
            (mean - target).abs() / target < 0.1,
            "ISO run must reproduce the profiled isolated latency"
        );
    }
}

#[test]
fn bless_vs_gslice_is_seed_robust() {
    // The headline win must not be a seed artifact.
    let spec = GpuSpec::a100();
    let horizon = SimTime::from_secs(300);
    let mut wins = 0;
    for seed in 10..15 {
        let b = run_validated(
            &System::Bless(bless::BlessParams::default()),
            &workload(seed),
            &spec,
            horizon,
            None,
        )
        .mean_ms();
        let g = run_validated(&System::Gslice, &workload(seed), &spec, horizon, None).mean_ms();
        if b < g {
            wins += 1;
        }
    }
    assert_eq!(wins, 5, "BLESS must beat GSLICE on every seed");
}

/// The Azure-like burst mix: sparse arrivals with bursts, the shape where
/// priority isolation matters most (and where temporal slicing makes the
/// priority tenant wait out whole slices).
fn burst_workload(seed: u64) -> workloads::WorkloadSet {
    pair_workload(
        cache::model(ModelKind::Vgg11, Phase::Inference),
        cache::model(ModelKind::ResNet50, Phase::Inference),
        (0.5, 0.5),
        PaperWorkload::TraceAzure,
        0,
        SimTime::from_secs(2),
        seed,
    )
}

#[test]
fn tally_priority_tail_beats_temporal_on_bursts() {
    // Tally's contract: the priority tenant (app 0) never waits on
    // best-effort work beyond the throttled slice, so its tail latency is
    // no worse than under round-robin temporal slicing. `run_validated`
    // also machine-checks both traces against the scheduler invariants.
    let spec = GpuSpec::a100();
    let horizon = SimTime::from_secs(300);
    let tally = run_validated(&System::Tally, &burst_workload(7), &spec, horizon, None);
    let temporal = run_validated(&System::Temporal, &burst_workload(7), &spec, horizon, None);
    assert_eq!(tally.outcome, RunOutcome::Completed);
    let p99 = |r: &harness::runner::RunResult| r.log.stats(0).p99.expect("priority app ran");
    assert!(
        p99(&tally) <= p99(&temporal),
        "priority p99 {:?} vs temporal {:?}",
        p99(&tally),
        p99(&temporal)
    );
}

#[test]
fn tally_loses_no_best_effort_request() {
    // Throttling is not starvation: every best-effort request arriving
    // during priority bursts still completes.
    let spec = GpuSpec::a100();
    for seed in [8, 9] {
        let ws = burst_workload(seed);
        let arrived: Vec<usize> = (0..2)
            .map(|app| {
                ws.initial_arrivals()
                    .iter()
                    .filter(|a| a.app == app)
                    .count()
            })
            .collect();
        let r = run_validated(&System::Tally, &ws, &spec, SimTime::from_secs(300), None);
        assert_eq!(r.outcome, RunOutcome::Completed, "seed {seed}");
        for app in 0..2 {
            assert!(
                r.log.completed_count(app) >= arrived[app],
                "seed {seed} app {app}: {} completed of {} initial arrivals",
                r.log.completed_count(app),
                arrived[app]
            );
        }
    }
}

#[test]
fn graph_mode_preserves_results() {
    // §6.10: scheduling at CUDA-graph granularity must serve the same
    // workload correctly with comparable latency.
    let spec = GpuSpec::a100();
    let horizon = SimTime::from_secs(300);
    let kernel_mode = run_validated(
        &System::Bless(bless::BlessParams::default()),
        &workload(6),
        &spec,
        horizon,
        None,
    );
    let graph_mode = run_validated(
        &System::Bless(bless::BlessParams {
            graph_granularity: 8,
            ..bless::BlessParams::default()
        }),
        &workload(6),
        &spec,
        horizon,
        None,
    );
    assert_eq!(graph_mode.outcome, RunOutcome::Completed);
    for app in 0..2 {
        assert_eq!(graph_mode.log.completed_count(app), 12);
    }
    assert!(
        graph_mode.mean_ms() < kernel_mode.mean_ms() * 1.15,
        "graphs {:.2} vs kernels {:.2}",
        graph_mode.mean_ms(),
        kernel_mode.mean_ms()
    );
}
