//! Differential twin of the serving front-end (DESIGN.md §5l): the BLESS
//! daemon replaying a closed arrival trace through the lock-free ingest
//! path must produce a request log *byte-identical* (FNV-1a digest) to
//! the batch path handed the same arrivals up front — at any producer
//! worker count — and the digest itself is pinned as a golden value.

use bless::{BlessDriver, BlessParams, DeployedApp, IngestConfig, RateLimit, ServeDaemon};
use dnn_models::{ModelKind, Phase};
use gpu_sim::{BufferSink, Gpu, GpuSpec, HostCosts, RequestArrival, RunOutcome, Simulation};
use harness::cache;
use metrics::{TraceValidator, ValidatorConfig};
use profiler::AdmissionPolicy;
use sim_core::trace::TraceEvent;
use sim_core::{SimDuration, SimRng, SimTime};
use workloads::ArrivalPattern;

/// Request-log digest of the fixture workload, identical for the batch
/// path and the daemon at every worker count. Pinned: any change to the
/// scheduler, the simulator, or the ingest handoff that shifts a single
/// timestamp shows up here.
const GOLDEN_SERVE_DIGEST: u64 = 0x942b_d0dd_6a1e_f500;

const TENANTS: usize = 4;
const CAPACITY_MIB: u64 = 80 * 1024;

fn deployed() -> Vec<DeployedApp> {
    let spec = GpuSpec::a100();
    let kinds = [
        ModelKind::Vgg11,
        ModelKind::ResNet50,
        ModelKind::Bert,
        ModelKind::NasNet,
    ];
    kinds
        .iter()
        .map(|&k| {
            DeployedApp::new(
                cache::profile(k, Phase::Inference, &spec),
                1.0 / TENANTS as f64,
                None,
            )
        })
        .collect()
}

/// The closed fixture trace: per-tenant Poisson arrival times, seeded.
fn offered_times() -> Vec<Vec<SimTime>> {
    (0..TENANTS)
        .map(|app| {
            let pattern = ArrivalPattern::Poisson {
                mean_interval: SimDuration::from_millis(3),
                horizon: SimTime::from_millis(40),
            };
            pattern
                .initial_arrivals(app, &mut SimRng::new(42 + app as u64))
                .into_iter()
                .map(|a| a.at)
                .collect()
        })
        .collect()
}

fn horizon() -> SimTime {
    SimTime::from_secs(10)
}

/// Batch path: all arrivals handed to the simulation up front,
/// app-major so the stable sort's tie order matches the daemon's
/// lowest-tenant-first rule.
fn batch_digest() -> u64 {
    let times = offered_times();
    let mut arrivals = Vec::new();
    for (app, ts) in times.iter().enumerate() {
        arrivals.extend(
            ts.iter()
                .enumerate()
                .map(|(req, &at)| RequestArrival { app, req, at }),
        );
    }
    let gpu = Gpu::new(GpuSpec::a100(), HostCosts::paper());
    let driver = BlessDriver::new(deployed(), BlessParams::default());
    let mut sim = Simulation::new(gpu, driver, arrivals);
    assert_eq!(sim.run(horizon()), RunOutcome::Completed);
    sim.driver.log.digest()
}

/// Daemon path: the same closed trace pushed through the SPSC rings by
/// `workers` producer threads (streams partitioned round-robin), pumped
/// and admitted live against the virtual clock.
fn daemon_digest(workers: usize, capture_trace: bool) -> (u64, Vec<TraceEvent>) {
    let gpu = Gpu::new(GpuSpec::a100(), HostCosts::paper());
    let (mut daemon, streams) = ServeDaemon::new(
        deployed(),
        BlessParams::default(),
        gpu,
        &IngestConfig::default(),
        CAPACITY_MIB,
        &AdmissionPolicy::default(),
    )
    .expect("fixture deployment must pass placement admission");
    let buf = BufferSink::new();
    if capture_trace {
        daemon.sim_mut().gpu.set_trace_sink(Box::new(buf.clone()));
    }
    let times = offered_times();

    // Partition tenant streams round-robin over the producer workers.
    let mut buckets: Vec<Vec<(Vec<SimTime>, bless::TenantStream)>> =
        (0..workers).map(|_| Vec::new()).collect();
    for (app, stream) in streams.into_iter().enumerate() {
        buckets[app % workers].push((times[app].clone(), stream));
    }

    std::thread::scope(|s| {
        for bucket in buckets {
            s.spawn(move || {
                // Interleave the worker's streams arrival-by-arrival so
                // rings fill in a wall-clock order unrelated to virtual
                // time — the determinism contract must not care.
                let mut cursors: Vec<(std::vec::IntoIter<SimTime>, bless::TenantStream)> = bucket
                    .into_iter()
                    .map(|(ts, st)| (ts.into_iter(), st))
                    .collect();
                loop {
                    let mut any = false;
                    for (it, st) in cursors.iter_mut() {
                        if let Some(at) = it.next() {
                            st.offer_blocking(at);
                            any = true;
                        }
                    }
                    if !any {
                        break;
                    }
                }
                for (_, st) in cursors {
                    st.close();
                }
            });
        }
        let outcome = daemon.run_to_completion(horizon());
        assert_eq!(outcome, RunOutcome::Completed);
    });
    let digest = daemon.sim().driver.log.digest();
    (digest, buf.take())
}

#[test]
fn daemon_matches_batch_at_any_worker_count() {
    let batch = batch_digest();
    assert_eq!(
        batch, GOLDEN_SERVE_DIGEST,
        "batch-path digest drifted from the pinned golden: {batch:#018x}"
    );
    for workers in [1usize, 2, 4] {
        let (daemon, _) = daemon_digest(workers, false);
        assert_eq!(
            daemon, batch,
            "daemon digest diverged from batch at {workers} producer worker(s)"
        );
    }
}

#[test]
fn daemon_trace_satisfies_ingest_invariants() {
    let (digest, events) = daemon_digest(2, true);
    assert_eq!(digest, GOLDEN_SERVE_DIGEST);
    // Every offered request must be admitted (no limits configured) and
    // handed to the scheduler at its admission instant.
    let admitted = events
        .iter()
        .filter(|e| matches!(e, TraceEvent::RequestAdmitted { .. }))
        .count();
    let total_offered: usize = offered_times().iter().map(Vec::len).sum();
    assert_eq!(admitted, total_offered);
    assert!(!events
        .iter()
        .any(|e| matches!(e, TraceEvent::RequestShed { .. })));
    TraceValidator::new(ValidatorConfig::structural(GpuSpec::a100().num_sms))
        .validate(&events)
        .assert_clean();
}

#[test]
fn rate_limited_daemon_conserves_every_request() {
    let gpu = Gpu::new(GpuSpec::a100(), HostCosts::paper());
    let cfg = IngestConfig {
        rate: Some(RateLimit {
            tokens_per_sec: 150,
            burst: 1,
        }),
        max_outstanding: Some(4),
        ..IngestConfig::default()
    };
    let (mut daemon, streams) = ServeDaemon::new(
        deployed(),
        BlessParams::default(),
        gpu,
        &cfg,
        CAPACITY_MIB,
        &AdmissionPolicy::default(),
    )
    .expect("fixture deployment must pass placement admission");
    let buf = BufferSink::new();
    daemon.sim_mut().gpu.set_trace_sink(Box::new(buf.clone()));
    let times = offered_times();
    for (app, stream) in streams.into_iter().enumerate() {
        let mut stream = stream;
        for &at in &times[app] {
            stream.offer_blocking(at);
        }
        stream.close();
    }
    assert_eq!(daemon.run_to_completion(horizon()), RunOutcome::Completed);
    let mut total_shed = 0;
    for app in 0..TENANTS {
        let st = daemon.tenant_stats(app);
        assert_eq!(st.offered as usize, times[app].len());
        assert_eq!(
            st.admitted + st.shed(),
            st.offered,
            "tenant {app}: admitted + shed must equal offered"
        );
        total_shed += st.shed();
    }
    assert!(total_shed > 0, "fixture must actually exercise shedding");
    TraceValidator::new(ValidatorConfig::structural(GpuSpec::a100().num_sms))
        .validate(&buf.take())
        .assert_clean();
}
