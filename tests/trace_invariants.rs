//! Trace-driven invariant testing (DESIGN.md §5e).
//!
//! Every run here is captured as a structured trace and machine-checked:
//!
//! * **Golden trace** — the BLESS NasNet+BERT pair at seed 42 must
//!   produce a byte-identical JSONL trace on every run; divergence fails
//!   with the first differing event, and a checked-in digest pins the
//!   stream across commits (block digests localize a mismatch).
//! * **Differential** — BLESS and the baselines all satisfy the shared
//!   structural invariants (no SM oversubscription, per-queue FIFO,
//!   monotone time); BLESS additionally satisfies the squad invariants
//!   (co-residency, split discipline) and directionally beats temporal
//!   sharing on bubble time.
//! * **Faults** — the full fault matrix replays under the validator with
//!   zero structural violations.

use dnn_models::{ModelKind, Phase};
use gpu_sim::{BufferSink, Gpu, GpuSpec, HostCosts, RunOutcome, Simulation, TraceEvent};
use harness::cache;
use harness::runner::{deployment, run_system_traced, run_validated, System};
use metrics::{TraceCounters, TraceValidator, ValidatorConfig};
use sim_core::trace::to_jsonl;
use sim_core::{FaultPlan, FaultSpec, SimDuration, SimTime};
use workloads::{pair_workload, PaperWorkload, WorkloadSet};

fn workload(seed: u64) -> WorkloadSet {
    pair_workload(
        cache::model(ModelKind::NasNet, Phase::Inference),
        cache::model(ModelKind::Bert, Phase::Inference),
        (0.4, 0.6),
        PaperWorkload::MediumLoad,
        8,
        SimTime::from_secs(10),
        seed,
    )
}

fn bless() -> System {
    System::Bless(bless::BlessParams::default())
}

fn trace_of(sys: &System, seed: u64) -> (harness::RunResult, Vec<TraceEvent>) {
    let spec = GpuSpec::a100();
    let (r, events) = run_system_traced(sys, &workload(seed), &spec, SimTime::from_secs(300), None);
    assert_eq!(r.outcome, RunOutcome::Completed, "{}", sys.name());
    (r, events)
}

/// FNV-1a over a byte slice.
fn fnv(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

// ---------------------------------------------------------------------------
// Golden trace
// ---------------------------------------------------------------------------

/// Events per digest block: block digests localize a golden mismatch to a
/// window of the stream instead of a bare "digest changed".
const BLOCK: usize = 8192;

/// Golden digest of the full JSONL trace of BLESS on the NasNet+BERT pair
/// at seed 42 (`GOLDEN_EVENTS` events), plus per-block digests.
/// Regenerate with:
/// `cargo test --test trace_invariants -- --ignored print_golden_trace_digests --nocapture`
const GOLDEN_EVENTS: usize = 27735;
const GOLDEN_TRACE: u64 = 0x57241a777434abe1;
const GOLDEN_BLOCKS: &[u64] = &[
    0xef5614e89cdc6bed,
    0x8ad1da39db92801d,
    0x69ce9a2db228c04f,
    0xfb9c4752361e830f,
];

fn block_digests(events: &[TraceEvent]) -> Vec<u64> {
    events
        .chunks(BLOCK)
        .map(|c| fnv(to_jsonl(c).as_bytes()))
        .collect()
}

#[test]
#[ignore = "helper: prints the golden constants for this machine-independent stream"]
fn print_golden_trace_digests() {
    let (_, events) = trace_of(&bless(), 42);
    println!("const GOLDEN_EVENTS: usize = {};", events.len());
    println!(
        "const GOLDEN_TRACE: u64 = {:#018x};",
        fnv(to_jsonl(&events).as_bytes())
    );
    let blocks = block_digests(&events);
    println!("const GOLDEN_BLOCKS: &[u64] = &[");
    for b in blocks {
        println!("    {b:#018x},");
    }
    println!("];");
}

#[test]
fn bless_trace_is_byte_identical_across_runs() {
    let (_, a) = trace_of(&bless(), 42);
    let (_, b) = trace_of(&bless(), 42);
    // Event-level comparison first: on divergence, show the first
    // differing event rather than a useless byte offset.
    if a != b {
        let i = a
            .iter()
            .zip(&b)
            .position(|(x, y)| x != y)
            .unwrap_or(a.len().min(b.len()));
        panic!(
            "trace diverged at event #{i} of {}/{}:\n  run 1: {}\n  run 2: {}",
            a.len(),
            b.len(),
            a.get(i).map(|e| e.to_json()).unwrap_or_default(),
            b.get(i).map(|e| e.to_json()).unwrap_or_default(),
        );
    }
    assert_eq!(
        to_jsonl(&a),
        to_jsonl(&b),
        "equal events must serialize to identical bytes"
    );
}

#[test]
fn bless_trace_matches_golden_digest() {
    let (_, events) = trace_of(&bless(), 42);
    let got = fnv(to_jsonl(&events).as_bytes());
    if got == GOLDEN_TRACE && events.len() == GOLDEN_EVENTS {
        return;
    }
    // Localize: compare block digests and report the first divergent
    // window with its first event, instead of only "digest mismatch".
    let blocks = block_digests(&events);
    let first_bad = blocks
        .iter()
        .zip(GOLDEN_BLOCKS)
        .position(|(g, w)| g != w)
        .unwrap_or_else(|| blocks.len().min(GOLDEN_BLOCKS.len()));
    let sample = events
        .get(first_bad * BLOCK)
        .map(|e| e.to_json())
        .unwrap_or_default();
    panic!(
        "golden trace mismatch: {} events (golden {GOLDEN_EVENTS}), digest {got:#018x} \
         (golden {GOLDEN_TRACE:#018x}); first divergent block #{first_bad} \
         (events {}..{}), first event there:\n  {sample}",
        events.len(),
        first_bad * BLOCK,
        ((first_bad + 1) * BLOCK).min(events.len()),
    );
}

// ---------------------------------------------------------------------------
// Differential: shared invariants across systems
// ---------------------------------------------------------------------------

#[test]
fn all_systems_pass_shared_invariants() {
    let spec = GpuSpec::a100();
    for sys in [
        bless(),
        System::Temporal,
        System::Gslice,
        System::Zico,
        System::ReefPlus,
    ] {
        let (r, events) = trace_of(&sys, 42);
        assert!(!events.is_empty(), "{} produced no trace", sys.name());
        let config = ValidatorConfig {
            num_sms: spec.num_sms,
            iso_targets: Some(r.iso_targets.iter().map(|d| d.as_nanos() as f64).collect()),
            fairness_spread: None,
            max_recovery_ns: None,
        };
        let report = TraceValidator::new(config).validate(&events);
        assert!(
            report.is_clean(),
            "{}: {} violation(s), first: {}",
            sys.name(),
            report.violations.len(),
            report.violations[0]
        );
        // Only BLESS emits squad events; the squad invariants must have
        // actually been exercised there.
        assert_eq!(
            report.squad_checks_ran,
            matches!(sys, System::Bless(_)),
            "{}",
            sys.name()
        );
    }
}

#[test]
fn bless_trace_exercises_every_squad_invariant() {
    let (_, events) = trace_of(&bless(), 42);
    let mut squads = 0usize;
    let mut semi_entries = 0usize;
    let mut restricted_launches = 0usize;
    let mut free_launches = 0usize;
    let mut partitions = 0usize;
    let mut request_dones = 0usize;
    for ev in &events {
        match ev {
            TraceEvent::SquadFormed { entries, .. } => {
                squads += 1;
                semi_entries += entries.iter().filter(|e| e.mode == 0).count();
            }
            TraceEvent::KernelLaunch { restricted, .. } => {
                if *restricted {
                    restricted_launches += 1;
                } else {
                    free_launches += 1;
                }
            }
            TraceEvent::PartitionSet { .. } => partitions += 1,
            TraceEvent::RequestDone { .. } => request_dones += 1,
            _ => {}
        }
    }
    assert!(squads > 0, "no squads formed");
    assert!(semi_entries > 0, "semi-spatial split never exercised");
    assert!(
        restricted_launches > 0 && free_launches > 0,
        "both queue sides must be used (restricted {restricted_launches}, free {free_launches})"
    );
    assert!(partitions > 0, "no SM partitions set");
    assert_eq!(request_dones, 16, "every request completion is traced");
}

#[test]
fn bless_bubble_time_at_most_temporal() {
    let (_, bless_ev) = trace_of(&bless(), 42);
    let (_, temporal_ev) = trace_of(&System::Temporal, 42);
    let b = TraceCounters::from_events(&bless_ev);
    let t = TraceCounters::from_events(&temporal_ev);
    // The headline claim, checked directionally on the trace itself:
    // bubbleless sharing spends less busy time with an idle device than
    // pure temporal sharing.
    assert!(
        b.bubble_ns <= t.bubble_ns,
        "BLESS bubbles {} ns vs TEMPORAL {} ns",
        b.bubble_ns,
        t.bubble_ns
    );
    // And it actually overlaps tenants, which temporal sharing cannot.
    assert!(
        b.overlap_fraction() > t.overlap_fraction(),
        "BLESS overlap {:.3} vs TEMPORAL {:.3}",
        b.overlap_fraction(),
        t.overlap_fraction()
    );
}

#[test]
fn derived_counters_are_consistent() {
    let (_, events) = trace_of(&bless(), 42);
    let c = TraceCounters::from_events(&events);
    assert!(c.busy_ns > 0);
    assert!(c.bubble_ns <= c.busy_ns);
    assert!(c.overlap_ns <= c.busy_ns);
    assert!(c.squads > 0);
    let err = c.prediction_error.expect("determiner predictions present");
    assert!(
        err.is_finite() && err >= 0.0,
        "prediction error must be a finite ratio, got {err}"
    );
    for (i, t) in c.tenants.iter().enumerate() {
        assert!(
            t.completed <= t.launched,
            "tenant {i}: {} completed > {} launched",
            t.completed,
            t.launched
        );
        assert_eq!(t.failed, 0, "tenant {i}: failures without fault injection");
    }
}

// ---------------------------------------------------------------------------
// Faults under the validator
// ---------------------------------------------------------------------------

/// The determinism suite's full fault matrix: every injector enabled.
fn fault_spec() -> FaultSpec {
    FaultSpec {
        num_apps: 2,
        straggler_prob: 0.05,
        straggler_factor: 3.0,
        drift_prob: 1.0,
        drift_range: (1.2, 1.6),
        crash_count: 4,
        crash_window: (SimTime::from_millis(1), SimTime::from_millis(40)),
        dma_stall_count: 3,
        dma_stall_window: (SimTime::ZERO, SimTime::from_secs(5)),
        dma_stall_len: SimDuration::from_millis(200),
        dma_slow_factor: 4.0,
        ..FaultSpec::default()
    }
}

#[test]
fn faulted_run_passes_structural_invariants() {
    let spec = GpuSpec::a100();
    let ws = workload(42);
    let apps = deployment(&ws, &spec, None);
    let driver = bless::BlessDriver::new(apps, bless::BlessParams::default());

    let mut gpu = Gpu::new(spec.clone(), HostCosts::paper());
    gpu.set_slot_recycling(true);
    gpu.set_fault_plan(FaultPlan::build(42, &fault_spec()));
    let sink = BufferSink::new();
    gpu.set_trace_sink(Box::new(sink.clone()));
    let mut sim = Simulation::new(gpu, driver, ws.initial_arrivals())
        .with_notice_handler(ws.notice_handler());
    assert_eq!(sim.run(SimTime::from_secs(300)), RunOutcome::Completed);
    let events = sink.take();

    // Structural invariants only: fault injection legitimately skews
    // per-tenant progress, so fairness is not asserted here.
    let report = TraceValidator::new(ValidatorConfig::structural(spec.num_sms)).validate(&events);
    report.assert_clean();

    // The fault path itself must be visible in the trace.
    let crashes = events
        .iter()
        .filter(|e| matches!(e, TraceEvent::CrashInjected { .. }))
        .count();
    let retries = events
        .iter()
        .filter(|e| matches!(e, TraceEvent::RetrySubmitted { .. }))
        .count();
    let stalls = events
        .iter()
        .filter(|e| matches!(e, TraceEvent::DmaStall { .. }))
        .count();
    assert!(crashes > 0, "matrix must inject crashes");
    assert!(retries > 0, "crashed kernels must be retried");
    assert!(stalls > 0, "matrix must inject DMA stalls");
}

// ---------------------------------------------------------------------------
// Tracing must be observational
// ---------------------------------------------------------------------------

#[test]
fn tracing_does_not_perturb_the_schedule() {
    // The request log of a traced run is bit-identical to an untraced
    // one: tracing is purely observational.
    let spec = GpuSpec::a100();
    let sys = bless();
    let plain = harness::run_system(&sys, &workload(42), &spec, SimTime::from_secs(300), None);
    let (traced, events) = trace_of(&sys, 42);
    assert!(!events.is_empty());
    for app in 0..2 {
        let a: Vec<_> = plain.log.records(app).to_vec();
        let b: Vec<_> = traced.log.records(app).to_vec();
        assert_eq!(a.len(), b.len(), "app {app}");
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.arrival, y.arrival, "app {app}");
            assert_eq!(x.completion, y.completion, "app {app}");
        }
    }
}

#[test]
fn run_validated_accepts_the_reference_workloads() {
    let spec = GpuSpec::a100();
    let r = run_validated(&bless(), &workload(7), &spec, SimTime::from_secs(300), None);
    assert_eq!(r.outcome, RunOutcome::Completed);
    assert_eq!(r.log.completed_count(0), 8);
    assert_eq!(r.log.completed_count(1), 8);
}
