//! End-to-end integration: profile → admit → deploy → serve → measure,
//! across all workspace crates.

use bless::{BlessDriver, BlessParams, DeployedApp};
use dnn_models::{AppModel, ModelKind, Phase};
use gpu_sim::{BufferSink, Gpu, GpuSpec, HostCosts, RunOutcome, Simulation};
use metrics::{TraceValidator, ValidatorConfig};
use profiler::{admit, AdmissionPolicy, ProfiledApp};
use sim_core::SimTime;
use std::sync::Arc;
use workloads::{pair_workload, PaperWorkload};

fn profiled(kind: ModelKind) -> Arc<ProfiledApp> {
    // Shared process-wide cache: avoids re-running the 19 profiling
    // passes in every test.
    harness::cache::profile(kind, Phase::Inference, &GpuSpec::a100())
}

/// Installs a trace sink on `gpu` so the run can be machine-checked
/// against the scheduler invariants afterwards (DESIGN.md §5e).
fn record(gpu: &mut Gpu) -> BufferSink {
    let sink = BufferSink::new();
    gpu.set_trace_sink(Box::new(sink.clone()));
    sink
}

/// Replays the recorded trace through the validator; any structural
/// invariant violation fails the test.
fn check(sink: &BufferSink, num_sms: u32) {
    TraceValidator::new(ValidatorConfig::structural(num_sms))
        .validate(&sink.take())
        .assert_clean();
}

#[test]
fn full_pipeline_serves_all_requests() {
    let spec = GpuSpec::a100();
    let vgg = profiled(ModelKind::Vgg11);
    let r50 = profiled(ModelKind::ResNet50);
    admit(&[&vgg, &r50], spec.memory_mib, &AdmissionPolicy::default()).unwrap();

    let apps = vec![
        DeployedApp::new(vgg, 0.5, None),
        DeployedApp::new(r50, 0.5, None),
    ];
    let ws = pair_workload(
        AppModel::build(ModelKind::Vgg11, Phase::Inference),
        AppModel::build(ModelKind::ResNet50, Phase::Inference),
        (0.5, 0.5),
        PaperWorkload::MediumLoad,
        15,
        SimTime::from_secs(10),
        5,
    );
    let driver = BlessDriver::new(apps, BlessParams::default());
    let mut gpu = Gpu::new(spec, HostCosts::paper());
    let num_sms = gpu.spec().num_sms;
    let sink = record(&mut gpu);
    let mut sim = Simulation::new(gpu, driver, ws.initial_arrivals())
        .with_notice_handler(ws.notice_handler());
    let outcome = sim.run(SimTime::from_secs(120));

    assert_eq!(outcome, RunOutcome::Completed);
    assert!(sim.gpu.is_device_idle(), "no kernels left behind");
    check(&sink, num_sms);
    for app in 0..2 {
        assert_eq!(
            sim.driver.log.completed_count(app),
            15,
            "every closed-loop request completes"
        );
        // Completions are strictly FIFO per app.
        let recs = sim.driver.log.records(app);
        for w in recs.windows(2) {
            assert!(w[0].completion.unwrap() <= w[1].completion.unwrap());
        }
    }
}

#[test]
fn quota_guarantee_holds_under_sustained_overlap() {
    // Medium load keeps the pair overlapped most of the time; each app's
    // mean latency must stay within a small envelope of its ISO target
    // (the envelope covers the calibrated ~7% interference, Fig. 9b).
    let spec = GpuSpec::a100();
    let apps = vec![
        DeployedApp::new(profiled(ModelKind::ResNet101), 1.0 / 3.0, None),
        DeployedApp::new(profiled(ModelKind::Bert), 2.0 / 3.0, None),
    ];
    let ws = pair_workload(
        AppModel::build(ModelKind::ResNet101, Phase::Inference),
        AppModel::build(ModelKind::Bert, Phase::Inference),
        (1.0 / 3.0, 2.0 / 3.0),
        PaperWorkload::HighLoad,
        12,
        SimTime::from_secs(10),
        17,
    );
    let driver = BlessDriver::new(apps, BlessParams::default());
    let mut gpu = Gpu::new(spec, HostCosts::paper());
    let num_sms = gpu.spec().num_sms;
    let sink = record(&mut gpu);
    let mut sim = Simulation::new(gpu, driver, ws.initial_arrivals())
        .with_notice_handler(ws.notice_handler());
    assert_eq!(sim.run(SimTime::from_secs(300)), RunOutcome::Completed);
    check(&sink, num_sms);
    for app in 0..2 {
        let mean = sim.driver.log.stats(app).mean.unwrap().as_nanos() as f64;
        let iso = sim.driver.apps[app].iso_latency().as_nanos() as f64;
        assert!(
            mean <= iso * 1.15,
            "app {app}: mean {:.2} ms vs ISO {:.2} ms",
            mean / 1e6,
            iso / 1e6
        );
    }
}

#[test]
fn solo_tenant_uses_whole_gpu_regardless_of_quota() {
    // A tenant with a tiny quota still gets the full GPU when alone —
    // the core "bubble squeezing" behaviour.
    let spec = GpuSpec::a100();
    let apps = vec![DeployedApp::new(profiled(ModelKind::Bert), 0.1, None)];
    let ws = pair_bert_solo();
    let driver = BlessDriver::new(apps, BlessParams::default());
    let mut gpu = Gpu::new(spec, HostCosts::paper());
    let num_sms = gpu.spec().num_sms;
    let sink = record(&mut gpu);
    let mut sim = Simulation::new(gpu, driver, ws.initial_arrivals())
        .with_notice_handler(ws.notice_handler());
    assert_eq!(sim.run(SimTime::from_secs(60)), RunOutcome::Completed);
    check(&sink, num_sms);
    let mean = sim.driver.log.stats(0).mean.unwrap().as_millis_f64();
    // BERT solo is ~12.8 ms; its 10%-quota ISO would be ~90 ms.
    assert!(mean < 15.0, "solo BERT at 10% quota: {mean:.2} ms");
}

fn pair_bert_solo() -> workloads::WorkloadSet {
    workloads::WorkloadSet::new(
        vec![workloads::TenantSpec::new(
            AppModel::build(ModelKind::Bert, Phase::Inference),
            0.1,
            workloads::ArrivalPattern::ClosedLoop {
                think: sim_core::SimDuration::from_millis(13),
                count: 8,
            },
        )],
        3,
    )
}

#[test]
fn memory_overcommit_is_rejected_at_admission() {
    let a = profiled(ModelKind::Vgg11);
    let b = profiled(ModelKind::Bert);
    // A hypothetical 3 GiB GPU cannot host both plus their MPS contexts.
    let err = admit(&[&a, &b], 3 * 1024, &AdmissionPolicy::default()).unwrap_err();
    assert!(matches!(err, profiler::AdmissionError::OutOfMemory { .. }));
}

#[test]
fn slo_mode_prioritizes_the_tight_tenant() {
    let spec = GpuSpec::a100();
    let r50a = profiled(ModelKind::ResNet50);
    let r50b = profiled(ModelKind::ResNet50);
    let iso = r50a.iso_latency[r50a.partition_for_quota(0.5)];
    let apps = vec![
        DeployedApp::new(r50a, 0.5, Some(iso.mul_f64(1.1))), // tight
        DeployedApp::new(r50b, 0.5, Some(iso.mul_f64(3.0))), // loose
    ];
    let ws = pair_workload(
        AppModel::build(ModelKind::ResNet50, Phase::Inference),
        AppModel::build(ModelKind::ResNet50, Phase::Inference),
        (0.5, 0.5),
        PaperWorkload::MediumLoad,
        10,
        SimTime::from_secs(10),
        29,
    );
    let driver = BlessDriver::new(apps, BlessParams::default());
    let mut gpu = Gpu::new(spec, HostCosts::paper());
    let num_sms = gpu.spec().num_sms;
    let sink = record(&mut gpu);
    let mut sim = Simulation::new(gpu, driver, ws.initial_arrivals())
        .with_notice_handler(ws.notice_handler());
    assert_eq!(sim.run(SimTime::from_secs(300)), RunOutcome::Completed);
    check(&sink, num_sms);
    let tight = sim.driver.log.stats(0).mean.unwrap();
    let targets = [
        sim.driver.apps[0].target_latency(),
        sim.driver.apps[1].target_latency(),
    ];
    // The tight tenant meets its SLO; violation rates stay near zero.
    assert!(
        tight <= targets[0],
        "tight tenant {tight} vs SLO {}",
        targets[0]
    );
    for app in 0..2 {
        let v = sim.driver.log.violation_rate(app, targets[app]);
        assert!(v <= 0.2, "app {app} violation rate {v}");
    }
}
