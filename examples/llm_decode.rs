//! Dynamic applications (paper §6.10): LLM autoregressive inference.
//!
//! > "For example, in the inference of Large Language Models, which
//! > exhibit an autoregressive computation pattern, BLESS could be
//! > enhanced by treating each forward pass as a distinct application DAG
//! > for scheduling."
//!
//! This example builds a synthetic decode-step "application" (one forward
//! pass = one request DAG of tensor-core kernels), registers it like any
//! stationary app, and co-locates a chatty LLM tenant with a ResNet-101
//! batch tenant. Each decode step is a separate request, so BLESS
//! schedules the autoregressive stream at forward-pass granularity.
//!
//! Run with: `cargo run --release --example llm_decode`

use bless::{BlessDriver, BlessParams, DeployedApp};
use dnn_models::gen::{generate_kernels, GenSpec};
use dnn_models::{AppModel, ModelKind, Phase};
use gpu_sim::{Gpu, GpuSpec, HostCosts, Simulation};
use profiler::ProfiledApp;
use sim_core::{SimDuration, SimTime};
use workloads::{ArrivalPattern, TenantSpec, WorkloadSet};

/// One decode forward pass: short, tensor-core heavy, memory-bound-ish
/// (reading the KV cache), ~80 kernels and ~1.6 ms on a full A100.
fn decode_step_model() -> AppModel {
    let spec = GenSpec {
        name: "llm-decode".into(),
        kernels: 80,
        total: SimDuration::from_millis_f64(1.6),
        utilization: 0.55,
        dur_sigma: 0.5,
        d_frac_range: (0.3, 0.9),
        mem_range: (0.3, 0.7),
        tensor_core: true,
        input_bytes: 16 * 1024,   // token ids + positions
        output_bytes: 256 * 1024, // logits row
        memory_mib: 6_000,        // weights + KV cache
        seed: 0x11A_DEC0,
    };
    AppModel {
        kind: ModelKind::Bert, // closest family; kernels are our own
        phase: Phase::Inference,
        name: spec.name.clone(),
        memory_mib: spec.memory_mib,
        kernels: generate_kernels(&spec),
    }
}

fn main() {
    let spec = GpuSpec::a100();

    // The decode pass is profiled once, like any stationary DAG (§6.10).
    let llm = decode_step_model();
    let llm_profile = ProfiledApp::profile(&llm, &spec);
    let r101 = AppModel::build(ModelKind::ResNet101, Phase::Inference);
    let r101_profile = ProfiledApp::profile(&r101, &spec);

    println!(
        "decode step: {} kernels, solo {} per token",
        llm_profile.kernel_count(),
        llm_profile.iso_latency[profiler::PARTITIONS - 1]
    );

    // Tenant 0: an LLM generating 120 tokens autoregressively (each
    // decode step issues as soon as the previous finished, plus a small
    // host-side sampling gap). Tenant 1: a steady R101 batch service.
    let ws = WorkloadSet::new(
        vec![
            TenantSpec::new(
                llm.clone(),
                2.0 / 3.0,
                // Each decode step issues when the previous one finished
                // (autoregressive), plus a small host-side gap.
                ArrivalPattern::ClosedLoop {
                    think: SimDuration::from_micros(200), // sampling + detok
                    count: 120,
                },
            ),
            TenantSpec::new(
                r101.clone(),
                1.0 / 3.0,
                ArrivalPattern::ClosedLoop {
                    think: SimDuration::from_millis(17),
                    count: 8,
                },
            ),
        ],
        2025,
    );

    let apps = vec![
        DeployedApp::new(llm_profile, 2.0 / 3.0, None),
        DeployedApp::new(r101_profile, 1.0 / 3.0, None),
    ];
    let driver = BlessDriver::new(apps, BlessParams::default());
    let gpu = Gpu::new(spec, HostCosts::paper());
    let mut sim = Simulation::new(gpu, driver, ws.initial_arrivals())
        .with_notice_handler(ws.notice_handler());
    let outcome = sim.run(SimTime::from_secs(60));

    println!("outcome: {outcome:?}");
    let d = sim.driver.log.stats(0);
    println!(
        "decode steps: {} served, mean {:.2} ms/token, p99 {:.2} ms (solo {:.2} ms)",
        d.count,
        d.mean_ms(),
        d.p99.map_or(f64::NAN, |x| x.as_millis_f64()),
        sim.driver.apps[0].profile.iso_latency[profiler::PARTITIONS - 1].as_millis_f64(),
    );
    let tokens_per_sec = d.count as f64
        / sim
            .driver
            .log
            .records(0)
            .last()
            .and_then(|r| r.completion)
            .map_or(1.0, |c| c.as_secs_f64());
    println!("decode throughput: {tokens_per_sec:.0} tokens/s while co-located");
    let b = sim.driver.log.stats(1);
    println!(
        "R101 batch: {} requests, mean {:.2} ms (ISO target {:.2} ms)",
        b.count,
        b.mean_ms(),
        sim.driver.apps[1].iso_latency().as_millis_f64(),
    );
}
