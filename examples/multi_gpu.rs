//! Multi-GPU deployment (paper §4.2.2): a central controller places six
//! tenants across a fleet of A100s, then a replicated BLESS runtime
//! serves each GPU.
//!
//! Run with: `cargo run --release --example multi_gpu`

use bless::BlessParams;
use cluster::run_cluster;
use dnn_models::{AppModel, ModelKind, Phase};
use gpu_sim::GpuSpec;
use profiler::{ProfiledApp, SharedProfile};
use sim_core::SimTime;
use workloads::{ArrivalPattern, TenantSpec, WorkloadSet};

fn main() {
    let spec = GpuSpec::a100();
    let tenants_spec = [
        (ModelKind::Vgg11, 0.5),
        (ModelKind::ResNet50, 0.5),
        (ModelKind::ResNet101, 0.6),
        (ModelKind::Bert, 0.4),
        (ModelKind::NasNet, 0.7),
        (ModelKind::ResNet50, 0.3),
    ];

    println!("profiling 6 tenants...");
    // Shared handles: placement and the per-GPU runtimes reference one
    // interned kernel table per tenant instead of deep-copying it.
    let profiles: Vec<SharedProfile> = tenants_spec
        .iter()
        .map(|&(k, _)| ProfiledApp::profile_shared(&AppModel::build(k, Phase::Inference), &spec))
        .collect();

    let tenants: Vec<TenantSpec> = tenants_spec
        .iter()
        .map(|&(k, q)| {
            let model = AppModel::build(k, Phase::Inference);
            let think = model.solo_duration(dnn_models::gen::CALIBRATION_PCIE);
            TenantSpec::new(model, q, ArrivalPattern::ClosedLoop { think, count: 10 })
        })
        .collect();
    // Cluster-level tenant lists may oversubscribe a single GPU; the
    // controller splits them across devices.
    let ws = WorkloadSet { tenants, seed: 11 };

    let run = run_cluster(
        &ws,
        profiles,
        4,
        &spec,
        &BlessParams::default(),
        SimTime::from_secs(120),
    )
    .expect("fleet hosts the tenants");

    println!(
        "placement: {} tenants on {} GPUs\n",
        tenants_spec.len(),
        run.placement.gpus_used
    );
    for (g, gpu) in run.gpus.iter().enumerate() {
        println!(
            "GPU {g}: tenants {:?}, outcome {:?}, utilization {:.1}%",
            gpu.tenants,
            gpu.outcome,
            gpu.utilization * 100.0
        );
    }
    println!();
    for (t, &(k, q)) in tenants_spec.iter().enumerate() {
        println!(
            "tenant {t} ({:<10} q={:.0}%) on GPU {}: mean {:.2} ms",
            k.full_name(),
            q * 100.0,
            run.placement.assignments[t],
            run.tenant_mean_ms(t).unwrap_or(f64::NAN)
        );
    }
}
