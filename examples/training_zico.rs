//! Training co-location (§6.3, Fig. 18b): two continuous training jobs
//! sharing a GPU under ZICO's tick-tock coordination vs BLESS's squads.
//!
//! Run with: `cargo run --release --example training_zico`

use dnn_models::{ModelKind, Phase};
use gpu_sim::GpuSpec;
use harness::cache;
use harness::runner::{run_system, System};
use sim_core::SimTime;
use workloads::{pair_workload, PaperWorkload};

fn main() {
    let spec = GpuSpec::a100();

    println!("two identical training jobs, iterations back-to-back\n");
    for kind in [ModelKind::Vgg11, ModelKind::ResNet50, ModelKind::ResNet101] {
        let ws = pair_workload(
            cache::model(kind, Phase::Training),
            cache::model(kind, Phase::Training),
            (0.5, 0.5),
            PaperWorkload::BiasedDense, // continuous iterations
            6,
            SimTime::from_secs(30),
            73,
        );
        let mut line = format!("{:<10}", kind.full_name());
        let mut zico_ms = f64::NAN;
        for sys in System::training_set() {
            let r = run_system(&sys, &ws, &spec, SimTime::from_secs(600), None);
            if sys.name() == "ZICO" {
                zico_ms = r.mean_ms();
            }
            line.push_str(&format!(" {}={:.1}ms", sys.name(), r.mean_ms()));
        }
        let bless = {
            let r = run_system(
                &System::Bless(bless::BlessParams::default()),
                &ws,
                &spec,
                SimTime::from_secs(600),
                None,
            );
            r.mean_ms()
        };
        println!(
            "{line}  (BLESS vs ZICO: {:+.1}%)",
            (bless / zico_ms - 1.0) * 100.0
        );
    }
    println!("\nZICO's tick-tock iteration barriers leave idle bubbles that");
    println!("BLESS's spatially-partitioned squads fill (paper Fig. 18b: -8.5%).");
}
