//! Co-locating two heterogeneous inference services: compare BLESS against
//! every baseline on the same workload and print a side-by-side table —
//! a miniature of the paper's Fig. 4(b).
//!
//! Run with: `cargo run --release --example colocate_inference`

use dnn_models::{ModelKind, Phase};
use gpu_sim::GpuSpec;
use harness::cache;
use harness::runner::{run_system, System};
use sim_core::SimTime;
use workloads::{pair_workload, PaperWorkload};

fn main() {
    let spec = GpuSpec::a100();

    // NasNet (many small kernels) next to BERT (tensor-core GEMMs), one
    // third / two thirds of the GPU, medium load.
    let ws = pair_workload(
        cache::model(ModelKind::NasNet, Phase::Inference),
        cache::model(ModelKind::Bert, Phase::Inference),
        (1.0 / 3.0, 2.0 / 3.0),
        PaperWorkload::MediumLoad,
        15,
        SimTime::from_secs(10),
        99,
    );

    println!("NasNet (1/3 GPU) + BERT (2/3 GPU), medium load, 15 requests each\n");
    println!(
        "{:<10} {:>12} {:>12} {:>12} {:>10} {:>12}",
        "system", "avg ms", "NasNet ms", "BERT ms", "util %", "deviation ms"
    );

    let mut systems = vec![System::Iso];
    systems.extend(System::inference_set());
    for sys in systems {
        let r = run_system(&sys, &ws, &spec, SimTime::from_secs(120), None);
        let means = r.app_means();
        println!(
            "{:<10} {:>12.2} {:>12.2} {:>12.2} {:>10.1} {:>12.2}",
            sys.name(),
            r.mean_ms(),
            means[0].as_millis_f64(),
            means[1].as_millis_f64(),
            r.utilization * 100.0,
            r.deviation().as_millis_f64(),
        );
    }

    println!("\nBLESS squeezes idle bubbles: lowest latency without exceeding");
    println!("either tenant's isolated (ISO) latency target.");
}
