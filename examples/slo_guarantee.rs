//! SLO mode (§6.5): replace the isolated-latency targets with explicit
//! QoS targets and watch BLESS hold them where GSLICE and UNBOUND fail.
//!
//! Run with: `cargo run --release --example slo_guarantee`

use dnn_models::{ModelKind, Phase};
use gpu_sim::GpuSpec;
use harness::cache;
use harness::runner::{deployment, run_system, System};
use sim_core::SimTime;
use workloads::{pair_workload, PaperWorkload};

fn main() {
    let spec = GpuSpec::a100();
    let ws = pair_workload(
        cache::model(ModelKind::ResNet50, Phase::Inference),
        cache::model(ModelKind::ResNet50, Phase::Inference),
        (0.5, 0.5),
        PaperWorkload::MediumLoad,
        20,
        SimTime::from_secs(10),
        61,
    );

    // Tight targets: 1.2x and 2.0x the 50%-quota isolated latency.
    let apps = deployment(&ws, &spec, None);
    let targets = vec![
        apps[0].iso_latency().mul_f64(1.2),
        apps[1].iso_latency().mul_f64(2.0),
    ];
    println!(
        "QoS targets: app0 {} (1.2x ISO), app1 {} (2.0x ISO)\n",
        targets[0], targets[1]
    );

    println!(
        "{:<10} {:>12} {:>12} {:>14}",
        "system", "app0 p99 ms", "app1 p99 ms", "violations %"
    );
    for sys in [
        System::Unbound,
        System::Gslice,
        System::Bless(bless::BlessParams::default()),
    ] {
        let r = run_system(&sys, &ws, &spec, SimTime::from_secs(120), Some(&targets));
        let mut violations = 0.0;
        for app in 0..2 {
            violations += r.log.violation_rate(app, targets[app]);
        }
        let p99 = |app: usize| r.log.stats(app).p99.map_or(f64::NAN, |d| d.as_millis_f64());
        println!(
            "{:<10} {:>12.2} {:>12.2} {:>14.1}",
            sys.name(),
            p99(0),
            p99(1),
            violations / 2.0 * 100.0
        );
    }
    println!("\nBLESS stretches each tenant's schedule to its QoS target (§4.3.1)");
    println!("and compensates any request that falls behind, so violations stay");
    println!("near zero (paper: 0.6% vs 38.8% UNBOUND / 50.1% GSLICE).");
}
