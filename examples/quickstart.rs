//! Quickstart: profile two DNN services, deploy them on one simulated
//! A100 with GPU quotas, and serve a small request stream with BLESS.
//!
//! Run with: `cargo run --release --example quickstart`

use bless::{BlessDriver, BlessParams, DeployedApp};
use dnn_models::{AppModel, ModelKind, Phase};
use gpu_sim::{Gpu, GpuSpec, HostCosts, Simulation};
use profiler::{admit, AdmissionPolicy, ProfiledApp};
use sim_core::SimTime;
use workloads::{pair_workload, PaperWorkload};

fn main() {
    // 1. The hardware: a simulated Nvidia A100 (108 SMs, 40 GB).
    let spec = GpuSpec::a100();

    // 2. Offline profiling (§4.2): run each application once unrestricted
    //    and once per SM partition to obtain T[n%], t[n%][k], τ[n%][k].
    println!("profiling applications...");
    let vgg = ProfiledApp::profile(&AppModel::build(ModelKind::Vgg11, Phase::Inference), &spec);
    let r50 = ProfiledApp::profile(
        &AppModel::build(ModelKind::ResNet50, Phase::Inference),
        &spec,
    );
    println!(
        "  VGG-11:    solo {:>8}, profile cost {:.2} s",
        vgg.iso_latency[profiler::PARTITIONS - 1],
        vgg.profile_cost.as_secs_f64()
    );
    println!(
        "  ResNet-50: solo {:>8}, profile cost {:.2} s",
        r50.iso_latency[profiler::PARTITIONS - 1],
        r50.profile_cost.as_secs_f64()
    );

    // 3. Admission (§4.2.2): kernel-granularity compatibility + memory.
    admit(&[&vgg, &r50], spec.memory_mib, &AdmissionPolicy::default())
        .expect("the pair co-locates safely");

    // 4. Deploy with quotas: VGG gets 1/3 of the GPU, ResNet-50 gets 2/3.
    let apps = vec![
        DeployedApp::new(vgg, 1.0 / 3.0, None),
        DeployedApp::new(r50, 2.0 / 3.0, None),
    ];
    let iso: Vec<String> = apps.iter().map(|a| a.iso_latency().to_string()).collect();
    println!("ISO targets at quota: VGG {} | R50 {}", iso[0], iso[1]);

    // 5. A low-load closed-loop client stream (the paper's workload C).
    let ws = pair_workload(
        AppModel::build(ModelKind::Vgg11, Phase::Inference),
        AppModel::build(ModelKind::ResNet50, Phase::Inference),
        (1.0 / 3.0, 2.0 / 3.0),
        PaperWorkload::LowLoad,
        20,
        SimTime::from_secs(10),
        7,
    );

    // 6. Serve it with BLESS.
    let driver = BlessDriver::new(apps, BlessParams::default());
    let gpu = Gpu::new(spec, HostCosts::paper());
    let mut sim = Simulation::new(gpu, driver, ws.initial_arrivals())
        .with_notice_handler(ws.notice_handler());
    let outcome = sim.run(SimTime::from_secs(60));
    println!("simulation outcome: {outcome:?}");

    // 7. Results: both tenants beat their isolated-latency targets by
    //    squeezing the idle bubbles.
    for (app, name) in [(0, "VGG-11"), (1, "ResNet-50")] {
        let stats = sim.driver.log.stats(app);
        println!(
            "{name}: {} requests, mean {:.2} ms, p99 {:.2} ms (ISO target {})",
            stats.count,
            stats.mean_ms(),
            stats.p99.map_or(f64::NAN, |d| d.as_millis_f64()),
            sim.driver.apps[app].iso_latency(),
        );
    }
    println!(
        "squads launched: {} ({} spatially partitioned)",
        sim.driver.squads_launched, sim.driver.sp_squads
    );
}
