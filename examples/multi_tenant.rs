//! Beyond pair-wise sharing (§6.4): eight tenants with uneven quotas on
//! one GPU, requests arriving simultaneously — the paper's Fig. 15.
//!
//! Run with: `cargo run --release --example multi_tenant`

use dnn_models::{AppModel, ModelKind, Phase};
use gpu_sim::GpuSpec;
use harness::runner::{run_system, System};
use sim_core::SimTime;
use workloads::{multi_workload, PaperWorkload, EIGHT_MODEL_QUOTAS};

fn main() {
    let spec = GpuSpec::a100();
    let models: Vec<AppModel> = [
        ModelKind::Vgg11,
        ModelKind::ResNet50,
        ModelKind::ResNet101,
        ModelKind::Bert,
        ModelKind::Vgg11,
        ModelKind::ResNet50,
        ModelKind::ResNet101,
        ModelKind::Bert,
    ]
    .iter()
    .map(|&m| AppModel::build(m, Phase::Inference))
    .collect();

    let ws = multi_workload(
        models.clone(),
        &EIGHT_MODEL_QUOTAS,
        PaperWorkload::BiasedDense,
        1,
        SimTime::from_secs(1),
        41,
    );

    println!("8 tenants, quotas (5,5,10,10,15,15,20,20)%, simultaneous burst\n");
    println!("{:<10} {:>10} {:>14}", "system", "avg ms", "deviation ms");
    let mut bless_result = None;
    for sys in [
        System::Temporal,
        System::Gslice,
        System::Unbound,
        System::Bless(bless::BlessParams::default()),
    ] {
        let r = run_system(&sys, &ws, &spec, SimTime::from_secs(120), None);
        println!(
            "{:<10} {:>10.2} {:>14.2}",
            sys.name(),
            r.mean_ms(),
            r.deviation().as_millis_f64()
        );
        if matches!(sys, System::Bless(_)) {
            bless_result = Some(r);
        }
    }

    let r = bless_result.expect("BLESS ran");
    println!("\nper-tenant latency vs ISO target under BLESS:");
    for (i, m) in models.iter().enumerate() {
        let lat = r.log.stats(i).mean.map_or(f64::NAN, |d| d.as_millis_f64());
        let iso = r.iso_targets[i].as_millis_f64();
        println!(
            "  tenant {i} ({:<9} q={:>4.0}%): {:>8.2} ms (target {:>8.2} ms)",
            m.kind.full_name(),
            EIGHT_MODEL_QUOTAS[i] * 100.0,
            lat,
            iso
        );
    }
}
