//! Umbrella crate for the BLESS reproduction workspace.
//!
//! Re-exports every member crate so examples and integration tests can
//! use a single dependency. See the README for the repository map.

pub use baselines;
pub use bless;
pub use dnn_models;
pub use gpu_sim;
pub use harness;
pub use metrics;
pub use profiler;
pub use sim_core;
pub use workloads;
