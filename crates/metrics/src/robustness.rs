//! Robustness accounting for fault-injection experiments.
//!
//! A [`RobustnessReport`] tallies what the scheduler had to absorb during
//! a faulted run: injected faults (crashes, stragglers, DMA stalls),
//! recovery work (retried kernels), recoverable scheduler errors, and the
//! graceful-degradation ladder's transitions (semi-spatial → strict
//! spatial → pure temporal and back; see DESIGN.md "Fault model &
//! graceful degradation"). The driver fills the scheduler-side fields;
//! the harness merges in the engine's fault counters.

use sim_core::SimTime;

/// Sharing mode of one application on the degradation ladder.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum ShareMode {
    /// Normal BLESS operation: semi-spatial sharing with the determiner
    /// free to pick NSP or semi-SP per squad.
    SemiSpatial,
    /// First degradation step: every kernel of the app keeps its SM
    /// restriction (no unrestricted tail), containing mis-predicted
    /// kernels inside their partition.
    StrictSpatial,
    /// Last resort: the app only runs in solo squads (pure temporal
    /// sharing), fully isolated from other tenants.
    Temporal,
}

impl std::fmt::Display for ShareMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ShareMode::SemiSpatial => write!(f, "semi-SP"),
            ShareMode::StrictSpatial => write!(f, "strict-SP"),
            ShareMode::Temporal => write!(f, "temporal"),
        }
    }
}

/// One watchdog-driven move on the degradation ladder.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DegradeTransition {
    /// When the transition happened.
    pub at: SimTime,
    /// The application that moved.
    pub app: usize,
    /// Mode before the transition.
    pub from: ShareMode,
    /// Mode after the transition.
    pub to: ShareMode,
}

impl DegradeTransition {
    /// True if this transition moved *down* the ladder (toward isolation).
    pub fn is_demotion(&self) -> bool {
        self.to > self.from
    }
}

/// Tally of faults injected and recovery actions taken over one run.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct RobustnessReport {
    /// Context crashes fired by the fault plan.
    pub crashes: u64,
    /// Kernels killed by those crashes.
    pub kernels_failed: u64,
    /// Kernels re-submitted after a crash.
    pub kernels_retried: u64,
    /// Re-submitted kernels that went on to complete.
    pub retries_completed: u64,
    /// Kernel launches that drew a straggler multiplier.
    pub stragglers: u64,
    /// DMA stall windows that began.
    pub dma_stalls: u64,
    /// Recoverable scheduler errors recorded (instead of panics).
    pub sched_errors: u64,
    /// Watchdog transitions on the degradation ladder, in time order.
    pub degradations: Vec<DegradeTransition>,
    /// Requests that finished past their SLO target.
    pub slo_violations: u64,
}

impl RobustnessReport {
    /// An empty report.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of demotions (moves toward isolation).
    pub fn demotions(&self) -> usize {
        self.degradations.iter().filter(|t| t.is_demotion()).count()
    }

    /// Number of promotions (moves back toward semi-spatial sharing).
    pub fn promotions(&self) -> usize {
        self.degradations.len() - self.demotions()
    }

    /// True when every crash casualty was re-submitted and completed —
    /// the "no lost request" robustness criterion.
    pub fn all_retries_completed(&self) -> bool {
        self.kernels_retried == self.kernels_failed
            && self.retries_completed == self.kernels_retried
    }

    /// One-line summary for experiment tables.
    pub fn summary(&self) -> String {
        format!(
            "crashes {} (failed {}, retried {}, completed {}), stragglers {}, \
             dma stalls {}, sched errors {}, demotions {}, promotions {}",
            self.crashes,
            self.kernels_failed,
            self.kernels_retried,
            self.retries_completed,
            self.stragglers,
            self.dma_stalls,
            self.sched_errors,
            self.demotions(),
            self.promotions()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ladder_orders_by_isolation() {
        assert!(ShareMode::SemiSpatial < ShareMode::StrictSpatial);
        assert!(ShareMode::StrictSpatial < ShareMode::Temporal);
    }

    #[test]
    fn demotions_and_promotions_are_distinguished() {
        let mut r = RobustnessReport::new();
        r.degradations.push(DegradeTransition {
            at: SimTime::from_millis(1),
            app: 0,
            from: ShareMode::SemiSpatial,
            to: ShareMode::StrictSpatial,
        });
        r.degradations.push(DegradeTransition {
            at: SimTime::from_millis(2),
            app: 0,
            from: ShareMode::StrictSpatial,
            to: ShareMode::SemiSpatial,
        });
        assert_eq!(r.demotions(), 1);
        assert_eq!(r.promotions(), 1);
    }

    #[test]
    fn all_retries_completed_requires_full_recovery() {
        let mut r = RobustnessReport::new();
        assert!(r.all_retries_completed(), "vacuously true with no faults");
        r.kernels_failed = 3;
        assert!(!r.all_retries_completed());
        r.kernels_retried = 3;
        r.retries_completed = 3;
        assert!(r.all_retries_completed());
        assert!(r.summary().contains("retried 3"));
    }
}
