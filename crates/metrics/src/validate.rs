//! Trace-driven machine-checking of scheduler invariants.
//!
//! [`TraceValidator`] replays a recorded [`TraceEvent`] stream and checks
//! the invariants the BLESS design promises (DESIGN.md §5e):
//!
//! 1. **Time monotonicity** — events are recorded in non-decreasing
//!    virtual time.
//! 2. **No SM oversubscription** — at the end of every instant, the sum of
//!    all live SM allocations is at most the device's SM count.
//!    (Within one instant the stream may transiently overshoot while the
//!    engine reassigns shares event-by-event; only the settled state at
//!    the end of each timestamp group is binding.)
//! 3. **Per-queue FIFO** — kernels on one device queue start in launch
//!    order and complete in start order, across crashes and retries.
//! 4. **Squad co-residency** — while a squad is in flight, only member
//!    tenants start kernels (skipped for traces without squad events,
//!    i.e. baseline systems).
//! 5. **Split discipline** — a semi-spatial entry launches exactly its
//!    first `split_at` kernels to the SM-restricted context and the rear
//!    kernels unrestricted; a strict-spatial entry stays restricted
//!    throughout (§4.5).
//! 6. **Relative-progress fairness** — the spread between the best and
//!    worst tenant's normalized progress (mean latency over its isolated
//!    target) stays bounded. Only checked when isolated targets are
//!    supplied and the trace contains request completions.
//!
//! Fleet-recovery traces (streams containing device-failure or
//! evacuation events, as synthesized by `cluster::run_chaos`) are
//! additionally held to the migration invariants of DESIGN.md §5i:
//!
//! 7. **Evacuation closure** — every `TenantEvacuated` is matched by a
//!    later `TenantRestored` or a typed `MigrationFailed`; nothing is
//!    evacuated twice without closing, restored without being evacuated,
//!    or left open at end of trace.
//! 8. **Bounded recovery** — when [`ValidatorConfig::max_recovery_ns`]
//!    is set, every restoration's recovery time stays within it.
//! 9. **No request lost** — every arrival completes unless its tenant
//!    was reported stranded by a typed `MigrationFailed`.
//! 10. **End-to-end tenant FIFO** — each tenant's completions occur in
//!     request order, across any number of migrations.
//!
//! Serving traces (streams containing the ingest events emitted by the
//! open-loop front-end, DESIGN.md §5l) add the admission invariants:
//!
//! 11. **Ingest conservation** — per tenant, `RequestAdmitted` and
//!     `RequestShed` together carry a dense `seq` (0, 1, 2, …): every
//!     offered arrival is accounted exactly once, so
//!     `admitted + shed = offered` with no request silently lost.
//! 12. **Ingest FIFO** — per tenant, admitted requests carry a dense
//!     `req` in stream order, and every `RequestAdmitted` is followed by
//!     the matching `RequestArrival` at the same instant (the daemon
//!     really handed the request to the scheduler).
//! 13. **Backpressure alternation** — per tenant, `BackpressureOn` and
//!     `BackpressureOff` strictly alternate (a trailing `On` at end of
//!     trace is legal: the bound can still be exceeded when the stream
//!     closes).
//!
//! The validator is pure: it never mutates the trace and has no
//! dependency on the scheduler, so any stream — live, golden, or
//! replayed from JSONL — can be checked.

use std::collections::{HashMap, VecDeque};

use sim_core::trace::{TraceEvent, TraceSquadEntry};
use sim_core::SimTime;

/// Slack allowed on the oversubscription sum, absorbing f64 waterfilling
/// rounding.
const SM_EPSILON: f64 = 1e-6;

/// Default bound on the fairness spread (max/min normalized progress)
/// when [`ValidatorConfig::fairness_spread`] is unset.
pub const DEFAULT_FAIRNESS_SPREAD: f64 = 12.0;

/// Configuration for a [`TraceValidator`] run.
#[derive(Clone, Debug)]
pub struct ValidatorConfig {
    /// Device SM count (the oversubscription bound).
    pub num_sms: u32,
    /// Per-tenant isolated mean-latency targets in nanoseconds; enables
    /// the fairness check. `None` skips it (baselines, fault drills).
    pub iso_targets: Option<Vec<f64>>,
    /// Maximum allowed max/min spread of normalized progress; defaults to
    /// [`DEFAULT_FAIRNESS_SPREAD`].
    pub fairness_spread: Option<f64>,
    /// Bound on time-to-recover for fleet-recovery traces: every
    /// `TenantRestored` must report `recovery_ns` at or under this.
    /// `None` skips the bound (the closure checks still run).
    pub max_recovery_ns: Option<u64>,
}

impl ValidatorConfig {
    /// Structural-invariants-only config (no fairness check) for a device
    /// with `num_sms` SMs.
    pub fn structural(num_sms: u32) -> Self {
        ValidatorConfig {
            num_sms,
            iso_targets: None,
            fairness_spread: None,
            max_recovery_ns: None,
        }
    }
}

/// One invariant violation found in a trace.
#[derive(Clone, Debug)]
pub struct Violation {
    /// Virtual time at which the violation was observed.
    pub at: SimTime,
    /// Short invariant name (e.g. `"oversubscription"`).
    pub invariant: &'static str,
    /// Human-readable description with the offending values.
    pub detail: String,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "[{} @ {} ns] {}",
            self.invariant,
            self.at.as_nanos(),
            self.detail
        )
    }
}

/// Result of validating one trace.
#[derive(Clone, Debug)]
pub struct TraceReport {
    /// Number of events replayed.
    pub events: usize,
    /// All violations found, in trace order.
    pub violations: Vec<Violation>,
    /// Observed max/min normalized-progress spread, when the fairness
    /// check ran.
    pub fairness_spread: Option<f64>,
    /// Whether the co-residency/split checks were exercised (the trace
    /// contained squad events).
    pub squad_checks_ran: bool,
}

impl TraceReport {
    /// True when no invariant was violated.
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }

    /// Panics with the first violations listed when the trace is not
    /// clean. Intended for tests and CI gates.
    pub fn assert_clean(&self) {
        if self.is_clean() {
            return;
        }
        let shown: Vec<String> = self
            .violations
            .iter()
            .take(8)
            .map(|v| format!("  {v}"))
            .collect();
        panic!(
            "trace validation failed: {} violation(s) in {} events\n{}{}",
            self.violations.len(),
            self.events,
            shown.join("\n"),
            if self.violations.len() > shown.len() {
                format!("\n  ... and {} more", self.violations.len() - shown.len())
            } else {
                String::new()
            }
        );
    }
}

/// Per-queue FIFO bookkeeping.
#[derive(Default)]
struct QueueState {
    /// Launched-but-not-started seqs, in launch order.
    pending: VecDeque<u64>,
    /// Started-but-not-completed seqs, in start order.
    started: VecDeque<u64>,
}

/// The in-flight squad window, from `SquadFormed` to `SquadRetired`.
struct ActiveSquad {
    id: u64,
    entries: Vec<TraceSquadEntry>,
}

/// Replays a trace and machine-checks the scheduler invariants.
pub struct TraceValidator {
    config: ValidatorConfig,
}

impl TraceValidator {
    /// Creates a validator for the given device/config.
    pub fn new(config: ValidatorConfig) -> Self {
        TraceValidator { config }
    }

    /// Replays `events` and returns the invariant report.
    pub fn validate(&self, events: &[TraceEvent]) -> TraceReport {
        let mut violations = Vec::new();
        let cap = self.config.num_sms as f64 + SM_EPSILON;

        let mut last_at = SimTime::ZERO;
        // seq -> (app, current SM share); entries live from launch to
        // completion/failure.
        let mut alloc: HashMap<u64, (u32, f64)> = HashMap::new();
        let mut queues: HashMap<u32, QueueState> = HashMap::new();
        let mut seq_app: HashMap<u64, u32> = HashMap::new();
        let mut squad: Option<ActiveSquad> = None;
        let mut saw_squads = false;
        // Per-app request arrival times and completed latencies for the
        // fairness check.
        let mut arrivals: HashMap<(u32, u64), SimTime> = HashMap::new();
        let mut latencies: HashMap<u32, (f64, u64)> = HashMap::new();
        // Fleet-recovery state: the migration invariants (7–10) bind only
        // when the trace carries fleet events.
        let mut saw_fleet = false;
        // app -> evacuation instant, open until restored or typed-failed.
        let mut evacuated: HashMap<u32, SimTime> = HashMap::new();
        // Tenants reported stranded (exempt from the no-loss check).
        let mut stranded: Vec<u32> = Vec::new();
        // app -> last completed request id, for the end-to-end FIFO check
        // (buffered: only binding for fleet-recovery traces).
        let mut last_done: HashMap<u32, u64> = HashMap::new();
        let mut fifo_violations: Vec<Violation> = Vec::new();
        // Serving-ingest state (invariants 11–13): binding only when the
        // trace carries ingest events.
        let mut saw_ingest = false;
        // app -> next expected offered seq (dense over admitted ∪ shed).
        let mut ingest_next_seq: HashMap<u32, u64> = HashMap::new();
        // app -> next expected admitted req (dense over admitted).
        let mut ingest_next_req: HashMap<u32, u64> = HashMap::new();
        // Admitted requests awaiting their RequestArrival handoff.
        let mut admitted_open: HashMap<(u32, u64), SimTime> = HashMap::new();
        // app -> whether backpressure is currently signalled On.
        let mut bp_on: HashMap<u32, bool> = HashMap::new();

        let mut i = 0usize;
        while i < events.len() {
            let at = events[i].at();
            if at < last_at {
                violations.push(Violation {
                    at,
                    invariant: "monotonic_time",
                    detail: format!(
                        "event #{i} at {} ns precedes previous event at {} ns",
                        at.as_nanos(),
                        last_at.as_nanos()
                    ),
                });
            }
            last_at = last_at.max(at);

            match &events[i] {
                TraceEvent::KernelLaunch {
                    seq,
                    app,
                    kernel,
                    queue,
                    restricted,
                    ..
                } => {
                    seq_app.insert(*seq, *app);
                    queues.entry(*queue).or_default().pending.push_back(*seq);
                    // Split discipline: check the launch side against the
                    // in-flight squad's plan.
                    if let Some(sq) = &squad {
                        if let Some(e) = sq
                            .entries
                            .iter()
                            .find(|e| e.app == *app && in_entry(e, *kernel))
                        {
                            let want_restricted = match e.mode {
                                1 => true,
                                0 => *kernel < e.first_kernel + e.split_at,
                                _ => false,
                            };
                            if *restricted != want_restricted {
                                violations.push(Violation {
                                    at,
                                    invariant: "split_discipline",
                                    detail: format!(
                                        "squad {} app {} kernel {} launched {} but plan \
                                         (mode {}, split_at {}) says {}",
                                        sq.id,
                                        app,
                                        kernel,
                                        side(*restricted),
                                        e.mode,
                                        e.split_at,
                                        side(want_restricted),
                                    ),
                                });
                            }
                        }
                    }
                }
                TraceEvent::KernelStart { seq, queue, .. } => {
                    let q = queues.entry(*queue).or_default();
                    match q.pending.front() {
                        Some(&head) if head == *seq => {
                            q.pending.pop_front();
                            q.started.push_back(*seq);
                        }
                        head => violations.push(Violation {
                            at,
                            invariant: "queue_fifo",
                            detail: format!(
                                "queue {}: seq {} started but queue head is {:?}",
                                queue, seq, head
                            ),
                        }),
                    }
                    // Co-residency: starts only from in-flight squad
                    // members (only meaningful for squad-based traces).
                    if let Some(sq) = &squad {
                        if let Some(app) = seq_app.get(seq) {
                            if !sq.entries.iter().any(|e| e.app == *app) {
                                violations.push(Violation {
                                    at,
                                    invariant: "co_residency",
                                    detail: format!(
                                        "seq {} (app {}) started during squad {} \
                                         whose members are {:?}",
                                        seq,
                                        app,
                                        sq.id,
                                        sq.entries.iter().map(|e| e.app).collect::<Vec<_>>()
                                    ),
                                });
                            }
                        }
                    }
                    alloc.insert(*seq, (seq_app.get(seq).copied().unwrap_or(u32::MAX), 0.0));
                }
                TraceEvent::SmAlloc { seq, sms, .. } => {
                    let app = seq_app.get(seq).copied().unwrap_or(u32::MAX);
                    alloc.insert(*seq, (app, *sms));
                }
                TraceEvent::KernelComplete { seq, queue, .. } => {
                    alloc.remove(seq);
                    let q = queues.entry(*queue).or_default();
                    match q.started.front() {
                        Some(&head) if head == *seq => {
                            q.started.pop_front();
                        }
                        head => violations.push(Violation {
                            at,
                            invariant: "queue_fifo",
                            detail: format!(
                                "queue {}: seq {} completed but oldest started is {:?}",
                                queue, seq, head
                            ),
                        }),
                    }
                }
                TraceEvent::KernelFailed { seq, queue, .. } => {
                    // A crash kills queued and running kernels alike, in
                    // no particular order: drop the seq wherever it is.
                    alloc.remove(seq);
                    let q = queues.entry(*queue).or_default();
                    q.pending.retain(|&s| s != *seq);
                    q.started.retain(|&s| s != *seq);
                }
                TraceEvent::SquadFormed { id, entries, .. } => {
                    saw_squads = true;
                    if let Some(prev) = &squad {
                        violations.push(Violation {
                            at,
                            invariant: "co_residency",
                            detail: format!(
                                "squad {} formed while squad {} still in flight",
                                id, prev.id
                            ),
                        });
                    }
                    squad = Some(ActiveSquad {
                        id: *id,
                        entries: entries.clone(),
                    });
                }
                TraceEvent::SquadRetired { id, .. } => match squad.take() {
                    Some(sq) if sq.id == *id => {}
                    Some(sq) => violations.push(Violation {
                        at,
                        invariant: "co_residency",
                        detail: format!("squad {} retired but squad {} was in flight", id, sq.id),
                    }),
                    None => violations.push(Violation {
                        at,
                        invariant: "co_residency",
                        detail: format!("squad {} retired with no squad in flight", id),
                    }),
                },
                TraceEvent::RequestArrival { app, req, .. } => {
                    arrivals.insert((*app, *req), at);
                    // Invariant 12 (handoff): an admitted request reaches
                    // the scheduler at the admission instant.
                    if let Some(admitted_at) = admitted_open.remove(&(*app, *req)) {
                        if admitted_at != at {
                            violations.push(Violation {
                                at,
                                invariant: "ingest_fifo",
                                detail: format!(
                                    "app {} request {} admitted at {} ns but arrived at {} ns",
                                    app,
                                    req,
                                    admitted_at.as_nanos(),
                                    at.as_nanos()
                                ),
                            });
                        }
                    }
                }
                TraceEvent::RequestAdmitted { app, req, seq, .. } => {
                    saw_ingest = true;
                    let next_seq = ingest_next_seq.entry(*app).or_insert(0);
                    if *seq != *next_seq {
                        violations.push(Violation {
                            at,
                            invariant: "ingest_conservation",
                            detail: format!(
                                "app {}: admitted seq {} but expected offered seq {}",
                                app, seq, next_seq
                            ),
                        });
                    }
                    *next_seq = (*seq + 1).max(*next_seq);
                    let next_req = ingest_next_req.entry(*app).or_insert(0);
                    if *req != *next_req {
                        violations.push(Violation {
                            at,
                            invariant: "ingest_fifo",
                            detail: format!(
                                "app {}: admitted req {} but expected req {}",
                                app, req, next_req
                            ),
                        });
                    }
                    *next_req = (*req + 1).max(*next_req);
                    admitted_open.insert((*app, *req), at);
                }
                TraceEvent::RequestShed { app, seq, .. } => {
                    saw_ingest = true;
                    let next_seq = ingest_next_seq.entry(*app).or_insert(0);
                    if *seq != *next_seq {
                        violations.push(Violation {
                            at,
                            invariant: "ingest_conservation",
                            detail: format!(
                                "app {}: shed seq {} but expected offered seq {}",
                                app, seq, next_seq
                            ),
                        });
                    }
                    *next_seq = (*seq + 1).max(*next_seq);
                }
                TraceEvent::BackpressureOn { app, .. } => {
                    saw_ingest = true;
                    let state = bp_on.entry(*app).or_insert(false);
                    if *state {
                        violations.push(Violation {
                            at,
                            invariant: "backpressure_alternation",
                            detail: format!("app {}: BackpressureOn while already on", app),
                        });
                    }
                    *state = true;
                }
                TraceEvent::BackpressureOff { app, .. } => {
                    saw_ingest = true;
                    let state = bp_on.entry(*app).or_insert(false);
                    if !*state {
                        violations.push(Violation {
                            at,
                            invariant: "backpressure_alternation",
                            detail: format!("app {}: BackpressureOff while already off", app),
                        });
                    }
                    *state = false;
                }
                TraceEvent::RequestDone { app, req, .. } => {
                    if let Some(t0) = arrivals.remove(&(*app, *req)) {
                        let e = latencies.entry(*app).or_insert((0.0, 0));
                        e.0 += at.duration_since(t0).as_nanos() as f64;
                        e.1 += 1;
                    }
                    match last_done.get(app) {
                        Some(&prev) if *req <= prev => fifo_violations.push(Violation {
                            at,
                            invariant: "tenant_fifo",
                            detail: format!(
                                "app {}: request {} completed after request {}",
                                app, req, prev
                            ),
                        }),
                        _ => {
                            last_done.insert(*app, *req);
                        }
                    }
                }
                TraceEvent::DeviceFailed { .. } => {
                    saw_fleet = true;
                }
                TraceEvent::TenantEvacuated { app, .. } => {
                    saw_fleet = true;
                    if let Some(open) = evacuated.insert(*app, at) {
                        violations.push(Violation {
                            at,
                            invariant: "evacuation_closure",
                            detail: format!(
                                "app {} evacuated again while its evacuation at {} ns is open",
                                app,
                                open.as_nanos()
                            ),
                        });
                    }
                }
                TraceEvent::TenantRestored {
                    app, recovery_ns, ..
                } => {
                    saw_fleet = true;
                    if evacuated.remove(app).is_none() {
                        violations.push(Violation {
                            at,
                            invariant: "evacuation_closure",
                            detail: format!("app {} restored without an open evacuation", app),
                        });
                    }
                    if let Some(bound) = self.config.max_recovery_ns {
                        if *recovery_ns > bound {
                            violations.push(Violation {
                                at,
                                invariant: "recovery_bound",
                                detail: format!(
                                    "app {} took {} ns to recover, bound is {} ns",
                                    app, recovery_ns, bound
                                ),
                            });
                        }
                    }
                }
                TraceEvent::MigrationFailed { app, .. } => {
                    saw_fleet = true;
                    evacuated.remove(app);
                    stranded.push(*app);
                }
                _ => {}
            }

            // Oversubscription: binding only at the end of each timestamp
            // group (the engine reassigns shares event-by-event within an
            // instant).
            let group_end = events
                .get(i + 1)
                .map(|next| next.at() != at)
                .unwrap_or(true);
            if group_end {
                let total: f64 = alloc.values().map(|&(_, s)| s).sum();
                if total > cap {
                    violations.push(Violation {
                        at,
                        invariant: "oversubscription",
                        detail: format!(
                            "live SM allocations sum to {:.3} > {} SMs",
                            total, self.config.num_sms
                        ),
                    });
                }
            }
            i += 1;
        }

        // Migration invariants bind only for fleet-recovery traces: an
        // ordinary horizon-reached run legitimately ends with uncompleted
        // requests and no evacuations.
        if saw_fleet {
            violations.extend(fifo_violations);
            let mut open_evacs: Vec<(u32, SimTime)> =
                evacuated.iter().map(|(&a, &t)| (a, t)).collect();
            open_evacs.sort_unstable();
            for (app, open) in open_evacs {
                violations.push(Violation {
                    at: open,
                    invariant: "evacuation_closure",
                    detail: format!(
                        "app {} evacuated at {} ns but never restored or typed-failed",
                        app,
                        open.as_nanos()
                    ),
                });
            }
            let mut lost: Vec<(u32, u64, SimTime)> = arrivals
                .iter()
                .filter(|((app, _), _)| !stranded.contains(app))
                .map(|(&(app, req), &t0)| (app, req, t0))
                .collect();
            lost.sort_unstable();
            for (app, req, t0) in lost {
                violations.push(Violation {
                    at: t0,
                    invariant: "request_lost",
                    detail: format!(
                        "app {} request {} arrived at {} ns but never completed \
                         (tenant was not reported stranded)",
                        app,
                        req,
                        t0.as_nanos()
                    ),
                });
            }
        }

        // Ingest handoff closure: every admission must have reached the
        // scheduler by end of trace (the arrival is injected at the same
        // virtual instant, so an open entry means a dropped handoff).
        if saw_ingest {
            let mut open: Vec<(u32, u64, SimTime)> = admitted_open
                .iter()
                .map(|(&(app, req), &t0)| (app, req, t0))
                .collect();
            open.sort_unstable();
            for (app, req, t0) in open {
                violations.push(Violation {
                    at: t0,
                    invariant: "ingest_fifo",
                    detail: format!(
                        "app {} request {} admitted at {} ns but never arrived \
                         at the scheduler",
                        app,
                        req,
                        t0.as_nanos()
                    ),
                });
            }
        }

        // Fairness: normalized progress spread over completed requests.
        let mut spread = None;
        if let Some(iso) = &self.config.iso_targets {
            let mut progress: Vec<f64> = Vec::new();
            for (&app, &(sum, n)) in &latencies {
                let target = iso.get(app as usize).copied().unwrap_or(0.0);
                if n > 0 && target > 0.0 {
                    progress.push((sum / n as f64) / target);
                }
            }
            if progress.len() >= 2 {
                let max = progress.iter().cloned().fold(f64::MIN, f64::max);
                let min = progress.iter().cloned().fold(f64::MAX, f64::min);
                let s = max / min.max(f64::MIN_POSITIVE);
                spread = Some(s);
                let bound = self
                    .config
                    .fairness_spread
                    .unwrap_or(DEFAULT_FAIRNESS_SPREAD);
                if s > bound {
                    violations.push(Violation {
                        at: last_at,
                        invariant: "fairness",
                        detail: format!(
                            "normalized-progress spread {:.2} exceeds bound {:.2}",
                            s, bound
                        ),
                    });
                }
            }
        }

        TraceReport {
            events: events.len(),
            violations,
            fairness_spread: spread,
            squad_checks_ran: saw_squads,
        }
    }
}

/// True when `kernel` falls inside `e`'s contiguous kernel range.
fn in_entry(e: &TraceSquadEntry, kernel: u32) -> bool {
    kernel >= e.first_kernel && kernel < e.first_kernel + e.count
}

fn side(restricted: bool) -> &'static str {
    if restricted {
        "restricted"
    } else {
        "unrestricted"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ns: u64) -> SimTime {
        SimTime::from_nanos(ns)
    }

    fn launch(
        at: u64,
        seq: u64,
        app: u32,
        kernel: u32,
        queue: u32,
        restricted: bool,
    ) -> TraceEvent {
        TraceEvent::KernelLaunch {
            at: t(at),
            seq,
            app,
            kernel,
            queue,
            restricted,
        }
    }

    fn start(at: u64, seq: u64, queue: u32) -> TraceEvent {
        TraceEvent::KernelStart {
            at: t(at),
            seq,
            queue,
        }
    }

    fn sm(at: u64, seq: u64, sms: f64) -> TraceEvent {
        TraceEvent::SmAlloc {
            at: t(at),
            seq,
            sms,
        }
    }

    fn done(at: u64, seq: u64, queue: u32) -> TraceEvent {
        TraceEvent::KernelComplete {
            at: t(at),
            seq,
            queue,
        }
    }

    fn validator(num_sms: u32) -> TraceValidator {
        TraceValidator::new(ValidatorConfig::structural(num_sms))
    }

    #[test]
    fn clean_fifo_trace_passes() {
        let ev = vec![
            launch(0, 1, 0, 0, 0, false),
            launch(0, 2, 0, 1, 0, false),
            start(10, 1, 0),
            sm(10, 1, 80.0),
            done(20, 1, 0),
            start(20, 2, 0),
            sm(20, 2, 108.0),
            done(30, 2, 0),
        ];
        validator(108).validate(&ev).assert_clean();
    }

    #[test]
    fn out_of_order_start_is_flagged() {
        let ev = vec![
            launch(0, 1, 0, 0, 0, false),
            launch(0, 2, 0, 1, 0, false),
            start(10, 2, 0),
        ];
        let r = validator(108).validate(&ev);
        assert_eq!(r.violations.len(), 1);
        assert_eq!(r.violations[0].invariant, "queue_fifo");
    }

    #[test]
    fn settled_oversubscription_is_flagged_but_transient_is_not() {
        // Within one instant the sum transiently hits 150; by the end of
        // the instant it settles at 108 — not a violation.
        let transient = vec![
            launch(0, 1, 0, 0, 0, false),
            launch(0, 2, 1, 0, 1, false),
            start(10, 1, 0),
            start(10, 2, 1),
            sm(10, 1, 100.0),
            sm(10, 2, 50.0),
            sm(10, 1, 58.0),
        ];
        validator(108).validate(&transient).assert_clean();

        let settled = vec![
            launch(0, 1, 0, 0, 0, false),
            launch(0, 2, 1, 0, 1, false),
            start(10, 1, 0),
            start(10, 2, 1),
            sm(10, 1, 100.0),
            sm(10, 2, 50.0),
        ];
        let r = validator(108).validate(&settled);
        assert_eq!(r.violations.len(), 1);
        assert_eq!(r.violations[0].invariant, "oversubscription");
    }

    #[test]
    fn split_discipline_checks_both_sides() {
        let squad = TraceEvent::SquadFormed {
            at: t(0),
            id: 0,
            spatial: false,
            split_ratio: 0.5,
            entries: vec![TraceSquadEntry {
                app: 0,
                first_kernel: 0,
                count: 4,
                split_at: 2,
                sm_cap: 54,
                mode: 0,
            }],
        };
        // Kernel 2 is a rear kernel but launches restricted: violation.
        let ev = vec![squad.clone(), launch(5, 1, 0, 2, 0, true)];
        let r = validator(108).validate(&ev);
        assert_eq!(r.violations.len(), 1);
        assert_eq!(r.violations[0].invariant, "split_discipline");

        // Correct sides: head restricted, rear unrestricted.
        let ev = vec![
            squad,
            launch(5, 1, 0, 0, 0, true),
            launch(5, 2, 0, 2, 1, false),
        ];
        validator(108).validate(&ev).assert_clean();
    }

    #[test]
    fn co_residency_flags_non_member_start() {
        let ev = vec![
            TraceEvent::SquadFormed {
                at: t(0),
                id: 0,
                spatial: false,
                split_ratio: 0.5,
                entries: vec![TraceSquadEntry {
                    app: 0,
                    first_kernel: 0,
                    count: 1,
                    split_at: 0,
                    sm_cap: 0,
                    mode: 2,
                }],
            },
            launch(0, 1, 1, 0, 7, false),
            start(5, 1, 7),
        ];
        let r = validator(108).validate(&ev);
        assert_eq!(r.violations.len(), 1);
        assert_eq!(r.violations[0].invariant, "co_residency");
    }

    #[test]
    fn fairness_spread_is_bounded() {
        let ev = vec![
            TraceEvent::RequestArrival {
                at: t(0),
                app: 0,
                req: 0,
            },
            TraceEvent::RequestArrival {
                at: t(0),
                app: 1,
                req: 0,
            },
            TraceEvent::RequestDone {
                at: t(100),
                app: 0,
                req: 0,
            },
            TraceEvent::RequestDone {
                at: t(5000),
                app: 1,
                req: 0,
            },
        ];
        let cfg = ValidatorConfig {
            num_sms: 108,
            iso_targets: Some(vec![100.0, 100.0]),
            fairness_spread: Some(10.0),
            max_recovery_ns: None,
        };
        let r = TraceValidator::new(cfg.clone()).validate(&ev);
        assert_eq!(r.violations.len(), 1);
        assert_eq!(r.violations[0].invariant, "fairness");
        assert!(r.fairness_spread.unwrap_or(0.0) > 10.0);

        let loose = ValidatorConfig {
            fairness_spread: Some(100.0),
            ..cfg
        };
        TraceValidator::new(loose).validate(&ev).assert_clean();
    }

    fn arrival(at: u64, app: u32, req: u64) -> TraceEvent {
        TraceEvent::RequestArrival {
            at: t(at),
            app,
            req,
        }
    }

    fn req_done(at: u64, app: u32, req: u64) -> TraceEvent {
        TraceEvent::RequestDone {
            at: t(at),
            app,
            req,
        }
    }

    fn evacuate(at: u64, gpu: u32, app: u32) -> TraceEvent {
        TraceEvent::TenantEvacuated {
            at: t(at),
            gpu,
            app,
            in_flight: 1,
            queued: 0,
        }
    }

    fn restore(at: u64, gpu: u32, app: u32, recovery_ns: u64) -> TraceEvent {
        TraceEvent::TenantRestored {
            at: t(at),
            gpu,
            app,
            recovery_ns,
        }
    }

    #[test]
    fn clean_migration_trace_passes() {
        let ev = vec![
            arrival(0, 0, 0),
            TraceEvent::DeviceFailed {
                at: t(50),
                gpu: 0,
                permanent: true,
            },
            evacuate(50, 0, 0),
            restore(80, 1, 0, 30),
            req_done(200, 0, 0),
        ];
        validator(108).validate(&ev).assert_clean();
    }

    #[test]
    fn unclosed_evacuation_is_flagged() {
        let ev = vec![evacuate(50, 0, 0)];
        let r = validator(108).validate(&ev);
        assert_eq!(r.violations.len(), 1);
        assert_eq!(r.violations[0].invariant, "evacuation_closure");

        // Restored-without-evacuation is the dual.
        let ev = vec![restore(80, 1, 0, 30)];
        let r = validator(108).validate(&ev);
        assert_eq!(r.violations.len(), 1);
        assert_eq!(r.violations[0].invariant, "evacuation_closure");

        // A typed migration failure also closes the evacuation.
        let ev = vec![
            evacuate(50, 0, 0),
            TraceEvent::MigrationFailed {
                at: t(50),
                app: 0,
                reason: 0,
            },
        ];
        validator(108).validate(&ev).assert_clean();
    }

    #[test]
    fn recovery_bound_is_enforced_when_configured() {
        let ev = vec![evacuate(50, 0, 0), restore(5_050, 1, 0, 5_000)];
        let cfg = ValidatorConfig {
            max_recovery_ns: Some(1_000),
            ..ValidatorConfig::structural(108)
        };
        let r = TraceValidator::new(cfg).validate(&ev);
        assert_eq!(r.violations.len(), 1);
        assert_eq!(r.violations[0].invariant, "recovery_bound");

        // Without the bound, only closure is checked.
        validator(108).validate(&ev).assert_clean();
    }

    #[test]
    fn lost_request_is_flagged_unless_tenant_is_stranded() {
        // App 0's request never completes and app 0 was not stranded.
        let ev = vec![
            arrival(0, 0, 0),
            TraceEvent::DeviceFailed {
                at: t(50),
                gpu: 0,
                permanent: true,
            },
        ];
        let r = validator(108).validate(&ev);
        assert_eq!(r.violations.len(), 1);
        assert_eq!(r.violations[0].invariant, "request_lost");

        // Stranded tenants are exempt (their loss is typed).
        let ev = vec![
            arrival(0, 0, 0),
            TraceEvent::DeviceFailed {
                at: t(50),
                gpu: 0,
                permanent: true,
            },
            TraceEvent::MigrationFailed {
                at: t(50),
                app: 0,
                reason: 0,
            },
        ];
        validator(108).validate(&ev).assert_clean();

        // Without fleet events the check does not bind (horizon runs
        // legitimately end with open requests).
        let ev = vec![arrival(0, 0, 0)];
        validator(108).validate(&ev).assert_clean();
    }

    #[test]
    fn tenant_fifo_binds_only_for_fleet_traces() {
        let reordered = vec![
            arrival(0, 0, 0),
            arrival(0, 0, 1),
            req_done(100, 0, 1),
            req_done(200, 0, 0),
        ];
        // No fleet events: tolerated.
        validator(108).validate(&reordered).assert_clean();

        // Same stream in a fleet-recovery trace: flagged.
        let mut fleet = vec![TraceEvent::DeviceFailed {
            at: t(0),
            gpu: 0,
            permanent: false,
        }];
        fleet.extend(reordered);
        let r = validator(108).validate(&fleet);
        assert_eq!(r.violations.len(), 1);
        assert_eq!(r.violations[0].invariant, "tenant_fifo");
    }

    fn admitted(at: u64, app: u32, req: u64, seq: u64) -> TraceEvent {
        TraceEvent::RequestAdmitted {
            at: t(at),
            app,
            req,
            seq,
        }
    }

    fn shed(at: u64, app: u32, seq: u64) -> TraceEvent {
        TraceEvent::RequestShed {
            at: t(at),
            app,
            seq,
            reason: 0,
        }
    }

    #[test]
    fn clean_ingest_trace_passes() {
        let ev = vec![
            admitted(0, 0, 0, 0),
            arrival(0, 0, 0),
            shed(10, 0, 1),
            TraceEvent::BackpressureOn {
                at: t(20),
                app: 0,
                outstanding: 4,
            },
            shed(20, 0, 2),
            TraceEvent::BackpressureOff { at: t(30), app: 0 },
            admitted(30, 0, 1, 3),
            arrival(30, 0, 1),
        ];
        validator(108).validate(&ev).assert_clean();
    }

    #[test]
    fn seq_gap_breaks_conservation() {
        // Offered seq 1 vanished: neither admitted nor shed.
        let ev = vec![admitted(0, 0, 0, 0), shed(10, 0, 2)];
        let r = validator(108).validate(&ev);
        assert_eq!(r.violations.len(), 2, "{:?}", r.violations);
        assert_eq!(r.violations[0].invariant, "ingest_conservation");
        // The admitted request also never reached the scheduler.
        assert_eq!(r.violations[1].invariant, "ingest_fifo");
    }

    #[test]
    fn admitted_request_must_reach_the_scheduler_at_the_same_instant() {
        // Arrival at a later instant than the admission: flagged.
        let ev = vec![admitted(0, 0, 0, 0), arrival(5, 0, 0)];
        let r = validator(108).validate(&ev);
        assert_eq!(r.violations.len(), 1);
        assert_eq!(r.violations[0].invariant, "ingest_fifo");
    }

    #[test]
    fn non_dense_req_breaks_ingest_fifo() {
        let ev = vec![
            admitted(0, 0, 1, 0),
            arrival(0, 0, 1),
            admitted(5, 0, 0, 1),
            arrival(5, 0, 0),
        ];
        let r = validator(108).validate(&ev);
        assert!(r
            .violations
            .iter()
            .any(|v| v.invariant == "ingest_fifo" && v.detail.contains("expected req")));
    }

    #[test]
    fn backpressure_must_alternate() {
        let on = |at| TraceEvent::BackpressureOn {
            at: t(at),
            app: 0,
            outstanding: 1,
        };
        let off = |at| TraceEvent::BackpressureOff { at: t(at), app: 0 };
        validator(108)
            .validate(&[on(0), off(5), on(10)])
            .assert_clean();
        let r = validator(108).validate(&[on(0), on(5)]);
        assert_eq!(r.violations.len(), 1);
        assert_eq!(r.violations[0].invariant, "backpressure_alternation");
        let r = validator(108).validate(&[off(0)]);
        assert_eq!(r.violations[0].invariant, "backpressure_alternation");
    }

    #[test]
    fn retried_kernel_keeps_fifo_clean() {
        // seq 1 fails while queued; seq 2 (the retry) launches behind an
        // already-running seq and the queue stays FIFO.
        let ev = vec![
            launch(0, 1, 0, 0, 0, false),
            TraceEvent::KernelFailed {
                at: t(5),
                seq: 1,
                queue: 0,
            },
            launch(10, 2, 0, 0, 0, false),
            start(12, 2, 0),
            done(20, 2, 0),
        ];
        validator(108).validate(&ev).assert_clean();
    }
}
