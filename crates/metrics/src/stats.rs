//! Request logging and latency statistics.

use sim_core::{SimDuration, SimTime};

/// One completed (or in-flight) request.
#[derive(Clone, Copy, Debug)]
pub struct RequestRecord {
    /// Application index.
    pub app: usize,
    /// Per-application request sequence number.
    pub req: usize,
    /// Arrival at the host scheduler.
    pub arrival: SimTime,
    /// Completion of the last kernel, if finished.
    pub completion: Option<SimTime>,
}

impl RequestRecord {
    /// End-to-end latency, if the request completed.
    pub fn latency(&self) -> Option<SimDuration> {
        self.completion.map(|c| c.duration_since(self.arrival))
    }
}

/// Per-application request log filled in by schedulers.
#[derive(Clone, Debug, Default)]
pub struct RequestLog {
    per_app: Vec<Vec<RequestRecord>>,
}

impl RequestLog {
    /// Creates a log for `apps` applications.
    pub fn new(apps: usize) -> Self {
        RequestLog {
            per_app: vec![Vec::new(); apps],
        }
    }

    /// Number of applications.
    pub fn apps(&self) -> usize {
        self.per_app.len()
    }

    /// Records a request arrival. Requests of one app must be recorded in
    /// sequence-number order.
    ///
    /// # Panics
    ///
    /// Panics if `app` is out of range or `req` is not the next sequence
    /// number for that app.
    pub fn arrived(&mut self, app: usize, req: usize, at: SimTime) {
        let records = &mut self.per_app[app];
        assert_eq!(records.len(), req, "requests must arrive in order per app");
        records.push(RequestRecord {
            app,
            req,
            arrival: at,
            completion: None,
        });
    }

    /// Records a request completion.
    ///
    /// # Panics
    ///
    /// Panics if the request was never recorded as arrived, or completed
    /// twice, or completes before it arrived.
    pub fn completed(&mut self, app: usize, req: usize, at: SimTime) {
        let rec = &mut self.per_app[app][req];
        assert!(rec.completion.is_none(), "request completed twice");
        assert!(at >= rec.arrival, "completion before arrival");
        rec.completion = Some(at);
    }

    /// All records of one application.
    pub fn records(&self, app: usize) -> &[RequestRecord] {
        &self.per_app[app]
    }

    /// Latencies of one application's completed requests.
    pub fn latencies(&self, app: usize) -> Vec<SimDuration> {
        self.per_app[app]
            .iter()
            .filter_map(|r| r.latency())
            .collect()
    }

    /// Summary statistics for one application.
    pub fn stats(&self, app: usize) -> LatencyStats {
        LatencyStats::from_latencies(&self.latencies(app))
    }

    /// Mean latency across *all* completed requests of all applications.
    pub fn overall_mean(&self) -> Option<SimDuration> {
        let all: Vec<SimDuration> = (0..self.apps()).flat_map(|a| self.latencies(a)).collect();
        if all.is_empty() {
            return None;
        }
        Some(mean(&all))
    }

    /// Mean of the per-application mean latencies (the paper's "average
    /// latency of requests from different applications").
    pub fn mean_of_app_means(&self) -> Option<SimDuration> {
        let means: Vec<SimDuration> = (0..self.apps())
            .filter_map(|a| self.stats(a).mean)
            .collect();
        if means.is_empty() {
            return None;
        }
        Some(mean(&means))
    }

    /// Completed-request throughput of one app over `[from, to]`, in
    /// requests per second.
    pub fn throughput(&self, app: usize, from: SimTime, to: SimTime) -> f64 {
        let n = self.per_app[app]
            .iter()
            .filter(|r| r.completion.is_some_and(|c| c >= from && c <= to))
            .count();
        let span = to.duration_since(from).as_secs_f64();
        if span <= 0.0 {
            0.0
        } else {
            n as f64 / span
        }
    }

    /// Number of completed requests for one app.
    pub fn completed_count(&self, app: usize) -> usize {
        self.per_app[app]
            .iter()
            .filter(|r| r.completion.is_some())
            .count()
    }

    /// Fraction of an app's completed requests whose latency exceeds
    /// `target` (§6.5 QoS-violation rate).
    pub fn violation_rate(&self, app: usize, target: SimDuration) -> f64 {
        let lats = self.latencies(app);
        if lats.is_empty() {
            return 0.0;
        }
        lats.iter().filter(|&&l| l > target).count() as f64 / lats.len() as f64
    }
}

fn mean(durs: &[SimDuration]) -> SimDuration {
    let total_ns: u128 = durs.iter().map(|d| d.as_nanos() as u128).sum();
    SimDuration::from_nanos((total_ns / durs.len() as u128) as u64)
}

/// Summary statistics over a set of latencies.
#[derive(Clone, Copy, Debug, Default)]
pub struct LatencyStats {
    /// Number of samples.
    pub count: usize,
    /// Mean latency.
    pub mean: Option<SimDuration>,
    /// Median (p50).
    pub p50: Option<SimDuration>,
    /// 95th percentile.
    pub p95: Option<SimDuration>,
    /// 99th percentile.
    pub p99: Option<SimDuration>,
    /// Minimum.
    pub min: Option<SimDuration>,
    /// Maximum.
    pub max: Option<SimDuration>,
}

impl LatencyStats {
    /// Computes statistics from raw latencies.
    pub fn from_latencies(latencies: &[SimDuration]) -> Self {
        if latencies.is_empty() {
            return LatencyStats::default();
        }
        let mut sorted = latencies.to_vec();
        sorted.sort_unstable();
        let pct = |p: f64| -> SimDuration {
            // Nearest-rank percentile.
            let rank = ((p * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
            sorted[rank - 1]
        };
        LatencyStats {
            count: sorted.len(),
            mean: Some(mean(&sorted)),
            p50: Some(pct(0.50)),
            p95: Some(pct(0.95)),
            p99: Some(pct(0.99)),
            min: sorted.first().copied(),
            max: sorted.last().copied(),
        }
    }

    /// Mean in milliseconds, or NaN when empty (for report formatting).
    pub fn mean_ms(&self) -> f64 {
        self.mean.map_or(f64::NAN, |d| d.as_millis_f64())
    }
}

/// The paper's latency-deviation metric (§6.2):
/// `Σ_j max(achieved_j − iso_target_j, 0)`.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn latency_deviation(achieved: &[SimDuration], iso_target: &[SimDuration]) -> SimDuration {
    assert_eq!(
        achieved.len(),
        iso_target.len(),
        "one achieved latency per target"
    );
    achieved
        .iter()
        .zip(iso_target)
        .map(|(&a, &t)| a.saturating_sub(t))
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn ms(x: u64) -> SimDuration {
        SimDuration::from_millis(x)
    }

    #[test]
    fn log_round_trip() {
        let mut log = RequestLog::new(2);
        log.arrived(0, 0, SimTime::ZERO);
        log.arrived(1, 0, SimTime::from_millis(1));
        log.completed(0, 0, SimTime::from_millis(10));
        log.completed(1, 0, SimTime::from_millis(4));
        assert_eq!(log.latencies(0), vec![ms(10)]);
        assert_eq!(log.latencies(1), vec![ms(3)]);
        assert_eq!(log.completed_count(0), 1);
        assert_eq!(log.overall_mean(), Some(SimDuration::from_micros(6500)));
        assert_eq!(
            log.mean_of_app_means(),
            Some(SimDuration::from_micros(6500))
        );
    }

    #[test]
    fn incomplete_requests_are_excluded() {
        let mut log = RequestLog::new(1);
        log.arrived(0, 0, SimTime::ZERO);
        log.arrived(0, 1, SimTime::from_millis(5));
        log.completed(0, 0, SimTime::from_millis(2));
        assert_eq!(log.latencies(0).len(), 1);
        assert_eq!(log.completed_count(0), 1);
        assert!(log.records(0)[1].latency().is_none());
    }

    #[test]
    #[should_panic(expected = "in order")]
    fn out_of_order_arrivals_panic() {
        let mut log = RequestLog::new(1);
        log.arrived(0, 1, SimTime::ZERO);
    }

    #[test]
    #[should_panic(expected = "twice")]
    fn double_completion_panics() {
        let mut log = RequestLog::new(1);
        log.arrived(0, 0, SimTime::ZERO);
        log.completed(0, 0, SimTime::from_millis(1));
        log.completed(0, 0, SimTime::from_millis(2));
    }

    #[test]
    fn stats_percentiles() {
        let lats: Vec<SimDuration> = (1..=100).map(ms).collect();
        let s = LatencyStats::from_latencies(&lats);
        assert_eq!(s.count, 100);
        assert_eq!(s.p50, Some(ms(50)));
        assert_eq!(s.p95, Some(ms(95)));
        assert_eq!(s.p99, Some(ms(99)));
        assert_eq!(s.min, Some(ms(1)));
        assert_eq!(s.max, Some(ms(100)));
        assert_eq!(s.mean, Some(SimDuration::from_micros(50_500)));
    }

    #[test]
    fn empty_stats_are_none() {
        let s = LatencyStats::from_latencies(&[]);
        assert_eq!(s.count, 0);
        assert!(s.mean.is_none());
        assert!(s.mean_ms().is_nan());
    }

    #[test]
    fn deviation_only_counts_excess() {
        let dev = latency_deviation(&[ms(12), ms(5)], &[ms(10), ms(8)]);
        assert_eq!(dev, ms(2)); // 2ms over + 0 (under target is free)
        let none = latency_deviation(&[ms(1), ms(1)], &[ms(10), ms(8)]);
        assert_eq!(none, SimDuration::ZERO);
    }

    #[test]
    fn throughput_counts_window() {
        let mut log = RequestLog::new(1);
        for i in 0..10 {
            log.arrived(0, i, SimTime::from_millis(i as u64 * 100));
            log.completed(0, i, SimTime::from_millis(i as u64 * 100 + 50));
        }
        // All 10 completions within [0, 1s): 10 rps.
        let tput = log.throughput(0, SimTime::ZERO, SimTime::from_millis(1000));
        assert!((tput - 10.0).abs() < 1e-9);
        // Only the first five complete before 500 ms.
        let tput = log.throughput(0, SimTime::ZERO, SimTime::from_millis(500));
        assert!((tput - 10.0).abs() < 1e-9, "5 completions / 0.5 s = {tput}");
    }

    #[test]
    fn violation_rate_counts_exceedances() {
        let mut log = RequestLog::new(1);
        for i in 0..4 {
            log.arrived(0, i, SimTime::ZERO);
            log.completed(0, i, SimTime::from_millis((i as u64 + 1) * 5));
        }
        // Latencies 5, 10, 15, 20 ms; target 12 ms -> 2 of 4 violate.
        assert!((log.violation_rate(0, ms(12)) - 0.5).abs() < 1e-9);
        assert_eq!(log.violation_rate(0, ms(100)), 0.0);
    }

    proptest! {
        #[test]
        fn prop_percentiles_are_ordered(lats in proptest::collection::vec(1u64..10_000, 1..300)) {
            let durs: Vec<SimDuration> = lats.iter().map(|&x| SimDuration::from_micros(x)).collect();
            let s = LatencyStats::from_latencies(&durs);
            let (p50, p95, p99) = (s.p50.unwrap(), s.p95.unwrap(), s.p99.unwrap());
            prop_assert!(s.min.unwrap() <= p50);
            prop_assert!(p50 <= p95);
            prop_assert!(p95 <= p99);
            prop_assert!(p99 <= s.max.unwrap());
            prop_assert!(s.mean.unwrap() >= s.min.unwrap());
            prop_assert!(s.mean.unwrap() <= s.max.unwrap());
        }

        #[test]
        fn prop_deviation_is_monotone(
            pairs in proptest::collection::vec((0u64..100, 0u64..100), 1..20)
        ) {
            let achieved: Vec<SimDuration> = pairs.iter().map(|&(a, _)| ms(a)).collect();
            let targets: Vec<SimDuration> = pairs.iter().map(|&(_, t)| ms(t)).collect();
            let dev = latency_deviation(&achieved, &targets);
            // Raising every achieved latency by 1ms cannot lower deviation.
            let worse: Vec<SimDuration> = achieved.iter().map(|&a| a + ms(1)).collect();
            let dev2 = latency_deviation(&worse, &targets);
            prop_assert!(dev2 >= dev);
        }
    }
}
