//! Derived counters computed from a scheduler trace.
//!
//! [`TraceCounters::from_events`] sweeps a [`TraceEvent`] stream once and
//! derives the observability metrics that are awkward to keep in the
//! scheduler itself:
//!
//! * **bubble time** — virtual time during which work was outstanding
//!   (launched, not finished) but the device compute allocation was
//!   (near-)zero: scheduling bubbles, sync gaps, context-switch vacuums;
//! * **overlap fraction** — the share of busy time during which two or
//!   more tenants held SMs concurrently (the spatial-sharing win);
//! * **per-tenant launch/completion/failure counts and SM-busy time**;
//! * **prediction error** — mean relative error of the config
//!   determiner's predicted squad duration vs the observed one.

use std::collections::HashMap;

use sim_core::trace::TraceEvent;
use sim_core::SimTime;

/// A running kernel's compute share is "live" above this many SMs.
const LIVE_SMS: f64 = 0.5;

/// Per-tenant counters derived from a trace.
#[derive(Clone, Debug, Default)]
pub struct TenantCounters {
    /// Kernels launched (including retries).
    pub launched: u64,
    /// Kernels completed.
    pub completed: u64,
    /// Kernels killed by injected crashes.
    pub failed: u64,
    /// Virtual time the tenant held a live SM allocation, in ns.
    pub busy_ns: u64,
}

/// Whole-trace derived counters.
#[derive(Clone, Debug, Default)]
pub struct TraceCounters {
    /// Virtual time with outstanding work, in ns (first launch to last
    /// completion, minus idle gaps with nothing outstanding).
    pub busy_ns: u64,
    /// Busy time with a near-zero device allocation, in ns.
    pub bubble_ns: u64,
    /// Busy time during which ≥ 2 tenants held live allocations, in ns.
    pub overlap_ns: u64,
    /// Squads formed.
    pub squads: u64,
    /// Mean relative error of predicted vs observed squad duration, over
    /// squads the determiner actually predicted (`None` when there were
    /// none).
    pub prediction_error: Option<f64>,
    /// Per-tenant counters, indexed by tenant id.
    pub tenants: Vec<TenantCounters>,
}

impl TraceCounters {
    /// Fraction of busy time spent in bubbles (0 when never busy).
    pub fn bubble_fraction(&self) -> f64 {
        if self.busy_ns == 0 {
            0.0
        } else {
            self.bubble_ns as f64 / self.busy_ns as f64
        }
    }

    /// Fraction of busy time with ≥ 2 tenants co-resident on the SMs.
    pub fn overlap_fraction(&self) -> f64 {
        if self.busy_ns == 0 {
            0.0
        } else {
            self.overlap_ns as f64 / self.busy_ns as f64
        }
    }

    /// Sweeps `events` (already in virtual-time order) and derives the
    /// counters.
    pub fn from_events(events: &[TraceEvent]) -> Self {
        let mut c = TraceCounters::default();
        // seq -> (app, sms) for kernels between start and completion.
        let mut alloc: HashMap<u64, (u32, f64)> = HashMap::new();
        let mut seq_app: HashMap<u64, u32> = HashMap::new();
        let mut outstanding: i64 = 0;
        let mut prev_at = SimTime::ZERO;
        // squad id -> (formed_at, predicted_ns)
        let mut squad_formed: HashMap<u64, SimTime> = HashMap::new();
        let mut squad_pred: HashMap<u64, u64> = HashMap::new();
        let mut err_sum = 0.0;
        let mut err_n = 0u64;

        let tenant = |c: &mut TraceCounters, app: u32| -> usize {
            let i = app as usize;
            if c.tenants.len() <= i {
                c.tenants.resize(i + 1, TenantCounters::default());
            }
            i
        };

        for ev in events {
            let at = ev.at();
            // Account the interval [prev_at, at) against the state that
            // held during it.
            let dt = at.duration_since(prev_at).as_nanos();
            if dt > 0 && outstanding > 0 {
                c.busy_ns += dt;
                let mut live_apps: Vec<u32> = Vec::new();
                let mut total = 0.0;
                for &(app, sms) in alloc.values() {
                    total += sms;
                    if sms > LIVE_SMS && !live_apps.contains(&app) {
                        live_apps.push(app);
                    }
                }
                if total < LIVE_SMS {
                    c.bubble_ns += dt;
                }
                if live_apps.len() >= 2 {
                    c.overlap_ns += dt;
                }
                for app in live_apps {
                    let i = tenant(&mut c, app);
                    c.tenants[i].busy_ns += dt;
                }
            }
            prev_at = prev_at.max(at);

            match ev {
                TraceEvent::KernelLaunch { seq, app, .. } => {
                    seq_app.insert(*seq, *app);
                    outstanding += 1;
                    let i = tenant(&mut c, *app);
                    c.tenants[i].launched += 1;
                }
                TraceEvent::SmAlloc { seq, sms, .. } => {
                    let app = seq_app.get(seq).copied().unwrap_or(u32::MAX);
                    alloc.insert(*seq, (app, *sms));
                }
                TraceEvent::KernelComplete { seq, .. } => {
                    alloc.remove(seq);
                    outstanding -= 1;
                    if let Some(app) = seq_app.get(seq) {
                        let i = tenant(&mut c, *app);
                        c.tenants[i].completed += 1;
                    }
                }
                TraceEvent::KernelFailed { seq, .. } => {
                    alloc.remove(seq);
                    outstanding -= 1;
                    if let Some(app) = seq_app.get(seq) {
                        let i = tenant(&mut c, *app);
                        c.tenants[i].failed += 1;
                    }
                }
                TraceEvent::SquadFormed { id, .. } => {
                    c.squads += 1;
                    squad_formed.insert(*id, at);
                }
                TraceEvent::ConfigChosen {
                    squad,
                    predicted_ns,
                    ..
                } if *predicted_ns > 0 => {
                    squad_pred.insert(*squad, *predicted_ns);
                }
                TraceEvent::SquadRetired { id, .. } => {
                    if let (Some(t0), Some(pred)) = (squad_formed.remove(id), squad_pred.remove(id))
                    {
                        let actual = at.duration_since(t0).as_nanos() as f64;
                        let p = pred as f64;
                        err_sum += (actual - p).abs() / p;
                        err_n += 1;
                    }
                }
                _ => {}
            }
        }

        if err_n > 0 {
            c.prediction_error = Some(err_sum / err_n as f64);
        }
        c
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ns: u64) -> SimTime {
        SimTime::from_nanos(ns)
    }

    #[test]
    fn bubble_and_overlap_accounting() {
        let ev = vec![
            TraceEvent::KernelLaunch {
                at: t(0),
                seq: 1,
                app: 0,
                kernel: 0,
                queue: 0,
                restricted: false,
            },
            TraceEvent::KernelLaunch {
                at: t(0),
                seq: 2,
                app: 1,
                kernel: 0,
                queue: 1,
                restricted: false,
            },
            // 0..100: outstanding with zero alloc -> bubble.
            TraceEvent::SmAlloc {
                at: t(100),
                seq: 1,
                sms: 54.0,
            },
            TraceEvent::SmAlloc {
                at: t(100),
                seq: 2,
                sms: 54.0,
            },
            // 100..300: two tenants live -> overlap.
            TraceEvent::KernelComplete {
                at: t(300),
                seq: 1,
                queue: 0,
            },
            // 300..400: one tenant live.
            TraceEvent::KernelComplete {
                at: t(400),
                seq: 2,
                queue: 1,
            },
        ];
        let c = TraceCounters::from_events(&ev);
        assert_eq!(c.busy_ns, 400);
        assert_eq!(c.bubble_ns, 100);
        assert_eq!(c.overlap_ns, 200);
        assert_eq!(c.tenants.len(), 2);
        assert_eq!(c.tenants[0].launched, 1);
        assert_eq!(c.tenants[0].completed, 1);
        assert_eq!(c.tenants[0].busy_ns, 200);
        assert_eq!(c.tenants[1].busy_ns, 300);
        assert!((c.overlap_fraction() - 0.5).abs() < 1e-12);
        assert!((c.bubble_fraction() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn prediction_error_pairs_chosen_with_retired() {
        let ev = vec![
            TraceEvent::ConfigChosen {
                at: t(0),
                squad: 0,
                spatial: true,
                predicted_ns: 100,
                evaluated: 9,
            },
            TraceEvent::SquadFormed {
                at: t(0),
                id: 0,
                spatial: true,
                split_ratio: 0.5,
                entries: vec![],
            },
            TraceEvent::SquadRetired { at: t(150), id: 0 },
        ];
        let c = TraceCounters::from_events(&ev);
        assert_eq!(c.squads, 1);
        let err = c.prediction_error.unwrap_or(f64::NAN);
        assert!((err - 0.5).abs() < 1e-12, "err = {err}");
    }
}
