#![warn(missing_docs)]

//! Metrics for multi-tenant GPU-sharing experiments.
//!
//! The paper evaluates systems with two headline metrics (§6.2):
//!
//! * **average latency** of requests per application under a quota
//!   assignment, and
//! * **latency deviation**: `Σ_j max(T_sys^j[n^j%] − T^j[n^j%], 0)` — how
//!   far each application's achieved latency exceeds its isolated (ISO)
//!   target, summed over applications.
//!
//! This crate provides a [`RequestLog`] that schedulers fill in, summary
//! statistics ([`LatencyStats`]), the deviation metric, QoS-violation
//! accounting (§6.5), throughput, and plain-text table rendering for the
//! experiment harness.

pub mod cdf;
pub mod digest;
pub mod report;
pub mod robustness;
pub mod stats;
pub mod tracestats;
pub mod validate;

pub use cdf::Cdf;
pub use digest::Fnv;
pub use report::Table;
pub use robustness::{DegradeTransition, RobustnessReport, ShareMode};
pub use stats::{latency_deviation, LatencyStats, RequestLog, RequestRecord};
pub use tracestats::{TenantCounters, TraceCounters};
pub use validate::{TraceReport, TraceValidator, ValidatorConfig, Violation};
