//! Plain-text table rendering for experiment reports.
//!
//! The harness regenerates the paper's tables and figure series as aligned
//! monospace tables, one row per configuration, so that paper-vs-measured
//! comparisons are easy to eyeball and to grep.

use std::fmt::Write as _;

/// A simple aligned text table.
#[derive(Clone, Debug)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
    notes: Vec<String>,
}

impl Table {
    /// Creates a table with a title and column headers.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Table {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the cell count differs from the header count.
    pub fn row(&mut self, cells: &[String]) {
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row width must match headers"
        );
        self.rows.push(cells.to_vec());
    }

    /// Appends a row of displayable cells (convenience).
    pub fn row_display(&mut self, cells: &[&dyn std::fmt::Display]) {
        let owned: Vec<String> = cells.iter().map(|c| c.to_string()).collect();
        self.row(&owned);
    }

    /// Appends a free-text footnote rendered after the table body.
    pub fn note(&mut self, text: impl Into<String>) {
        self.notes.push(text.into());
    }

    /// Number of body rows.
    pub fn row_count(&self) -> usize {
        self.rows.len()
    }

    /// The table title.
    pub fn title(&self) -> &str {
        &self.title
    }

    /// Returns a cell (row, column) for programmatic checks in tests.
    pub fn cell(&self, row: usize, col: usize) -> &str {
        &self.rows[row][col]
    }

    /// Renders the table as RFC-4180-ish CSV (header row first; cells
    /// containing commas or quotes are quoted).
    pub fn to_csv(&self) -> String {
        fn esc(cell: &str) -> String {
            if cell.contains(',') || cell.contains('"') || cell.contains('\n') {
                format!("\"{}\"", cell.replace('"', "\"\""))
            } else {
                cell.to_string()
            }
        }
        let mut out = String::new();
        out.push_str(
            &self
                .headers
                .iter()
                .map(|h| esc(h))
                .collect::<Vec<_>>()
                .join(","),
        );
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.iter().map(|c| esc(c)).collect::<Vec<_>>().join(","));
            out.push('\n');
        }
        out
    }

    /// A filesystem-safe slug of the title (for CSV filenames).
    pub fn slug(&self) -> String {
        self.title
            .chars()
            .map(|c| {
                if c.is_ascii_alphanumeric() {
                    c.to_ascii_lowercase()
                } else {
                    '_'
                }
            })
            .collect::<String>()
            .split('_')
            .filter(|s| !s.is_empty())
            .collect::<Vec<_>>()
            .join("_")
    }

    /// Renders the table as aligned text.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "== {} ==", self.title);
        let line: String = self
            .headers
            .iter()
            .enumerate()
            .map(|(i, h)| format!("{:<w$}", h, w = widths[i]))
            .collect::<Vec<_>>()
            .join("  ");
        let _ = writeln!(out, "{line}");
        let _ = writeln!(out, "{}", "-".repeat(line.len()));
        for row in &self.rows {
            let line: String = row
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:<w$}", c, w = widths[i]))
                .collect::<Vec<_>>()
                .join("  ");
            let _ = writeln!(out, "{line}");
        }
        for n in &self.notes {
            let _ = writeln!(out, "  * {n}");
        }
        out
    }
}

/// Formats a millisecond value with two decimals (or `-` when NaN).
pub fn fmt_ms(x: f64) -> String {
    if x.is_nan() {
        "-".to_string()
    } else {
        format!("{x:.2}")
    }
}

/// Formats a ratio as a signed percentage, e.g. `-21.1%`.
pub fn fmt_pct(x: f64) -> String {
    if x.is_nan() {
        "-".to_string()
    } else {
        format!("{:+.1}%", x * 100.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new("demo", &["system", "latency (ms)"]);
        t.row(&["BLESS".into(), "11.30".into()]);
        t.row(&["TEMPORAL".into(), "16.80".into()]);
        t.note("lower is better");
        let s = t.render();
        assert!(s.contains("== demo =="));
        assert!(s.contains("BLESS"));
        assert!(s.contains("* lower is better"));
        // Columns align: both data rows have the latency at the same offset.
        let lines: Vec<&str> = s.lines().collect();
        let i1 = lines[3].find("11.30").unwrap();
        let i2 = lines[4].find("16.80").unwrap();
        assert_eq!(i1, i2);
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn rejects_ragged_rows() {
        let mut t = Table::new("demo", &["a", "b"]);
        t.row(&["only-one".into()]);
    }

    #[test]
    fn cell_access() {
        let mut t = Table::new("demo", &["a"]);
        t.row(&["x".into()]);
        assert_eq!(t.cell(0, 0), "x");
        assert_eq!(t.row_count(), 1);
        assert_eq!(t.title(), "demo");
    }

    #[test]
    fn csv_escapes_and_slugs() {
        let mut t = Table::new("Fig. 4(b): demo, test", &["a", "b"]);
        t.row(&["plain".into(), "with,comma".into()]);
        t.row(&["with\"quote".into(), "x".into()]);
        let csv = t.to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "a,b");
        assert_eq!(lines[1], "plain,\"with,comma\"");
        assert_eq!(lines[2], "\"with\"\"quote\",x");
        assert_eq!(t.slug(), "fig_4_b_demo_test");
    }

    #[test]
    fn formatters() {
        assert_eq!(fmt_ms(1.234), "1.23");
        assert_eq!(fmt_ms(f64::NAN), "-");
        assert_eq!(fmt_pct(-0.211), "-21.1%");
        assert_eq!(fmt_pct(0.05), "+5.0%");
    }
}
