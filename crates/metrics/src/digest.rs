//! FNV-1a digests over request logs.
//!
//! The workspace's golden tests pin simulator behaviour with 64-bit
//! FNV-1a digests of the request stream. The streaming fleet aggregator
//! (cluster crate) needs the same digest *inside* library code — each
//! GPU's log is hashed and dropped, and only the per-GPU word survives —
//! so the hasher lives here rather than being re-derived per test file.

use crate::stats::RequestLog;

/// 64-bit FNV-1a, the workspace's stock golden-digest hash.
///
/// Not a cryptographic hash; it exists to make two event streams
/// comparable byte-for-byte across runs, hosts, and worker counts.
#[derive(Clone, Copy, Debug)]
pub struct Fnv(u64);

impl Fnv {
    /// The FNV-1a offset basis.
    pub fn new() -> Self {
        Fnv(0xcbf2_9ce4_8422_2325)
    }

    /// Folds one 64-bit word, byte by byte (little-endian).
    pub fn write_u64(&mut self, x: u64) {
        for b in x.to_le_bytes() {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }

    /// The digest so far.
    pub fn finish(&self) -> u64 {
        self.0
    }
}

impl Default for Fnv {
    fn default() -> Self {
        Fnv::new()
    }
}

impl RequestLog {
    /// FNV-1a digest of the full request stream: every app's records in
    /// order, hashing `(app, req, arrival, completion)`. In-flight
    /// requests hash a `0` completion sentinel (completed requests hash
    /// `nanos + 1`, so "completed at t=0" and "never completed" differ).
    ///
    /// Any behavioural drift — one request reordered, one timestamp off
    /// by a nanosecond — changes the digest.
    pub fn digest(&self) -> u64 {
        let mut h = Fnv::new();
        h.write_u64(self.apps() as u64);
        for app in 0..self.apps() {
            for r in self.records(app) {
                h.write_u64(r.app as u64);
                h.write_u64(r.req as u64);
                h.write_u64(r.arrival.as_nanos());
                h.write_u64(r.completion.map_or(0, |c| c.as_nanos() + 1));
            }
        }
        h.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_core::SimTime;

    #[test]
    fn digest_is_stable_and_sensitive() {
        let mut log = RequestLog::new(2);
        log.arrived(0, 0, SimTime::from_millis(1));
        log.arrived(1, 0, SimTime::from_millis(2));
        log.completed(0, 0, SimTime::from_millis(5));
        let d = log.digest();
        assert_eq!(d, log.clone().digest(), "same log, same digest");

        // One nanosecond of drift changes the digest.
        let mut other = RequestLog::new(2);
        other.arrived(0, 0, SimTime::from_millis(1));
        other.arrived(1, 0, SimTime::from_millis(2));
        other.completed(0, 0, SimTime::from_nanos(5_000_001));
        assert_ne!(d, other.digest());
    }

    #[test]
    fn completion_at_zero_differs_from_in_flight() {
        let mut inflight = RequestLog::new(1);
        inflight.arrived(0, 0, SimTime::ZERO);
        let mut done = RequestLog::new(1);
        done.arrived(0, 0, SimTime::ZERO);
        done.completed(0, 0, SimTime::ZERO);
        assert_ne!(inflight.digest(), done.digest());
    }
}
