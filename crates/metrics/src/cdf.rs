//! Latency distributions: empirical CDFs and terminal sparkline plots.
//!
//! The paper's latency charts aggregate means; for debugging schedulers
//! the full distribution is often more revealing (e.g. a bimodal CDF
//! exposes the solo-vs-overlapped split behind a bland mean).

use sim_core::SimDuration;

/// An empirical latency distribution.
#[derive(Clone, Debug)]
pub struct Cdf {
    sorted: Vec<SimDuration>,
}

impl Cdf {
    /// Builds a CDF from raw samples.
    pub fn new(mut samples: Vec<SimDuration>) -> Self {
        samples.sort_unstable();
        Cdf { sorted: samples }
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// True when no samples were recorded.
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// The value at quantile `q ∈ [0, 1]` (nearest rank).
    ///
    /// # Panics
    ///
    /// Panics if empty or `q` is outside `[0, 1]`.
    pub fn quantile(&self, q: f64) -> SimDuration {
        assert!(!self.sorted.is_empty(), "empty CDF");
        assert!((0.0..=1.0).contains(&q), "quantile out of range");
        let rank = ((q * self.sorted.len() as f64).ceil() as usize).clamp(1, self.sorted.len());
        self.sorted[rank - 1]
    }

    /// Fraction of samples at or below `x`.
    pub fn fraction_below(&self, x: SimDuration) -> f64 {
        if self.sorted.is_empty() {
            return 0.0;
        }
        let n = self.sorted.partition_point(|&v| v <= x);
        n as f64 / self.sorted.len() as f64
    }

    /// Renders the CDF as a fixed-width terminal strip: `cols` buckets
    /// spanning `[min, max]`, each cell showing the cumulative fraction
    /// reached by that bucket's upper edge (`▁…█`).
    pub fn sparkline(&self, cols: usize) -> String {
        assert!(cols > 0);
        if self.sorted.is_empty() {
            return String::new();
        }
        let lo = self.sorted[0].as_nanos() as f64;
        let hi = self.sorted[self.sorted.len() - 1].as_nanos() as f64;
        const LEVELS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
        let mut out = String::new();
        for c in 0..cols {
            let edge = if hi > lo {
                lo + (hi - lo) * (c as f64 + 1.0) / cols as f64
            } else {
                hi
            };
            let frac = self.fraction_below(SimDuration::from_nanos(edge.round() as u64));
            let idx = ((frac * 8.0).ceil() as usize).clamp(1, 8) - 1;
            out.push(LEVELS[idx]);
        }
        out
    }

    /// A one-line summary: `min p50 p95 p99 max` in milliseconds plus the
    /// sparkline.
    pub fn summary_line(&self, cols: usize) -> String {
        if self.sorted.is_empty() {
            return "(no samples)".into();
        }
        format!(
            "min {:.2} p50 {:.2} p95 {:.2} p99 {:.2} max {:.2} ms  |{}|",
            self.quantile(0.0 + f64::EPSILON).as_millis_f64(),
            self.quantile(0.50).as_millis_f64(),
            self.quantile(0.95).as_millis_f64(),
            self.quantile(0.99).as_millis_f64(),
            self.quantile(1.0).as_millis_f64(),
            self.sparkline(cols)
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn ms(x: u64) -> SimDuration {
        SimDuration::from_millis(x)
    }

    #[test]
    fn quantiles_from_uniform_samples() {
        let cdf = Cdf::new((1..=100).map(ms).collect());
        assert_eq!(cdf.quantile(0.5), ms(50));
        assert_eq!(cdf.quantile(1.0), ms(100));
        assert_eq!(cdf.len(), 100);
        assert!((cdf.fraction_below(ms(25)) - 0.25).abs() < 1e-9);
        assert_eq!(cdf.fraction_below(ms(0)), 0.0);
        assert_eq!(cdf.fraction_below(ms(1000)), 1.0);
    }

    #[test]
    fn sparkline_is_monotone() {
        let cdf = Cdf::new((1..=50).map(ms).collect());
        let s: Vec<char> = cdf.sparkline(20).chars().collect();
        assert_eq!(s.len(), 20);
        // Cumulative: levels never decrease.
        const LEVELS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
        let level = |c: char| LEVELS.iter().position(|&l| l == c).unwrap();
        for w in s.windows(2) {
            assert!(level(w[1]) >= level(w[0]));
        }
        assert_eq!(*s.last().unwrap(), '█');
    }

    #[test]
    fn degenerate_single_sample() {
        let cdf = Cdf::new(vec![ms(7)]);
        assert_eq!(cdf.quantile(0.5), ms(7));
        assert_eq!(cdf.sparkline(4), "████");
        assert!(cdf.summary_line(4).contains("p99 7.00"));
    }

    #[test]
    fn empty_cdf_is_safe_where_documented() {
        let cdf = Cdf::new(vec![]);
        assert!(cdf.is_empty());
        assert_eq!(cdf.fraction_below(ms(1)), 0.0);
        assert_eq!(cdf.sparkline(5), "");
        assert_eq!(cdf.summary_line(5), "(no samples)");
    }

    #[test]
    #[should_panic(expected = "empty CDF")]
    fn empty_quantile_panics() {
        Cdf::new(vec![]).quantile(0.5);
    }

    proptest! {
        #[test]
        fn prop_quantiles_monotone(samples in proptest::collection::vec(1u64..10_000, 1..200)) {
            let cdf = Cdf::new(samples.iter().map(|&x| SimDuration::from_micros(x)).collect());
            let mut last = SimDuration::ZERO;
            for q in [0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0] {
                let v = cdf.quantile(q);
                prop_assert!(v >= last);
                last = v;
            }
        }

        #[test]
        fn prop_fraction_below_matches_quantile(samples in proptest::collection::vec(1u64..1_000, 2..100)) {
            let cdf = Cdf::new(samples.iter().map(|&x| SimDuration::from_micros(x)).collect());
            let median = cdf.quantile(0.5);
            let frac = cdf.fraction_below(median);
            prop_assert!(frac >= 0.5 - 1e-9, "fraction below median {frac}");
        }
    }
}
