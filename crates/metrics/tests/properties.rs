//! Property tests for the metrics crate's distribution code: empirical
//! CDFs ([`metrics::Cdf`]) and summary statistics ([`metrics::LatencyStats`]).

#![allow(clippy::unwrap_used, clippy::expect_used)] // test code

use metrics::{latency_deviation, Cdf, LatencyStats};
use proptest::prelude::*;
use sim_core::SimDuration;

fn durations(raw: &[u64]) -> Vec<SimDuration> {
    raw.iter().map(|&x| SimDuration::from_micros(x)).collect()
}

/// A deterministic Fisher–Yates permutation driven by a SplitMix64 seed,
/// so permutation-invariance cases replay exactly.
fn permute<T: Clone>(items: &[T], mut seed: u64) -> Vec<T> {
    let mut out = items.to_vec();
    let mut next = || {
        seed = seed.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = seed;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    };
    for i in (1..out.len()).rev() {
        let j = (next() % (i as u64 + 1)) as usize;
        out.swap(i, j);
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Quantiles are monotone in `q`: a higher quantile never yields a
    /// smaller value.
    #[test]
    fn prop_quantile_monotone_in_q(
        samples in proptest::collection::vec(0u64..1_000_000, 1..300),
        qa in 0.0f64..1.0,
        qb in 0.0f64..1.0,
    ) {
        let cdf = Cdf::new(durations(&samples));
        let (lo, hi) = if qa <= qb { (qa, qb) } else { (qb, qa) };
        prop_assert!(cdf.quantile(lo) <= cdf.quantile(hi),
            "quantile({lo}) > quantile({hi})");
    }

    /// Every quantile is one of the samples, bracketed by min and max.
    #[test]
    fn prop_quantile_within_sample_range(
        samples in proptest::collection::vec(0u64..1_000_000, 1..300),
        q in 0.0f64..1.0,
    ) {
        let durs = durations(&samples);
        let cdf = Cdf::new(durs.clone());
        let v = cdf.quantile(q);
        let min = *durs.iter().min().unwrap();
        let max = *durs.iter().max().unwrap();
        prop_assert!(v >= min && v <= max);
        prop_assert!(durs.contains(&v), "quantile must be an observed sample");
    }

    /// `fraction_below` stays in [0, 1] and is monotone in its argument.
    #[test]
    fn prop_fraction_below_is_a_cdf(
        samples in proptest::collection::vec(0u64..100_000, 1..300),
        xa in 0u64..120_000,
        xb in 0u64..120_000,
    ) {
        let cdf = Cdf::new(durations(&samples));
        let (lo, hi) = if xa <= xb { (xa, xb) } else { (xb, xa) };
        let fa = cdf.fraction_below(SimDuration::from_micros(lo));
        let fb = cdf.fraction_below(SimDuration::from_micros(hi));
        prop_assert!((0.0..=1.0).contains(&fa), "fraction {fa} out of [0,1]");
        prop_assert!((0.0..=1.0).contains(&fb), "fraction {fb} out of [0,1]");
        prop_assert!(fa <= fb, "CDF must be monotone: F({lo})={fa} > F({hi})={fb}");
    }

    /// At least a `q`-fraction of samples sits at or below `quantile(q)`
    /// (the defining property of a nearest-rank quantile).
    #[test]
    fn prop_fraction_below_quantile_covers_q(
        samples in proptest::collection::vec(0u64..1_000_000, 1..300),
        q in 0.0f64..1.0,
    ) {
        let cdf = Cdf::new(durations(&samples));
        let frac = cdf.fraction_below(cdf.quantile(q));
        prop_assert!(frac >= q - 1e-9, "F(Q({q})) = {frac} < {q}");
    }

    /// Summary statistics are order-free: any permutation of the samples
    /// produces identical mean/p50/p95/p99/min/max.
    #[test]
    fn prop_stats_invariant_under_permutation(
        samples in proptest::collection::vec(0u64..1_000_000, 1..300),
        seed in proptest::prelude::any::<bool>(),
        salt in 0u64..1_000_000,
    ) {
        let durs = durations(&samples);
        let shuffled = permute(&durs, salt.wrapping_mul(2).wrapping_add(seed as u64));
        let a = LatencyStats::from_latencies(&durs);
        let b = LatencyStats::from_latencies(&shuffled);
        prop_assert_eq!(a.count, b.count);
        prop_assert_eq!(a.mean, b.mean);
        prop_assert_eq!(a.p50, b.p50);
        prop_assert_eq!(a.p95, b.p95);
        prop_assert_eq!(a.p99, b.p99);
        prop_assert_eq!(a.min, b.min);
        prop_assert_eq!(a.max, b.max);
    }

    /// The summary is internally consistent:
    /// min ≤ p50 ≤ p95 ≤ p99 ≤ max and min ≤ mean ≤ max.
    #[test]
    fn prop_stats_are_internally_consistent(
        samples in proptest::collection::vec(0u64..1_000_000, 1..300),
    ) {
        let s = LatencyStats::from_latencies(&durations(&samples));
        let (min, p50, p95, p99, max, mean) = (
            s.min.unwrap(), s.p50.unwrap(), s.p95.unwrap(),
            s.p99.unwrap(), s.max.unwrap(), s.mean.unwrap(),
        );
        prop_assert!(min <= p50 && p50 <= p95 && p95 <= p99 && p99 <= max);
        prop_assert!(min <= mean && mean <= max);
        prop_assert_eq!(s.count, samples.len());
    }

    /// `LatencyStats` percentiles agree with `Cdf::quantile` on the same
    /// samples (two implementations of nearest-rank must not drift).
    #[test]
    fn prop_stats_agree_with_cdf(
        samples in proptest::collection::vec(0u64..1_000_000, 1..300),
    ) {
        let durs = durations(&samples);
        let s = LatencyStats::from_latencies(&durs);
        let cdf = Cdf::new(durs);
        prop_assert_eq!(s.p50.unwrap(), cdf.quantile(0.50));
        prop_assert_eq!(s.p95.unwrap(), cdf.quantile(0.95));
        prop_assert_eq!(s.p99.unwrap(), cdf.quantile(0.99));
        prop_assert_eq!(s.max.unwrap(), cdf.quantile(1.0));
    }

    /// Latency deviation is non-negative, zero when every achieved
    /// latency is within target, and monotone in the achieved latencies.
    #[test]
    fn prop_latency_deviation_properties(
        pairs in proptest::collection::vec((0u64..1_000_000, 0u64..1_000_000), 1..20),
        bump in 0u64..1_000,
    ) {
        let achieved: Vec<SimDuration> =
            pairs.iter().map(|&(a, _)| SimDuration::from_micros(a)).collect();
        let targets: Vec<SimDuration> =
            pairs.iter().map(|&(_, t)| SimDuration::from_micros(t)).collect();
        let d = latency_deviation(&achieved, &targets);
        prop_assert!(d >= SimDuration::ZERO);

        // Within-target achieved latencies deviate by zero.
        let d0 = latency_deviation(&targets, &targets);
        prop_assert_eq!(d0, SimDuration::ZERO);

        // Inflating any achieved latency never decreases the deviation.
        let mut worse = achieved.clone();
        worse[0] += SimDuration::from_micros(bump);
        prop_assert!(latency_deviation(&worse, &targets) >= d);
    }
}
