//! A self-contained property-testing shim.
//!
//! This workspace must build in fully offline environments, so instead of
//! pulling the real `proptest` crate from a registry it vendors this shim,
//! which implements the (small) subset of the proptest API the test suites
//! actually use:
//!
//! * the [`proptest!`] macro, with an optional
//!   `#![proptest_config(ProptestConfig::with_cases(n))]` header and both
//!   `arg in strategy` and `arg: Type` parameter forms,
//! * [`prop_assert!`] / [`prop_assert_eq!`] / [`prop_assert_ne!`],
//! * range strategies (`0u64..100`, `1u32..=108`, `0.0f64..1.0`), tuple
//!   strategies, [`collection::vec`], [`option::of`], and
//!   [`prelude::any`].
//!
//! Generation is **deterministic**: every test case `i` derives its inputs
//! from a fixed SplitMix64 stream seeded by `i`, so failures reproduce
//! exactly across runs and machines. There is no shrinking — the failing
//! case's inputs are printed verbatim instead.

pub mod strategy {
    use crate::test_runner::TestRng;
    use std::fmt::Debug;
    use std::ops::{Range, RangeInclusive};

    /// A generator of values of type `Value`.
    ///
    /// Unlike the real proptest there is no shrink tree: a strategy is just
    /// a deterministic function of the per-case RNG.
    pub trait Strategy {
        /// The type of values this strategy produces.
        type Value: Debug;
        /// Draws one value from the strategy.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;
    }

    /// Types with a canonical "any value" strategy (see [`any`]).
    pub trait Arbitrary: Sized + Debug {
        /// Draws an arbitrary value of this type.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    /// Strategy produced by [`any`].
    pub struct Any<T>(std::marker::PhantomData<T>);

    /// A strategy for any value of type `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(std::marker::PhantomData)
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> f64 {
            // Finite values only; the sims under test assume no NaN/inf.
            (rng.next_f64() - 0.5) * 2e6
        }
    }

    macro_rules! int_impls {
        ($($t:ty),* $(,)?) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    (self.start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as i128 - lo as i128) as u128 + 1;
                    (lo as i128 + (rng.next_u64() as u128 % span) as i128) as $t
                }
            }
        )*};
    }
    int_impls!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! float_impls {
        ($($t:ty),* $(,)?) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    self.start + (rng.next_f64() as $t) * (self.end - self.start)
                }
            }
        )*};
    }
    float_impls!(f32, f64);

    macro_rules! tuple_impls {
        ($(($($S:ident $idx:tt),+))*) => {$(
            impl<$($S: Strategy),+> Strategy for ($($S,)+) {
                type Value = ($($S::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }
    tuple_impls! {
        (A 0)
        (A 0, B 1)
        (A 0, B 1, C 2)
        (A 0, B 1, C 2, D 3)
        (A 0, B 1, C 2, D 3, E 4)
        (A 0, B 1, C 2, D 3, E 4, F 5)
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// Inclusive bounds on a generated collection's length.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        min: usize,
        max: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { min: n, max: n }
        }
    }
    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                min: r.start,
                max: r.end - 1,
            }
        }
    }
    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            SizeRange {
                min: *r.start(),
                max: *r.end(),
            }
        }
    }

    /// Strategy produced by [`vec()`].
    pub struct VecStrategy<S> {
        elem: S,
        size: SizeRange,
    }

    /// A strategy for `Vec`s whose length falls in `size` and whose
    /// elements are drawn from `elem`.
    pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            elem,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.max - self.size.min) as u64 + 1;
            let len = self.size.min + (rng.next_u64() % span) as usize;
            (0..len).map(|_| self.elem.generate(rng)).collect()
        }
    }
}

pub mod option {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy produced by [`of`].
    pub struct OptionStrategy<S>(S);

    /// A strategy for `Option`s: `Some` three times out of four.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy(inner)
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.next_u64() & 3 != 0 {
                Some(self.0.generate(rng))
            } else {
                None
            }
        }
    }
}

pub mod test_runner {
    /// Per-run configuration (only the case count is honoured).
    #[derive(Clone, Copy, Debug)]
    pub struct ProptestConfig {
        /// Number of cases to run per property.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }

    /// A failed `prop_assert!` from inside a property body.
    #[derive(Debug)]
    pub struct TestCaseError(String);

    impl TestCaseError {
        /// Wraps a failure message.
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError(msg.into())
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(&self.0)
        }
    }

    /// Deterministic SplitMix64 stream; one per test case, seeded by the
    /// case index so failures reproduce bit-identically everywhere.
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// The RNG for case `case` of a property.
        pub fn for_case(case: u32) -> Self {
            TestRng {
                state: (case as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15)
                    ^ 0xD1B5_4A32_D192_ED03,
            }
        }

        /// Next 64 uniformly random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform draw from `[0, 1)`.
        pub fn next_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }
}

pub mod prelude {
    pub use crate::strategy::{any, Arbitrary, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Defines property tests. Mirrors the real macro's surface: an optional
/// `#![proptest_config(..)]` header followed by `fn` items whose arguments
/// are either `name in strategy` or `name: Type` (shorthand for
/// `name in any::<Type>()`).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__pt_fns! { cfg = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__pt_fns! { cfg = ($crate::test_runner::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __pt_fns {
    (cfg = ($cfg:expr);) => {};
    (cfg = ($cfg:expr); $(#[$meta:meta])* fn $name:ident($($args:tt)*) $body:block $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            $crate::__pt_args!(cfg = ($cfg); body = ($body); parsed = []; $($args)*);
        }
        $crate::__pt_fns! { cfg = ($cfg); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __pt_args {
    (cfg = ($cfg:expr); body = ($body:block); parsed = [$($p:tt)*];) => {
        $crate::__pt_run!(cfg = ($cfg); body = ($body); $($p)*);
    };
    (cfg = ($cfg:expr); body = ($body:block); parsed = [$($p:tt)*]; $arg:ident in $strat:expr, $($rest:tt)*) => {
        $crate::__pt_args!(cfg = ($cfg); body = ($body); parsed = [$($p)* ($arg, $strat)]; $($rest)*);
    };
    (cfg = ($cfg:expr); body = ($body:block); parsed = [$($p:tt)*]; $arg:ident in $strat:expr) => {
        $crate::__pt_args!(cfg = ($cfg); body = ($body); parsed = [$($p)* ($arg, $strat)];);
    };
    (cfg = ($cfg:expr); body = ($body:block); parsed = [$($p:tt)*]; $arg:ident : $ty:ty, $($rest:tt)*) => {
        $crate::__pt_args!(cfg = ($cfg); body = ($body); parsed = [$($p)* ($arg, $crate::strategy::any::<$ty>())]; $($rest)*);
    };
    (cfg = ($cfg:expr); body = ($body:block); parsed = [$($p:tt)*]; $arg:ident : $ty:ty) => {
        $crate::__pt_args!(cfg = ($cfg); body = ($body); parsed = [$($p)* ($arg, $crate::strategy::any::<$ty>())];);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __pt_run {
    (cfg = ($cfg:expr); body = ($body:block); $(($arg:ident, $strat:expr))*) => {{
        let __cfg: $crate::test_runner::ProptestConfig = $cfg;
        for __case in 0..__cfg.cases {
            let mut __rng = $crate::test_runner::TestRng::for_case(__case);
            $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut __rng);)*
            let __inputs = format!("{:?}", ($(&$arg,)*));
            let __result: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                (move || {
                    $body
                    ::std::result::Result::Ok(())
                })();
            if let ::std::result::Result::Err(__e) = __result {
                panic!("proptest case {} failed: {}\ninputs: {}", __case, __e, __inputs);
            }
        }
    }};
}

/// Asserts inside a property body, failing the case (with its inputs
/// printed) rather than unwinding directly.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)*),
            ));
        }
    };
}

/// Skips the current case when its inputs don't satisfy a precondition.
/// (The real proptest resamples; this shim simply counts the case as
/// passed, which is equivalent for deterministic generation.)
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(, $($fmt:tt)*)?) => {
        if !($cond) {
            return ::std::result::Result::Ok(());
        }
    };
}

/// Equality assertion inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, "assertion failed: {:?} == {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, "{}: {:?} != {:?}", format!($($fmt)*), l, r);
    }};
}

/// Inequality assertion inside a property body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l != r, "assertion failed: {:?} != {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l != r, "{}: both {:?}", format!($($fmt)*), l, r);
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn rng_is_deterministic() {
        let mut a = crate::test_runner::TestRng::for_case(7);
        let mut b = crate::test_runner::TestRng::for_case(7);
        assert_eq!(a.next_u64(), b.next_u64());
        let f = a.next_f64();
        assert!((0.0..1.0).contains(&f));
    }

    proptest! {
        #[test]
        fn ranges_respect_bounds(x in 5u64..500, y in 1u32..=108, z in 0.0f64..1.0) {
            prop_assert!((5..500).contains(&x));
            prop_assert!((1..=108).contains(&y));
            prop_assert!((0.0..1.0).contains(&z));
        }

        #[test]
        fn typed_args_generate(seed: u64, flag: bool) {
            let _ = (seed, flag);
            prop_assert_eq!(seed, seed);
            prop_assert_ne!(flag, !flag);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]
        #[test]
        fn collections_and_options(
            v in crate::collection::vec((0usize..4, 1u32..=10), 1..8),
            o in crate::collection::vec(crate::option::of(1.0f64..120.0), 6),
        ) {
            prop_assert!(!v.is_empty() && v.len() < 8);
            prop_assert_eq!(o.len(), 6);
            for (a, b) in &v {
                prop_assert!(*a < 4 && (1..=10).contains(b));
            }
        }
    }
}
