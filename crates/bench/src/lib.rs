//! Criterion benchmark support: shared scaled-down scenario runners so
//! every paper table/figure has a `cargo bench` target. The benches time
//! the simulator+scheduler work for regenerating each artifact; the
//! `experiments` binary prints the full-size tables.

use dnn_models::{ModelKind, Phase};
use gpu_sim::GpuSpec;
use harness::cache;
use harness::runner::{run_system, RunResult, System};
use sim_core::SimTime;
use workloads::{pair_workload, PaperWorkload, WorkloadSet};

/// Counting global allocator for the allocation-regression gate
/// (`cargo bench --bench alloc_stats --features count-alloc`). Every heap
/// allocation bumps a relaxed atomic; the `alloc_stats` bench reads the
/// counter around a steady-state window to compute allocations per
/// simulated kernel. Behind a feature so ordinary builds and benches keep
/// the system allocator untouched.
#[cfg(feature = "count-alloc")]
mod counting_alloc {
    use std::alloc::{GlobalAlloc, Layout, System};
    use std::sync::atomic::{AtomicU64, Ordering};

    pub static ALLOCS: AtomicU64 = AtomicU64::new(0);
    pub static BYTES: AtomicU64 = AtomicU64::new(0);

    struct CountingAlloc;

    // SAFETY: delegates verbatim to `System`; the counters are
    // observational and touch no allocator state.
    unsafe impl GlobalAlloc for CountingAlloc {
        unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
            BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
            unsafe { System.alloc(layout) }
        }

        unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
            unsafe { System.dealloc(ptr, layout) }
        }

        unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
            // A grow-in-place still traverses the allocator; count it.
            ALLOCS.fetch_add(1, Ordering::Relaxed);
            BYTES.fetch_add(new_size as u64, Ordering::Relaxed);
            unsafe { System.realloc(ptr, layout, new_size) }
        }
    }

    #[global_allocator]
    static GLOBAL: CountingAlloc = CountingAlloc;
}

/// True when the counting allocator is installed (`count-alloc` feature).
pub fn alloc_counting_enabled() -> bool {
    cfg!(feature = "count-alloc")
}

/// Total heap allocations since process start (0 without `count-alloc`).
pub fn alloc_count() -> u64 {
    #[cfg(feature = "count-alloc")]
    {
        counting_alloc::ALLOCS.load(std::sync::atomic::Ordering::Relaxed)
    }
    #[cfg(not(feature = "count-alloc"))]
    {
        0
    }
}

/// Total bytes requested from the allocator (0 without `count-alloc`).
pub fn alloc_bytes() -> u64 {
    #[cfg(feature = "count-alloc")]
    {
        counting_alloc::BYTES.load(std::sync::atomic::Ordering::Relaxed)
    }
    #[cfg(not(feature = "count-alloc"))]
    {
        0
    }
}

/// A small pair workload shared by several benches.
pub fn small_pair(a: ModelKind, b: ModelKind, load: PaperWorkload, requests: usize) -> WorkloadSet {
    pair_workload(
        cache::model(a, Phase::Inference),
        cache::model(b, Phase::Inference),
        (0.5, 0.5),
        load,
        requests,
        SimTime::from_secs(5),
        1,
    )
}

/// Runs one system on a workload with the standard horizon.
pub fn run(sys: &System, ws: &WorkloadSet) -> RunResult {
    run_system(sys, ws, &GpuSpec::a100(), SimTime::from_secs(120), None)
}

/// Pre-warms the profile cache so benches measure scheduling, not
/// profiling.
pub fn warm_profiles() {
    let spec = GpuSpec::a100();
    for kind in [
        ModelKind::Vgg11,
        ModelKind::ResNet50,
        ModelKind::ResNet101,
        ModelKind::NasNet,
        ModelKind::Bert,
    ] {
        let _ = cache::profile(kind, Phase::Inference, &spec);
    }
}
