//! Criterion benchmark support: shared scaled-down scenario runners so
//! every paper table/figure has a `cargo bench` target. The benches time
//! the simulator+scheduler work for regenerating each artifact; the
//! `experiments` binary prints the full-size tables.

use dnn_models::{ModelKind, Phase};
use gpu_sim::GpuSpec;
use harness::cache;
use harness::runner::{run_system, RunResult, System};
use sim_core::SimTime;
use workloads::{pair_workload, PaperWorkload, WorkloadSet};

/// A small pair workload shared by several benches.
pub fn small_pair(a: ModelKind, b: ModelKind, load: PaperWorkload, requests: usize) -> WorkloadSet {
    pair_workload(
        cache::model(a, Phase::Inference),
        cache::model(b, Phase::Inference),
        (0.5, 0.5),
        load,
        requests,
        SimTime::from_secs(5),
        1,
    )
}

/// Runs one system on a workload with the standard horizon.
pub fn run(sys: &System, ws: &WorkloadSet) -> RunResult {
    run_system(sys, ws, &GpuSpec::a100(), SimTime::from_secs(120), None)
}

/// Pre-warms the profile cache so benches measure scheduling, not
/// profiling.
pub fn warm_profiles() {
    let spec = GpuSpec::a100();
    for kind in [
        ModelKind::Vgg11,
        ModelKind::ResNet50,
        ModelKind::ResNet101,
        ModelKind::NasNet,
        ModelKind::Bert,
    ] {
        let _ = cache::profile(kind, Phase::Inference, &spec);
    }
}
