//! Fig. 12: one latency-chart panel (7 quota assignments under BLESS).

use bench::warm_profiles;
use criterion::{criterion_group, criterion_main, Criterion};
use dnn_models::ModelKind;
use harness::experiments::fig12::panel;
use workloads::PaperWorkload;

fn bench(c: &mut Criterion) {
    warm_profiles();
    let mut g = c.benchmark_group("fig12");
    g.sample_size(10);
    g.bench_function("panel_vgg_r50_low", |b| {
        b.iter(|| {
            panel(
                ModelKind::Vgg11,
                ModelKind::ResNet50,
                PaperWorkload::LowLoad,
                4,
            )
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
