//! Fig. 20: the ablation variants.

use bench::warm_profiles;
use bless::BlessParams;
use criterion::{criterion_group, criterion_main, Criterion};
use dnn_models::ModelKind;
use harness::experiments::fig20::variant_mean;

fn bench(c: &mut Criterion) {
    warm_profiles();
    let mut g = c.benchmark_group("fig20");
    g.sample_size(10);
    g.bench_function("full", |b| {
        b.iter(|| variant_mean(BlessParams::default(), &[ModelKind::ResNet50], 4))
    });
    g.bench_function("no_multitask", |b| {
        b.iter(|| {
            variant_mean(
                BlessParams {
                    disable_multitask: true,
                    ..BlessParams::default()
                },
                &[ModelKind::ResNet50],
                4,
            )
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
