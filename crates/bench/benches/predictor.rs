//! §4.4.2: predictor evaluation and the determiner's search cost.

use bench::warm_profiles;
use bless::{determine_config, DeployedApp};
use criterion::{criterion_group, criterion_main, Criterion};
use dnn_models::{ModelKind, Phase};
use gpu_sim::GpuSpec;
use harness::cache;
use harness::squadlab::slice_squad;

fn bench(c: &mut Criterion) {
    warm_profiles();
    let spec = GpuSpec::a100();
    let apps = vec![
        DeployedApp::new(
            cache::profile(ModelKind::NasNet, Phase::Inference, &spec),
            0.5,
            None,
        ),
        DeployedApp::new(
            cache::profile(ModelKind::ResNet50, Phase::Inference, &spec),
            0.5,
            None,
        ),
    ];
    let squad = slice_squad(&apps, &[1, 1], &[25, 25]);
    let mut g = c.benchmark_group("predictor");
    g.bench_function("determine_config_2apps", |b| {
        b.iter(|| determine_config(std::hint::black_box(&squad), &apps, 108))
    });
    g.bench_function("accuracy_sample", |b| {
        b.iter(|| harness::experiments::predictor::measure(5, 2))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
