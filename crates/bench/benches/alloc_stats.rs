//! Allocation-regression gate: measures steady-state heap allocations per
//! simulated kernel for the raw engine loop and for a single-GPU BLESS
//! run, plus table-launch engine throughput, then writes
//! `BENCH_alloc.json` at the repo root.
//!
//! Run with `cargo bench -p bench --bench alloc_stats --features
//! count-alloc`; set `BENCH_QUICK=1` for the CI smoke variant, which
//! compares against the checked-in snapshot and fails on regression
//! instead of rewriting it.
//!
//! The BLESS figure is *marginal*: two runs differing only in request
//! count, so (ΔA)/(ΔK) cancels one-time setup allocations (contexts,
//! profiles, logs) and isolates the steady-state scheduling loop. Before
//! the zero-allocation work this was ~2.46 allocs/kernel; the scratch
//! buffers and kernel tables bring it under 0.25 (see `BEFORE_BLESS`).

use std::time::Instant;

use cluster::ClusterOptions;
use dnn_models::ModelKind;
use gpu_sim::{
    CtxKind, EventQueueKind, Gpu, GpuSpec, HostCosts, KernelDesc, KernelTableId, LaneEngine,
    MergedOutput, QueueId,
};
use harness::cache;
use harness::experiments::fleet10k;
use harness::runner::System;
use sim_core::{SimDuration, SimTime};
use workloads::PaperWorkload;

/// Measured marginal allocs/kernel for single-GPU BLESS before the
/// zero-allocation work (same workload pair, same request counts).
const BEFORE_BLESS: f64 = 2.4602;

/// Engine-loop allocs/kernel before this PR (slot recycling and stable
/// queue capacities already made the clone-launch loop allocation-free).
const BEFORE_ENGINE: f64 = 0.0;

/// Quick-mode regression slack on the BLESS marginal: absolute headroom
/// over the checked-in baseline before the gate fails (tolerates drain
/// jitter between runs of different machines).
const GATE_SLACK: f64 = 0.05;

/// Allowed steady-state allocs/kernel for the *threaded* lane drain.
/// `std::thread::scope` allocates per spawned worker per drain round; that
/// constant amortizes over the round's kernels but cannot reach zero.
const LANE_THREADED_EPSILON: f64 = 0.5;

fn quick() -> bool {
    std::env::var_os("BENCH_QUICK").is_some()
}

/// A warmed engine with two contending default-context queues and a
/// registered one-entry kernel table.
fn engine_setup() -> (Gpu, Vec<QueueId>, KernelTableId) {
    engine_setup_with(GpuSpec::a100())
}

/// [`engine_setup`] under an explicit spec (the per-resource channel model
/// reuses the same harness).
fn engine_setup_with(spec: GpuSpec) -> (Gpu, Vec<QueueId>, KernelTableId) {
    let mut gpu = Gpu::new(spec, HostCosts::free());
    gpu.set_slot_recycling(true);
    let queues: Vec<QueueId> = (0..2)
        .map(|_| {
            let ctx = gpu.create_context(CtxKind::Default).expect("ctx");
            gpu.create_queue(ctx).expect("queue")
        })
        .collect();
    let desc = KernelDesc::compute("k", SimDuration::from_micros(5), 54, 0.2)
        .with_demand(gpu_sim::ChannelDemand::new(0.2, 0.3, 0.4, 0.1));
    let table = gpu.register_kernel_table(vec![desc].into());
    (gpu, queues, table)
}

/// Launches `n` short compute kernels by table reference across the two
/// queues and drains every 8 — the steady-state engine hot loop.
fn engine_batch(gpu: &mut Gpu, queues: &[QueueId], table: KernelTableId, n: usize) {
    for i in 0..n {
        let q = queues[i % queues.len()];
        gpu.launch_table(q, table, 0, i as u64).expect("launch");
        if i % 8 == 7 {
            gpu.drain();
        }
    }
    gpu.drain();
}

/// Steady-state allocations per kernel for the engine loop: warm the
/// arena (slots, event heap, queue rings) with one batch, then count.
fn engine_allocs_per_kernel(n: usize) -> f64 {
    let (mut gpu, queues, table) = engine_setup();
    engine_batch(&mut gpu, &queues, table, 4096); // warmup
    let before = bench::alloc_count();
    engine_batch(&mut gpu, &queues, table, n);
    (bench::alloc_count() - before) as f64 / n as f64
}

/// [`engine_allocs_per_kernel`] under the per-resource channel model: the
/// 4-channel pressure gather runs on stack arrays and must stay
/// allocation-free too.
fn engine_allocs_per_kernel_per_resource(n: usize) -> f64 {
    let (mut gpu, queues, table) = engine_setup_with(GpuSpec::a100_per_resource());
    engine_batch(&mut gpu, &queues, table, 4096); // warmup
    let before = bench::alloc_count();
    engine_batch(&mut gpu, &queues, table, n);
    (bench::alloc_count() - before) as f64 / n as f64
}

/// Table-launch engine throughput in kernels/second (best of `reps`
/// batches on a warmed engine).
fn engine_kernels_per_sec(batch: usize, reps: usize) -> f64 {
    let (mut gpu, queues, table) = engine_setup();
    engine_batch(&mut gpu, &queues, table, 4096); // warmup
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let t0 = Instant::now();
        engine_batch(&mut gpu, &queues, table, batch);
        best = best.min(t0.elapsed().as_secs_f64());
    }
    batch as f64 / best
}

/// A warmed 4-lane engine: per-lane contending queues and a one-entry
/// kernel table, slot recycling on — the lane analogue of `engine_setup`.
fn lane_setup(lanes: usize) -> (LaneEngine, Vec<[QueueId; 2]>, Vec<KernelTableId>) {
    let mut eng = LaneEngine::homogeneous(
        GpuSpec::a100(),
        HostCosts::free(),
        lanes,
        EventQueueKind::FourAryHeap,
    );
    let mut queues = Vec::new();
    let mut tables = Vec::new();
    for lane in 0..lanes {
        let gpu = eng.lane_mut(lane);
        gpu.set_slot_recycling(true);
        let qs = [0u8, 1].map(|_| {
            let ctx = gpu.create_context(CtxKind::Default).expect("ctx");
            gpu.create_queue(ctx).expect("queue")
        });
        let desc = KernelDesc::compute("k", SimDuration::from_micros(5), 54, 0.2);
        tables.push(gpu.register_kernel_table(vec![desc].into()));
        queues.push(qs);
    }
    (eng, queues, tables)
}

/// Launches `n` table kernels per lane and drains every 8 launch rounds
/// through the chosen lane path, reusing one merged-output buffer — the
/// steady-state lane hot loop.
fn lane_batch(
    eng: &mut LaneEngine,
    queues: &[[QueueId; 2]],
    tables: &[KernelTableId],
    n: usize,
    par: bool,
    out: &mut Vec<MergedOutput>,
) {
    let drain = |eng: &mut LaneEngine, out: &mut Vec<MergedOutput>| {
        out.clear();
        if par {
            eng.drain_par_into(out);
        } else {
            eng.drain_seq_into(out);
        }
    };
    for i in 0..n {
        for (lane, qs) in queues.iter().enumerate() {
            eng.lane_mut(lane)
                .launch_table(qs[i % 2], tables[lane], 0, i as u64)
                .expect("launch");
        }
        if i % 8 == 7 {
            drain(eng, out);
        }
    }
    drain(eng, out);
}

/// Steady-state allocations per kernel for the 4-lane engine: warm every
/// lane's arena and the merge scratch with one batch, then count.
fn lane_allocs_per_kernel(n: usize, par: bool, workers: usize) -> f64 {
    let (mut eng, queues, tables) = lane_setup(4);
    eng.set_workers(workers);
    let mut out = Vec::new();
    lane_batch(&mut eng, &queues, &tables, 1024, par, &mut out); // warmup
    let before = bench::alloc_count();
    lane_batch(&mut eng, &queues, &tables, n, par, &mut out);
    (bench::alloc_count() - before) as f64 / (n * queues.len()) as f64
}

/// Total allocations for one streamed fleet run at the given size and
/// worker count (workload construction and profiling excluded).
fn cluster_stream_allocs(gpus: usize, workers: usize) -> u64 {
    let (ws, profiles) = fleet10k::workload(gpus, 2);
    let spec = fleet10k::gpu_spec();
    let horizon = SimTime::ZERO + fleet10k::TRACE_SPAN + fleet10k::TRACE_SPAN;
    let before = bench::alloc_count();
    let summary = cluster::run_cluster_stream(
        &ws,
        profiles,
        gpus,
        &spec,
        &bless::BlessParams::default(),
        horizon,
        &ClusterOptions {
            parallel: workers > 1,
            workers: Some(workers),
            ..ClusterOptions::default()
        },
    )
    .expect("fleet placement");
    std::hint::black_box(summary.digest);
    bench::alloc_count() - before
}

/// Marginal allocations per GPU-step for the streamed fleet runner, for
/// the sequential fold and the sharded worker pool. Two fleet sizes
/// cancel per-run setup (thread spawns, shard deques, accumulator
/// arrays); the sharded marginal minus the sequential marginal is the
/// steady-state cost of the sharding machinery itself — work-stealing
/// dispatch plus streaming aggregation — which must be allocation-free
/// per GPU.
fn cluster_marginals(n1: usize, n2: usize) -> (f64, f64) {
    let d = (n2 - n1) as f64;
    let seq = (cluster_stream_allocs(n2, 1) - cluster_stream_allocs(n1, 1)) as f64 / d;
    let sharded = (cluster_stream_allocs(n2, 2) - cluster_stream_allocs(n1, 2)) as f64 / d;
    (seq, sharded)
}

/// (total allocations, simulated kernels) for one single-GPU BLESS run.
fn bless_run(requests: usize) -> (u64, u64) {
    let spec = GpuSpec::a100();
    let ws = bench::small_pair(
        ModelKind::NasNet,
        ModelKind::Bert,
        PaperWorkload::MediumLoad,
        requests,
    );
    let per_app: Vec<u64> = ws
        .tenants
        .iter()
        .map(|t| cache::profile(t.model.kind, t.model.phase, &spec).kernel_count() as u64)
        .collect();
    let before = bench::alloc_count();
    let r = bench::run(&System::Bless(bless::BlessParams::default()), &ws);
    let allocs = bench::alloc_count() - before;
    let mut kernels = 0u64;
    for (app, &per) in per_app.iter().enumerate() {
        let done = r
            .log
            .records(app)
            .iter()
            .filter(|x| x.completion.is_some())
            .count();
        kernels += done as u64 * per;
    }
    (allocs, kernels)
}

/// Extracts the number following `"key":` from a flat JSON snapshot.
/// (No JSON dependency in this workspace; the file is machine-written
/// with known formatting.)
fn json_number(text: &str, key: &str) -> Option<f64> {
    let needle = format!("\"{key}\":");
    let at = text.find(&needle)? + needle.len();
    let rest = text[at..].trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

fn main() {
    bench::warm_profiles();
    let counting = bench::alloc_counting_enabled();
    println!("alloc counter active: {counting}");

    let engine_n = if quick() { 8192 } else { 65536 };
    let engine = engine_allocs_per_kernel(engine_n);
    println!("engine steady-state allocs/kernel: {engine:.4}");
    if counting {
        assert!(
            engine == 0.0,
            "engine hot loop must stay allocation-free in steady state (got {engine:.4}/kernel)"
        );
    }

    let engine_pr = engine_allocs_per_kernel_per_resource(engine_n);
    println!("engine steady-state allocs/kernel (per-resource model): {engine_pr:.4}");
    if counting {
        assert!(
            engine_pr == 0.0,
            "per-resource hot loop must stay allocation-free in steady state (got {engine_pr:.4}/kernel)"
        );
    }

    let (batch, reps) = if quick() { (10_000, 5) } else { (10_000, 20) };
    let kps = engine_kernels_per_sec(batch, reps);
    println!(
        "engine table-launch throughput: {:.2}M kernels/s",
        kps / 1e6
    );

    // Lane engine steady state: the sequential merge loop and the
    // single-worker parallel path (same merge machinery, no threads) must
    // stay allocation-free; the threaded path pays only the per-round
    // thread-spawn constant.
    let lane_n = if quick() { 2048 } else { 16384 };
    let lane_seq = lane_allocs_per_kernel(lane_n, false, 1);
    let lane_par = lane_allocs_per_kernel(lane_n, true, 1);
    let lane_threaded = lane_allocs_per_kernel(lane_n, true, 2);
    println!(
        "lane engine allocs/kernel: seq {lane_seq:.4}, par(1w) {lane_par:.4}, par(2w) {lane_threaded:.4}"
    );
    if counting {
        assert!(
            lane_seq == 0.0,
            "lane step_seq loop must stay allocation-free in steady state (got {lane_seq:.4}/kernel)"
        );
        assert!(
            lane_par == 0.0,
            "lane parallel merge path must stay allocation-free in steady state (got {lane_par:.4}/kernel)"
        );
        assert!(
            lane_threaded <= LANE_THREADED_EPSILON,
            "threaded lane drain exceeds the thread-spawn budget (got {lane_threaded:.4}/kernel, cap {LANE_THREADED_EPSILON})"
        );
    }

    // Sharded fleet runner: warm once (lazy globals, profile interning),
    // then compare per-GPU marginals of the sequential fold and the
    // 2-worker sharded pool. The difference is the sharding machinery's
    // own steady-state cost and must be zero allocations per GPU-step.
    let (c1, c2) = if quick() { (4, 12) } else { (8, 24) };
    std::hint::black_box(cluster_stream_allocs(c1, 2)); // warmup
    let (cluster_seq, cluster_sharded) = cluster_marginals(c1, c2);
    let shard_overhead = cluster_sharded - cluster_seq;
    println!(
        "fleet runner allocs/GPU-step: seq-fold {cluster_seq:.1}, sharded {cluster_sharded:.1}, \
         sharding overhead {shard_overhead:.4}"
    );
    if counting {
        assert!(
            shard_overhead <= 0.0,
            "sharded fleet runner must add 0 steady-state allocs/GPU-step over the sequential \
             fold (got {shard_overhead:.4}: seq {cluster_seq:.1} vs sharded {cluster_sharded:.1})"
        );
    }

    // Marginal allocations per kernel: two runs differing only in request
    // count; the delta cancels per-run setup (driver, profiles, logs).
    let (a1, k1) = bless_run(8);
    let (a2, k2) = bless_run(24);
    let bless_marginal = (a2 - a1) as f64 / (k2 - k1) as f64;
    println!(
        "bless marginal allocs/kernel: {bless_marginal:.4}  (runs: {a1}/{k1} vs {a2}/{k2}, before: {BEFORE_BLESS:.4})"
    );
    if counting {
        assert!(
            bless_marginal <= BEFORE_BLESS / 10.0,
            "BLESS steady state must allocate >=10x less than the {BEFORE_BLESS:.4}/kernel baseline (got {bless_marginal:.4})"
        );
    }

    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_alloc.json");
    if quick() {
        // CI smoke: gate against the checked-in snapshot; never rewrite it.
        let Ok(snapshot) = std::fs::read_to_string(path) else {
            panic!("BENCH_alloc.json missing; regenerate with `cargo bench -p bench --bench alloc_stats --features count-alloc`");
        };
        if counting {
            let base = json_number(&snapshot, "allocs_per_kernel_bless")
                .expect("allocs_per_kernel_bless in BENCH_alloc.json");
            assert!(
                bless_marginal <= base + GATE_SLACK,
                "allocation regression: BLESS now at {bless_marginal:.4} allocs/kernel vs checked-in {base:.4} (+{GATE_SLACK} slack)"
            );
            println!("alloc gate passed: {bless_marginal:.4} <= {base:.4} + {GATE_SLACK}");
        } else {
            println!("alloc gate skipped: count-alloc feature off");
        }
        return;
    }

    if !counting {
        println!("not rewriting BENCH_alloc.json: count-alloc feature off, alloc figures would be meaningless");
        return;
    }
    let json = format!(
        "{{\n  \"bench\": \"alloc_stats\",\n  \"regenerate\": \"cargo bench -p bench --bench alloc_stats --features count-alloc\",\n  \"count_alloc\": {counting},\n  \"engine\": {{\n    \"kernels\": {engine_n},\n    \"allocs_per_kernel\": {engine:.4},\n    \"allocs_per_kernel_per_resource\": {engine_pr:.4},\n    \"allocs_per_kernel_before\": {BEFORE_ENGINE:.4},\n    \"table_launch_kernels_per_sec\": {kps:.0}\n  }},\n  \"lanes\": {{\n    \"lanes\": 4,\n    \"kernels\": {},\n    \"allocs_per_kernel_seq\": {lane_seq:.4},\n    \"allocs_per_kernel_par\": {lane_par:.4},\n    \"allocs_per_kernel_par_threaded\": {lane_threaded:.4}\n  }},\n  \"cluster\": {{\n    \"gpus\": [{c1}, {c2}],\n    \"allocs_per_gpu_seq\": {cluster_seq:.1},\n    \"allocs_per_gpu_sharded\": {cluster_sharded:.1},\n    \"sharding_overhead_per_gpu\": {shard_overhead:.4}\n  }},\n  \"bless\": {{\n    \"allocs_per_kernel_bless\": {bless_marginal:.4},\n    \"allocs_per_kernel_before\": {BEFORE_BLESS:.4},\n    \"improvement_factor\": {:.1},\n    \"runs\": [[{a1}, {k1}], [{a2}, {k2}]]\n  }}\n}}\n",
        lane_n * 4,
        BEFORE_BLESS / bless_marginal.max(1e-9),
    );
    std::fs::write(path, json).expect("write BENCH_alloc.json");
    println!("wrote {path}");
}
