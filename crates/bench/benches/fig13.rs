//! Fig. 13: one symmetric-pair sweep cell per system.

use bench::warm_profiles;
use bless::BlessParams;
use criterion::{criterion_group, criterion_main, Criterion};
use dnn_models::{ModelKind, Phase};
use harness::experiments::fig13::sweep;
use harness::runner::System;
use workloads::PaperWorkload;

fn bench(c: &mut Criterion) {
    warm_profiles();
    let mut g = c.benchmark_group("fig13");
    g.sample_size(10);
    for sys in [
        System::Bless(BlessParams::default()),
        System::Gslice,
        System::Temporal,
    ] {
        g.bench_function(sys.name(), |b| {
            b.iter(|| {
                sweep(
                    &[ModelKind::ResNet50],
                    Phase::Inference,
                    PaperWorkload::MediumLoad,
                    std::slice::from_ref(&sys),
                    5,
                )
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
