//! Lane-sharded engine scaling: monolithic event loop vs. the
//! `LaneEngine` sweep over lane count × event volume, written to
//! `BENCH_engine.json` at the repo root.
//!
//! Run with `cargo bench -p bench --bench engine_scale`; set
//! `BENCH_QUICK=1` for the CI smoke variant, which gates the 4-lane
//! sharding speedup against the checked-in snapshot instead of
//! rewriting it (the `BENCH_alloc.json` pattern).
//!
//! The headline figure is the **sharding speedup**: monolithic drain
//! time over the lane engine's sequential merge loop on the same
//! decoupled workload. It is *algorithmic*, not thread parallelism —
//! the monolithic engine settles every queue on every event, so its
//! per-event cost grows with the device's total queue count, while each
//! lane only scans its own queues. That gain holds on a single-core
//! host; the parallel-drain timings are recorded alongside with the
//! worker count, under the same single-worker honesty convention as
//! `BENCH_cluster.json`.
//!
//! Every configuration also runs a physics guard: the lane engine's
//! per-kernel completion times must equal the monolithic engine's on
//! this decoupled (hard-MIG, compute-only) workload, so the speedup is
//! never bought with a physics change.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};
use gpu_sim::{
    CtxKind, EventQueueKind, Gpu, GpuSpec, HostCosts, KernelDesc, LaneEngine, MergedOutput,
    StepOutput,
};
use sim_core::{SimDuration, SimRng, SimTime};

const QUEUES_PER_LANE: usize = 3;
const PLAN_SEED: u64 = 0x5CA1E;

/// Absolute floor for the quick-mode gate: the 4-lane sharding speedup
/// is algorithmic, so even a noisy CI box must clear this.
const GATE_FLOOR: f64 = 1.2;

/// Relative slack vs. the checked-in snapshot: wall-clock ratios jitter
/// far more than alloc counts, so the gate allows a wide band before
/// calling regression.
const GATE_FRACTION: f64 = 0.6;

fn quick() -> bool {
    std::env::var_os("BENCH_QUICK").is_some()
}

/// Wraps a routine so every call logs its own wall-clock duration —
/// criterion's shim prints summaries but does not hand samples back.
fn timed<R>(samples: &RefCell<Vec<Duration>>, f: impl FnOnce() -> R) -> R {
    let start = std::time::Instant::now();
    let r = f();
    samples.borrow_mut().push(start.elapsed());
    r
}

fn min_ms(samples: &RefCell<Vec<Duration>>) -> f64 {
    samples
        .borrow()
        .iter()
        .min()
        .map(|d| d.as_secs_f64() * 1e3)
        .unwrap_or(f64::NAN)
}

/// Per lane, per queue: (kernel, tag, extra arrival delay). Compute
/// only, zero memory intensity — the decoupled regime where lane
/// sharding and the monolithic engine describe the same machine.
type Plan = Vec<Vec<Vec<(KernelDesc, u64, SimDuration)>>>;

fn build_plan(lanes: usize, per_queue: usize, seed: u64) -> Plan {
    let sms_per_lane = (GpuSpec::a100().num_sms / lanes as u32).max(1);
    let mut rng = SimRng::new(seed);
    (0..lanes)
        .map(|lane| {
            (0..QUEUES_PER_LANE)
                .map(|q| {
                    (0..per_queue)
                        .map(|k| {
                            let tag = ((lane as u64) << 40) | ((q as u64) << 32) | k as u64;
                            let extra = SimDuration::from_nanos(rng.next_below(500_000));
                            let dur = SimDuration::from_nanos(20_000 + rng.next_below(180_000));
                            let sms = 4 + rng.next_below(sms_per_lane.max(5) as u64 - 4) as u32;
                            (KernelDesc::compute("c", dur, sms, 0.0), tag, extra)
                        })
                        .collect()
                })
                .collect()
        })
        .collect()
}

/// One MIG-partition context per lane on a single monolithic `Gpu`.
fn build_mono(plan: &Plan) -> Gpu {
    let spec = GpuSpec::a100();
    let sm_count = (spec.num_sms / plan.len() as u32).max(1);
    let mut gpu = Gpu::new(spec, HostCosts::free());
    for queues in plan {
        let ctx = gpu
            .create_context(CtxKind::MigPartition { sm_count })
            .expect("mig ctx");
        let qids: Vec<_> = (0..queues.len())
            .map(|_| gpu.create_queue(ctx).expect("queue"))
            .collect();
        for (q, kernels) in queues.iter().enumerate() {
            for (desc, tag, extra) in kernels {
                gpu.launch_delayed(qids[q], desc.clone(), *tag, *extra)
                    .expect("launch");
            }
        }
    }
    gpu
}

/// The same workload sharded: one lane per MIG partition.
fn build_lanes(plan: &Plan, kind: EventQueueKind) -> LaneEngine {
    let spec = GpuSpec::a100();
    let sm_count = (spec.num_sms / plan.len() as u32).max(1);
    let mut eng = LaneEngine::homogeneous(spec, HostCosts::free(), plan.len(), kind);
    for (lane, queues) in plan.iter().enumerate() {
        let gpu = eng.lane_mut(lane);
        let ctx = gpu
            .create_context(CtxKind::MigPartition { sm_count })
            .expect("mig ctx");
        let qids: Vec<_> = (0..queues.len())
            .map(|_| gpu.create_queue(ctx).expect("queue"))
            .collect();
        for (q, kernels) in queues.iter().enumerate() {
            for (desc, tag, extra) in kernels {
                gpu.launch_delayed(qids[q], desc.clone(), *tag, *extra)
                    .expect("launch");
            }
        }
    }
    eng
}

/// tag → completion time, for the cross-engine physics guard.
fn lane_finish_map(outs: &[MergedOutput]) -> BTreeMap<u64, u64> {
    outs.iter()
        .filter_map(|m| match m.output {
            StepOutput::KernelDone { tag, .. } => Some((tag, m.at.as_nanos())),
            _ => None,
        })
        .collect()
}

fn mono_finish_map(outs: &[(SimTime, StepOutput)]) -> BTreeMap<u64, u64> {
    outs.iter()
        .filter_map(|(at, o)| match o {
            StepOutput::KernelDone { tag, .. } => Some((*tag, at.as_nanos())),
            _ => None,
        })
        .collect()
}

struct EngineRow {
    lanes: usize,
    kernels: usize,
    mono_ms: f64,
    lane_seq_ms: f64,
    lane_par_ms: f64,
    wheel_seq_ms: f64,
}

impl EngineRow {
    fn sharding_speedup(&self) -> f64 {
        self.mono_ms / self.lane_seq_ms
    }
}

fn bench_engine(c: &mut Criterion, rows: &mut Vec<EngineRow>) {
    let lane_counts: &[usize] = if quick() { &[1, 4] } else { &[1, 2, 4] };
    // 2560/queue is the 10× row: fleet-replay event volume, where the
    // per-queue population is deep enough for the wheel's O(1) filing to
    // show up in `wheel_vs_heap` (the shallow rows are heap territory —
    // see `EventQueueKind::WHEEL_DEPTH_THRESHOLD`).
    let volumes: &[usize] = if quick() { &[32] } else { &[64, 256, 2560] };
    let samples = if quick() { 3 } else { 7 };

    let mut g = c.benchmark_group("engine_scale");
    g.sample_size(samples);
    for &lanes in lane_counts {
        for &per_queue in volumes {
            let plan = build_plan(lanes, per_queue, PLAN_SEED);
            let kernels = lanes * QUEUES_PER_LANE * per_queue;

            // Physics guard: the sharded run must reproduce the
            // monolithic completion times on this decoupled workload.
            {
                let mut gpu = build_mono(&plan);
                let mut mono_out = Vec::new();
                gpu.drain_outputs_into(&mut mono_out);
                let mut eng = build_lanes(&plan, EventQueueKind::FourAryHeap);
                let mut lane_out = Vec::new();
                eng.drain_par_into(&mut lane_out);
                assert_eq!(
                    mono_finish_map(&mono_out),
                    lane_finish_map(&lane_out),
                    "lane sharding changed kernel physics at lanes={lanes}"
                );
            }

            let mono_t = RefCell::new(Vec::new());
            let seq_t = RefCell::new(Vec::new());
            let par_t = RefCell::new(Vec::new());
            let wheel_t = RefCell::new(Vec::new());
            g.bench_function(format!("mono_l{lanes}_k{kernels}"), |b| {
                b.iter(|| {
                    let mut gpu = build_mono(&plan);
                    let mut out = Vec::with_capacity(kernels);
                    timed(&mono_t, || gpu.drain_outputs_into(&mut out));
                    out.len()
                })
            });
            g.bench_function(format!("lane_seq_l{lanes}_k{kernels}"), |b| {
                b.iter(|| {
                    let mut eng = build_lanes(&plan, EventQueueKind::FourAryHeap);
                    let mut out = Vec::with_capacity(kernels);
                    timed(&seq_t, || eng.drain_seq_into(&mut out));
                    out.len()
                })
            });
            g.bench_function(format!("lane_par_l{lanes}_k{kernels}"), |b| {
                b.iter(|| {
                    let mut eng = build_lanes(&plan, EventQueueKind::FourAryHeap);
                    let mut out = Vec::with_capacity(kernels);
                    timed(&par_t, || eng.drain_par_into(&mut out));
                    out.len()
                })
            });
            g.bench_function(format!("lane_wheel_l{lanes}_k{kernels}"), |b| {
                b.iter(|| {
                    let mut eng = build_lanes(&plan, EventQueueKind::TimingWheel);
                    let mut out = Vec::with_capacity(kernels);
                    timed(&wheel_t, || eng.drain_seq_into(&mut out));
                    out.len()
                })
            });
            rows.push(EngineRow {
                lanes,
                kernels,
                mono_ms: min_ms(&mono_t),
                lane_seq_ms: min_ms(&seq_t),
                lane_par_ms: min_ms(&par_t),
                wheel_seq_ms: min_ms(&wheel_t),
            });
        }
    }
    g.finish();
}

/// The headline: sharding speedup of the largest 4-lane configuration.
fn headline(rows: &[EngineRow]) -> Option<f64> {
    rows.iter()
        .rfind(|r| r.lanes == 4)
        .map(EngineRow::sharding_speedup)
}

/// Extracts the number following `"key":` from a flat JSON snapshot
/// (no JSON dependency in this workspace; the file is machine-written).
fn json_number(text: &str, key: &str) -> Option<f64> {
    let needle = format!("\"{key}\":");
    let at = text.find(&needle)? + needle.len();
    let rest = text[at..].trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

fn write_json(rows: &[EngineRow]) {
    let workers = std::thread::available_parallelism().map_or(1, |n| n.get());
    let mut out = String::from("{\n");
    out.push_str("  \"bench\": \"engine_scale\",\n");
    out.push_str("  \"regenerate\": \"cargo bench -p bench --bench engine_scale\",\n");
    out.push_str(&format!("  \"quick\": {},\n", quick()));
    out.push_str(&format!("  \"workers\": {workers},\n"));
    if workers == 1 {
        // A single-worker "parallel" drain is the sequential path plus
        // thread-pool overhead; its ratio is not a parallel speedup. The
        // sharding speedup is algorithmic and stands on any core count.
        out.push_str(
            "  \"note\": \"single worker: lane_par_ms is not a parallel baseline, par_speedup omitted\",\n",
        );
    }
    if let Some(h) = headline(rows) {
        out.push_str(&format!("  \"sharding_speedup_4lanes\": {h:.2},\n"));
    }
    out.push_str("  \"rows\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let par_speedup = if workers > 1 {
            format!("{:.2}", r.lane_seq_ms / r.lane_par_ms)
        } else {
            "null".to_string()
        };
        out.push_str(&format!(
            "    {{\"lanes\": {}, \"queues\": {}, \"kernels\": {}, \"mono_ms\": {:.3}, \
             \"lane_seq_ms\": {:.3}, \"lane_par_ms\": {:.3}, \"wheel_seq_ms\": {:.3}, \
             \"sharding_speedup\": {:.2}, \"par_speedup\": {}, \"wheel_vs_heap\": {:.2}}}{}\n",
            r.lanes,
            r.lanes * QUEUES_PER_LANE,
            r.kernels,
            r.mono_ms,
            r.lane_seq_ms,
            r.lane_par_ms,
            r.wheel_seq_ms,
            r.sharding_speedup(),
            par_speedup,
            r.lane_seq_ms / r.wheel_seq_ms,
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_engine.json");

    if quick() {
        // CI smoke: gate against the checked-in snapshot; never rewrite it.
        let Ok(snapshot) = std::fs::read_to_string(path) else {
            panic!(
                "BENCH_engine.json missing; regenerate with `cargo bench -p bench --bench engine_scale`"
            );
        };
        let fresh = headline(rows).expect("quick sweep includes a 4-lane row");
        let base = json_number(&snapshot, "sharding_speedup_4lanes")
            .expect("sharding_speedup_4lanes in BENCH_engine.json");
        assert!(
            fresh >= GATE_FLOOR,
            "engine-scale regression: 4-lane sharding speedup {fresh:.2} below the {GATE_FLOOR} floor"
        );
        assert!(
            fresh >= base * GATE_FRACTION,
            "engine-scale regression: 4-lane sharding speedup {fresh:.2} vs checked-in {base:.2} (allowed fraction {GATE_FRACTION})"
        );
        println!(
            "engine gate passed: sharding speedup {fresh:.2} (snapshot {base:.2}, floor {GATE_FLOOR})"
        );
        return;
    }

    std::fs::write(path, &out).expect("write BENCH_engine.json");
    println!("wrote {path}");
}

fn bench(c: &mut Criterion) {
    let mut rows = Vec::new();
    bench_engine(c, &mut rows);
    write_json(&rows);
}

criterion_group!(benches, bench);
criterion_main!(benches);
