//! Fig. 14: latency deviation of one pair across the 7 quota configs.

use bench::warm_profiles;
use bless::BlessParams;
use criterion::{criterion_group, criterion_main, Criterion};
use dnn_models::ModelKind;
use harness::experiments::fig14::mean_deviation;
use harness::runner::System;

fn bench(c: &mut Criterion) {
    warm_profiles();
    let pair = [(ModelKind::ResNet50, ModelKind::Vgg11)];
    let mut g = c.benchmark_group("fig14");
    g.sample_size(10);
    for sys in [System::Bless(BlessParams::default()), System::Gslice] {
        g.bench_function(sys.name(), |b| b.iter(|| mean_deviation(&sys, &pair, 4)));
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
