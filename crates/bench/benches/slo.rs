//! §6.5: the SLO-guarantee setting.

use bench::warm_profiles;
use criterion::{criterion_group, criterion_main, Criterion};
use dnn_models::ModelKind;
use harness::experiments::slo::setting;
use workloads::PaperWorkload;

fn bench(c: &mut Criterion) {
    warm_profiles();
    let mut g = c.benchmark_group("slo");
    g.sample_size(10);
    g.bench_function("tight_targets", |b| {
        b.iter(|| {
            setting(
                (1.2, 2.0),
                PaperWorkload::MediumLoad,
                &[ModelKind::ResNet50],
                4,
            )
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
