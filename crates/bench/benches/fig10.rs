//! Fig. 10: the full 18-configuration sweep of one NasNet+R50 squad.

use bench::warm_profiles;
use criterion::{criterion_group, criterion_main, Criterion};

fn bench(c: &mut Criterion) {
    warm_profiles();
    let mut g = c.benchmark_group("fig10");
    g.sample_size(10);
    g.bench_function("config_sweep", |b| b.iter(harness::experiments::fig10::run));
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
