//! Fig. 15: the 4-tenant simultaneous-burst scenario.

use bench::warm_profiles;
use criterion::{criterion_group, criterion_main, Criterion};
use dnn_models::{AppModel, ModelKind, Phase};
use harness::experiments::fig15::scenario;
use workloads::FOUR_MODEL_QUOTAS;

fn bench(c: &mut Criterion) {
    warm_profiles();
    let apps: Vec<AppModel> = [
        ModelKind::Vgg11,
        ModelKind::ResNet50,
        ModelKind::ResNet101,
        ModelKind::Bert,
    ]
    .iter()
    .map(|&m| AppModel::build(m, Phase::Inference))
    .collect();
    let mut g = c.benchmark_group("fig15");
    g.sample_size(10);
    g.bench_function("four_tenant_burst", |b| {
        b.iter(|| scenario(apps.clone(), &FOUR_MODEL_QUOTAS))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
