//! Fig. 4(b): the VGG+R50 scheme comparison scenario.

use bench::{run, small_pair, warm_profiles};
use bless::BlessParams;
use criterion::{criterion_group, criterion_main, Criterion};
use dnn_models::ModelKind;
use harness::runner::System;
use workloads::PaperWorkload;

fn bench(c: &mut Criterion) {
    warm_profiles();
    let ws = small_pair(
        ModelKind::Vgg11,
        ModelKind::ResNet50,
        PaperWorkload::LowLoad,
        8,
    );
    let mut g = c.benchmark_group("fig4b");
    g.sample_size(10);
    for sys in [
        System::Bless(BlessParams::default()),
        System::Gslice,
        System::Unbound,
        System::ReefPlus,
    ] {
        g.bench_function(sys.name(), |b| b.iter(|| run(&sys, &ws)));
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
