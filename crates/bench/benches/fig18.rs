//! Fig. 18: the fine-grained 70/30 squad trace.

use bench::warm_profiles;
use criterion::{criterion_group, criterion_main, Criterion};
use harness::experiments::fig18::squad_trace;

fn bench(c: &mut Criterion) {
    warm_profiles();
    let mut g = c.benchmark_group("fig18");
    g.sample_size(10);
    g.bench_function("squad_trace_70_30", |b| b.iter(squad_trace));
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
