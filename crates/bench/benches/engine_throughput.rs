//! Simulation-core fast-path benchmarks: raw engine event throughput and
//! the configuration determiner's search cost (plain vs. memoized).
//!
//! These back the numbers in README's "Performance" section: the engine
//! figures divide kernels-per-iteration by the reported mean time (each
//! kernel is at least an Arrive and a Complete event).

use bench::warm_profiles;
use bless::{determine_config, determine_config_memo, ConfigMemo, DeployedApp};
use criterion::{black_box, criterion_group, criterion_main, Criterion};
use dnn_models::{ModelKind, Phase};
use gpu_sim::{CtxKind, Gpu, GpuSpec, HostCosts, KernelDesc};
use harness::cache;
use harness::squadlab::slice_squad;
use sim_core::SimDuration;

/// Launches `n` short compute kernels interleaved across two contending
/// contexts and drains the device — the engine's hot loop (arrive, start,
/// reallocate, complete) with nothing else in the way.
fn drain_kernels(n: usize, recycle: bool) {
    let mut gpu = Gpu::new(GpuSpec::a100(), HostCosts::free());
    gpu.set_slot_recycling(recycle);
    let queues: Vec<_> = (0..2)
        .map(|_| {
            let ctx = gpu.create_context(CtxKind::Default).unwrap();
            gpu.create_queue(ctx).unwrap()
        })
        .collect();
    for i in 0..n {
        let q = queues[i % queues.len()];
        let k = KernelDesc::compute("k", SimDuration::from_micros(5), 54, 0.2);
        gpu.launch(q, k, i as u64).unwrap();
        // Keep the in-flight window small so arrivals and completions
        // interleave the way driver-fed workloads do.
        if i % 8 == 7 {
            gpu.drain();
        }
    }
    gpu.drain();
    black_box(gpu.now());
}

/// The same hot loop driven by table reference: the descriptor is
/// registered once and every launch passes `(table, index)` — the
/// steady-state path BLESS uses, with no per-launch descriptor values
/// constructed at all.
fn drain_kernels_table(n: usize) {
    let mut gpu = Gpu::new(GpuSpec::a100(), HostCosts::free());
    gpu.set_slot_recycling(true);
    let queues: Vec<_> = (0..2)
        .map(|_| {
            let ctx = gpu.create_context(CtxKind::Default).unwrap();
            gpu.create_queue(ctx).unwrap()
        })
        .collect();
    let desc = KernelDesc::compute("k", SimDuration::from_micros(5), 54, 0.2);
    let table = gpu.register_kernel_table(vec![desc].into());
    for i in 0..n {
        let q = queues[i % queues.len()];
        gpu.launch_table(q, table, 0, i as u64).unwrap();
        if i % 8 == 7 {
            gpu.drain();
        }
    }
    gpu.drain();
    black_box(gpu.now());
}

fn bench(c: &mut Criterion) {
    warm_profiles();
    let mut g = c.benchmark_group("engine_throughput");
    g.bench_function("drain_10k_kernels_recycled", |b| {
        b.iter(|| drain_kernels(10_000, true))
    });
    g.bench_function("drain_10k_kernels_no_recycle", |b| {
        b.iter(|| drain_kernels(10_000, false))
    });
    g.bench_function("drain_10k_kernels_table", |b| {
        b.iter(|| drain_kernels_table(10_000))
    });
    g.finish();

    let spec = GpuSpec::a100();
    let apps = vec![
        DeployedApp::new(
            cache::profile(ModelKind::NasNet, Phase::Inference, &spec),
            0.5,
            None,
        ),
        DeployedApp::new(
            cache::profile(ModelKind::ResNet50, Phase::Inference, &spec),
            0.5,
            None,
        ),
    ];
    let squad = slice_squad(&apps, &[1, 1], &[25, 25]);
    let mut g = c.benchmark_group("determiner_throughput");
    g.bench_function("determine_config_plain", |b| {
        b.iter(|| determine_config(black_box(&squad), &apps, 108))
    });
    g.bench_function("determine_config_memoized", |b| {
        let mut memo = ConfigMemo::new();
        determine_config_memo(&mut memo, &squad, &apps, 108);
        b.iter(|| determine_config_memo(&mut memo, black_box(&squad), &apps, 108))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
