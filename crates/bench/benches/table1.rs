//! Table 1: offline profiling cost per application.

use criterion::{criterion_group, criterion_main, Criterion};
use dnn_models::{AppModel, ModelKind, Phase};
use gpu_sim::GpuSpec;
use profiler::ProfiledApp;

fn bench(c: &mut Criterion) {
    let spec = GpuSpec::a100();
    let mut g = c.benchmark_group("table1_profile");
    g.sample_size(10);
    for kind in [ModelKind::Vgg11, ModelKind::ResNet50, ModelKind::Bert] {
        let app = AppModel::build(kind, Phase::Inference);
        g.bench_function(kind.short_name(), |b| {
            b.iter(|| ProfiledApp::profile(std::hint::black_box(&app), &spec))
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
