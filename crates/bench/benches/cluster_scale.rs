//! Cluster-scale benchmark baseline: fleet-simulation throughput
//! (parallel vs. sequential) and the determiner's branch-and-bound
//! savings, written to `BENCH_cluster.json` at the repo root.
//!
//! Run with `cargo bench --bench cluster_scale`; set `BENCH_QUICK=1` for
//! the CI smoke variant (small fleets, few samples). The checked-in JSON
//! is a reference snapshot — absolute numbers are machine-dependent
//! (notably `workers`: the parallel speedup scales with host cores and
//! degrades to ~1x on a single-core container), while the determiner's
//! `evaluated`/`pruned` counts are deterministic on any machine.

use std::cell::RefCell;
use std::time::Duration;

use bless::{determine_config, determine_config_exhaustive, BlessParams, DeployedApp};
use cluster::{run_chaos, run_cluster_opts, ChaosOptions, ClusterOptions};
use criterion::{criterion_group, criterion_main, Criterion};
use dnn_models::{ModelKind, Phase};
use gpu_sim::GpuSpec;
use harness::cache;
use harness::experiments::fleet10k;
use harness::squadlab::slice_squad;
use profiler::SharedProfile;
use sim_core::{FaultSpec, SimDuration, SimTime};
use workloads::{ArrivalPattern, TenantSpec, WorkloadSet};

const KINDS: [ModelKind; 4] = [
    ModelKind::Vgg11,
    ModelKind::ResNet50,
    ModelKind::ResNet101,
    ModelKind::Bert,
];

fn quick() -> bool {
    std::env::var_os("BENCH_QUICK").is_some()
}

/// Two tenants per GPU at quota 0.5 each, so FFD fills exactly `fleet`
/// devices. Profiles are interned once per model kind and shared by every
/// tenant of that kind across the whole fleet.
fn fleet_workload(fleet: usize, spec: &GpuSpec) -> (WorkloadSet, Vec<SharedProfile>) {
    let tenants: Vec<TenantSpec> = (0..2 * fleet)
        .map(|i| {
            TenantSpec::new(
                cache::model(KINDS[i % KINDS.len()], Phase::Inference),
                0.5,
                ArrivalPattern::ClosedLoop {
                    think: SimDuration::from_millis(10),
                    count: 3,
                },
            )
        })
        .collect();
    let profiles: Vec<SharedProfile> = (0..2 * fleet)
        .map(|i| cache::profile(KINDS[i % KINDS.len()], Phase::Inference, spec))
        .collect();
    // Fleet-level quotas sum past 1.0 by design; the placement controller
    // splits them across GPUs, so bypass WorkloadSet's single-GPU check.
    (WorkloadSet { tenants, seed: 7 }, profiles)
}

/// Wraps a routine so every call logs its own wall-clock duration —
/// criterion's shim prints summaries but does not hand samples back.
fn timed<R>(samples: &RefCell<Vec<Duration>>, f: impl FnOnce() -> R) -> R {
    let start = std::time::Instant::now();
    let r = f();
    samples.borrow_mut().push(start.elapsed());
    r
}

fn min_ms(samples: &RefCell<Vec<Duration>>) -> f64 {
    samples
        .borrow()
        .iter()
        .min()
        .map(|d| d.as_secs_f64() * 1e3)
        .unwrap_or(f64::NAN)
}

struct FleetRow {
    gpus: usize,
    tenants: usize,
    seq_ms: f64,
    par_ms: f64,
}

struct ChaosRow {
    gpus: usize,
    tenants: usize,
    cluster_ms: f64,
    none_ms: f64,
    faulted_ms: f64,
    migrations: usize,
    stranded: usize,
}

struct Fleet10kRun {
    workers: usize,
    secs: f64,
    gpus_per_sec: f64,
}

struct Fleet10k {
    gpus: usize,
    tenants: usize,
    arrived_requests: u64,
    digest: u64,
    runs: Vec<Fleet10kRun>,
    base64_gpus_per_sec: f64,
    scale_ratio_vs_64: f64,
    ff_slowdown: f64,
    ca_slowdown: f64,
}

/// The 10k-GPU acceptance gates: a seeded ~1M-request diurnal fleet
/// streamed at workers 1/2/4 with byte-identical summaries, throughput
/// within 0.8× of the 64-GPU rate (no superlinear degradation), and
/// contention-aware placement strictly below first-fit on predicted
/// bottleneck slowdown. `BENCH_QUICK=1` shrinks the fleet (the CI smoke
/// keeps the determinism and contention gates; the scale-ratio gate only
/// means something at full scale).
fn bench_fleet10k() -> Fleet10k {
    let (gpus, reqs) = if quick() {
        (fleet10k::QUICK_GPUS, fleet10k::QUICK_REQS_PER_TENANT)
    } else {
        (fleet10k::FULL_GPUS, fleet10k::FULL_REQS_PER_TENANT)
    };
    let (ws, profiles) = fleet10k::workload(gpus, reqs);
    let mut runs = Vec::new();
    let mut first = None;
    let mut best_secs = f64::INFINITY;
    for workers in [1usize, 2, 4] {
        let (summary, secs) = fleet10k::streamed_run(&ws, &profiles, gpus, workers);
        println!(
            "fleet10k: {gpus} gpus, workers {workers}: {secs:.2}s, digest {:#018x}",
            summary.digest
        );
        best_secs = best_secs.min(secs);
        runs.push(Fleet10kRun {
            workers,
            secs,
            gpus_per_sec: gpus as f64 / secs,
        });
        match &first {
            None => first = Some(summary),
            Some(base) => assert_eq!(
                base, &summary,
                "gate: streamed fleet summary must be byte-identical at any worker count"
            ),
        }
    }
    let summary = first.unwrap_or_else(|| unreachable!("three runs recorded"));

    // 64-GPU reference rate under the same per-tenant load, best of the
    // same worker counts.
    let (ws64, profiles64) = fleet10k::workload(64, reqs);
    let mut base_secs = f64::INFINITY;
    for workers in [1usize, 2, 4] {
        let (_, secs) = fleet10k::streamed_run(&ws64, &profiles64, 64, workers);
        base_secs = base_secs.min(secs);
    }
    let gps = gpus as f64 / best_secs;
    let base_gps = 64.0 / base_secs;
    let ratio = gps / base_gps;
    if !quick() {
        assert!(
            ratio >= 0.8,
            "gate: gpus_per_sec at {gpus} GPUs degraded superlinearly: \
             {gps:.1} vs {base_gps:.1} at 64 GPUs (ratio {ratio:.3} < 0.8)"
        );
    }

    let (ff_slowdown, ca_slowdown) = fleet10k::policy_slowdowns(gpus, gpus);
    assert!(
        ca_slowdown < ff_slowdown,
        "gate: contention-aware placement must strictly lower predicted fleet slowdown \
         (ff={ff_slowdown:.4}, ca={ca_slowdown:.4})"
    );

    Fleet10k {
        gpus,
        tenants: 2 * gpus,
        arrived_requests: summary.arrived_requests,
        digest: summary.digest,
        runs,
        base64_gpus_per_sec: base_gps,
        scale_ratio_vs_64: ratio,
        ff_slowdown,
        ca_slowdown,
    }
}

struct DeterminerRow {
    apps: usize,
    kernels_per_app: usize,
    space: usize,
    evaluated: usize,
    pruned: usize,
    exhaustive_ms: f64,
    pruned_ms: f64,
}

fn bench_fleet(c: &mut Criterion, rows: &mut Vec<FleetRow>) {
    let spec = GpuSpec::a100();
    let params = BlessParams::default();
    let horizon = SimTime::from_secs(60);
    let fleets: &[usize] = if quick() { &[1, 4] } else { &[1, 4, 16, 64] };
    let samples = if quick() { 2 } else { 5 };

    let mut g = c.benchmark_group("cluster_throughput");
    g.sample_size(samples);
    for &fleet in fleets {
        let (ws, profiles) = fleet_workload(fleet, &spec);
        let seq = RefCell::new(Vec::new());
        let par = RefCell::new(Vec::new());
        g.bench_function(format!("seq_fleet{fleet}"), |b| {
            b.iter(|| {
                timed(&seq, || {
                    run_cluster_opts(
                        &ws,
                        profiles.clone(),
                        fleet,
                        &spec,
                        &params,
                        horizon,
                        &ClusterOptions {
                            parallel: false,
                            ..ClusterOptions::default()
                        },
                    )
                    .unwrap()
                })
            })
        });
        g.bench_function(format!("par_fleet{fleet}"), |b| {
            b.iter(|| {
                timed(&par, || {
                    run_cluster_opts(
                        &ws,
                        profiles.clone(),
                        fleet,
                        &spec,
                        &params,
                        horizon,
                        &ClusterOptions::default(),
                    )
                    .unwrap()
                })
            })
        });
        rows.push(FleetRow {
            gpus: fleet,
            tenants: 2 * fleet,
            seq_ms: min_ms(&seq),
            par_ms: min_ms(&par),
        });
    }
    g.finish();
}

/// Open-loop chaos workload: 2·N−1 tenants at quota 0.45 so the fleet
/// keeps one half-empty device for evacuees (closed-loop clients cannot
/// be checkpointed across a migration, so chaos runs are open-loop).
fn chaos_workload(fleet: usize, spec: &GpuSpec) -> (WorkloadSet, Vec<SharedProfile>) {
    let n = 2 * fleet - 1;
    let tenants: Vec<TenantSpec> = (0..n)
        .map(|i| {
            TenantSpec::new(
                cache::model(KINDS[i % KINDS.len()], Phase::Inference),
                0.45,
                ArrivalPattern::Periodic {
                    period: SimDuration::from_millis(5),
                    count: 6,
                    offset: SimDuration::from_millis((i % 5) as u64),
                },
            )
        })
        .collect();
    let profiles = (0..n)
        .map(|i| cache::profile(KINDS[i % KINDS.len()], Phase::Inference, spec))
        .collect();
    (WorkloadSet { tenants, seed: 7 }, profiles)
}

/// The chaos runner's cost model: a fault-free chaos run against the
/// plain cluster runner (the identity overhead of the fault machinery),
/// and a kill/hang matrix run showing what quiesce + checkpoint +
/// migrate + rebuild cost on top.
fn bench_chaos(c: &mut Criterion, rows: &mut Vec<ChaosRow>) {
    let spec = GpuSpec::a100();
    let params = BlessParams::default();
    let horizon = SimTime::from_secs(60);
    let fleets: &[usize] = if quick() { &[4] } else { &[4, 16] };
    let faults = FaultSpec {
        gpu_fail_count: 2,
        gpu_fail_window: (SimTime::from_millis(5), SimTime::from_millis(25)),
        gpu_hang_count: 2,
        gpu_hang_window: (SimTime::from_millis(5), SimTime::from_millis(25)),
        gpu_hang_len: SimDuration::from_millis(3),
        ..FaultSpec::default()
    };

    let mut g = c.benchmark_group("chaos_recovery");
    g.sample_size(if quick() { 2 } else { 5 });
    for &fleet in fleets {
        let (ws, profiles) = chaos_workload(fleet, &spec);
        let cluster_t = RefCell::new(Vec::new());
        let none_t = RefCell::new(Vec::new());
        let faulted_t = RefCell::new(Vec::new());
        g.bench_function(format!("cluster_fleet{fleet}"), |b| {
            b.iter(|| {
                timed(&cluster_t, || {
                    run_cluster_opts(
                        &ws,
                        profiles.clone(),
                        fleet,
                        &spec,
                        &params,
                        horizon,
                        &ClusterOptions::default(),
                    )
                    .unwrap()
                })
            })
        });
        g.bench_function(format!("chaos_none_fleet{fleet}"), |b| {
            b.iter(|| {
                timed(&none_t, || {
                    run_chaos(
                        &ws,
                        profiles.clone(),
                        fleet,
                        &spec,
                        &params,
                        horizon,
                        42,
                        &FaultSpec::default(),
                        &ChaosOptions::default(),
                    )
                    .unwrap()
                })
            })
        });
        let mut migrations = 0;
        let mut stranded = 0;
        g.bench_function(format!("chaos_faulted_fleet{fleet}"), |b| {
            b.iter(|| {
                timed(&faulted_t, || {
                    let run = run_chaos(
                        &ws,
                        profiles.clone(),
                        fleet,
                        &spec,
                        &params,
                        horizon,
                        42,
                        &faults,
                        &ChaosOptions::default(),
                    )
                    .unwrap();
                    migrations = run.migrations.len();
                    stranded = run.stranded.len();
                    run
                })
            })
        });
        rows.push(ChaosRow {
            gpus: fleet,
            tenants: 2 * fleet - 1,
            cluster_ms: min_ms(&cluster_t),
            none_ms: min_ms(&none_t),
            faulted_ms: min_ms(&faulted_t),
            migrations,
            stranded,
        });
    }
    g.finish();
}

fn bench_determiner(c: &mut Criterion, rows: &mut Vec<DeterminerRow>) {
    let spec = GpuSpec::a100();
    let per_app = 12;
    let max_apps = if quick() { 3 } else { 5 };
    let mut g = c.benchmark_group("determiner_search");
    g.sample_size(if quick() { 10 } else { 50 });
    for k in 2..=max_apps {
        let apps: Vec<DeployedApp> = (0..k)
            .map(|i| {
                DeployedApp::new(
                    cache::profile(KINDS[i % KINDS.len()], Phase::Inference, &spec),
                    1.0 / k as f64,
                    None,
                )
            })
            .collect();
        let squad = slice_squad(&apps, &vec![1; k], &vec![per_app; k]);
        let fast = determine_config(&squad, &apps, spec.num_sms);
        let slow = determine_config_exhaustive(&squad, &apps, spec.num_sms);
        assert_eq!(
            fast.config, slow.config,
            "pruning must not change the argmin"
        );
        let ex_t = RefCell::new(Vec::new());
        let pr_t = RefCell::new(Vec::new());
        g.bench_function(format!("exhaustive_{k}apps"), |b| {
            b.iter(|| {
                timed(&ex_t, || {
                    determine_config_exhaustive(&squad, &apps, spec.num_sms)
                })
            })
        });
        g.bench_function(format!("pruned_{k}apps"), |b| {
            b.iter(|| timed(&pr_t, || determine_config(&squad, &apps, spec.num_sms)))
        });
        rows.push(DeterminerRow {
            apps: k,
            kernels_per_app: per_app,
            space: slow.evaluated,
            evaluated: fast.evaluated,
            pruned: fast.pruned,
            exhaustive_ms: min_ms(&ex_t),
            pruned_ms: min_ms(&pr_t),
        });
    }
    g.finish();
}

fn write_json(fleet: &[FleetRow], det: &[DeterminerRow], chaos: &[ChaosRow], f10k: &Fleet10k) {
    let workers = std::thread::available_parallelism().map_or(1, |n| n.get());
    let mut out = String::from("{\n");
    out.push_str("  \"bench\": \"cluster_scale\",\n");
    out.push_str("  \"regenerate\": \"cargo bench --bench cluster_scale\",\n");
    out.push_str(&format!("  \"quick\": {},\n", quick()));
    out.push_str(&format!("  \"workers\": {workers},\n"));
    if workers == 1 {
        // A single-worker "parallel" run is just the sequential path with
        // thread-pool overhead: labelling its ratio as a speedup would
        // misrepresent the machine. The rows still carry both timings.
        out.push_str(
            "  \"note\": \"single worker: par_ms is not a parallel baseline, speedup omitted\",\n",
        );
    }
    out.push_str("  \"fleet\": [\n");
    for (i, r) in fleet.iter().enumerate() {
        let speedup = if workers > 1 {
            format!("{:.2}", r.seq_ms / r.par_ms)
        } else {
            "null".to_string()
        };
        let gps = r.gpus as f64 / (r.par_ms / 1e3);
        // Parallelism the row could actually use: one worker per GPU at
        // most, so the speedup column reads against its real ceiling.
        let row_workers = workers.min(r.gpus);
        out.push_str(&format!(
            "    {{\"gpus\": {}, \"tenants\": {}, \"workers\": {}, \"seq_ms\": {:.3}, \
             \"par_ms\": {:.3}, \"speedup\": {}, \"gpus_per_sec\": {:.1}}}{}\n",
            r.gpus,
            r.tenants,
            row_workers,
            r.seq_ms,
            r.par_ms,
            speedup,
            gps,
            if i + 1 < fleet.len() { "," } else { "" }
        ));
    }
    out.push_str("  ],\n");
    // Chaos overhead: the fault-free chaos runner against the plain
    // cluster runner (none_ms / cluster_ms is the identity overhead of
    // the fault machinery) and the kill/hang matrix run on top.
    out.push_str("  \"chaos\": [\n");
    for (i, r) in chaos.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"gpus\": {}, \"tenants\": {}, \"cluster_ms\": {:.3}, \
             \"none_ms\": {:.3}, \"faulted_ms\": {:.3}, \"none_overhead\": {:.3}, \
             \"migrations\": {}, \"stranded\": {}}}{}\n",
            r.gpus,
            r.tenants,
            r.cluster_ms,
            r.none_ms,
            r.faulted_ms,
            r.none_ms / r.cluster_ms,
            r.migrations,
            r.stranded,
            if i + 1 < chaos.len() { "," } else { "" }
        ));
    }
    out.push_str("  ],\n");
    // The 10k-GPU acceptance section: all three gates are asserted by the
    // bench before this snapshot is written, so a checked-in file implies
    // they passed on the generating machine.
    out.push_str("  \"fleet10k\": {\n");
    out.push_str(&format!(
        "    \"gpus\": {}, \"tenants\": {}, \"arrived_requests\": {},\n",
        f10k.gpus, f10k.tenants, f10k.arrived_requests
    ));
    out.push_str(&format!("    \"digest\": \"{:#018x}\",\n", f10k.digest));
    out.push_str(&format!("    \"host_workers\": {workers},\n"));
    // Speedup baseline: the 1-worker run of the same sweep. On a 1-CPU
    // host every multi-worker row is the sequential path plus pool
    // overhead, so the ratio would misstate the machine — null instead
    // (same honesty rule as the fleet rows above).
    let base_secs = f10k.runs.iter().find(|r| r.workers == 1).map(|r| r.secs);
    out.push_str("    \"runs\": [\n");
    for (i, r) in f10k.runs.iter().enumerate() {
        let speedup = match base_secs {
            Some(base) if workers > 1 => format!("{:.2}", base / r.secs),
            _ => "null".to_string(),
        };
        out.push_str(&format!(
            "      {{\"workers\": {}, \"secs\": {:.3}, \"gpus_per_sec\": {:.1}, \"speedup\": {}}}{}\n",
            r.workers,
            r.secs,
            r.gpus_per_sec,
            speedup,
            if i + 1 < f10k.runs.len() { "," } else { "" }
        ));
    }
    out.push_str("    ],\n");
    out.push_str(&format!(
        "    \"base64_gpus_per_sec\": {:.1}, \"scale_ratio_vs_64\": {:.3},\n",
        f10k.base64_gpus_per_sec, f10k.scale_ratio_vs_64
    ));
    out.push_str(&format!(
        "    \"ff_predicted_slowdown\": {:.4}, \"ca_predicted_slowdown\": {:.4},\n",
        f10k.ff_slowdown, f10k.ca_slowdown
    ));
    out.push_str(&format!(
        "    \"gates\": {{\"digest_identical_w124\": true, \"scale_ratio_ge_0.8\": {}, \"contention_strictly_lower\": true}}\n",
        if quick() { "\"not gated in quick mode\"" } else { "true" }
    ));
    out.push_str("  },\n");
    out.push_str("  \"determiner\": [\n");
    for (i, r) in det.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"apps\": {}, \"kernels_per_app\": {}, \"space\": {}, \"evaluated\": {}, \
             \"pruned\": {}, \"exhaustive_ms\": {:.4}, \"pruned_ms\": {:.4}}}{}\n",
            r.apps,
            r.kernels_per_app,
            r.space,
            r.evaluated,
            r.pruned,
            r.exhaustive_ms,
            r.pruned_ms,
            if i + 1 < det.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_cluster.json");
    std::fs::write(path, &out).expect("write BENCH_cluster.json");
    println!("wrote {path}");
}

fn bench(c: &mut Criterion) {
    bench::warm_profiles();
    let mut fleet_rows = Vec::new();
    let mut det_rows = Vec::new();
    let mut chaos_rows = Vec::new();
    bench_fleet(c, &mut fleet_rows);
    bench_chaos(c, &mut chaos_rows);
    bench_determiner(c, &mut det_rows);
    let f10k = bench_fleet10k();
    write_json(&fleet_rows, &det_rows, &chaos_rows, &f10k);
}

criterion_group!(benches, bench);
criterion_main!(benches);
