//! §6.9: raw engine operation costs (launch, squad generation, search).

use bless::{generate_squad, ActiveRequest, BlessParams, DeployedApp};
use criterion::{criterion_group, criterion_main, Criterion};
use dnn_models::{ModelKind, Phase};
use gpu_sim::{CtxKind, Gpu, GpuSpec, HostCosts, KernelDesc};
use harness::cache;
use sim_core::{SimDuration, SimTime};

fn bench(c: &mut Criterion) {
    let spec = GpuSpec::a100();
    let apps = vec![
        DeployedApp::new(
            cache::profile(ModelKind::NasNet, Phase::Inference, &spec),
            0.5,
            None,
        ),
        DeployedApp::new(
            cache::profile(ModelKind::Bert, Phase::Inference, &spec),
            0.5,
            None,
        ),
    ];
    let active: Vec<ActiveRequest> = (0..2)
        .map(|app| ActiveRequest {
            app,
            arrival: SimTime::ZERO,
            next_kernel: 10,
        })
        .collect();
    let params = BlessParams::default();

    let mut g = c.benchmark_group("overhead");
    g.bench_function("generate_squad_50", |b| {
        b.iter(|| generate_squad(SimTime::from_millis(5), &active, &apps, &params))
    });
    g.bench_function("launch_and_run_kernel", |b| {
        b.iter(|| {
            let mut gpu = Gpu::new(GpuSpec::a100(), HostCosts::paper());
            let ctx = gpu.create_context(CtxKind::Default).unwrap();
            let q = gpu.create_queue(ctx).unwrap();
            gpu.launch(
                q,
                KernelDesc::compute("k", SimDuration::from_micros(50), 80, 0.2),
                0,
            )
            .unwrap();
            gpu.drain();
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
