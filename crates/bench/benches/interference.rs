//! Interference-model microbenchmark: steady-state engine throughput under
//! the scalar interference model vs the per-resource channel model, plus
//! the regression gate keeping the channel hot loop within 15% of scalar.
//!
//! Run with `cargo bench -p bench --bench interference` to rewrite
//! `BENCH_interference.json` at the repo root; set `BENCH_QUICK=1` for the
//! CI smoke variant, which compares against the checked-in snapshot and
//! fails on regression instead of rewriting it.
//!
//! Absolute kernels/s figures are machine-dependent; the gate is on the
//! per-resource/scalar *ratio*, which is stable across hosts.

use std::time::Instant;

use gpu_sim::{
    ChannelDemand, CtxKind, Gpu, GpuSpec, HostCosts, KernelDesc, KernelTableId, QueueId,
};
use sim_core::SimDuration;

/// The per-resource hot loop must retain at least this fraction of the
/// scalar model's throughput (the 4-channel gather/max adds work to every
/// reallocation, but only O(channels) of it).
const RATIO_FLOOR: f64 = 0.85;

/// Quick-mode slack below the checked-in ratio before the gate fails.
const GATE_SLACK: f64 = 0.10;

fn quick() -> bool {
    std::env::var_os("BENCH_QUICK").is_some()
}

/// A warmed engine under `spec` with two contending default-context queues
/// and a one-entry kernel table whose kernel presses on all four channels.
fn setup(spec: GpuSpec) -> (Gpu, Vec<QueueId>, KernelTableId) {
    let mut gpu = Gpu::new(spec, HostCosts::free());
    gpu.set_slot_recycling(true);
    let queues: Vec<QueueId> = (0..2)
        .map(|_| {
            let ctx = gpu.create_context(CtxKind::Default).expect("ctx");
            gpu.create_queue(ctx).expect("queue")
        })
        .collect();
    let desc = KernelDesc::compute("k", SimDuration::from_micros(5), 54, 0.4)
        .with_demand(ChannelDemand::new(0.2, 0.3, 0.4, 0.1));
    let table = gpu.register_kernel_table(vec![desc].into());
    (gpu, queues, table)
}

/// Launches `n` table kernels across the two queues, draining every 8 —
/// the steady-state hot loop (two co-resident kernels per reallocation).
fn batch(gpu: &mut Gpu, queues: &[QueueId], table: KernelTableId, n: usize) {
    for i in 0..n {
        let q = queues[i % queues.len()];
        gpu.launch_table(q, table, 0, i as u64).expect("launch");
        if i % 8 == 7 {
            gpu.drain();
        }
    }
    gpu.drain();
}

/// Best-of-`reps` engine throughput in kernels/second under `spec`.
fn kernels_per_sec(spec: GpuSpec, n: usize, reps: usize) -> f64 {
    let (mut gpu, queues, table) = setup(spec);
    batch(&mut gpu, &queues, table, 4096); // warmup
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let t0 = Instant::now();
        batch(&mut gpu, &queues, table, n);
        best = best.min(t0.elapsed().as_secs_f64());
    }
    n as f64 / best
}

/// Extracts the number following `"key":` from a flat JSON snapshot.
fn json_number(text: &str, key: &str) -> Option<f64> {
    let needle = format!("\"{key}\":");
    let at = text.find(&needle)? + needle.len();
    let rest = text[at..].trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

fn main() {
    let (n, reps) = if quick() { (10_000, 5) } else { (20_000, 20) };
    let scalar = kernels_per_sec(GpuSpec::a100(), n, reps);
    let per_resource = kernels_per_sec(GpuSpec::a100_per_resource(), n, reps);
    let ratio = per_resource / scalar;
    println!(
        "engine throughput: scalar {:.2}M kernels/s, per-resource {:.2}M kernels/s (ratio {ratio:.3})",
        scalar / 1e6,
        per_resource / 1e6
    );
    assert!(
        ratio >= RATIO_FLOOR,
        "per-resource model costs too much: {ratio:.3} of scalar throughput (floor {RATIO_FLOOR})"
    );

    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_interference.json");
    if quick() {
        // CI smoke: gate against the checked-in snapshot; never rewrite it.
        let Ok(snapshot) = std::fs::read_to_string(path) else {
            panic!("BENCH_interference.json missing; regenerate with `cargo bench -p bench --bench interference`");
        };
        let base = json_number(&snapshot, "per_resource_over_scalar")
            .expect("per_resource_over_scalar in BENCH_interference.json");
        assert!(
            ratio >= base - GATE_SLACK,
            "interference-model regression: ratio now {ratio:.3} vs checked-in {base:.3} (-{GATE_SLACK} slack)"
        );
        println!("interference gate passed: {ratio:.3} >= {base:.3} - {GATE_SLACK}");
        return;
    }

    let json = format!(
        "{{\n  \"bench\": \"interference\",\n  \"regenerate\": \"cargo bench -p bench --bench interference\",\n  \"kernels\": {n},\n  \"scalar_kernels_per_sec\": {scalar:.0},\n  \"per_resource_kernels_per_sec\": {per_resource:.0},\n  \"per_resource_over_scalar\": {ratio:.3}\n}}\n"
    );
    std::fs::write(path, json).expect("write BENCH_interference.json");
    println!("wrote {path}");
}
