//! Multi-GPU placement + per-GPU runtime (paper §4.2.2 extension).

use bless::BlessParams;
use criterion::{criterion_group, criterion_main, Criterion};
use dnn_models::{AppModel, ModelKind, Phase};
use gpu_sim::GpuSpec;
use profiler::{ProfiledApp, SharedProfile};
use sim_core::{SimDuration, SimTime};
use workloads::{ArrivalPattern, TenantSpec, WorkloadSet};

fn bench(c: &mut Criterion) {
    let spec = GpuSpec::a100();
    let kinds = [
        ModelKind::Vgg11,
        ModelKind::ResNet50,
        ModelKind::ResNet101,
        ModelKind::Bert,
    ];
    let profiles: Vec<SharedProfile> = kinds
        .iter()
        .map(|&k| ProfiledApp::profile_shared(&AppModel::build(k, Phase::Inference), &spec))
        .collect();
    let tenants: Vec<TenantSpec> = kinds
        .iter()
        .map(|&k| {
            TenantSpec::new(
                AppModel::build(k, Phase::Inference),
                0.5,
                ArrivalPattern::ClosedLoop {
                    think: SimDuration::from_millis(10),
                    count: 3,
                },
            )
        })
        .collect();
    let ws = WorkloadSet { tenants, seed: 5 };

    let mut g = c.benchmark_group("cluster");
    g.sample_size(10);
    g.bench_function("place_and_run_4_tenants", |b| {
        b.iter(|| {
            cluster::run_cluster(
                &ws,
                profiles.clone(),
                4,
                &spec,
                &BlessParams::default(),
                SimTime::from_secs(60),
            )
            .unwrap()
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
