//! Fig. 17: squad execution under the four schemes.

use bench::warm_profiles;
use criterion::{criterion_group, criterion_main, Criterion};
use dnn_models::ModelKind;
use harness::experiments::fig17::pair_durations;

fn bench(c: &mut Criterion) {
    warm_profiles();
    let mut g = c.benchmark_group("fig17");
    g.sample_size(10);
    for (a, b) in [
        (ModelKind::NasNet, ModelKind::Bert),
        (ModelKind::NasNet, ModelKind::ResNet50),
    ] {
        g.bench_function(format!("{}+{}", a.short_name(), b.short_name()), |bench| {
            bench.iter(|| pair_durations(a, b, 20))
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
