//! Fig. 16: the extremely biased workload (E).

use bench::warm_profiles;
use criterion::{criterion_group, criterion_main, Criterion};
use dnn_models::ModelKind;
use harness::experiments::fig16::biased_case;

fn bench(c: &mut Criterion) {
    warm_profiles();
    let mut g = c.benchmark_group("fig16");
    g.sample_size(10);
    g.bench_function("biased_vgg", |b| {
        b.iter(|| biased_case(ModelKind::Vgg11, 4))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
