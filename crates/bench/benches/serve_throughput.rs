//! Serving fast-path gate: measures the lock-free ingest pipeline (SPSC
//! rings → batched drain → admission) against a counting sink, then
//! writes `BENCH_serve.json` at the repo root.
//!
//! Run with `cargo bench -p bench --bench serve_throughput` (add
//! `--features count-alloc` for the allocation gate); set `BENCH_QUICK=1`
//! for the CI smoke variant, which gates against the checked-in snapshot
//! and never rewrites it.
//!
//! Three gates, all hard-asserted:
//!
//! * **throughput** — the single-threaded pump must sustain at least
//!   [`GATE_ARRIVALS_PER_SEC`] arrivals/s (ISSUE: ≥1M on one core);
//! * **allocations** — the steady-state pump path performs 0 heap
//!   allocations per arrival (counting allocator, after warmup);
//! * **shed monotonicity** — against a fixed token-bucket rate limit, the
//!   shed fraction never decreases as the offered load grows.
//!
//! The counting sink isolates the ingest stage itself; the `serve`
//! experiment measures the same pipeline in front of the live BLESS
//! simulation.

use std::time::Instant;

use bless::{IngestConfig, IngestSink, IngestStage, RateLimit, TenantStream};
use gpu_sim::RequestArrival;
use sim_core::trace::TraceEvent;
use sim_core::SimTime;

/// Hard floor on sustained single-core ingest throughput.
const GATE_ARRIVALS_PER_SEC: f64 = 1_000_000.0;

/// Offered-load multipliers for the shed sweep (1.0 = the rate limit).
const SHED_LOADS: &[f64] = &[0.5, 1.0, 2.0, 4.0, 8.0];

fn quick() -> bool {
    std::env::var_os("BENCH_QUICK").is_some()
}

/// An [`IngestSink`] that completes every request instantly: admitted
/// arrivals only bump a per-tenant counter, so the measurement isolates
/// the ring drain + merge + admission hot path.
struct CountingSink {
    accepted: Vec<u64>,
    clock: u64,
}

impl CountingSink {
    fn new(tenants: usize) -> Self {
        CountingSink {
            accepted: vec![0; tenants],
            clock: 0,
        }
    }

    fn total(&self) -> u64 {
        self.accepted.iter().sum()
    }
}

impl IngestSink for CountingSink {
    fn run_until_before(&mut self, t: SimTime) {
        self.clock = self.clock.max(t.as_nanos().saturating_sub(1));
    }
    fn accept(&mut self, arrival: RequestArrival) {
        self.accepted[arrival.app] += 1;
    }
    fn completed_prefix(&mut self, app: usize) -> u64 {
        // Instant completion: the backpressure bound never engages.
        self.accepted[app]
    }
    fn emit(&mut self, _ev: TraceEvent) {}
}

/// Pushes `chunk` arrivals per tenant then pumps, `rounds` times, on one
/// thread. Returns the wall-clock seconds and heap allocations of the
/// measured window (warmup excluded).
fn ingest_run(
    tenants: usize,
    chunk: usize,
    rounds: usize,
    warmup_rounds: usize,
) -> (f64, u64, u64) {
    let cfg = IngestConfig::default();
    assert!(
        chunk * 2 <= cfg.ring_capacity,
        "chunk must fit the ring between pumps"
    );
    let (mut stage, mut streams) = IngestStage::new(tenants, &cfg);
    let mut sink = CountingSink::new(tenants);
    // Distinct per-tenant phases so the global merge actually interleaves.
    let mut next: Vec<u64> = (0..tenants as u64).collect();

    let push_round = |streams: &mut [TenantStream],
                      stage: &mut IngestStage,
                      sink: &mut CountingSink,
                      next: &mut [u64]| {
        for (app, s) in streams.iter_mut().enumerate() {
            for _ in 0..chunk {
                s.offer(SimTime::from_nanos(next[app]))
                    .expect("ring cannot fill: pump drains between chunks");
                next[app] += 1000; // 1 µs virtual inter-arrival
            }
        }
        stage.pump(sink);
    };

    for _ in 0..warmup_rounds {
        push_round(&mut streams, &mut stage, &mut sink, &mut next);
    }

    let allocs_before = bench::alloc_count();
    let t0 = Instant::now();
    for _ in 0..rounds {
        push_round(&mut streams, &mut stage, &mut sink, &mut next);
    }
    let elapsed = t0.elapsed().as_secs_f64();
    let allocs = bench::alloc_count() - allocs_before;

    // Drain the tail (the last arrival per lane sits at the watermark and
    // needs the terminal mark to become provably minimal).
    for s in streams {
        s.close();
    }
    while !stage.pump(&mut sink).drained {
        std::hint::spin_loop();
    }
    let offered = (tenants * chunk * (rounds + warmup_rounds)) as u64;
    assert_eq!(sink.total(), offered, "no limits configured: all admitted");
    for app in 0..tenants {
        let st = stage.tenant_stats(app);
        assert_eq!(st.admitted + st.shed(), st.offered, "conservation");
    }
    ((tenants * chunk * rounds) as f64 / elapsed, allocs, offered)
}

/// Shed fraction for one tenant offering `n` arrivals at `load` times the
/// fixed rate limit.
fn shed_fraction(load: f64, n: u64) -> f64 {
    let cfg = IngestConfig {
        rate: Some(RateLimit {
            tokens_per_sec: 1000,
            burst: 4,
        }),
        ..IngestConfig::default()
    };
    let (mut stage, mut streams) = IngestStage::new(1, &cfg);
    let mut sink = CountingSink::new(1);
    // Offered rate = load × 1000/s → inter-arrival 1e6/load ns.
    let gap = (1e6 / load) as u64;
    let mut t = 0u64;
    for _ in 0..n {
        streams[0].offer_blocking(SimTime::from_nanos(t));
        t += gap;
        stage.pump(&mut sink);
    }
    for s in streams {
        s.close();
    }
    while !stage.pump(&mut sink).drained {
        std::hint::spin_loop();
    }
    let st = stage.tenant_stats(0);
    assert_eq!(st.offered, n);
    assert_eq!(st.admitted + st.shed(), st.offered, "conservation");
    st.shed() as f64 / st.offered as f64
}

/// Extracts the number following `"key":` from a flat JSON snapshot.
fn json_number(text: &str, key: &str) -> Option<f64> {
    let needle = format!("\"{key}\":");
    let at = text.find(&needle)? + needle.len();
    let rest = text[at..].trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

fn main() {
    let counting = bench::alloc_counting_enabled();
    println!("alloc counter active: {counting}");

    let tenants = 4;
    let (chunk, rounds, warmup) = if quick() {
        (256, 2_000, 50)
    } else {
        (256, 20_000, 200)
    };
    // Best of 3 passes: the gate measures the pipeline, not scheduler
    // jitter on a shared CI core.
    let mut best_rate = 0f64;
    let mut best_allocs = u64::MAX;
    let mut arrivals = 0u64;
    for _ in 0..3 {
        let (rate, allocs, offered) = ingest_run(tenants, chunk, rounds, warmup);
        best_rate = best_rate.max(rate);
        best_allocs = best_allocs.min(allocs);
        arrivals = offered;
    }
    let measured = (tenants * chunk * rounds) as u64;
    let allocs_per_arrival = best_allocs as f64 / measured as f64;
    println!(
        "ingest sustained: {:.2}M arrivals/s ({tenants} tenants, one core), \
         {allocs_per_arrival:.6} allocs/arrival over {measured} arrivals",
        best_rate / 1e6
    );
    assert!(
        best_rate >= GATE_ARRIVALS_PER_SEC,
        "ingest pipeline below the 1M arrivals/s floor: {best_rate:.0}/s"
    );
    if counting {
        assert!(
            allocs_per_arrival == 0.0,
            "ingest steady state must be allocation-free (got {allocs_per_arrival:.6}/arrival)"
        );
    }

    let shed_n = if quick() { 4_000 } else { 20_000 };
    let sheds: Vec<f64> = SHED_LOADS
        .iter()
        .map(|&l| shed_fraction(l, shed_n))
        .collect();
    for (i, w) in sheds.windows(2).enumerate() {
        assert!(
            w[1] >= w[0] - 1e-9,
            "shed fraction must be monotone in offered load: {:.4} at {}x then {:.4} at {}x",
            w[0],
            SHED_LOADS[i],
            w[1],
            SHED_LOADS[i + 1]
        );
    }
    let shed_str: Vec<String> = sheds.iter().map(|s| format!("{s:.4}")).collect();
    println!(
        "shed sweep (loads {SHED_LOADS:?}): [{}] — monotone",
        shed_str.join(", ")
    );

    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_serve.json");
    if quick() {
        // CI smoke: gate against the checked-in snapshot; never rewrite it.
        let Ok(snapshot) = std::fs::read_to_string(path) else {
            panic!("BENCH_serve.json missing; regenerate with `cargo bench -p bench --bench serve_throughput`");
        };
        let gate = json_number(&snapshot, "gate_min_arrivals_per_sec")
            .expect("gate_min_arrivals_per_sec in BENCH_serve.json");
        assert!(
            best_rate >= gate,
            "throughput regression: {best_rate:.0} arrivals/s vs gated floor {gate:.0}"
        );
        println!("serve gate passed: {best_rate:.0} >= {gate:.0} arrivals/s, shed sweep monotone");
        return;
    }

    let json = format!(
        "{{\n  \"bench\": \"serve_throughput\",\n  \"regenerate\": \"cargo bench -p bench --bench serve_throughput --features count-alloc\",\n  \"gate_min_arrivals_per_sec\": {GATE_ARRIVALS_PER_SEC:.0},\n  \"ingest\": {{\n    \"tenants\": {tenants},\n    \"arrivals\": {arrivals},\n    \"arrivals_per_sec\": {best_rate:.0},\n    \"allocs_per_arrival\": {allocs_per_arrival:.6},\n    \"count_alloc\": {counting}\n  }},\n  \"shed_sweep\": {{\n    \"rate_tokens_per_sec\": 1000,\n    \"burst\": 4,\n    \"loads\": {SHED_LOADS:?},\n    \"shed_frac\": [{}]\n  }}\n}}\n",
        shed_str.join(", ")
    );
    std::fs::write(path, json).expect("write BENCH_serve.json");
    println!("wrote {path}");
}
