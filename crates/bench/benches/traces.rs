//! §6.3: the synthetic real-world traces.

use bench::warm_profiles;
use bless::BlessParams;
use criterion::{criterion_group, criterion_main, Criterion};
use dnn_models::ModelKind;
use harness::experiments::traces::trace_mean;
use harness::runner::System;
use workloads::PaperWorkload;

fn bench(c: &mut Criterion) {
    warm_profiles();
    let pairs = [(ModelKind::Vgg11, ModelKind::ResNet50)];
    let mut g = c.benchmark_group("traces");
    g.sample_size(10);
    for (trace, label) in [
        (PaperWorkload::TraceTwitter, "twitter"),
        (PaperWorkload::TraceAzure, "azure"),
    ] {
        g.bench_function(label, |b| {
            b.iter(|| {
                trace_mean(
                    &System::Bless(BlessParams::default()),
                    trace,
                    (0.5, 0.5),
                    &pairs,
                )
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
