//! Fig. 19: hyper-parameter sweeps.

use bench::warm_profiles;
use criterion::{criterion_group, criterion_main, Criterion};
use harness::experiments::fig19::{sm_count_point, split_ratio_curve, squad_size_point};

fn bench(c: &mut Criterion) {
    warm_profiles();
    let mut g = c.benchmark_group("fig19");
    g.sample_size(10);
    g.bench_function("a_squad_size", |b| b.iter(|| squad_size_point(50, 4)));
    g.bench_function("b_split_ratio", |b| {
        b.iter(|| split_ratio_curve(&[0.5], 20))
    });
    g.bench_function("c_sm_count", |b| b.iter(|| sm_count_point(54, 3)));
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
