//! Fig. 9: interference measurements (kernel- and application-level).

use bench::warm_profiles;
use criterion::{criterion_group, criterion_main, Criterion};
use dnn_models::ModelKind;
use gpu_sim::GpuSpec;
use harness::experiments::fig9::{app_pair_slowdown, kernel_slowdown};

fn bench(c: &mut Criterion) {
    warm_profiles();
    let spec = GpuSpec::a100();
    let mut g = c.benchmark_group("fig9");
    g.sample_size(10);
    g.bench_function("kernel_slowdown", |b| {
        b.iter(|| kernel_slowdown(std::hint::black_box(0.5), 0.9, &spec))
    });
    g.bench_function("app_pair_slowdown", |b| {
        b.iter(|| app_pair_slowdown(ModelKind::ResNet50, ModelKind::Vgg11, &spec))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
