//! CUDA-graph granularity sweep (§6.10 extension).

use bench::warm_profiles;
use criterion::{criterion_group, criterion_main, Criterion};
use harness::experiments::graphs::bert_pair_at;

fn bench(c: &mut Criterion) {
    warm_profiles();
    let mut g = c.benchmark_group("graphs");
    g.sample_size(10);
    for size in [1usize, 8] {
        g.bench_function(format!("granularity_{size}"), |b| {
            b.iter(|| bert_pair_at(size, 4))
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
