#![warn(missing_docs)]

//! The BLESS offline profiler (§4.2) and deployment admission (§4.2.2).
//!
//! For each registered application provisioned `n%` of the GPU, the
//! profiler measures — by actually running the application on the GPU
//! simulator, once unrestricted and once per SM partition —
//!
//! * the isolated latency `T[n%]` under MPS,
//! * each kernel's duration `t[n%][k]`,
//! * the cumulative time `τ[n%][k]` from request start to the end of `k`,
//! * each kernel's maximum active SM proportion `d%`, and
//! * the application's resident memory requirement.
//!
//! The GPU is split into `N = 18` partitions on an A100 (6, 12, …, 108
//! SMs), matching the paper's choice that bounds the runtime configuration
//! search space. Profiling one application therefore takes `N + 1`
//! simulated runs; the total simulated profiling time is reported as the
//! Table 1 "profile cost".

pub mod admission;
pub mod profile;

pub use admission::{admit, AdmissionError, AdmissionPolicy, ShedReason};
pub use profile::{ProfiledApp, SharedProfile, PARTITIONS};
