//! Deployment admission checks (§4.2.2).
//!
//! Before co-locating applications, BLESS uses the profiled data to
//! decide whether a placement is safe:
//!
//! * applications with short kernels must not be paired with applications
//!   with extremely long kernels (the former would starve in every kernel
//!   squad), and
//! * the combined resident memory (plus the extra MPS contexts) must fit
//!   on the GPU.

use sim_core::SimDuration;

use crate::profile::ProfiledApp;

/// Tunable admission thresholds.
#[derive(Clone, Debug)]
pub struct AdmissionPolicy {
    /// Maximum allowed ratio between two co-located applications' mean
    /// kernel durations. The paper co-locates applications whose average
    /// kernel durations range from 10 µs to 300 µs, a 30× spread; we allow
    /// some headroom beyond that.
    pub max_mean_kernel_ratio: f64,
    /// Hard ceiling on any single kernel's duration (kernels beyond this
    /// would monopolize squads; the paper's traces top out at 3 ms).
    pub max_single_kernel: SimDuration,
    /// Device memory each deployed application additionally consumes in
    /// MPS contexts (the runtime keeps several contexts per client).
    pub contexts_per_app: u64,
    /// MiB per MPS context (§6.9: ~230 MB).
    pub mib_per_context: u64,
}

impl Default for AdmissionPolicy {
    fn default() -> Self {
        AdmissionPolicy {
            max_mean_kernel_ratio: 64.0,
            max_single_kernel: SimDuration::from_millis(5),
            contexts_per_app: 3,
            mib_per_context: 230,
        }
    }
}

/// Why a placement was rejected.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum AdmissionError {
    /// Two applications' kernel granularities are incompatible.
    IncompatibleKernelDurations {
        /// Application with the short kernels.
        short_app: String,
        /// Application with the long kernels.
        long_app: String,
    },
    /// An application has a kernel too long for squad scheduling.
    KernelTooLong {
        /// The offending application.
        app: String,
        /// Its longest kernel.
        duration: SimDuration,
    },
    /// The placement does not fit in device memory.
    OutOfMemory {
        /// Total MiB required (apps + contexts).
        required_mib: u64,
        /// GPU capacity in MiB.
        capacity_mib: u64,
    },
    /// The serving front-end shed one offered request at runtime
    /// (per-request admission, DESIGN.md §5l) — unlike the deployment-time
    /// variants above, this is a per-arrival decision, and the ingest
    /// stage accounts for every occurrence per tenant: no request is
    /// silently lost.
    Shed {
        /// Tenant index of the shed request.
        app: usize,
        /// Why the arrival was turned away.
        reason: ShedReason,
    },
}

/// Why the serving front-end turned an arrival away
/// ([`AdmissionError::Shed`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ShedReason {
    /// The tenant's token-bucket rate limit was exhausted at the arrival
    /// instant.
    RateLimited,
    /// The tenant's outstanding-queue bound was exceeded (backpressure).
    Backpressure,
}

impl ShedReason {
    /// Stable wire code for trace events: 0 = rate-limited,
    /// 1 = backpressure.
    pub fn code(self) -> u8 {
        match self {
            ShedReason::RateLimited => 0,
            ShedReason::Backpressure => 1,
        }
    }
}

impl std::fmt::Display for AdmissionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AdmissionError::IncompatibleKernelDurations {
                short_app,
                long_app,
            } => write!(
                f,
                "kernel granularity mismatch: {short_app} (short kernels) would starve \
                 next to {long_app} (long kernels)"
            ),
            AdmissionError::KernelTooLong { app, duration } => {
                write!(f, "{app} has a {duration} kernel, too long for squads")
            }
            AdmissionError::OutOfMemory {
                required_mib,
                capacity_mib,
            } => write!(
                f,
                "placement needs {required_mib} MiB but the GPU has {capacity_mib} MiB"
            ),
            AdmissionError::Shed { app, reason } => {
                let why = match reason {
                    ShedReason::RateLimited => "token-bucket rate limit",
                    ShedReason::Backpressure => "outstanding-queue backpressure",
                };
                write!(f, "tenant {app} request shed: {why}")
            }
        }
    }
}

impl std::error::Error for AdmissionError {}

/// Checks whether the given applications can be co-located on a GPU with
/// `capacity_mib` of device memory.
pub fn admit(
    apps: &[&ProfiledApp],
    capacity_mib: u64,
    policy: &AdmissionPolicy,
) -> Result<(), AdmissionError> {
    // Per-kernel ceiling.
    for app in apps {
        let max = app.max_kernel_duration();
        if max > policy.max_single_kernel {
            return Err(AdmissionError::KernelTooLong {
                app: app.name.clone(),
                duration: max,
            });
        }
    }

    // Pairwise mean-kernel-duration compatibility.
    for (i, a) in apps.iter().enumerate() {
        for b in &apps[i + 1..] {
            let (da, db) = (
                a.mean_kernel_duration().as_nanos() as f64,
                b.mean_kernel_duration().as_nanos() as f64,
            );
            if da <= 0.0 || db <= 0.0 {
                continue;
            }
            let ratio = if da > db { da / db } else { db / da };
            if ratio > policy.max_mean_kernel_ratio {
                let (short, long) = if da < db { (a, b) } else { (b, a) };
                return Err(AdmissionError::IncompatibleKernelDurations {
                    short_app: short.name.clone(),
                    long_app: long.name.clone(),
                });
            }
        }
    }

    // Memory capacity, including the per-app MPS contexts.
    let required: u64 = apps
        .iter()
        .map(|a| a.memory_mib + policy.contexts_per_app * policy.mib_per_context)
        .sum();
    if required > capacity_mib {
        return Err(AdmissionError::OutOfMemory {
            required_mib: required,
            capacity_mib,
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use dnn_models::{AppModel, ModelKind, Phase};
    use gpu_sim::GpuSpec;

    fn profiled(kind: ModelKind) -> ProfiledApp {
        ProfiledApp::profile(&AppModel::build(kind, Phase::Inference), &GpuSpec::a100())
    }

    #[test]
    fn paper_models_co_locate() {
        let a = profiled(ModelKind::Vgg11);
        let b = profiled(ModelKind::ResNet50);
        let c = profiled(ModelKind::Bert);
        admit(&[&a, &b, &c], 40 * 1024, &AdmissionPolicy::default()).unwrap();
    }

    #[test]
    fn memory_limit_rejects() {
        let a = profiled(ModelKind::Vgg11);
        let b = profiled(ModelKind::ResNet50);
        let err = admit(&[&a, &b], 2_000, &AdmissionPolicy::default()).unwrap_err();
        assert!(matches!(err, AdmissionError::OutOfMemory { .. }));
        assert!(format!("{err}").contains("MiB"));
    }

    #[test]
    fn kernel_ratio_rejects_extreme_mismatch() {
        let a = profiled(ModelKind::NasNet); // many short kernels
        let b = profiled(ModelKind::Vgg11);
        let strict = AdmissionPolicy {
            max_mean_kernel_ratio: 1.5,
            ..AdmissionPolicy::default()
        };
        let err = admit(&[&a, &b], 40 * 1024, &strict).unwrap_err();
        assert!(matches!(
            err,
            AdmissionError::IncompatibleKernelDurations { .. }
        ));
    }

    #[test]
    fn long_kernels_reject() {
        let a = profiled(ModelKind::Vgg11);
        let strict = AdmissionPolicy {
            max_single_kernel: SimDuration::from_micros(100),
            ..AdmissionPolicy::default()
        };
        let err = admit(&[&a], 40 * 1024, &strict).unwrap_err();
        assert!(matches!(err, AdmissionError::KernelTooLong { .. }));
    }
}
