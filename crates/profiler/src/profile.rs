//! Per-application profiling runs.

use dnn_models::AppModel;
use gpu_sim::{CtxKind, Gpu, GpuSpec, HostCosts, KernelDesc};
use sim_core::{SimDuration, SimTime};

/// Number of SM partitions the profiler measures (paper: `N = 18` on an
/// A100, i.e. 6%, 12%, …, 100% of 108 SMs).
pub const PARTITIONS: usize = 18;

/// A cheaply clonable handle to an interned profile.
///
/// A [`ProfiledApp`] owns `N + 1` runs' worth of kernel tables (tens of
/// kilobytes per application); deep-copying it per placement request and
/// again per GPU deployment dominated fleet-setup cost. Placement, the
/// per-GPU runtimes, and the experiment cache all share one table through
/// this handle instead.
pub type SharedProfile = std::sync::Arc<ProfiledApp>;

/// The profiled data of one application (§4.2.1).
#[derive(Clone, Debug)]
pub struct ProfiledApp {
    /// Application name.
    pub name: String,
    /// SM count of each partition, ascending (e.g. `[6, 12, …, 108]`).
    pub partition_sms: Vec<u32>,
    /// `T[n%]`: isolated end-to-end latency per partition index.
    pub iso_latency: Vec<SimDuration>,
    /// `t[n%][k]`: per-partition, per-kernel duration.
    pub kernel_durations: Vec<Vec<SimDuration>>,
    /// `τ[n%][k]`: per-partition cumulative time from request start to the
    /// end of kernel `k`.
    pub cumulative: Vec<Vec<SimDuration>>,
    /// Per-partition prefix sums of `kernel_durations` in nanoseconds:
    /// `duration_prefix[p][k] = Σ_{j<k} t[p][j]`, with a leading 0 and one
    /// trailing entry, so any contiguous stacked-duration range is an O(1)
    /// subtraction (see [`Self::duration_range_sum`]). Unlike `cumulative`
    /// (τ), this excludes launch gaps — it is exactly the sum the
    /// configuration determiner stacks per squad entry.
    pub duration_prefix: Vec<Vec<u64>>,
    /// `d%`: per-kernel maximum active SM proportion (of the full GPU).
    pub d_frac: Vec<f64>,
    /// Resident device memory the application needs, MiB.
    pub memory_mib: u64,
    /// Total simulated time the profiling runs took (Table 1's
    /// "profile cost").
    pub profile_cost: SimDuration,
    /// The application's kernel trace (for the runtime scheduler), as an
    /// `Arc` slice so drivers can register it with the engine as a kernel
    /// table (one refcount bump, no deep copy) and launch by index.
    pub kernels: std::sync::Arc<[KernelDesc]>,
}

impl ProfiledApp {
    /// Profiles `app` on a GPU with the given spec: one unrestricted run
    /// plus one run per SM partition.
    pub fn profile(app: &AppModel, spec: &GpuSpec) -> ProfiledApp {
        let num_sms = spec.num_sms;
        assert!(num_sms >= 1, "GPU needs at least one SM");
        // On GPUs smaller than the partition count (Fig. 19c's MIG-carved
        // instances), neighbouring partitions round to the same SM count;
        // that is harmless — the grid simply has duplicate entries.
        let step = num_sms as f64 / PARTITIONS as f64;
        let partition_sms: Vec<u32> = (1..=PARTITIONS)
            .map(|i| ((step * i as f64).round() as u32).clamp(1, num_sms))
            .collect();

        let mut profile_cost = SimDuration::ZERO;

        // First run: unrestricted, to obtain the overall performance.
        let (t_full, _durs, _cums) = run_solo(app, spec, None);
        profile_cost += t_full;

        // One run per partition.
        let mut iso_latency = Vec::with_capacity(PARTITIONS);
        let mut kernel_durations = Vec::with_capacity(PARTITIONS);
        let mut cumulative = Vec::with_capacity(PARTITIONS);
        for &sms in &partition_sms {
            let (total, durs, cums) = run_solo(app, spec, Some(sms));
            profile_cost += total;
            iso_latency.push(total);
            kernel_durations.push(durs);
            cumulative.push(cums);
        }

        let duration_prefix = kernel_durations
            .iter()
            .map(|durs: &Vec<SimDuration>| {
                let mut pre = Vec::with_capacity(durs.len() + 1);
                let mut acc = 0u64;
                pre.push(acc);
                for d in durs {
                    acc += d.as_nanos();
                    pre.push(acc);
                }
                pre
            })
            .collect();

        let d_frac = app
            .kernels
            .iter()
            .map(|k| {
                if k.kind.is_compute() {
                    k.max_sms.min(num_sms) as f64 / num_sms as f64
                } else {
                    0.0
                }
            })
            .collect();

        ProfiledApp {
            name: app.name.clone(),
            partition_sms,
            iso_latency,
            kernel_durations,
            cumulative,
            duration_prefix,
            d_frac,
            memory_mib: app.memory_mib,
            profile_cost,
            kernels: app.kernels.clone().into(),
        }
    }

    /// [`ProfiledApp::profile`] returning an interned [`SharedProfile`]
    /// handle, ready to share across placement requests and deployments
    /// without further deep copies.
    pub fn profile_shared(app: &AppModel, spec: &GpuSpec) -> SharedProfile {
        std::sync::Arc::new(ProfiledApp::profile(app, spec))
    }

    /// Number of kernels per request.
    pub fn kernel_count(&self) -> usize {
        self.kernels.len()
    }

    /// The partition index whose share best matches `quota` (rounded to
    /// the nearest partition, at least the smallest).
    pub fn partition_for_quota(&self, quota: f64) -> usize {
        let q = quota.clamp(0.0, 1.0);
        let idx = (q * PARTITIONS as f64).round() as usize;
        idx.clamp(1, PARTITIONS) - 1
    }

    /// `T[n%]` for a quota expressed as a fraction of the GPU.
    pub fn iso_latency_for_quota(&self, quota: f64) -> SimDuration {
        self.iso_latency[self.partition_for_quota(quota)]
    }

    /// `t[n%][k]` for a partition index.
    pub fn kernel_duration(&self, partition: usize, kernel: usize) -> SimDuration {
        self.kernel_durations[partition][kernel]
    }

    /// `τ[n%][k]` for a partition index.
    pub fn tau(&self, partition: usize, kernel: usize) -> SimDuration {
        self.cumulative[partition][kernel]
    }

    /// `Σ t[n%][k]` for kernels `start..end` (half-open), in O(1) via the
    /// prefix table. Bit-identical to summing [`Self::kernel_duration`]
    /// over the range: both are u64-nanosecond additions, which are
    /// associative.
    pub fn duration_range_sum(&self, partition: usize, start: usize, end: usize) -> SimDuration {
        let pre = &self.duration_prefix[partition];
        SimDuration::from_nanos(pre[end] - pre[start])
    }

    /// The duration of kernel `k` on an arbitrary SM count, interpolated
    /// linearly between the two neighbouring profiled partitions (§4.4.2:
    /// "the duration of a kernel using the desired number of SM is
    /// interpolated if it cannot utilize so many SMs").
    pub fn duration_at_sms(&self, kernel: usize, sms: f64) -> SimDuration {
        let first = self.partition_sms[0] as f64;
        if sms <= first {
            // Extrapolate below the smallest partition conservatively by
            // inverse-proportional scaling.
            let d0 = self.kernel_durations[0][kernel].as_nanos() as f64;
            let scaled = d0 * (first / sms.max(1.0));
            return SimDuration::from_nanos(scaled.round() as u64);
        }
        let last_idx = self.partition_sms.len() - 1;
        if sms >= self.partition_sms[last_idx] as f64 {
            return self.kernel_durations[last_idx][kernel];
        }
        // Find the bracketing partitions.
        let hi = self
            .partition_sms
            .iter()
            .position(|&p| p as f64 >= sms)
            .unwrap_or(last_idx);
        let lo = hi - 1;
        let (s0, s1) = (self.partition_sms[lo] as f64, self.partition_sms[hi] as f64);
        let (d0, d1) = (
            self.kernel_durations[lo][kernel].as_nanos() as f64,
            self.kernel_durations[hi][kernel].as_nanos() as f64,
        );
        let frac = (sms - s0) / (s1 - s0);
        SimDuration::from_nanos((d0 + (d1 - d0) * frac).round() as u64)
    }

    /// Mean compute-kernel duration at the largest partition (used by the
    /// admission policy).
    pub fn mean_kernel_duration(&self) -> SimDuration {
        let last = self.kernel_durations.len() - 1;
        let computes: Vec<SimDuration> = self
            .kernels
            .iter()
            .enumerate()
            .filter(|(_, k)| k.kind.is_compute())
            .map(|(i, _)| self.kernel_durations[last][i])
            .collect();
        if computes.is_empty() {
            return SimDuration::ZERO;
        }
        computes.iter().copied().sum::<SimDuration>() / computes.len() as u64
    }

    /// Longest compute-kernel duration at the largest partition.
    pub fn max_kernel_duration(&self) -> SimDuration {
        let last = self.kernel_durations.len() - 1;
        self.kernels
            .iter()
            .enumerate()
            .filter(|(_, k)| k.kind.is_compute())
            .map(|(i, _)| self.kernel_durations[last][i])
            .max()
            .unwrap_or(SimDuration::ZERO)
    }
}

/// Runs the application once, solo, optionally under an MPS cap, and
/// returns (total latency, per-kernel durations, per-kernel cumulative
/// completion offsets).
fn run_solo(
    app: &AppModel,
    spec: &GpuSpec,
    mps_cap: Option<u32>,
) -> (SimDuration, Vec<SimDuration>, Vec<SimDuration>) {
    let mut gpu = Gpu::new(spec.clone(), HostCosts::paper());
    let ctx = match mps_cap {
        None => gpu.create_context(CtxKind::Default).expect("context"),
        Some(cap) => gpu
            .create_context(CtxKind::MpsAffinity { sm_cap: cap })
            .expect("context"),
    };
    let queue = gpu.create_queue(ctx).expect("queue");
    let handles: Vec<_> = app
        .kernels
        .iter()
        .enumerate()
        .map(|(i, k)| gpu.launch(queue, k.clone(), i as u64).expect("launch"))
        .collect();
    gpu.drain();
    let start = SimTime::ZERO;
    let mut durs = Vec::with_capacity(handles.len());
    let mut cums = Vec::with_capacity(handles.len());
    let mut end = SimTime::ZERO;
    for h in &handles {
        let s = gpu.kernel_started_at(*h).expect("started");
        let f = gpu.kernel_finished_at(*h).expect("finished");
        durs.push(f.duration_since(s));
        cums.push(f.duration_since(start));
        end = end.max(f);
    }
    (end.duration_since(start), durs, cums)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dnn_models::{ModelKind, Phase};

    fn profiled(kind: ModelKind) -> ProfiledApp {
        let app = AppModel::build(kind, Phase::Inference);
        ProfiledApp::profile(&app, &GpuSpec::a100())
    }

    #[test]
    fn partitions_cover_six_to_full() {
        let p = profiled(ModelKind::Vgg11);
        assert_eq!(p.partition_sms.len(), PARTITIONS);
        assert_eq!(p.partition_sms[0], 6);
        assert_eq!(p.partition_sms[PARTITIONS - 1], 108);
    }

    #[test]
    fn iso_latency_decreases_with_more_sms() {
        let p = profiled(ModelKind::ResNet50);
        for w in p.iso_latency.windows(2) {
            assert!(w[0] >= w[1], "more SMs cannot be slower: {w:?}");
        }
        // Full partition should be close to the calibrated solo latency
        // (8.7 ms plus the 3 µs first-launch overhead).
        let full = p.iso_latency[PARTITIONS - 1].as_millis_f64();
        assert!((full - 8.7).abs() < 0.2, "full-GPU latency {full:.2} ms");
    }

    #[test]
    fn small_partitions_are_much_slower() {
        let p = profiled(ModelKind::Vgg11);
        let t6 = p.iso_latency[0].as_millis_f64();
        let t108 = p.iso_latency[PARTITIONS - 1].as_millis_f64();
        // VGG's busy SM·time is ~81% of 108 SMs; on 6 SMs it must be
        // roughly busy/6, i.e. ~14x the full-GPU latency.
        assert!(t6 / t108 > 8.0, "t6 {t6:.1} ms, t108 {t108:.1} ms");
    }

    #[test]
    fn cumulative_is_monotone_and_ends_at_total() {
        let p = profiled(ModelKind::ResNet50);
        for part in 0..PARTITIONS {
            let cums = &p.cumulative[part];
            assert!(cums.windows(2).all(|w| w[0] <= w[1]));
            assert_eq!(*cums.last().unwrap(), p.iso_latency[part]);
        }
    }

    #[test]
    fn partition_for_quota_rounds_sensibly() {
        let p = profiled(ModelKind::Vgg11);
        assert_eq!(p.partition_for_quota(1.0), PARTITIONS - 1);
        assert_eq!(p.partition_for_quota(0.5), 8); // 9th partition = 54 SMs
        assert_eq!(p.partition_sms[p.partition_for_quota(0.5)], 54);
        assert_eq!(p.partition_for_quota(1.0 / 3.0), 5); // 36 SMs
        assert_eq!(p.partition_for_quota(0.0), 0); // clamps to smallest
        assert_eq!(p.partition_for_quota(2.0 / 3.0), 11); // 72 SMs
    }

    #[test]
    fn duration_interpolation_brackets() {
        let p = profiled(ModelKind::Vgg11);
        // Pick a compute kernel (index 1; index 0 is the H2D copy).
        let k = 1;
        let d54 = p.kernel_duration(8, k); // 54 SMs
        let d60 = p.kernel_duration(9, k); // 60 SMs
        let mid = p.duration_at_sms(k, 57.0);
        assert!(mid <= d54 && mid >= d60, "{d54:?} {mid:?} {d60:?}");
        // Beyond the top partition: clamps to the fastest measurement.
        assert_eq!(p.duration_at_sms(k, 500.0), p.kernel_duration(17, k));
        // Below the smallest: strictly slower than the 6-SM measurement.
        assert!(p.duration_at_sms(k, 3.0) > p.kernel_duration(0, k));
    }

    #[test]
    fn profile_cost_matches_table1_magnitude() {
        // Table 1 reports 0.56 s for VGG inference and 0.38 s for R50.
        let vgg = profiled(ModelKind::Vgg11);
        let cost = vgg.profile_cost.as_secs_f64();
        assert!((0.3..1.0).contains(&cost), "VGG profile cost {cost:.2} s");
    }

    #[test]
    fn d_frac_reflects_kernel_parallelism() {
        let p = profiled(ModelKind::ResNet50);
        for (i, k) in p.kernels.iter().enumerate() {
            if k.kind.is_compute() {
                assert!((p.d_frac[i] - k.max_sms as f64 / 108.0).abs() < 1e-9);
            } else {
                assert_eq!(p.d_frac[i], 0.0);
            }
        }
    }

    #[test]
    fn mean_and_max_kernel_durations() {
        let p = profiled(ModelKind::Vgg11);
        assert!(p.mean_kernel_duration() > SimDuration::ZERO);
        assert!(p.max_kernel_duration() >= p.mean_kernel_duration());
    }
}
