//! Tally: non-intrusive priority-aware GPU sharing.
//!
//! Tally (arXiv 2410.07381) interposes transparently between applications
//! and the GPU and splits tenants into one *priority* task and a set of
//! *best-effort* tasks. The priority tenant's kernels are forwarded
//! unimpeded on an unrestricted context; best-effort tenants are scheduled
//! at kernel granularity — one kernel in flight at a time — and, while the
//! priority tenant is active, throttled to a small MPS SM-affinity slice
//! so that their occupancy cannot inflate priority latency. Whenever the
//! priority tenant goes idle the throttle lifts and best-effort kernels
//! run at the full SM cap (work conservation at kernel boundaries).
//!
//! Compared to BLESS, Tally
//!
//! * protects exactly one tenant instead of balancing per-quota progress,
//! * never searches for a spatial configuration (the throttle cap is a
//!   fixed fraction), and
//! * serializes each best-effort tenant's kernels, giving up the
//!   intra-request concurrency that BLESS's squads exploit.

use gpu_sim::{CtxId, CtxKind, Gpu, HostDriver, KernelDone, QueueId, RequestArrival};

use crate::common::{must, must_some, tag_of, untag, TenantStates};
use bless::DeployedApp;

/// The tenant index Tally protects (by convention the first deployed app).
pub const PRIORITY_APP: usize = 0;

/// Best-effort SM share while the priority tenant is active, as a divisor
/// of the device SM count (`num_sms / TALLY_THROTTLE_DIVISOR`).
pub const TALLY_THROTTLE_DIVISOR: u32 = 8;

/// The Tally driver.
pub struct TallyDriver {
    /// Deployment data per app; app [`PRIORITY_APP`] is the priority task.
    pub apps: Vec<DeployedApp>,
    /// Tenant request state + log.
    pub tenants: TenantStates,
    queues: Vec<QueueId>,
    ctxs: Vec<CtxId>,
    throttled: bool,
}

impl TallyDriver {
    /// Creates a Tally driver; the first app is the priority tenant.
    pub fn new(apps: Vec<DeployedApp>) -> Self {
        assert!(!apps.is_empty(), "Tally needs at least the priority app");
        let totals = apps.iter().map(|a| a.profile.kernel_count()).collect();
        TallyDriver {
            tenants: TenantStates::new(totals),
            queues: Vec::new(),
            ctxs: Vec::new(),
            throttled: false,
            apps,
        }
    }

    fn priority_active(&self) -> bool {
        self.tenants.active[PRIORITY_APP].is_some()
    }

    /// Applies the best-effort throttle matching the priority tenant's
    /// activity. Raising or lowering an MPS cap re-allocates immediately,
    /// so in-flight best-effort kernels shrink the moment a priority
    /// request arrives (the non-intrusive analogue of REEF's preemption).
    fn sync_caps(&mut self, gpu: &mut Gpu) {
        let want = self.priority_active();
        if want == self.throttled {
            return;
        }
        self.throttled = want;
        let cap = if want {
            (gpu.spec().num_sms / TALLY_THROTTLE_DIVISOR).max(1)
        } else {
            gpu.spec().num_sms
        };
        for app in 1..self.ctxs.len() {
            must(gpu.set_mps_cap(self.ctxs[app], cap), "throttle cap");
        }
    }

    /// Launches the whole active priority request at once (its queue keeps
    /// kernels in order; Tally adds no scheduling between them).
    fn launch_priority_request(&mut self, gpu: &mut Gpu) {
        let act = must_some(
            self.tenants.active[PRIORITY_APP],
            "priority launch without active request",
        );
        debug_assert_eq!(act.next_kernel, 0, "priority requests launch whole");
        let total = self.tenants.kernel_total(PRIORITY_APP);
        for k in 0..total {
            let desc = self.apps[PRIORITY_APP].profile.kernels[k].clone();
            must(
                gpu.launch(self.queues[PRIORITY_APP], desc, tag_of(PRIORITY_APP, k)),
                "priority launch",
            );
        }
    }

    /// Launches the next kernel of a best-effort tenant's active request
    /// (exactly one in flight per tenant).
    fn launch_best_effort_kernel(&mut self, gpu: &mut Gpu, app: usize) {
        debug_assert_ne!(app, PRIORITY_APP);
        let act = must_some(
            self.tenants.active[app],
            "best-effort launch without active request",
        );
        let k = act.next_kernel;
        let desc = self.apps[app].profile.kernels[k].clone();
        must(gpu.launch(self.queues[app], desc, tag_of(app, k)), "launch");
    }
}

impl HostDriver for TallyDriver {
    fn on_start(&mut self, gpu: &mut Gpu) {
        for (i, app) in self.apps.iter().enumerate() {
            must(gpu.alloc_memory(app.profile.memory_mib), "deployment fits");
            let kind = if i == PRIORITY_APP {
                // The priority tenant is never restricted.
                CtxKind::Default
            } else {
                CtxKind::MpsAffinity {
                    sm_cap: gpu.spec().num_sms,
                }
            };
            let ctx = must(gpu.create_context(kind), "ctx");
            self.ctxs.push(ctx);
            self.queues.push(must(gpu.create_queue(ctx), "queue"));
        }
    }

    fn on_request(&mut self, gpu: &mut Gpu, req: RequestArrival) {
        let was_idle = self.tenants.active[req.app].is_none();
        self.tenants.on_arrival(req.app, req.req, req.at);
        if was_idle {
            if req.app == PRIORITY_APP {
                self.launch_priority_request(gpu);
            } else {
                self.launch_best_effort_kernel(gpu, req.app);
            }
        }
        self.sync_caps(gpu);
    }

    fn on_kernel_done(&mut self, gpu: &mut Gpu, done: KernelDone) {
        let (app, kernel) = untag(done.tag);
        let completed = self.tenants.on_kernel_done(gpu, app, kernel, done.at);
        if app == PRIORITY_APP {
            // Mid-request completions need no action: the rest of the
            // request is already in flight on the in-order queue.
            if completed && self.tenants.active[PRIORITY_APP].is_some() {
                self.launch_priority_request(gpu);
            }
        } else if self.tenants.active[app].is_some() {
            // Continue the current request, or start the next queued one.
            self.launch_best_effort_kernel(gpu, app);
        }
        self.sync_caps(gpu);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dnn_models::{AppModel, ModelKind, Phase};
    use gpu_sim::{GpuSpec, HostCosts, RunOutcome, Simulation};
    use profiler::ProfiledApp;
    use sim_core::SimTime;

    fn deploy(kind: ModelKind, quota: f64) -> DeployedApp {
        let profile =
            ProfiledApp::profile(&AppModel::build(kind, Phase::Inference), &GpuSpec::a100());
        DeployedApp::new(profile, quota, None)
    }

    fn run(arrivals: Vec<RequestArrival>) -> TallyDriver {
        let apps = vec![
            deploy(ModelKind::ResNet50, 0.5),
            deploy(ModelKind::Vgg11, 0.5),
        ];
        let driver = TallyDriver::new(apps);
        let gpu = Gpu::new(GpuSpec::a100(), HostCosts::paper());
        let mut sim = Simulation::new(gpu, driver, arrivals);
        assert_eq!(sim.run(SimTime::from_secs(10)), RunOutcome::Completed);
        sim.driver
    }

    fn at(app: usize, req: usize, at: SimTime) -> RequestArrival {
        RequestArrival { app, req, at }
    }

    #[test]
    fn priority_latency_stays_near_iso_under_contention() {
        let d = run(vec![
            at(0, 0, SimTime::ZERO),
            at(1, 0, SimTime::ZERO),
            at(1, 1, SimTime::ZERO),
        ]);
        assert_eq!(d.tenants.log.completed_count(0), 1);
        assert_eq!(d.tenants.log.completed_count(1), 2);
        // The throttled best-effort tenant can only perturb the priority
        // tenant through its 1/8 slice; the priority latency stays close
        // to running alone on the full GPU.
        let lat = d.tenants.log.stats(0).mean.unwrap().as_nanos() as f64;
        let solo = run(vec![at(0, 0, SimTime::ZERO)])
            .tenants
            .log
            .stats(0)
            .mean
            .unwrap()
            .as_nanos() as f64;
        assert!(lat < solo * 1.35, "priority {lat} vs solo {solo}");
    }

    #[test]
    fn best_effort_gets_full_gpu_when_priority_idle() {
        let solo_be = run(vec![at(1, 0, SimTime::ZERO)]);
        let lat = solo_be.tenants.log.stats(1).mean.unwrap();
        // One-kernel-at-a-time serialization on an otherwise free GPU:
        // within 2x of the isolated full-GPU latency.
        let iso = solo_be.apps[1].iso_latency();
        assert!(
            lat.as_nanos() < iso.as_nanos() * 2,
            "best-effort solo {lat} vs iso {iso}"
        );
    }

    #[test]
    fn no_best_effort_request_is_lost() {
        let mut arrivals = vec![at(0, 0, SimTime::ZERO)];
        for r in 0..6 {
            arrivals.push(at(1, r, SimTime::from_millis(r as u64)));
        }
        let d = run(arrivals);
        assert_eq!(d.tenants.log.completed_count(0), 1);
        assert_eq!(d.tenants.log.completed_count(1), 6);
    }

    #[test]
    fn throttle_follows_priority_activity() {
        // A priority request arriving mid-way through a best-effort run
        // must still finish quickly (the cap shrinks immediately).
        let d = run(vec![
            at(1, 0, SimTime::ZERO),
            at(0, 0, SimTime::from_millis(2)),
        ]);
        let lat = d.tenants.log.stats(0).mean.unwrap().as_nanos() as f64;
        let solo = run(vec![at(0, 0, SimTime::ZERO)])
            .tenants
            .log
            .stats(0)
            .mean
            .unwrap()
            .as_nanos() as f64;
        assert!(lat < solo * 1.35, "late priority {lat} vs solo {solo}");
    }
}
