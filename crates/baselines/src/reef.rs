//! REEF+: controlled kernel concurrency with even MPS spatial partitioning.
//!
//! REEF (OSDI '22) launches kernels periodically in controlled batches and
//! pads kernels for deterministic co-execution; the paper's improved
//! REEF+ replaces kernel padding with MPS so that concurrently launched
//! batches are *evenly* spatially partitioned. Compared to BLESS, REEF+
//!
//! * selects kernels round-robin instead of by quota progress,
//! * always splits the GPU evenly among the *active* tenants (no
//!   configuration search — "the optimal spatial partitioning
//!   configuration of kernels cannot be determined at runtime in REEF+",
//!   §6.4), and
//! * keeps the restriction for the whole batch (no semi-SP tail); a
//!   batch, once launched, cannot shrink for a newcomer the way BLESS's
//!   draining squads do.

use gpu_sim::{CtxId, CtxKind, Gpu, HostDriver, KernelDone, QueueId, RequestArrival};

use crate::common::{must, must_some, tag_of, untag, TenantStates};
use bless::DeployedApp;

/// Wake token for deferred batch scheduling.
const BATCH_WAKE: u64 = u64::MAX - 2;

/// The REEF+ driver.
pub struct ReefPlusDriver {
    /// Deployment data per app.
    pub apps: Vec<DeployedApp>,
    /// Tenant request state + log.
    pub tenants: TenantStates,
    /// Maximum kernels per batch (matches BLESS's squad size by default).
    pub batch_size: usize,
    queues: Vec<QueueId>,
    ctxs: Vec<CtxId>,
    outstanding: usize,
    batch_active: bool,
    wake_pending: bool,
}

impl ReefPlusDriver {
    /// Creates a REEF+ driver with the default batch size of 50.
    pub fn new(apps: Vec<DeployedApp>) -> Self {
        let totals = apps.iter().map(|a| a.profile.kernel_count()).collect();
        ReefPlusDriver {
            tenants: TenantStates::new(totals),
            batch_size: 50,
            queues: Vec::new(),
            ctxs: Vec::new(),
            outstanding: 0,
            batch_active: false,
            wake_pending: false,
            apps,
        }
    }

    fn request_batch(&mut self, gpu: &mut Gpu) {
        if self.wake_pending || self.batch_active {
            return;
        }
        self.wake_pending = true;
        gpu.wake_at(gpu.now(), BATCH_WAKE);
    }

    fn start_batch(&mut self, gpu: &mut Gpu) {
        debug_assert!(!self.batch_active);
        let active = self.tenants.apps_with_work();
        if active.is_empty() {
            return;
        }
        // Even spatial partitioning over the *active* tenants (a solo
        // tenant gets the whole GPU; REEF's concurrency control is work
        // conserving for the running task set, unlike GSLICE's static
        // quota slices).
        let cap = (gpu.spec().num_sms / active.len() as u32).max(1);
        for &app in &active {
            must(gpu.set_mps_cap(self.ctxs[app], cap), "cap");
        }

        // Round-robin kernel selection up to the batch size.
        let mut pointers: Vec<usize> = active
            .iter()
            .map(|&a| must_some(self.tenants.active[a], "active tenant has work").next_kernel)
            .collect();
        let mut launched = 0usize;
        let mut progressed = true;
        'outer: while launched < self.batch_size && progressed {
            progressed = false;
            for (i, &app) in active.iter().enumerate() {
                let total = self.tenants.kernel_total(app);
                if pointers[i] >= total {
                    continue;
                }
                let k = pointers[i];
                let desc = self.apps[app].profile.kernels[k].clone();
                must(gpu.launch(self.queues[app], desc, tag_of(app, k)), "launch");
                pointers[i] += 1;
                launched += 1;
                progressed = true;
                if launched >= self.batch_size {
                    break 'outer;
                }
            }
        }
        debug_assert!(launched > 0);
        self.outstanding = launched;
        self.batch_active = true;
    }
}

impl HostDriver for ReefPlusDriver {
    fn on_start(&mut self, gpu: &mut Gpu) {
        for app in &self.apps {
            must(gpu.alloc_memory(app.profile.memory_mib), "deployment fits");
            let ctx = must(
                gpu.create_context(CtxKind::MpsAffinity {
                    sm_cap: gpu.spec().num_sms,
                }),
                "ctx",
            );
            self.ctxs.push(ctx);
            self.queues.push(must(gpu.create_queue(ctx), "queue"));
        }
    }

    fn on_request(&mut self, gpu: &mut Gpu, req: RequestArrival) {
        self.tenants.on_arrival(req.app, req.req, req.at);
        self.request_batch(gpu);
    }

    fn on_wake(&mut self, gpu: &mut Gpu, token: u64) {
        if token == BATCH_WAKE {
            self.wake_pending = false;
            if !self.batch_active {
                self.start_batch(gpu);
            }
        }
    }

    fn on_kernel_done(&mut self, gpu: &mut Gpu, done: KernelDone) {
        let (app, kernel) = untag(done.tag);
        self.tenants.on_kernel_done(gpu, app, kernel, done.at);
        self.outstanding -= 1;
        if self.outstanding == 0 {
            self.batch_active = false;
            gpu.charge_host(gpu.costs().squad_sync);
            self.request_batch(gpu);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dnn_models::{AppModel, ModelKind, Phase};
    use gpu_sim::{GpuSpec, HostCosts, RunOutcome, Simulation};
    use profiler::ProfiledApp;
    use sim_core::SimTime;

    fn deploy(kind: ModelKind, quota: f64) -> DeployedApp {
        let profile =
            ProfiledApp::profile(&AppModel::build(kind, Phase::Inference), &GpuSpec::a100());
        DeployedApp::new(profile, quota, None)
    }

    fn run(arrivals: Vec<RequestArrival>) -> ReefPlusDriver {
        let apps = vec![
            deploy(ModelKind::Vgg11, 0.5),
            deploy(ModelKind::ResNet50, 0.5),
        ];
        let driver = ReefPlusDriver::new(apps);
        let gpu = Gpu::new(GpuSpec::a100(), HostCosts::paper());
        let mut sim = Simulation::new(gpu, driver, arrivals);
        assert_eq!(sim.run(SimTime::from_secs(10)), RunOutcome::Completed);
        sim.driver
    }

    #[test]
    fn pair_completes_with_even_split() {
        let d = run(vec![
            RequestArrival {
                app: 0,
                req: 0,
                at: SimTime::ZERO,
            },
            RequestArrival {
                app: 1,
                req: 0,
                at: SimTime::ZERO,
            },
        ]);
        assert_eq!(d.tenants.log.completed_count(0), 1);
        assert_eq!(d.tenants.log.completed_count(1), 1);
        // Even 54/54 splitting under full overlap: latencies in the same
        // ballpark as the 50% ISO latencies.
        for app in 0..2 {
            let lat = d.tenants.log.stats(app).mean.unwrap().as_nanos() as f64;
            let iso = d.apps[app].iso_latency().as_nanos() as f64;
            assert!(lat < iso * 1.8, "app {app}: {lat} vs iso {iso}");
        }
    }

    #[test]
    fn solo_request_uses_full_gpu() {
        let d = run(vec![RequestArrival {
            app: 1,
            req: 0,
            at: SimTime::ZERO,
        }]);
        let lat = d.tenants.log.stats(1).mean.unwrap();
        assert!(lat.as_millis_f64() < 10.0, "solo R50 {lat}");
    }

    #[test]
    fn uneven_quotas_are_ignored() {
        // REEF+ splits evenly regardless of quotas: with identical models
        // the two tenants get nearly identical latencies.
        let apps = vec![
            deploy(ModelKind::ResNet50, 0.8),
            deploy(ModelKind::ResNet50, 0.2),
        ];
        let driver = ReefPlusDriver::new(apps);
        let arrivals = vec![
            RequestArrival {
                app: 0,
                req: 0,
                at: SimTime::ZERO,
            },
            RequestArrival {
                app: 1,
                req: 0,
                at: SimTime::ZERO,
            },
        ];
        let gpu = Gpu::new(GpuSpec::a100(), HostCosts::paper());
        let mut sim = Simulation::new(gpu, driver, arrivals);
        assert_eq!(sim.run(SimTime::from_secs(10)), RunOutcome::Completed);
        let l0 = sim
            .driver
            .tenants
            .log
            .stats(0)
            .mean
            .unwrap()
            .as_millis_f64();
        let l1 = sim
            .driver
            .tenants
            .log
            .stats(1)
            .mean
            .unwrap()
            .as_millis_f64();
        assert!((l0 - l1).abs() / l0 < 0.10, "{l0} vs {l1}");
    }
}
