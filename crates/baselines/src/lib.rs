#![warn(missing_docs)]

//! Baseline GPU-sharing systems the paper compares BLESS against (§6.1).
//!
//! | System   | Mechanism | Module |
//! |----------|-----------|--------|
//! | ISO      | each app alone on its quota's MPS partition (the latency *target*) | run tenants in separate simulations with [`ShareMode::QuotaMps`] |
//! | TEMPORAL | round-robin time slices + context switches | [`TemporalDriver`] |
//! | MIG      | hard partitions at GPC granularity | [`StaticShareDriver`] with [`ShareMode::Mig`] |
//! | GSLICE   | static MPS SM-affinity at each quota | [`StaticShareDriver`] with [`ShareMode::QuotaMps`] |
//! | UNBOUND  | full-GPU contexts, hardware arbitration | [`StaticShareDriver`] with [`ShareMode::Unbound`] |
//! | REEF+    | batched launching + even MPS partitioning | [`ReefPlusDriver`] |
//! | ZICO     | memory-coordinated tick-tock iteration sharing (training) | [`ZicoDriver`] |
//! | TALLY    | priority tenant unimpeded, best-effort kernels throttled | [`TallyDriver`] |

pub mod common;
pub mod reef;
pub mod static_share;
pub mod tally;
pub mod temporal;
pub mod zico;

pub use reef::ReefPlusDriver;
pub use static_share::{mig_slice_sms, ShareMode, StaticShareDriver};
pub use tally::TallyDriver;
pub use temporal::TemporalDriver;
pub use zico::ZicoDriver;
