//! Shared tenant bookkeeping for the baseline drivers.

use std::collections::VecDeque;

use gpu_sim::Gpu;
use metrics::RequestLog;
use sim_core::SimTime;

/// The workspace-wide launch-tag codec (shared with the BLESS runtime).
pub use gpu_sim::{decode_tag as untag, encode_tag as tag_of};
/// The request-completion notice format the `workloads` closed-loop
/// controller consumes.
pub use workloads::encode_notice as workload_notice;

/// Unwraps a GPU operation that can only fail on operator error (bad
/// deployment, dead context): baselines fail fast with a message instead
/// of degrading (the BLESS driver's richer error handling lives in
/// `bless::runtime`).
pub fn must<T, E: std::fmt::Display>(r: Result<T, E>, what: &str) -> T {
    match r {
        Ok(v) => v,
        Err(e) => panic!("baseline driver invariant violated ({what}): {e}"),
    }
}

/// Unwraps a driver-state invariant (e.g. a completion implies an
/// in-flight request); a `None` here is a scheduling-logic bug.
pub fn must_some<T>(o: Option<T>, what: &str) -> T {
    match o {
        Some(v) => v,
        None => panic!("baseline driver invariant violated: {what}"),
    }
}

/// Tracks whole requests launched asynchronously (UNBOUND/GSLICE/MIG
/// style): each app has a FIFO of in-flight requests with remaining kernel
/// counts; kernels of one app complete in queue order.
#[derive(Debug, Default)]
pub struct InflightTracker {
    per_app: Vec<VecDeque<(usize, usize)>>,
}

impl InflightTracker {
    /// Creates a tracker for `apps` applications.
    pub fn new(apps: usize) -> Self {
        InflightTracker {
            per_app: vec![VecDeque::new(); apps],
        }
    }

    /// Records that request `req` of `app` was launched with `kernels`
    /// kernels.
    pub fn launched(&mut self, app: usize, req: usize, kernels: usize) {
        assert!(kernels > 0, "requests have at least one kernel");
        self.per_app[app].push_back((req, kernels));
    }

    /// Records one kernel completion of `app`; returns the request id if
    /// that request just finished.
    pub fn kernel_done(&mut self, app: usize) -> Option<usize> {
        let front = must_some(
            self.per_app[app].front_mut(),
            "completion without in-flight request",
        );
        front.1 -= 1;
        if front.1 == 0 {
            self.per_app[app].pop_front().map(|(req, _)| req)
        } else {
            None
        }
    }

    /// Number of in-flight requests for `app`.
    pub fn inflight(&self, app: usize) -> usize {
        self.per_app[app].len()
    }
}

/// A request waiting in a tenant's task queue.
#[derive(Clone, Copy, Debug)]
pub struct PendingReq {
    /// Request sequence number.
    pub req: usize,
    /// Arrival time.
    pub arrival: SimTime,
}

/// The request currently being served for one tenant (pointer-based
/// drivers: TEMPORAL, REEF+).
#[derive(Clone, Copy, Debug)]
pub struct ActiveReq {
    /// Request sequence number.
    pub req: usize,
    /// Arrival time.
    pub arrival: SimTime,
    /// Next kernel index to launch.
    pub next_kernel: usize,
}

/// One-request-at-a-time tenant state with task queues and a request log.
#[derive(Debug)]
pub struct TenantStates {
    /// Per-app request log.
    pub log: RequestLog,
    /// Currently served request per app.
    pub active: Vec<Option<ActiveReq>>,
    queues: Vec<VecDeque<PendingReq>>,
    kernel_totals: Vec<usize>,
}

impl TenantStates {
    /// Creates state for apps whose requests have the given kernel counts.
    pub fn new(kernel_totals: Vec<usize>) -> Self {
        let n = kernel_totals.len();
        TenantStates {
            log: RequestLog::new(n),
            active: vec![None; n],
            queues: vec![VecDeque::new(); n],
            kernel_totals,
        }
    }

    /// Number of applications.
    pub fn len(&self) -> usize {
        self.active.len()
    }

    /// True when no applications are registered (never for constructed
    /// states).
    pub fn is_empty(&self) -> bool {
        self.active.is_empty()
    }

    /// Total kernels per request of `app`.
    pub fn kernel_total(&self, app: usize) -> usize {
        self.kernel_totals[app]
    }

    /// Records an arrival; activates the request if the app was idle.
    pub fn on_arrival(&mut self, app: usize, req: usize, at: SimTime) {
        self.log.arrived(app, req, at);
        if self.active[app].is_none() {
            self.active[app] = Some(ActiveReq {
                req,
                arrival: at,
                next_kernel: 0,
            });
        } else {
            self.queues[app].push_back(PendingReq { req, arrival: at });
        }
    }

    /// Records a kernel completion for the active request; if it was the
    /// last kernel, completes the request (logging it, posting the
    /// closed-loop notice, and activating the next queued request).
    /// Returns `true` when a request completed.
    pub fn on_kernel_done(
        &mut self,
        gpu: &mut Gpu,
        app: usize,
        kernel: usize,
        at: SimTime,
    ) -> bool {
        let total = self.kernel_totals[app];
        let act = must_some(
            self.active[app].as_mut(),
            "completion without active request",
        );
        debug_assert_eq!(act.next_kernel, kernel, "kernels complete in order");
        act.next_kernel = kernel + 1;
        if act.next_kernel < total {
            return false;
        }
        let done = must_some(self.active[app].take(), "active request just observed");
        self.log.completed(app, done.req, at);
        gpu.post_notice(workload_notice(app, done.req));
        if let Some(next) = self.queues[app].pop_front() {
            self.active[app] = Some(ActiveReq {
                req: next.req,
                arrival: next.arrival,
                next_kernel: 0,
            });
        }
        true
    }

    /// Apps that currently have an unfinished active request.
    pub fn apps_with_work(&self) -> Vec<usize> {
        (0..self.active.len())
            .filter(|&a| self.active[a].is_some())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::{GpuSpec, HostCosts};

    #[test]
    fn tags_round_trip() {
        for (a, k) in [(0, 0), (7, 1_000_000), (255, 42)] {
            assert_eq!(untag(tag_of(a, k)), (a, k));
        }
    }

    #[test]
    fn inflight_tracker_fifo() {
        let mut t = InflightTracker::new(1);
        t.launched(0, 0, 2);
        t.launched(0, 1, 1);
        assert_eq!(t.inflight(0), 2);
        assert_eq!(t.kernel_done(0), None);
        assert_eq!(t.kernel_done(0), Some(0));
        assert_eq!(t.kernel_done(0), Some(1));
        assert_eq!(t.inflight(0), 0);
    }

    #[test]
    fn tenant_states_lifecycle() {
        let mut gpu = Gpu::new(GpuSpec::a100(), HostCosts::free());
        let mut st = TenantStates::new(vec![2]);
        st.on_arrival(0, 0, SimTime::ZERO);
        st.on_arrival(0, 1, SimTime::from_millis(1)); // queued
        assert!(st.active[0].is_some());
        assert!(!st.on_kernel_done(&mut gpu, 0, 0, SimTime::from_millis(2)));
        assert!(st.on_kernel_done(&mut gpu, 0, 1, SimTime::from_millis(3)));
        // The queued request became active.
        let act = st.active[0].unwrap();
        assert_eq!(act.req, 1);
        assert_eq!(act.next_kernel, 0);
        assert_eq!(st.log.completed_count(0), 1);
        // Notice was posted for the closed-loop controller.
        assert_eq!(gpu.drain_notices(), vec![workload_notice(0, 0)]);
        assert_eq!(st.apps_with_work(), vec![0]);
    }

    #[test]
    #[should_panic(expected = "at least one kernel")]
    fn zero_kernel_requests_rejected() {
        InflightTracker::new(1).launched(0, 0, 0);
    }
}
