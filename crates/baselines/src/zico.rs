//! ZICO: memory-coordinated unbounded sharing for concurrent DNN training.
//!
//! Zico (ATC '21) co-locates two training jobs on one GPU and *coordinates
//! their iterations* so that one job's memory-hungry forward pass overlaps
//! the other's memory-releasing backward pass (tick-tock). The
//! coordination bounds the combined memory footprint — but it serializes
//! progress at iteration granularity: a job may not start iteration `r`
//! until its partner has finished iteration `r − 1` (tick) or `r` (tock).
//! When one side runs ahead it *waits*, leaving the idle bubbles that the
//! paper's Fig. 18(b) shows BLESS removing (−8.5% iteration latency).
//!
//! Kernels themselves run unbounded (default contexts, hardware
//! scheduling), like UNBOUND.

use std::collections::VecDeque;

use gpu_sim::{CtxKind, Gpu, HostDriver, KernelDone, QueueId, RequestArrival};
use sim_core::SimDuration;

use crate::common::{must, tag_of, untag, workload_notice, InflightTracker};
use bless::DeployedApp;
use metrics::RequestLog;

/// Wake token for deferred gate evaluation (so all same-instant arrivals
/// are observed before deciding whether a partner is exhausted).
const GATE_WAKE: u64 = u64::MAX - 3;

/// The ZICO driver (two training tenants).
pub struct ZicoDriver {
    /// Deployment data per app.
    pub apps: Vec<DeployedApp>,
    /// Request log.
    pub log: RequestLog,
    /// Initial stagger of the tock tenant's first iteration (half an
    /// iteration by default, so forward and backward phases interleave).
    pub stagger: SimDuration,
    queues: Vec<QueueId>,
    inflight: InflightTracker,
    /// Iterations completed per app.
    rounds_done: Vec<usize>,
    /// Requests waiting for the tick-tock gate, per app.
    gated: Vec<VecDeque<usize>>,
    /// Requests launched so far, per app.
    launched: Vec<usize>,
    stagger_applied: bool,
    wake_pending: bool,
}

impl ZicoDriver {
    /// Creates a ZICO driver; `stagger` delays the second tenant's first
    /// iteration (tick-tock phase offset).
    pub fn new(apps: Vec<DeployedApp>, stagger: SimDuration) -> Self {
        let n = apps.len();
        assert!(n >= 1, "ZICO needs at least one tenant");
        ZicoDriver {
            log: RequestLog::new(n),
            inflight: InflightTracker::new(n),
            stagger,
            queues: Vec::new(),
            rounds_done: vec![0; n],
            gated: vec![VecDeque::new(); n],
            launched: vec![0; n],
            stagger_applied: false,
            wake_pending: false,
            apps,
        }
    }

    /// The tick-tock gate: app `i` may launch its `r`-th iteration once
    /// its partner finished iteration `r − 1` (tick side, app 0) or `r`
    /// shifted by the stagger (tock side). With a single tenant — or once
    /// the partner's iteration stream is exhausted (nothing gated, nothing
    /// in flight) — there is no gate: coordination must not strand the
    /// surviving job's remaining iterations.
    fn gate_open(&self, app: usize, r: usize) -> bool {
        if self.apps.len() < 2 {
            return true;
        }
        let partner = (app + 1) % self.apps.len();
        let partner_exhausted =
            self.gated[partner].is_empty() && self.inflight.inflight(partner) == 0;
        if partner_exhausted {
            return true;
        }
        if app == 0 {
            // Tick leads: iteration r needs the partner's r-1 finished.
            r == 0 || self.rounds_done[partner] >= r
        } else {
            // Tock trails by the stagger: iteration r needs tick's r done
            // or at least launched ahead.
            self.rounds_done[partner] >= r
        }
    }

    fn try_launch(&mut self, gpu: &mut Gpu, app: usize) {
        while let Some(&req) = self.gated[app].front() {
            let r = self.launched[app];
            debug_assert_eq!(req, r, "requests launch in order");
            if !self.gate_open(app, r) {
                break;
            }
            self.gated[app].pop_front();
            let extra = if app == 1 && !self.stagger_applied {
                self.stagger_applied = true;
                self.stagger
            } else {
                SimDuration::ZERO
            };
            let total = self.apps[app].profile.kernels.len();
            for i in 0..total {
                let k = self.apps[app].profile.kernels[i].clone();
                must(
                    gpu.launch_delayed(self.queues[app], k, tag_of(app, i), extra),
                    "launch",
                );
            }
            self.inflight.launched(app, req, total);
            self.launched[app] += 1;
        }
    }
}

impl HostDriver for ZicoDriver {
    fn on_start(&mut self, gpu: &mut Gpu) {
        for app in &self.apps {
            must(gpu.alloc_memory(app.profile.memory_mib), "deployment fits");
            let ctx = must(gpu.create_context(CtxKind::Default), "ctx");
            self.queues.push(must(gpu.create_queue(ctx), "queue"));
        }
    }

    fn on_request(&mut self, gpu: &mut Gpu, req: RequestArrival) {
        self.log.arrived(req.app, req.req, req.at);
        self.gated[req.app].push_back(req.req);
        // Defer gating so every same-instant arrival is seen first (else a
        // partner whose arrival is one event behind looks exhausted).
        if !self.wake_pending {
            self.wake_pending = true;
            gpu.wake_at(gpu.now(), GATE_WAKE);
        }
    }

    fn on_wake(&mut self, gpu: &mut Gpu, token: u64) {
        if token == GATE_WAKE {
            self.wake_pending = false;
            for app in 0..self.apps.len() {
                self.try_launch(gpu, app);
            }
        }
    }

    fn on_kernel_done(&mut self, gpu: &mut Gpu, done: KernelDone) {
        let (app, _kernel) = untag(done.tag);
        if let Some(req) = self.inflight.kernel_done(app) {
            self.log.completed(app, req, done.at);
            self.rounds_done[app] = req + 1;
            gpu.post_notice(workload_notice(app, req));
            // A finished iteration may open the partner's gate.
            for other in 0..self.apps.len() {
                self.try_launch(gpu, other);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dnn_models::{AppModel, ModelKind, Phase};
    use gpu_sim::{GpuSpec, HostCosts, RunOutcome, Simulation};
    use profiler::ProfiledApp;
    use sim_core::SimTime;

    fn deploy() -> DeployedApp {
        let profile = ProfiledApp::profile(
            &AppModel::build(ModelKind::Vgg11, Phase::Training),
            &GpuSpec::a100(),
        );
        DeployedApp::new(profile, 0.5, None)
    }

    #[test]
    fn tick_tock_alternates_iterations() {
        let apps = vec![deploy(), deploy()];
        let stagger = SimDuration::from_millis(5);
        let driver = ZicoDriver::new(apps, stagger);
        // Three iterations each, arriving up front (continuous training).
        let mut arrivals = Vec::new();
        for app in 0..2 {
            for req in 0..3 {
                arrivals.push(RequestArrival {
                    app,
                    req,
                    at: SimTime::ZERO,
                });
            }
        }
        let gpu = Gpu::new(GpuSpec::a100(), HostCosts::paper());
        let mut sim = Simulation::new(gpu, driver, arrivals);
        assert_eq!(sim.run(SimTime::from_secs(30)), RunOutcome::Completed);
        // All iterations completed, and the rounds stay coordinated: no
        // side ever runs more than one full round ahead of the other.
        for app in 0..2 {
            assert_eq!(sim.driver.log.completed_count(app), 3);
        }
        for r in 0..2 {
            let tick_next = sim.driver.log.records(0)[r + 1].completion.unwrap();
            let tock_r = sim.driver.log.records(1)[r].completion.unwrap();
            assert!(
                tock_r <= tick_next,
                "round {r}: tick ran ahead of the barrier"
            );
        }
    }

    #[test]
    fn coordination_leaves_bubbles() {
        // With coordination, a fast iteration waits for its partner:
        // the mean iteration latency exceeds plain unbounded sharing.
        let mk_arrivals = || {
            let mut v = Vec::new();
            for app in 0..2 {
                for req in 0..4 {
                    v.push(RequestArrival {
                        app,
                        req,
                        at: SimTime::ZERO,
                    });
                }
            }
            v
        };
        let zico = {
            let driver = ZicoDriver::new(vec![deploy(), deploy()], SimDuration::from_millis(5));
            let gpu = Gpu::new(GpuSpec::a100(), HostCosts::paper());
            let mut sim = Simulation::new(gpu, driver, mk_arrivals());
            assert_eq!(sim.run(SimTime::from_secs(60)), RunOutcome::Completed);
            sim.driver.log.mean_of_app_means().unwrap()
        };
        let unbound = {
            let driver =
                crate::StaticShareDriver::new(vec![deploy(), deploy()], crate::ShareMode::Unbound);
            let gpu = Gpu::new(GpuSpec::a100(), HostCosts::paper());
            let mut sim = Simulation::new(gpu, driver, mk_arrivals());
            assert_eq!(sim.run(SimTime::from_secs(60)), RunOutcome::Completed);
            sim.driver.log.mean_of_app_means().unwrap()
        };
        assert!(
            zico >= unbound,
            "coordination cannot be faster than unbounded here: {zico} vs {unbound}"
        );
    }
}
