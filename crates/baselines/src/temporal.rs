//! TEMPORAL: round-robin time-slice GPU sharing (cGPU-style).
//!
//! The GPU's time is divided into a fixed rotation of per-tenant windows,
//! each proportional to the tenant's quota. A request may only launch
//! kernels during its tenant's window: a request arriving outside it
//! waits — even if the GPU is idle — which is exactly the bubble pattern
//! of Fig. 1(a). Kernels are not preemptable, so windows overrun by up to
//! one kernel; both effects are why temporal sharing "cannot precisely
//! occupy provisioned quotas" (§1). While an application owns the GPU its
//! kernels rarely saturate all SMs, and nobody else may use the rest.

use gpu_sim::{CtxKind, Gpu, HostDriver, KernelDone, QueueId, RequestArrival};
use sim_core::SimDuration;

use crate::common::{must, must_some, tag_of, untag, TenantStates};
use bless::DeployedApp;
use profiler::PARTITIONS;

/// Wake token for deferred slice scheduling.
const SLICE_WAKE: u64 = u64::MAX - 1;

/// The TEMPORAL driver.
pub struct TemporalDriver {
    /// Deployment data per app.
    pub apps: Vec<DeployedApp>,
    /// Tenant request state + log.
    pub tenants: TenantStates,
    /// Base time-slice quantum (an app with quota `q` among `n` tenants
    /// receives a slice of `quantum · q · n`).
    pub quantum: SimDuration,
    /// Cost of switching the GPU between tenants' contexts at slice
    /// boundaries. Full GPU context switches (pipeline drain, state swap)
    /// are far heavier than the 50 µs MPS queue switch; ~1 ms is typical
    /// for temporal-sharing systems.
    pub switch_cost: SimDuration,
    /// The app that owned the previous slice (no switch cost when the
    /// same tenant keeps the GPU).
    last_owner: Option<usize>,
    queues: Vec<QueueId>,
    outstanding: usize,
    wake_pending: bool,
}

impl TemporalDriver {
    /// Creates a TEMPORAL driver with the default 2 ms base quantum.
    pub fn new(apps: Vec<DeployedApp>) -> Self {
        let totals = apps.iter().map(|a| a.profile.kernel_count()).collect();
        TemporalDriver {
            tenants: TenantStates::new(totals),
            quantum: SimDuration::from_millis(5),
            switch_cost: SimDuration::from_millis(1),
            last_owner: None,
            queues: Vec::new(),
            outstanding: 0,
            wake_pending: false,
            apps,
        }
    }

    /// Overrides the base quantum.
    pub fn with_quantum(mut self, quantum: SimDuration) -> Self {
        self.quantum = quantum;
        self
    }

    /// True while launched slice kernels are still outstanding.
    fn slice_active(&self) -> bool {
        self.outstanding > 0
    }

    fn request_slice(&mut self, gpu: &mut Gpu) {
        // A pending boundary wake or an in-flight slice absorbs this
        // request: the arrival will be served when its tenant's window
        // next comes around — time slicing is deliberately not
        // work conserving across windows (Fig. 1a).
        if self.wake_pending || self.slice_active() {
            return;
        }
        self.wake_pending = true;
        gpu.wake_at(gpu.now(), SLICE_WAKE);
    }

    /// Length of one tenant's window in the rotation.
    fn window_of(&self, app: usize) -> SimDuration {
        self.quantum
            .mul_f64(self.apps[app].quota * self.apps.len() as f64)
    }

    /// Total rotation cycle length.
    fn cycle(&self) -> SimDuration {
        (0..self.apps.len()).map(|a| self.window_of(a)).sum()
    }

    /// Which tenant owns the wall-clock instant `t`, and how much of its
    /// window remains.
    fn owner_at(&self, t: sim_core::SimTime) -> (usize, SimDuration) {
        let cycle_ns = self.cycle().as_nanos();
        let pos = SimDuration::from_nanos(t.as_nanos() % cycle_ns);
        let mut acc = SimDuration::ZERO;
        for app in 0..self.apps.len() {
            let w = self.window_of(app);
            if pos < acc + w {
                return (app, acc + w - pos);
            }
            acc += w;
        }
        unreachable!("position within cycle");
    }

    fn start_slice(&mut self, gpu: &mut Gpu) {
        debug_assert!(!self.slice_active());
        if self.tenants.apps_with_work().is_empty() {
            return; // Fully idle; the next arrival restarts the rotation.
        }
        let (owner, remaining) = self.owner_at(gpu.now());
        if self.tenants.active[owner].is_none() {
            // The window's owner is idle: the GPU stays idle (the Fig. 1a
            // bubble) until the next window boundary or a new arrival.
            gpu.wake_at(gpu.now() + remaining, SLICE_WAKE);
            self.wake_pending = true;
            return;
        }
        let app = owner;

        // Charge the GPU context switch when the device changes hands.
        if self.last_owner != Some(app) {
            gpu.charge_host(self.switch_cost);
        }
        self.last_owner = Some(app);

        // Launch kernels of the active request until the rest of the
        // window is covered (kernels are not preemptable, so the last one
        // may overrun).
        let budget = remaining;
        let total = self.tenants.kernel_total(app);
        let start_kernel =
            must_some(self.tenants.active[app], "scheduled tenant has work").next_kernel;
        let mut used = SimDuration::ZERO;
        let mut launched = 0usize;
        for k in start_kernel..total {
            let desc = self.apps[app].profile.kernels[k].clone();
            must(gpu.launch(self.queues[app], desc, tag_of(app, k)), "launch");
            used += self.apps[app].profile.kernel_duration(PARTITIONS - 1, k);
            launched += 1;
            if used >= budget {
                break;
            }
        }
        debug_assert!(launched > 0);
        self.outstanding = launched;
    }
}

impl HostDriver for TemporalDriver {
    fn on_start(&mut self, gpu: &mut Gpu) {
        for app in &self.apps {
            must(gpu.alloc_memory(app.profile.memory_mib), "deployment fits");
            let ctx = must(gpu.create_context(CtxKind::Default), "ctx");
            self.queues.push(must(gpu.create_queue(ctx), "queue"));
        }
    }

    fn on_request(&mut self, gpu: &mut Gpu, req: RequestArrival) {
        self.tenants.on_arrival(req.app, req.req, req.at);
        self.request_slice(gpu);
    }

    fn on_wake(&mut self, gpu: &mut Gpu, token: u64) {
        if token == SLICE_WAKE {
            self.wake_pending = false;
            if !self.slice_active() {
                self.start_slice(gpu);
            }
        }
    }

    fn on_kernel_done(&mut self, gpu: &mut Gpu, done: KernelDone) {
        let (app, kernel) = untag(done.tag);
        self.tenants.on_kernel_done(gpu, app, kernel, done.at);
        self.outstanding -= 1;
        if self.outstanding == 0 {
            self.request_slice(gpu);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dnn_models::{AppModel, ModelKind, Phase};
    use gpu_sim::{GpuSpec, HostCosts, RunOutcome, Simulation};
    use profiler::ProfiledApp;
    use sim_core::SimTime;

    fn deploy(kind: ModelKind, quota: f64) -> DeployedApp {
        let profile =
            ProfiledApp::profile(&AppModel::build(kind, Phase::Inference), &GpuSpec::a100());
        DeployedApp::new(profile, quota, None)
    }

    fn run_pair(quotas: (f64, f64)) -> TemporalDriver {
        let apps = vec![
            deploy(ModelKind::Vgg11, quotas.0),
            deploy(ModelKind::ResNet50, quotas.1),
        ];
        let driver = TemporalDriver::new(apps);
        let arrivals = vec![
            RequestArrival {
                app: 0,
                req: 0,
                at: SimTime::ZERO,
            },
            RequestArrival {
                app: 1,
                req: 0,
                at: SimTime::ZERO,
            },
        ];
        let gpu = Gpu::new(GpuSpec::a100(), HostCosts::paper());
        let mut sim = Simulation::new(gpu, driver, arrivals);
        assert_eq!(sim.run(SimTime::from_secs(10)), RunOutcome::Completed);
        sim.driver
    }

    #[test]
    fn both_requests_complete() {
        let d = run_pair((0.5, 0.5));
        assert_eq!(d.tenants.log.completed_count(0), 1);
        assert_eq!(d.tenants.log.completed_count(1), 1);
    }

    #[test]
    fn temporal_sharing_serializes_and_is_slow() {
        // With both requests overlapping, time slicing roughly serializes
        // them: the average latency must clearly exceed what concurrent
        // spatial sharing achieves (each app solo takes ~10.2/8.7 ms; the
        // interleaving pushes both toward the sum).
        let d = run_pair((0.5, 0.5));
        let mean = d.tenants.log.mean_of_app_means().unwrap();
        assert!(
            mean.as_millis_f64() > 12.0,
            "temporal sharing should be slow: {mean}"
        );
    }

    #[test]
    fn solo_app_still_waits_for_idle_windows() {
        // Time slicing is not work conserving: even with the other tenant
        // idle, a solo request only runs inside its own windows (the
        // Fig. 1a bubbles), so its latency exceeds the 8.7 ms solo run —
        // but it never waits more than the other tenant's window per
        // cycle.
        let apps = vec![
            deploy(ModelKind::ResNet50, 0.5),
            deploy(ModelKind::Vgg11, 0.5),
        ];
        let driver = TemporalDriver::new(apps);
        let arrivals = vec![RequestArrival {
            app: 0,
            req: 0,
            at: SimTime::ZERO,
        }];
        let gpu = Gpu::new(GpuSpec::a100(), HostCosts::paper());
        let mut sim = Simulation::new(gpu, driver, arrivals);
        assert_eq!(sim.run(SimTime::from_secs(5)), RunOutcome::Completed);
        let lat = sim
            .driver
            .tenants
            .log
            .stats(0)
            .mean
            .unwrap()
            .as_millis_f64();
        assert!(lat > 9.0, "idle windows must cost something: {lat}");
        assert!(lat < 20.0, "but bounded by the rotation: {lat}");
    }

    #[test]
    fn larger_quota_gets_longer_slices() {
        // Under contention the big-quota app should finish earlier
        // relative to its solo time than the small-quota app.
        let apps = vec![
            deploy(ModelKind::ResNet50, 0.8),
            deploy(ModelKind::ResNet50, 0.2),
        ];
        let driver = TemporalDriver::new(apps);
        let arrivals = vec![
            RequestArrival {
                app: 0,
                req: 0,
                at: SimTime::ZERO,
            },
            RequestArrival {
                app: 1,
                req: 0,
                at: SimTime::ZERO,
            },
        ];
        let gpu = Gpu::new(GpuSpec::a100(), HostCosts::paper());
        let mut sim = Simulation::new(gpu, driver, arrivals);
        assert_eq!(sim.run(SimTime::from_secs(10)), RunOutcome::Completed);
        let l0 = sim.driver.tenants.log.stats(0).mean.unwrap();
        let l1 = sim.driver.tenants.log.stats(1).mean.unwrap();
        assert!(l0 < l1, "quota 0.8 app should finish first: {l0} vs {l1}");
    }
}
