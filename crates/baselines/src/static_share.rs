//! Static-resource sharing baselines: UNBOUND, GSLICE, MIG (and the ISO
//! reference and ZICO, which reuse the same launch-on-arrival driver).
//!
//! These systems launch kernels at *request granularity*: when a request
//! arrives, all its kernels are enqueued asynchronously into the
//! application's device queue and the host loses control (§3.2). They
//! differ only in how the application's context restricts SMs:
//!
//! * **UNBOUND** — default contexts, no restriction; the hardware
//!   scheduler arbitrates (high utilization, interfered and unpredictable
//!   latency).
//! * **GSLICE** — MPS SM-affinity contexts sized to each tenant's quota;
//!   idle SMs of one tenant are *not* usable by others (bubbles).
//! * **MIG** — hard partitions at the A100's GPC granularity; quotas are
//!   rounded to the nearest feasible slice, so many quota configurations
//!   are not expressible (Fig. 14).
//! * **ZICO** (training) — unbounded sharing with tick-tock iteration
//!   staggering between the two training tenants.

use gpu_sim::{CtxKind, Gpu, HostDriver, KernelDone, QueueId, RequestArrival};
use sim_core::SimDuration;

use crate::common::{must, tag_of, untag, InflightTracker};
use bless::DeployedApp;
use metrics::RequestLog;

/// How a static-share tenant's context is configured.
#[derive(Clone, Debug, PartialEq)]
pub enum ShareMode {
    /// Full-GPU default context (UNBOUND, ZICO).
    Unbound,
    /// MPS SM-affinity cap at the tenant's quota (GSLICE, ISO).
    QuotaMps,
    /// Hard MIG partition at the nearest feasible slice.
    Mig,
}

/// The A100 exposes MIG slices at GPC granularity: 1/7 … 7/7 of the GPU.
/// Returns the SM count of the largest slice not exceeding `quota` (but at
/// least one GPC), given the GPU's SM count. Flooring is what makes
/// co-resident MIG instances feasible — and what loses capacity for
/// quotas that are not multiples of 1/7 (Fig. 14's inflexibility).
pub fn mig_slice_sms(quota: f64, num_sms: u32) -> u32 {
    let gpc = num_sms / 7;
    let slices = ((quota * 7.0).floor()).clamp(1.0, 7.0) as u32;
    (slices * gpc).min(num_sms)
}

/// A launch-on-arrival driver with per-tenant static contexts.
pub struct StaticShareDriver {
    /// Deployment data per app.
    pub apps: Vec<DeployedApp>,
    /// Request log.
    pub log: RequestLog,
    mode: ShareMode,
    queues: Vec<QueueId>,
    inflight: InflightTracker,
    /// Extra delay before the first launched request per app (ZICO's
    /// tick-tock staggering).
    stagger: Vec<SimDuration>,
    first_launch_done: Vec<bool>,
}

impl StaticShareDriver {
    /// Creates a driver with the given share mode.
    pub fn new(apps: Vec<DeployedApp>, mode: ShareMode) -> Self {
        let n = apps.len();
        StaticShareDriver {
            log: RequestLog::new(n),
            inflight: InflightTracker::new(n),
            mode,
            queues: Vec::new(),
            stagger: vec![SimDuration::ZERO; n],
            first_launch_done: vec![false; n],
            apps,
        }
    }

    /// Staggers app `app`'s first request by `by` (ZICO tick-tock).
    pub fn with_stagger(mut self, app: usize, by: SimDuration) -> Self {
        self.stagger[app] = by;
        self
    }
}

impl HostDriver for StaticShareDriver {
    fn on_start(&mut self, gpu: &mut Gpu) {
        let num_sms = gpu.spec().num_sms;
        for app in &self.apps {
            let kind = match self.mode {
                ShareMode::Unbound => CtxKind::Default,
                ShareMode::QuotaMps => CtxKind::MpsAffinity {
                    sm_cap: ((app.quota * num_sms as f64).round() as u32).clamp(1, num_sms),
                },
                ShareMode::Mig => CtxKind::MigPartition {
                    sm_count: mig_slice_sms(app.quota, num_sms),
                },
            };
            if let CtxKind::MigPartition { sm_count } = kind {
                // The MIG slice carves its own memory; the tenant must fit
                // inside it (real MIG OOMs otherwise).
                let slice_mib = gpu.spec().memory_mib * sm_count as u64 / num_sms as u64;
                assert!(
                    app.profile.memory_mib <= slice_mib,
                    "tenant needs {} MiB but its MIG slice holds {} MiB",
                    app.profile.memory_mib,
                    slice_mib
                );
            } else {
                must(gpu.alloc_memory(app.profile.memory_mib), "deployment fits");
            }
            let ctx = must(gpu.create_context(kind), "context");
            self.queues.push(must(gpu.create_queue(ctx), "queue"));
        }
    }

    fn on_request(&mut self, gpu: &mut Gpu, req: RequestArrival) {
        self.log.arrived(req.app, req.req, req.at);
        let kernels = &self.apps[req.app].profile.kernels;
        let extra = if self.first_launch_done[req.app] {
            SimDuration::ZERO
        } else {
            self.first_launch_done[req.app] = true;
            self.stagger[req.app]
        };
        for (i, k) in kernels.iter().enumerate() {
            must(
                gpu.launch_delayed(self.queues[req.app], k.clone(), tag_of(req.app, i), extra),
                "launch",
            );
        }
        self.inflight.launched(req.app, req.req, kernels.len());
    }

    fn on_kernel_done(&mut self, gpu: &mut Gpu, done: KernelDone) {
        let (app, _kernel) = untag(done.tag);
        if let Some(req) = self.inflight.kernel_done(app) {
            self.log.completed(app, req, done.at);
            gpu.post_notice(crate::common::workload_notice(app, req));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dnn_models::{AppModel, ModelKind, Phase};
    use gpu_sim::{GpuSpec, HostCosts, RunOutcome, Simulation};
    use profiler::ProfiledApp;
    use sim_core::SimTime;

    fn deploy(kind: ModelKind, quota: f64) -> DeployedApp {
        let profile =
            ProfiledApp::profile(&AppModel::build(kind, Phase::Inference), &GpuSpec::a100());
        DeployedApp::new(profile, quota, None)
    }

    fn run(mode: ShareMode, quotas: (f64, f64)) -> StaticShareDriver {
        let apps = vec![
            deploy(ModelKind::Vgg11, quotas.0),
            deploy(ModelKind::ResNet50, quotas.1),
        ];
        let driver = StaticShareDriver::new(apps, mode);
        let arrivals = vec![
            RequestArrival {
                app: 0,
                req: 0,
                at: SimTime::ZERO,
            },
            RequestArrival {
                app: 1,
                req: 0,
                at: SimTime::ZERO,
            },
        ];
        let gpu = Gpu::new(GpuSpec::a100(), HostCosts::paper());
        let mut sim = Simulation::new(gpu, driver, arrivals);
        assert_eq!(sim.run(SimTime::from_secs(10)), RunOutcome::Completed);
        sim.driver
    }

    #[test]
    fn mig_slices_snap_to_gpc_granularity() {
        assert_eq!(mig_slice_sms(0.5, 108), 45); // floor(0.5*7)=3 GPCs x 15 SMs
        assert_eq!(mig_slice_sms(1.0 / 3.0, 108), 30);
        assert_eq!(mig_slice_sms(2.0 / 3.0, 108), 60);
        assert_eq!(mig_slice_sms(0.05, 108), 15); // at least one GPC
        assert_eq!(mig_slice_sms(1.0, 108), 105);
        // Two half-GPU tenants fit side by side (3 GPCs each).
        assert!(2 * mig_slice_sms(0.5, 108) <= 108);
    }

    #[test]
    fn gslice_respects_quota_caps() {
        let d = run(ShareMode::QuotaMps, (1.0 / 3.0, 2.0 / 3.0));
        // Each app's latency should be near its ISO latency: GSLICE gives
        // exactly the quota partition, plus interference.
        for app in 0..2 {
            let lat = d.log.stats(app).mean.unwrap().as_nanos() as f64;
            let iso = d.apps[app].iso_latency().as_nanos() as f64;
            assert!(lat >= iso * 0.98, "app {app} cannot beat its partition");
            assert!(lat <= iso * 1.30, "app {app} too slow: {lat} vs {iso}");
        }
    }

    #[test]
    fn unbound_is_faster_on_average_but_unpredictable() {
        let g = run(ShareMode::QuotaMps, (0.5, 0.5));
        let u = run(ShareMode::Unbound, (0.5, 0.5));
        let mean = |d: &StaticShareDriver| d.log.mean_of_app_means().unwrap();
        // With both requests overlapping, UNBOUND's work-conserving
        // hardware arbitration beats the static split on average.
        assert!(mean(&u) < mean(&g), "{} vs {}", mean(&u), mean(&g));
    }

    #[test]
    fn mig_rounds_quotas_and_isolates() {
        let d = run(ShareMode::Mig, (1.0 / 3.0, 2.0 / 3.0));
        for app in 0..2 {
            assert_eq!(d.log.completed_count(app), 1);
        }
        // 1/3 quota -> 2 GPCs = 30 SMs, slower than the 36-SM ISO.
        let lat0 = d.log.stats(0).mean.unwrap();
        let iso0 = d.apps[0].iso_latency();
        assert!(
            lat0 > iso0,
            "MIG rounds 1/3 down to 30 SMs: {lat0} vs {iso0}"
        );
    }

    #[test]
    fn zico_stagger_delays_first_request_only() {
        let apps = vec![
            deploy(ModelKind::ResNet50, 0.5),
            deploy(ModelKind::ResNet50, 0.5),
        ];
        let driver = StaticShareDriver::new(apps, ShareMode::Unbound)
            .with_stagger(1, SimDuration::from_millis(4));
        let arrivals = vec![
            RequestArrival {
                app: 0,
                req: 0,
                at: SimTime::ZERO,
            },
            RequestArrival {
                app: 1,
                req: 0,
                at: SimTime::ZERO,
            },
        ];
        let gpu = Gpu::new(GpuSpec::a100(), HostCosts::paper());
        let mut sim = Simulation::new(gpu, driver, arrivals);
        assert_eq!(sim.run(SimTime::from_secs(10)), RunOutcome::Completed);
        let l0 = sim.driver.log.stats(0).mean.unwrap();
        let l1 = sim.driver.log.stats(1).mean.unwrap();
        assert!(l1 > l0, "staggered app starts later: {l1} vs {l0}");
    }
}
