#![warn(missing_docs)]

//! Request arrival traces and the paper's workload definitions.
//!
//! This crate is the *client side* of the reproduction: it decides when
//! each tenant's requests arrive at the host scheduler. It provides:
//!
//! * [`ArrivalPattern`] — closed-loop clients (workloads A/B/C), Poisson,
//!   Twitter-like and Azure-serverless-like synthetic traces (workload D),
//!   and special shapes for the microbenchmarks;
//! * [`TenantSpec`] / [`WorkloadSet`] — applications with quotas and load
//!   patterns, plus the closed-loop controller that injects follow-up
//!   requests through the simulation's notice mechanism;
//! * [`table2`] — the paper's Table 2 constants (quota assignments,
//!   workload definitions A–E).
//!
//! ## Trace substitution
//!
//! The paper replays a Twitter request trace \[5\] and the Azure
//! serverless function trace \[74\]. Neither ships with this repository,
//! so we generate synthetic equivalents with the properties the paper's
//! evaluation exploits: the Twitter-like trace is dense with diurnal
//! modulation (few idle bubbles → modest gains), and the Azure-like trace
//! is sparse and bursty (abundant bubbles → large gains). See DESIGN.md.

pub mod arrivals;
pub mod table2;
pub mod tenancy;

pub use arrivals::{decode_notice, encode_notice, ArrivalPattern};
pub use table2::{
    multi_workload, pair_workload, PaperWorkload, EIGHT_MODEL_QUOTAS, FOUR_MODEL_QUOTAS,
    TWO_MODEL_QUOTAS,
};
pub use tenancy::{TenantSpec, WorkloadSet};
