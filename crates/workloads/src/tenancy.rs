//! Tenants (application + quota + load) and the workload controller.

use dnn_models::AppModel;
use gpu_sim::{NoticeHandler, RequestArrival};
use sim_core::{SimDuration, SimRng, SimTime};

use crate::arrivals::{decode_notice, ArrivalPattern};

/// One tenant: an application deployed with a GPU quota and a load pattern.
#[derive(Clone, Debug)]
pub struct TenantSpec {
    /// The application (model + phase + kernel trace).
    pub model: AppModel,
    /// Provisioned GPU quota as a fraction in `(0, 1]`.
    pub quota: f64,
    /// How this tenant's requests arrive.
    pub pattern: ArrivalPattern,
}

impl TenantSpec {
    /// Creates a tenant spec.
    ///
    /// # Panics
    ///
    /// Panics if `quota` is outside `(0, 1]`.
    pub fn new(model: AppModel, quota: f64, pattern: ArrivalPattern) -> Self {
        assert!(
            quota > 0.0 && quota <= 1.0,
            "quota must be in (0, 1], got {quota}"
        );
        TenantSpec {
            model,
            quota,
            pattern,
        }
    }
}

/// A complete multi-tenant workload: one [`TenantSpec`] per application.
#[derive(Clone, Debug)]
pub struct WorkloadSet {
    /// The tenants, indexed by application id.
    pub tenants: Vec<TenantSpec>,
    /// Seed for arrival generation.
    pub seed: u64,
}

impl WorkloadSet {
    /// Creates a workload set.
    ///
    /// # Panics
    ///
    /// Panics if empty or if the quotas sum to more than 1 (+ε).
    pub fn new(tenants: Vec<TenantSpec>, seed: u64) -> Self {
        assert!(!tenants.is_empty(), "a workload needs at least one tenant");
        let total: f64 = tenants.iter().map(|t| t.quota).sum();
        assert!(
            total <= 1.0 + 1e-9,
            "quotas must not oversubscribe the GPU (sum = {total})"
        );
        WorkloadSet { tenants, seed }
    }

    /// Number of tenants.
    pub fn len(&self) -> usize {
        self.tenants.len()
    }

    /// True if there are no tenants (never true for constructed sets).
    pub fn is_empty(&self) -> bool {
        self.tenants.is_empty()
    }

    /// The pre-generated (open-loop) arrivals of all tenants, merged.
    pub fn initial_arrivals(&self) -> Vec<RequestArrival> {
        let mut rng = SimRng::new(self.seed);
        let mut out = Vec::new();
        for (app, t) in self.tenants.iter().enumerate() {
            let mut app_rng = rng.fork(app as u64);
            out.extend(t.pattern.initial_arrivals(app, &mut app_rng));
        }
        out
    }

    /// Builds the closed-loop controller: a notice handler that injects
    /// each closed-loop tenant's next request (after its think time) when
    /// the scheduler posts the completion notice.
    ///
    /// Think times are jittered by ±25% (deterministically, from the
    /// workload seed): real clients do not fire on a metronome, and the
    /// jitter keeps co-located tenants from phase-locking into permanent
    /// full overlap.
    pub fn notice_handler(&self) -> NoticeHandler {
        struct AppState {
            think: SimDuration,
            budget: usize,
            issued: usize,
        }
        let mut state: Vec<Option<AppState>> = self
            .tenants
            .iter()
            .map(|t| {
                t.pattern
                    .closed_loop_params()
                    .map(|(think, count)| AppState {
                        think,
                        budget: count,
                        // `initial_arrivals` issued request 0 already.
                        issued: 1.min(count),
                    })
            })
            .collect();
        let mut rng = SimRng::new(self.seed ^ 0x7114_E411);
        Box::new(move |notice, now: SimTime| {
            let (app, _req) = decode_notice(notice);
            let s = state.get_mut(app)?.as_mut()?;
            if s.issued >= s.budget {
                return None;
            }
            let req = s.issued;
            s.issued += 1;
            let think = s.think.mul_f64(rng.uniform(0.75, 1.25));
            Some(RequestArrival {
                app,
                req,
                at: now + think,
            })
        })
    }

    /// The per-tenant quotas.
    pub fn quotas(&self) -> Vec<f64> {
        self.tenants.iter().map(|t| t.quota).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arrivals::encode_notice;
    use dnn_models::{ModelKind, Phase};

    fn model() -> AppModel {
        AppModel::build(ModelKind::Vgg11, Phase::Inference)
    }

    #[test]
    fn closed_loop_controller_issues_next_request() {
        let ws = WorkloadSet::new(
            vec![TenantSpec::new(
                model(),
                0.5,
                ArrivalPattern::ClosedLoop {
                    think: SimDuration::from_millis(5),
                    count: 3,
                },
            )],
            1,
        );
        let initial = ws.initial_arrivals();
        assert_eq!(initial.len(), 1);

        let mut handler = ws.notice_handler();
        // Completion of request 0 at t=10ms -> request 1 lands one
        // (jittered +/-25%) think time later.
        let next = handler(encode_notice(0, 0), SimTime::from_millis(10)).unwrap();
        assert_eq!(next.req, 1);
        let gap = next.at.duration_since(SimTime::from_millis(10));
        let lo = SimDuration::from_micros(3_750);
        let hi = SimDuration::from_micros(6_250);
        assert!(gap >= lo && gap <= hi, "jittered think {gap}");
        // Request 2 is the last of the budget of 3.
        let next = handler(encode_notice(0, 1), SimTime::from_millis(30)).unwrap();
        assert_eq!(next.req, 2);
        assert!(handler(encode_notice(0, 2), SimTime::from_millis(50)).is_none());
    }

    #[test]
    fn open_loop_tenants_ignore_notices() {
        let ws = WorkloadSet::new(
            vec![TenantSpec::new(
                model(),
                1.0,
                ArrivalPattern::Periodic {
                    period: SimDuration::from_millis(10),
                    count: 4,
                    offset: SimDuration::ZERO,
                },
            )],
            1,
        );
        assert_eq!(ws.initial_arrivals().len(), 4);
        let mut handler = ws.notice_handler();
        assert!(handler(encode_notice(0, 0), SimTime::from_millis(10)).is_none());
    }

    #[test]
    #[should_panic(expected = "oversubscribe")]
    fn oversubscribed_quotas_panic() {
        let t = |q| {
            TenantSpec::new(
                model(),
                q,
                ArrivalPattern::Simultaneous {
                    count: 1,
                    at: SimTime::ZERO,
                },
            )
        };
        WorkloadSet::new(vec![t(0.7), t(0.7)], 1);
    }

    #[test]
    #[should_panic(expected = "quota must be")]
    fn zero_quota_panics() {
        TenantSpec::new(
            model(),
            0.0,
            ArrivalPattern::Simultaneous {
                count: 1,
                at: SimTime::ZERO,
            },
        );
    }

    #[test]
    fn arrivals_are_deterministic() {
        let mk = || {
            WorkloadSet::new(
                vec![TenantSpec::new(
                    model(),
                    1.0,
                    ArrivalPattern::Poisson {
                        mean_interval: SimDuration::from_millis(20),
                        horizon: SimTime::from_millis(2000),
                    },
                )],
                42,
            )
        };
        let a = mk().initial_arrivals();
        let b = mk().initial_arrivals();
        assert_eq!(a.len(), b.len());
        assert!(a
            .iter()
            .zip(&b)
            .all(|(x, y)| x.at == y.at && x.req == y.req));
    }
}
