//! The paper's Table 2: workloads A–E and the quota configurations.

use dnn_models::gen::CALIBRATION_PCIE;
use dnn_models::AppModel;
use sim_core::{SimDuration, SimTime};

use crate::arrivals::ArrivalPattern;
use crate::tenancy::{TenantSpec, WorkloadSet};

/// The paper's five workloads (Table 2).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PaperWorkload {
    /// (A) closed loop, think = 1/3 × solo latency.
    HighLoad,
    /// (B) closed loop, think = 2/3 × solo latency.
    MediumLoad,
    /// (C) closed loop, think = 1 × solo latency (QPS matches REEF's low
    /// load).
    LowLoad,
    /// (D) Twitter-like real-world trace: dense, diurnally modulated.
    TraceTwitter,
    /// (D) Azure-serverless-like real-world trace: sparse and bursty.
    TraceAzure,
    /// (E) extremely biased: one app with a huge quota but low load
    /// co-located with a dense low-quota app (built explicitly by the
    /// harness; this variant covers the dense client).
    BiasedDense,
}

impl PaperWorkload {
    /// The closed-loop think-time factor for workloads A/B/C.
    pub fn closed_loop_factor(self) -> Option<f64> {
        match self {
            PaperWorkload::HighLoad => Some(1.0 / 3.0),
            PaperWorkload::MediumLoad => Some(2.0 / 3.0),
            PaperWorkload::LowLoad => Some(1.0),
            _ => None,
        }
    }

    /// Builds the arrival pattern for one tenant with the given solo-run
    /// latency, request budget, and horizon (horizon only matters for the
    /// trace workloads).
    pub fn pattern(
        self,
        solo_latency: SimDuration,
        requests: usize,
        horizon: SimTime,
    ) -> ArrivalPattern {
        match self {
            PaperWorkload::HighLoad | PaperWorkload::MediumLoad | PaperWorkload::LowLoad => {
                // The three closed-loop variants always carry a factor.
                let factor = self.closed_loop_factor().unwrap_or(1.0);
                let think = solo_latency.mul_f64(factor);
                ArrivalPattern::ClosedLoop {
                    think,
                    count: requests,
                }
            }
            PaperWorkload::TraceTwitter => ArrivalPattern::TwitterLike {
                // Dense tenancy: mean inter-arrival ≈ 2.6 × solo latency,
                // so a mutual pair keeps the GPU busy (~80% aggregate
                // demand) without oversaturating it.
                mean_interval: solo_latency.mul_f64(2.6),
                cycle: SimDuration::from_secs(2),
                horizon,
            },
            PaperWorkload::TraceAzure => ArrivalPattern::AzureLike {
                // Sparse: long idle gaps of ~8 × solo latency between
                // bursts of up to 3 invocations.
                mean_gap: solo_latency.mul_f64(8.0),
                max_burst: 3,
                intra_burst: solo_latency.mul_f64(0.25),
                horizon,
            },
            PaperWorkload::BiasedDense => ArrivalPattern::ClosedLoop {
                // "Consistently submits requests with extremely dense
                // workloads": zero think time.
                think: SimDuration::ZERO,
                count: requests,
            },
        }
    }
}

/// Table 2's seven 2-model quota assignments.
pub const TWO_MODEL_QUOTAS: [(f64, f64); 7] = [
    (1.0 / 3.0, 2.0 / 3.0),
    (7.0 / 18.0, 11.0 / 18.0),
    (4.0 / 9.0, 5.0 / 9.0),
    (0.5, 0.5),
    (5.0 / 9.0, 4.0 / 9.0),
    (11.0 / 18.0, 7.0 / 18.0),
    (2.0 / 3.0, 1.0 / 3.0),
];

/// Table 2's 4-model quota assignment.
pub const FOUR_MODEL_QUOTAS: [f64; 4] = [0.10, 0.20, 0.30, 0.40];

/// Table 2's 8-model quota assignment.
pub const EIGHT_MODEL_QUOTAS: [f64; 8] = [0.05, 0.05, 0.10, 0.10, 0.15, 0.15, 0.20, 0.20];

/// Builds a pair-wise workload: two models with the given quotas and the
/// same paper workload, `requests` requests each.
pub fn pair_workload(
    a: AppModel,
    b: AppModel,
    quotas: (f64, f64),
    workload: PaperWorkload,
    requests: usize,
    horizon: SimTime,
    seed: u64,
) -> WorkloadSet {
    let pa = workload.pattern(a.solo_duration(CALIBRATION_PCIE), requests, horizon);
    let pb = workload.pattern(b.solo_duration(CALIBRATION_PCIE), requests, horizon);
    WorkloadSet::new(
        vec![
            TenantSpec::new(a, quotas.0, pa),
            TenantSpec::new(b, quotas.1, pb),
        ],
        seed,
    )
}

/// Builds an n-tenant workload with per-tenant quotas and one shared paper
/// workload.
pub fn multi_workload(
    models: Vec<AppModel>,
    quotas: &[f64],
    workload: PaperWorkload,
    requests: usize,
    horizon: SimTime,
    seed: u64,
) -> WorkloadSet {
    assert_eq!(models.len(), quotas.len(), "one quota per model");
    let tenants = models
        .into_iter()
        .zip(quotas)
        .map(|(m, &q)| {
            let p = workload.pattern(m.solo_duration(CALIBRATION_PCIE), requests, horizon);
            TenantSpec::new(m, q, p)
        })
        .collect();
    WorkloadSet::new(tenants, seed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dnn_models::{ModelKind, Phase};

    #[test]
    fn quota_tables_sum_to_one() {
        for (a, b) in TWO_MODEL_QUOTAS {
            assert!((a + b - 1.0).abs() < 1e-9);
        }
        assert!((FOUR_MODEL_QUOTAS.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        assert!((EIGHT_MODEL_QUOTAS.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn closed_loop_factors_match_table2() {
        assert_eq!(
            PaperWorkload::HighLoad.closed_loop_factor(),
            Some(1.0 / 3.0)
        );
        assert_eq!(
            PaperWorkload::MediumLoad.closed_loop_factor(),
            Some(2.0 / 3.0)
        );
        assert_eq!(PaperWorkload::LowLoad.closed_loop_factor(), Some(1.0));
        assert_eq!(PaperWorkload::TraceTwitter.closed_loop_factor(), None);
    }

    #[test]
    fn pair_workload_builds_two_tenants() {
        let a = AppModel::build(ModelKind::Vgg11, Phase::Inference);
        let b = AppModel::build(ModelKind::ResNet50, Phase::Inference);
        let ws = pair_workload(
            a,
            b,
            (1.0 / 3.0, 2.0 / 3.0),
            PaperWorkload::LowLoad,
            10,
            SimTime::from_millis(1000),
            7,
        );
        assert_eq!(ws.len(), 2);
        assert_eq!(ws.quotas(), vec![1.0 / 3.0, 2.0 / 3.0]);
        // Low load: think time equals the model's solo latency.
        match ws.tenants[0].pattern {
            ArrivalPattern::ClosedLoop { think, count } => {
                assert_eq!(count, 10);
                let solo = ws.tenants[0].model.solo_duration(CALIBRATION_PCIE);
                assert_eq!(think, solo);
            }
            _ => panic!("expected closed loop"),
        }
    }

    #[test]
    fn biased_dense_has_zero_think() {
        let m = AppModel::build(ModelKind::Bert, Phase::Inference);
        let p = PaperWorkload::BiasedDense.pattern(
            m.solo_duration(CALIBRATION_PCIE),
            50,
            SimTime::from_millis(1000),
        );
        match p {
            ArrivalPattern::ClosedLoop { think, count } => {
                assert!(think.is_zero());
                assert_eq!(count, 50);
            }
            _ => panic!("expected closed loop"),
        }
    }

    #[test]
    #[should_panic(expected = "one quota per model")]
    fn multi_workload_validates_lengths() {
        let models = vec![AppModel::build(ModelKind::Vgg11, Phase::Inference)];
        multi_workload(
            models,
            &[0.5, 0.5],
            PaperWorkload::LowLoad,
            1,
            SimTime::from_millis(100),
            1,
        );
    }
}
