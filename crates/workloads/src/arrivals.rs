//! Request arrival patterns.
//!
//! The paper's workloads (Table 2) mix closed-loop clients (workloads A–C,
//! with think times of 1/3, 2/3, and 1× the model's solo latency), two
//! real-world traces (a Twitter request trace and the Azure serverless
//! function trace), and special shapes (simultaneous bursts for Fig. 15,
//! an extremely dense client for workload E).
//!
//! Open-loop patterns are pre-generated as timestamp lists; closed-loop
//! clients are realized through the simulation's notice mechanism: the
//! scheduler posts a notice when a request completes and the workload
//! controller injects the next arrival after the think time.

use gpu_sim::RequestArrival;
use sim_core::{SimDuration, SimRng, SimTime};

/// How one application's requests arrive.
#[derive(Clone, Debug)]
pub enum ArrivalPattern {
    /// Closed loop: the next request arrives `think` after the previous
    /// one completes. The paper's workloads A/B/C use
    /// `think = {1/3, 2/3, 1} × solo latency`.
    ClosedLoop {
        /// Think time between a completion and the next arrival.
        think: SimDuration,
        /// Total number of requests to issue.
        count: usize,
    },
    /// Open loop with deterministic period.
    Periodic {
        /// Inter-arrival period.
        period: SimDuration,
        /// Number of requests.
        count: usize,
        /// Offset of the first request.
        offset: SimDuration,
    },
    /// Open-loop Poisson process.
    Poisson {
        /// Mean inter-arrival time.
        mean_interval: SimDuration,
        /// Generate arrivals in `[0, horizon)`.
        horizon: SimTime,
    },
    /// Twitter-like trace: a diurnally modulated Poisson process. The real
    /// trace's 24 h cycle is compressed to `cycle` of simulated time; the
    /// rate swings ±60% around the mean, producing the dense-but-variable
    /// tenancy the paper describes for this trace.
    TwitterLike {
        /// Mean inter-arrival time.
        mean_interval: SimDuration,
        /// Length of one compressed diurnal cycle.
        cycle: SimDuration,
        /// Generate arrivals in `[0, horizon)`.
        horizon: SimTime,
    },
    /// Azure-serverless-like trace: sparse ON/OFF bursts. Long idle gaps
    /// (the "abundant bubbles" of §6.3) separated by short bursts of a few
    /// invocations.
    AzureLike {
        /// Mean idle gap between bursts.
        mean_gap: SimDuration,
        /// Maximum burst size (uniform in `1..=max`).
        max_burst: u32,
        /// Spacing of requests inside a burst.
        intra_burst: SimDuration,
        /// Generate arrivals in `[0, horizon)`.
        horizon: SimTime,
    },
    /// All requests arrive at the same instant (Fig. 15's simultaneous
    /// multi-tenant burst, Fig. 18's overlapped pair).
    Simultaneous {
        /// Number of requests, all at `at`.
        count: usize,
        /// The shared arrival instant.
        at: SimTime,
    },
    /// Explicit timestamps (replaying a recorded trace).
    AtTimes(Vec<SimTime>),
}

impl ArrivalPattern {
    /// Generates this pattern's *open-loop* arrivals for application
    /// `app`. Closed-loop patterns contribute only their first arrival
    /// here; the rest are injected at runtime by the workload controller.
    pub fn initial_arrivals(&self, app: usize, rng: &mut SimRng) -> Vec<RequestArrival> {
        let mk = |req: usize, at: SimTime| RequestArrival { app, req, at };
        match self {
            ArrivalPattern::ClosedLoop { think, count } => {
                if *count == 0 {
                    Vec::new()
                } else {
                    // Desynchronize tenants: real client streams do not
                    // start in lockstep, and perfectly phase-locked
                    // closed loops would leave no partial overlaps (and
                    // no bubbles) at all. The first request lands at a
                    // deterministic, per-tenant random offset in
                    // [0, think).
                    let offset = SimDuration::from_secs_f64(rng.next_f64() * think.as_secs_f64());
                    vec![mk(0, SimTime::ZERO + offset)]
                }
            }
            ArrivalPattern::Periodic {
                period,
                count,
                offset,
            } => (0..*count)
                .map(|i| mk(i, SimTime::ZERO + *offset + *period * i as u64))
                .collect(),
            ArrivalPattern::Poisson {
                mean_interval,
                horizon,
            } => {
                let mut out = Vec::new();
                let mut t = SimTime::ZERO;
                loop {
                    let gap =
                        SimDuration::from_secs_f64(rng.exponential(mean_interval.as_secs_f64()));
                    t += gap;
                    if t >= *horizon {
                        break;
                    }
                    out.push(mk(out.len(), t));
                }
                out
            }
            ArrivalPattern::TwitterLike {
                mean_interval,
                cycle,
                horizon,
            } => {
                // Thinning: simulate a Poisson process at the peak rate and
                // keep each point with probability rate(t)/peak.
                let mean = mean_interval.as_secs_f64();
                let peak_rate = 1.6 / mean;
                let cycle_s = cycle.as_secs_f64();
                let mut out = Vec::new();
                let mut t_s = 0.0f64;
                let horizon_s = horizon.as_secs_f64();
                loop {
                    t_s += rng.exponential(1.0 / peak_rate);
                    if t_s >= horizon_s {
                        break;
                    }
                    let phase = (t_s / cycle_s) * std::f64::consts::TAU;
                    let rate = (1.0 + 0.6 * phase.sin()) / mean;
                    if rng.chance(rate / peak_rate) {
                        out.push(mk(
                            out.len(),
                            SimTime::ZERO + SimDuration::from_secs_f64(t_s),
                        ));
                    }
                }
                out
            }
            ArrivalPattern::AzureLike {
                mean_gap,
                max_burst,
                intra_burst,
                horizon,
            } => {
                let mut out = Vec::new();
                let mut t = SimTime::ZERO;
                loop {
                    let gap = SimDuration::from_secs_f64(rng.exponential(mean_gap.as_secs_f64()));
                    t += gap;
                    if t >= *horizon {
                        break;
                    }
                    let burst = rng.range_inclusive(1, (*max_burst).max(1) as u64) as usize;
                    for b in 0..burst {
                        let at = t + *intra_burst * b as u64;
                        if at >= *horizon {
                            break;
                        }
                        out.push(mk(out.len(), at));
                    }
                    t += *intra_burst * burst as u64;
                }
                out
            }
            ArrivalPattern::Simultaneous { count, at } => (0..*count).map(|i| mk(i, *at)).collect(),
            ArrivalPattern::AtTimes(times) => {
                // Requests are numbered in arrival order regardless of the
                // input ordering (request logs require in-order sequence
                // numbers per app).
                let mut sorted = times.clone();
                sorted.sort_unstable();
                sorted
                    .into_iter()
                    .enumerate()
                    .map(|(i, t)| mk(i, t))
                    .collect()
            }
        }
    }

    /// For closed-loop patterns: the think time and total request budget.
    pub fn closed_loop_params(&self) -> Option<(SimDuration, usize)> {
        match self {
            ArrivalPattern::ClosedLoop { think, count } => Some((*think, *count)),
            _ => None,
        }
    }
}

/// Encodes a request-completion notice as `app << 32 | req`.
pub fn encode_notice(app: usize, req: usize) -> u64 {
    debug_assert!(app < u32::MAX as usize && req < u32::MAX as usize);
    ((app as u64) << 32) | req as u64
}

/// Decodes a notice produced by [`encode_notice`].
pub fn decode_notice(notice: u64) -> (usize, usize) {
    ((notice >> 32) as usize, (notice & 0xFFFF_FFFF) as usize)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> SimRng {
        SimRng::new(1234)
    }

    #[test]
    fn periodic_is_regular() {
        let p = ArrivalPattern::Periodic {
            period: SimDuration::from_millis(10),
            count: 5,
            offset: SimDuration::from_millis(2),
        };
        let arr = p.initial_arrivals(3, &mut rng());
        assert_eq!(arr.len(), 5);
        assert_eq!(arr[0].at, SimTime::from_millis(2));
        assert_eq!(arr[4].at, SimTime::from_millis(42));
        assert!(arr.iter().all(|a| a.app == 3));
        assert_eq!(arr[2].req, 2);
    }

    #[test]
    fn closed_loop_emits_only_the_first() {
        let p = ArrivalPattern::ClosedLoop {
            think: SimDuration::from_millis(5),
            count: 100,
        };
        let arr = p.initial_arrivals(0, &mut rng());
        assert_eq!(arr.len(), 1);
        // The first request lands at a random offset within one think time.
        assert!(arr[0].at < SimTime::ZERO + SimDuration::from_millis(5));
        assert_eq!(
            p.closed_loop_params(),
            Some((SimDuration::from_millis(5), 100))
        );
        let empty = ArrivalPattern::ClosedLoop {
            think: SimDuration::from_millis(5),
            count: 0,
        };
        assert!(empty.initial_arrivals(0, &mut rng()).is_empty());
    }

    #[test]
    fn poisson_rate_is_approximately_right() {
        let p = ArrivalPattern::Poisson {
            mean_interval: SimDuration::from_millis(10),
            horizon: SimTime::from_millis(100_000),
        };
        let arr = p.initial_arrivals(0, &mut rng());
        // Expect ~10_000 arrivals over 100 s at 100/s.
        assert!((arr.len() as f64 - 10_000.0).abs() < 500.0, "{}", arr.len());
        assert!(arr.windows(2).all(|w| w[0].at <= w[1].at));
    }

    #[test]
    fn twitter_like_is_modulated_but_dense() {
        let p = ArrivalPattern::TwitterLike {
            mean_interval: SimDuration::from_millis(20),
            cycle: SimDuration::from_secs(10),
            horizon: SimTime::from_millis(40_000),
        };
        let arr = p.initial_arrivals(0, &mut rng());
        assert!(arr.len() > 1000, "{}", arr.len());
        // Peak half-cycle should carry clearly more arrivals than trough.
        let cycle_ns = 10_000_000_000u64;
        let in_first_half = arr
            .iter()
            .filter(|a| (a.at.as_nanos() % cycle_ns) < cycle_ns / 2)
            .count();
        let in_second_half = arr.len() - in_first_half;
        assert!(
            in_first_half as f64 > 1.3 * in_second_half as f64,
            "{in_first_half} vs {in_second_half}"
        );
    }

    #[test]
    fn azure_like_is_sparse_and_bursty() {
        let p = ArrivalPattern::AzureLike {
            mean_gap: SimDuration::from_millis(500),
            max_burst: 4,
            intra_burst: SimDuration::from_millis(5),
            horizon: SimTime::from_millis(60_000),
        };
        let arr = p.initial_arrivals(0, &mut rng());
        assert!(!arr.is_empty());
        // Mean inter-arrival must be much larger than the intra-burst gap
        // (sparse overall) while some gaps are tiny (bursts).
        let gaps: Vec<u64> = arr
            .windows(2)
            .map(|w| w[1].at.as_nanos() - w[0].at.as_nanos())
            .collect();
        let mean_gap = gaps.iter().sum::<u64>() as f64 / gaps.len() as f64;
        assert!(mean_gap > 50.0e6, "mean gap {mean_gap} ns");
        assert!(gaps.iter().any(|&g| g <= 5_000_000), "no bursts found");
    }

    #[test]
    fn simultaneous_and_at_times() {
        let p = ArrivalPattern::Simultaneous {
            count: 4,
            at: SimTime::from_millis(1),
        };
        let arr = p.initial_arrivals(0, &mut rng());
        assert_eq!(arr.len(), 4);
        assert!(arr.iter().all(|a| a.at == SimTime::from_millis(1)));

        let p = ArrivalPattern::AtTimes(vec![SimTime::ZERO, SimTime::from_millis(3)]);
        let arr = p.initial_arrivals(1, &mut rng());
        assert_eq!(arr[1].req, 1);
        assert_eq!(arr[1].at, SimTime::from_millis(3));
    }

    #[test]
    fn notice_encoding_round_trips() {
        for (app, req) in [(0, 0), (3, 17), (1000, 1_000_000)] {
            assert_eq!(decode_notice(encode_notice(app, req)), (app, req));
        }
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let p = ArrivalPattern::Poisson {
            mean_interval: SimDuration::from_millis(10),
            horizon: SimTime::from_millis(1000),
        };
        let a = p.initial_arrivals(0, &mut SimRng::new(7));
        let b = p.initial_arrivals(0, &mut SimRng::new(7));
        assert_eq!(a.len(), b.len());
        assert!(a.iter().zip(&b).all(|(x, y)| x.at == y.at));
    }
}
