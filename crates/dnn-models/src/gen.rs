//! The deterministic kernel-trace generator.
//!
//! Given a [`GenSpec`] (kernel count, total duration, utilization target,
//! heterogeneity), the generator draws log-normal kernel durations and
//! per-kernel SM parallelism, then rescales both so the aggregate exactly
//! matches the calibration targets from the paper's Table 1.

use gpu_sim::KernelDesc;
use sim_core::{SimDuration, SimRng};

/// Parameters for generating one application's kernel trace.
#[derive(Clone, Debug)]
pub struct GenSpec {
    /// Application name; kernel names are derived from it.
    pub name: String,
    /// Number of computational kernels.
    pub kernels: usize,
    /// Target end-to-end solo duration (including the H2D/D2H copies).
    pub total: SimDuration,
    /// Target solo GPU utilization on a 108-SM A100.
    pub utilization: f64,
    /// Sigma of the log-normal kernel-duration distribution (heterogeneity).
    pub dur_sigma: f64,
    /// Range of the per-kernel parallelism fraction (`max_sms / 108`).
    pub d_frac_range: (f64, f64),
    /// Range of per-kernel memory intensity.
    pub mem_range: (f64, f64),
    /// Whether compute kernels run on tensor cores.
    pub tensor_core: bool,
    /// Input transfer size (H2D at request start), bytes.
    pub input_bytes: u64,
    /// Output transfer size (D2H at request end), bytes.
    pub output_bytes: u64,
    /// Resident memory requirement, MiB.
    pub memory_mib: u64,
    /// Deterministic seed.
    pub seed: u64,
}

/// Reference SM count for the calibration (A100).
pub const CALIBRATION_SMS: u32 = 108;
/// Reference PCIe bandwidth for the calibration, bytes/s.
pub const CALIBRATION_PCIE: f64 = 25.0e9;

/// Lower clamp for generated kernel durations (paper: kernels down to 3 µs).
const MIN_KERNEL_NS: f64 = 3_000.0;
/// Upper clamp for generated kernel durations (paper: kernels up to 3 ms).
const MAX_KERNEL_NS: f64 = 3_000_000.0;

/// Generates the kernel sequence for one request.
///
/// The sequence is `[H2D, compute × kernels, D2H]`. Compute durations are
/// log-normal with spread `dur_sigma`, rescaled so the end-to-end solo time
/// equals `spec.total`; per-kernel `max_sms` values are drawn from
/// `d_frac_range` and iteratively rescaled so the solo utilization matches
/// `spec.utilization`.
///
/// # Panics
///
/// Panics if `spec.kernels` is zero or the total duration is too small to
/// fit the copies plus the minimum kernel durations.
pub fn generate_kernels(spec: &GenSpec) -> Vec<KernelDesc> {
    assert!(spec.kernels > 0, "a model needs at least one kernel");
    let mut rng = SimRng::new(spec.seed);

    // Budget for compute kernels: total minus the two copies.
    let copy_ns = (spec.input_bytes + spec.output_bytes) as f64 / CALIBRATION_PCIE * 1e9;
    let compute_budget = spec.total.as_nanos() as f64 - copy_ns;
    assert!(
        compute_budget > spec.kernels as f64 * MIN_KERNEL_NS,
        "{}: total duration too small for {} kernels",
        spec.name,
        spec.kernels
    );

    // Draw raw durations, then rescale to the budget. Rescaling after
    // clamping can drift, so iterate: clamp -> rescale converges fast.
    let mut durs: Vec<f64> = (0..spec.kernels)
        .map(|_| rng.lognormal(1.0, spec.dur_sigma))
        .collect();
    for _ in 0..8 {
        let sum: f64 = durs.iter().sum();
        let scale = compute_budget / sum;
        let mut changed = false;
        for d in &mut durs {
            let scaled = (*d * scale).clamp(MIN_KERNEL_NS, MAX_KERNEL_NS);
            if (scaled - *d * scale).abs() > 1e-9 {
                changed = true;
            }
            *d = scaled;
        }
        if !changed {
            break;
        }
    }
    // Final exact rescale on the unclamped middle mass: adjust every kernel
    // proportionally but keep within clamps; the residual error is folded
    // into the largest kernel (always far from its clamp in practice).
    let sum: f64 = durs.iter().sum();
    let scale = compute_budget / sum;
    for d in &mut durs {
        *d = (*d * scale).clamp(MIN_KERNEL_NS, MAX_KERNEL_NS);
    }
    let residual = compute_budget - durs.iter().sum::<f64>();
    if let Some(max_idx) = (0..durs.len()).max_by(|&a, &b| durs[a].total_cmp(&durs[b])) {
        durs[max_idx] = (durs[max_idx] + residual).clamp(MIN_KERNEL_NS, MAX_KERNEL_NS);
    }

    // Draw parallelism fractions and rescale them toward the utilization
    // target: util = Σ dur_i · d_i / Σ dur_i (with d_i = max_sms_i / SMs).
    let (d_lo, d_hi) = spec.d_frac_range;
    let mut fracs: Vec<f64> = (0..spec.kernels).map(|_| rng.uniform(d_lo, d_hi)).collect();
    let total_compute: f64 = durs.iter().sum();
    // Utilization target over the *whole* request (copies occupy 0 SMs).
    let total_all = total_compute + copy_ns;
    let target_busy = spec.utilization * total_all;
    for _ in 0..12 {
        let busy: f64 = durs.iter().zip(&fracs).map(|(d, f)| d * f).sum();
        if busy <= 0.0 {
            break;
        }
        let adjust = target_busy / busy;
        if (adjust - 1.0).abs() < 1e-4 {
            break;
        }
        for f in &mut fracs {
            *f = (*f * adjust).clamp(1.0 / CALIBRATION_SMS as f64, 1.0);
        }
    }

    let mut kernels = Vec::with_capacity(spec.kernels + 2);
    kernels.push(KernelDesc::memcpy_h2d(
        format!("{}.input_h2d", spec.name),
        spec.input_bytes,
    ));
    for (i, (&dur_ns, &frac)) in durs.iter().zip(&fracs).enumerate() {
        let max_sms = ((frac * CALIBRATION_SMS as f64).round() as u32).clamp(1, CALIBRATION_SMS);
        let mem = rng.uniform(spec.mem_range.0, spec.mem_range.1);
        let dur = SimDuration::from_nanos(dur_ns.round() as u64);
        let name = format!("{}.k{i}", spec.name);
        let k = if spec.tensor_core {
            KernelDesc::tensor_compute(name, dur, max_sms, mem)
        } else {
            KernelDesc::compute(name, dur, max_sms, mem)
        };
        kernels.push(k);
    }
    kernels.push(KernelDesc::memcpy_d2h(
        format!("{}.output_d2h", spec.name),
        spec.output_bytes,
    ));
    kernels
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> GenSpec {
        GenSpec {
            name: "test".into(),
            kernels: 100,
            total: SimDuration::from_millis(20),
            utilization: 0.8,
            dur_sigma: 0.9,
            d_frac_range: (0.3, 1.0),
            mem_range: (0.1, 0.4),
            tensor_core: false,
            input_bytes: 4_800_000,
            output_bytes: 32 * 1024,
            memory_mib: 100,
            seed: 99,
        }
    }

    fn solo_ns(kernels: &[KernelDesc]) -> f64 {
        kernels
            .iter()
            .map(|k| k.full_speed_duration(CALIBRATION_PCIE).as_nanos() as f64)
            .sum()
    }

    #[test]
    fn total_duration_is_exact() {
        let ks = generate_kernels(&spec());
        let total = solo_ns(&ks);
        let target = 20.0e6;
        assert!((total - target).abs() / target < 0.005, "total {total}");
    }

    #[test]
    fn utilization_hits_target() {
        let ks = generate_kernels(&spec());
        let total = solo_ns(&ks);
        let busy: f64 = ks
            .iter()
            .filter(|k| k.kind.is_compute())
            .map(|k| k.full_speed_duration(CALIBRATION_PCIE).as_nanos() as f64 * k.max_sms as f64)
            .sum();
        let util = busy / (CALIBRATION_SMS as f64 * total);
        assert!((util - 0.8).abs() < 0.02, "util {util:.3}");
    }

    #[test]
    fn durations_respect_clamps() {
        let ks = generate_kernels(&spec());
        for k in ks.iter().filter(|k| k.kind.is_compute()) {
            let ns = k.full_speed_duration(CALIBRATION_PCIE).as_nanos() as f64;
            assert!((MIN_KERNEL_NS - 1.0..=MAX_KERNEL_NS + 1.0).contains(&ns));
        }
    }

    #[test]
    fn heterogeneity_scales_with_sigma() {
        let narrow = GenSpec {
            dur_sigma: 0.2,
            seed: 7,
            ..spec()
        };
        let wide = GenSpec {
            dur_sigma: 1.2,
            seed: 7,
            ..spec()
        };
        let spread = |ks: &[KernelDesc]| {
            let durs: Vec<f64> = ks
                .iter()
                .filter(|k| k.kind.is_compute())
                .map(|k| k.full_speed_duration(CALIBRATION_PCIE).as_nanos() as f64)
                .collect();
            let max = durs.iter().cloned().fold(0.0, f64::max);
            let min = durs.iter().cloned().fold(f64::MAX, f64::min);
            max / min
        };
        assert!(spread(&generate_kernels(&wide)) > spread(&generate_kernels(&narrow)));
    }

    #[test]
    #[should_panic(expected = "at least one kernel")]
    fn rejects_zero_kernels() {
        let mut s = spec();
        s.kernels = 0;
        generate_kernels(&s);
    }

    #[test]
    #[should_panic(expected = "too small")]
    fn rejects_impossible_budget() {
        let mut s = spec();
        s.total = SimDuration::from_micros(10);
        generate_kernels(&s);
    }
}
