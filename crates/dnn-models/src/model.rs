//! Application model definitions and the Table 1 calibration constants.

use gpu_sim::KernelDesc;
use sim_core::SimDuration;

use crate::gen::{generate_kernels, GenSpec};

/// The five DNN architectures the paper evaluates.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ModelKind {
    /// VGG-11 image classifier.
    Vgg11,
    /// ResNet-50 image classifier.
    ResNet50,
    /// ResNet-101 image classifier.
    ResNet101,
    /// NasNet (large) image classifier: many small heterogeneous kernels.
    NasNet,
    /// BERT transformer (tensor cores for inference).
    Bert,
    /// AlexNet image classifier (used only in the interference study,
    /// Fig. 9b; not part of Table 1).
    AlexNet,
}

impl ModelKind {
    /// All five model kinds, in the paper's Table 1 order.
    pub const ALL: [ModelKind; 5] = [
        ModelKind::Vgg11,
        ModelKind::ResNet50,
        ModelKind::ResNet101,
        ModelKind::NasNet,
        ModelKind::Bert,
    ];

    /// The paper's short column label (Table 1).
    pub fn short_name(self) -> &'static str {
        match self {
            ModelKind::Vgg11 => "VGG",
            ModelKind::ResNet50 => "R50",
            ModelKind::ResNet101 => "R101",
            ModelKind::NasNet => "NAS",
            ModelKind::Bert => "BERT",
            ModelKind::AlexNet => "A",
        }
    }

    /// Full human-readable name.
    pub fn full_name(self) -> &'static str {
        match self {
            ModelKind::Vgg11 => "VGG-11",
            ModelKind::ResNet50 => "ResNet-50",
            ModelKind::ResNet101 => "ResNet-101",
            ModelKind::NasNet => "NasNet",
            ModelKind::Bert => "BERT",
            ModelKind::AlexNet => "AlexNet",
        }
    }
}

/// Whether a request is an inference pass or a training iteration.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Phase {
    /// One inference request (TVM/nnfusion kernels in the paper).
    Inference,
    /// One training iteration (PyTorch kernels in the paper).
    Training,
}

/// Per-(model, phase) generation parameters, calibrated to Table 1.
fn gen_spec(kind: ModelKind, phase: Phase) -> GenSpec {
    // (kernels, total ms, utilization, sigma, d% range, mem range)
    // Utilization for VGG/R50 inference comes from Fig. 1 (81% / 86%);
    // the others are chosen consistently with the architectures: NasNet's
    // many small kernels underutilize the GPU, BERT's tensor-core GEMMs
    // are wide, training kernels are generally wider than inference.
    let (kernels, total_ms, util, sigma, d_lo, d_hi, m_lo, m_hi) = match (kind, phase) {
        (ModelKind::Vgg11, Phase::Inference) => (31, 10.2, 0.81, 0.9, 0.35, 1.0, 0.05, 0.45),
        (ModelKind::ResNet50, Phase::Inference) => (80, 8.7, 0.86, 0.8, 0.40, 1.0, 0.05, 0.40),
        (ModelKind::ResNet101, Phase::Inference) => (148, 17.2, 0.84, 0.8, 0.40, 1.0, 0.05, 0.40),
        (ModelKind::NasNet, Phase::Inference) => (458, 32.7, 0.62, 1.1, 0.15, 0.9, 0.05, 0.50),
        (ModelKind::Bert, Phase::Inference) => (382, 12.8, 0.78, 0.7, 0.45, 1.0, 0.10, 0.55),
        (ModelKind::Vgg11, Phase::Training) => (80, 11.2, 0.85, 0.9, 0.40, 1.0, 0.05, 0.45),
        (ModelKind::ResNet50, Phase::Training) => (306, 25.2, 0.84, 0.8, 0.40, 1.0, 0.05, 0.45),
        (ModelKind::ResNet101, Phase::Training) => (598, 40.1, 0.84, 0.8, 0.40, 1.0, 0.05, 0.45),
        (ModelKind::NasNet, Phase::Training) => (2824, 157.8, 0.66, 1.0, 0.15, 0.9, 0.05, 0.50),
        (ModelKind::Bert, Phase::Training) => (5035, 186.1, 0.80, 0.7, 0.40, 1.0, 0.10, 0.55),
        // AlexNet is not in Table 1; its parameters follow its
        // architecture: few, fairly wide kernels and a short request.
        (ModelKind::AlexNet, Phase::Inference) => (21, 3.1, 0.72, 0.8, 0.30, 1.0, 0.05, 0.45),
        (ModelKind::AlexNet, Phase::Training) => (58, 7.4, 0.78, 0.8, 0.35, 1.0, 0.05, 0.45),
    };
    // Input/output transfer sizes (bytes): image batch for CNNs, token ids
    // for BERT; training uses a larger batch.
    let (input_bytes, output_bytes) = match (kind, phase) {
        (ModelKind::Bert, Phase::Inference) => (64 * 1024, 32 * 1024),
        (ModelKind::Bert, Phase::Training) => (512 * 1024, 16 * 1024),
        (_, Phase::Inference) => (4_800_000, 32 * 1024), // batch 8 of 224^2 RGB f32
        (_, Phase::Training) => (19_200_000, 16 * 1024), // batch 32
    };
    // Approximate resident memory (weights + activations + workspace).
    let memory_mib = match (kind, phase) {
        (ModelKind::Vgg11, Phase::Inference) => 1_250,
        (ModelKind::ResNet50, Phase::Inference) => 850,
        (ModelKind::ResNet101, Phase::Inference) => 1_150,
        (ModelKind::NasNet, Phase::Inference) => 950,
        (ModelKind::Bert, Phase::Inference) => 1_500,
        (ModelKind::Vgg11, Phase::Training) => 3_100,
        (ModelKind::ResNet50, Phase::Training) => 2_400,
        (ModelKind::ResNet101, Phase::Training) => 3_300,
        (ModelKind::NasNet, Phase::Training) => 2_900,
        (ModelKind::Bert, Phase::Training) => 4_600,
        (ModelKind::AlexNet, Phase::Inference) => 700,
        (ModelKind::AlexNet, Phase::Training) => 1_900,
    };
    let tensor_core = kind == ModelKind::Bert && phase == Phase::Inference;
    // Seed derived from the identity so every (kind, phase) is stable.
    let seed = 0xB1E5_5000 + (kind as u64) * 16 + (phase as u64);

    GenSpec {
        name: format!(
            "{}-{}",
            kind.short_name().to_ascii_lowercase(),
            match phase {
                Phase::Inference => "inf",
                Phase::Training => "train",
            }
        ),
        kernels,
        total: SimDuration::from_millis_f64(total_ms),
        utilization: util,
        dur_sigma: sigma,
        d_frac_range: (d_lo, d_hi),
        mem_range: (m_lo, m_hi),
        tensor_core,
        input_bytes,
        output_bytes,
        memory_mib,
        seed,
    }
}

/// One deployable application: a model in a phase, with its kernel trace.
#[derive(Clone, Debug)]
pub struct AppModel {
    /// Architecture.
    pub kind: ModelKind,
    /// Inference or training.
    pub phase: Phase,
    /// Stable generated name, e.g. `"r50-inf"`.
    pub name: String,
    /// The kernel sequence of one request (H2D, compute kernels, D2H).
    pub kernels: Vec<KernelDesc>,
    /// Device memory the application needs resident, in MiB.
    pub memory_mib: u64,
}

impl AppModel {
    /// Builds the calibrated synthetic model for `(kind, phase)`.
    pub fn build(kind: ModelKind, phase: Phase) -> AppModel {
        let spec = gen_spec(kind, phase);
        let name = spec.name.clone();
        let memory_mib = spec.memory_mib;
        let kernels = generate_kernels(&spec);
        AppModel {
            kind,
            phase,
            name,
            kernels,
            memory_mib,
        }
    }

    /// All five inference applications, Table 1 order.
    pub fn all_inference() -> Vec<AppModel> {
        ModelKind::ALL
            .iter()
            .map(|&k| AppModel::build(k, Phase::Inference))
            .collect()
    }

    /// All five training applications, Table 1 order.
    pub fn all_training() -> Vec<AppModel> {
        ModelKind::ALL
            .iter()
            .map(|&k| AppModel::build(k, Phase::Training))
            .collect()
    }

    /// Number of kernels per request (compute + memcpy).
    pub fn kernel_count(&self) -> usize {
        self.kernels.len()
    }

    /// Number of computational kernels per request.
    pub fn compute_kernel_count(&self) -> usize {
        self.kernels.iter().filter(|k| k.kind.is_compute()).count()
    }

    /// The solo-run duration on an unrestricted GPU: every kernel at full
    /// speed, executed back-to-back on one queue.
    pub fn solo_duration(&self, pcie_bytes_per_sec: f64) -> SimDuration {
        self.kernels
            .iter()
            .map(|k| k.full_speed_duration(pcie_bytes_per_sec))
            .sum()
    }

    /// Mean computational kernel duration at full speed.
    pub fn mean_kernel_duration(&self, pcie_bytes_per_sec: f64) -> SimDuration {
        let n = self.compute_kernel_count().max(1) as u64;
        let total: SimDuration = self
            .kernels
            .iter()
            .filter(|k| k.kind.is_compute())
            .map(|k| k.full_speed_duration(pcie_bytes_per_sec))
            .sum();
        total / n
    }

    /// Solo GPU utilization: SM·time demanded over `num_sms ×` solo time.
    pub fn solo_utilization(&self, num_sms: u32, pcie_bytes_per_sec: f64) -> f64 {
        let total = self.solo_duration(pcie_bytes_per_sec).as_nanos() as f64;
        if total == 0.0 {
            return 0.0;
        }
        let busy: f64 = self
            .kernels
            .iter()
            .filter(|k| k.kind.is_compute())
            .map(|k| {
                k.full_speed_duration(pcie_bytes_per_sec).as_nanos() as f64
                    * k.max_sms.min(num_sms) as f64
            })
            .sum();
        busy / (num_sms as f64 * total)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const PCIE: f64 = 25.0e9;

    /// Table 1's inference row: (kind, kernels, duration ms).
    const TABLE1_INFERENCE: [(ModelKind, usize, f64); 5] = [
        (ModelKind::Vgg11, 31, 10.2),
        (ModelKind::ResNet50, 80, 8.7),
        (ModelKind::ResNet101, 148, 17.2),
        (ModelKind::NasNet, 458, 32.7),
        (ModelKind::Bert, 382, 12.8),
    ];

    /// Table 1's training row.
    const TABLE1_TRAINING: [(ModelKind, usize, f64); 5] = [
        (ModelKind::Vgg11, 80, 11.2),
        (ModelKind::ResNet50, 306, 25.2),
        (ModelKind::ResNet101, 598, 40.1),
        (ModelKind::NasNet, 2824, 157.8),
        (ModelKind::Bert, 5035, 186.1),
    ];

    #[test]
    fn inference_calibration_matches_table1() {
        for (kind, kernels, ms) in TABLE1_INFERENCE {
            let m = AppModel::build(kind, Phase::Inference);
            assert_eq!(m.compute_kernel_count(), kernels, "{kind:?} kernel count");
            let solo = m.solo_duration(PCIE).as_millis_f64();
            assert!(
                (solo - ms).abs() / ms < 0.02,
                "{kind:?}: solo {solo:.2} ms vs Table 1 {ms} ms"
            );
        }
    }

    #[test]
    fn training_calibration_matches_table1() {
        for (kind, kernels, ms) in TABLE1_TRAINING {
            let m = AppModel::build(kind, Phase::Training);
            assert_eq!(m.compute_kernel_count(), kernels, "{kind:?} kernel count");
            let solo = m.solo_duration(PCIE).as_millis_f64();
            assert!(
                (solo - ms).abs() / ms < 0.02,
                "{kind:?}: solo {solo:.2} ms vs Table 1 {ms} ms"
            );
        }
    }

    #[test]
    fn utilization_matches_figure1() {
        let vgg = AppModel::build(ModelKind::Vgg11, Phase::Inference);
        let r50 = AppModel::build(ModelKind::ResNet50, Phase::Inference);
        let u_vgg = vgg.solo_utilization(108, PCIE);
        let u_r50 = r50.solo_utilization(108, PCIE);
        assert!((u_vgg - 0.81).abs() < 0.03, "VGG util {u_vgg:.3}");
        assert!((u_r50 - 0.86).abs() < 0.03, "R50 util {u_r50:.3}");
    }

    #[test]
    fn kernel_durations_span_paper_range() {
        // Across all applications, kernel durations vary from ~3 µs to ~3 ms.
        let mut min_us = f64::MAX;
        let mut max_us: f64 = 0.0;
        for m in AppModel::all_inference()
            .iter()
            .chain(&AppModel::all_training())
        {
            for k in m.kernels.iter().filter(|k| k.kind.is_compute()) {
                let d = k.full_speed_duration(PCIE).as_micros_f64();
                min_us = min_us.min(d);
                max_us = max_us.max(d);
            }
        }
        assert!((2.0..=10.0).contains(&min_us), "min kernel {min_us:.1} µs");
        assert!(
            (1_000.0..=3_500.0).contains(&max_us),
            "max kernel {max_us:.1} µs"
        );
    }

    #[test]
    fn bert_inference_uses_tensor_cores() {
        let bert = AppModel::build(ModelKind::Bert, Phase::Inference);
        let tensor = bert
            .kernels
            .iter()
            .filter(|k| matches!(k.kind, gpu_sim::KernelKind::Compute { tensor_core: true }))
            .count();
        assert!(tensor > bert.compute_kernel_count() / 2);
        let r50 = AppModel::build(ModelKind::ResNet50, Phase::Inference);
        let tensor_r50 = r50
            .kernels
            .iter()
            .filter(|k| matches!(k.kind, gpu_sim::KernelKind::Compute { tensor_core: true }))
            .count();
        assert_eq!(tensor_r50, 0);
    }

    #[test]
    fn generation_is_deterministic() {
        let a = AppModel::build(ModelKind::NasNet, Phase::Inference);
        let b = AppModel::build(ModelKind::NasNet, Phase::Inference);
        assert_eq!(a.kernels.len(), b.kernels.len());
        for (ka, kb) in a.kernels.iter().zip(&b.kernels) {
            assert_eq!(ka.work, kb.work);
            assert_eq!(ka.max_sms, kb.max_sms);
            assert_eq!(ka.mem_intensity, kb.mem_intensity);
        }
    }

    #[test]
    fn requests_start_with_h2d_and_end_with_d2h() {
        for m in AppModel::all_inference() {
            assert!(matches!(
                m.kernels.first().unwrap().kind,
                gpu_sim::KernelKind::MemcpyH2D { .. }
            ));
            assert!(matches!(
                m.kernels.last().unwrap().kind,
                gpu_sim::KernelKind::MemcpyD2H { .. }
            ));
        }
    }

    #[test]
    fn names_and_labels() {
        assert_eq!(ModelKind::Vgg11.short_name(), "VGG");
        assert_eq!(ModelKind::Bert.full_name(), "BERT");
        let m = AppModel::build(ModelKind::ResNet101, Phase::Training);
        assert_eq!(m.name, "r101-train");
        assert!(m.memory_mib > 0);
    }

    #[test]
    fn mean_kernel_durations_are_in_paper_band() {
        // §4.2.2: BLESS co-locates applications with average kernel
        // durations from 10 µs to 300 µs (inference); training can be denser.
        for m in AppModel::all_inference() {
            let mean = m.mean_kernel_duration(PCIE).as_micros_f64();
            assert!((10.0..=350.0).contains(&mean), "{}: {mean:.1} µs", m.name);
        }
    }
}
