#![warn(missing_docs)]

//! Synthetic DNN application models calibrated to the BLESS paper.
//!
//! The paper evaluates five models — VGG-11, ResNet-50, ResNet-101, NasNet
//! and BERT — each as an inference service (TVM/nnfusion kernels) and a
//! training job (PyTorch kernels). We cannot ship the authors' compiled
//! kernels, so this crate generates *synthetic kernel traces* with the
//! statistics that matter to a GPU-sharing scheduler, calibrated to the
//! paper's Table 1:
//!
//! * exact kernel counts (31 … 5035 kernels per request),
//! * solo-run durations on a full A100 (10.2 ms … 186.1 ms),
//! * kernel-duration heterogeneity (3 µs … 3 ms),
//! * solo GPU utilization (Fig. 1: VGG-11 81%, ResNet-50 86%), and
//! * tensor-core usage for BERT inference.
//!
//! Generation is fully deterministic: the same model always produces the
//! same kernel list.

pub mod gen;
pub mod micro;
pub mod model;

pub use model::{AppModel, ModelKind, Phase};
