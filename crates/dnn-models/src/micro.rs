//! Microbenchmark kernels for the interference experiments (paper Fig. 9a).
//!
//! Fig. 9(a) measures the slowdown of victim kernels co-located with
//! aggressors of increasing memory pressure. These helpers build the
//! synthetic victim/aggressor kernels for that experiment.

use gpu_sim::{Channel, ChannelDemand, KernelDesc};
use sim_core::SimDuration;

/// A victim kernel occupying `sms` SMs for `duration` with the given
/// memory intensity.
pub fn victim(duration: SimDuration, sms: u32, mem_intensity: f64) -> KernelDesc {
    KernelDesc::compute("micro.victim", duration, sms, mem_intensity)
}

/// An aggressor kernel generating memory pressure: long-running so it
/// fully overlaps the victim, occupying `sms` SMs at `mem_intensity`.
pub fn aggressor(sms: u32, mem_intensity: f64) -> KernelDesc {
    KernelDesc::compute(
        "micro.aggressor",
        SimDuration::from_millis(50),
        sms,
        mem_intensity,
    )
}

/// A purely compute-bound kernel (no memory traffic at all).
pub fn compute_bound(duration: SimDuration, sms: u32) -> KernelDesc {
    KernelDesc::compute("micro.compute", duration, sms, 0.0)
}

/// A pathologically memory-bound kernel (streaming, intensity 1.0).
pub fn memory_bound(duration: SimDuration, sms: u32) -> KernelDesc {
    KernelDesc::compute("micro.membound", duration, sms, 1.0)
}

/// A victim kernel with an explicit per-channel demand vector (for the
/// per-resource interference experiments, Fig. 9c). The scalar
/// `mem_intensity` is kept at the DRAM-BW component so the same kernel is
/// meaningful under `ChannelModel::Scalar`.
pub fn channel_victim(duration: SimDuration, sms: u32, demand: ChannelDemand) -> KernelDesc {
    KernelDesc::compute("micro.cvictim", duration, sms, demand.get(Channel::DramBw))
        .with_demand(demand)
}

/// A long-running aggressor with an explicit per-channel demand vector.
pub fn channel_aggressor(sms: u32, demand: ChannelDemand) -> KernelDesc {
    KernelDesc::compute(
        "micro.caggressor",
        SimDuration::from_millis(50),
        sms,
        demand.get(Channel::DramBw),
    )
    .with_demand(demand)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::{CtxKind, Gpu, GpuSpec, HostCosts};
    use sim_core::SimTime;

    /// Runs victim+aggressor concurrently and returns the victim slowdown.
    fn slowdown(victim_mem: f64, aggressor_mem: f64) -> f64 {
        let mut gpu = Gpu::new(GpuSpec::a100(), HostCosts::free());
        let ctx = gpu.create_context(CtxKind::Default).unwrap();
        let q1 = gpu.create_queue(ctx).unwrap();
        let q2 = gpu.create_queue(ctx).unwrap();
        let base = SimDuration::from_micros(500);
        let v = gpu.launch(q1, victim(base, 54, victim_mem), 0).unwrap();
        gpu.launch(q2, aggressor(54, aggressor_mem), 1).unwrap();
        while gpu.kernel_finished_at(v).is_none() {
            if gpu.step().is_none() && gpu.peek_event_time().is_none() {
                panic!("victim never finished");
            }
        }
        let t = gpu.kernel_finished_at(v).unwrap();
        t.duration_since(SimTime::ZERO).as_nanos() as f64 / base.as_nanos() as f64
    }

    #[test]
    fn slowdown_grows_with_aggressor_pressure() {
        let s_low = slowdown(0.5, 0.1);
        let s_high = slowdown(0.5, 0.9);
        assert!(s_high > s_low, "low {s_low:.3} high {s_high:.3}");
    }

    #[test]
    fn slowdown_never_exceeds_two() {
        // Paper Fig. 9a: kernel-level slowdown ratio stays below 2 even
        // against a highly memory-intensive aggressor.
        let s = slowdown(1.0, 1.0);
        assert!(s <= 2.0 + 1e-9, "slowdown {s:.3}");
        assert!(s > 1.2, "worst case should be substantial, got {s:.3}");
    }

    #[test]
    fn compute_bound_victims_are_less_sensitive() {
        let s_compute = slowdown(0.0, 0.9);
        let s_memory = slowdown(1.0, 0.9);
        assert!(s_compute < s_memory);
        assert!(s_compute > 1.0, "even compute kernels feel some pressure");
    }
}
