//! A self-contained benchmarking shim.
//!
//! This workspace must build in fully offline environments, so instead of
//! pulling the real `criterion` crate from a registry it vendors this shim,
//! which implements the subset of the criterion API the `bench` crate
//! uses: [`Criterion::benchmark_group`], [`BenchmarkGroup::sample_size`],
//! [`BenchmarkGroup::bench_function`], [`Criterion::bench_function`], and
//! the [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! Measurement is deliberately simple: one warm-up call, then
//! `sample_size` timed iterations, reporting mean and minimum wall-clock
//! time per iteration. No statistical analysis, no HTML reports — just
//! numbers on stdout, which is all the perf tracking in this repo needs.

use std::time::{Duration, Instant};

/// Prevents the optimizer from discarding a benchmarked computation.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Top-level benchmark driver, passed to every `fn bench(c: &mut Criterion)`.
pub struct Criterion {
    default_sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            default_sample_size: 10,
        }
    }
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.default_sample_size,
            _criterion: self,
        }
    }

    /// Runs a single ungrouped benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(None, &id.into(), self.default_sample_size, f);
        self
    }
}

/// A named group of benchmarks sharing a sample size.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed iterations per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample size must be positive");
        self.sample_size = n;
        self
    }

    /// Runs one benchmark in this group.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(Some(&self.name), &id.into(), self.sample_size, f);
        self
    }

    /// Ends the group (kept for API compatibility; nothing to flush).
    pub fn finish(self) {}
}

/// Passed to the benchmark closure; call [`Bencher::iter`] with the
/// routine to measure.
pub struct Bencher {
    iters: u64,
    samples: Vec<Duration>,
}

impl Bencher {
    /// Times `routine` over the configured number of iterations.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut routine: F) {
        black_box(routine()); // warm-up: touch caches, fault in pages
        self.samples.clear();
        for _ in 0..self.iters {
            let start = Instant::now();
            black_box(routine());
            self.samples.push(start.elapsed());
        }
    }
}

fn run_one<F: FnMut(&mut Bencher)>(group: Option<&str>, id: &str, sample_size: usize, mut f: F) {
    let mut b = Bencher {
        iters: sample_size as u64,
        samples: Vec::with_capacity(sample_size),
    };
    f(&mut b);
    let label = match group {
        Some(g) => format!("{g}/{id}"),
        None => id.to_string(),
    };
    if b.samples.is_empty() {
        println!("{label:<48} (no measurement: bencher.iter was not called)");
        return;
    }
    let total: Duration = b.samples.iter().sum();
    let mean = total / b.samples.len() as u32;
    let min = b.samples.iter().min().copied().unwrap_or_default();
    println!(
        "{label:<48} mean {:>12} min {:>12} ({} samples)",
        fmt_duration(mean),
        fmt_duration(min),
        b.samples.len()
    );
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns >= 1_000_000_000 {
        format!("{:.3} s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.3} ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.3} µs", ns as f64 / 1e3)
    } else {
        format!("{ns} ns")
    }
}

/// Bundles benchmark functions into a single runner function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emits `main` for a bench binary (`harness = false` targets).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // Cargo passes `--bench` (and possibly filters); this shim
            // runs everything unconditionally.
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn groups_and_functions_run() {
        let mut c = Criterion::default();
        let mut runs = 0u32;
        {
            let mut g = c.benchmark_group("shim");
            g.sample_size(3);
            g.bench_function("counts", |b| b.iter(|| runs += 1));
            g.finish();
        }
        // 1 warm-up + 3 samples.
        assert_eq!(runs, 4);
        c.bench_function("direct", |b| b.iter(|| black_box(2 + 2)));
    }

    #[test]
    fn duration_formatting_scales() {
        assert_eq!(fmt_duration(Duration::from_nanos(12)), "12 ns");
        assert_eq!(fmt_duration(Duration::from_micros(12)), "12.000 µs");
        assert_eq!(fmt_duration(Duration::from_millis(12)), "12.000 ms");
        assert_eq!(fmt_duration(Duration::from_secs(12)), "12.000 s");
    }
}
