//! Property tests for the engine under the default greedy-sticky policy:
//! random kernel mixes must conserve work, respect caps, and terminate.

#![allow(clippy::unwrap_used, clippy::expect_used)] // test code

use gpu_sim::{CtxKind, Gpu, GpuSpec, HostCosts, HwPolicy, KernelDesc};
use proptest::prelude::*;
use sim_core::{SimDuration, SimTime};

/// A random compute kernel description.
fn arb_kernel() -> impl Strategy<Value = (u64, u32, f64)> {
    // (duration us, max_sms, mem_intensity)
    (5u64..500, 1u32..=108, 0.0f64..1.0)
}

fn run_mix(
    policy: HwPolicy,
    caps: Vec<Option<u32>>,
    kernels: Vec<Vec<(u64, u32, f64)>>,
) -> (Gpu, Vec<gpu_sim::KernelHandle>) {
    let mut spec = GpuSpec::a100();
    spec.hw_policy = policy;
    let mut gpu = Gpu::new(spec, HostCosts::paper());
    let mut handles = Vec::new();
    for (ctx_cap, ks) in caps.iter().zip(&kernels) {
        let ctx = match ctx_cap {
            None => gpu.create_context(CtxKind::Default).unwrap(),
            Some(c) => gpu
                .create_context(CtxKind::MpsAffinity { sm_cap: *c })
                .unwrap(),
        };
        let q = gpu.create_queue(ctx).unwrap();
        for (i, &(us, sms, mem)) in ks.iter().enumerate() {
            let k = KernelDesc::compute(format!("k{i}"), SimDuration::from_micros(us), sms, mem);
            handles.push(gpu.launch(q, k, i as u64).unwrap());
        }
    }
    gpu.drain();
    (gpu, handles)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every launched kernel completes, regardless of mix, caps, policy.
    #[test]
    fn prop_all_kernels_complete(
        caps in proptest::collection::vec(proptest::option::of(1u32..=108), 1..4),
        per_queue in proptest::collection::vec(
            proptest::collection::vec(arb_kernel(), 1..12), 1..4),
        fair in any::<bool>(),
    ) {
        let n = caps.len().min(per_queue.len());
        let policy = if fair { HwPolicy::FairShare } else { HwPolicy::GreedySticky };
        let (gpu, handles) = run_mix(
            policy,
            caps[..n].to_vec(),
            per_queue[..n].to_vec(),
        );
        prop_assert!(gpu.is_device_idle());
        for h in handles {
            prop_assert!(gpu.kernel_finished_at(h).is_some());
        }
    }

    /// Work conservation: total busy SM·time equals the sum of every
    /// kernel's work divided by its (interference-adjusted) rate — i.e.
    /// busy time is at least the interference-free work and at most the
    /// 2x interference cap over it.
    #[test]
    fn prop_busy_time_brackets_total_work(
        per_queue in proptest::collection::vec(
            proptest::collection::vec(arb_kernel(), 1..10), 1..3),
    ) {
        let caps = vec![None; per_queue.len()];
        let (gpu, _) = run_mix(HwPolicy::GreedySticky, caps, per_queue.clone());
        let total_work_sm_s: f64 = per_queue
            .iter()
            .flatten()
            .map(|&(us, sms, _)| us as f64 * 1e-6 * sms as f64)
            .sum();
        let busy = gpu.busy_sm_seconds();
        prop_assert!(
            busy >= total_work_sm_s * 0.999,
            "busy {busy} < work {total_work_sm_s}"
        );
        prop_assert!(
            busy <= total_work_sm_s * 2.001,
            "busy {busy} exceeds the interference cap over {total_work_sm_s}"
        );
    }

    /// Kernels in one queue finish in submission order (CUDA stream FIFO).
    #[test]
    fn prop_queue_is_fifo(
        ks in proptest::collection::vec(arb_kernel(), 2..15),
    ) {
        let (gpu, handles) = run_mix(HwPolicy::GreedySticky, vec![None], vec![ks]);
        let mut last = SimTime::ZERO;
        for h in handles {
            let f = gpu.kernel_finished_at(h).unwrap();
            prop_assert!(f >= last, "completion order violates FIFO");
            last = f;
        }
    }

    /// A solo queue's makespan is independent of the hardware policy:
    /// with no co-runners, greedy-sticky and fair-share agree exactly.
    #[test]
    fn prop_solo_runs_are_policy_independent(
        ks in proptest::collection::vec(arb_kernel(), 1..12),
        cap in proptest::option::of(1u32..=108),
    ) {
        let (g1, h1) = run_mix(HwPolicy::GreedySticky, vec![cap], vec![ks.clone()]);
        let (g2, h2) = run_mix(HwPolicy::FairShare, vec![cap], vec![ks]);
        let end1 = h1.iter().map(|&h| g1.kernel_finished_at(h).unwrap()).max();
        let end2 = h2.iter().map(|&h| g2.kernel_finished_at(h).unwrap()).max();
        prop_assert_eq!(end1, end2);
    }

    /// MIG partitions never leak capacity: two saturating tenants in
    /// disjoint partitions finish exactly as if each had its own GPU of
    /// the partition size.
    #[test]
    fn prop_mig_partitions_isolate(
        us in 50u64..500,
        split in 1u32..7,
    ) {
        let sms_a = split * 15;
        let sms_b = 105 - sms_a;
        let mut gpu = Gpu::new(GpuSpec::a100(), HostCosts::free());
        let ca = gpu.create_context(CtxKind::MigPartition { sm_count: sms_a }).unwrap();
        let cb = gpu.create_context(CtxKind::MigPartition { sm_count: sms_b }).unwrap();
        let qa = gpu.create_queue(ca).unwrap();
        let qb = gpu.create_queue(cb).unwrap();
        let k = |n: &str| KernelDesc::compute(n, SimDuration::from_micros(us), 108, 0.0);
        let ha = gpu.launch(qa, k("a"), 0).unwrap();
        let hb = gpu.launch(qb, k("b"), 1).unwrap();
        gpu.drain();
        // Each kernel's duration = work / partition size, exactly.
        let expect = |sms: u32| {
            SimDuration::from_nanos(
                ((us * 1000) as f64 * 108.0 / sms as f64).ceil() as u64)
        };
        let da = gpu.kernel_finished_at(ha).unwrap().duration_since(SimTime::ZERO);
        let db = gpu.kernel_finished_at(hb).unwrap().duration_since(SimTime::ZERO);
        let tol = SimDuration::from_nanos(2);
        prop_assert!(da.saturating_sub(expect(sms_a)) <= tol && expect(sms_a).saturating_sub(da) <= tol,
            "partition A: {da} vs {:?}", expect(sms_a));
        prop_assert!(db.saturating_sub(expect(sms_b)) <= tol && expect(sms_b).saturating_sub(db) <= tol,
            "partition B: {db} vs {:?}", expect(sms_b));
    }
}

// ----------------------------------------------------------------------
// Slot recycling, handle generations, and the drain-into scratch APIs
// (the zero-allocation steady-state machinery).
// ----------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// With slot recycling on, a retired kernel's slot may be reused by a
    /// later launch — but the stale handle must never alias the new
    /// instance: it keeps reporting `Done`, and its timestamps are either
    /// its own or gone (`None`), never the new kernel's.
    #[test]
    fn prop_recycled_slots_invalidate_stale_handles(
        first in proptest::collection::vec(arb_kernel(), 1..16),
        second in proptest::collection::vec(arb_kernel(), 1..16),
    ) {
        let mut gpu = Gpu::new(GpuSpec::a100(), HostCosts::free());
        gpu.set_slot_recycling(true);
        let ctx = gpu.create_context(CtxKind::Default).unwrap();
        let q = gpu.create_queue(ctx).unwrap();
        let launch = |gpu: &mut Gpu, ks: &[(u64, u32, f64)], base: u64| {
            ks.iter()
                .enumerate()
                .map(|(i, &(us, sms, mem))| {
                    let k = KernelDesc::compute(
                        "k", SimDuration::from_micros(us), sms, mem);
                    gpu.launch(q, k, base + i as u64).unwrap()
                })
                .collect::<Vec<_>>()
        };
        let h1 = launch(&mut gpu, &first, 0);
        gpu.drain();
        // With recycling on, a completed kernel's slot is freed (and the
        // handle turned stale) immediately: `Done` is reported and the
        // timestamps are dropped with the slot.
        let finished: Vec<_> = h1.iter().map(|&h| gpu.kernel_finished_at(h)).collect();
        for &h in &h1 {
            prop_assert_eq!(gpu.kernel_state(h), gpu_sim::InstState::Done);
        }

        // Second batch recycles the freed slots (the free list is LIFO).
        let h2 = launch(&mut gpu, &second, first.len() as u64);
        for &h in &h2 {
            // Generation tagging: a recycled slot's new handle is distinct
            // from every handle ever issued for that slot.
            prop_assert!(!h1.contains(&h), "recycled handle must differ from stale one");
        }
        for (&h, f) in h1.iter().zip(&finished) {
            // The stale handle never observes the new (queued/in-flight)
            // instance: still `Done`, and its completion time is either
            // preserved (slot not reused) or dropped with the slot.
            prop_assert_eq!(gpu.kernel_state(h), gpu_sim::InstState::Done);
            let now = gpu.kernel_finished_at(h);
            prop_assert!(now.is_none() || now == *f,
                "stale handle must not alias a new instance's timestamps");
        }
        gpu.drain();
        for &h in &h2 {
            prop_assert_eq!(gpu.kernel_state(h), gpu_sim::InstState::Done);
        }
    }

    /// `drain_notices_into` must observe exactly what `drain_notices`
    /// returns, across interleaved posts and drains, and leave the GPU's
    /// internal buffer empty just the same.
    #[test]
    fn prop_drain_notices_into_matches_return(
        ops in proptest::collection::vec(
            proptest::option::of(any::<u64>()), 1..64),
    ) {
        // `Some(n)` posts notice n; `None` drains (both ways) and compares.
        let mk = || Gpu::new(GpuSpec::a100(), HostCosts::free());
        let (mut a, mut b) = (mk(), mk());
        let mut buf = Vec::new();
        for op in &ops {
            match op {
                Some(n) => {
                    a.post_notice(*n);
                    b.post_notice(*n);
                }
                None => {
                    let returned = a.drain_notices();
                    b.drain_notices_into(&mut buf);
                    prop_assert_eq!(&returned, &buf);
                }
            }
        }
        let returned = a.drain_notices();
        b.drain_notices_into(&mut buf);
        prop_assert_eq!(&returned, &buf);
        // Both drained: a second drain of either flavour is empty.
        b.drain_notices_into(&mut buf);
        prop_assert!(buf.is_empty() && a.drain_notices().is_empty());
    }

    /// `take_failed_into` must report exactly the casualties that
    /// `take_failed` returns for an identical crash scenario.
    #[test]
    fn prop_take_failed_into_matches_return(
        seed in any::<u64>(),
        kernels in proptest::collection::vec(arb_kernel(), 2..12),
        crash_us in 10u64..400,
    ) {
        use sim_core::{FaultPlan, FaultSpec};
        let spec = FaultSpec {
            num_apps: 1,
            crash_count: 1,
            crash_window: (SimTime::from_micros(crash_us), SimTime::from_micros(crash_us)),
            ..FaultSpec::default()
        };
        let run = |mut gpu: Gpu| -> Gpu {
            gpu.set_fault_plan(FaultPlan::build(seed, &spec));
            let ctx = gpu.create_context(CtxKind::Default).unwrap();
            let q = gpu.create_queue(ctx).unwrap();
            for (i, &(us, sms, mem)) in kernels.iter().enumerate() {
                let k = KernelDesc::compute(
                    "k", SimDuration::from_micros(us), sms, mem);
                // Tag app 0 in the low bits so the crash plan targets it.
                gpu.launch(q, k, (i as u64) << 20).unwrap();
            }
            gpu.drain();
            gpu
        };
        let mut a = run(Gpu::new(GpuSpec::a100(), HostCosts::free()));
        let mut b = run(Gpu::new(GpuSpec::a100(), HostCosts::free()));
        let returned = a.take_failed();
        let mut buf = vec![gpu_sim::FailedKernel {
            // Pre-seed garbage to prove the buffer is cleared first.
            handle: gpu_sim::KernelHandle(u64::MAX),
            queue: gpu_sim::QueueId(u32::MAX),
            tag: u64::MAX,
        }];
        b.take_failed_into(&mut buf);
        prop_assert_eq!(&returned, &buf);
        // Drained: both flavours come back empty afterwards.
        b.take_failed_into(&mut buf);
        prop_assert!(buf.is_empty() && a.take_failed().is_empty());
    }
}
