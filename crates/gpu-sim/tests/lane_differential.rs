//! Differential suite for the lane-sharded engine (DESIGN.md §5h).
//!
//! Three pillars:
//!
//! 1. **Seq/par twin** — the parallel lane drain must be byte-identical to
//!    the sequential merge loop (`step_seq`) on both the request-log
//!    stream and the merged trace stream, for every worker count and both
//!    event-queue backends. This is the lane analogue of the PR 4/PR 5
//!    golden-digest pattern and runs in CI.
//! 2. **Pinned golden digest** — the canonical lane workload's merged
//!    request log hashes to a pinned constant, so cross-version drift in
//!    *either* path is caught even if both paths drift together.
//! 3. **Physics anchor** — on a decoupled workload (hard MIG partitions,
//!    compute-only, zero memory interference) the lane engine reproduces
//!    the monolithic [`Gpu`] engine's per-kernel completion times exactly.
//!    This pins lane sharding to the original physics where the two
//!    models are defined to coincide.

#![allow(clippy::unwrap_used, clippy::expect_used)] // test code

use std::collections::BTreeMap;

use gpu_sim::lanes::{LaneEngine, MergedOutput};
use gpu_sim::spec::{GpuSpec, HostCosts};
use gpu_sim::{CtxKind, EventQueueKind, Gpu, KernelDesc, StepOutput};
use sim_core::{SimDuration, SimRng, SimTime};

const LANES: usize = 4;
const SMS_PER_LANE: u32 = 27; // 4 × 27 = the A100's 108 SMs.
const QUEUES_PER_LANE: usize = 3;
const KERNELS_PER_QUEUE: usize = 40;

/// FNV-1a 64-bit, the workspace's stock digest for golden tests.
struct Fnv(u64);

impl Fnv {
    fn new() -> Self {
        Fnv(0xcbf2_9ce4_8422_2325)
    }
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(0x0100_0000_01b3);
        }
    }
    fn write_u64(&mut self, v: u64) {
        self.write(&v.to_le_bytes());
    }
}

/// One reproducible kernel plan: every engine variant launches exactly
/// this, so digests are comparable across engines and backends.
struct Plan {
    /// Per lane, per queue, the kernels (desc, tag, extra arrival delay).
    lanes: Vec<Vec<Vec<(KernelDesc, u64, SimDuration)>>>,
}

/// A mixed, interference-carrying workload: compute kernels of varying
/// width and memory intensity plus DMA transfers, with staggered
/// arrivals. Intra-lane coupling is real (non-zero `mem_intensity`);
/// cross-lane coupling is absent by construction (separate lanes).
fn canonical_plan(seed: u64) -> Plan {
    let mut rng = SimRng::new(seed);
    let mut lanes = Vec::new();
    for lane in 0..LANES {
        let mut queues = Vec::new();
        for q in 0..QUEUES_PER_LANE {
            let mut kernels = Vec::new();
            for k in 0..KERNELS_PER_QUEUE {
                let tag = ((lane as u64) << 40) | ((q as u64) << 32) | k as u64;
                let extra = SimDuration::from_nanos(rng.next_below(500_000));
                let desc = if q == QUEUES_PER_LANE - 1 && k % 3 == 0 {
                    if k % 6 == 0 {
                        KernelDesc::memcpy_h2d("h2d", 1 << (16 + rng.next_below(6)))
                    } else {
                        KernelDesc::memcpy_d2h("d2h", 1 << (16 + rng.next_below(6)))
                    }
                } else {
                    let dur = SimDuration::from_nanos(20_000 + rng.next_below(180_000));
                    let sms = 4 + rng.next_below(SMS_PER_LANE as u64) as u32;
                    let mem = match rng.next_below(3) {
                        0 => 0.0,
                        1 => 0.3,
                        _ => 0.7,
                    };
                    KernelDesc::compute("c", dur, sms, mem)
                };
                kernels.push((desc, tag, extra));
            }
            queues.push(kernels);
        }
        lanes.push(queues);
    }
    Plan { lanes }
}

/// A decoupled plan for the physics anchor: compute only, zero memory
/// intensity, so the monolithic engine's global interference term is
/// identically 1 and its per-partition allocator matches the per-lane one.
fn decoupled_plan(seed: u64) -> Plan {
    let mut rng = SimRng::new(seed);
    let mut lanes = Vec::new();
    for lane in 0..LANES {
        let mut queues = Vec::new();
        for q in 0..QUEUES_PER_LANE {
            let mut kernels = Vec::new();
            for k in 0..KERNELS_PER_QUEUE {
                let tag = ((lane as u64) << 40) | ((q as u64) << 32) | k as u64;
                let extra = SimDuration::from_nanos(rng.next_below(500_000));
                let dur = SimDuration::from_nanos(20_000 + rng.next_below(180_000));
                let sms = 4 + rng.next_below(SMS_PER_LANE as u64) as u32;
                kernels.push((KernelDesc::compute("c", dur, sms, 0.0), tag, extra));
            }
            queues.push(kernels);
        }
        lanes.push(queues);
    }
    Plan { lanes }
}

/// Builds a lane engine with one MIG-partition context per lane and
/// launches the plan. Host costs are free so arrival staggering comes
/// entirely from the plan's `extra` delays (a shared host timeline can be
/// folded into those delays; see `lanes` module docs).
fn build_lane_engine(plan: &Plan, kind: EventQueueKind, traced: bool) -> LaneEngine {
    let mut eng =
        LaneEngine::homogeneous(GpuSpec::a100(), HostCosts::free(), plan.lanes.len(), kind);
    if traced {
        eng.enable_tracing();
    }
    for (lane, queues) in plan.lanes.iter().enumerate() {
        let gpu = eng.lane_mut(lane);
        let ctx = gpu
            .create_context(CtxKind::MigPartition {
                sm_count: SMS_PER_LANE,
            })
            .expect("mig ctx");
        let qids: Vec<_> = (0..queues.len())
            .map(|_| gpu.create_queue(ctx).expect("queue"))
            .collect();
        for (q, kernels) in queues.iter().enumerate() {
            for (desc, tag, extra) in kernels {
                gpu.launch_delayed(qids[q], desc.clone(), *tag, *extra)
                    .expect("launch");
            }
        }
    }
    eng
}

/// Builds the *monolithic* equivalent: one `Gpu`, one MIG partition per
/// lane, same queues, same launch order.
fn build_monolithic(plan: &Plan) -> (Gpu, Vec<Vec<gpu_sim::QueueId>>) {
    let mut gpu = Gpu::new(GpuSpec::a100(), HostCosts::free());
    let mut qids = Vec::new();
    for queues in &plan.lanes {
        let ctx = gpu
            .create_context(CtxKind::MigPartition {
                sm_count: SMS_PER_LANE,
            })
            .expect("mig ctx");
        qids.push(
            (0..queues.len())
                .map(|_| gpu.create_queue(ctx).expect("queue"))
                .collect::<Vec<_>>(),
        );
    }
    for (lane, queues) in plan.lanes.iter().enumerate() {
        for (q, kernels) in queues.iter().enumerate() {
            for (desc, tag, extra) in kernels {
                gpu.launch_delayed(qids[lane][q], desc.clone(), *tag, *extra)
                    .expect("launch");
            }
        }
    }
    (gpu, qids)
}

fn digest_outputs(outs: &[MergedOutput]) -> u64 {
    let mut h = Fnv::new();
    for m in outs {
        h.write_u64(m.at.as_nanos());
        h.write_u64(m.lane as u64);
        match m.output {
            StepOutput::KernelDone { handle, queue, tag } => {
                h.write_u64(1);
                h.write_u64(handle.0);
                h.write_u64(queue.0 as u64);
                h.write_u64(tag);
            }
            StepOutput::HostWake { token } => {
                h.write_u64(2);
                h.write_u64(token);
            }
            StepOutput::ContextCrash { app } => {
                h.write_u64(3);
                h.write_u64(app as u64);
            }
        }
    }
    h.0
}

fn digest_trace(trace: &[(u32, sim_core::TraceEvent)]) -> u64 {
    let mut h = Fnv::new();
    for (lane, ev) in trace {
        h.write_u64(*lane as u64);
        h.write(ev.to_json().as_bytes());
    }
    h.0
}

/// tag → completion time, for engine-shape-independent comparison.
fn finish_map(outs: &[MergedOutput]) -> BTreeMap<u64, u64> {
    outs.iter()
        .filter_map(|m| match m.output {
            StepOutput::KernelDone { tag, .. } => Some((tag, m.at.as_nanos())),
            _ => None,
        })
        .collect()
}

#[test]
fn par_drain_matches_step_seq_byte_for_byte() {
    let plan = canonical_plan(0xB1E55);
    let mut seq_eng = build_lane_engine(&plan, EventQueueKind::FourAryHeap, true);
    let mut seq = Vec::new();
    seq_eng.drain_seq_into(&mut seq);
    let seq_digest = digest_outputs(&seq);
    let seq_trace = digest_trace(&seq_eng.merged_trace());
    assert!(!seq.is_empty());

    for workers in [1usize, 2, 4, 8] {
        let mut eng = build_lane_engine(&plan, EventQueueKind::FourAryHeap, true);
        eng.set_workers(workers);
        let mut par = Vec::new();
        eng.drain_par_into(&mut par);
        assert_eq!(par, seq, "output stream diverged at workers={workers}");
        assert_eq!(digest_outputs(&par), seq_digest);
        assert_eq!(
            digest_trace(&eng.merged_trace()),
            seq_trace,
            "merged trace diverged at workers={workers}"
        );
    }
}

#[test]
fn timing_wheel_backend_is_bit_identical() {
    let plan = canonical_plan(0xB1E55);
    let mut heap_eng = build_lane_engine(&plan, EventQueueKind::FourAryHeap, false);
    let mut wheel_eng = build_lane_engine(&plan, EventQueueKind::TimingWheel, false);
    let (mut heap, mut wheel) = (Vec::new(), Vec::new());
    heap_eng.drain_seq_into(&mut heap);
    wheel_eng.drain_par_into(&mut wheel);
    assert_eq!(heap, wheel);
}

#[test]
fn barrier_rounds_reproduce_one_shot_drain() {
    let plan = canonical_plan(0xB1E55);
    let mut oneshot_eng = build_lane_engine(&plan, EventQueueKind::FourAryHeap, false);
    let mut oneshot = Vec::new();
    oneshot_eng.drain_par_into(&mut oneshot);

    let mut eng = build_lane_engine(&plan, EventQueueKind::FourAryHeap, false);
    let mut rounds = Vec::new();
    let mut barrier = SimTime::from_micros(750);
    while !eng.is_idle() {
        eng.advance_par_until(barrier, &mut rounds);
        barrier += SimDuration::from_micros(750);
    }
    assert_eq!(rounds, oneshot);
}

#[test]
fn golden_request_log_digest_is_pinned() {
    // Pins the canonical workload's merged stream across refactors. If a
    // deliberate physics/engine change moves this, update the constant in
    // the same commit and say why in the message.
    let plan = canonical_plan(0xB1E55);
    let mut eng = build_lane_engine(&plan, EventQueueKind::FourAryHeap, false);
    let mut out = Vec::new();
    eng.drain_par_into(&mut out);
    let d = digest_outputs(&out);
    assert_eq!(
        d, GOLDEN_LANE_DIGEST,
        "canonical lane digest drifted: got {d:#018x}"
    );
}

const GOLDEN_LANE_DIGEST: u64 = 0x4388_1671_15e1_9e40;

#[test]
fn physics_anchor_matches_monolithic_engine() {
    // On hard partitions with zero memory interference the lane engine
    // and the monolithic engine describe the same machine; completion
    // times must agree exactly (handles/slots legitimately differ).
    let plan = decoupled_plan(0xA11C);
    let mut lane_eng = build_lane_engine(&plan, EventQueueKind::FourAryHeap, false);
    let mut lane_out = Vec::new();
    lane_eng.drain_par_into(&mut lane_out);
    let lane_map = finish_map(&lane_out);

    let (mut gpu, _) = build_monolithic(&plan);
    let mut mono_out = Vec::new();
    gpu.drain_outputs_into(&mut mono_out);
    let mono_map: BTreeMap<u64, u64> = mono_out
        .iter()
        .filter_map(|(at, o)| match o {
            StepOutput::KernelDone { tag, .. } => Some((*tag, at.as_nanos())),
            _ => None,
        })
        .collect();

    assert_eq!(lane_map.len(), mono_map.len());
    assert_eq!(lane_map, mono_map);
}
