//! Differential twin for the per-resource interference model
//! (DESIGN.md §5j).
//!
//! Three pillars:
//!
//! 1. **Collapse twin** — [`ChannelModel::PerResource`] with every
//!    kernel's demand collapsed onto one channel and that channel's
//!    α/base/cap matched to the scalar curve
//!    ([`GpuSpec::collapse_twin`]) must be *byte-identical* to
//!    [`ChannelModel::Scalar`]: same request-log stream, same digests,
//!    same trace digests, across a seeded workload matrix, on the
//!    monolithic [`Gpu`] and on the lane engine at worker counts 1/2/4.
//!    This is what lets the richer model land without moving a single
//!    golden digest.
//! 2. **Property tests** — the channel slowdown formula is monotone in
//!    each channel's pressure, never below 1.0, capped per channel, and
//!    permutation-invariant across co-resident kernel order.
//! 3. **Divergence witness** — a genuinely multi-channel workload under
//!    the calibrated model *does* diverge from scalar, so the twin isn't
//!    vacuously comparing two identical code paths.

#![allow(clippy::unwrap_used, clippy::expect_used)] // test code

use gpu_sim::lanes::{LaneEngine, MergedOutput};
use gpu_sim::spec::{GpuSpec, HostCosts};
use gpu_sim::{
    Channel, ChannelDemand, ChannelParams, CtxKind, EventQueueKind, Gpu, KernelDesc, StepOutput,
    NUM_CHANNELS,
};
use proptest::prelude::*;
use sim_core::trace::BufferSink;
use sim_core::{SimDuration, SimRng, SimTime};

const QUEUES: usize = 6;
const KERNELS_PER_QUEUE: usize = 40;
const SEED_MATRIX: [u64; 4] = [0xC0FFEE, 0xB1E55, 7, 0xDEAD_BEEF];

/// FNV-1a 64-bit, the workspace's stock digest for golden tests.
struct Fnv(u64);

impl Fnv {
    fn new() -> Self {
        Fnv(0xcbf2_9ce4_8422_2325)
    }
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(0x0100_0000_01b3);
        }
    }
    fn write_u64(&mut self, v: u64) {
        self.write(&v.to_le_bytes());
    }
}

/// One reproducible kernel plan: per queue, (desc, tag, extra delay).
/// Every spec variant launches exactly this, so digests are comparable.
struct Plan {
    queues: Vec<Vec<(KernelDesc, u64, SimDuration)>>,
}

/// A mixed, interference-heavy workload on shared contexts: compute
/// kernels of varying width and memory intensity (co-running across MPS
/// contexts, so the interference term is constantly exercised) plus DMA
/// transfers, with staggered arrivals. `collapse_on` routes each
/// kernel's `mem_intensity` demand onto the given channel so the same
/// plan can test the collapse on any channel.
fn canonical_plan(seed: u64, collapse_on: Channel) -> Plan {
    let mut rng = SimRng::new(seed);
    let mut queues = Vec::new();
    for q in 0..QUEUES {
        let mut kernels = Vec::new();
        for k in 0..KERNELS_PER_QUEUE {
            let tag = ((q as u64) << 32) | k as u64;
            let extra = SimDuration::from_nanos(rng.next_below(500_000));
            let desc = if q == QUEUES - 1 && k % 3 == 0 {
                if k % 6 == 0 {
                    KernelDesc::memcpy_h2d("h2d", 1 << (16 + rng.next_below(6)))
                } else {
                    KernelDesc::memcpy_d2h("d2h", 1 << (16 + rng.next_below(6)))
                }
            } else {
                let dur = SimDuration::from_nanos(20_000 + rng.next_below(180_000));
                let sms = 4 + rng.next_below(60) as u32;
                let mem = match rng.next_below(4) {
                    0 => 0.0,
                    1 => 0.3,
                    2 => 0.7,
                    _ => 0.9,
                };
                KernelDesc::compute("c", dur, sms, mem)
                    .with_demand(ChannelDemand::collapsed(collapse_on, mem))
            };
            kernels.push((desc, tag, extra));
        }
        queues.push(kernels);
    }
    Plan { queues }
}

/// Builds a monolithic `Gpu` under `spec` — two MPS-affinity contexts
/// and one default context sharing the SM pool, queues spread across
/// them — and launches the plan.
fn build_gpu(plan: &Plan, spec: GpuSpec, sink: Option<BufferSink>) -> Gpu {
    let mut gpu = Gpu::new(spec, HostCosts::free());
    if let Some(s) = sink {
        gpu.set_trace_sink(Box::new(s));
    }
    let ctxs = [
        gpu.create_context(CtxKind::MpsAffinity { sm_cap: 54 })
            .expect("ctx"),
        gpu.create_context(CtxKind::MpsAffinity { sm_cap: 54 })
            .expect("ctx"),
        gpu.create_context(CtxKind::Default).expect("ctx"),
    ];
    for (q, kernels) in plan.queues.iter().enumerate() {
        let qid = gpu.create_queue(ctxs[q % ctxs.len()]).expect("queue");
        for (desc, tag, extra) in kernels {
            gpu.launch_delayed(qid, desc.clone(), *tag, *extra)
                .expect("launch");
        }
    }
    gpu
}

/// Builds a lane engine under `spec`: 2 lanes, each with one
/// MIG-partition context carrying half the plan's queues (intra-lane
/// interference stays live through the shared interference term).
fn build_lanes(plan: &Plan, spec: GpuSpec, traced: bool) -> LaneEngine {
    let mut eng = LaneEngine::homogeneous(spec, HostCosts::free(), 2, EventQueueKind::FourAryHeap);
    if traced {
        eng.enable_tracing();
    }
    for lane in 0..2 {
        let gpu = eng.lane_mut(lane);
        let ctx = gpu
            .create_context(CtxKind::MigPartition { sm_count: 54 })
            .expect("mig ctx");
        for (q, kernels) in plan.queues.iter().enumerate() {
            if q % 2 != lane {
                continue;
            }
            let qid = gpu.create_queue(ctx).expect("queue");
            for (desc, tag, extra) in kernels {
                gpu.launch_delayed(qid, desc.clone(), *tag, *extra)
                    .expect("launch");
            }
        }
    }
    eng
}

fn digest_gpu_outputs(outs: &[(SimTime, StepOutput)]) -> u64 {
    let mut h = Fnv::new();
    for (at, o) in outs {
        h.write_u64(at.as_nanos());
        match o {
            StepOutput::KernelDone { handle, queue, tag } => {
                h.write_u64(1);
                h.write_u64(handle.0);
                h.write_u64(queue.0 as u64);
                h.write_u64(*tag);
            }
            StepOutput::HostWake { token } => {
                h.write_u64(2);
                h.write_u64(*token);
            }
            StepOutput::ContextCrash { app } => {
                h.write_u64(3);
                h.write_u64(*app as u64);
            }
        }
    }
    h.0
}

fn digest_merged(outs: &[MergedOutput]) -> u64 {
    let mut h = Fnv::new();
    for m in outs {
        h.write_u64(m.at.as_nanos());
        h.write_u64(m.lane as u64);
        match m.output {
            StepOutput::KernelDone { handle, queue, tag } => {
                h.write_u64(1);
                h.write_u64(handle.0);
                h.write_u64(queue.0 as u64);
                h.write_u64(tag);
            }
            StepOutput::HostWake { token } => {
                h.write_u64(2);
                h.write_u64(token);
            }
            StepOutput::ContextCrash { app } => {
                h.write_u64(3);
                h.write_u64(app as u64);
            }
        }
    }
    h.0
}

fn digest_trace_events(events: &[sim_core::TraceEvent]) -> u64 {
    let mut h = Fnv::new();
    for ev in events {
        h.write(ev.to_json().as_bytes());
    }
    h.0
}

fn digest_lane_trace(trace: &[(u32, sim_core::TraceEvent)]) -> u64 {
    let mut h = Fnv::new();
    for (lane, ev) in trace {
        h.write_u64(*lane as u64);
        h.write(ev.to_json().as_bytes());
    }
    h.0
}

/// Runs the plan on the monolithic engine under `spec` and returns
/// (output stream, output digest, trace digest).
fn run_monolithic(plan: &Plan, spec: GpuSpec) -> (Vec<(SimTime, StepOutput)>, u64, u64) {
    let sink = BufferSink::new();
    let mut gpu = build_gpu(plan, spec, Some(sink.clone()));
    let mut out = Vec::new();
    gpu.drain_outputs_into(&mut out);
    drop(gpu.take_trace_sink());
    let events = sink.take();
    assert!(!out.is_empty());
    assert!(!events.is_empty());
    let od = digest_gpu_outputs(&out);
    let td = digest_trace_events(&events);
    (out, od, td)
}

#[test]
fn collapse_twin_is_bit_identical_on_monolithic_gpu() {
    // The seeded workload matrix: four seeds, collapse on the DRAM-BW
    // channel (the default constructor shape) and on L2 (any single
    // channel collapses, not just the calibrated one).
    for &seed in &SEED_MATRIX {
        for ch in [Channel::DramBw, Channel::L2] {
            let plan = canonical_plan(seed, ch);
            let scalar_spec = GpuSpec::a100();
            let twin_spec = scalar_spec.collapse_twin(ch);
            let (s_out, s_od, s_td) = run_monolithic(&plan, scalar_spec);
            let (t_out, t_od, t_td) = run_monolithic(&plan, twin_spec);
            assert_eq!(s_out, t_out, "stream diverged: seed={seed:#x} ch={ch:?}");
            assert_eq!(
                s_od, t_od,
                "output digest diverged: seed={seed:#x} ch={ch:?}"
            );
            assert_eq!(
                s_td, t_td,
                "trace digest diverged: seed={seed:#x} ch={ch:?}"
            );
        }
    }
}

#[test]
fn collapse_twin_is_bit_identical_across_worker_counts() {
    // Lane-sharded twin: the per-resource collapse must not perturb the
    // deterministic (time, lane, seq) merge at any worker count.
    let plan = canonical_plan(0xB1E55, Channel::DramBw);
    let mut scalar_eng = build_lanes(&plan, GpuSpec::a100(), true);
    let mut scalar_out = Vec::new();
    scalar_eng.drain_seq_into(&mut scalar_out);
    let scalar_od = digest_merged(&scalar_out);
    let scalar_td = digest_lane_trace(&scalar_eng.merged_trace());
    assert!(!scalar_out.is_empty());

    for workers in [1usize, 2, 4] {
        let twin_spec = GpuSpec::a100().collapse_twin(Channel::DramBw);
        let mut eng = build_lanes(&plan, twin_spec, true);
        eng.set_workers(workers);
        let mut out = Vec::new();
        eng.drain_par_into(&mut out);
        assert_eq!(out, scalar_out, "stream diverged at workers={workers}");
        assert_eq!(
            digest_merged(&out),
            scalar_od,
            "digest diverged at workers={workers}"
        );
        assert_eq!(
            digest_lane_trace(&eng.merged_trace()),
            scalar_td,
            "trace digest diverged at workers={workers}"
        );
    }
}

#[test]
fn calibrated_model_diverges_from_scalar_on_multi_channel_demand() {
    // Witness that the twin comparison is not vacuous: a genuinely
    // multi-channel workload under the calibrated per-resource model
    // produces a different completion stream than the scalar model.
    let seed = 0xB1E55;
    let mut rng = SimRng::new(seed);
    let mut plan = Plan { queues: Vec::new() };
    for q in 0..4usize {
        let mut kernels = Vec::new();
        for k in 0..30usize {
            let dur = SimDuration::from_nanos(20_000 + rng.next_below(180_000));
            let sms = 4 + rng.next_below(60) as u32;
            let demand = ChannelDemand::new(0.3, 0.6, 0.5, 0.1);
            kernels.push((
                KernelDesc::compute("c", dur, sms, 0.5).with_demand(demand),
                ((q as u64) << 32) | k as u64,
                SimDuration::from_nanos(rng.next_below(500_000)),
            ));
        }
        plan.queues.push(kernels);
    }
    let (_, scalar_od, _) = run_monolithic(&plan, GpuSpec::a100());
    let (_, pr_od, _) = run_monolithic(&plan, GpuSpec::a100_per_resource());
    assert_ne!(
        scalar_od, pr_od,
        "per-resource model never diverged from scalar"
    );
}

// ---------------------------------------------------------------------------
// Property tests for the channel slowdown formula.
// ---------------------------------------------------------------------------

type DemandTuple = (f64, f64, f64, f64);

fn demand_of(d: DemandTuple) -> ChannelDemand {
    ChannelDemand::new(d.0, d.1, d.2, d.3)
}

const UNIT: std::ops::Range<f64> = 0.0f64..1.0;
const TRAFFIC: std::ops::Range<f64> = 0.0f64..4.0;

proptest! {
    /// Slowdown is never below 1.0 and never above the per-channel caps.
    #[test]
    fn slowdown_bounded_below_and_capped(
        d in (UNIT, UNIT, UNIT, UNIT),
        share in 0.0f64..1.0,
        t in (TRAFFIC, TRAFFIC, TRAFFIC, TRAFFIC),
    ) {
        let p = ChannelParams::a100();
        let traffic = [t.0, t.1, t.2, t.3];
        let s = p.slowdown(&demand_of(d), share, &traffic);
        prop_assert!(s >= 1.0, "slowdown {} below 1", s);
        let max_cap = p.cap.iter().cloned().fold(1.0f64, f64::max);
        prop_assert!(s <= max_cap, "slowdown {} above max cap {}", s, max_cap);
    }

    /// Slowdown is monotone (non-decreasing) in each channel's traffic.
    #[test]
    fn slowdown_monotone_in_each_channel_pressure(
        d in (UNIT, UNIT, UNIT, UNIT),
        share in 0.0f64..1.0,
        t in (TRAFFIC, TRAFFIC, TRAFFIC, TRAFFIC),
        bump in 0.0f64..2.0,
        ch in 0usize..NUM_CHANNELS,
    ) {
        let p = ChannelParams::a100();
        let demand = demand_of(d);
        let traffic = [t.0, t.1, t.2, t.3];
        let base = p.slowdown(&demand, share, &traffic);
        let mut more = traffic;
        more[ch] += bump;
        let bumped = p.slowdown(&demand, share, &more);
        prop_assert!(
            bumped >= base,
            "pressure bump on channel {} lowered slowdown: {} -> {}", ch, base, bumped
        );
    }

    /// Each channel respects its own cap: with pressure confined to one
    /// channel, the slowdown never exceeds that channel's cap even under
    /// absurd traffic.
    #[test]
    fn slowdown_capped_per_channel(
        intensity in 0.0f64..1.0,
        traffic_mag in 0.0f64..1000.0,
        ch in 0usize..NUM_CHANNELS,
    ) {
        let p = ChannelParams::a100();
        let demand = ChannelDemand::collapsed(Channel::ALL[ch], intensity);
        let mut traffic = [0.0; NUM_CHANNELS];
        traffic[ch] = traffic_mag;
        let s = p.slowdown(&demand, 0.0, &traffic);
        prop_assert!(s <= p.cap[ch], "channel {}: slowdown {} above its cap {}", ch, s, p.cap[ch]);
    }

    /// The slowdown a victim sees is invariant (to f64 accumulation
    /// noise) under permutation of its co-residents' order: traffic is a
    /// sum, so co-resident order must not matter.
    #[test]
    fn slowdown_permutation_invariant_across_co_residents(
        demands in proptest::collection::vec(((UNIT, UNIT, UNIT, UNIT), 0.0f64..0.5), 2..8),
        v in (UNIT, UNIT, UNIT, UNIT),
        rotation in 0usize..8,
    ) {
        let p = ChannelParams::a100();
        let victim = demand_of(v);
        let accumulate = |list: &[(DemandTuple, f64)]| {
            let mut t = [0.0f64; NUM_CHANNELS];
            for (d, share) in list {
                let d = demand_of(*d);
                for c in 0..NUM_CHANNELS {
                    t[c] += d.0[c] * share;
                }
            }
            t
        };
        let forward = accumulate(&demands);
        let mut rotated_list = demands.clone();
        let len = rotated_list.len();
        rotated_list.rotate_left(rotation % len);
        let rotated = accumulate(&rotated_list);
        let a = p.slowdown(&victim, 0.25, &forward);
        let b = p.slowdown(&victim, 0.25, &rotated);
        prop_assert!((a - b).abs() <= 1e-9 * a.max(1.0), "permutation moved slowdown: {} vs {}", a, b);
    }
}
