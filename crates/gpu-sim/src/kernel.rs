//! Kernel descriptions and the isolated duration model.
//!
//! The simulator models a computational kernel as a *malleable job*: it
//! carries a total amount of work in SM·nanoseconds and can productively use
//! up to `max_sms` SMs at once. Running on an allocation of `n` SMs in
//! isolation, its duration is
//!
//! ```text
//! t(n) = work / min(n, max_sms)
//! ```
//!
//! which is exactly the shape of the `t[n%][k]` curves the BLESS profiler
//! tabulates (§4.2): linear speedup until the kernel's own parallelism limit
//! (the paper's `d%`), flat beyond it.

use std::sync::Arc;

use sim_core::SimDuration;

use crate::channel::{Channel, ChannelDemand};

/// Identifier of a kernel table registered with
/// [`crate::Gpu::register_kernel_table`]: an interned `Arc<[KernelDesc]>`
/// (typically one application's profiled kernel sequence) that launch
/// calls reference by `(table, index)` instead of passing descriptors by
/// value. This keeps the steady-state launch path free of descriptor
/// clones and of the per-group `Vec` that [`crate::Gpu::launch_graph`]
/// requires.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct KernelTableId(pub u32);

/// What a kernel does; determines which resource it occupies.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum KernelKind {
    /// A computational kernel occupying SMs.
    Compute {
        /// Whether the kernel runs on tensor cores (BERT inference in the
        /// paper). Informational: tensor-core kernels are typically shorter
        /// and more memory-bound per SM·ns of work.
        tensor_core: bool,
    },
    /// Host-to-device copy over PCIe.
    MemcpyH2D {
        /// Transfer size in bytes.
        bytes: u64,
    },
    /// Device-to-host copy over PCIe.
    MemcpyD2H {
        /// Transfer size in bytes.
        bytes: u64,
    },
}

impl KernelKind {
    /// True for SM-occupying computational kernels.
    pub fn is_compute(self) -> bool {
        matches!(self, KernelKind::Compute { .. })
    }

    /// True for DMA transfers (either direction).
    pub fn is_memcpy(self) -> bool {
        !self.is_compute()
    }
}

/// Static description of one GPU kernel.
#[derive(Clone, Debug)]
pub struct KernelDesc {
    /// Human-readable name (e.g. `"conv2d_3"`); shared cheaply across the
    /// many clones a kernel description goes through (profiles, squads,
    /// launches).
    pub name: Arc<str>,
    /// What the kernel does.
    pub kind: KernelKind,
    /// Total work in SM·nanoseconds (compute kernels only; 0 for memcpy).
    pub work: f64,
    /// Maximum number of SMs the kernel can productively occupy — the
    /// paper's per-kernel `d%` expressed in SM count. Always ≥ 1 for
    /// compute kernels.
    pub max_sms: u32,
    /// Memory-bandwidth intensity in `[0, 1]`; drives the interference
    /// model when kernels co-run under [`crate::ChannelModel::Scalar`].
    pub mem_intensity: f64,
    /// Per-channel resource demand; drives the interference model under
    /// [`crate::ChannelModel::PerResource`]. The constructors collapse
    /// `mem_intensity` onto [`Channel::DramBw`], which keeps the default
    /// per-resource behaviour equivalent to the scalar model; use
    /// [`KernelDesc::with_demand`] for richer vectors.
    pub demand: ChannelDemand,
}

impl KernelDesc {
    /// Builds a compute kernel from its duration when given at least
    /// `max_sms` SMs (its "full speed" duration).
    ///
    /// # Panics
    ///
    /// Panics if `max_sms` is 0 or `mem_intensity` is outside `[0, 1]`.
    pub fn compute(
        name: impl Into<Arc<str>>,
        full_speed_duration: SimDuration,
        max_sms: u32,
        mem_intensity: f64,
    ) -> Self {
        assert!(max_sms >= 1, "a compute kernel needs at least one SM");
        assert!(
            (0.0..=1.0).contains(&mem_intensity),
            "mem_intensity must be in [0,1], got {mem_intensity}"
        );
        KernelDesc {
            name: name.into(),
            kind: KernelKind::Compute { tensor_core: false },
            work: full_speed_duration.as_nanos() as f64 * max_sms as f64,
            max_sms,
            mem_intensity,
            demand: ChannelDemand::collapsed(Channel::DramBw, mem_intensity),
        }
    }

    /// Same as [`KernelDesc::compute`] but flagged as a tensor-core kernel.
    pub fn tensor_compute(
        name: impl Into<Arc<str>>,
        full_speed_duration: SimDuration,
        max_sms: u32,
        mem_intensity: f64,
    ) -> Self {
        let mut k = Self::compute(name, full_speed_duration, max_sms, mem_intensity);
        k.kind = KernelKind::Compute { tensor_core: true };
        k
    }

    /// Builds a host-to-device memcpy kernel.
    pub fn memcpy_h2d(name: impl Into<Arc<str>>, bytes: u64) -> Self {
        KernelDesc {
            name: name.into(),
            kind: KernelKind::MemcpyH2D { bytes },
            work: 0.0,
            max_sms: 0,
            mem_intensity: 0.0,
            demand: ChannelDemand::ZERO,
        }
    }

    /// Builds a device-to-host memcpy kernel.
    pub fn memcpy_d2h(name: impl Into<Arc<str>>, bytes: u64) -> Self {
        KernelDesc {
            name: name.into(),
            kind: KernelKind::MemcpyD2H { bytes },
            work: 0.0,
            max_sms: 0,
            mem_intensity: 0.0,
            demand: ChannelDemand::ZERO,
        }
    }

    /// This kernel with an explicit per-channel demand vector (only
    /// meaningful under [`crate::ChannelModel::PerResource`]; the scalar
    /// model keeps reading `mem_intensity`).
    pub fn with_demand(mut self, demand: ChannelDemand) -> Self {
        self.demand = demand;
        self
    }

    /// Isolated (interference-free) duration on an allocation of `sms` SMs.
    ///
    /// For memcpy kernels this is the uncontended PCIe transfer time given
    /// `pcie_bytes_per_sec`; `sms` is ignored.
    pub fn duration_isolated(&self, sms: f64, pcie_bytes_per_sec: f64) -> SimDuration {
        match self.kind {
            KernelKind::Compute { .. } => {
                let eff = sms.min(self.max_sms as f64);
                if eff <= 0.0 {
                    return SimDuration::MAX;
                }
                SimDuration::from_nanos((self.work / eff).round() as u64)
            }
            KernelKind::MemcpyH2D { bytes } | KernelKind::MemcpyD2H { bytes } => {
                SimDuration::from_secs_f64(bytes as f64 / pcie_bytes_per_sec)
            }
        }
    }

    /// The kernel's "full speed" duration: its duration when allocated at
    /// least `max_sms` SMs (or the uncontended transfer time for memcpy).
    pub fn full_speed_duration(&self, pcie_bytes_per_sec: f64) -> SimDuration {
        self.duration_isolated(self.max_sms.max(1) as f64, pcie_bytes_per_sec)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const PCIE: f64 = 25.0e9;

    #[test]
    fn compute_duration_scales_linearly_up_to_max_sms() {
        let k = KernelDesc::compute("k", SimDuration::from_micros(100), 54, 0.2);
        // At max_sms, full speed.
        assert_eq!(
            k.duration_isolated(54.0, PCIE),
            SimDuration::from_micros(100)
        );
        // At half the SMs, twice the duration.
        assert_eq!(
            k.duration_isolated(27.0, PCIE),
            SimDuration::from_micros(200)
        );
        // Extra SMs beyond max_sms do not help.
        assert_eq!(
            k.duration_isolated(108.0, PCIE),
            SimDuration::from_micros(100)
        );
    }

    #[test]
    fn zero_allocation_never_finishes() {
        let k = KernelDesc::compute("k", SimDuration::from_micros(10), 10, 0.0);
        assert_eq!(k.duration_isolated(0.0, PCIE), SimDuration::MAX);
    }

    #[test]
    fn memcpy_duration_from_bandwidth() {
        let k = KernelDesc::memcpy_h2d("h2d", 25_000_000); // 25 MB at 25 GB/s = 1 ms
        assert_eq!(k.duration_isolated(0.0, PCIE), SimDuration::from_millis(1));
        assert!(k.kind.is_memcpy());
        assert!(!k.kind.is_compute());
    }

    #[test]
    fn tensor_flag_is_preserved() {
        let k = KernelDesc::tensor_compute("mm", SimDuration::from_micros(5), 108, 0.5);
        assert_eq!(k.kind, KernelKind::Compute { tensor_core: true });
    }

    #[test]
    #[should_panic(expected = "at least one SM")]
    fn compute_rejects_zero_sms() {
        let _ = KernelDesc::compute("bad", SimDuration::from_micros(1), 0, 0.0);
    }

    #[test]
    #[should_panic(expected = "mem_intensity")]
    fn compute_rejects_bad_intensity() {
        let _ = KernelDesc::compute("bad", SimDuration::from_micros(1), 1, 1.5);
    }

    #[test]
    fn work_round_trips_through_duration() {
        let d = SimDuration::from_nanos(12_345);
        let k = KernelDesc::compute("k", d, 33, 0.7);
        assert_eq!(k.full_speed_duration(PCIE), d);
    }

    #[test]
    fn default_demand_collapses_mem_intensity_onto_dram() {
        let k = KernelDesc::compute("k", SimDuration::from_micros(10), 8, 0.6);
        assert_eq!(k.demand.get(Channel::DramBw), 0.6);
        assert_eq!(k.demand.get(Channel::Compute), 0.0);
        assert_eq!(k.demand.get(Channel::L2), 0.0);
        assert_eq!(k.demand.get(Channel::Pcie), 0.0);
        assert_eq!(
            KernelDesc::memcpy_h2d("h2d", 1024).demand,
            ChannelDemand::ZERO
        );
    }

    #[test]
    fn with_demand_overrides_the_default_vector() {
        let d = ChannelDemand::new(0.2, 0.5, 0.3, 0.1);
        let k = KernelDesc::compute("k", SimDuration::from_micros(10), 8, 0.6).with_demand(d);
        assert_eq!(k.demand, d);
        assert_eq!(k.mem_intensity, 0.6);
    }
}
