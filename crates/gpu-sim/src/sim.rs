//! The simulation loop: request arrivals + a host scheduler driving a GPU.
//!
//! A [`HostDriver`] is the host-side scheduling system under test (BLESS or
//! one of the baselines). The [`Simulation`] owns the [`Gpu`] and a sorted
//! list of request arrivals, and dispatches three kinds of callbacks to the
//! driver:
//!
//! * [`HostDriver::on_request`] when a client request arrives,
//! * [`HostDriver::on_kernel_done`] when a launched kernel finishes,
//! * [`HostDriver::on_wake`] when a self-requested host timer fires.
//!
//! Every callback hands the driver `&mut Gpu`, through which it launches
//! kernels, charges host time, and manages contexts.

use sim_core::{DynEventQueue, EventQueueKind, SimTime};

use crate::engine::{FailedKernel, Gpu, KernelHandle, QueueId, StepOutput};

/// A client request arriving at the host scheduler.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RequestArrival {
    /// Index of the application (tenant) issuing the request.
    pub app: usize,
    /// Per-application request sequence number.
    pub req: usize,
    /// Arrival time.
    pub at: SimTime,
}

/// Completion notification for a launched kernel.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct KernelDone {
    /// The finished instance.
    pub handle: KernelHandle,
    /// Queue it ran on.
    pub queue: QueueId,
    /// The tag passed at launch.
    pub tag: u64,
    /// Completion time.
    pub at: SimTime,
}

/// A host-side GPU scheduling system under simulation.
///
/// All methods have empty default bodies so drivers implement only what
/// they react to.
pub trait HostDriver {
    /// Called once before any events, with the clock at zero.
    fn on_start(&mut self, gpu: &mut Gpu) {
        let _ = gpu;
    }

    /// A client request arrived.
    fn on_request(&mut self, gpu: &mut Gpu, req: RequestArrival) {
        let _ = (gpu, req);
    }

    /// A kernel completed on the device.
    fn on_kernel_done(&mut self, gpu: &mut Gpu, done: KernelDone) {
        let _ = (gpu, done);
    }

    /// A wakeup requested via [`Gpu::wake_at`] fired.
    fn on_wake(&mut self, gpu: &mut Gpu, token: u64) {
        let _ = (gpu, token);
    }

    /// An injected context crash killed `failed` kernels of `app` (see
    /// [`Gpu::set_fault_plan`]). Drivers that support fault injection
    /// re-submit the casualties; the default body drops them, which loses
    /// the requests — acceptable for baselines that never run under faults.
    fn on_crash(&mut self, gpu: &mut Gpu, app: u32, failed: &[FailedKernel]) {
        let _ = (gpu, app, failed);
    }
}

/// Outcome of a simulation run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RunOutcome {
    /// All arrivals were delivered and the device went idle.
    Completed,
    /// The horizon was reached with work still outstanding.
    HorizonReached,
    /// The event budget was exhausted (runaway driver protection).
    EventBudgetExhausted,
    /// No events remain but kernels are still live on the device — a
    /// starved kernel (e.g. a zero-capacity context) or a driver that
    /// stopped feeding; indicates a scheduling bug.
    Stalled,
}

/// Encodes `(app, kernel index)` into a launch tag — the shared
/// convention used by every driver in this workspace (20 bits of app id,
/// the kernel index above them).
pub fn encode_tag(app: usize, kernel: usize) -> u64 {
    debug_assert!(app < (1 << 20), "app id exceeds the tag field");
    ((kernel as u64) << 20) | app as u64
}

/// Decodes a tag produced by [`encode_tag`] into `(app, kernel index)`.
pub fn decode_tag(tag: u64) -> (usize, usize) {
    ((tag & 0xF_FFFF) as usize, (tag >> 20) as usize)
}

/// Reaction of a workload client to a driver notice: optionally inject the
/// next request (closed-loop clients schedule a new arrival after each
/// completion).
/// `Send` so a whole [`Simulation`] can move across threads — the cluster
/// chaos runner drains surviving devices on a worker pool.
pub type NoticeHandler = Box<dyn FnMut(u64, SimTime) -> Option<RequestArrival> + Send>;

/// Owns a [`Gpu`] and a schedule of request arrivals, and runs a driver
/// against them.
pub struct Simulation<D: HostDriver> {
    /// The simulated GPU (public so experiment code can inspect stats).
    pub gpu: Gpu,
    /// The driver under test.
    pub driver: D,
    arrivals: DynEventQueue<RequestArrival>,
    pending_count: usize,
    notice_handler: Option<NoticeHandler>,
    max_events: u64,
    started: bool,
    /// Scratch: driver notices drained here each callback round, so the
    /// loop allocates nothing in steady state.
    notice_buf: Vec<u64>,
    /// Scratch: crashed-kernel casualties drained here per crash event.
    failed_buf: Vec<FailedKernel>,
}

impl<D: HostDriver> Simulation<D> {
    /// Creates a simulation over the given arrivals (sorted by time
    /// internally; ties keep their input order).
    ///
    /// The arrival queue's backend auto-selects by schedule depth
    /// ([`EventQueueKind::for_depth`]): short schedules use the four-ary
    /// heap, long fleet replays the timing wheel. Both pop in identical
    /// order, so the choice never changes simulation output.
    pub fn new(gpu: Gpu, driver: D, arrivals: Vec<RequestArrival>) -> Self {
        let mut sorted = arrivals;
        sorted.sort_by_key(|a| a.at);
        let mut q = DynEventQueue::new(EventQueueKind::for_depth(sorted.len()));
        for a in sorted {
            q.push(a.at, a);
        }
        let pending_count = q.len();
        Simulation {
            gpu,
            driver,
            arrivals: q,
            pending_count,
            notice_handler: None,
            max_events: 200_000_000,
            started: false,
            notice_buf: Vec::new(),
            failed_buf: Vec::new(),
        }
    }

    /// The backend the arrival queue auto-selected at construction.
    pub fn arrival_queue_kind(&self) -> EventQueueKind {
        self.arrivals.kind()
    }

    /// Overrides the runaway-protection event budget.
    pub fn with_max_events(mut self, max_events: u64) -> Self {
        self.max_events = max_events;
        self
    }

    /// Installs a closed-loop notice handler: every notice the driver posts
    /// via [`Gpu::post_notice`] is passed to `handler`, and any returned
    /// arrival is injected into the schedule.
    pub fn with_notice_handler(mut self, handler: NoticeHandler) -> Self {
        self.notice_handler = Some(handler);
        self
    }

    /// Injects an additional future arrival while the simulation runs.
    pub fn inject_arrival(&mut self, arrival: RequestArrival) {
        self.arrivals.push(arrival.at, arrival);
        self.pending_count += 1;
    }

    /// Removes and returns every arrival not yet delivered to the driver,
    /// in time order (ties keep insertion order). Part of the
    /// drain-and-snapshot path: after quiescing the device at a barrier,
    /// the undelivered tail joins the migration checkpoint so no request
    /// is lost when the simulation is retired.
    pub fn take_pending_arrivals(&mut self) -> Vec<RequestArrival> {
        let mut out = Vec::with_capacity(self.arrivals.len());
        while let Some((_, a)) = self.arrivals.pop() {
            out.push(a);
        }
        self.pending_count = 0;
        out
    }

    fn process_notices(&mut self) {
        // Drain into the reusable scratch buffer (taken out for the loop so
        // `self` stays borrowable); both Vecs keep their capacity.
        let mut notices = std::mem::take(&mut self.notice_buf);
        self.gpu.drain_notices_into(&mut notices);
        if notices.is_empty() {
            self.notice_buf = notices;
            return;
        }
        let now = self.gpu.now();
        if let Some(handler) = &mut self.notice_handler {
            for &n in &notices {
                if let Some(arrival) = handler(n, now) {
                    debug_assert!(arrival.at >= now, "cannot inject an arrival in the past");
                    self.arrivals.push(arrival.at.max(now), arrival);
                    self.pending_count += 1;
                }
            }
        }
        notices.clear();
        self.notice_buf = notices;
    }

    /// Runs until all arrivals are delivered and the device is idle, or
    /// until `horizon`, whichever comes first.
    pub fn run(&mut self, horizon: SimTime) -> RunOutcome {
        // `on_start` initializes driver resources (contexts, queues):
        // exactly once, even if `run` is called again after a horizon.
        if !self.started {
            self.started = true;
            self.driver.on_start(&mut self.gpu);
            self.process_notices();
        }
        let mut budget = self.max_events;
        loop {
            if budget == 0 {
                return RunOutcome::EventBudgetExhausted;
            }
            budget -= 1;

            let next_dev = self.gpu.peek_event_time();
            let next_arr = self.arrivals.peek_time();

            let t = match (next_dev, next_arr) {
                (None, None) => {
                    return if self.gpu.is_device_idle() {
                        RunOutcome::Completed
                    } else {
                        RunOutcome::Stalled
                    }
                }
                (Some(d), None) => d,
                (None, Some(a)) => a,
                (Some(d), Some(a)) => d.min(a),
            };
            if t > horizon {
                return RunOutcome::HorizonReached;
            }

            // Arrivals take precedence at equal timestamps so drivers see
            // the request before reacting to a same-instant completion.
            if next_arr.is_some_and(|a| a <= t) {
                let Some((_, req)) = self.arrivals.pop() else {
                    continue; // Unreachable: an arrival was just peeked.
                };
                self.pending_count -= 1;
                self.gpu.advance_to(req.at);
                if self.gpu.tracing_enabled() {
                    self.gpu
                        .trace_emit(sim_core::trace::TraceEvent::RequestArrival {
                            at: req.at,
                            app: req.app as u32,
                            req: req.req as u64,
                        });
                }
                self.driver.on_request(&mut self.gpu, req);
                self.process_notices();
                continue;
            }

            match self.gpu.step() {
                Some(StepOutput::KernelDone { handle, queue, tag }) => {
                    let done = KernelDone {
                        handle,
                        queue,
                        tag,
                        at: self.gpu.now(),
                    };
                    self.driver.on_kernel_done(&mut self.gpu, done);
                    self.process_notices();
                }
                Some(StepOutput::HostWake { token }) => {
                    self.driver.on_wake(&mut self.gpu, token);
                    self.process_notices();
                }
                Some(StepOutput::ContextCrash { app }) => {
                    let mut failed = std::mem::take(&mut self.failed_buf);
                    self.gpu.take_failed_into(&mut failed);
                    self.driver.on_crash(&mut self.gpu, app, &failed);
                    failed.clear();
                    self.failed_buf = failed;
                    self.process_notices();
                }
                None => {} // Stale completion; keep going.
            }
        }
    }

    /// Number of arrivals not yet delivered.
    pub fn pending_arrivals(&self) -> usize {
        self.pending_count
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{CtxKind, QueueId};
    use crate::kernel::KernelDesc;
    use crate::spec::{GpuSpec, HostCosts};
    use sim_core::SimDuration;

    /// Launches one 10 µs kernel per request and records completions.
    struct OneShot {
        queue: Option<QueueId>,
        completions: Vec<(usize, SimTime)>,
        tags: Vec<usize>,
    }

    impl HostDriver for OneShot {
        fn on_start(&mut self, gpu: &mut Gpu) {
            let ctx = gpu.create_context(CtxKind::Default).unwrap();
            self.queue = Some(gpu.create_queue(ctx).unwrap());
        }

        fn on_request(&mut self, gpu: &mut Gpu, req: RequestArrival) {
            let q = self.queue.unwrap();
            let k = KernelDesc::compute("req", SimDuration::from_micros(10), 108, 0.0);
            gpu.launch(q, k, req.app as u64).unwrap();
            self.tags.push(req.app);
        }

        fn on_kernel_done(&mut self, _gpu: &mut Gpu, done: KernelDone) {
            self.completions.push((done.tag as usize, done.at));
        }
    }

    #[test]
    fn requests_flow_through_driver() {
        let gpu = Gpu::new(GpuSpec::a100(), HostCosts::free());
        let arrivals = vec![
            RequestArrival {
                app: 0,
                req: 0,
                at: SimTime::ZERO,
            },
            RequestArrival {
                app: 1,
                req: 0,
                at: SimTime::from_micros(100),
            },
        ];
        let driver = OneShot {
            queue: None,
            completions: Vec::new(),
            tags: Vec::new(),
        };
        let mut sim = Simulation::new(gpu, driver, arrivals);
        let outcome = sim.run(SimTime::from_millis(10));
        assert_eq!(outcome, RunOutcome::Completed);
        assert_eq!(sim.driver.completions.len(), 2);
        assert_eq!(sim.driver.completions[0], (0, SimTime::from_micros(10)));
        assert_eq!(sim.driver.completions[1], (1, SimTime::from_micros(110)));
        assert!(sim.gpu.is_device_idle());
    }

    #[test]
    fn horizon_stops_early() {
        let gpu = Gpu::new(GpuSpec::a100(), HostCosts::free());
        let arrivals = vec![RequestArrival {
            app: 0,
            req: 0,
            at: SimTime::from_millis(100),
        }];
        let driver = OneShot {
            queue: None,
            completions: Vec::new(),
            tags: Vec::new(),
        };
        let mut sim = Simulation::new(gpu, driver, arrivals);
        let outcome = sim.run(SimTime::from_millis(1));
        assert_eq!(outcome, RunOutcome::HorizonReached);
        assert_eq!(sim.pending_arrivals(), 1);
    }

    #[test]
    fn arrivals_are_sorted_on_construction() {
        let gpu = Gpu::new(GpuSpec::a100(), HostCosts::free());
        let arrivals = vec![
            RequestArrival {
                app: 1,
                req: 0,
                at: SimTime::from_micros(100),
            },
            RequestArrival {
                app: 0,
                req: 0,
                at: SimTime::ZERO,
            },
        ];
        let driver = OneShot {
            queue: None,
            completions: Vec::new(),
            tags: Vec::new(),
        };
        let mut sim = Simulation::new(gpu, driver, arrivals);
        sim.run(SimTime::from_millis(10));
        assert_eq!(sim.driver.tags, vec![0, 1]);
    }

    /// A driver that wakes itself periodically.
    struct Ticker {
        ticks: Vec<SimTime>,
    }

    impl HostDriver for Ticker {
        fn on_start(&mut self, gpu: &mut Gpu) {
            gpu.wake_at(SimTime::from_micros(10), 0);
        }
        fn on_wake(&mut self, gpu: &mut Gpu, token: u64) {
            self.ticks.push(gpu.now());
            if token < 4 {
                gpu.wake_at(gpu.now() + SimDuration::from_micros(10), token + 1);
            }
        }
    }

    #[test]
    fn wakeups_drive_periodic_schedulers() {
        let gpu = Gpu::new(GpuSpec::a100(), HostCosts::free());
        let mut sim = Simulation::new(gpu, Ticker { ticks: Vec::new() }, Vec::new());
        let outcome = sim.run(SimTime::from_millis(1));
        assert_eq!(outcome, RunOutcome::Completed);
        assert_eq!(sim.driver.ticks.len(), 5);
        assert_eq!(sim.driver.ticks[4], SimTime::from_micros(50));
    }

    #[test]
    fn tag_codec_round_trips() {
        for (app, k) in [(0, 0), (7, 5034), (1048575, 1)] {
            assert_eq!(decode_tag(encode_tag(app, k)), (app, k));
        }
    }

    #[test]
    fn event_budget_catches_runaway_drivers() {
        /// Pathological driver that reschedules itself at the same instant.
        struct Runaway;
        impl HostDriver for Runaway {
            fn on_start(&mut self, gpu: &mut Gpu) {
                gpu.wake_at(gpu.now(), 0);
            }
            fn on_wake(&mut self, gpu: &mut Gpu, _token: u64) {
                gpu.wake_at(gpu.now(), 0);
            }
        }
        let gpu = Gpu::new(GpuSpec::a100(), HostCosts::free());
        let mut sim = Simulation::new(gpu, Runaway, Vec::new()).with_max_events(10_000);
        assert_eq!(
            sim.run(SimTime::from_millis(1)),
            RunOutcome::EventBudgetExhausted
        );
    }
}
