//! Per-resource interference channels (DESIGN.md §5j).
//!
//! The paper's interference term — and this simulator's original one — is
//! a single scalar: co-running kernels generate "memory traffic" and every
//! victim is slowed by `1 + α·pressure·sensitivity`, capped at 2×
//! (Fig. 9a). Elvinger et al. ("Understanding GPU Resource Interference
//! One Level Deeper", PAPERS.md) show that interference actually
//! decomposes into *distinct contended resources* — compute issue
//! bandwidth, the shared L2, DRAM bandwidth, and the PCIe link — each with
//! its own contention curve.
//!
//! This module models that decomposition while keeping the legacy scalar
//! model bit-exact:
//!
//! * [`ChannelDemand`] — a kernel's per-channel demand vector, the
//!   per-resource generalization of `mem_intensity`;
//! * [`ChannelParams`] — per-channel α/base/cap contention curves plus the
//!   DMA→PCIe coupling weight;
//! * [`ChannelModel`] — the engine switch: [`ChannelModel::Scalar`]
//!   (default; byte-identical to the original model, so every golden
//!   request-log digest is untouched) or [`ChannelModel::PerResource`].
//!
//! **Collapse-to-scalar equivalence.** When every kernel's demand vector
//! is concentrated on a single channel `c` (the default: constructors put
//! `mem_intensity` on [`Channel::DramBw`]) and `c`'s curve matches the
//! scalar α/base/cap while every other channel is inert
//! ([`ChannelParams::matched_scalar`]), the per-resource slowdown is
//! *bit-identical* to the scalar one: channel `c` evaluates the exact same
//! float expression in the same order, every other channel sees zero
//! traffic and contributes exactly 1.0, and `max(1.0, s) = s` because the
//! per-channel slowdown is ≥ 1 by construction. The differential twin in
//! `tests/channel_differential.rs` pins this across the seeded workload
//! matrix at worker counts 1/2/4.

/// Number of modeled interference channels.
pub const NUM_CHANNELS: usize = 4;

/// One contended resource (Elvinger et al.'s decomposition).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Channel {
    /// SM issue/compute bandwidth contention (co-resident warps competing
    /// for issue slots and functional units).
    Compute = 0,
    /// Shared L2 capacity/bandwidth contention.
    L2 = 1,
    /// DRAM bandwidth contention — the channel the original scalar
    /// `mem_intensity` model describes.
    DramBw = 2,
    /// PCIe link contention (pinned-host traffic of compute kernels, plus
    /// running DMA streams via [`ChannelParams::dma_pcie_weight`]).
    Pcie = 3,
}

impl Channel {
    /// All channels, in index order.
    pub const ALL: [Channel; NUM_CHANNELS] = [
        Channel::Compute,
        Channel::L2,
        Channel::DramBw,
        Channel::Pcie,
    ];

    /// Short display name.
    pub fn name(self) -> &'static str {
        match self {
            Channel::Compute => "compute",
            Channel::L2 => "l2",
            Channel::DramBw => "dram-bw",
            Channel::Pcie => "pcie",
        }
    }
}

/// A kernel's per-channel resource demand, each component in `[0, 1]`.
///
/// `demand[c]` plays the role `mem_intensity` plays in the scalar model,
/// per channel: it scales both the traffic the kernel *generates* on `c`
/// (weighted by its SM share) and its *sensitivity* to other kernels'
/// traffic on `c`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ChannelDemand(pub [f64; NUM_CHANNELS]);

impl ChannelDemand {
    /// No demand on any channel (memcpy descriptors; DMA traffic is
    /// coupled into the PCIe channel separately, see
    /// [`ChannelParams::dma_pcie_weight`]).
    pub const ZERO: ChannelDemand = ChannelDemand([0.0; NUM_CHANNELS]);

    /// All demand concentrated on one channel — the collapse shape that
    /// reproduces the scalar model bit-exactly (module docs).
    ///
    /// # Panics
    ///
    /// Panics if `intensity` is outside `[0, 1]`.
    pub fn collapsed(ch: Channel, intensity: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&intensity),
            "channel demand must be in [0,1], got {intensity}"
        );
        let mut d = [0.0; NUM_CHANNELS];
        d[ch as usize] = intensity;
        ChannelDemand(d)
    }

    /// A full demand vector.
    ///
    /// # Panics
    ///
    /// Panics if any component is outside `[0, 1]`.
    pub fn new(compute: f64, l2: f64, dram_bw: f64, pcie: f64) -> Self {
        let d = [compute, l2, dram_bw, pcie];
        for (ch, &v) in Channel::ALL.iter().zip(&d) {
            assert!(
                (0.0..=1.0).contains(&v),
                "{} demand must be in [0,1], got {v}",
                ch.name()
            );
        }
        ChannelDemand(d)
    }

    /// The demand on one channel.
    pub fn get(&self, ch: Channel) -> f64 {
        self.0[ch as usize]
    }
}

/// Per-channel contention curves: slowdown on channel `c` is
/// `min(1 + alpha[c] · pressure · sensitivity, cap[c])` with
/// `sensitivity = base[c] + (1 − base[c]) · own_demand` — the scalar
/// model's curve, instantiated once per resource.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ChannelParams {
    /// Contention strength per channel.
    pub alpha: [f64; NUM_CHANNELS],
    /// Demand-independent sensitivity floor per channel.
    pub base: [f64; NUM_CHANNELS],
    /// Hard slowdown cap per channel (each ≥ 1).
    pub cap: [f64; NUM_CHANNELS],
    /// PCIe-channel traffic contributed by each *running DMA stream*
    /// (memcpy in flight): compute kernels with PCIe demand are slowed by
    /// concurrent transfers. Zero decouples DMA from the compute side —
    /// required for the bit-exact scalar collapse, where DMA events must
    /// not perturb compute rates.
    pub dma_pcie_weight: f64,
}

impl ChannelParams {
    /// Calibrated A100 curves. DRAM bandwidth keeps the scalar model's
    /// curve (α 1.5, base 0.30, cap 2.0 — the Fig. 9a anchor: it is the
    /// resource the paper's "memory pressure" experiment saturates). L2 is
    /// close behind, compute contention is mild and caps early, and PCIe
    /// is mild but coupled to running DMA streams.
    ///
    /// # Calibration provenance
    ///
    /// Only the DRAM-bandwidth channel is anchored to a measured curve
    /// (the seed scalar model's Fig. 9a fit). The compute/L2/PCIe
    /// triples are *ordinal*, not measured: chosen so the relative
    /// severity ranking matches Elvinger et al.'s per-resource
    /// decomposition (DRAM ≳ L2 > PCIe > compute-issue for co-located
    /// inference) while every channel keeps the scalar curve's shape.
    /// Uses that only need a consistent ranking — the contention-aware
    /// placement scorer, the `fig9c` decomposition (which runs on
    /// [`crate::GpuSpec::a100_per_resource`] by default, pinned in
    /// `experiments_output.txt`) — are safe; absolute per-channel
    /// slowdown magnitudes outside DRAM should not be quoted until the
    /// curves are re-fit against published microbenchmarks (ROADMAP
    /// item 4 follow-on).
    pub fn a100() -> Self {
        ChannelParams {
            //       compute   l2   dram-bw  pcie
            alpha: [0.60, 1.20, 1.50, 1.00],
            base: [0.40, 0.25, 0.30, 0.15],
            cap: [1.50, 1.80, 2.00, 1.60],
            dma_pcie_weight: 0.25,
        }
    }

    /// The collapse twin of a scalar model: channel `ch` carries the
    /// scalar `(alpha, base, cap)` curve, every other channel is inert
    /// (α 0, base 0, cap 1) and DMA coupling is off. With all kernel
    /// demand collapsed onto `ch`, the per-resource engine is
    /// bit-identical to the scalar engine (module docs).
    pub fn matched_scalar(alpha: f64, base: f64, cap: f64, ch: Channel) -> Self {
        let mut p = ChannelParams {
            alpha: [0.0; NUM_CHANNELS],
            base: [0.0; NUM_CHANNELS],
            cap: [1.0; NUM_CHANNELS],
            dma_pcie_weight: 0.0,
        };
        p.alpha[ch as usize] = alpha;
        p.base[ch as usize] = base;
        p.cap[ch as usize] = cap;
        p.validate();
        p
    }

    /// Asserts the curve invariants (α ≥ 0, base in \[0,1\], cap ≥ 1).
    pub fn validate(&self) {
        for c in 0..NUM_CHANNELS {
            assert!(self.alpha[c] >= 0.0, "alpha[{c}] must be >= 0");
            assert!(
                (0.0..=1.0).contains(&self.base[c]),
                "base[{c}] must be in [0,1]"
            );
            assert!(self.cap[c] >= 1.0, "cap[{c}] must be >= 1");
        }
        assert!(self.dma_pcie_weight >= 0.0, "dma_pcie_weight must be >= 0");
    }

    /// The per-instant slowdown of a kernel with demand vector `demand`
    /// holding an SM share of `share` (its allocation divided by the
    /// GPU's SM count), given the per-channel total traffic of *all*
    /// co-running kernels (own contribution included).
    ///
    /// Channels compose by **max**: the kernel runs at the speed of its
    /// most contended resource (bottleneck composition). Each channel's
    /// slowdown is ≥ 1 and ≤ `cap[c]`; zero-pressure channels contribute
    /// exactly 1.0 and are skipped, which keeps the hot loop at scalar
    /// cost for the common one-active-channel workloads.
    #[inline]
    pub fn slowdown(
        &self,
        demand: &ChannelDemand,
        share: f64,
        traffic: &[f64; NUM_CHANNELS],
    ) -> f64 {
        let mut slow = 1.0f64;
        for (c, &total) in traffic.iter().enumerate() {
            let own = demand.0[c] * share;
            let pressure = (total - own).max(0.0);
            if pressure <= 0.0 {
                // (1 + α·0·s).min(cap) is exactly 1.0 (cap ≥ 1): skipping
                // is bit-identical and free.
                continue;
            }
            let sensitivity = self.base[c] + (1.0 - self.base[c]) * demand.0[c];
            let s = (1.0 + self.alpha[c] * pressure * sensitivity).min(self.cap[c]);
            slow = slow.max(s);
        }
        slow
    }
}

/// The engine's interference-model switch.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub enum ChannelModel {
    /// The original single-scalar model (`1 + α·pressure·sensitivity`
    /// capped, driven by `mem_intensity`). The default; byte-identical to
    /// the pre-channel engine, pinning every existing golden digest.
    #[default]
    Scalar,
    /// The four-channel contended-resource model driven by
    /// [`ChannelDemand`] vectors and composed by bottleneck max.
    PerResource(ChannelParams),
}

impl ChannelModel {
    /// True for the legacy scalar model.
    pub fn is_scalar(&self) -> bool {
        matches!(self, ChannelModel::Scalar)
    }

    /// True when running DMA streams feed the PCIe channel, coupling DMA
    /// transitions into compute-side reallocation.
    pub fn couples_dma_to_compute(&self) -> bool {
        matches!(self, ChannelModel::PerResource(p) if p.dma_pcie_weight > 0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn collapsed_demand_hits_one_channel() {
        let d = ChannelDemand::collapsed(Channel::L2, 0.7);
        assert_eq!(d.get(Channel::L2), 0.7);
        assert_eq!(d.get(Channel::Compute), 0.0);
        assert_eq!(d.get(Channel::DramBw), 0.0);
        assert_eq!(d.get(Channel::Pcie), 0.0);
    }

    #[test]
    #[should_panic(expected = "must be in [0,1]")]
    fn demand_rejects_out_of_range() {
        let _ = ChannelDemand::new(0.0, 1.5, 0.0, 0.0);
    }

    #[test]
    fn matched_scalar_reproduces_scalar_formula() {
        // The per-resource slowdown with collapsed demand equals the
        // scalar expression bit-for-bit.
        let (alpha, base, cap) = (1.5, 0.30, 2.0);
        let p = ChannelParams::matched_scalar(alpha, base, cap, Channel::DramBw);
        let (m_victim, m_aggr) = (0.9, 0.6);
        let share = 54.0 / 108.0;
        let own = m_victim * share;
        let traffic = {
            let mut t = [0.0; NUM_CHANNELS];
            t[Channel::DramBw as usize] = own + m_aggr * share;
            t
        };
        let got = p.slowdown(
            &ChannelDemand::collapsed(Channel::DramBw, m_victim),
            share,
            &traffic,
        );
        let pressure = (traffic[Channel::DramBw as usize] - own).max(0.0);
        let sensitivity = base + (1.0 - base) * m_victim;
        let want = (1.0 + alpha * pressure * sensitivity).min(cap);
        assert_eq!(got.to_bits(), want.to_bits());
    }

    #[test]
    fn channels_compose_by_max() {
        let p = ChannelParams::a100();
        let victim = ChannelDemand::new(0.0, 0.8, 0.8, 0.0);
        let mut traffic = [0.0; NUM_CHANNELS];
        traffic[Channel::L2 as usize] = 0.5;
        traffic[Channel::DramBw as usize] = 0.5;
        let both = p.slowdown(&victim, 0.0, &traffic);
        let dram_only = {
            let mut t = [0.0; NUM_CHANNELS];
            t[Channel::DramBw as usize] = 0.5;
            p.slowdown(&victim, 0.0, &t)
        };
        let l2_only = {
            let mut t = [0.0; NUM_CHANNELS];
            t[Channel::L2 as usize] = 0.5;
            p.slowdown(&victim, 0.0, &t)
        };
        assert_eq!(both, dram_only.max(l2_only));
        assert!(both > 1.0);
    }

    #[test]
    fn zero_pressure_is_exactly_one() {
        let p = ChannelParams::a100();
        let d = ChannelDemand::new(0.5, 0.5, 0.5, 0.5);
        // Sole kernel: traffic equals its own contribution on every channel.
        let share = 0.7;
        let traffic = {
            let mut t = [0.0; NUM_CHANNELS];
            for c in 0..NUM_CHANNELS {
                t[c] = d.0[c] * share;
            }
            t
        };
        assert_eq!(p.slowdown(&d, share, &traffic), 1.0);
    }

    #[test]
    fn caps_bind_per_channel() {
        let p = ChannelParams::a100();
        let d = ChannelDemand::collapsed(Channel::Compute, 1.0);
        let mut traffic = [0.0; NUM_CHANNELS];
        traffic[Channel::Compute as usize] = 100.0; // absurd pressure
        assert_eq!(
            p.slowdown(&d, 0.0, &traffic),
            p.cap[Channel::Compute as usize]
        );
    }

    #[test]
    #[should_panic(expected = "cap[1] must be >= 1")]
    fn validate_rejects_sub_one_cap() {
        let mut p = ChannelParams::a100();
        p.cap[1] = 0.5;
        p.validate();
    }

    #[test]
    fn default_model_is_scalar() {
        assert!(ChannelModel::default().is_scalar());
        assert!(!ChannelModel::default().couples_dma_to_compute());
        assert!(ChannelModel::PerResource(ChannelParams::a100()).couples_dma_to_compute());
        let decoupled = ChannelParams::matched_scalar(1.5, 0.3, 2.0, Channel::DramBw);
        assert!(!ChannelModel::PerResource(decoupled).couples_dma_to_compute());
    }
}
