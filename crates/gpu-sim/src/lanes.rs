//! Intra-GPU lane sharding: per-lane event loops with a deterministic
//! merge.
//!
//! A *lane* is an independently advancing slice of one physical GPU — a
//! hard MIG partition, a disjoint MPS share, or a DMA engine — whose
//! kernels never observe another lane's state. The monolithic [`Gpu`]
//! engine settles **every** queue on **every** event because any compute
//! kernel can, in principle, perturb any other through the shared SM
//! allocator and the memory-interference term; when the tenancy structure
//! actually partitions the device, that coupling is vacuous and the
//! all-queues scan is pure overhead. [`LaneEngine`] exploits this: each
//! lane runs its own [`Gpu`] (with per-lane event queue, allocator pools,
//! and interference scope), so per-event cost scales with the *lane's*
//! queue count instead of the device's — and lanes can advance on separate
//! OS threads between interaction points.
//!
//! # The deterministic merge
//!
//! Everything a caller can observe — kernel completions, host wakes,
//! crashes, trace events — is merged into one stream ordered by
//!
//! ```text
//! (virtual time, lane id, intra-lane sequence)
//! ```
//!
//! [`LaneEngine::step_seq`] *is* that order, one event at a time: it
//! always steps the lane whose next pending event is earliest, breaking
//! ties by lane id (intra-lane order is the lane's own deterministic event
//! order). The parallel paths ([`LaneEngine::drain_par_into`],
//! [`LaneEngine::advance_par_until`]) let every lane run to the barrier
//! independently, buffering its outputs, then k-way merge the buffers by
//! the same key. Because lanes are isolated, a lane's evolution is a
//! function of its own inputs only — thread interleaving cannot change any
//! lane's stream — so the merged result is byte-identical to `step_seq` by
//! construction. The `lane_differential` integration test pins this with
//! request-log and trace digests.
//!
//! # What lanes give up
//!
//! Lanes model **fully isolated** shares: no cross-lane memory-bandwidth
//! interference and no shared SM pool. Workloads whose tenants genuinely
//! couple (semi-spatial shares spilling into the common pool, non-zero
//! `mem_intensity` across partition boundaries) belong on one lane
//! together — the `core` crate's lane hints derive exactly this grouping
//! from the squad/partition structure. Against the monolithic engine, a
//! lane-sharded run is bit-identical precisely when the workload is
//! decoupled (hard partitions, zero cross-lane interference); the
//! differential suite checks that anchor too. Fault plans apply per lane
//! (install one on a lane's [`Gpu`]); cross-lane fault coupling is out of
//! scope.
//!
//! Each lane's host timeline is independent. To model one shared host
//! thread launching into every lane (as the monolithic engine does), use
//! zero host costs per lane and carry the shared launch-overhead timeline
//! in the `extra` delay of [`Gpu::launch_delayed`] /
//! [`Gpu::launch_table_delayed`].

use sim_core::trace::{BufferSink, TraceEvent};
use sim_core::{EventQueueKind, SimTime};

use crate::engine::{DeviceCheckpoint, Gpu, StepOutput};
use crate::spec::{GpuSpec, HostCosts};

/// One externally visible output, stamped with its virtual time and the
/// lane that produced it — the unit of the merged stream.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MergedOutput {
    /// Virtual time of the event that produced the output.
    pub at: SimTime,
    /// Index of the producing lane.
    pub lane: u32,
    /// The output itself.
    pub output: StepOutput,
}

/// One lane: its GPU plus reusable buffers for the parallel drain.
struct Lane {
    gpu: Gpu,
    /// Outputs of the current parallel round, in the lane's own
    /// deterministic order. Reused across rounds (capacity is retained).
    out: Vec<(SimTime, StepOutput)>,
    /// Handle on the lane's trace buffer when lane tracing is enabled.
    trace: Option<BufferSink>,
    /// Scratch the lane's trace events are drained into for merging.
    trace_buf: Vec<TraceEvent>,
}

/// A single GPU sharded into independently advancing lanes with a
/// deterministic merge (see the module docs).
pub struct LaneEngine {
    lanes: Vec<Lane>,
    /// Maximum OS threads the parallel paths may use.
    workers: usize,
    /// Per-lane read positions reused by the k-way merges.
    merge_pos: Vec<usize>,
}

impl LaneEngine {
    /// Builds an engine from pre-configured per-lane GPUs.
    ///
    /// Each GPU should carry one lane's contexts/queues only; the caller
    /// is asserting that the lanes are isolated from each other (hard
    /// partitions or zero cross-lane interference).
    pub fn from_gpus(gpus: Vec<Gpu>) -> Self {
        let workers = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        let lanes = gpus
            .into_iter()
            .map(|gpu| Lane {
                gpu,
                out: Vec::new(),
                trace: None,
                trace_buf: Vec::new(),
            })
            .collect();
        LaneEngine {
            lanes,
            workers,
            merge_pos: Vec::new(),
        }
    }

    /// Builds `lanes` identical empty lanes of `spec`/`costs`, all using
    /// the given event-queue backend. Configure each lane's contexts and
    /// queues through [`LaneEngine::lane_mut`].
    pub fn homogeneous(
        spec: GpuSpec,
        costs: HostCosts,
        lanes: usize,
        queue_kind: EventQueueKind,
    ) -> Self {
        Self::from_gpus(
            (0..lanes)
                .map(|_| Gpu::with_queue_kind(spec.clone(), costs.clone(), queue_kind))
                .collect(),
        )
    }

    /// Number of lanes.
    pub fn num_lanes(&self) -> usize {
        self.lanes.len()
    }

    /// The lane's GPU.
    pub fn lane(&self, lane: usize) -> &Gpu {
        &self.lanes[lane].gpu
    }

    /// The lane's GPU, mutably (for context/queue setup and launches).
    pub fn lane_mut(&mut self, lane: usize) -> &mut Gpu {
        &mut self.lanes[lane].gpu
    }

    /// Caps the OS threads the parallel paths use (at least 1; at most
    /// one per lane is ever spawned). Defaults to the host's available
    /// parallelism. Thread count never affects results, only wall-clock.
    pub fn set_workers(&mut self, workers: usize) {
        self.workers = workers.max(1);
    }

    /// Installs a buffering trace sink on every lane. Events are merged on
    /// demand by [`LaneEngine::merged_trace_into`].
    pub fn enable_tracing(&mut self) {
        for lane in &mut self.lanes {
            let sink = BufferSink::new();
            lane.gpu.set_trace_sink(Box::new(sink.clone()));
            lane.trace = Some(sink);
        }
    }

    /// True when every lane's device is idle with no pending events.
    pub fn is_idle(&self) -> bool {
        self.lanes
            .iter()
            .all(|l| l.gpu.is_device_idle() && l.gpu.peek_event_time().is_none())
    }

    /// The merged clock: the latest instant any lane has reached.
    pub fn virtual_now(&self) -> SimTime {
        self.lanes
            .iter()
            .map(|l| l.gpu.now())
            .max()
            .unwrap_or(SimTime::ZERO)
    }

    /// Earliest pending event across all lanes, if any.
    pub fn peek_event_time(&self) -> Option<SimTime> {
        self.lanes
            .iter()
            .filter_map(|l| l.gpu.peek_event_time())
            .min()
    }

    // ------------------------------------------------------------------
    // Sequential reference loop
    // ------------------------------------------------------------------

    /// Processes the globally next event — the lane with the earliest
    /// pending event, ties broken by lane id — and returns its output, if
    /// it produced one that is externally visible. Returns `None` only
    /// when no lane has events left.
    ///
    /// This is the sequential reference ("merge one event at a time"); the
    /// parallel paths must reproduce its output stream byte for byte.
    pub fn step_seq(&mut self) -> Option<MergedOutput> {
        loop {
            let mut best: Option<(SimTime, usize)> = None;
            for (i, lane) in self.lanes.iter().enumerate() {
                if let Some(t) = lane.gpu.peek_event_time() {
                    // Strict `<` keeps the lowest lane id on time ties.
                    if best.is_none_or(|(bt, _)| t < bt) {
                        best = Some((t, i));
                    }
                }
            }
            let (_, i) = best?;
            let lane = &mut self.lanes[i];
            if let Some(output) = lane.gpu.step() {
                return Some(MergedOutput {
                    at: lane.gpu.now(),
                    lane: i as u32,
                    output,
                });
            }
            // The event was internal (stale completion, poke): keep going.
        }
    }

    /// Drains every lane through [`LaneEngine::step_seq`], appending the
    /// merged stream to `out`. Allocation-free once `out` has reached its
    /// high-water capacity.
    pub fn drain_seq_into(&mut self, out: &mut Vec<MergedOutput>) {
        while let Some(m) = self.step_seq() {
            out.push(m);
        }
    }

    // ------------------------------------------------------------------
    // Parallel lane loops
    // ------------------------------------------------------------------

    /// Runs every lane to completion — concurrently when more than one
    /// worker is available — then merges the per-lane output streams by
    /// `(time, lane, intra-lane order)` into `out`.
    ///
    /// Byte-identical to [`LaneEngine::drain_seq_into`] for any worker
    /// count: lanes are isolated, so each lane's stream is independent of
    /// thread interleaving, and the merge key equals the sequential pick
    /// order. Reuses per-lane buffers; allocation-free in steady state
    /// aside from per-round thread spawning.
    pub fn drain_par_into(&mut self, out: &mut Vec<MergedOutput>) {
        self.run_lanes(None);
        self.merge_outputs(out);
    }

    /// Runs every lane up to (but not including) `limit` — concurrently
    /// when possible — then merges outputs like
    /// [`LaneEngine::drain_par_into`]. Events at exactly `limit` stay
    /// pending, so the caller can inject cross-lane work (new launches,
    /// shared-state updates) at the barrier deterministically.
    pub fn advance_par_until(&mut self, limit: SimTime, out: &mut Vec<MergedOutput>) {
        self.run_lanes(Some(limit));
        self.merge_outputs(out);
    }

    /// Quiesces the whole sharded device at `barrier` and exports its
    /// pending work as one portable checkpoint: every lane is advanced up
    /// to (but not including) the barrier — outputs merged into `out`
    /// exactly as [`LaneEngine::advance_par_until`] would — then each
    /// lane's engine is drained via [`Gpu::drain_snapshot`] and the
    /// per-lane checkpoints are concatenated in lane order (each lane's
    /// abandoned list is already in launch order, so per-queue FIFO is
    /// preserved inside every lane).
    ///
    /// After the call every lane is idle and permanently drained; the
    /// engine is done. Deterministic for any worker count: the abandoned
    /// set at a fixed barrier is a pure function of each lane's state.
    pub fn drain_snapshot(
        &mut self,
        barrier: SimTime,
        out: &mut Vec<MergedOutput>,
    ) -> DeviceCheckpoint {
        self.advance_par_until(barrier, out);
        let mut merged = DeviceCheckpoint {
            at: barrier,
            abandoned: Vec::new(),
        };
        for lane in &mut self.lanes {
            let ckpt = lane.gpu.drain_snapshot();
            merged.abandoned.extend(ckpt.abandoned);
        }
        merged
    }

    /// Advances each lane (to `limit`, or to completion when `None`),
    /// filling each lane's `out` buffer, using up to `self.workers`
    /// threads.
    fn run_lanes(&mut self, limit: Option<SimTime>) {
        let workers = self.workers.min(self.lanes.len()).max(1);
        if workers <= 1 {
            for lane in &mut self.lanes {
                Self::run_lane(lane, limit);
            }
            return;
        }
        let chunk = self.lanes.len().div_ceil(workers);
        std::thread::scope(|s| {
            for lanes in self.lanes.chunks_mut(chunk) {
                s.spawn(move || {
                    for lane in lanes {
                        Self::run_lane(lane, limit);
                    }
                });
            }
        });
    }

    fn run_lane(lane: &mut Lane, limit: Option<SimTime>) {
        match limit {
            Some(t) => lane.gpu.advance_until(t, &mut lane.out),
            None => lane.gpu.drain_outputs_into(&mut lane.out),
        }
    }

    /// K-way merge of the per-lane `out` buffers by
    /// `(time, lane, position)`, appending to `out` and clearing the lane
    /// buffers (their capacity is retained).
    fn merge_outputs(&mut self, out: &mut Vec<MergedOutput>) {
        self.merge_pos.clear();
        self.merge_pos.resize(self.lanes.len(), 0);
        let total: usize = self.lanes.iter().map(|l| l.out.len()).sum();
        out.reserve(total);
        for _ in 0..total {
            let mut best: Option<(SimTime, usize)> = None;
            for (i, lane) in self.lanes.iter().enumerate() {
                if let Some(&(t, _)) = lane.out.get(self.merge_pos[i]) {
                    if best.is_none_or(|(bt, _)| t < bt) {
                        best = Some((t, i));
                    }
                }
            }
            let Some((_, i)) = best else {
                debug_assert!(false, "merge position count mismatch");
                break;
            };
            let (at, output) = self.lanes[i].out[self.merge_pos[i]];
            self.merge_pos[i] += 1;
            out.push(MergedOutput {
                at,
                lane: i as u32,
                output,
            });
        }
        for lane in &mut self.lanes {
            lane.out.clear();
        }
    }

    // ------------------------------------------------------------------
    // Merged trace
    // ------------------------------------------------------------------

    /// Drains every lane's trace buffer (see
    /// [`LaneEngine::enable_tracing`]) and appends the events to `out`
    /// merged by `(time, lane, intra-lane order)` — the same rule as the
    /// output stream, so seq- and par-driven runs produce identical
    /// merged traces.
    pub fn merged_trace_into(&mut self, out: &mut Vec<(u32, TraceEvent)>) {
        for lane in &mut self.lanes {
            if let Some(sink) = &lane.trace {
                sink.take_into(&mut lane.trace_buf);
            }
        }
        self.merge_pos.clear();
        self.merge_pos.resize(self.lanes.len(), 0);
        let total: usize = self.lanes.iter().map(|l| l.trace_buf.len()).sum();
        out.reserve(total);
        for _ in 0..total {
            let mut best: Option<(SimTime, usize)> = None;
            for (i, lane) in self.lanes.iter().enumerate() {
                if let Some(ev) = lane.trace_buf.get(self.merge_pos[i]) {
                    let t = ev.at();
                    if best.is_none_or(|(bt, _)| t < bt) {
                        best = Some((t, i));
                    }
                }
            }
            let Some((_, i)) = best else {
                debug_assert!(false, "trace merge position count mismatch");
                break;
            };
            let ev = self.lanes[i].trace_buf[self.merge_pos[i]].clone();
            self.merge_pos[i] += 1;
            out.push((i as u32, ev));
        }
        for lane in &mut self.lanes {
            lane.trace_buf.clear();
        }
    }

    /// Convenience wrapper over [`LaneEngine::merged_trace_into`].
    pub fn merged_trace(&mut self) -> Vec<(u32, TraceEvent)> {
        let mut out = Vec::new();
        self.merged_trace_into(&mut out);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::CtxKind;
    use crate::kernel::KernelDesc;
    use sim_core::SimDuration;

    fn two_lane_engine() -> LaneEngine {
        two_lane_engine_traced(false)
    }

    fn two_lane_engine_traced(trace: bool) -> LaneEngine {
        let mut eng = LaneEngine::homogeneous(
            GpuSpec::a100_with_sms(54),
            HostCosts::free(),
            2,
            EventQueueKind::FourAryHeap,
        );
        if trace {
            // Before any launch: untraced launches emit no later events.
            eng.enable_tracing();
        }
        for lane in 0..2 {
            let gpu = eng.lane_mut(lane);
            let ctx = gpu.create_context(CtxKind::Default).unwrap();
            let q = gpu.create_queue(ctx).unwrap();
            for i in 0..6u64 {
                let k = KernelDesc::compute(
                    "k",
                    SimDuration::from_micros(50 + 10 * (lane as u64 * 3 + i % 4)),
                    54,
                    0.2,
                );
                gpu.launch(q, k, (lane as u64) << 32 | i).unwrap();
            }
        }
        eng
    }

    #[test]
    fn seq_and_par_drains_match() {
        let mut a = two_lane_engine();
        let mut b = two_lane_engine();
        let mut seq = Vec::new();
        let mut par = Vec::new();
        a.drain_seq_into(&mut seq);
        b.drain_par_into(&mut par);
        assert_eq!(seq, par);
        assert!(a.is_idle() && b.is_idle());
        assert_eq!(seq.len(), 12);
    }

    #[test]
    fn merge_breaks_time_ties_by_lane() {
        // Identical lanes: every completion time ties across lanes and
        // must come out lane 0 first.
        let mut eng = LaneEngine::homogeneous(
            GpuSpec::a100_with_sms(54),
            HostCosts::free(),
            3,
            EventQueueKind::FourAryHeap,
        );
        for lane in 0..3 {
            let gpu = eng.lane_mut(lane);
            let ctx = gpu.create_context(CtxKind::Default).unwrap();
            let q = gpu.create_queue(ctx).unwrap();
            for i in 0..4u64 {
                let k = KernelDesc::compute("k", SimDuration::from_micros(100), 54, 0.0);
                gpu.launch(q, k, i).unwrap();
            }
        }
        let mut out = Vec::new();
        eng.drain_par_into(&mut out);
        assert_eq!(out.len(), 12);
        for group in out.chunks(3) {
            assert!(group.windows(2).all(|w| w[0].at == w[1].at));
            assert_eq!(
                group.iter().map(|m| m.lane).collect::<Vec<_>>(),
                vec![0, 1, 2]
            );
        }
    }

    #[test]
    fn barrier_leaves_later_events_pending() {
        let mut eng = two_lane_engine();
        let mut out = Vec::new();
        let barrier = SimTime::from_micros(200);
        eng.advance_par_until(barrier, &mut out);
        assert!(out.iter().all(|m| m.at < barrier));
        assert!(!eng.is_idle());
        let before = out.len();
        eng.drain_par_into(&mut out);
        assert!(out.len() > before);
        assert!(eng.is_idle());
    }

    #[test]
    fn worker_count_does_not_change_results() {
        let mut baseline = two_lane_engine();
        let mut expect = Vec::new();
        baseline.drain_par_into(&mut expect);
        for workers in [1, 2, 8] {
            let mut eng = two_lane_engine();
            eng.set_workers(workers);
            let mut got = Vec::new();
            eng.drain_par_into(&mut got);
            assert_eq!(got, expect, "workers={workers}");
        }
    }

    #[test]
    fn merged_trace_matches_between_seq_and_par() {
        let mut a = two_lane_engine_traced(true);
        let mut b = two_lane_engine_traced(true);
        let mut sink = Vec::new();
        a.drain_seq_into(&mut sink);
        sink.clear();
        b.drain_par_into(&mut sink);
        let ta = a.merged_trace();
        let tb = b.merged_trace();
        assert!(!ta.is_empty());
        assert_eq!(ta, tb);
    }
}
