#![warn(missing_docs)]

//! A deterministic fluid-model GPU simulator.
//!
//! This crate is the hardware substrate of the BLESS reproduction. It
//! models the pieces of an Nvidia A100 that GPU-sharing systems manipulate:
//!
//! * a pool of SMs divided among running kernels by a fair, waterfilling
//!   hardware scheduler ([`alloc`]),
//! * GPU contexts with MPS SM-affinity caps or hard MIG partitions
//!   ([`CtxKind`]),
//! * in-order device queues (CUDA-stream semantics) with cross-queue
//!   concurrency,
//! * a memory-bandwidth interference model calibrated to the paper's
//!   Fig. 9 measurements, with an opt-in four-channel per-resource
//!   variant ([`channel`]),
//! * PCIe DMA engines for memcpy kernels, and
//! * a host timeline with the §6.9 costs (3 µs launches, 20 µs squad sync,
//!   50 µs context-switch vacuum, per-kernel scheduling costs).
//!
//! Schedulers implement [`HostDriver`] and are run by [`Simulation`]
//! against a trace of request arrivals.
//!
//! # Example
//!
//! ```
//! use gpu_sim::{CtxKind, Gpu, KernelDesc};
//! use sim_core::SimDuration;
//!
//! let mut gpu = Gpu::a100();
//! let ctx = gpu.create_context(CtxKind::MpsAffinity { sm_cap: 54 }).unwrap();
//! let queue = gpu.create_queue(ctx).unwrap();
//! let kernel = KernelDesc::compute("conv", SimDuration::from_micros(120), 80, 0.3);
//! gpu.launch(queue, kernel, 0).unwrap();
//! while gpu.step().is_some() || gpu.peek_event_time().is_some() {}
//! assert!(gpu.is_device_idle());
//! ```

pub mod alloc;
pub mod channel;
pub mod engine;
pub mod kernel;
pub mod lanes;
pub mod sim;
pub mod spec;

pub use channel::{Channel, ChannelDemand, ChannelModel, ChannelParams, NUM_CHANNELS};
pub use engine::{
    CtxId, CtxKind, DeviceCheckpoint, FailedKernel, FaultCounters, Gpu, GpuError, InstState,
    KernelHandle, QueueId, StepOutput, TimelineSegment,
};
pub use kernel::{KernelDesc, KernelKind, KernelTableId};
pub use lanes::{LaneEngine, MergedOutput};
pub use sim::{
    decode_tag, encode_tag, HostDriver, KernelDone, NoticeHandler, RequestArrival, RunOutcome,
    Simulation,
};
pub use sim_core::EventQueueKind;
pub use spec::{GpuSpec, HostCosts, HwPolicy};

// Trace-stream types, re-exported so drivers and harnesses can attach
// sinks without naming `sim_core` directly.
pub use sim_core::trace::{BufferSink, JsonlSink, RingSink, TraceEvent, TraceSink};
