//! SM allocation: weighted waterfilling with per-kernel and per-context caps.
//!
//! On every allocation-changing event the engine re-divides the SM pool
//! among runnable kernels. The policy models what the paper relies on
//! (footnote 1: "Volta and later architecture's hardware scheduler provides
//! a simple mechanism to fairly schedule kernels from equal-priority device
//! queues"):
//!
//! 1. The pool's capacity is divided across *contexts*, weighting each
//!    context by its number of runnable kernels and capping it by its MPS
//!    SM-affinity limit (and by what its kernels can actually use).
//! 2. Each context's share is then divided equally across its runnable
//!    kernels, capped by each kernel's own parallelism limit (`max_sms`).
//!
//! Both levels are instances of the classic *weighted waterfill*: item `i`
//! receives `min(cap_i, weight_i · λ)` where the water level `λ` is chosen
//! so the total equals `min(capacity, Σ cap_i)`. Allocations are fractional
//! (fluid model); the engine only ever uses them as progress rates.

/// One item in a waterfill: a weight and an upper cap.
#[derive(Clone, Copy, Debug)]
pub struct Demand {
    /// Relative fair-share weight (must be > 0).
    pub weight: f64,
    /// Upper bound on this item's allocation (≥ 0).
    pub cap: f64,
}

/// Divides `capacity` among `demands` by weighted waterfilling.
///
/// Item `i` receives `min(cap_i, weight_i · λ)` with `λ` chosen such that
/// the allocations sum to `min(capacity, Σ cap_i)`. Runs in `O(n log n)`.
///
/// # Panics
///
/// Panics (debug assertions) if any weight is non-positive or any cap is
/// negative or non-finite.
pub fn weighted_waterfill(capacity: f64, demands: &[Demand]) -> Vec<f64> {
    debug_assert!(capacity >= 0.0 && capacity.is_finite());
    for d in demands {
        debug_assert!(d.weight > 0.0 && d.weight.is_finite(), "bad weight {d:?}");
        debug_assert!(d.cap >= 0.0 && d.cap.is_finite(), "bad cap {d:?}");
    }
    let n = demands.len();
    if n == 0 {
        return Vec::new();
    }
    let total_cap: f64 = demands.iter().map(|d| d.cap).sum();
    let target = capacity.min(total_cap);
    if target <= 0.0 {
        return vec![0.0; n];
    }
    if total_cap <= capacity {
        // Everyone fits at their cap.
        return demands.iter().map(|d| d.cap).collect();
    }

    // Sort items by the water level at which they saturate (cap / weight).
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&a, &b| {
        let ra = demands[a].cap / demands[a].weight;
        let rb = demands[b].cap / demands[b].weight;
        ra.partial_cmp(&rb).unwrap_or(std::cmp::Ordering::Equal)
    });

    let mut alloc = vec![0.0; n];
    let mut remaining = target;
    let mut active_weight: f64 = demands.iter().map(|d| d.weight).sum();
    for (pos, &i) in order.iter().enumerate() {
        let level = remaining / active_weight;
        let sat_level = demands[i].cap / demands[i].weight;
        if sat_level <= level {
            // Item saturates below the current water level: give its cap.
            alloc[i] = demands[i].cap;
            remaining -= demands[i].cap;
            active_weight -= demands[i].weight;
            if remaining <= 0.0 || active_weight <= 0.0 {
                // Numerical residue; everything else gets the level 0.
                for &j in &order[pos + 1..] {
                    alloc[j] = 0.0;
                }
                return alloc;
            }
        } else {
            // All remaining items share the final level proportionally.
            for &j in &order[pos..] {
                alloc[j] = (demands[j].weight * level).min(demands[j].cap);
            }
            return alloc;
        }
    }
    alloc
}

/// A runnable compute kernel's demand, as seen by the allocator.
#[derive(Clone, Copy, Debug)]
pub struct KernelDemand {
    /// Opaque identifier echoed back in the result (engine slot index).
    pub id: usize,
    /// Index of the context group the kernel belongs to.
    pub ctx_group: usize,
    /// The kernel's own parallelism cap (`max_sms`).
    pub kernel_cap: f64,
}

/// A context group: a set of kernels sharing one SM-affinity limit and one
/// SM pool.
#[derive(Clone, Copy, Debug)]
pub struct CtxGroup {
    /// Which pool the context draws from (0 = shared pool; MIG partitions
    /// get their own pools).
    pub pool: usize,
    /// The context's SM-affinity cap (`f64::INFINITY` for unrestricted).
    pub sm_cap: f64,
}

/// Two-level allocation: pools → contexts (weighted by runnable-kernel
/// count, capped by affinity) → kernels (equal shares, capped by
/// `max_sms`).
///
/// `pool_capacity[p]` is the SM capacity of pool `p`. Returns the SM
/// allocation for each entry of `kernels`, in order.
pub fn allocate_sms(
    pool_capacity: &[f64],
    groups: &[CtxGroup],
    kernels: &[KernelDemand],
) -> Vec<f64> {
    let mut alloc = Vec::new();
    allocate_sms_into(&mut alloc, pool_capacity, groups, kernels);
    alloc
}

/// Like [`allocate_sms`], but writes into a caller-provided buffer so a hot
/// caller (the engine's reallocation path) can reuse its allocation across
/// calls instead of heap-allocating on every event.
pub fn allocate_sms_into(
    alloc: &mut Vec<f64>,
    pool_capacity: &[f64],
    groups: &[CtxGroup],
    kernels: &[KernelDemand],
) {
    alloc.clear();
    alloc.resize(kernels.len(), 0.0);
    if kernels.is_empty() {
        return;
    }

    // Bucket kernels by context group, preserving order for determinism.
    let mut members: Vec<Vec<usize>> = vec![Vec::new(); groups.len()];
    for (slot, k) in kernels.iter().enumerate() {
        assert!(k.ctx_group < groups.len(), "unknown context group");
        debug_assert!(
            groups[k.ctx_group].pool < pool_capacity.len(),
            "context group references an unknown pool"
        );
        members[k.ctx_group].push(slot);
    }

    for (pool, &capacity) in pool_capacity.iter().enumerate() {
        // Level 1: waterfill this pool's capacity across its non-empty
        // context groups.
        let group_ids: Vec<usize> = (0..groups.len())
            .filter(|&g| groups[g].pool == pool && !members[g].is_empty())
            .collect();
        if group_ids.is_empty() {
            continue;
        }
        let group_demands: Vec<Demand> = group_ids
            .iter()
            .map(|&g| {
                let useful: f64 = members[g]
                    .iter()
                    .map(|&slot| kernels[slot].kernel_cap)
                    .sum();
                Demand {
                    weight: members[g].len() as f64,
                    cap: useful.min(groups[g].sm_cap),
                }
            })
            .collect();
        let group_alloc = weighted_waterfill(capacity, &group_demands);

        // Level 2: waterfill each group's share equally across its kernels.
        for (gi, &g) in group_ids.iter().enumerate() {
            let kernel_demands: Vec<Demand> = members[g]
                .iter()
                .map(|&slot| Demand {
                    weight: 1.0,
                    cap: kernels[slot].kernel_cap,
                })
                .collect();
            let kalloc = weighted_waterfill(group_alloc[gi], &kernel_demands);
            for (ki, &slot) in members[g].iter().enumerate() {
                alloc[slot] = kalloc[ki];
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn demands(items: &[(f64, f64)]) -> Vec<Demand> {
        items
            .iter()
            .map(|&(weight, cap)| Demand { weight, cap })
            .collect()
    }

    #[test]
    fn waterfill_under_capacity_gives_caps() {
        let a = weighted_waterfill(100.0, &demands(&[(1.0, 30.0), (1.0, 40.0)]));
        assert_eq!(a, vec![30.0, 40.0]);
    }

    #[test]
    fn waterfill_splits_equally_without_caps() {
        let a = weighted_waterfill(100.0, &demands(&[(1.0, 1e9), (1.0, 1e9)]));
        assert!((a[0] - 50.0).abs() < 1e-9);
        assert!((a[1] - 50.0).abs() < 1e-9);
    }

    #[test]
    fn waterfill_respects_weights() {
        let a = weighted_waterfill(90.0, &demands(&[(1.0, 1e9), (2.0, 1e9)]));
        assert!((a[0] - 30.0).abs() < 1e-9);
        assert!((a[1] - 60.0).abs() < 1e-9);
    }

    #[test]
    fn waterfill_redistributes_saturated_items() {
        // Item 0 caps at 10; the leftover 90 goes to item 1.
        let a = weighted_waterfill(100.0, &demands(&[(1.0, 10.0), (1.0, 1e9)]));
        assert!((a[0] - 10.0).abs() < 1e-9);
        assert!((a[1] - 90.0).abs() < 1e-9);
    }

    #[test]
    fn waterfill_empty_and_zero() {
        assert!(weighted_waterfill(10.0, &[]).is_empty());
        let a = weighted_waterfill(0.0, &demands(&[(1.0, 5.0)]));
        assert_eq!(a, vec![0.0]);
    }

    #[test]
    fn two_level_respects_context_cap() {
        // Context 0 capped at 30 SMs with two greedy kernels; context 1
        // unrestricted with one kernel. Pool of 108.
        let groups = [
            CtxGroup {
                pool: 0,
                sm_cap: 30.0,
            },
            CtxGroup {
                pool: 0,
                sm_cap: f64::INFINITY,
            },
        ];
        let kernels = [
            KernelDemand {
                id: 0,
                ctx_group: 0,
                kernel_cap: 108.0,
            },
            KernelDemand {
                id: 1,
                ctx_group: 0,
                kernel_cap: 108.0,
            },
            KernelDemand {
                id: 2,
                ctx_group: 1,
                kernel_cap: 108.0,
            },
        ];
        let a = allocate_sms(&[108.0], &groups, &kernels);
        assert!((a[0] - 15.0).abs() < 1e-9, "{a:?}");
        assert!((a[1] - 15.0).abs() < 1e-9, "{a:?}");
        assert!((a[2] - 78.0).abs() < 1e-9, "{a:?}");
    }

    #[test]
    fn two_level_fair_across_contexts_by_kernel_count() {
        // Two unrestricted contexts, 1 and 3 kernels: kernels get equal
        // shares (fairness is per kernel, not per context).
        let groups = [
            CtxGroup {
                pool: 0,
                sm_cap: f64::INFINITY,
            },
            CtxGroup {
                pool: 0,
                sm_cap: f64::INFINITY,
            },
        ];
        let kernels = [
            KernelDemand {
                id: 0,
                ctx_group: 0,
                kernel_cap: 1e9,
            },
            KernelDemand {
                id: 1,
                ctx_group: 1,
                kernel_cap: 1e9,
            },
            KernelDemand {
                id: 2,
                ctx_group: 1,
                kernel_cap: 1e9,
            },
            KernelDemand {
                id: 3,
                ctx_group: 1,
                kernel_cap: 1e9,
            },
        ];
        let a = allocate_sms(&[100.0], &groups, &kernels);
        for x in &a {
            assert!((x - 25.0).abs() < 1e-9, "{a:?}");
        }
    }

    #[test]
    fn mig_pools_are_isolated() {
        // Pool 0 (shared, 80 SMs) and pool 1 (MIG, 28 SMs). The MIG kernel
        // cannot spill into the shared pool and vice versa.
        let groups = [
            CtxGroup {
                pool: 0,
                sm_cap: f64::INFINITY,
            },
            CtxGroup {
                pool: 1,
                sm_cap: f64::INFINITY,
            },
        ];
        let kernels = [
            KernelDemand {
                id: 0,
                ctx_group: 0,
                kernel_cap: 1e9,
            },
            KernelDemand {
                id: 1,
                ctx_group: 1,
                kernel_cap: 1e9,
            },
        ];
        let a = allocate_sms(&[80.0, 28.0], &groups, &kernels);
        assert!((a[0] - 80.0).abs() < 1e-9);
        assert!((a[1] - 28.0).abs() < 1e-9);
    }

    #[test]
    fn small_kernel_leaves_room_for_big_one() {
        // A kernel that can only use 10 SMs frees the rest for its peer.
        let groups = [CtxGroup {
            pool: 0,
            sm_cap: f64::INFINITY,
        }];
        let kernels = [
            KernelDemand {
                id: 0,
                ctx_group: 0,
                kernel_cap: 10.0,
            },
            KernelDemand {
                id: 1,
                ctx_group: 0,
                kernel_cap: 108.0,
            },
        ];
        let a = allocate_sms(&[108.0], &groups, &kernels);
        assert!((a[0] - 10.0).abs() < 1e-9);
        assert!((a[1] - 98.0).abs() < 1e-9);
    }

    proptest! {
        /// Waterfill never exceeds capacity or caps, and is work-conserving:
        /// it distributes min(capacity, Σ caps) up to numerical error.
        #[test]
        fn prop_waterfill_sound(
            capacity in 0.0f64..500.0,
            items in proptest::collection::vec((0.1f64..10.0, 0.0f64..200.0), 0..20),
        ) {
            let ds = demands(&items);
            let a = weighted_waterfill(capacity, &ds);
            prop_assert_eq!(a.len(), ds.len());
            let mut total = 0.0;
            for (x, d) in a.iter().zip(&ds) {
                prop_assert!(*x >= -1e-9);
                prop_assert!(*x <= d.cap + 1e-9, "alloc {} over cap {}", x, d.cap);
                total += x;
            }
            let target = capacity.min(ds.iter().map(|d| d.cap).sum::<f64>());
            prop_assert!((total - target).abs() < 1e-6 * (1.0 + target),
                "total {} target {}", total, target);
        }

        /// Two-level allocation never exceeds pool capacity, context caps,
        /// or kernel caps, and fills each pool as far as demand allows.
        #[test]
        fn prop_allocate_sms_sound(
            seed_caps in proptest::collection::vec(1.0f64..120.0, 1..4),
            kernel_specs in proptest::collection::vec((0usize..6, 1.0f64..120.0), 1..24),
            ctx_caps in proptest::collection::vec(proptest::option::of(1.0f64..120.0), 6),
        ) {
            let n_pools = seed_caps.len();
            let groups: Vec<CtxGroup> = ctx_caps
                .iter()
                .enumerate()
                .map(|(i, cap)| CtxGroup {
                    pool: i % n_pools,
                    sm_cap: cap.unwrap_or(f64::INFINITY),
                })
                .collect();
            let kernels: Vec<KernelDemand> = kernel_specs
                .iter()
                .enumerate()
                .map(|(id, &(g, cap))| KernelDemand { id, ctx_group: g, kernel_cap: cap })
                .collect();
            let a = allocate_sms(&seed_caps, &groups, &kernels);

            // Per-kernel cap.
            for (x, k) in a.iter().zip(&kernels) {
                prop_assert!(*x <= k.kernel_cap + 1e-9);
                prop_assert!(*x >= -1e-9);
            }
            // Per-context cap and per-pool capacity.
            for (g, grp) in groups.iter().enumerate() {
                let used: f64 = a.iter().zip(&kernels)
                    .filter(|(_, k)| k.ctx_group == g)
                    .map(|(x, _)| *x)
                    .sum();
                prop_assert!(used <= grp.sm_cap + 1e-6);
            }
            for (p, &cap) in seed_caps.iter().enumerate() {
                let used: f64 = a.iter().zip(&kernels)
                    .filter(|(_, k)| groups[k.ctx_group].pool == p)
                    .map(|(x, _)| *x)
                    .sum();
                prop_assert!(used <= cap + 1e-6, "pool {} used {} cap {}", p, used, cap);
            }
        }
    }
}
