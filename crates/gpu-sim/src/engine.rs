//! The fluid-model GPU execution engine.
//!
//! The engine tracks *instances* (launched kernels) through their lifecycle
//!
//! ```text
//! launched --(launch delay)--> queued --(head of queue)--> running --> done
//! ```
//!
//! Running compute kernels are malleable jobs: on every allocation-changing
//! event (a kernel arriving at the device, starting, or finishing; a context
//! cap changing) the engine re-divides the SM pools with
//! [`crate::alloc::allocate_sms`], applies the interference model, and
//! recomputes every running kernel's completion time from its remaining
//! work and new progress rate. Stale completion events are invalidated with
//! an epoch counter. Memcpy kernels run the same way on the two PCIe DMA
//! engines (one per direction), sharing bandwidth equally.
//!
//! Host-side behaviour is modelled with a single host timeline
//! (`host_free`): launching a kernel occupies the host for the launch
//! overhead and the kernel only reaches its device queue afterwards, which
//! reproduces both the paper's 3 µs launch gap at squad start and the
//! "overspending" hazard of §6.9 (a scheduler that spends more host time
//! per kernel than the kernels' device time starves the GPU).

use std::collections::VecDeque;
use std::sync::Arc;

use sim_core::trace::{TraceEvent, TraceSink};
use sim_core::{DynEventQueue, EventQueueKind, FaultPlan, SimDuration, SimTime};

use crate::alloc::{allocate_sms_into, CtxGroup, KernelDemand};
use crate::channel::{Channel, ChannelModel, NUM_CHANNELS};
use crate::kernel::{KernelDesc, KernelKind, KernelTableId};
use crate::spec::{GpuSpec, HostCosts, HwPolicy};

/// Identifier of a GPU context.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CtxId(pub u32);

/// Identifier of a device queue (CUDA-stream analogue).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct QueueId(pub u32);

/// Handle of one launched kernel instance.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct KernelHandle(pub u64);

/// How a context constrains the kernels launched into it.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum CtxKind {
    /// No SM restriction: kernels may use the whole shared pool.
    Default,
    /// MPS SM-affinity context: kernels in this context may collectively
    /// occupy at most `sm_cap` SMs of the shared pool.
    MpsAffinity {
        /// Maximum concurrent SMs for this context.
        sm_cap: u32,
    },
    /// MIG partition: a hard reservation of `sm_count` SMs — and the
    /// proportional device-memory slice — that no other context can
    /// touch, and beyond which this context can never grow.
    MigPartition {
        /// Number of SMs reserved for this partition.
        sm_count: u32,
    },
}

/// Errors returned by resource-management calls.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum GpuError {
    /// Not enough free device memory.
    OutOfMemory {
        /// MiB requested.
        requested_mib: u64,
        /// MiB still available.
        available_mib: u64,
    },
    /// The MIG partitions would reserve more SMs than the GPU has.
    MigBudgetExceeded {
        /// SMs requested for the new partition.
        requested_sms: u32,
        /// SMs not yet reserved.
        available_sms: u32,
    },
    /// An operation referenced an unknown context.
    UnknownContext(CtxId),
    /// An operation referenced an unknown queue.
    UnknownQueue(QueueId),
    /// The operation is invalid for the context's kind (e.g. resizing the
    /// cap of a MIG partition).
    InvalidOperation(&'static str),
}

impl std::fmt::Display for GpuError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GpuError::OutOfMemory {
                requested_mib,
                available_mib,
            } => write!(
                f,
                "out of device memory: requested {requested_mib} MiB, {available_mib} MiB free"
            ),
            GpuError::MigBudgetExceeded {
                requested_sms,
                available_sms,
            } => write!(
                f,
                "MIG budget exceeded: requested {requested_sms} SMs, {available_sms} unreserved"
            ),
            GpuError::UnknownContext(c) => write!(f, "unknown context {c:?}"),
            GpuError::UnknownQueue(q) => write!(f, "unknown queue {q:?}"),
            GpuError::InvalidOperation(msg) => write!(f, "invalid operation: {msg}"),
        }
    }
}

impl std::error::Error for GpuError {}

/// Lifecycle state of a kernel instance.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum InstState {
    /// Launched on the host; in flight to the device.
    InFlight,
    /// In its device queue, waiting to reach the head.
    Queued,
    /// Executing (possibly at rate 0 if starved of SMs).
    Running,
    /// Finished.
    Done,
    /// Killed by an injected context crash before completing; the host must
    /// re-submit it (reported through [`Gpu::take_failed`]).
    Failed,
}

#[derive(Clone, Debug)]
struct Context {
    kind: CtxKind,
    /// Pool index: 0 is the shared pool; each MIG partition gets its own.
    pool: usize,
}

#[derive(Debug)]
struct Queue {
    ctx: CtxId,
    /// Instances waiting behind the head (the head itself is `running`).
    waiting: VecDeque<usize>,
    /// Slot index of the currently running head, if any.
    running: Option<usize>,
    /// Busy SM·ns integral attributed to this queue.
    busy_integral: f64,
    /// Device arrival time of the last submitted kernel. CUDA streams are
    /// FIFO in *submission* order, so later submissions may never arrive
    /// before earlier ones even when an extra delay (context-switch
    /// vacuum) was applied to an earlier launch.
    last_arrival: SimTime,
}

#[derive(Debug)]
struct Instance {
    desc: KernelDesc,
    queue: QueueId,
    tag: u64,
    state: InstState,
    /// Remaining work: SM·ns for compute, bytes for memcpy.
    remaining: f64,
    /// Current progress rate: SM (work/ns) for compute, bytes/ns for memcpy.
    rate: f64,
    /// Current SM allocation (compute only; for stats/timeline).
    alloc_sms: f64,
    /// Dispatch order among running kernels (greedy-sticky priority).
    run_seq: u64,
    /// Epoch of this instance's currently valid completion event; older
    /// Complete events are stale. Unchanged rates keep their event valid
    /// across reallocations, so the event heap is not churned for
    /// bystander kernels.
    event_epoch: u64,
    /// Generation of this slot; bumped every time the slot is recycled so
    /// stale [`KernelHandle`]s are detectable.
    generation: u32,
    /// Index of this kernel's most recent timeline segment (for
    /// coalescing), or `usize::MAX`.
    last_seg: usize,
    /// Earliest instant the kernel may begin when paying the contended
    /// dispatch gap (unrestricted context with co-resident tenants).
    /// Set once: a kernel never pays the arbitration gap twice.
    dispatch_ready: Option<SimTime>,
    started_at: Option<SimTime>,
    finished_at: Option<SimTime>,
    /// Unique launch sequence number for the trace stream; 0 when the
    /// launch happened with tracing disabled.
    trace_seq: u64,
}

/// One recorded execution segment of a kernel (for fine-grained timelines,
/// paper Fig. 18).
#[derive(Clone, Debug)]
pub struct TimelineSegment {
    /// The kernel instance.
    pub handle: KernelHandle,
    /// Queue it ran on.
    pub queue: QueueId,
    /// Driver-assigned tag.
    pub tag: u64,
    /// Segment start.
    pub from: SimTime,
    /// Segment end.
    pub to: SimTime,
    /// SMs held during the segment (0 for memcpy segments).
    pub sms: f64,
}

#[derive(Debug)]
enum DevEv {
    /// A launched kernel reaches its device queue.
    Arrive { slot: usize },
    /// Predicted completion of a running instance; valid only if `epoch`
    /// matches the engine's current allocation epoch.
    Complete { slot: usize, epoch: u64 },
    /// Host wakeup requested by the driver.
    HostWake { token: u64 },
    /// Internal re-allocation poke (dispatch-gap expiry).
    Poke,
    /// Injected context crash: every live kernel of `app` fails.
    Crash { app: u32 },
    /// Injected DMA-bandwidth change (stall onset or recovery).
    DmaRate { factor: f64, onset: bool },
}

/// Externally visible outcome of one engine step.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StepOutput {
    /// A kernel finished.
    KernelDone {
        /// The finished instance.
        handle: KernelHandle,
        /// Queue it ran on.
        queue: QueueId,
        /// Driver-assigned tag.
        tag: u64,
    },
    /// A host wakeup fired.
    HostWake {
        /// The token passed to [`Gpu::wake_at`].
        token: u64,
    },
    /// An injected MPS context crash fired: every in-flight, queued, and
    /// running kernel of `app` failed. The casualties are retrievable with
    /// [`Gpu::take_failed`]; the driver is expected to re-submit them.
    ContextCrash {
        /// The victim application (low bits of the kernel tag).
        app: u32,
    },
}

/// One kernel killed by an injected context crash, as reported to the
/// driver for re-submission.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FailedKernel {
    /// Handle of the killed instance (now in [`InstState::Failed`]).
    pub handle: KernelHandle,
    /// The queue it was launched into (re-submit to the same queue to
    /// preserve per-queue FIFO ordering).
    pub queue: QueueId,
    /// Driver-assigned tag identifying the kernel.
    pub tag: u64,
}

/// Portable snapshot of a quiesced device's pending engine-level work,
/// produced by [`Gpu::drain_snapshot`] (see DESIGN.md §5i).
///
/// The kernel list is the *abandoned* work: requests owning these kernels
/// must be re-run from scratch wherever the tenant lands next. Queued
/// request order is the driver's to preserve; the engine checkpoint only
/// certifies that nothing was silently dropped.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DeviceCheckpoint {
    /// Barrier instant the device was quiesced at.
    pub at: SimTime,
    /// Every kernel abandoned at the barrier — in launch order, which
    /// preserves per-queue FIFO — with launch tags intact.
    pub abandoned: Vec<FailedKernel>,
}

/// Running totals of injected faults, for robustness reports.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FaultCounters {
    /// Context crashes fired.
    pub crashes: u64,
    /// Kernels killed by those crashes.
    pub kernels_failed: u64,
    /// Kernel launches that drew a straggler multiplier.
    pub stragglers: u64,
    /// DMA stall windows that began.
    pub dma_stalls: u64,
}

/// Live fault-injection state (present only when a non-trivial
/// [`FaultPlan`] is installed, so the no-fault path stays bit-identical).
struct FaultState {
    plan: FaultPlan,
    /// Current copy-bandwidth divisor (1.0 = full speed).
    dma_slow: f64,
    /// Number of stall windows currently open (overlaps nest).
    stall_depth: u32,
    /// Crash casualties awaiting pickup by the driver.
    failed: Vec<FailedKernel>,
    counters: FaultCounters,
}

/// The simulated GPU plus its host timeline.
pub struct Gpu {
    spec: GpuSpec,
    costs: HostCosts,
    now: SimTime,
    host_free: SimTime,
    contexts: Vec<Context>,
    queues: Vec<Queue>,
    instances: Vec<Instance>,
    events: DynEventQueue<DevEv>,
    epoch: u64,
    /// SM capacity of each pool (pool 0 = shared).
    pool_capacity: Vec<f64>,
    mig_reserved_sms: u32,
    mem_used_mib: u64,
    busy_sm_integral: f64,
    last_settle: SimTime,
    timeline: Option<Vec<TimelineSegment>>,
    /// Count of instances not yet `Done`.
    live_instances: usize,
    /// Driver-posted notices drained by the simulation loop (e.g. request
    /// completions feeding closed-loop clients).
    notices: Vec<u64>,
    next_run_seq: u64,
    /// Completed slots available for reuse (only fed when
    /// `recycle_slots` is on).
    free_slots: Vec<usize>,
    /// Whether reported-complete instances are recycled through the
    /// free-list (see [`Gpu::set_slot_recycling`]).
    recycle_slots: bool,
    /// Fault-injection state; `None` unless a non-trivial plan is
    /// installed (see [`Gpu::set_fault_plan`]).
    fault: Option<FaultState>,
    /// Structured trace sink; `None` (the default) keeps every emission
    /// point down to one branch (see [`Gpu::set_trace_sink`]).
    trace: Option<Box<dyn TraceSink>>,
    /// Next launch sequence number for trace events (starts at 1; 0 marks
    /// untraced launches).
    next_trace_seq: u64,
    /// Scratch buffers reused across `reallocate` calls so the per-event
    /// hot path performs no heap allocation in steady state.
    scratch: ReallocScratch,
    /// Interned kernel tables (see [`Gpu::register_kernel_table`]):
    /// launch-by-index targets so steady-state launches clone nothing.
    tables: Vec<Arc<[KernelDesc]>>,
}

/// Reusable buffers for [`Gpu::reallocate_scoped`] / `sticky_allocate`.
#[derive(Default)]
struct ReallocScratch {
    compute: Vec<usize>,
    h2d: Vec<usize>,
    d2h: Vec<usize>,
    groups: Vec<CtxGroup>,
    alloc: Vec<f64>,
    order: Vec<usize>,
    pool_used: Vec<f64>,
    ctx_used: Vec<f64>,
    ctx_runnable: Vec<bool>,
    reserved: Vec<f64>,
    pokes: Vec<SimTime>,
    demands: Vec<KernelDemand>,
}

impl Gpu {
    /// Creates a GPU with the given hardware spec and host cost model,
    /// using the default (four-ary heap) event queue.
    pub fn new(spec: GpuSpec, costs: HostCosts) -> Self {
        Self::with_queue_kind(spec, costs, EventQueueKind::default())
    }

    /// Creates a GPU with an explicit event-queue backend.
    ///
    /// Both backends pop events in identical `(time, insertion)` order, so
    /// this is purely a performance knob: the timing wheel wins at very
    /// high per-lane event volume (see `sim_core::wheel`), the heap
    /// everywhere else. Simulation results are bit-identical either way.
    pub fn with_queue_kind(spec: GpuSpec, costs: HostCosts, queue_kind: EventQueueKind) -> Self {
        let shared = spec.num_sms as f64;
        Gpu {
            spec,
            costs,
            now: SimTime::ZERO,
            host_free: SimTime::ZERO,
            contexts: Vec::new(),
            queues: Vec::new(),
            instances: Vec::new(),
            events: DynEventQueue::new(queue_kind),
            epoch: 0,
            pool_capacity: vec![shared],
            mig_reserved_sms: 0,
            mem_used_mib: 0,
            busy_sm_integral: 0.0,
            last_settle: SimTime::ZERO,
            timeline: None,
            live_instances: 0,
            notices: Vec::new(),
            next_run_seq: 0,
            free_slots: Vec::new(),
            recycle_slots: false,
            fault: None,
            trace: None,
            next_trace_seq: 1,
            scratch: ReallocScratch::default(),
            tables: Vec::new(),
        }
    }

    /// Installs a structured trace sink; every subsequent scheduler event
    /// (kernel launch/start/complete, SM allocation changes, cap changes,
    /// injected faults) is recorded through it in virtual time.
    ///
    /// Tracing is purely observational: it never changes scheduling
    /// decisions, event order, or timing, so traced runs are bit-identical
    /// to untraced ones. With no sink installed (the default) each
    /// emission point costs a single branch.
    pub fn set_trace_sink(&mut self, sink: Box<dyn TraceSink>) {
        self.trace = Some(sink);
    }

    /// Removes and returns the installed trace sink (flushing it), if any.
    pub fn take_trace_sink(&mut self) -> Option<Box<dyn TraceSink>> {
        let mut sink = self.trace.take();
        if let Some(s) = sink.as_mut() {
            s.flush();
        }
        sink
    }

    /// True when a trace sink is installed.
    #[inline]
    pub fn tracing_enabled(&self) -> bool {
        self.trace.is_some()
    }

    /// Records `ev` on the installed sink; no-op when tracing is off.
    /// Drivers emit their scheduler-level events (squads, mode shifts,
    /// retries) through this. Guard event construction with
    /// [`Gpu::tracing_enabled`] to keep the disabled path allocation-free.
    #[inline]
    pub fn trace_emit(&mut self, ev: TraceEvent) {
        if let Some(sink) = self.trace.as_mut() {
            sink.record(&ev);
        }
    }

    /// Installs a deterministic fault plan.
    ///
    /// Crash and DMA-stall schedules become pending device events; drift
    /// and straggler multipliers apply to subsequent compute launches
    /// (victims are identified by the application index in the low bits of
    /// the kernel tag, per [`crate::sim::encode_tag`]). Installing a plan
    /// for which [`FaultPlan::is_none`] holds stores nothing at all, so
    /// that path is bit-identical to never calling this method.
    pub fn set_fault_plan(&mut self, plan: FaultPlan) {
        if plan.is_none() {
            self.fault = None;
            return;
        }
        for c in plan.crashes() {
            self.events
                .push(c.at.max(self.now), DevEv::Crash { app: c.app });
        }
        for s in plan.dma_stalls() {
            self.events.push(
                s.at.max(self.now),
                DevEv::DmaRate {
                    factor: s.factor,
                    onset: true,
                },
            );
            self.events.push(
                s.until.max(self.now),
                DevEv::DmaRate {
                    factor: s.factor,
                    onset: false,
                },
            );
        }
        self.fault = Some(FaultState {
            plan,
            dma_slow: 1.0,
            stall_depth: 0,
            failed: Vec::new(),
            counters: FaultCounters::default(),
        });
    }

    /// Drains the kernels killed by context crashes since the last call
    /// (typically invoked right after [`StepOutput::ContextCrash`]).
    pub fn take_failed(&mut self) -> Vec<FailedKernel> {
        self.fault
            .as_mut()
            .map(|f| std::mem::take(&mut f.failed))
            .unwrap_or_default()
    }

    /// Drains crash casualties into `buf` (cleared first), preserving both
    /// buffers' capacity — the drain-into counterpart of
    /// [`Gpu::take_failed`].
    pub fn take_failed_into(&mut self, buf: &mut Vec<FailedKernel>) {
        buf.clear();
        if let Some(f) = self.fault.as_mut() {
            buf.append(&mut f.failed);
        }
    }

    /// Totals of faults injected so far (all zero without a plan).
    pub fn fault_counters(&self) -> FaultCounters {
        self.fault.as_ref().map(|f| f.counters).unwrap_or_default()
    }

    /// Enables (or disables) recycling of completed instance slots through
    /// a free-list, bounding `instances` growth on long traces.
    ///
    /// Handles are generation-tagged, so a stale handle to a recycled slot
    /// reports `Done` / `None` rather than another kernel's data — but
    /// callers that introspect kernels *after* their completion was
    /// reported (e.g. the profiler, which queries every handle post-drain)
    /// must leave recycling off. Long-trace driver loops that only consume
    /// [`StepOutput::KernelDone`] tags can enable it freely: slot reuse
    /// never changes scheduling order, so results are bit-identical.
    pub fn set_slot_recycling(&mut self, on: bool) {
        self.recycle_slots = on;
    }

    /// Creates an A100 with the paper's host costs.
    pub fn a100() -> Self {
        Self::new(GpuSpec::a100(), HostCosts::paper())
    }

    /// The hardware spec.
    pub fn spec(&self) -> &GpuSpec {
        &self.spec
    }

    /// The host cost model.
    pub fn costs(&self) -> &HostCosts {
        &self.costs
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The instant at which the host thread becomes free.
    pub fn host_free_at(&self) -> SimTime {
        self.host_free.max(self.now)
    }

    /// Enables per-kernel timeline recording (costs memory; off by default).
    pub fn enable_timeline(&mut self) {
        if self.timeline.is_none() {
            self.timeline = Some(Vec::new());
        }
    }

    /// The recorded timeline segments, if recording was enabled.
    pub fn timeline(&self) -> &[TimelineSegment] {
        self.timeline.as_deref().unwrap_or(&[])
    }

    // ------------------------------------------------------------------
    // Resource management
    // ------------------------------------------------------------------

    /// Creates a GPU context.
    ///
    /// MPS contexts consume [`GpuSpec::mps_context_mib`] of device memory
    /// (§6.9). MIG partitions additionally reserve their SMs exclusively.
    pub fn create_context(&mut self, kind: CtxKind) -> Result<CtxId, GpuError> {
        let pool = match kind {
            CtxKind::Default => 0,
            CtxKind::MpsAffinity { sm_cap } => {
                if sm_cap == 0 || sm_cap > self.spec.num_sms {
                    return Err(GpuError::InvalidOperation(
                        "MPS affinity cap must be in 1..=num_sms",
                    ));
                }
                self.alloc_memory(self.spec.mps_context_mib)?;
                0
            }
            CtxKind::MigPartition { sm_count } => {
                let available = self.spec.num_sms - self.mig_reserved_sms;
                if sm_count == 0 || sm_count > available {
                    return Err(GpuError::MigBudgetExceeded {
                        requested_sms: sm_count,
                        available_sms: available,
                    });
                }
                // A MIG instance carves out its proportional device-memory
                // slice along with its SMs — the tenant's allocations then
                // live inside that reservation (no extra `alloc_memory`
                // needed, and no access to other slices' memory).
                let mem_slice = self.spec.memory_mib * sm_count as u64 / self.spec.num_sms as u64;
                self.alloc_memory(mem_slice)?;
                self.mig_reserved_sms += sm_count;
                self.pool_capacity[0] = (self.spec.num_sms - self.mig_reserved_sms) as f64;
                self.pool_capacity.push(sm_count as f64);
                // Pool shape only affects compute allocation.
                self.reallocate_scoped(true, false);
                self.pool_capacity.len() - 1
            }
        };
        let id = CtxId(self.contexts.len() as u32);
        self.contexts.push(Context { kind, pool });
        if self.trace.is_some() {
            if let CtxKind::MpsAffinity { sm_cap } = kind {
                self.trace_emit(TraceEvent::PartitionSet {
                    at: self.now,
                    ctx: id.0,
                    sm_cap,
                });
            }
        }
        Ok(id)
    }

    /// Creates a device queue bound to `ctx`.
    pub fn create_queue(&mut self, ctx: CtxId) -> Result<QueueId, GpuError> {
        if ctx.0 as usize >= self.contexts.len() {
            return Err(GpuError::UnknownContext(ctx));
        }
        let id = QueueId(self.queues.len() as u32);
        self.queues.push(Queue {
            ctx,
            waiting: VecDeque::new(),
            running: None,
            busy_integral: 0.0,
            last_arrival: SimTime::ZERO,
        });
        Ok(id)
    }

    /// Changes the SM-affinity cap of an MPS context (used by adaptive
    /// baselines such as GSLICE). Takes effect immediately.
    pub fn set_mps_cap(&mut self, ctx: CtxId, sm_cap: u32) -> Result<(), GpuError> {
        let c = self
            .contexts
            .get_mut(ctx.0 as usize)
            .ok_or(GpuError::UnknownContext(ctx))?;
        match c.kind {
            CtxKind::MpsAffinity { .. } => {
                if sm_cap == 0 || sm_cap > self.spec.num_sms {
                    return Err(GpuError::InvalidOperation(
                        "MPS affinity cap must be in 1..=num_sms",
                    ));
                }
                c.kind = CtxKind::MpsAffinity { sm_cap };
                if self.trace.is_some() {
                    self.trace_emit(TraceEvent::PartitionSet {
                        at: self.now,
                        ctx: ctx.0,
                        sm_cap,
                    });
                }
                // Context caps only affect compute allocation.
                self.reallocate_scoped(true, false);
                Ok(())
            }
            _ => Err(GpuError::InvalidOperation(
                "set_mps_cap only applies to MPS affinity contexts",
            )),
        }
    }

    /// Reserves `mib` of device memory (application weights/activations).
    pub fn alloc_memory(&mut self, mib: u64) -> Result<(), GpuError> {
        let available = self.spec.memory_mib - self.mem_used_mib;
        if mib > available {
            return Err(GpuError::OutOfMemory {
                requested_mib: mib,
                available_mib: available,
            });
        }
        self.mem_used_mib += mib;
        Ok(())
    }

    /// Releases previously reserved device memory.
    pub fn free_memory(&mut self, mib: u64) {
        self.mem_used_mib = self.mem_used_mib.saturating_sub(mib);
    }

    /// Device memory currently reserved, in MiB.
    pub fn memory_used_mib(&self) -> u64 {
        self.mem_used_mib
    }

    // ------------------------------------------------------------------
    // Host operations
    // ------------------------------------------------------------------

    /// Occupies the host thread for `d` (scheduling work, synchronization).
    pub fn charge_host(&mut self, d: SimDuration) {
        self.host_free = self.host_free.max(self.now) + d;
    }

    /// Launches a kernel into `queue`.
    ///
    /// The launch occupies the host for the per-kernel launch overhead; the
    /// kernel reaches its device queue when the host call returns.
    pub fn launch(
        &mut self,
        queue: QueueId,
        desc: KernelDesc,
        tag: u64,
    ) -> Result<KernelHandle, GpuError> {
        self.launch_delayed(queue, desc, tag, SimDuration::ZERO)
    }

    /// Launches a kernel whose device arrival is additionally delayed by
    /// `extra` (models the 50 µs context-switch vacuum of §6.9, which stalls
    /// only this queue).
    pub fn launch_delayed(
        &mut self,
        queue: QueueId,
        desc: KernelDesc,
        tag: u64,
        extra: SimDuration,
    ) -> Result<KernelHandle, GpuError> {
        if queue.0 as usize >= self.queues.len() {
            return Err(GpuError::UnknownQueue(queue));
        }
        self.charge_host(self.costs.kernel_launch);
        let arrive_at = (self.host_free + extra).max(self.queues[queue.0 as usize].last_arrival);
        self.queues[queue.0 as usize].last_arrival = arrive_at;
        Ok(self.enqueue_instance(queue, desc, tag, arrive_at))
    }

    /// Registers one launched instance and schedules its device arrival.
    fn enqueue_instance(
        &mut self,
        queue: QueueId,
        desc: KernelDesc,
        tag: u64,
        arrive_at: SimTime,
    ) -> KernelHandle {
        let mut remaining = match desc.kind {
            KernelKind::Compute { .. } => desc.work,
            KernelKind::MemcpyH2D { bytes } | KernelKind::MemcpyD2H { bytes } => bytes as f64,
        };
        // Injected stragglers / profile drift inflate the *actual* work of
        // compute launches while the driver keeps predicting from the
        // unmodified profile — exactly the mismatch the watchdog must catch.
        if let (Some(f), KernelKind::Compute { .. }) = (&mut self.fault, desc.kind) {
            let app = crate::sim::decode_tag(tag).0 as u32;
            let mult = f.plan.work_multiplier(app);
            if mult != 1.0 {
                remaining *= mult;
                if mult > f.plan.drift_factor(app) {
                    f.counters.stragglers += 1;
                }
            }
        }
        let trace_seq = if self.trace.is_some() {
            let seq = self.next_trace_seq;
            self.next_trace_seq += 1;
            let (app, kernel) = crate::sim::decode_tag(tag);
            let ctx = self.queues[queue.0 as usize].ctx;
            let restricted = matches!(
                self.contexts[ctx.0 as usize].kind,
                CtxKind::MpsAffinity { .. }
            );
            self.trace_emit(TraceEvent::KernelLaunch {
                at: self.now,
                seq,
                app: app as u32,
                kernel: kernel as u32,
                queue: queue.0,
                restricted,
            });
            seq
        } else {
            0
        };
        let inst = Instance {
            desc,
            queue,
            tag,
            state: InstState::InFlight,
            remaining,
            rate: 0.0,
            alloc_sms: 0.0,
            run_seq: u64::MAX,
            event_epoch: 0,
            generation: 0,
            last_seg: usize::MAX,
            dispatch_ready: None,
            started_at: None,
            finished_at: None,
            trace_seq,
        };
        let slot = match self.free_slots.pop() {
            Some(s) => {
                // The slot keeps its (already bumped) generation so stale
                // handles from the previous occupant stay detectable.
                let generation = self.instances[s].generation;
                self.instances[s] = Instance { generation, ..inst };
                s
            }
            None => {
                debug_assert!(self.instances.len() < u32::MAX as usize);
                self.instances.push(inst);
                self.instances.len() - 1
            }
        };
        self.live_instances += 1;
        self.events.push(arrive_at, DevEv::Arrive { slot });
        Self::handle_for(slot, self.instances[slot].generation)
    }

    /// Packs a slot index and its generation into a handle. Generation 0
    /// handles are numerically equal to their slot index, so recycling-off
    /// behaviour (the default) is unchanged.
    fn handle_for(slot: usize, generation: u32) -> KernelHandle {
        KernelHandle(((generation as u64) << 32) | slot as u64)
    }

    /// Resolves a handle to its instance, or `None` if the slot has since
    /// been recycled (the handle's kernel necessarily completed).
    fn resolve(&self, h: KernelHandle) -> Option<&Instance> {
        let slot = (h.0 & 0xFFFF_FFFF) as usize;
        let generation = (h.0 >> 32) as u32;
        let inst = self.instances.get(slot)?;
        (inst.generation == generation).then_some(inst)
    }

    /// Launches a group of kernels as one unit (a CUDA-graph analogue):
    /// the whole group costs a single host launch overhead and arrives at
    /// the device together, in order.
    ///
    /// This is the mechanism behind §6.10's "launching a sequence of
    /// kernels to the GPU with a single API call".
    pub fn launch_graph(
        &mut self,
        queue: QueueId,
        group: Vec<(KernelDesc, u64)>,
    ) -> Result<Vec<KernelHandle>, GpuError> {
        if queue.0 as usize >= self.queues.len() {
            return Err(GpuError::UnknownQueue(queue));
        }
        if group.is_empty() {
            return Ok(Vec::new());
        }
        self.charge_host(self.costs.kernel_launch);
        let arrive_at = self
            .host_free
            .max(self.queues[queue.0 as usize].last_arrival);
        self.queues[queue.0 as usize].last_arrival = arrive_at;
        let handles = group
            .into_iter()
            .map(|(desc, tag)| self.enqueue_instance(queue, desc, tag, arrive_at))
            .collect();
        Ok(handles)
    }

    /// Interns a kernel table: an `Arc` slice of descriptors (typically
    /// one application's profiled kernel sequence) that subsequent
    /// [`Gpu::launch_table`] / [`Gpu::launch_table_graph`] calls reference
    /// by `(table, index)`. Registering costs one `Arc` refcount bump plus
    /// a slot in the table registry; launching from a table then clones
    /// nothing but the descriptor's interned `Arc<str>` name.
    pub fn register_kernel_table(&mut self, table: Arc<[KernelDesc]>) -> KernelTableId {
        debug_assert!(self.tables.len() < u32::MAX as usize);
        self.tables.push(table);
        KernelTableId((self.tables.len() - 1) as u32)
    }

    /// The descriptors behind a registered table.
    pub fn kernel_table(&self, table: KernelTableId) -> Option<&[KernelDesc]> {
        self.tables.get(table.0 as usize).map(|t| &t[..])
    }

    /// Looks up `table[index]`, or the reason it does not exist.
    fn table_desc(&self, table: KernelTableId, index: usize) -> Result<&KernelDesc, GpuError> {
        self.tables
            .get(table.0 as usize)
            .ok_or(GpuError::InvalidOperation("unknown kernel table"))?
            .get(index)
            .ok_or(GpuError::InvalidOperation("kernel index out of table"))
    }

    /// [`Gpu::launch`] addressing the kernel as `(table, index)`; exact
    /// same host charge and device arrival as the by-value form.
    pub fn launch_table(
        &mut self,
        queue: QueueId,
        table: KernelTableId,
        index: usize,
        tag: u64,
    ) -> Result<KernelHandle, GpuError> {
        self.launch_table_delayed(queue, table, index, tag, SimDuration::ZERO)
    }

    /// [`Gpu::launch_delayed`] addressing the kernel as `(table, index)`.
    pub fn launch_table_delayed(
        &mut self,
        queue: QueueId,
        table: KernelTableId,
        index: usize,
        tag: u64,
        extra: SimDuration,
    ) -> Result<KernelHandle, GpuError> {
        if queue.0 as usize >= self.queues.len() {
            return Err(GpuError::UnknownQueue(queue));
        }
        let desc = self.table_desc(table, index)?.clone();
        self.charge_host(self.costs.kernel_launch);
        let arrive_at = (self.host_free + extra).max(self.queues[queue.0 as usize].last_arrival);
        self.queues[queue.0 as usize].last_arrival = arrive_at;
        Ok(self.enqueue_instance(queue, desc, tag, arrive_at))
    }

    /// [`Gpu::launch_graph`] addressing the group as `table[range]`, with
    /// `tag_for(index)` supplying each kernel's tag. Identical host-charge
    /// and arrival semantics — an empty range costs nothing, a non-empty
    /// one costs a single launch overhead — but builds no group `Vec` and
    /// returns no handle `Vec`, so the steady-state squad feed allocates
    /// nothing.
    pub fn launch_table_graph(
        &mut self,
        queue: QueueId,
        table: KernelTableId,
        range: std::ops::Range<usize>,
        mut tag_for: impl FnMut(usize) -> u64,
    ) -> Result<(), GpuError> {
        if queue.0 as usize >= self.queues.len() {
            return Err(GpuError::UnknownQueue(queue));
        }
        if range.is_empty() {
            return Ok(());
        }
        // Validate the whole range up front so a partial group is never
        // enqueued (matches `launch_graph`, which takes the group whole).
        self.table_desc(table, range.end - 1)?;
        self.charge_host(self.costs.kernel_launch);
        let arrive_at = self
            .host_free
            .max(self.queues[queue.0 as usize].last_arrival);
        self.queues[queue.0 as usize].last_arrival = arrive_at;
        for index in range {
            let desc = self.tables[table.0 as usize][index].clone();
            self.enqueue_instance(queue, desc, tag_for(index), arrive_at);
        }
        Ok(())
    }

    /// Posts a notice for the simulation loop (drivers use this to signal
    /// request completions to closed-loop workload clients).
    pub fn post_notice(&mut self, notice: u64) {
        self.notices.push(notice);
    }

    /// Drains all posted notices (called by the simulation loop).
    pub fn drain_notices(&mut self) -> Vec<u64> {
        std::mem::take(&mut self.notices)
    }

    /// Drains all posted notices into `buf` (cleared first). Unlike
    /// [`Gpu::drain_notices`], both the notice buffer and `buf` keep their
    /// capacity, so a caller that reuses `buf` makes the notice path
    /// allocation-free in steady state.
    pub fn drain_notices_into(&mut self, buf: &mut Vec<u64>) {
        buf.clear();
        buf.append(&mut self.notices);
    }

    /// Requests a [`StepOutput::HostWake`] callback at `at`.
    pub fn wake_at(&mut self, at: SimTime, token: u64) {
        self.events
            .push(at.max(self.now), DevEv::HostWake { token });
    }

    /// Requests a wakeup for the instant the host thread becomes free —
    /// i.e. after all previously charged host work completes.
    pub fn wake_when_host_free(&mut self, token: u64) {
        self.wake_at(self.host_free_at(), token);
    }

    // ------------------------------------------------------------------
    // Introspection
    // ------------------------------------------------------------------

    /// Lifecycle state of an instance. A recycled slot's stale handle
    /// reports `Done` (the only state a slot can be recycled from).
    pub fn kernel_state(&self, h: KernelHandle) -> InstState {
        self.resolve(h).map_or(InstState::Done, |i| i.state)
    }

    /// When the instance finished, if it has. `None` for stale handles to
    /// recycled slots (their timestamps were dropped with the slot).
    pub fn kernel_finished_at(&self, h: KernelHandle) -> Option<SimTime> {
        self.resolve(h).and_then(|i| i.finished_at)
    }

    /// When the instance started running, if it has (`None` for stale
    /// handles to recycled slots).
    pub fn kernel_started_at(&self, h: KernelHandle) -> Option<SimTime> {
        self.resolve(h).and_then(|i| i.started_at)
    }

    /// The name of the launched kernel.
    pub fn kernel_name(&self, h: KernelHandle) -> &str {
        self.resolve(h).map_or("<recycled>", |i| &i.desc.name)
    }

    /// Capacity currently devoted to instance bookkeeping (slots in use or
    /// on the free-list); with recycling on this stays bounded by the peak
    /// number of concurrently live kernels.
    pub fn instance_slots(&self) -> usize {
        self.instances.len()
    }

    /// Number of instances that have not yet completed.
    pub fn live_instances(&self) -> usize {
        self.live_instances
    }

    /// True when no kernels are in flight, queued, or running.
    pub fn is_device_idle(&self) -> bool {
        self.live_instances == 0
    }

    /// Total busy SM·seconds accumulated so far (for utilization metrics).
    pub fn busy_sm_seconds(&self) -> f64 {
        self.busy_sm_integral / 1e9
    }

    /// Busy SM·seconds attributed to one queue.
    pub fn queue_busy_sm_seconds(&self, queue: QueueId) -> f64 {
        self.queues[queue.0 as usize].busy_integral / 1e9
    }

    /// Average GPU utilization over `[from, to]` as a fraction of
    /// `num_sms · (to - from)`. Requires `to > from`.
    pub fn utilization(&self, from: SimTime, to: SimTime, busy_start: f64, busy_end: f64) -> f64 {
        let span = to.duration_since(from).as_nanos() as f64;
        if span <= 0.0 {
            return 0.0;
        }
        ((busy_end - busy_start) * 1e9 / (self.spec.num_sms as f64 * span)).clamp(0.0, 1.0)
    }

    /// Earliest pending device event, if any.
    pub fn peek_event_time(&self) -> Option<SimTime> {
        self.events.peek_time()
    }

    /// The event-queue backend this GPU was constructed with.
    pub fn queue_kind(&self) -> EventQueueKind {
        self.events.kind()
    }

    // ------------------------------------------------------------------
    // Engine core
    // ------------------------------------------------------------------

    /// Advances the clock to `t` without processing events at `t`.
    ///
    /// # Panics
    ///
    /// Panics if an event earlier than `t` is pending, or if `t` is in the
    /// past — both indicate a driver/loop bug.
    pub fn advance_to(&mut self, t: SimTime) {
        assert!(t >= self.now, "time cannot go backwards");
        if let Some(et) = self.events.peek_time() {
            assert!(et >= t, "advance_to would skip over a pending event");
        }
        self.settle(t);
        self.now = t;
    }

    /// Processes the next pending event; returns an externally visible
    /// output if the event produced one (stale completion events return
    /// `None`). Returns `None` with no state change when no events remain.
    pub fn step(&mut self) -> Option<StepOutput> {
        let (t, ev) = self.events.pop()?;
        debug_assert!(t >= self.now);
        self.settle(t);
        self.now = t;
        match ev {
            DevEv::Arrive { slot } => {
                if self.instances[slot].state != InstState::InFlight {
                    // The launch was killed in flight by a context crash:
                    // the kernel never reaches its device queue.
                    return None;
                }
                self.instances[slot].state = InstState::Queued;
                let q = self.instances[slot].queue.0 as usize;
                self.queues[q].waiting.push_back(slot);
                // If the kernel queued behind a running head, the running
                // set is unchanged: every rate would recompute to its
                // current value, so the reallocation is skipped entirely.
                if let Some(started) = self.try_start_head(q) {
                    let compute = self.instances[started].desc.kind.is_compute();
                    self.reallocate_scoped(compute, !compute);
                }
                None
            }
            DevEv::Complete { slot, epoch } => {
                if epoch != self.instances[slot].event_epoch
                    || self.instances[slot].state != InstState::Running
                {
                    return None; // Stale prediction.
                }
                // Guard against float residue: if rounding left real work
                // behind, reschedule the completion instead of dropping it
                // (a dropped matching-epoch event would strand the kernel
                // until some unrelated reallocation).
                if self.instances[slot].remaining > 1e-6 {
                    self.push_completion(slot);
                    return None;
                }
                self.finish(slot);
                let inst = &self.instances[slot];
                let out = StepOutput::KernelDone {
                    handle: Self::handle_for(slot, inst.generation),
                    queue: inst.queue,
                    tag: inst.tag,
                };
                if self.recycle_slots {
                    // The completion is being reported right now; after the
                    // driver's callback the slot may be reused. Bump the
                    // generation so the reported handle turns stale.
                    self.instances[slot].generation =
                        self.instances[slot].generation.wrapping_add(1);
                    self.free_slots.push(slot);
                }
                Some(out)
            }
            DevEv::HostWake { token } => Some(StepOutput::HostWake { token }),
            DevEv::Poke => {
                // Pokes only exist for compute dispatch gaps; DMA rates
                // cannot have changed.
                self.reallocate_scoped(true, false);
                None
            }
            DevEv::Crash { app } => {
                self.inject_crash(app);
                Some(StepOutput::ContextCrash { app })
            }
            DevEv::DmaRate { factor, onset } => {
                if self.trace.is_some() {
                    self.trace_emit(TraceEvent::DmaStall {
                        at: self.now,
                        factor,
                        onset,
                    });
                }
                if let Some(f) = &mut self.fault {
                    if onset {
                        f.stall_depth += 1;
                        // Overlapping stalls hold the strongest divisor
                        // until the last window closes.
                        f.dma_slow = f.dma_slow.max(factor);
                        f.counters.dma_stalls += 1;
                    } else {
                        f.stall_depth = f.stall_depth.saturating_sub(1);
                        if f.stall_depth == 0 {
                            f.dma_slow = 1.0;
                        }
                    }
                }
                self.reallocate_scoped(false, true);
                None
            }
        }
    }

    /// Kills every not-yet-done kernel of `app`: in-flight launches never
    /// arrive, queued kernels leave their queues, running kernels stop
    /// making progress. Casualties move to [`InstState::Failed`] and are
    /// reported through [`Gpu::take_failed`]. Failed slots are never
    /// recycled, so their handles and any stale `Arrive` events stay valid.
    fn inject_crash(&mut self, app: u32) {
        let mut touched_queues = Vec::new();
        let mut casualties = 0u32;
        for slot in 0..self.instances.len() {
            let inst = &self.instances[slot];
            if matches!(inst.state, InstState::Done | InstState::Failed) {
                continue;
            }
            if crate::sim::decode_tag(inst.tag).0 as u32 != app {
                continue;
            }
            let state = inst.state;
            let q = inst.queue.0 as usize;
            let inst = &mut self.instances[slot];
            inst.state = InstState::Failed;
            inst.rate = 0.0;
            inst.alloc_sms = 0.0;
            inst.finished_at = None;
            let generation = inst.generation;
            match state {
                InstState::InFlight => {
                    // The pending Arrive event finds the slot Failed and
                    // is dropped there.
                }
                InstState::Queued => {
                    self.queues[q].waiting.retain(|&s| s != slot);
                }
                InstState::Running => {
                    if self.queues[q].running == Some(slot) {
                        self.queues[q].running = None;
                        touched_queues.push(q);
                    }
                }
                InstState::Done | InstState::Failed => unreachable!(),
            }
            self.live_instances -= 1;
            let failed = FailedKernel {
                handle: Self::handle_for(slot, generation),
                queue: QueueId(q as u32),
                tag: self.instances[slot].tag,
            };
            if let Some(f) = &mut self.fault {
                f.failed.push(failed);
                f.counters.kernels_failed += 1;
            }
            casualties += 1;
            if self.trace.is_some() {
                let seq = self.instances[slot].trace_seq;
                if seq != 0 {
                    self.trace_emit(TraceEvent::KernelFailed {
                        at: self.now,
                        seq,
                        queue: q as u32,
                    });
                }
            }
        }
        if let Some(f) = &mut self.fault {
            f.counters.crashes += 1;
        }
        if self.trace.is_some() {
            self.trace_emit(TraceEvent::CrashInjected {
                at: self.now,
                app,
                casualties,
            });
        }
        for q in touched_queues {
            self.try_start_head(q);
        }
        // Survivors inherit the freed SMs / bandwidth immediately.
        self.reallocate_scoped(true, true);
    }

    /// Quiesces the device at the current instant and exports its pending
    /// work as a portable checkpoint: every in-flight, queued, and running
    /// kernel of every tenant is abandoned (reported only through the
    /// returned [`DeviceCheckpoint`], never through [`Gpu::take_failed`])
    /// and all remaining device events are dropped.
    ///
    /// After the call the device is idle and permanently drained — this is
    /// the engine half of a live migration or failure evacuation; the
    /// driver half supplies the request-level checkpoint
    /// (`BlessDriver::export_checkpoint`). Call it after advancing the
    /// engine to the fault barrier (e.g. via [`Gpu::advance_until`]).
    pub fn drain_snapshot(&mut self) -> DeviceCheckpoint {
        let mut abandoned = Vec::new();
        for slot in 0..self.instances.len() {
            let inst = &self.instances[slot];
            if matches!(inst.state, InstState::Done | InstState::Failed) {
                continue;
            }
            let state = inst.state;
            let q = inst.queue.0 as usize;
            let inst = &mut self.instances[slot];
            inst.state = InstState::Failed;
            inst.rate = 0.0;
            inst.alloc_sms = 0.0;
            inst.finished_at = None;
            let generation = inst.generation;
            match state {
                InstState::InFlight => {
                    // The pending Arrive event is dropped with the queue.
                }
                InstState::Queued => {
                    self.queues[q].waiting.retain(|&s| s != slot);
                }
                InstState::Running => {
                    if self.queues[q].running == Some(slot) {
                        self.queues[q].running = None;
                    }
                }
                InstState::Done | InstState::Failed => unreachable!(),
            }
            self.live_instances -= 1;
            if self.trace.is_some() {
                let seq = self.instances[slot].trace_seq;
                if seq != 0 {
                    self.trace_emit(TraceEvent::KernelFailed {
                        at: self.now,
                        seq,
                        queue: q as u32,
                    });
                }
            }
            abandoned.push(FailedKernel {
                handle: Self::handle_for(slot, generation),
                queue: QueueId(q as u32),
                tag: self.instances[slot].tag,
            });
        }
        self.events.clear();
        DeviceCheckpoint {
            at: self.now,
            abandoned,
        }
    }

    /// Runs the device forward until no events remain, discarding outputs.
    /// Useful in tests and for solo-run profiling where the driver does not
    /// react to completions.
    pub fn drain(&mut self) {
        while self.step().is_some() || !self.events.is_empty() {}
    }

    /// Processes every pending event strictly earlier than `limit`,
    /// appending each externally visible output with its timestamp to
    /// `out`. Events at exactly `limit` (or later) stay pending, so a
    /// caller coordinating several engines can stop each one at a common
    /// barrier and interleave deterministically.
    ///
    /// `out` is reused across calls by design (the lane engine's parallel
    /// drain holds one such buffer per lane), keeping the steady-state
    /// path allocation-free once buffers reach their high-water mark.
    pub fn advance_until(&mut self, limit: SimTime, out: &mut Vec<(SimTime, StepOutput)>) {
        while let Some(et) = self.events.peek_time() {
            if et >= limit {
                break;
            }
            if let Some(o) = self.step() {
                out.push((self.now, o));
            }
        }
    }

    /// Runs the device until no events remain, appending every externally
    /// visible output with its timestamp to `out` (a [`Gpu::drain`] that
    /// keeps the outputs; same buffer-reuse contract as
    /// [`Gpu::advance_until`]).
    pub fn drain_outputs_into(&mut self, out: &mut Vec<(SimTime, StepOutput)>) {
        loop {
            match self.step() {
                Some(o) => out.push((self.now, o)),
                None => {
                    if self.events.is_empty() {
                        break;
                    }
                }
            }
        }
    }

    fn finish(&mut self, slot: usize) {
        let inst = &mut self.instances[slot];
        inst.state = InstState::Done;
        inst.remaining = 0.0;
        inst.rate = 0.0;
        inst.alloc_sms = 0.0;
        inst.finished_at = Some(self.now);
        let finished_compute = inst.desc.kind.is_compute();
        let q = inst.queue.0 as usize;
        let seq = inst.trace_seq;
        if self.trace.is_some() && seq != 0 {
            self.trace_emit(TraceEvent::KernelComplete {
                at: self.now,
                seq,
                queue: q as u32,
            });
        }
        self.live_instances -= 1;
        debug_assert_eq!(self.queues[q].running, Some(slot));
        self.queues[q].running = None;
        let started = self.try_start_head(q);
        // Compute allocation depends only on the running compute set, DMA
        // rates only on the per-direction memcpy counts: recompute just the
        // side(s) this transition touched.
        let started_compute = started.map(|s| self.instances[s].desc.kind.is_compute());
        let compute_dirty = finished_compute || started_compute == Some(true);
        let dma_dirty = !finished_compute || started_compute == Some(false);
        self.reallocate_scoped(compute_dirty, dma_dirty);
    }

    fn try_start_head(&mut self, q: usize) -> Option<usize> {
        if self.queues[q].running.is_some() {
            return None;
        }
        let slot = self.queues[q].waiting.pop_front()?;
        self.queues[q].running = Some(slot);
        let inst = &mut self.instances[slot];
        inst.state = InstState::Running;
        inst.run_seq = self.next_run_seq;
        self.next_run_seq += 1;
        inst.started_at = Some(self.now);
        if self.trace.is_some() {
            let seq = self.instances[slot].trace_seq;
            if seq != 0 {
                self.trace_emit(TraceEvent::KernelStart {
                    at: self.now,
                    seq,
                    queue: q as u32,
                });
            }
        }
        Some(slot)
    }

    /// Integrates all running work from `last_settle` to `t` and clamps
    /// remaining work at zero. Records timeline segments and busy
    /// integrals.
    fn settle(&mut self, t: SimTime) {
        if t <= self.last_settle {
            return;
        }
        let dt = t.duration_since(self.last_settle).as_nanos() as f64;
        for q in 0..self.queues.len() {
            let Some(slot) = self.queues[q].running else {
                continue;
            };
            let (rate, alloc, tag, queue, is_compute) = {
                let inst = &self.instances[slot];
                (
                    inst.rate,
                    inst.alloc_sms,
                    inst.tag,
                    inst.queue,
                    inst.desc.kind.is_compute(),
                )
            };
            if rate > 0.0 {
                let inst = &mut self.instances[slot];
                inst.remaining = (inst.remaining - rate * dt).max(0.0);
            }
            if is_compute && alloc > 0.0 {
                let contrib = alloc * dt;
                self.busy_sm_integral += contrib;
                self.queues[q].busy_integral += contrib;
                let generation = self.instances[slot].generation;
                let last = self.instances[slot].last_seg;
                if let Some(tl) = &mut self.timeline {
                    // Coalesce with this instance's previous segment when
                    // it abuts this one and the SM allocation is unchanged:
                    // reallocations that leave a kernel's share untouched
                    // then cost no timeline growth.
                    if last < tl.len() && tl[last].to == self.last_settle && tl[last].sms == alloc {
                        tl[last].to = t;
                    } else {
                        self.instances[slot].last_seg = tl.len();
                        tl.push(TimelineSegment {
                            handle: Self::handle_for(slot, generation),
                            queue,
                            tag,
                            from: self.last_settle,
                            to: t,
                            sms: alloc,
                        });
                    }
                }
            }
        }
        self.last_settle = t;
    }

    /// Scoped reallocation: recomputes compute-side state (SM shares,
    /// interference, rates) only when `do_compute`, and DMA-side state
    /// (per-direction bandwidth shares) only when `do_dma`.
    ///
    /// This is exact, not approximate: compute rates depend only on the set
    /// of running compute kernels (plus contexts/pools), and DMA rates only
    /// on the per-direction memcpy counts. An event that changes one side
    /// leaves every rate on the other side bit-identical, so skipping the
    /// recomputation cannot alter simulation results.
    ///
    /// All intermediate vectors come from `self.scratch` so steady-state
    /// reallocation performs no heap allocation.
    fn reallocate_scoped(&mut self, do_compute: bool, do_dma: bool) {
        // Under a per-resource model with DMA→PCIe coupling, running DMA
        // streams feed the PCIe channel, so a DMA transition can change
        // compute slowdowns: widen the scope. The scalar model (and the
        // decoupled collapse twin, weight 0) keeps the exact narrow
        // scoping, so skipping stays bit-identical there.
        let do_compute = do_compute || (do_dma && self.spec.channel_model.couples_dma_to_compute());
        self.settle(self.now);
        self.epoch += 1;

        // Gather running compute kernels and running memcpys. Memcpy
        // streams are counted unconditionally (integer bump, free): the
        // per-resource PCIe channel needs the count even when the DMA
        // side itself is clean.
        let mut memcpy_streams: u32 = 0;
        let mut compute = std::mem::take(&mut self.scratch.compute);
        let mut h2d = std::mem::take(&mut self.scratch.h2d);
        let mut d2h = std::mem::take(&mut self.scratch.d2h);
        compute.clear();
        h2d.clear();
        d2h.clear();
        for q in &self.queues {
            if let Some(slot) = q.running {
                match self.instances[slot].desc.kind {
                    KernelKind::Compute { .. } => {
                        if do_compute {
                            compute.push(slot);
                        }
                    }
                    KernelKind::MemcpyH2D { .. } => {
                        memcpy_streams += 1;
                        if do_dma {
                            h2d.push(slot);
                        }
                    }
                    KernelKind::MemcpyD2H { .. } => {
                        memcpy_streams += 1;
                        if do_dma {
                            d2h.push(slot);
                        }
                    }
                }
            }
        }

        if do_compute {
            // SM allocation for compute kernels, per the hardware policy.
            let mut groups = std::mem::take(&mut self.scratch.groups);
            groups.clear();
            groups.extend(self.contexts.iter().map(|c| CtxGroup {
                pool: c.pool,
                sm_cap: match c.kind {
                    CtxKind::Default => f64::INFINITY,
                    CtxKind::MpsAffinity { sm_cap } => sm_cap as f64,
                    CtxKind::MigPartition { sm_count } => sm_count as f64,
                },
            }));
            let mut alloc = std::mem::take(&mut self.scratch.alloc);
            match self.spec.hw_policy {
                HwPolicy::FairShare => {
                    let mut demands = std::mem::take(&mut self.scratch.demands);
                    demands.clear();
                    demands.extend(compute.iter().map(|&slot| {
                        let inst = &self.instances[slot];
                        KernelDemand {
                            id: slot,
                            ctx_group: self.queues[inst.queue.0 as usize].ctx.0 as usize,
                            kernel_cap: inst.desc.max_sms as f64,
                        }
                    }));
                    allocate_sms_into(&mut alloc, &self.pool_capacity, &groups, &demands);
                    self.scratch.demands = demands;
                }
                HwPolicy::GreedySticky => self.sticky_allocate(&compute, &groups, &mut alloc),
            }

            // Interference: each kernel is slowed by the traffic of its
            // co-runners, proportionally to the co-runners' active SM
            // share and partly to the victim's own demand. Under the
            // scalar model there is one "memory traffic" scalar; under
            // the per-resource model each channel accumulates traffic
            // separately and channels compose by bottleneck max
            // (DESIGN.md §5j). Both paths use fixed-size stack state only.
            match self.spec.channel_model {
                ChannelModel::Scalar => {
                    let total_traffic: f64 = compute
                        .iter()
                        .zip(&alloc)
                        .map(|(&slot, &a)| {
                            self.instances[slot].desc.mem_intensity * (a / self.spec.num_sms as f64)
                        })
                        .sum();

                    for (i, &slot) in compute.iter().enumerate() {
                        let a = alloc[i];
                        let inst = &self.instances[slot];
                        let own = inst.desc.mem_intensity * (a / self.spec.num_sms as f64);
                        let pressure = (total_traffic - own).max(0.0);
                        let sensitivity = self.spec.interference_base
                            + (1.0 - self.spec.interference_base) * inst.desc.mem_intensity;
                        let slowdown = (1.0
                            + self.spec.interference_alpha * pressure * sensitivity)
                            .min(self.spec.interference_cap);
                        let new_rate = if a > 0.0 { a / slowdown } else { 0.0 };
                        self.apply_compute_rate(slot, a, new_rate);
                    }
                }
                ChannelModel::PerResource(params) => {
                    let mut traffic = [0.0f64; NUM_CHANNELS];
                    for (&slot, &a) in compute.iter().zip(&alloc) {
                        let share = a / self.spec.num_sms as f64;
                        let d = &self.instances[slot].desc.demand.0;
                        for (t, dv) in traffic.iter_mut().zip(d) {
                            *t += dv * share;
                        }
                    }
                    // Running DMA streams press on the PCIe channel.
                    if params.dma_pcie_weight > 0.0 && memcpy_streams > 0 {
                        traffic[Channel::Pcie as usize] +=
                            params.dma_pcie_weight * memcpy_streams as f64;
                    }

                    for (i, &slot) in compute.iter().enumerate() {
                        let a = alloc[i];
                        let share = a / self.spec.num_sms as f64;
                        let slowdown =
                            params.slowdown(&self.instances[slot].desc.demand, share, &traffic);
                        let new_rate = if a > 0.0 { a / slowdown } else { 0.0 };
                        self.apply_compute_rate(slot, a, new_rate);
                    }
                }
            }
            self.scratch.groups = groups;
            self.scratch.alloc = alloc;
        }

        if do_dma {
            // DMA engines: equal bandwidth sharing per direction.
            for dir in [&h2d, &d2h] {
                if dir.is_empty() {
                    continue;
                }
                // An active injected DMA stall divides bandwidth; without
                // fault state the divisor is exactly 1.0 (bit-identical).
                let slow = self.fault.as_ref().map_or(1.0, |f| f.dma_slow);
                let per = self.spec.pcie_bytes_per_sec / dir.len() as f64 / 1e9 / slow; // bytes per ns
                for &slot in dir.iter() {
                    let unchanged = (self.instances[slot].rate - per).abs() < 1e-18
                        && self.instances[slot].rate > 0.0;
                    let inst = &mut self.instances[slot];
                    inst.alloc_sms = 0.0;
                    inst.rate = per;
                    if !unchanged {
                        self.push_completion(slot);
                    }
                }
            }
        }

        self.scratch.compute = compute;
        self.scratch.h2d = h2d;
        self.scratch.d2h = d2h;
    }

    /// Commits one compute kernel's allocation and interference-adjusted
    /// rate: reschedules its completion when the rate actually changed
    /// and emits the `SmAlloc` trace event when the allocation moved.
    /// Shared, op-for-op, by both interference models so the scalar path
    /// stays bit-identical to the pre-channel engine.
    fn apply_compute_rate(&mut self, slot: usize, a: f64, new_rate: f64) {
        let unchanged =
            (self.instances[slot].rate - new_rate).abs() < 1e-12 && self.instances[slot].rate > 0.0;
        let inst = &mut self.instances[slot];
        let alloc_changed = inst.alloc_sms != a;
        inst.alloc_sms = a;
        inst.rate = new_rate;
        if !unchanged {
            // Rate changed (or the kernel just started/stalled):
            // reschedule its completion. Kernels whose rate is
            // untouched keep their already-scheduled event.
            self.push_completion(slot);
        }
        if alloc_changed && self.trace.is_some() {
            let seq = self.instances[slot].trace_seq;
            if seq != 0 {
                self.trace_emit(TraceEvent::SmAlloc {
                    at: self.now,
                    seq,
                    sms: a,
                });
            }
        }
    }

    /// Block-granular greedy allocation (the default hardware model):
    ///
    /// 1. Running kernels retain their current SMs (clamped only if a
    ///    context cap was reduced underneath them).
    /// 2. In dispatch order, kernels grow into free SMs up to their own
    ///    parallelism limit and their context's cap (remaining thread
    ///    blocks launching onto freed SMs).
    /// 3. A kernel that has no SMs yet only begins once at least one full
    ///    SM is free — two full-GPU kernels therefore serialize instead of
    ///    fluidly sharing.
    fn sticky_allocate(&mut self, compute: &[usize], groups: &[CtxGroup], alloc: &mut Vec<f64>) {
        let n_pools = self.pool_capacity.len();
        let mut pool_used = std::mem::take(&mut self.scratch.pool_used);
        pool_used.clear();
        pool_used.resize(n_pools, 0.0);
        let mut ctx_used = std::mem::take(&mut self.scratch.ctx_used);
        ctx_used.clear();
        ctx_used.resize(groups.len(), 0.0);

        // Dispatch order: earlier-started kernels have priority.
        let mut order = std::mem::take(&mut self.scratch.order);
        order.clear();
        order.extend(0..compute.len());
        order.sort_by_key(|&i| self.instances[compute[i]].run_seq);

        alloc.clear();
        alloc.resize(compute.len(), 0.0);
        // Phase 1: retain current allocations (clamped to caps).
        for &i in &order {
            let slot = compute[i];
            let inst = &self.instances[slot];
            let ctx = self.queues[inst.queue.0 as usize].ctx.0 as usize;
            let pool = groups[ctx].pool;
            let keep = inst
                .alloc_sms
                .min(inst.desc.max_sms as f64)
                .min((groups[ctx].sm_cap - ctx_used[ctx]).max(0.0))
                .min((self.pool_capacity[pool] - pool_used[pool]).max(0.0));
            alloc[i] = keep;
            ctx_used[ctx] += keep;
            pool_used[pool] += keep;
        }
        // SMs structurally reserved per pool by *other* finite-cap
        // contexts that currently have runnable kernels. SM-affinity caps
        // are visible reservations: a kernel can count on the SMs beyond
        // them, so its block waves launch there immediately. Unrestricted
        // co-runners reserve nothing structurally — they contend for the
        // whole pool, and dispatch-order alternation decides (Fig. 7a).
        let mut ctx_has_runnable = std::mem::take(&mut self.scratch.ctx_runnable);
        ctx_has_runnable.clear();
        ctx_has_runnable.resize(groups.len(), false);
        for &slot in compute {
            let ctx = self.queues[self.instances[slot].queue.0 as usize].ctx.0 as usize;
            ctx_has_runnable[ctx] = true;
        }
        let mut finite_cap_reserved = std::mem::take(&mut self.scratch.reserved);
        finite_cap_reserved.clear();
        finite_cap_reserved.extend((0..self.pool_capacity.len()).map(|pool| {
            groups
                .iter()
                .enumerate()
                .filter(|&(c, g)| g.pool == pool && ctx_has_runnable[c] && g.sm_cap.is_finite())
                .map(|(_, g)| g.sm_cap)
                .sum::<f64>()
        }));

        // Phase 2: grow/start in dispatch order.
        let mut pokes = std::mem::take(&mut self.scratch.pokes);
        pokes.clear();
        for &i in &order {
            let slot = compute[i];
            let inst = &self.instances[slot];
            let ctx = self.queues[inst.queue.0 as usize].ctx.0 as usize;
            let pool = groups[ctx].pool;
            let headroom = (groups[ctx].sm_cap - ctx_used[ctx])
                .min(self.pool_capacity[pool] - pool_used[pool])
                .max(0.0);
            let effective_demand = (inst.desc.max_sms as f64)
                .min(groups[ctx].sm_cap)
                .min(self.pool_capacity[pool]);
            let want = (inst.desc.max_sms as f64 - alloc[i]).max(0.0);
            let mut grant = want.min(headroom);
            if alloc[i] == 0.0 {
                // Wave-granular dispatch: a kernel begins only once the
                // free SMs cover a meaningful fraction of what it could
                // ever achieve given the co-resident caps.
                let others_reserved = if groups[ctx].sm_cap.is_finite() {
                    finite_cap_reserved[pool] - groups[ctx].sm_cap
                } else {
                    finite_cap_reserved[pool]
                };
                let achievable =
                    (self.pool_capacity[pool] - others_reserved).clamp(1.0, f64::INFINITY);
                let threshold =
                    (effective_demand.min(achievable) * self.spec.dispatch_min_fraction).max(1.0);
                if grant < threshold {
                    grant = 0.0;
                }
                // Contended dispatch: a kernel from an unrestricted
                // context sharing the pool with other tenants pays an
                // arbitration gap before it may begin.
                if grant > 0.0
                    && !groups[ctx].sm_cap.is_finite()
                    && !self.spec.contended_dispatch_gap.is_zero()
                {
                    let contended = ctx_has_runnable
                        .iter()
                        .enumerate()
                        .any(|(c, &r)| c != ctx && r && groups[c].pool == pool);
                    if contended {
                        match self.instances[slot].dispatch_ready {
                            Some(ready) if self.now >= ready => {}
                            Some(_) => grant = 0.0,
                            None => {
                                let ready = self.now + self.spec.contended_dispatch_gap;
                                pokes.push(ready);
                                self.instances[slot].dispatch_ready = Some(ready);
                                grant = 0.0;
                            }
                        }
                    }
                }
            }
            alloc[i] += grant;
            ctx_used[ctx] += grant;
            pool_used[pool] += grant;
        }
        for &at in &pokes {
            self.events.push(at, DevEv::Poke);
        }
        self.scratch.pool_used = pool_used;
        self.scratch.ctx_used = ctx_used;
        self.scratch.order = order;
        self.scratch.ctx_runnable = ctx_has_runnable;
        self.scratch.reserved = finite_cap_reserved;
        self.scratch.pokes = pokes;
    }

    fn push_completion(&mut self, slot: usize) {
        self.instances[slot].event_epoch = self.epoch;
        let inst = &self.instances[slot];
        if inst.remaining <= 1e-6 {
            // Already done (e.g. settled to zero just as its allocation
            // was clamped away): complete now regardless of rate.
            self.events.push(
                self.now,
                DevEv::Complete {
                    slot,
                    epoch: self.epoch,
                },
            );
            return;
        }
        if inst.rate <= 0.0 {
            return; // Starved: no completion until the allocation changes.
        }
        let eta_ns = (inst.remaining / inst.rate).ceil().max(0.0);
        let at = self.now + SimDuration::from_nanos(eta_ns as u64);
        self.events.push(
            at,
            DevEv::Complete {
                slot,
                epoch: self.epoch,
            },
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn free_gpu() -> Gpu {
        Gpu::new(GpuSpec::a100(), HostCosts::free())
    }

    fn run_all(gpu: &mut Gpu) -> Vec<(SimTime, KernelHandle)> {
        let mut done = Vec::new();
        while !gpu.events.is_empty() {
            if let Some(StepOutput::KernelDone { handle, .. }) = gpu.step() {
                done.push((gpu.now(), handle));
            }
        }
        done
    }

    #[test]
    fn gpu_is_send() {
        // The lane engine moves per-lane GPUs onto scoped worker threads;
        // this pins the auto-trait so a future `Rc`/raw-pointer field
        // can't silently break it.
        fn assert_send<T: Send>() {}
        assert_send::<Gpu>();
    }

    #[test]
    fn queue_backends_produce_identical_results() {
        let run = |kind: EventQueueKind| {
            let mut gpu = Gpu::with_queue_kind(GpuSpec::a100(), HostCosts::free(), kind);
            assert_eq!(gpu.queue_kind(), kind);
            let ctx = gpu.create_context(CtxKind::Default).unwrap();
            let qa = gpu.create_queue(ctx).unwrap();
            let qb = gpu.create_queue(ctx).unwrap();
            for i in 0..40u64 {
                let (q, name) = if i % 2 == 0 { (qa, "a") } else { (qb, "b") };
                let k = if i % 5 == 3 {
                    KernelDesc::memcpy_h2d("cp", 64 + i)
                } else {
                    KernelDesc::compute(
                        name,
                        SimDuration::from_micros(20 + (i % 7) * 13),
                        40 + (i % 4) as u32 * 20,
                        0.1 + (i % 3) as f64 * 0.25,
                    )
                };
                gpu.launch(q, k, i).unwrap();
            }
            run_all(&mut gpu)
        };
        let heap = run(EventQueueKind::FourAryHeap);
        let wheel = run(EventQueueKind::TimingWheel);
        assert_eq!(heap, wheel);
    }

    #[test]
    fn advance_until_stops_at_barrier() {
        let mut gpu = free_gpu();
        let ctx = gpu.create_context(CtxKind::Default).unwrap();
        let q = gpu.create_queue(ctx).unwrap();
        for i in 0..4u64 {
            let k = KernelDesc::compute("k", SimDuration::from_micros(100), 108, 0.0);
            gpu.launch(q, k, i).unwrap();
        }
        let mut out = Vec::new();
        // Kernels finish at 100/200/300/400 us; events at exactly the
        // barrier stay pending.
        gpu.advance_until(SimTime::from_micros(300), &mut out);
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].0, SimTime::from_micros(100));
        assert_eq!(out[1].0, SimTime::from_micros(200));
        assert_eq!(gpu.peek_event_time(), Some(SimTime::from_micros(300)));
        gpu.drain_outputs_into(&mut out);
        assert_eq!(out.len(), 4);
        assert_eq!(out[3].0, SimTime::from_micros(400));
        assert!(gpu.is_device_idle());
    }

    #[test]
    fn single_kernel_runs_at_full_speed() {
        let mut gpu = free_gpu();
        let ctx = gpu.create_context(CtxKind::Default).unwrap();
        let q = gpu.create_queue(ctx).unwrap();
        let k = KernelDesc::compute("k", SimDuration::from_micros(100), 108, 0.2);
        let h = gpu.launch(q, k, 0).unwrap();
        let done = run_all(&mut gpu);
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].1, h);
        assert_eq!(gpu.kernel_finished_at(h), Some(SimTime::from_micros(100)));
        assert!(gpu.is_device_idle());
    }

    #[test]
    fn launch_overhead_delays_arrival() {
        let mut gpu = Gpu::a100(); // 3 us launch overhead
        let ctx = gpu.create_context(CtxKind::Default).unwrap();
        let q = gpu.create_queue(ctx).unwrap();
        let k = KernelDesc::compute("k", SimDuration::from_micros(10), 108, 0.0);
        let h = gpu.launch(q, k, 0).unwrap();
        run_all(&mut gpu);
        assert_eq!(gpu.kernel_finished_at(h), Some(SimTime::from_micros(13)));
    }

    #[test]
    fn queue_is_in_order() {
        let mut gpu = free_gpu();
        let ctx = gpu.create_context(CtxKind::Default).unwrap();
        let q = gpu.create_queue(ctx).unwrap();
        let a = gpu
            .launch(
                q,
                KernelDesc::compute("a", SimDuration::from_micros(10), 108, 0.0),
                0,
            )
            .unwrap();
        let b = gpu
            .launch(
                q,
                KernelDesc::compute("b", SimDuration::from_micros(5), 108, 0.0),
                1,
            )
            .unwrap();
        run_all(&mut gpu);
        // Same queue: b waits for a even though it is shorter.
        assert_eq!(gpu.kernel_finished_at(a), Some(SimTime::from_micros(10)));
        assert_eq!(gpu.kernel_finished_at(b), Some(SimTime::from_micros(15)));
    }

    #[test]
    fn greedy_sticky_serializes_full_gpu_kernels() {
        // Fig. 7a's phenomenon: two kernels that each want the whole GPU
        // do NOT share fluidly — the first-dispatched one holds all SMs
        // and the second waits.
        let mut gpu = free_gpu();
        let ctx = gpu.create_context(CtxKind::Default).unwrap();
        let q1 = gpu.create_queue(ctx).unwrap();
        let q2 = gpu.create_queue(ctx).unwrap();
        let a = gpu
            .launch(
                q1,
                KernelDesc::compute("a", SimDuration::from_micros(100), 108, 0.0),
                0,
            )
            .unwrap();
        let b = gpu
            .launch(
                q2,
                KernelDesc::compute("b", SimDuration::from_micros(100), 108, 0.0),
                1,
            )
            .unwrap();
        run_all(&mut gpu);
        assert_eq!(gpu.kernel_finished_at(a), Some(SimTime::from_micros(100)));
        assert_eq!(gpu.kernel_finished_at(b), Some(SimTime::from_micros(200)));
    }

    #[test]
    fn fair_share_policy_splits_sms_evenly() {
        // The idealized ablation policy keeps the old fluid behaviour.
        let mut spec = GpuSpec::a100();
        spec.hw_policy = crate::spec::HwPolicy::FairShare;
        let mut gpu = Gpu::new(spec, HostCosts::free());
        let ctx = gpu.create_context(CtxKind::Default).unwrap();
        let q1 = gpu.create_queue(ctx).unwrap();
        let q2 = gpu.create_queue(ctx).unwrap();
        let a = gpu
            .launch(
                q1,
                KernelDesc::compute("a", SimDuration::from_micros(100), 108, 0.0),
                0,
            )
            .unwrap();
        let b = gpu
            .launch(
                q2,
                KernelDesc::compute("b", SimDuration::from_micros(100), 108, 0.0),
                1,
            )
            .unwrap();
        run_all(&mut gpu);
        assert_eq!(gpu.kernel_finished_at(a), Some(SimTime::from_micros(200)));
        assert_eq!(gpu.kernel_finished_at(b), Some(SimTime::from_micros(200)));
    }

    #[test]
    fn wide_kernels_alternate_in_unrestricted_pool() {
        let mut gpu = free_gpu();
        let ctx = gpu.create_context(CtxKind::Default).unwrap();
        let q1 = gpu.create_queue(ctx).unwrap();
        let q2 = gpu.create_queue(ctx).unwrap();
        // Both kernels want nearly the whole GPU: the second's wave does
        // not launch on the sliver left by the first (Fig. 7a's poor
        // overlap) — it waits, then runs at full width.
        let a = gpu
            .launch(
                q1,
                KernelDesc::compute("a", SimDuration::from_micros(100), 100, 0.0),
                0,
            )
            .unwrap();
        let b = gpu
            .launch(
                q2,
                KernelDesc::compute("b", SimDuration::from_micros(100), 100, 0.0),
                1,
            )
            .unwrap();
        run_all(&mut gpu);
        assert_eq!(gpu.kernel_finished_at(a), Some(SimTime::from_micros(100)));
        assert_eq!(gpu.kernel_finished_at(b), Some(SimTime::from_micros(200)));
    }

    #[test]
    fn narrow_kernel_backfills_with_dispatch_gap() {
        let mut gpu = free_gpu();
        // Separate tenants (distinct contexts): cross-context dispatch in
        // the shared pool pays the arbitration gap.
        let ctx1 = gpu.create_context(CtxKind::Default).unwrap();
        let ctx2 = gpu.create_context(CtxKind::Default).unwrap();
        let q1 = gpu.create_queue(ctx1).unwrap();
        let q2 = gpu.create_queue(ctx2).unwrap();
        // a holds 54 SMs; b (108-wide) backfills the free 54 after the
        // contended dispatch gap (4us), then grows when a finishes.
        let a = gpu
            .launch(
                q1,
                KernelDesc::compute("a", SimDuration::from_micros(100), 54, 0.0),
                0,
            )
            .unwrap();
        let b = gpu
            .launch(
                q2,
                KernelDesc::compute("b", SimDuration::from_micros(100), 108, 0.0),
                1,
            )
            .unwrap();
        run_all(&mut gpu);
        assert_eq!(gpu.kernel_finished_at(a), Some(SimTime::from_micros(100)));
        // b: 96us at 54 SMs then (10800-5184)/108 = 52us at 108 -> 152us.
        assert_eq!(gpu.kernel_finished_at(b), Some(SimTime::from_micros(152)));
    }

    #[test]
    fn finite_caps_are_structural_so_backfill_starts() {
        let mut gpu = free_gpu();
        // One tenant capped at 54 SMs; an unrestricted kernel can count on
        // the other 54 and starts immediately.
        let capped = gpu
            .create_context(CtxKind::MpsAffinity { sm_cap: 54 })
            .unwrap();
        let free_ctx = gpu.create_context(CtxKind::Default).unwrap();
        let q1 = gpu.create_queue(capped).unwrap();
        let q2 = gpu.create_queue(free_ctx).unwrap();
        let a = gpu
            .launch(
                q1,
                KernelDesc::compute("a", SimDuration::from_micros(50), 108, 0.0),
                0,
            )
            .unwrap();
        let b = gpu
            .launch(
                q2,
                KernelDesc::compute("b", SimDuration::from_micros(100), 108, 0.0),
                1,
            )
            .unwrap();
        run_all(&mut gpu);
        // a (50us x 108 work) at 54 SMs: 100us. b pays the 4us contended
        // dispatch gap, then starts at 54 (the cap is structural) and
        // grows to 108 when a finishes: 96us x 54 + 52us x 108 = work.
        assert_eq!(gpu.kernel_finished_at(a), Some(SimTime::from_micros(100)));
        let b_done = gpu.kernel_finished_at(b).unwrap().as_millis_f64() * 1000.0;
        assert!((b_done - 152.0).abs() < 1.0, "b finished at {b_done}us");
    }

    #[test]
    fn mps_affinity_caps_context_usage() {
        let mut gpu = free_gpu();
        let ctx = gpu
            .create_context(CtxKind::MpsAffinity { sm_cap: 27 })
            .unwrap();
        let q = gpu.create_queue(ctx).unwrap();
        let h = gpu
            .launch(
                q,
                KernelDesc::compute("k", SimDuration::from_micros(100), 108, 0.0),
                0,
            )
            .unwrap();
        run_all(&mut gpu);
        // 108-SM kernel on 27 SMs: 4x duration.
        assert_eq!(gpu.kernel_finished_at(h), Some(SimTime::from_micros(400)));
    }

    #[test]
    fn mps_context_consumes_memory() {
        let mut gpu = free_gpu();
        let before = gpu.memory_used_mib();
        gpu.create_context(CtxKind::MpsAffinity { sm_cap: 54 })
            .unwrap();
        assert_eq!(gpu.memory_used_mib(), before + 230);
    }

    #[test]
    fn mig_partitions_are_hard_isolated() {
        let mut gpu = free_gpu();
        let big = gpu
            .create_context(CtxKind::MigPartition { sm_count: 80 })
            .unwrap();
        let small = gpu
            .create_context(CtxKind::MigPartition { sm_count: 28 })
            .unwrap();
        let qb = gpu.create_queue(big).unwrap();
        let qs = gpu.create_queue(small).unwrap();
        // Even with the small partition idle, the big one cannot exceed 80.
        let h = gpu
            .launch(
                qb,
                KernelDesc::compute("k", SimDuration::from_micros(80), 108, 0.0),
                0,
            )
            .unwrap();
        run_all(&mut gpu);
        // work = 80us * 108 SMs; on 80 SMs -> 108 us.
        assert_eq!(gpu.kernel_finished_at(h), Some(SimTime::from_micros(108)));
        // And the small partition still works.
        let h2 = gpu
            .launch(
                qs,
                KernelDesc::compute("k2", SimDuration::from_micros(28), 28, 0.0),
                0,
            )
            .unwrap();
        run_all(&mut gpu);
        assert_eq!(
            gpu.kernel_finished_at(h2)
                .unwrap()
                .duration_since(gpu.kernel_started_at(h2).unwrap()),
            SimDuration::from_micros(28)
        );
    }

    #[test]
    fn mig_budget_is_enforced() {
        let mut gpu = free_gpu();
        gpu.create_context(CtxKind::MigPartition { sm_count: 80 })
            .unwrap();
        let err = gpu
            .create_context(CtxKind::MigPartition { sm_count: 60 })
            .unwrap_err();
        assert_eq!(
            err,
            GpuError::MigBudgetExceeded {
                requested_sms: 60,
                available_sms: 28
            }
        );
    }

    #[test]
    fn memcpys_share_pcie_bandwidth() {
        let mut gpu = free_gpu();
        let ctx = gpu.create_context(CtxKind::Default).unwrap();
        let q1 = gpu.create_queue(ctx).unwrap();
        let q2 = gpu.create_queue(ctx).unwrap();
        // 25 MB at 25 GB/s = 1 ms alone; two concurrent H2Ds share -> 2 ms.
        let a = gpu
            .launch(q1, KernelDesc::memcpy_h2d("a", 25_000_000), 0)
            .unwrap();
        let b = gpu
            .launch(q2, KernelDesc::memcpy_h2d("b", 25_000_000), 1)
            .unwrap();
        run_all(&mut gpu);
        assert_eq!(gpu.kernel_finished_at(a), Some(SimTime::from_millis(2)));
        assert_eq!(gpu.kernel_finished_at(b), Some(SimTime::from_millis(2)));
    }

    #[test]
    fn opposite_directions_do_not_contend() {
        let mut gpu = free_gpu();
        let ctx = gpu.create_context(CtxKind::Default).unwrap();
        let q1 = gpu.create_queue(ctx).unwrap();
        let q2 = gpu.create_queue(ctx).unwrap();
        let a = gpu
            .launch(q1, KernelDesc::memcpy_h2d("a", 25_000_000), 0)
            .unwrap();
        let b = gpu
            .launch(q2, KernelDesc::memcpy_d2h("b", 25_000_000), 1)
            .unwrap();
        run_all(&mut gpu);
        assert_eq!(gpu.kernel_finished_at(a), Some(SimTime::from_millis(1)));
        assert_eq!(gpu.kernel_finished_at(b), Some(SimTime::from_millis(1)));
    }

    #[test]
    fn interference_slows_memory_hungry_pairs() {
        let mut gpu = free_gpu();
        let ctx = gpu.create_context(CtxKind::Default).unwrap();
        let q1 = gpu.create_queue(ctx).unwrap();
        let q2 = gpu.create_queue(ctx).unwrap();
        // Two half-GPU kernels (54 SMs each): no SM contention, but both
        // memory-intense -> interference extends both beyond 100 us.
        let a = gpu
            .launch(
                q1,
                KernelDesc::compute("a", SimDuration::from_micros(100), 54, 0.9),
                0,
            )
            .unwrap();
        let b = gpu
            .launch(
                q2,
                KernelDesc::compute("b", SimDuration::from_micros(100), 54, 0.9),
                1,
            )
            .unwrap();
        run_all(&mut gpu);
        let fa = gpu.kernel_finished_at(a).unwrap();
        let fb = gpu.kernel_finished_at(b).unwrap();
        // Pin the exact scalar-model value so refactors can't drift it:
        // own traffic = 0.9·(54/108) = 0.45, pressure = 0.45,
        // sensitivity = 0.30 + 0.70·0.9 = 0.93, so the slowdown is
        // 1 + 1.5·0.45·0.93 = 1.62775 and 100 µs stretches to 162 775 ns.
        assert_eq!(fa, SimTime::from_nanos(162_775), "{fa:?}");
        assert_eq!(fb, SimTime::from_nanos(162_775), "{fb:?}");
    }

    #[test]
    fn per_channel_collapse_pins_the_same_slowdown() {
        // Mirror of `interference_slows_memory_hungry_pairs` under the
        // per-resource collapse twin: all demand on the DRAM-BW channel
        // with the matched curve must reproduce 162 775 ns exactly.
        let mut gpu = Gpu::new(
            GpuSpec::a100().collapse_twin(crate::Channel::DramBw),
            HostCosts::free(),
        );
        let ctx = gpu.create_context(CtxKind::Default).unwrap();
        let q1 = gpu.create_queue(ctx).unwrap();
        let q2 = gpu.create_queue(ctx).unwrap();
        let a = gpu
            .launch(
                q1,
                KernelDesc::compute("a", SimDuration::from_micros(100), 54, 0.9),
                0,
            )
            .unwrap();
        let b = gpu
            .launch(
                q2,
                KernelDesc::compute("b", SimDuration::from_micros(100), 54, 0.9),
                1,
            )
            .unwrap();
        run_all(&mut gpu);
        assert_eq!(
            gpu.kernel_finished_at(a),
            Some(SimTime::from_nanos(162_775))
        );
        assert_eq!(
            gpu.kernel_finished_at(b),
            Some(SimTime::from_nanos(162_775))
        );
    }

    #[test]
    fn disjoint_channels_interfere_only_through_the_base_floor() {
        // Under the per-resource model, kernels pressing on *different*
        // channels only feel each other through the demand-independent
        // base floor — strictly weaker than same-channel contention.
        // This is the decomposition the scalar model cannot express: to
        // it both pairs look identical (mem_intensity 0.9 each).
        let pair = |da: crate::ChannelDemand, db: crate::ChannelDemand| {
            let mut gpu = Gpu::new(GpuSpec::a100_per_resource(), HostCosts::free());
            let ctx = gpu.create_context(CtxKind::Default).unwrap();
            let q1 = gpu.create_queue(ctx).unwrap();
            let q2 = gpu.create_queue(ctx).unwrap();
            let a =
                KernelDesc::compute("a", SimDuration::from_micros(100), 54, 0.9).with_demand(da);
            let b =
                KernelDesc::compute("b", SimDuration::from_micros(100), 54, 0.9).with_demand(db);
            let a = gpu.launch(q1, a, 0).unwrap();
            gpu.launch(q2, b, 1).unwrap();
            run_all(&mut gpu);
            gpu.kernel_finished_at(a).unwrap()
        };
        let on = |ch| crate::ChannelDemand::collapsed(ch, 0.9);
        let same_channel = pair(on(crate::Channel::DramBw), on(crate::Channel::DramBw));
        let cross_channel = pair(on(crate::Channel::L2), on(crate::Channel::DramBw));
        let no_demand = pair(crate::ChannelDemand::ZERO, crate::ChannelDemand::ZERO);
        assert!(
            cross_channel > SimTime::from_micros(100),
            "{cross_channel:?}"
        );
        assert!(
            cross_channel < same_channel,
            "{cross_channel:?} vs {same_channel:?}"
        );
        // Zero demand on every channel -> zero pressure -> exactly no
        // interference.
        assert_eq!(no_demand, SimTime::from_micros(100));
    }

    #[test]
    fn dma_streams_press_on_the_pcie_channel() {
        // A PCIe-hungry compute kernel is slowed by a concurrent DMA
        // stream under the calibrated per-resource model, and untouched
        // by it under the scalar model.
        let kernel = KernelDesc::compute("pcie", SimDuration::from_micros(100), 54, 0.0)
            .with_demand(crate::ChannelDemand::collapsed(crate::Channel::Pcie, 1.0));
        let run = |spec: GpuSpec| {
            let mut gpu = Gpu::new(spec, HostCosts::free());
            let ctx = gpu.create_context(CtxKind::Default).unwrap();
            let q1 = gpu.create_queue(ctx).unwrap();
            let q2 = gpu.create_queue(ctx).unwrap();
            let a = gpu.launch(q1, kernel.clone(), 0).unwrap();
            // 5 MB at 25 GB/s = 200 us: the transfer outlives the kernel.
            gpu.launch(q2, KernelDesc::memcpy_h2d("dma", 5_000_000), 1)
                .unwrap();
            run_all(&mut gpu);
            gpu.kernel_finished_at(a).unwrap()
        };
        let scalar = run(GpuSpec::a100());
        let per_resource = run(GpuSpec::a100_per_resource());
        assert_eq!(scalar, SimTime::from_micros(100));
        assert!(per_resource > scalar, "{per_resource:?}");
    }

    #[test]
    fn zero_mem_intensity_pairs_do_not_interfere() {
        let mut gpu = free_gpu();
        let ctx = gpu.create_context(CtxKind::Default).unwrap();
        let q1 = gpu.create_queue(ctx).unwrap();
        let q2 = gpu.create_queue(ctx).unwrap();
        let a = gpu
            .launch(
                q1,
                KernelDesc::compute("a", SimDuration::from_micros(100), 54, 0.0),
                0,
            )
            .unwrap();
        let b = gpu
            .launch(
                q2,
                KernelDesc::compute("b", SimDuration::from_micros(100), 54, 0.0),
                1,
            )
            .unwrap();
        run_all(&mut gpu);
        assert_eq!(gpu.kernel_finished_at(a), Some(SimTime::from_micros(100)));
        assert_eq!(gpu.kernel_finished_at(b), Some(SimTime::from_micros(100)));
    }

    #[test]
    fn host_wake_fires() {
        let mut gpu = free_gpu();
        gpu.wake_at(SimTime::from_millis(5), 42);
        let out = gpu.step().unwrap();
        assert_eq!(out, StepOutput::HostWake { token: 42 });
        assert_eq!(gpu.now(), SimTime::from_millis(5));
    }

    #[test]
    fn utilization_accounting() {
        let mut gpu = free_gpu();
        let ctx = gpu.create_context(CtxKind::Default).unwrap();
        let q = gpu.create_queue(ctx).unwrap();
        // A 54-SM kernel for 100us: utilization = 0.5 over its run.
        gpu.launch(
            q,
            KernelDesc::compute("k", SimDuration::from_micros(100), 54, 0.0),
            0,
        )
        .unwrap();
        let b0 = gpu.busy_sm_seconds();
        run_all(&mut gpu);
        let b1 = gpu.busy_sm_seconds();
        let util = gpu.utilization(SimTime::ZERO, SimTime::from_micros(100), b0, b1);
        assert!((util - 0.5).abs() < 1e-9, "util = {util}");
    }

    #[test]
    fn timeline_records_segments() {
        let mut gpu = free_gpu();
        gpu.enable_timeline();
        let ctx = gpu.create_context(CtxKind::Default).unwrap();
        let q = gpu.create_queue(ctx).unwrap();
        gpu.launch(
            q,
            KernelDesc::compute("k", SimDuration::from_micros(10), 108, 0.0),
            7,
        )
        .unwrap();
        run_all(&mut gpu);
        let tl = gpu.timeline();
        assert!(!tl.is_empty());
        assert_eq!(tl[0].tag, 7);
        let total: f64 = tl
            .iter()
            .map(|s| s.to.duration_since(s.from).as_nanos() as f64)
            .sum();
        assert!((total - 10_000.0).abs() < 1.0);
    }

    #[test]
    fn launch_delayed_stalls_only_its_queue() {
        let mut gpu = free_gpu();
        let ctx = gpu.create_context(CtxKind::Default).unwrap();
        let q1 = gpu.create_queue(ctx).unwrap();
        let q2 = gpu.create_queue(ctx).unwrap();
        let a = gpu
            .launch_delayed(
                q1,
                KernelDesc::compute("a", SimDuration::from_micros(10), 54, 0.0),
                0,
                SimDuration::from_micros(50),
            )
            .unwrap();
        let b = gpu
            .launch(
                q2,
                KernelDesc::compute("b", SimDuration::from_micros(10), 54, 0.0),
                1,
            )
            .unwrap();
        run_all(&mut gpu);
        assert_eq!(gpu.kernel_finished_at(b), Some(SimTime::from_micros(10)));
        assert_eq!(gpu.kernel_finished_at(a), Some(SimTime::from_micros(60)));
    }

    #[test]
    fn starved_context_makes_no_progress_until_cap_raised() {
        let mut gpu = free_gpu();
        let ctx = gpu
            .create_context(CtxKind::MpsAffinity { sm_cap: 1 })
            .unwrap();
        let q = gpu.create_queue(ctx).unwrap();
        let h = gpu
            .launch(
                q,
                KernelDesc::compute("k", SimDuration::from_micros(108), 108, 0.0),
                0,
            )
            .unwrap();
        // Advance some; then raise the cap to full and let it finish.
        while gpu.peek_event_time() == Some(SimTime::ZERO) {
            gpu.step();
        }
        gpu.advance_to(SimTime::from_micros(100));
        gpu.set_mps_cap(ctx, 108).unwrap();
        run_all(&mut gpu);
        let fin = gpu.kernel_finished_at(h).unwrap();
        // 100us at 1 SM did 100 SM·us of the 108*108 total; remaining at
        // 108 SMs takes (108*108-100)/108 us ~ 107.07us -> ~207.07us total.
        let expect_us = 100.0 + (108.0 * 108.0 - 100.0) / 108.0;
        assert!(
            (fin.as_millis_f64() * 1000.0 - expect_us).abs() < 0.1,
            "{fin:?}"
        );
    }

    #[test]
    fn launch_graph_costs_one_launch_overhead() {
        let mut gpu = Gpu::a100(); // 3 us per launch
        let ctx = gpu.create_context(CtxKind::Default).unwrap();
        let q = gpu.create_queue(ctx).unwrap();
        let group: Vec<(KernelDesc, u64)> = (0..5)
            .map(|i| {
                (
                    KernelDesc::compute(format!("g{i}"), SimDuration::from_micros(10), 108, 0.0),
                    i,
                )
            })
            .collect();
        let handles = gpu.launch_graph(q, group).unwrap();
        run_all(&mut gpu);
        // One 3 us launch + 5 x 10 us sequential kernels = 53 us, instead
        // of 5 launches costing 15 us of host time.
        assert_eq!(
            gpu.kernel_finished_at(*handles.last().unwrap()),
            Some(SimTime::from_micros(53))
        );
        assert!(gpu.launch_graph(q, Vec::new()).unwrap().is_empty());
    }

    #[test]
    fn oom_is_reported() {
        let mut gpu = free_gpu();
        gpu.alloc_memory(40 * 1024 - 100).unwrap();
        let err = gpu.alloc_memory(200).unwrap_err();
        assert_eq!(
            err,
            GpuError::OutOfMemory {
                requested_mib: 200,
                available_mib: 100
            }
        );
        gpu.free_memory(40 * 1024 - 100);
        assert_eq!(gpu.memory_used_mib(), 0);
    }

    #[test]
    fn errors_display_cleanly() {
        let e = GpuError::UnknownQueue(QueueId(3));
        assert!(format!("{e}").contains("unknown queue"));
        let e = GpuError::InvalidOperation("nope");
        assert!(format!("{e}").contains("nope"));
    }

    #[test]
    fn slot_recycling_bounds_instance_storage() {
        let mut gpu = free_gpu();
        gpu.set_slot_recycling(true);
        let ctx = gpu.create_context(CtxKind::Default).unwrap();
        let q = gpu.create_queue(ctx).unwrap();
        for i in 0..1000u64 {
            let h = gpu
                .launch(
                    q,
                    KernelDesc::compute("k", SimDuration::from_micros(1), 108, 0.0),
                    i,
                )
                .unwrap();
            let done = run_all(&mut gpu);
            assert_eq!(done.len(), 1);
            assert_eq!(done[0].1, h, "completion reports the launch handle");
        }
        // 1000 sequential kernels reuse a handful of slots instead of
        // growing the instance table linearly.
        assert!(
            gpu.instance_slots() < 10,
            "expected slot reuse, got {} slots",
            gpu.instance_slots()
        );
    }

    #[test]
    fn recycled_handles_turn_stale_not_aliased() {
        let mut gpu = free_gpu();
        gpu.set_slot_recycling(true);
        let ctx = gpu.create_context(CtxKind::Default).unwrap();
        let q = gpu.create_queue(ctx).unwrap();
        let k = || KernelDesc::compute("k", SimDuration::from_micros(1), 108, 0.0);
        let first = gpu.launch(q, k(), 0).unwrap();
        run_all(&mut gpu);
        let second = gpu.launch(q, k(), 1).unwrap();
        // The slot is reused but the generation differs: the old handle
        // must not observe the new occupant.
        assert_ne!(first, second);
        assert_eq!(gpu.kernel_state(first), InstState::Done);
        assert_eq!(gpu.kernel_started_at(first), None);
        assert_eq!(gpu.kernel_finished_at(first), None);
        assert_eq!(gpu.kernel_name(first), "<recycled>");
        run_all(&mut gpu);
        assert!(gpu.is_device_idle());
    }

    #[test]
    fn recycling_off_preserves_handle_queries() {
        // The profiler path relies on querying every handle after drain().
        let mut gpu = free_gpu();
        let ctx = gpu.create_context(CtxKind::Default).unwrap();
        let q = gpu.create_queue(ctx).unwrap();
        let k = || KernelDesc::compute("k", SimDuration::from_micros(1), 108, 0.0);
        let handles: Vec<_> = (0..5).map(|i| gpu.launch(q, k(), i).unwrap()).collect();
        gpu.drain();
        for h in handles {
            assert!(gpu.kernel_finished_at(h).is_some());
        }
        assert_eq!(gpu.instance_slots(), 5);
    }

    #[test]
    fn timeline_coalesces_unchanged_allocations() {
        // Two capped kernels on separate contexts: B's arrival settles A
        // mid-flight, but A's SM share is unchanged, so A's timeline stays
        // a single segment instead of splitting at the boundary.
        let mut gpu = free_gpu();
        gpu.enable_timeline();
        let ca = gpu
            .create_context(CtxKind::MpsAffinity { sm_cap: 54 })
            .unwrap();
        let cb = gpu
            .create_context(CtxKind::MpsAffinity { sm_cap: 54 })
            .unwrap();
        let qa = gpu.create_queue(ca).unwrap();
        let qb = gpu.create_queue(cb).unwrap();
        let a = gpu
            .launch(
                qa,
                KernelDesc::compute("a", SimDuration::from_micros(100), 54, 0.0),
                0,
            )
            .unwrap();
        gpu.step(); // A arrives and starts.
        gpu.advance_to(SimTime::from_micros(10));
        gpu.launch(
            qb,
            KernelDesc::compute("b", SimDuration::from_micros(50), 54, 0.0),
            1,
        )
        .unwrap();
        run_all(&mut gpu);
        let a_segs: Vec<_> = gpu.timeline().iter().filter(|s| s.handle == a).collect();
        assert_eq!(
            a_segs.len(),
            1,
            "abutting equal-allocation segments must merge: {a_segs:?}"
        );
        assert_eq!(a_segs[0].sms, 54.0);
        assert_eq!(
            a_segs[0].to.duration_since(a_segs[0].from),
            SimDuration::from_micros(100)
        );
    }

    // ------------------------------------------------------------------
    // Fault injection
    // ------------------------------------------------------------------

    use crate::sim::encode_tag;
    use sim_core::{FaultPlan, FaultSpec};

    #[test]
    fn none_plan_stores_no_fault_state() {
        let mut gpu = free_gpu();
        gpu.set_fault_plan(FaultPlan::none());
        let ctx = gpu.create_context(CtxKind::Default).unwrap();
        let q = gpu.create_queue(ctx).unwrap();
        let h = gpu
            .launch(
                q,
                KernelDesc::compute("k", SimDuration::from_micros(100), 108, 0.2),
                encode_tag(0, 0),
            )
            .unwrap();
        run_all(&mut gpu);
        assert_eq!(gpu.kernel_finished_at(h), Some(SimTime::from_micros(100)));
        assert_eq!(gpu.fault_counters(), FaultCounters::default());
        assert!(gpu.take_failed().is_empty());
    }

    #[test]
    fn straggler_multiplies_kernel_duration() {
        let mut gpu = free_gpu();
        let spec = FaultSpec {
            num_apps: 1,
            straggler_prob: 1.0,
            straggler_factor: 2.0,
            ..FaultSpec::default()
        };
        gpu.set_fault_plan(FaultPlan::build(42, &spec));
        let ctx = gpu.create_context(CtxKind::Default).unwrap();
        let q = gpu.create_queue(ctx).unwrap();
        let h = gpu
            .launch(
                q,
                KernelDesc::compute("k", SimDuration::from_micros(100), 108, 0.0),
                encode_tag(0, 0),
            )
            .unwrap();
        run_all(&mut gpu);
        assert_eq!(gpu.kernel_finished_at(h), Some(SimTime::from_micros(200)));
        assert_eq!(gpu.fault_counters().stragglers, 1);
    }

    #[test]
    fn drift_inflates_every_launch_of_the_app() {
        let mut gpu = free_gpu();
        let spec = FaultSpec {
            num_apps: 1,
            drift_prob: 1.0,
            drift_range: (1.5, 1.5),
            ..FaultSpec::default()
        };
        gpu.set_fault_plan(FaultPlan::build(0, &spec));
        let ctx = gpu.create_context(CtxKind::Default).unwrap();
        let q = gpu.create_queue(ctx).unwrap();
        for k in 0..3u64 {
            let h = gpu
                .launch(
                    q,
                    KernelDesc::compute("k", SimDuration::from_micros(100), 108, 0.0),
                    encode_tag(0, k as usize),
                )
                .unwrap();
            run_all(&mut gpu);
            let took = gpu
                .kernel_finished_at(h)
                .unwrap()
                .duration_since(gpu.kernel_started_at(h).unwrap());
            assert_eq!(took, SimDuration::from_micros(150));
        }
        // Drift alone is systematic mis-prediction, not a straggler.
        assert_eq!(gpu.fault_counters().stragglers, 0);
    }

    #[test]
    fn context_crash_kills_victim_and_spares_others() {
        let mut gpu = free_gpu();
        let spec = FaultSpec {
            num_apps: 2,
            crash_count: 1,
            crash_window: (SimTime::from_micros(50), SimTime::from_micros(50)),
            ..FaultSpec::default()
        };
        let plan = FaultPlan::build(9, &spec);
        let victim = plan.crashes()[0].app;
        let other = 1 - victim;
        gpu.set_fault_plan(plan);
        let ctx = gpu.create_context(CtxKind::Default).unwrap();
        let qv = gpu.create_queue(ctx).unwrap();
        let qo = gpu.create_queue(ctx).unwrap();
        // Victim: one running + one queued kernel at crash time.
        let k = |us| KernelDesc::compute("k", SimDuration::from_micros(us), 54, 0.0);
        let v1 = gpu
            .launch(qv, k(100), encode_tag(victim as usize, 0))
            .unwrap();
        let v2 = gpu
            .launch(qv, k(100), encode_tag(victim as usize, 1))
            .unwrap();
        let o1 = gpu
            .launch(qo, k(100), encode_tag(other as usize, 0))
            .unwrap();
        let mut crash_seen = None;
        while !gpu.events.is_empty() {
            if let Some(StepOutput::ContextCrash { app }) = gpu.step() {
                crash_seen = Some((app, gpu.now(), gpu.take_failed()));
            }
        }
        let (app, at, failed) = crash_seen.expect("crash must fire");
        assert_eq!(app, victim);
        assert_eq!(at, SimTime::from_micros(50));
        assert_eq!(failed.len(), 2);
        assert!(failed.iter().all(|f| f.queue == qv));
        assert_eq!(gpu.kernel_state(v1), InstState::Failed);
        assert_eq!(gpu.kernel_state(v2), InstState::Failed);
        assert_eq!(gpu.kernel_state(o1), InstState::Done);
        assert_eq!(gpu.kernel_finished_at(o1), Some(SimTime::from_micros(100)));
        let c = gpu.fault_counters();
        assert_eq!((c.crashes, c.kernels_failed), (1, 2));
        assert!(gpu.is_device_idle());
        // Failed kernels can be re-submitted and then complete normally.
        let retry = gpu
            .launch(qv, k(100), encode_tag(victim as usize, 0))
            .unwrap();
        run_all(&mut gpu);
        assert_eq!(gpu.kernel_state(retry), InstState::Done);
    }

    #[test]
    fn crash_kills_in_flight_launches_before_arrival() {
        let mut gpu = Gpu::a100(); // 3 us launch overhead keeps it in flight
        let spec = FaultSpec {
            num_apps: 1,
            crash_count: 1,
            crash_window: (SimTime::from_nanos(1), SimTime::from_nanos(1)),
            ..FaultSpec::default()
        };
        gpu.set_fault_plan(FaultPlan::build(0, &spec));
        let ctx = gpu.create_context(CtxKind::Default).unwrap();
        let q = gpu.create_queue(ctx).unwrap();
        let h = gpu
            .launch(
                q,
                KernelDesc::compute("k", SimDuration::from_micros(10), 108, 0.0),
                encode_tag(0, 0),
            )
            .unwrap();
        run_all(&mut gpu);
        // Crash at 1 ns < 3 us arrival: the launch never reaches its queue.
        assert_eq!(gpu.kernel_state(h), InstState::Failed);
        assert_eq!(gpu.fault_counters().kernels_failed, 1);
        assert!(gpu.is_device_idle());
    }

    #[test]
    fn dma_stall_divides_copy_bandwidth() {
        let mut gpu = free_gpu();
        let spec = FaultSpec {
            num_apps: 1,
            dma_stall_count: 1,
            dma_stall_window: (SimTime::ZERO, SimTime::from_nanos(1)),
            dma_stall_len: SimDuration::from_millis(10),
            dma_slow_factor: 4.0,
            ..FaultSpec::default()
        };
        gpu.set_fault_plan(FaultPlan::build(5, &spec));
        let ctx = gpu.create_context(CtxKind::Default).unwrap();
        let q = gpu.create_queue(ctx).unwrap();
        // 25 MB at 25 GB/s = 1 ms alone; divided by 4 -> 4 ms.
        let h = gpu
            .launch(q, KernelDesc::memcpy_h2d("c", 25_000_000), encode_tag(0, 0))
            .unwrap();
        run_all(&mut gpu);
        assert_eq!(gpu.kernel_finished_at(h), Some(SimTime::from_millis(4)));
        assert_eq!(gpu.fault_counters().dma_stalls, 1);
    }

    #[test]
    fn dma_bandwidth_recovers_after_stall() {
        let mut gpu = free_gpu();
        let spec = FaultSpec {
            num_apps: 1,
            dma_stall_count: 1,
            dma_stall_window: (SimTime::ZERO, SimTime::from_nanos(1)),
            dma_stall_len: SimDuration::from_micros(500),
            dma_slow_factor: 2.0,
            ..FaultSpec::default()
        };
        gpu.set_fault_plan(FaultPlan::build(5, &spec));
        let ctx = gpu.create_context(CtxKind::Default).unwrap();
        let q = gpu.create_queue(ctx).unwrap();
        // 1 ms of copy: 500 us at half speed moves 250 us' worth, the
        // remaining 750 us' worth at full speed -> 1.25 ms total.
        let h = gpu
            .launch(q, KernelDesc::memcpy_h2d("c", 25_000_000), encode_tag(0, 0))
            .unwrap();
        run_all(&mut gpu);
        assert_eq!(gpu.kernel_finished_at(h), Some(SimTime::from_micros(1250)));
    }
}
