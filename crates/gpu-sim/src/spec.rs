//! Static description of the simulated GPU and host-side costs.

use sim_core::SimDuration;

use crate::channel::{Channel, ChannelModel, ChannelParams};

/// How the hardware scheduler divides SMs among concurrently runnable
/// kernels.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum HwPolicy {
    /// Realistic block-granular dispatch: a kernel grabs the free SMs it
    /// can use when it reaches the head of its queue (in dispatch order)
    /// and holds them until it finishes; it may grow into SMs freed later,
    /// but running kernels never shrink. Two full-GPU kernels therefore
    /// serialize — the "insufficient overlapping" of the paper's Fig. 7a
    /// that spatial partitioning fixes.
    GreedySticky,
    /// Idealized fluid fair sharing: on every event the SM pool is
    /// re-divided by weighted waterfilling. Kept as an ablation knob; with
    /// this policy unrestricted sharing is never worse than partitioning,
    /// which real GPUs do not exhibit.
    FairShare,
}

/// Hardware description of the simulated GPU.
///
/// The defaults model the Nvidia A100 used in the paper (108 SMs, 40 GB),
/// with the interference parameters calibrated so that
///
/// * kernel-level slowdown under worst-case memory pressure stays below the
///   2× cap the paper measures (Fig. 9a), and
/// * mutual pair-wise application slowdown averages about 7% (Fig. 9b).
#[derive(Clone, Debug)]
pub struct GpuSpec {
    /// Number of streaming multiprocessors.
    pub num_sms: u32,
    /// Device memory capacity in MiB.
    pub memory_mib: u64,
    /// Effective PCIe bandwidth per direction, bytes per second.
    pub pcie_bytes_per_sec: f64,
    /// Interference strength: how strongly aggregate memory traffic from
    /// co-running kernels slows a kernel down.
    pub interference_alpha: f64,
    /// Fraction of the slowdown that applies even to compute-bound kernels
    /// (the rest scales with the victim's own memory intensity).
    pub interference_base: f64,
    /// Hard cap on the kernel-level slowdown ratio (paper Fig. 9a: ≤ 2×).
    pub interference_cap: f64,
    /// GPU memory consumed by each additional MPS context (§6.9: ~230 MB).
    pub mps_context_mib: u64,
    /// Hardware scheduler model.
    pub hw_policy: HwPolicy,
    /// Under [`HwPolicy::GreedySticky`], a kernel only begins once the
    /// free SMs cover at least this fraction of its effective demand
    /// (its parallelism capped by its context). Models wave-granular
    /// block dispatch: a wide kernel does not productively start on a
    /// sliver of the GPU, which is what makes unrestricted co-location
    /// overlap poorly (Fig. 7a) and gives spatial partitioning its edge.
    pub dispatch_min_fraction: f64,
    /// Extra start latency paid by a kernel launching from an
    /// *unrestricted* context while other contexts have runnable kernels
    /// in the same pool. Uncontrolled cross-stream dispatch arbitrates at
    /// a single hardware work distributor ("the execution sequence of
    /// kernels is uncontrollable", §3.2/Fig. 3b); SM-affinity contexts
    /// dispatch within their own partition and do not pay it. This is the
    /// measured inefficiency that makes NSP squads slower than spatially
    /// partitioned ones (Fig. 7, Fig. 17).
    pub contended_dispatch_gap: SimDuration,
    /// Interference-model switch (DESIGN.md §5j). The default,
    /// [`ChannelModel::Scalar`], is byte-identical to the original
    /// single-scalar model driven by `interference_alpha`/`_base`/`_cap`
    /// above; [`ChannelModel::PerResource`] replaces it with the
    /// four-channel contended-resource model driven by each kernel's
    /// [`crate::ChannelDemand`] vector.
    pub channel_model: ChannelModel,
}

impl GpuSpec {
    /// The Nvidia A100 configuration used throughout the paper.
    pub fn a100() -> Self {
        GpuSpec {
            num_sms: 108,
            memory_mib: 40 * 1024,
            pcie_bytes_per_sec: 25.0e9,
            interference_alpha: 1.5,
            interference_base: 0.30,
            interference_cap: 2.0,
            mps_context_mib: 230,
            hw_policy: HwPolicy::GreedySticky,
            dispatch_min_fraction: 0.45,
            contended_dispatch_gap: SimDuration::from_micros(4),
            channel_model: ChannelModel::Scalar,
        }
    }

    /// A100 variant with a restricted SM count (the paper's Fig. 19c uses
    /// MIG to carve out GPU instances with fewer SMs).
    pub fn a100_with_sms(num_sms: u32) -> Self {
        GpuSpec {
            num_sms,
            ..Self::a100()
        }
    }

    /// A100 with the calibrated four-channel interference model
    /// ([`ChannelParams::a100`]) instead of the scalar one.
    pub fn a100_per_resource() -> Self {
        GpuSpec {
            channel_model: ChannelModel::PerResource(ChannelParams::a100()),
            ..Self::a100()
        }
    }

    /// This spec with a different interference model.
    pub fn with_channel_model(mut self, model: ChannelModel) -> Self {
        self.channel_model = model;
        self
    }

    /// The per-resource *collapse twin* of this spec: the same hardware
    /// with [`ChannelModel::PerResource`] whose `ch` channel carries this
    /// spec's scalar α/base/cap curve and every other channel is inert
    /// ([`ChannelParams::matched_scalar`]). With all kernel demand
    /// collapsed onto `ch`, the twin simulates bit-identically to the
    /// scalar spec — the property pinned by
    /// `tests/channel_differential.rs`.
    pub fn collapse_twin(&self, ch: Channel) -> Self {
        let params = ChannelParams::matched_scalar(
            self.interference_alpha,
            self.interference_base,
            self.interference_cap,
            ch,
        );
        GpuSpec {
            channel_model: ChannelModel::PerResource(params),
            ..self.clone()
        }
    }
}

impl Default for GpuSpec {
    fn default() -> Self {
        Self::a100()
    }
}

/// Host-side scheduling costs, matching the paper's §6.9 measurements.
#[derive(Clone, Debug)]
pub struct HostCosts {
    /// Time for one `cudaLaunchKernel`-equivalent call (≈ 3 µs).
    pub kernel_launch: SimDuration,
    /// Synchronization between kernel squads (≈ 20 µs).
    pub squad_sync: SimDuration,
    /// Vacuum period when a request's launching switches GPU context (≈ 50 µs).
    pub context_switch: SimDuration,
    /// Multi-task scheduling cost per kernel (≈ 3.7 µs).
    pub sched_per_kernel: SimDuration,
    /// Execution-configuration search cost per kernel (≈ 2 µs).
    pub config_search_per_kernel: SimDuration,
    /// Kernel squad generation cost per kernel (≈ 1 µs).
    pub squad_gen_per_kernel: SimDuration,
}

impl HostCosts {
    /// The §6.9 cost set.
    pub fn paper() -> Self {
        HostCosts {
            kernel_launch: SimDuration::from_nanos(3_000),
            squad_sync: SimDuration::from_micros(20),
            context_switch: SimDuration::from_micros(50),
            sched_per_kernel: SimDuration::from_nanos(3_700),
            config_search_per_kernel: SimDuration::from_micros(2),
            squad_gen_per_kernel: SimDuration::from_micros(1),
        }
    }

    /// Zero-cost host, useful for isolating device-side effects in tests.
    pub fn free() -> Self {
        HostCosts {
            kernel_launch: SimDuration::ZERO,
            squad_sync: SimDuration::ZERO,
            context_switch: SimDuration::ZERO,
            sched_per_kernel: SimDuration::ZERO,
            config_search_per_kernel: SimDuration::ZERO,
            squad_gen_per_kernel: SimDuration::ZERO,
        }
    }
}

impl Default for HostCosts {
    fn default() -> Self {
        Self::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn a100_matches_paper() {
        let spec = GpuSpec::a100();
        assert_eq!(spec.num_sms, 108);
        assert_eq!(spec.memory_mib, 40 * 1024);
        assert_eq!(spec.mps_context_mib, 230);
        assert!(spec.interference_cap <= 2.0 + f64::EPSILON);
    }

    #[test]
    fn paper_costs_match_section_6_9() {
        let c = HostCosts::paper();
        assert_eq!(c.kernel_launch.as_micros_f64(), 3.0);
        assert_eq!(c.squad_sync.as_micros_f64(), 20.0);
        assert_eq!(c.context_switch.as_micros_f64(), 50.0);
        assert_eq!(c.sched_per_kernel.as_micros_f64(), 3.7);
        assert_eq!(c.config_search_per_kernel.as_micros_f64(), 2.0);
        assert_eq!(c.squad_gen_per_kernel.as_micros_f64(), 1.0);
    }

    #[test]
    fn restricted_sm_variant() {
        let spec = GpuSpec::a100_with_sms(14);
        assert_eq!(spec.num_sms, 14);
        assert_eq!(spec.memory_mib, GpuSpec::a100().memory_mib);
    }

    #[test]
    fn default_channel_model_is_scalar() {
        assert!(GpuSpec::a100().channel_model.is_scalar());
        assert!(GpuSpec::a100_with_sms(54).channel_model.is_scalar());
    }

    #[test]
    fn collapse_twin_carries_the_scalar_curve() {
        let spec = GpuSpec::a100();
        let twin = spec.collapse_twin(Channel::DramBw);
        match &twin.channel_model {
            ChannelModel::PerResource(p) => {
                let c = Channel::DramBw as usize;
                assert_eq!(p.alpha[c], spec.interference_alpha);
                assert_eq!(p.base[c], spec.interference_base);
                assert_eq!(p.cap[c], spec.interference_cap);
                assert_eq!(p.dma_pcie_weight, 0.0);
                for other in 0..crate::NUM_CHANNELS {
                    if other != c {
                        assert_eq!(p.alpha[other], 0.0);
                        assert_eq!(p.cap[other], 1.0);
                    }
                }
            }
            ChannelModel::Scalar => panic!("twin must be per-resource"),
        }
        assert_eq!(twin.num_sms, spec.num_sms);
    }

    #[test]
    fn per_resource_a100_couples_dma() {
        let spec = GpuSpec::a100_per_resource();
        assert!(spec.channel_model.couples_dma_to_compute());
    }
}
