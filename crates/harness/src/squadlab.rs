//! Isolated kernel-squad execution: run one squad on a fresh GPU under a
//! chosen execution scheme and measure its actual duration.
//!
//! Used by the predictor-validation experiments (Fig. 10, §4.4.2), the
//! squad-optimization study (Fig. 17), and the split-ratio sweep
//! (Fig. 19b).

use bless::{DeployedApp, ExecConfig, Squad, SquadEntry};
use gpu_sim::{CtxKind, Gpu, GpuSpec, HostCosts, InstState, KernelHandle};
use sim_core::{SimDuration, SimTime};

use crate::require_ok;

/// How a squad is executed in the lab (Fig. 17's four schemes).
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum SquadScheme {
    /// All kernels from one device queue, strictly sequential.
    Seq,
    /// One queue per request, no spatial restriction (Fig. 7a).
    Nsp,
    /// Strict spatial partitioning with the given per-entry SM caps
    /// (Fig. 7b).
    Sp,
    /// Spatial partitioning for the first `c%` of each request's kernels,
    /// unrestricted for the rear (Fig. 7c). The `f64` is the split ratio.
    SemiSp(f64),
}

/// Runs `squad` on a fresh GPU under `scheme` and returns the measured
/// squad duration (launch of the first kernel to completion of the last).
///
/// For [`SquadScheme::Sp`] and [`SquadScheme::SemiSp`], `config` must be
/// an [`ExecConfig::Sp`]; its caps are applied per entry.
pub fn run_squad(
    squad: &Squad,
    apps: &[DeployedApp],
    spec: &GpuSpec,
    scheme: SquadScheme,
    config: &ExecConfig,
) -> SimDuration {
    let mut gpu = Gpu::new(spec.clone(), HostCosts::paper());
    let num_sms = spec.num_sms;
    let mut all_handles: Vec<KernelHandle> = Vec::new();
    // (queue to re-launch tail on, tail kernels, handles of head) per entry.
    type TailEntry = (gpu_sim::QueueId, Vec<(usize, usize)>, usize);
    let mut tails: Vec<TailEntry> = Vec::new();

    match scheme {
        SquadScheme::Seq => {
            let ctx = require_ok(gpu.create_context(CtxKind::Default), "create context");
            let q = require_ok(gpu.create_queue(ctx), "create queue");
            for e in &squad.entries {
                for &k in &e.kernels {
                    let desc = apps[e.app].profile.kernels[k].clone();
                    all_handles.push(require_ok(gpu.launch(q, desc, 0), "launch"));
                }
            }
        }
        SquadScheme::Nsp => {
            for e in &squad.entries {
                let ctx = require_ok(gpu.create_context(CtxKind::Default), "create context");
                let q = require_ok(gpu.create_queue(ctx), "create queue");
                for &k in &e.kernels {
                    let desc = apps[e.app].profile.kernels[k].clone();
                    all_handles.push(require_ok(gpu.launch(q, desc, 0), "launch"));
                }
            }
        }
        SquadScheme::Sp | SquadScheme::SemiSp(_) => {
            let split = match scheme {
                SquadScheme::Sp => 1.0,
                SquadScheme::SemiSp(c) => c,
                _ => unreachable!(),
            };
            for (i, e) in squad.entries.iter().enumerate() {
                let cap = crate::require(config.sm_cap(i, num_sms), "SP schemes need an SP config")
                    .max(1);
                let rctx = require_ok(
                    gpu.create_context(CtxKind::MpsAffinity { sm_cap: cap }),
                    "create context",
                );
                let rq = require_ok(gpu.create_queue(rctx), "create queue");
                let fctx = require_ok(gpu.create_context(CtxKind::Default), "create context");
                let fq = require_ok(gpu.create_queue(fctx), "create queue");
                let split_at =
                    ((e.kernels.len() as f64 * split).ceil() as usize).min(e.kernels.len());
                for &k in &e.kernels[..split_at] {
                    let desc = apps[e.app].profile.kernels[k].clone();
                    all_handles.push(require_ok(gpu.launch(rq, desc, 0), "launch"));
                }
                let tail: Vec<(usize, usize)> =
                    e.kernels[split_at..].iter().map(|&k| (e.app, k)).collect();
                tails.push((fq, tail, all_handles.len()));
            }
        }
    }

    // Drive to completion; for semi-SP, release each entry's tail when its
    // restricted head drains.
    let mut released = vec![false; tails.len()];
    loop {
        let progressed = gpu.step().is_some();
        // Release tails whose heads are done.
        for (ti, (fq, tail, _)) in tails.iter().enumerate() {
            if released[ti] || tail.is_empty() {
                if !released[ti] && tail.is_empty() {
                    released[ti] = true;
                }
                continue;
            }
            // Head of this entry = handles launched before the tail marker
            // belonging to this entry's restricted queue. Track by simply
            // checking all handles so far: the entry's head handles are the
            // slice preceding its marker that we launched for it.
            let (_, _, marker) = tails[ti];
            let head_start = if ti == 0 { 0 } else { tails[ti - 1].2 };
            let head_done = all_handles[head_start..marker]
                .iter()
                .all(|&h| gpu.kernel_state(h) == InstState::Done);
            if head_done {
                released[ti] = true;
                let vacuum = gpu.costs().context_switch;
                for &(app, k) in tail {
                    let desc = apps[app].profile.kernels[k].clone();
                    all_handles.push(require_ok(
                        gpu.launch_delayed(*fq, desc, 0, vacuum),
                        "launch",
                    ));
                }
            }
        }
        if !progressed && gpu.peek_event_time().is_none() {
            break;
        }
    }

    let end = all_handles
        .iter()
        .filter_map(|&h| gpu.kernel_finished_at(h))
        .max()
        .unwrap_or(SimTime::ZERO);
    end.duration_since(SimTime::ZERO)
}

/// Builds a squad slicing `count` consecutive kernels per app starting at
/// each app's `offset` (skipping index 0, the H2D copy, when possible).
pub fn slice_squad(apps: &[DeployedApp], offsets: &[usize], counts: &[usize]) -> Squad {
    assert_eq!(apps.len(), offsets.len());
    assert_eq!(apps.len(), counts.len());
    Squad {
        entries: apps
            .iter()
            .enumerate()
            .filter(|(i, _)| counts[*i] > 0)
            .map(|(i, a)| {
                let total = a.profile.kernel_count();
                let start = offsets[i].min(total.saturating_sub(1)).max(1);
                let end = (start + counts[i]).min(total);
                SquadEntry {
                    app: i,
                    kernels: (start..end).collect(),
                }
            })
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache;
    use bless::determine_config;
    use dnn_models::{ModelKind, Phase};

    fn apps() -> Vec<DeployedApp> {
        let spec = GpuSpec::a100();
        vec![
            DeployedApp::new(
                cache::profile(ModelKind::NasNet, Phase::Inference, &spec),
                0.5,
                None,
            ),
            DeployedApp::new(
                cache::profile(ModelKind::ResNet50, Phase::Inference, &spec),
                0.5,
                None,
            ),
        ]
    }

    #[test]
    fn schemes_order_like_figure_17() {
        let spec = GpuSpec::a100();
        let apps = apps();
        let squad = slice_squad(&apps, &[1, 1], &[30, 30]);
        let choice = determine_config(&squad, &apps, spec.num_sms);
        let cfg = match &choice.config {
            c @ bless::ExecConfig::Sp { .. } => c.clone(),
            bless::ExecConfig::Nsp => bless::ExecConfig::Sp {
                partitions: vec![9, 9],
            },
        };
        let seq = run_squad(&squad, &apps, &spec, SquadScheme::Seq, &cfg);
        let nsp = run_squad(&squad, &apps, &spec, SquadScheme::Nsp, &cfg);
        let sp = run_squad(&squad, &apps, &spec, SquadScheme::Sp, &cfg);
        let semi = run_squad(&squad, &apps, &spec, SquadScheme::SemiSp(0.5), &cfg);
        // Fig. 17's ordering: SEQ slowest; concurrency helps; semi-SP is
        // at least as good as strict SP.
        assert!(nsp < seq, "NSP {nsp} vs SEQ {seq}");
        assert!(sp < seq, "SP {sp} vs SEQ {seq}");
        assert!(sp < nsp, "SP {sp} vs NSP {nsp} (Fig. 7's core ordering)");
        // Semi-SP tracks strict SP closely in our substrate (the paper
        // measures it slightly ahead; see EXPERIMENTS.md).
        assert!(semi <= sp.mul_f64(1.10), "Semi-SP {semi} vs SP {sp}");
    }

    #[test]
    fn slice_squad_respects_bounds() {
        let apps = apps();
        let squad = slice_squad(&apps, &[1, 400], &[10, 100]);
        assert_eq!(squad.entries[0].kernels.len(), 10);
        // App 1 (R50, 82 kernels) clamps: start at 81 max.
        assert!(!squad.entries[1].kernels.is_empty());
        assert!(*squad.entries[1].kernels.last().unwrap() < apps[1].profile.kernel_count());
    }
}
