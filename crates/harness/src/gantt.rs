//! ASCII Gantt rendering of GPU timelines (Fig. 18a-style plots).
//!
//! The engine's [`gpu_sim::TimelineSegment`]s record which kernel held how
//! many SMs over which interval. This module folds them into a per-tag
//! occupancy strip so squad structure, spatial splits, and bubbles are
//! visible in a terminal.

use gpu_sim::TimelineSegment;
use sim_core::SimTime;

/// Renders per-tag SM occupancy over `[from, to]` as one text row per tag
/// plus a shared idle row. `cols` is the number of time buckets.
///
/// Each cell shows the tag's mean SM share of the GPU in that bucket:
/// `' '` < 6.25%, then `▁▂▃▄▅▆▇█` in 12.5% steps.
pub fn render(
    segments: &[TimelineSegment],
    tags: &[(u64, &str)],
    num_sms: u32,
    from: SimTime,
    to: SimTime,
    cols: usize,
) -> String {
    assert!(cols > 0, "need at least one column");
    assert!(to > from, "empty window");
    let span = to.duration_since(from).as_nanos() as f64;
    let bucket_ns = span / cols as f64;

    // Accumulate SM·ns per (tag row, bucket).
    let mut rows = vec![vec![0.0f64; cols]; tags.len()];
    let mut total = vec![0.0f64; cols];
    for seg in segments {
        let Some(row) = tags
            .iter()
            .position(|&(t, _)| t & 0xF_FFFF == seg.tag & 0xF_FFFF)
        else {
            continue;
        };
        let s = (seg.from.max(from).as_nanos() as f64) - from.as_nanos() as f64;
        let e = (seg.to.min(to).as_nanos() as f64) - from.as_nanos() as f64;
        if e <= s {
            continue;
        }
        // Spread the segment across the buckets it overlaps.
        let first = (s / bucket_ns) as usize;
        let last = ((e / bucket_ns) as usize).min(cols - 1);
        for b in first..=last {
            let b_start = b as f64 * bucket_ns;
            let b_end = b_start + bucket_ns;
            let overlap = (e.min(b_end) - s.max(b_start)).max(0.0);
            rows[row][b] += seg.sms * overlap;
            total[b] += seg.sms * overlap;
        }
    }

    const LEVELS: [char; 9] = [' ', '▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    let cell = |sm_ns: f64| -> char {
        let share = sm_ns / (num_sms as f64 * bucket_ns);
        let idx = ((share * 8.0).round() as usize).min(8);
        LEVELS[idx]
    };

    let label_w = tags.iter().map(|&(_, n)| n.len()).max().unwrap_or(4).max(4);
    let mut out = String::new();
    for (row, &(_, name)) in rows.iter().zip(tags) {
        out.push_str(&format!("{name:>label_w$} |"));
        for &v in row {
            out.push(cell(v));
        }
        out.push_str("|\n");
    }
    // Idle strip: whatever of the GPU nothing occupied.
    out.push_str(&format!("{:>label_w$} |", "idle"));
    for &v in &total {
        let idle = (num_sms as f64 * bucket_ns - v).max(0.0);
        out.push(cell(idle));
    }
    out.push_str("|\n");
    out.push_str(&format!(
        "{:>label_w$}  {} .. {} ({} buckets of {:.2} ms)\n",
        "",
        from,
        to,
        cols,
        bucket_ns / 1e6
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::{KernelHandle, QueueId};
    use sim_core::SimTime;

    fn seg(tag: u64, from_us: u64, to_us: u64, sms: f64) -> TimelineSegment {
        TimelineSegment {
            handle: KernelHandle(0),
            queue: QueueId(0),
            tag,
            from: SimTime::from_micros(from_us),
            to: SimTime::from_micros(to_us),
            sms,
        }
    }

    #[test]
    fn renders_occupancy_rows() {
        let segments = vec![seg(0, 0, 500, 108.0), seg(1, 500, 1000, 54.0)];
        let s = render(
            &segments,
            &[(0, "app0"), (1, "app1")],
            108,
            SimTime::ZERO,
            SimTime::from_millis(1),
            10,
        );
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4, "two apps + idle + axis");
        // app0 occupies the full GPU in the first half.
        assert!(lines[0].contains("app0"));
        let cells: Vec<char> = lines[0]
            .chars()
            .skip_while(|&c| c != '|')
            .skip(1)
            .take(10)
            .collect();
        assert_eq!(cells[0], '█');
        assert_eq!(cells[9], ' ');
        // app1 at half occupancy in the second half.
        let cells1: Vec<char> = lines[1]
            .chars()
            .skip_while(|&c| c != '|')
            .skip(1)
            .take(10)
            .collect();
        assert_eq!(cells1[0], ' ');
        assert_eq!(cells1[9], '▄');
        // Idle row shows the free half in the second half.
        assert!(lines[2].contains("idle"));
    }

    #[test]
    fn unknown_tags_are_ignored() {
        let segments = vec![seg(99, 0, 1000, 108.0)];
        let s = render(
            &segments,
            &[(0, "app0")],
            108,
            SimTime::ZERO,
            SimTime::from_millis(1),
            4,
        );
        let first: Vec<char> = s.lines().next().unwrap().chars().collect();
        assert!(!first.contains(&'█'), "foreign tag must not render");
    }

    #[test]
    #[should_panic(expected = "empty window")]
    fn rejects_empty_window() {
        render(
            &[],
            &[(0, "a")],
            108,
            SimTime::from_millis(1),
            SimTime::from_millis(1),
            4,
        );
    }
}
