//! Experiment harness regenerating every table and figure of the paper.
//!
//! Each experiment module reproduces one artifact of the evaluation
//! section and returns [`metrics::Table`]s with the same rows/series the
//! paper reports. The `experiments` binary runs them by id (see
//! [`experiments::registry`]).

pub mod cache;
pub mod experiments;
pub mod gantt;
pub mod perfetto;
pub mod runner;
pub mod squadlab;
pub mod tracectl;

pub use runner::{
    deployment, run_custom, run_system, run_system_traced, run_validated, RunResult, System,
};
