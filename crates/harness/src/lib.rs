//! Experiment harness regenerating every table and figure of the paper.
//!
//! Each experiment module reproduces one artifact of the evaluation
//! section and returns [`metrics::Table`]s with the same rows/series the
//! paper reports. The `experiments` binary runs them by id (see
//! [`experiments::registry`]).

pub mod cache;
pub mod experiments;
pub mod gantt;
pub mod perfetto;
pub mod runner;
pub mod squadlab;
pub mod tracectl;

pub use runner::{
    deployment, run_custom, run_system, run_system_traced, run_validated, RunResult, System,
};

/// Unwraps an `Option` that an experiment's construction guarantees is
/// `Some`, panicking with context otherwise (the crate denies bare
/// `unwrap`/`expect`; experiment code has no caller to propagate to).
pub(crate) fn require<T>(opt: Option<T>, what: &str) -> T {
    opt.unwrap_or_else(|| panic!("{what}"))
}

/// [`require`] for `Result`s whose error means a broken experiment setup.
pub(crate) fn require_ok<T, E: std::fmt::Debug>(res: Result<T, E>, what: &str) -> T {
    res.unwrap_or_else(|e| panic!("{what}: {e:?}"))
}
