//! Process-wide profile cache.
//!
//! Offline profiling (19 simulated runs per application) is deterministic,
//! so experiments share one cache keyed by `(model, phase, num_sms)`.

use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock, PoisonError};

use dnn_models::{AppModel, ModelKind, Phase};
use gpu_sim::GpuSpec;
use profiler::ProfiledApp;

type Key = (ModelKind, Phase, u32);

fn cache() -> &'static Mutex<HashMap<Key, Arc<ProfiledApp>>> {
    static CACHE: OnceLock<Mutex<HashMap<Key, Arc<ProfiledApp>>>> = OnceLock::new();
    CACHE.get_or_init(|| Mutex::new(HashMap::new()))
}

/// Returns the profile of `(kind, phase)` on a GPU with `spec`'s SM count,
/// profiling it on first use. The returned handle shares the cached data
/// (no per-call deep copy of the 19-run duration tables).
pub fn profile(kind: ModelKind, phase: Phase, spec: &GpuSpec) -> Arc<ProfiledApp> {
    let key = (kind, phase, spec.num_sms);
    // The cache is shared by the parallel experiment runner's worker
    // threads. A panicking experiment (e.g. a failing assertion in one
    // table) poisons the mutex; the cached profiles are still valid —
    // entries are inserted fully constructed and never mutated — so
    // recover the guard instead of cascading the panic into every other
    // experiment.
    if let Some(p) = cache()
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
        .get(&key)
    {
        return Arc::clone(p);
    }
    let app = AppModel::build(kind, phase);
    let profiled = Arc::new(ProfiledApp::profile(&app, spec));
    cache()
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
        .insert(key, Arc::clone(&profiled));
    profiled
}

/// Returns the generated application model (cheap; not cached).
pub fn model(kind: ModelKind, phase: Phase) -> AppModel {
    AppModel::build(kind, phase)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cache_round_trips() {
        let spec = GpuSpec::a100();
        let a = profile(ModelKind::Vgg11, Phase::Inference, &spec);
        let b = profile(ModelKind::Vgg11, Phase::Inference, &spec);
        assert_eq!(a.iso_latency, b.iso_latency);
        assert_eq!(a.kernel_count(), b.kernel_count());
    }

    #[test]
    fn different_sm_counts_are_distinct_entries() {
        let a = profile(ModelKind::ResNet50, Phase::Inference, &GpuSpec::a100());
        let b = profile(
            ModelKind::ResNet50,
            Phase::Inference,
            &GpuSpec::a100_with_sms(54),
        );
        assert!(b.iso_latency[profiler::PARTITIONS - 1] > a.iso_latency[profiler::PARTITIONS - 1]);
    }
}
