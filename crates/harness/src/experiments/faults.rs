//! Robustness experiment: BLESS on a Table-2 pair under a deterministic
//! fault matrix (see DESIGN.md "Fault model & graceful degradation").
//!
//! Each scenario runs the NasNet+BERT medium-load workload at a fixed seed
//! with one fault family enabled (plus a no-fault control and an
//! everything-at-once row) and asserts the hardening invariants:
//!
//! * the run completes — no panic, no wedged scheduler;
//! * **no lost request**: every arrived request is served, even when
//!   context crashes kill its kernels mid-flight;
//! * every crash casualty is re-submitted and the retry completes;
//! * tail latency inflates by at most `MAX_TAIL_INFLATION`× over the
//!   fault-free control.

use bless::{BlessDriver, BlessParams, WatchdogParams};
use dnn_models::{ModelKind, Phase};
use gpu_sim::GpuSpec;
use metrics::Table;
use sim_core::{FaultPlan, FaultSpec, SimDuration, SimTime};
use workloads::{pair_workload, PaperWorkload, WorkloadSet};

use crate::cache;
use crate::runner::{self, run_custom_faulted};

/// Seed for both the workload and the fault plans (same seed ⇒ the exact
/// same fault schedule every run).
const SEED: u64 = 42;

/// Ceiling on p99 inflation vs the fault-free control. Generous on
/// purpose: crashes re-run kernels and drift slows every launch, but the
/// scheduler must keep the tail *bounded*, not untouched.
const MAX_TAIL_INFLATION: f64 = 20.0;

fn workload() -> WorkloadSet {
    pair_workload(
        cache::model(ModelKind::NasNet, Phase::Inference),
        cache::model(ModelKind::Bert, Phase::Inference),
        (0.5, 0.5),
        PaperWorkload::MediumLoad,
        8,
        SimTime::from_secs(10),
        SEED,
    )
}

/// The fault scenarios, in escalation order.
fn scenarios() -> Vec<(&'static str, FaultSpec)> {
    let base = FaultSpec {
        num_apps: 2,
        ..FaultSpec::default()
    };
    let stragglers = FaultSpec {
        straggler_prob: 0.05,
        straggler_factor: 3.0,
        ..base.clone()
    };
    let drift = FaultSpec {
        drift_prob: 1.0,
        drift_range: (1.2, 1.6),
        ..base.clone()
    };
    // Crash instants are drawn inside the initial request burst so the
    // crashes actually hit live kernels (the medium-load pair keeps the
    // GPU busy only a few percent of the horizon).
    let crashes = FaultSpec {
        crash_count: 4,
        crash_window: (SimTime::from_millis(1), SimTime::from_millis(40)),
        ..base.clone()
    };
    let dma = FaultSpec {
        dma_stall_count: 3,
        dma_stall_window: (SimTime::ZERO, SimTime::from_secs(5)),
        dma_stall_len: SimDuration::from_millis(200),
        dma_slow_factor: 4.0,
        ..base.clone()
    };
    let all = FaultSpec {
        straggler_prob: stragglers.straggler_prob,
        straggler_factor: stragglers.straggler_factor,
        drift_prob: drift.drift_prob,
        drift_range: drift.drift_range,
        crash_count: crashes.crash_count,
        crash_window: crashes.crash_window,
        dma_stall_count: dma.dma_stall_count,
        dma_stall_window: dma.dma_stall_window,
        dma_stall_len: dma.dma_stall_len,
        dma_slow_factor: dma.dma_slow_factor,
        ..base.clone()
    };
    vec![
        ("none", base),
        ("stragglers", stragglers),
        ("drift", drift),
        ("crashes", crashes),
        ("dma", dma),
        ("all", all),
    ]
}

struct ScenarioResult {
    completed: usize,
    mean_ms: f64,
    p99_ms: f64,
    driver: BlessDriver,
}

fn run_scenario(ws: &WorkloadSet, spec: &GpuSpec, fault: &FaultSpec) -> ScenarioResult {
    let apps = runner::deployment(ws, spec, None);
    let params = BlessParams {
        watchdog: Some(WatchdogParams::default()),
        ..BlessParams::default()
    };
    let driver = BlessDriver::new(apps, params);
    // An all-off spec builds an inert plan (`is_none()`), which the engine
    // treats exactly like no plan at all — the "none" control rides the
    // byte-identical fast path.
    let plan = FaultPlan::build(SEED, fault);
    let (mut driver, outcome, _, counters) =
        run_custom_faulted(driver, ws, spec, SimTime::from_secs(300), plan);

    // Invariant: the scheduler survives the fault matrix outright.
    assert_eq!(
        outcome,
        gpu_sim::RunOutcome::Completed,
        "faulted run must complete"
    );
    // Merge the engine-side observations the driver cannot see itself.
    driver.robustness.stragglers = counters.stragglers;
    driver.robustness.dma_stalls = counters.dma_stalls;
    assert_eq!(
        driver.robustness.crashes, counters.crashes,
        "driver must observe every injected crash"
    );
    // Invariant: no lost request — every arrival has a completion.
    let mut completed = 0;
    for app in 0..ws.len() {
        let arrived = driver.log.records(app).len();
        let done = driver.log.completed_count(app);
        assert_eq!(done, arrived, "app {app}: lost {} requests", arrived - done);
        completed += done;
    }
    // Invariant: every crash casualty was retried and the retry completed.
    assert!(
        driver.robustness.all_retries_completed(),
        "failed {} retried {} completed {}",
        driver.robustness.kernels_failed,
        driver.robustness.kernels_retried,
        driver.robustness.retries_completed
    );
    if counters.kernels_failed > 0 {
        assert!(
            driver.robustness.retries_completed > 0,
            "crash casualties must be re-run to completion"
        );
    }

    let mean_ms = driver
        .log
        .mean_of_app_means()
        .map_or(f64::NAN, |d| d.as_millis_f64());
    let p99_ms = (0..ws.len())
        .filter_map(|a| driver.log.stats(a).p99)
        .map(|d| d.as_millis_f64())
        .fold(0.0, f64::max);
    ScenarioResult {
        completed,
        mean_ms,
        p99_ms,
        driver,
    }
}

/// Regenerates the robustness table.
pub fn run() -> Vec<Table> {
    let spec = GpuSpec::a100();
    let ws = workload();
    let mut t = Table::new(
        "Robustness: NasNet+BERT medium load under the fault matrix (seed 42)",
        &[
            "scenario",
            "completed",
            "mean (ms)",
            "p99 (ms)",
            "crashes",
            "failed",
            "retried",
            "stragglers",
            "dma stalls",
            "demotions",
            "sched errors",
        ],
    );
    let mut control_p99 = f64::NAN;
    for (name, fault) in scenarios() {
        let r = run_scenario(&ws, &spec, &fault);
        if name == "none" {
            control_p99 = r.p99_ms;
            // The control must be squeaky clean.
            assert_eq!(r.driver.robustness.crashes, 0);
            assert_eq!(r.driver.robustness.sched_errors, 0);
            assert_eq!(r.driver.robustness.demotions(), 0);
        } else if control_p99.is_finite() && r.p99_ms.is_finite() {
            assert!(
                r.p99_ms <= control_p99 * MAX_TAIL_INFLATION,
                "{name}: p99 {:.2} ms vs control {:.2} ms exceeds {MAX_TAIL_INFLATION}x",
                r.p99_ms,
                control_p99
            );
        }
        let rb = &r.driver.robustness;
        t.row(&[
            name.to_string(),
            r.completed.to_string(),
            format!("{:.2}", r.mean_ms),
            format!("{:.2}", r.p99_ms),
            rb.crashes.to_string(),
            rb.kernels_failed.to_string(),
            rb.kernels_retried.to_string(),
            rb.stragglers.to_string(),
            rb.dma_stalls.to_string(),
            rb.demotions().to_string(),
            rb.sched_errors.to_string(),
        ]);
    }
    t.note(format!(
        "invariants checked per scenario: run completes, no lost request, \
         every crash casualty retried to completion, p99 <= {MAX_TAIL_INFLATION}x control"
    ));
    vec![t]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fault_matrix_upholds_robustness_invariants() {
        // `run` asserts every invariant internally; also pin the shape.
        let tables = run();
        assert_eq!(tables.len(), 1);
        assert_eq!(tables[0].row_count(), scenarios().len());
        // The crash scenario must actually exercise the retry path: the
        // injected crashes kill kernels, and every casualty is retried.
        let crash_row = 3; // "crashes"
        assert_eq!(tables[0].cell(crash_row, 0), "crashes");
        assert!(tables[0].cell(crash_row, 4).parse::<u64>().unwrap() > 0);
        let failed: u64 = tables[0].cell(crash_row, 5).parse().unwrap();
        let retried: u64 = tables[0].cell(crash_row, 6).parse().unwrap();
        assert!(failed > 0, "crashes must kill live kernels");
        assert_eq!(retried, failed, "every casualty is re-submitted");
    }
}
