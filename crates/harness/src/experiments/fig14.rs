//! Fig. 14: average latency deviation of 9 pair-wise deployments under the
//! seven uneven quota assignments.
//!
//! Paper: average deviations TEMPORAL 14.3 ms, GSLICE 2.1 ms, BLESS
//! 0.6 ms; MIG cannot express the quota configurations at all; UNBOUND and
//! REEF+ deviate heavily under uneven quotas because they cannot
//! apportion resources.

use dnn_models::{ModelKind, Phase};
use gpu_sim::GpuSpec;
use metrics::Table;
use sim_core::SimTime;
use workloads::{pair_workload, PaperWorkload, TWO_MODEL_QUOTAS};

use crate::cache;
use crate::runner::{run_system, System};

/// The nine pairs: five symmetric (m, m) plus R50 × the four others.
pub fn pairs() -> Vec<(ModelKind, ModelKind)> {
    let mut v: Vec<(ModelKind, ModelKind)> = [
        ModelKind::Vgg11,
        ModelKind::ResNet50,
        ModelKind::ResNet101,
        ModelKind::NasNet,
        ModelKind::Bert,
    ]
    .iter()
    .map(|&m| (m, m))
    .collect();
    for m in [
        ModelKind::Vgg11,
        ModelKind::ResNet101,
        ModelKind::NasNet,
        ModelKind::Bert,
    ] {
        v.push((ModelKind::ResNet50, m));
    }
    v
}

/// Mean latency deviation (ms) of `system` over the given pairs × the
/// seven quota assignments, under medium load.
pub fn mean_deviation(system: &System, pairs: &[(ModelKind, ModelKind)], requests: usize) -> f64 {
    let spec = GpuSpec::a100();
    let mut total = 0.0;
    let mut n = 0;
    for &(a, b) in pairs {
        for quotas in TWO_MODEL_QUOTAS {
            let ws = pair_workload(
                cache::model(a, Phase::Inference),
                cache::model(b, Phase::Inference),
                quotas,
                PaperWorkload::MediumLoad,
                requests,
                SimTime::from_secs(10),
                23,
            );
            let r = run_system(system, &ws, &spec, SimTime::from_secs(120), None);
            total += r.deviation().as_millis_f64();
            n += 1;
        }
    }
    total / n as f64
}

/// Regenerates Fig. 14.
pub fn run() -> Vec<Table> {
    let all_pairs = pairs();
    let mut t = Table::new(
        "Fig. 14: mean latency deviation over 9 pairs x 7 uneven quota configs",
        &["system", "avg deviation ms", "paper ms"],
    );
    for (sys, paper) in [
        (System::Temporal, "14.3"),
        (System::Gslice, "2.1"),
        (System::Unbound, "large"),
        (System::ReefPlus, "large"),
        (System::Bless(bless::BlessParams::default()), "0.6"),
    ] {
        let dev = mean_deviation(&sys, &all_pairs, 10);
        t.row(&[
            sys.name().to_string(),
            format!("{dev:.2}"),
            paper.to_string(),
        ]);
    }
    t.note("MIG omitted: its GPC slices cannot express the 7 quota configurations (paper)");
    vec![t]
}

#[cfg(test)]
mod tests {
    use super::*;
    use bless::BlessParams;

    #[test]
    fn bless_deviation_is_smallest() {
        // One representative pair keeps the test quick; the ordering must
        // match the paper: BLESS < GSLICE < TEMPORAL.
        let pair = [(ModelKind::ResNet50, ModelKind::Vgg11)];
        let bless = mean_deviation(&System::Bless(BlessParams::default()), &pair, 6);
        let gslice = mean_deviation(&System::Gslice, &pair, 6);
        let temporal = mean_deviation(&System::Temporal, &pair, 6);
        assert!(
            bless <= gslice + 0.05,
            "BLESS {bless:.2} vs GSLICE {gslice:.2}"
        );
        assert!(
            gslice < temporal,
            "GSLICE {gslice:.2} vs TEMPORAL {temporal:.2}"
        );
        assert!(
            bless < 1.0,
            "BLESS deviation should be sub-millisecond: {bless:.2}"
        );
    }
}
