//! Fig. 18: fine-grained analysis.
//!
//! (a) Two ResNet-50 requests (quotas 70% / 30%) arriving simultaneously:
//! the multi-task scheduler selects more kernels from the 70% request per
//! squad, and the configuration determiner spatially isolates squads
//! (the paper observes a 78 SMs / 30 SMs split in one squad).
//!
//! (b) BLESS on top of ZICO's workload: the squad-level SP policy removes
//! the bubbles that unbounded tick-tock sharing leaves, reducing the
//! training iteration latency by ~8.5%.

use bless::{BlessDriver, BlessParams, DeployedApp};
use dnn_models::{ModelKind, Phase};
use gpu_sim::GpuSpec;
use metrics::Table;
use sim_core::SimTime;
use workloads::{pair_workload, PaperWorkload};

use crate::cache;
use crate::gantt;
use crate::runner::{run_custom, run_system, System};
use workloads::{ArrivalPattern, TenantSpec, WorkloadSet};

/// Runs the 70/30 two-R50 scenario with timeline recording and returns
/// the driver plus an ASCII Gantt of the SM occupancy.
pub fn squad_trace_with_gantt() -> (BlessDriver, String) {
    let spec = GpuSpec::a100();
    let apps = vec![
        DeployedApp::new(
            cache::profile(ModelKind::ResNet50, Phase::Inference, &spec),
            0.7,
            None,
        ),
        DeployedApp::new(
            cache::profile(ModelKind::ResNet50, Phase::Inference, &spec),
            0.3,
            None,
        ),
    ];
    let mut driver = BlessDriver::new(apps, BlessParams::default());
    driver.record_squads = true;
    let mut gpu = gpu_sim::Gpu::new(spec.clone(), gpu_sim::HostCosts::paper());
    gpu.enable_timeline();
    let arrivals = vec![
        gpu_sim::RequestArrival {
            app: 0,
            req: 0,
            at: SimTime::ZERO,
        },
        gpu_sim::RequestArrival {
            app: 1,
            req: 0,
            at: SimTime::ZERO,
        },
    ];
    let mut sim = gpu_sim::Simulation::new(gpu, driver, arrivals);
    sim.run(SimTime::from_secs(10));
    let end = sim.gpu.now();
    let chart = gantt::render(
        sim.gpu.timeline(),
        &[(0, "req1 (70%)"), (1, "req2 (30%)")],
        spec.num_sms,
        SimTime::ZERO,
        end,
        72,
    );
    (sim.driver, chart)
}

/// Runs the 70/30 two-R50 scenario and returns the BLESS driver with
/// squad records.
pub fn squad_trace() -> BlessDriver {
    let spec = GpuSpec::a100();
    let apps = vec![
        DeployedApp::new(
            cache::profile(ModelKind::ResNet50, Phase::Inference, &spec),
            0.7,
            None,
        ),
        DeployedApp::new(
            cache::profile(ModelKind::ResNet50, Phase::Inference, &spec),
            0.3,
            None,
        ),
    ];
    let mut driver = BlessDriver::new(apps, BlessParams::default());
    driver.record_squads = true;
    let ws = WorkloadSet::new(
        vec![
            TenantSpec::new(
                cache::model(ModelKind::ResNet50, Phase::Inference),
                0.7,
                ArrivalPattern::Simultaneous {
                    count: 1,
                    at: SimTime::ZERO,
                },
            ),
            TenantSpec::new(
                cache::model(ModelKind::ResNet50, Phase::Inference),
                0.3,
                ArrivalPattern::Simultaneous {
                    count: 1,
                    at: SimTime::ZERO,
                },
            ),
        ],
        71,
    );
    let (driver, _, _) = run_custom(driver, &ws, &spec, SimTime::from_secs(10));
    driver
}

/// Regenerates Fig. 18.
pub fn run() -> Vec<Table> {
    let mut out = Vec::new();

    // (a) squad-by-squad trace.
    let driver = squad_trace();
    let mut t = Table::new(
        "Fig. 18(a): two R50 requests (70%/30%), squad-by-squad",
        &[
            "squad",
            "start ms",
            "duration ms",
            "req1 kernels",
            "req2 kernels",
            "SP caps",
        ],
    );
    for (i, s) in driver.squad_log.iter().enumerate() {
        let count = |app: usize| {
            s.per_app_kernels
                .iter()
                .find(|&&(a, _)| a == app)
                .map_or(0, |&(_, n)| n)
        };
        let caps = if s.sm_caps.is_empty() {
            "NSP".to_string()
        } else {
            s.sm_caps
                .iter()
                .map(|&(a, c)| format!("app{a}:{c}"))
                .collect::<Vec<_>>()
                .join(" ")
        };
        t.row(&[
            i.to_string(),
            format!("{:.3}", s.launched_at.as_millis_f64()),
            format!(
                "{:.3}",
                s.finished_at.duration_since(s.launched_at).as_millis_f64()
            ),
            count(0).to_string(),
            count(1).to_string(),
            caps,
        ]);
    }
    let l0 = driver
        .log
        .stats(0)
        .mean
        .map_or(f64::NAN, |d| d.as_millis_f64());
    let l1 = driver
        .log
        .stats(1)
        .mean
        .map_or(f64::NAN, |d| d.as_millis_f64());
    t.note(format!(
        "request latencies: req1 (70%) {l0:.2} ms, req2 (30%) {l1:.2} ms"
    ));
    t.note("paper: the scheduler selects more kernels from request 1; one squad runs 78/30 SMs");
    let (_, chart) = squad_trace_with_gantt();
    t.note(format!(
        "SM occupancy (one row per request):
{chart}"
    ));
    out.push(t);

    // (b) ZICO vs BLESS on a training pair.
    let spec = GpuSpec::a100();
    // Training iterations run back-to-back (continuous epochs).
    let ws = pair_workload(
        cache::model(ModelKind::ResNet50, Phase::Training),
        cache::model(ModelKind::ResNet50, Phase::Training),
        (0.5, 0.5),
        PaperWorkload::BiasedDense,
        5,
        SimTime::from_secs(20),
        73,
    );
    let zico = run_system(&System::Zico, &ws, &spec, SimTime::from_secs(120), None);
    let bless = run_system(
        &System::Bless(BlessParams::default()),
        &ws,
        &spec,
        SimTime::from_secs(120),
        None,
    );
    let mut t = Table::new(
        "Fig. 18(b): training iteration latency, ZICO vs BLESS",
        &["system", "iteration latency ms"],
    );
    t.row(&["ZICO".to_string(), format!("{:.2}", zico.mean_ms())]);
    t.row(&["BLESS".to_string(), format!("{:.2}", bless.mean_ms())]);
    t.note(format!(
        "reduction: {:.1}% (paper: 8.5%)",
        (1.0 - bless.mean_ms() / zico.mean_ms()) * 100.0
    ));
    out.push(t);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn high_quota_request_dominates_early_squads() {
        let driver = squad_trace();
        assert!(driver.squads_launched >= 2);
        // Over the whole run, request 1 (70%) must receive more kernels in
        // the squads where both requests are live.
        let mut req1 = 0usize;
        let mut req2 = 0usize;
        for s in &driver.squad_log {
            let both = s.per_app_kernels.len() == 2;
            if both {
                for &(a, n) in &s.per_app_kernels {
                    if a == 0 {
                        req1 += n;
                    } else {
                        req2 += n;
                    }
                }
            }
        }
        assert!(req1 > req2, "req1 {req1} vs req2 {req2}");
        // And the 70% request finishes earlier.
        let c0 = driver.log.records(0)[0].completion.unwrap();
        let c1 = driver.log.records(1)[0].completion.unwrap();
        assert!(c0 < c1, "{c0:?} vs {c1:?}");
    }

    #[test]
    fn bless_improves_on_zico() {
        let spec = GpuSpec::a100();
        let ws = pair_workload(
            cache::model(ModelKind::Vgg11, Phase::Training),
            cache::model(ModelKind::Vgg11, Phase::Training),
            (0.5, 0.5),
            PaperWorkload::BiasedDense,
            4,
            SimTime::from_secs(20),
            73,
        );
        let zico = run_system(&System::Zico, &ws, &spec, SimTime::from_secs(120), None);
        let bless = run_system(
            &System::Bless(BlessParams::default()),
            &ws,
            &spec,
            SimTime::from_secs(120),
            None,
        );
        assert!(
            bless.mean_ms() < zico.mean_ms(),
            "BLESS {:.2} vs ZICO {:.2}",
            bless.mean_ms(),
            zico.mean_ms()
        );
    }
}
