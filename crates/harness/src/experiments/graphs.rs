//! §6.10 extension: CUDA-graph scheduling granularity.
//!
//! The paper notes that applications built with CUDA/HIP graphs launch
//! sequences of kernels with a single API call, and that BLESS "can be
//! adapted by switching the scheduling granularity from kernels to
//! graphs". This experiment sweeps the graph size for a BERT-inference
//! pair — the workload with the shortest kernels (33 µs mean), where the
//! §6.9 per-kernel scheduling cost (6.7 µs) and launch overhead (3 µs)
//! bite hardest — and reports the latency and the scheduling-cost
//! amortization.

use bless::BlessParams;
use dnn_models::{ModelKind, Phase};
use gpu_sim::GpuSpec;
use metrics::Table;
use sim_core::SimTime;
use workloads::{pair_workload, PaperWorkload};

use crate::cache;
use crate::runner::{run_system, System};

/// Mean latency (ms) of a symmetric BERT pair at the given graph size.
pub fn bert_pair_at(granularity: usize, requests: usize) -> f64 {
    let spec = GpuSpec::a100();
    let ws = pair_workload(
        cache::model(ModelKind::Bert, Phase::Inference),
        cache::model(ModelKind::Bert, Phase::Inference),
        (0.5, 0.5),
        PaperWorkload::MediumLoad,
        requests,
        SimTime::from_secs(10),
        121,
    );
    let params = BlessParams {
        graph_granularity: granularity,
        ..BlessParams::default()
    };
    run_system(
        &System::Bless(params),
        &ws,
        &spec,
        SimTime::from_secs(300),
        None,
    )
    .mean_ms()
}

/// Regenerates the graph-granularity sweep.
pub fn run() -> Vec<Table> {
    let mut t = Table::new(
        "§6.10 extension: CUDA-graph scheduling granularity (BERT pair, workload B)",
        &[
            "graph size (kernels)",
            "avg latency ms",
            "host cost per kernel",
        ],
    );
    for g in [1usize, 2, 4, 8, 16] {
        let ms = bert_pair_at(g, 10);
        // Scheduling (6.7 µs) amortizes per graph; launching (3 µs) too.
        let per_kernel = (6.7 + 3.0) / g as f64;
        t.row(&[
            g.to_string(),
            format!("{ms:.2}"),
            format!("{per_kernel:.2} us"),
        ]);
    }
    t.note("graphs amortize the 6.7 us/kernel scheduling and 3 us/kernel launch costs (§6.9)");
    t.note("larger graphs coarsen the squad's control granularity, like larger squads in Fig. 19a");
    vec![t]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn graphs_do_not_hurt_short_kernel_workloads() {
        // BERT kernels average 33 µs; amortizing ~10 µs of per-kernel host
        // cost across 8-kernel graphs must not slow the pair down.
        let single = bert_pair_at(1, 6);
        let graphs = bert_pair_at(8, 6);
        assert!(
            graphs <= single * 1.05,
            "graph mode {graphs:.2} ms vs kernel mode {single:.2} ms"
        );
    }

    #[test]
    fn extreme_granularity_still_completes() {
        let ms = bert_pair_at(64, 3);
        assert!(ms.is_finite() && ms > 0.0);
    }
}
