//! Substrate ablations (DESIGN.md §5): how sensitive are the headline
//! results to the simulator's hardware-model choices?
//!
//! Three knobs are swept:
//!
//! * **hardware policy** — the realistic greedy-sticky block-wave
//!   dispatcher vs the idealized fluid fair-share ablation;
//! * **contended dispatch gap** — the cross-stream arbitration cost that
//!   degrades unrestricted co-location (Fig. 3b / Fig. 7a);
//! * **interference strength α** — calibrated to Fig. 9(b)'s 7%.
//!
//! The table reports, for each setting, the Fig. 4(b)-style BLESS and
//! UNBOUND latencies and the Fig. 9(b) interference average, showing which
//! paper results are robust and which depend on the calibration.

use bless::BlessParams;
use dnn_models::{ModelKind, Phase};
use gpu_sim::{GpuSpec, HwPolicy};
use metrics::Table;
use sim_core::{SimDuration, SimTime};
use workloads::{pair_workload, PaperWorkload};

use crate::cache;
use crate::runner::{run_system, System};

/// Runs the Fig. 4(b) pair under a custom GPU spec; returns
/// (BLESS ms, UNBOUND ms, GSLICE ms).
pub fn headline_under(spec: &GpuSpec) -> (f64, f64, f64) {
    let ws = pair_workload(
        cache::model(ModelKind::Vgg11, Phase::Inference),
        cache::model(ModelKind::ResNet50, Phase::Inference),
        (1.0 / 3.0, 2.0 / 3.0),
        PaperWorkload::LowLoad,
        12,
        SimTime::from_secs(10),
        1,
    );
    let horizon = SimTime::from_secs(300);
    let b = run_system(
        &System::Bless(BlessParams::default()),
        &ws,
        spec,
        horizon,
        None,
    );
    let u = run_system(&System::Unbound, &ws, spec, horizon, None);
    let g = run_system(&System::Gslice, &ws, spec, horizon, None);
    (b.mean_ms(), u.mean_ms(), g.mean_ms())
}

/// Regenerates the substrate-ablation table.
pub fn run() -> Vec<Table> {
    let mut t = Table::new(
        "Substrate ablation: hardware-model knobs vs the Fig. 4(b) headline",
        &["setting", "BLESS ms", "UNBOUND ms", "GSLICE ms"],
    );

    let mut row = |label: &str, spec: &GpuSpec| {
        let (b, u, g) = headline_under(spec);
        t.row(&[
            label.to_string(),
            format!("{b:.2}"),
            format!("{u:.2}"),
            format!("{g:.2}"),
        ]);
    };

    row(
        "default (greedy-sticky, gap 4us, alpha 1.5)",
        &GpuSpec::a100(),
    );

    let mut fair = GpuSpec::a100();
    fair.hw_policy = HwPolicy::FairShare;
    row("fair-share hardware (idealized)", &fair);

    let mut no_gap = GpuSpec::a100();
    no_gap.contended_dispatch_gap = SimDuration::ZERO;
    row("no dispatch gap", &no_gap);

    let mut big_gap = GpuSpec::a100();
    big_gap.contended_dispatch_gap = SimDuration::from_micros(20);
    row("dispatch gap 20us", &big_gap);

    let mut no_interf = GpuSpec::a100();
    no_interf.interference_alpha = 0.0;
    row("no memory interference", &no_interf);

    let mut heavy_interf = GpuSpec::a100();
    heavy_interf.interference_alpha = 3.0;
    row("interference alpha 3.0 (~14% app level)", &heavy_interf);

    t.note("BLESS's win over GSLICE is robust to every knob; the BLESS-vs-UNBOUND margin is calibration-sensitive (see EXPERIMENTS.md)");
    vec![t]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bless_beats_gslice_under_every_substrate() {
        // The load-bearing claim must not depend on the hardware-model
        // calibration.
        for (label, spec) in [
            ("default", GpuSpec::a100()),
            ("fair-share", {
                let mut s = GpuSpec::a100();
                s.hw_policy = HwPolicy::FairShare;
                s
            }),
            ("no interference", {
                let mut s = GpuSpec::a100();
                s.interference_alpha = 0.0;
                s
            }),
        ] {
            let (b, _, g) = headline_under(&spec);
            assert!(b < g, "{label}: BLESS {b:.2} vs GSLICE {g:.2}");
        }
    }

    #[test]
    fn fair_share_removes_squad_level_nsp_inefficiency() {
        // At squad level, the idealized fluid policy packs unrestricted
        // kernels perfectly, so an NSP squad runs faster than under the
        // realistic greedy-sticky dispatcher. (At the *system* level
        // fair sharing is not faster — processor sharing keeps both
        // requests alive longer than alternation — which is why this is
        // a squad-level assertion.)
        use crate::squadlab::{run_squad, slice_squad, SquadScheme};
        use bless::{DeployedApp, ExecConfig};

        let mk_apps = |spec: &GpuSpec| {
            vec![
                DeployedApp::new(
                    cache::profile(ModelKind::NasNet, Phase::Inference, spec),
                    0.5,
                    None,
                ),
                DeployedApp::new(
                    cache::profile(ModelKind::Bert, Phase::Inference, spec),
                    0.5,
                    None,
                ),
            ]
        };
        let greedy = GpuSpec::a100();
        let mut fair = GpuSpec::a100();
        fair.hw_policy = HwPolicy::FairShare;

        let apps = mk_apps(&greedy);
        let squad = slice_squad(&apps, &[1, 1], &[25, 25]);
        let d_greedy = run_squad(&squad, &apps, &greedy, SquadScheme::Nsp, &ExecConfig::Nsp);
        let d_fair = run_squad(&squad, &apps, &fair, SquadScheme::Nsp, &ExecConfig::Nsp);
        assert!(
            d_fair < d_greedy,
            "fluid NSP squad {d_fair} must beat greedy-sticky {d_greedy}"
        );
    }
}
