//! Fig. 15: beyond pair-wise sharing — 4 and 8 co-located applications
//! whose requests arrive at the same instant.
//!
//! Paper: with four applications BLESS reduces average latency by 41.2% /
//! 18.3% vs TEMPORAL / GSLICE; with eight applications by 80.8% / 35.5%.
//! BLESS's deviation is 0 while TEMPORAL and GSLICE deviate by 74 ms and
//! 5 ms; UNBOUND cannot express uneven quotas at all. REEF+ is excluded
//! because it cannot determine the optimal spatial partitioning at
//! runtime for many tenants (§6.4).

use dnn_models::{AppModel, ModelKind, Phase};
use gpu_sim::GpuSpec;
use metrics::Table;
use sim_core::SimTime;
use workloads::{multi_workload, PaperWorkload, EIGHT_MODEL_QUOTAS, FOUR_MODEL_QUOTAS};

use crate::runner::{run_system, System};
use workloads::WorkloadSet;

fn four_apps() -> Vec<AppModel> {
    [
        ModelKind::Vgg11,
        ModelKind::ResNet50,
        ModelKind::ResNet101,
        ModelKind::Bert,
    ]
    .iter()
    .map(|&m| AppModel::build(m, Phase::Inference))
    .collect()
}

fn eight_apps() -> Vec<AppModel> {
    let mut v = four_apps();
    v.extend(four_apps());
    v
}

/// Builds the simultaneous-burst workload (all requests at t = 0).
pub fn burst_workload(apps: Vec<AppModel>, quotas: &[f64]) -> WorkloadSet {
    multi_workload(
        apps,
        quotas,
        PaperWorkload::BiasedDense, // closed loop with zero think time
        1,                          // a single simultaneous request each
        SimTime::from_secs(1),
        41,
    )
}

/// One Fig. 15 scenario: returns (system, mean ms, deviation ms) rows.
pub fn scenario(apps: Vec<AppModel>, quotas: &[f64]) -> Vec<(String, f64, f64)> {
    let spec = GpuSpec::a100();
    let systems = [
        System::Temporal,
        System::Gslice,
        System::Unbound,
        System::Bless(bless::BlessParams::default()),
    ];
    systems
        .iter()
        .map(|sys| {
            let ws = burst_workload(apps.clone(), quotas);
            let r = run_system(sys, &ws, &spec, SimTime::from_secs(60), None);
            (
                sys.name().to_string(),
                r.mean_ms(),
                r.deviation().as_millis_f64(),
            )
        })
        .collect()
}

/// Regenerates Fig. 15.
pub fn run() -> Vec<Table> {
    let mut out = Vec::new();
    for (label, apps, quotas, paper) in [
        (
            "4 applications, quotas (10,20,30,40)%",
            four_apps(),
            &FOUR_MODEL_QUOTAS[..],
            "-41.2% TEMPORAL, -18.3% GSLICE; deviation: BLESS 0",
        ),
        (
            "8 applications, quotas (5,5,10,10,15,15,20,20)%",
            eight_apps(),
            &EIGHT_MODEL_QUOTAS[..],
            "-80.8% TEMPORAL, -35.5% GSLICE; TEMPORAL dev 74ms, GSLICE 5ms",
        ),
    ] {
        let rows = scenario(apps, quotas);
        let bless = crate::require(rows.last(), "BLESS last").1;
        let mut t = Table::new(
            format!("Fig. 15: {label}, simultaneous arrival"),
            &[
                "system",
                "avg latency ms",
                "BLESS reduction %",
                "deviation ms",
            ],
        );
        for (name, ms, dev) in &rows {
            let red = if name == "BLESS" {
                "-".to_string()
            } else {
                format!("{:.1}", (1.0 - bless / ms) * 100.0)
            };
            t.row(&[name.clone(), format!("{ms:.2}"), red, format!("{dev:.2}")]);
        }
        t.note(format!("paper: {paper}"));
        out.push(t);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bless_scales_with_tenant_count() {
        let four = scenario(four_apps(), &FOUR_MODEL_QUOTAS);
        let get = |rows: &[(String, f64, f64)], n: &str| {
            rows.iter().find(|(name, _, _)| name == n).unwrap().clone()
        };
        let bless = get(&four, "BLESS");
        let temporal = get(&four, "TEMPORAL");
        let gslice = get(&four, "GSLICE");
        assert!(bless.1 < temporal.1, "BLESS beats TEMPORAL");
        assert!(bless.1 < gslice.1, "BLESS beats GSLICE");
        // BLESS's deviation is by far the smallest (the paper reports 0;
        // our interference floor leaves a few percent of the ISO targets,
        // see EXPERIMENTS.md), and TEMPORAL/GSLICE deviate far more.
        assert!(
            bless.2 < gslice.2 * 0.75,
            "BLESS dev {:.2} vs GSLICE {:.2}",
            bless.2,
            gslice.2
        );
        assert!(
            bless.2 < temporal.2 * 0.3,
            "BLESS dev {:.2} vs TEMPORAL {:.2}",
            bless.2,
            temporal.2
        );
    }

    #[test]
    fn eight_tenants_widen_the_gap() {
        let four = scenario(four_apps(), &FOUR_MODEL_QUOTAS);
        let eight = scenario(eight_apps(), &EIGHT_MODEL_QUOTAS);
        let red = |rows: &[(String, f64, f64)]| {
            let b = rows.iter().find(|(n, _, _)| n == "BLESS").unwrap().1;
            let t = rows.iter().find(|(n, _, _)| n == "TEMPORAL").unwrap().1;
            1.0 - b / t
        };
        assert!(
            red(&eight) > red(&four),
            "8-tenant reduction {:.2} must exceed 4-tenant {:.2}",
            red(&eight),
            red(&four)
        );
        assert!(
            red(&eight) > 0.30,
            "gap must be substantial: {:.2}",
            red(&eight)
        );
    }
}
