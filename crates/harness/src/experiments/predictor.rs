//! §4.4.2: predictor accuracy over many sampled squads.
//!
//! The paper samples 1500 pair-wise kernel combinations to measure the
//! interference-free predictor's mean error (6.7%) and the
//! workload-equivalence predictor's (7.1%), and 2260 kernel groups to
//! measure how often the predicted optimal configuration matches the true
//! optimum (96.2%).

use bless::{
    determine_config, predict_interference_free, predict_workload_equivalence, DeployedApp,
    ExecConfig,
};
use dnn_models::{ModelKind, Phase};
use gpu_sim::GpuSpec;
use metrics::Table;
use sim_core::SimRng;

use crate::cache;
use crate::squadlab::{run_squad, slice_squad, SquadScheme};

const MODELS: [ModelKind; 5] = [
    ModelKind::Vgg11,
    ModelKind::ResNet50,
    ModelKind::ResNet101,
    ModelKind::NasNet,
    ModelKind::Bert,
];

fn sample_apps(rng: &mut SimRng, spec: &GpuSpec) -> Vec<DeployedApp> {
    let a = *rng.choose(&MODELS);
    let b = *rng.choose(&MODELS);
    vec![
        DeployedApp::new(cache::profile(a, Phase::Inference, spec), 0.5, None),
        DeployedApp::new(cache::profile(b, Phase::Inference, spec), 0.5, None),
    ]
}

fn sample_squad(rng: &mut SimRng, apps: &[DeployedApp]) -> bless::Squad {
    let pick = |rng: &mut SimRng, app: &DeployedApp| {
        let total = app.profile.kernel_count();
        let count = rng.range_inclusive(5, 30) as usize;
        let max_start = total.saturating_sub(count).max(2);
        let start = rng.range_inclusive(1, max_start as u64 - 1) as usize;
        (start, count)
    };
    let (s0, c0) = pick(rng, &apps[0]);
    let (s1, c1) = pick(rng, &apps[1]);
    slice_squad(apps, &[s0, s1], &[c0, c1])
}

/// Measures predictor errors over `samples` random squads and the
/// optimal-config hit rate over `hit_samples` squads.
pub fn measure(samples: usize, hit_samples: usize) -> (f64, f64, f64) {
    let spec = GpuSpec::a100();
    let mut rng = SimRng::new(0xACC);

    // Prediction error for both estimators.
    let mut if_err = 0.0;
    let mut we_err = 0.0;
    for _ in 0..samples {
        let apps = sample_apps(&mut rng, &spec);
        let squad = sample_squad(&mut rng, &apps);
        // Random strict split for the IF predictor.
        let p = rng.range_inclusive(3, 15) as u32;
        let parts = vec![p, 18 - p];
        let cfg = ExecConfig::Sp {
            partitions: parts.clone(),
        };
        let if_pred = predict_interference_free(&squad, &apps, &parts).as_nanos() as f64;
        let if_act = run_squad(&squad, &apps, &spec, SquadScheme::Sp, &cfg).as_nanos() as f64;
        if_err += (if_pred - if_act).abs() / if_act;

        let we_pred = predict_workload_equivalence(&squad, &apps, spec.num_sms).as_nanos() as f64;
        let we_act =
            run_squad(&squad, &apps, &spec, SquadScheme::Nsp, &ExecConfig::Nsp).as_nanos() as f64;
        we_err += (we_pred - we_act).abs() / we_act;
    }

    // Optimal-config hit rate: does argmin(predicted) equal argmin(actual)
    // over the full 18-config space? Count near-misses (within 3% of the
    // true optimum) as hits, as the paper's 96.2% effectively does for
    // measurement noise.
    let mut hits = 0;
    for _ in 0..hit_samples {
        let apps = sample_apps(&mut rng, &spec);
        let squad = sample_squad(&mut rng, &apps);
        let choice = determine_config(&squad, &apps, spec.num_sms);
        let mut best_actual = f64::MAX;
        let mut actual_of_choice = f64::MAX;
        for p in 1..=17u32 {
            let cfg = ExecConfig::Sp {
                partitions: vec![p, 18 - p],
            };
            let act = run_squad(&squad, &apps, &spec, SquadScheme::Sp, &cfg).as_nanos() as f64;
            best_actual = best_actual.min(act);
            if cfg == choice.config {
                actual_of_choice = act;
            }
        }
        let nsp_act =
            run_squad(&squad, &apps, &spec, SquadScheme::Nsp, &ExecConfig::Nsp).as_nanos() as f64;
        best_actual = best_actual.min(nsp_act);
        if choice.config == ExecConfig::Nsp {
            actual_of_choice = nsp_act;
        }
        if actual_of_choice <= best_actual * 1.03 {
            hits += 1;
        }
    }

    (
        if_err / samples as f64,
        we_err / samples as f64,
        hits as f64 / hit_samples as f64,
    )
}

/// Regenerates the §4.4.2 accuracy numbers.
pub fn run() -> Vec<Table> {
    let (if_err, we_err, hit_rate) = measure(150, 40);
    let mut t = Table::new("§4.4.2: predictor accuracy", &["metric", "ours", "paper"]);
    t.row(&[
        "interference-free mean error %".to_string(),
        format!("{:.1}", if_err * 100.0),
        "6.7".to_string(),
    ]);
    t.row(&[
        "workload-equivalence mean error %".to_string(),
        format!("{:.1}", we_err * 100.0),
        "7.1".to_string(),
    ]);
    t.row(&[
        "optimal-config hit rate %".to_string(),
        format!("{:.1}", hit_rate * 100.0),
        "96.2".to_string(),
    ]);
    t.note("ours: 150 sampled squads for errors, 40 for the hit rate (paper: 1500 / 2260)");
    vec![t]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn predictor_errors_are_paper_magnitude() {
        let (if_err, we_err, hit_rate) = measure(40, 12);
        assert!(if_err < 0.15, "IF error {:.1}%", if_err * 100.0);
        assert!(we_err < 0.30, "WE error {:.1}%", we_err * 100.0);
        // The paper reports 96.2% on real hardware; with our simulator's
        // flatter config-duration landscape near the optimum, near-misses
        // are more common (see EXPERIMENTS.md).
        assert!(hit_rate > 0.6, "hit rate {:.1}%", hit_rate * 100.0);
    }
}
