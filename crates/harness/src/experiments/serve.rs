//! Open-loop serving (DESIGN.md §5l): the BLESS daemon behind the
//! lock-free ingest stage, driven by Poisson and diurnal tenant streams
//! at swept offered loads.
//!
//! For each offered-load multiplier the experiment reports sustained
//! ingest throughput (wall clock, including the live GPU simulation),
//! the admission-to-completion p99 of admitted requests, and the shed
//! fraction split by reason. Three properties are asserted in-process:
//!
//! * **conservation** — per tenant, `admitted + shed = offered`;
//! * **shed monotonicity** — the shed fraction never decreases as the
//!   offered load grows against a fixed rate limit;
//! * **closed-trace twin** — replaying the daemon's admitted arrivals
//!   through the batch path reproduces the daemon's request-log digest
//!   byte-for-byte.

use bless::{BlessDriver, BlessParams, DeployedApp, IngestConfig, RateLimit, ServeDaemon};
use dnn_models::{ModelKind, Phase};
use gpu_sim::{BufferSink, Gpu, GpuSpec, HostCosts, RequestArrival, Simulation};
use metrics::{LatencyStats, Table};
use profiler::AdmissionPolicy;
use sim_core::{SimDuration, SimRng, SimTime};
use workloads::ArrivalPattern;

use crate::cache;
use crate::tracectl;

/// Offered-load multipliers swept against the fixed rate limit.
const LOADS: &[f64] = &[1.0, 2.0, 4.0, 8.0];
/// Base mean inter-arrival per tenant at load 1.0.
const BASE_MEAN_US: f64 = 4_000.0;
/// Arrival window.
const WINDOW: SimTime = SimTime::from_millis(40);
/// Per-tenant admission rate limit (requests per virtual second).
const RATE_LIMIT: RateLimit = RateLimit {
    tokens_per_sec: 300,
    burst: 2,
};
/// Backpressure bound on admitted-but-incomplete requests per tenant.
const MAX_OUTSTANDING: u32 = 24;

fn deployed(spec: &GpuSpec) -> Vec<DeployedApp> {
    [ModelKind::Vgg11, ModelKind::ResNet50, ModelKind::Bert]
        .iter()
        .map(|&k| DeployedApp::new(cache::profile(k, Phase::Inference, spec), 1.0 / 3.0, None))
        .collect()
}

/// Per-tenant offered arrival times at one load multiplier: two Poisson
/// streams and one diurnally modulated (Twitter-like) stream.
fn offered_times(load: f64) -> Vec<Vec<SimTime>> {
    let mean = SimDuration::from_nanos((BASE_MEAN_US * 1_000.0 / load) as u64);
    let patterns = [
        ArrivalPattern::Poisson {
            mean_interval: mean,
            horizon: WINDOW,
        },
        ArrivalPattern::Poisson {
            mean_interval: mean,
            horizon: WINDOW,
        },
        ArrivalPattern::TwitterLike {
            mean_interval: mean,
            cycle: SimDuration::from_millis(20),
            horizon: WINDOW,
        },
    ];
    patterns
        .iter()
        .enumerate()
        .map(|(app, p)| {
            p.initial_arrivals(app, &mut SimRng::new(0x5e57e + app as u64))
                .into_iter()
                .map(|a| a.at)
                .collect()
        })
        .collect()
}

struct LoadResult {
    offered: u64,
    admitted: u64,
    shed_rate: u64,
    shed_bp: u64,
    wall_arrivals_per_sec: f64,
    p99: Option<SimDuration>,
    digest: u64,
}

fn run_load(load: f64, capture: bool) -> LoadResult {
    let spec = GpuSpec::a100();
    let cfg = IngestConfig {
        rate: Some(RATE_LIMIT),
        max_outstanding: Some(MAX_OUTSTANDING),
        ..IngestConfig::default()
    };
    let (mut daemon, streams) = ServeDaemon::new(
        deployed(&spec),
        BlessParams::default(),
        Gpu::new(spec.clone(), HostCosts::paper()),
        &cfg,
        80 * 1024,
        &AdmissionPolicy::default(),
    )
    .unwrap_or_else(|e| panic!("serve fixture failed placement admission: {e}"));
    let buf = BufferSink::new();
    if capture {
        daemon.sim_mut().gpu.set_trace_sink(Box::new(buf.clone()));
    }

    let times = offered_times(load);
    let offered: u64 = times.iter().map(|t| t.len() as u64).sum();

    // Open-loop drive: producers run ahead of the daemon; the wall clock
    // around push + pump + final drain is the sustained ingest rate
    // (including the live BLESS simulation, unlike the bench's
    // counting-sink gate which isolates the ingest pipeline).
    let started = std::time::Instant::now();
    let mut streams = streams;
    let mut cursors: Vec<std::slice::Iter<SimTime>> = times.iter().map(|t| t.iter()).collect();
    loop {
        let mut any = false;
        for (stream, cursor) in streams.iter_mut().zip(cursors.iter_mut()) {
            if let Some(&at) = cursor.next() {
                stream.offer_blocking(at);
                any = true;
            }
        }
        daemon.pump();
        if !any {
            break;
        }
    }
    for s in streams {
        s.close();
    }
    let outcome = daemon.run_to_completion(SimTime::from_secs(10));
    let elapsed = started.elapsed().as_secs_f64();
    assert_eq!(
        outcome,
        gpu_sim::RunOutcome::Completed,
        "daemon did not drain at load {load}"
    );

    let mut admitted = 0;
    let mut shed_rate = 0;
    let mut shed_bp = 0;
    for (app, offered) in times.iter().enumerate() {
        let st = daemon.tenant_stats(app);
        assert_eq!(
            st.admitted + st.shed(),
            st.offered,
            "tenant {app} leaked requests at load {load}"
        );
        assert_eq!(st.offered as usize, offered.len());
        admitted += st.admitted;
        shed_rate += st.shed_rate_limited;
        shed_bp += st.shed_backpressure;
    }

    let sim = daemon.into_sim();
    let digest = sim.driver.log.digest();

    // Closed-trace twin: the admitted arrivals replayed through the batch
    // path must reproduce the daemon's log digest byte-for-byte.
    let mut replay = Vec::with_capacity(admitted as usize);
    for app in 0..3 {
        replay.extend(sim.driver.log.records(app).iter().map(|r| RequestArrival {
            app,
            req: r.req,
            at: r.arrival,
        }));
    }
    let mut batch = Simulation::new(
        Gpu::new(spec.clone(), HostCosts::paper()),
        BlessDriver::new(deployed(&spec), BlessParams::default()),
        replay,
    );
    batch.run(SimTime::from_secs(10));
    assert_eq!(
        batch.driver.log.digest(),
        digest,
        "daemon/batch twin diverged at load {load}"
    );

    if capture {
        let events = buf.take();
        tracectl::export_and_validate(&format!("serve_load{load}"), spec.num_sms, None, &events);
    }

    let latencies: Vec<SimDuration> = (0..3).flat_map(|a| sim.driver.log.latencies(a)).collect();
    LoadResult {
        offered,
        admitted,
        shed_rate,
        shed_bp,
        wall_arrivals_per_sec: offered as f64 / elapsed.max(1e-9),
        p99: LatencyStats::from_latencies(&latencies).p99,
        digest,
    }
}

/// Runs the open-loop serving sweep.
pub fn run() -> Vec<Table> {
    let mut t = Table::new(
        "§5l: open-loop serving — BLESS daemon behind the lock-free ingest stage",
        &[
            "load",
            "offered",
            "admitted",
            "shed_frac",
            "shed_rate_limit",
            "shed_backpressure",
            "admission_p99_ms",
            "log_digest",
        ],
    );
    let capture = tracectl::enabled();
    let mut prev_shed_frac = -1.0f64;
    for &load in LOADS {
        let r = run_load(load, capture);
        let shed_frac = (r.offered - r.admitted) as f64 / r.offered.max(1) as f64;
        assert!(
            shed_frac >= prev_shed_frac - 1e-9,
            "shed fraction regressed as offered load grew: {shed_frac} after {prev_shed_frac}"
        );
        prev_shed_frac = shed_frac;
        t.row(&[
            format!("{load}x"),
            r.offered.to_string(),
            r.admitted.to_string(),
            format!("{shed_frac:.3}"),
            r.shed_rate.to_string(),
            r.shed_bp.to_string(),
            r.p99
                .map_or("-".into(), |d| format!("{:.2}", d.as_millis_f64())),
            format!("{:#018x}", r.digest),
        ]);
        // Wall-clock rate goes to stderr (like fleet10k's timings):
        // stdout tables stay byte-stable across runs.
        eprintln!(
            "serve: load {load}x sustained {:.0} arrivals/s wall-clock (incl. live sim)",
            r.wall_arrivals_per_sec
        );
    }
    t.note(format!(
        "fixed per-tenant rate limit {}/s (burst {}), backpressure bound {MAX_OUTSTANDING}; \
         shed fraction is monotone in offered load (asserted), and every load's admitted \
         trace replays byte-identically through the batch path (asserted)",
        RATE_LIMIT.tokens_per_sec, RATE_LIMIT.burst
    ));
    vec![t]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn low_load_sheds_little_and_conserves() {
        let r = run_load(1.0, false);
        assert!(r.offered > 0);
        assert_eq!(r.offered, r.admitted + r.shed_rate + r.shed_bp);
        let shed_frac = (r.offered - r.admitted) as f64 / r.offered as f64;
        assert!(shed_frac < 0.5, "load 1.0 should mostly admit: {shed_frac}");
    }

    #[test]
    fn high_load_sheds_and_stays_conserved() {
        let lo = run_load(1.0, false);
        let hi = run_load(8.0, false);
        assert!(hi.offered > lo.offered);
        let lo_frac = (lo.offered - lo.admitted) as f64 / lo.offered as f64;
        let hi_frac = (hi.offered - hi.admitted) as f64 / hi.offered as f64;
        assert!(
            hi_frac > lo_frac,
            "8x load must shed a larger fraction ({hi_frac} vs {lo_frac})"
        );
        assert!(hi.shed_rate > 0, "rate limiter never engaged at 8x load");
    }
}
