//! Fig. 17: kernel-squad duration under the four execution schemes, for
//! the pairs {NAS+BERT}, {BERT+R50} and {NAS+R50}.
//!
//! Paper: relative to SEQ, the squads run 6.5% faster with NSP, 12.9%
//! faster with strict SP and 17.6% faster with Semi-SP on average.

use bless::{determine_config, DeployedApp, ExecConfig};
use dnn_models::{ModelKind, Phase};
use gpu_sim::GpuSpec;
use metrics::Table;

use crate::cache;
use crate::squadlab::{run_squad, slice_squad, SquadScheme};

/// The three application pairs of Fig. 17.
pub const PAIRS: [(ModelKind, ModelKind); 3] = [
    (ModelKind::NasNet, ModelKind::Bert),
    (ModelKind::Bert, ModelKind::ResNet50),
    (ModelKind::NasNet, ModelKind::ResNet50),
];

/// Measures one pair's squad under all four schemes; returns
/// (seq, nsp, sp, semi) in milliseconds.
pub fn pair_durations(a: ModelKind, b: ModelKind, kernels_each: usize) -> (f64, f64, f64, f64) {
    let spec = GpuSpec::a100();
    let apps = vec![
        DeployedApp::new(cache::profile(a, Phase::Inference, &spec), 0.5, None),
        DeployedApp::new(cache::profile(b, Phase::Inference, &spec), 0.5, None),
    ];
    let squad = slice_squad(&apps, &[1, 1], &[kernels_each, kernels_each]);
    let choice = determine_config(&squad, &apps, spec.num_sms);
    let sp_cfg = match &choice.config {
        c @ ExecConfig::Sp { .. } => c.clone(),
        // If NSP predicted best, use the best strict split found by a
        // quick scan for the SP/Semi-SP columns (Fig. 17 always shows SP).
        ExecConfig::Nsp => {
            let mut best = (vec![9u32, 9u32], f64::MAX);
            for p in 1..=17u32 {
                let parts = vec![p, 18 - p];
                let d = bless::predict_interference_free(&squad, &apps, &parts).as_millis_f64();
                if d < best.1 {
                    best = (parts, d);
                }
            }
            ExecConfig::Sp { partitions: best.0 }
        }
    };
    let ms = |scheme| run_squad(&squad, &apps, &spec, scheme, &sp_cfg).as_millis_f64();
    (
        ms(SquadScheme::Seq),
        ms(SquadScheme::Nsp),
        ms(SquadScheme::Sp),
        ms(SquadScheme::SemiSp(0.5)),
    )
}

/// Regenerates Fig. 17.
pub fn run() -> Vec<Table> {
    let mut t = Table::new(
        "Fig. 17: kernel-squad duration by execution scheme (ms)",
        &["pair", "SEQ", "NSP", "SP", "Semi-SP"],
    );
    let mut sums = [0.0f64; 4];
    for (a, b) in PAIRS {
        let (seq, nsp, sp, semi) = pair_durations(a, b, 40);
        sums[0] += seq;
        sums[1] += nsp;
        sums[2] += sp;
        sums[3] += semi;
        t.row(&[
            format!("{}+{}", a.short_name(), b.short_name()),
            format!("{seq:.2}"),
            format!("{nsp:.2}"),
            format!("{sp:.2}"),
            format!("{semi:.2}"),
        ]);
    }
    let red = |i: usize| (1.0 - sums[i] / sums[0]) * 100.0;
    t.note(format!(
        "mean reduction vs SEQ: NSP {:.1}%, SP {:.1}%, Semi-SP {:.1}% (paper: 6.5/12.9/17.6%)",
        red(1),
        red(2),
        red(3)
    ));
    vec![t]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scheme_ordering_matches_figure_17() {
        for (a, b) in PAIRS {
            let (seq, nsp, sp, semi) = pair_durations(a, b, 30);
            assert!(nsp < seq, "{a:?}+{b:?}: NSP {nsp:.2} vs SEQ {seq:.2}");
            assert!(sp < seq, "{a:?}+{b:?}: SP {sp:.2} vs SEQ {seq:.2}");
            // In our substrate the rear free-for-all pays dispatch
            // contention, so Semi-SP lands within a few percent of strict
            // SP rather than beating it (see EXPERIMENTS.md).
            assert!(
                semi <= sp * 1.10,
                "{a:?}+{b:?}: Semi-SP {semi:.2} vs SP {sp:.2}"
            );
        }
    }
}
