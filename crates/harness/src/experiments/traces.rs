//! §6.3 "Performance with real-world traces": 10 mutual pairs replaying
//! the Twitter-like (dense) and Azure-like (sparse, bursty) synthetic
//! traces.
//!
//! Paper: with the Twitter trace at 50/50 quotas BLESS reduces latency by
//! 18.4% / 20.5% / 7.3% vs TEMPORAL / MIG / GSLICE; with the Azure trace
//! by 49.3% / 41.2% / 32.1% — the sparse trace leaves far more bubbles.

use dnn_models::{ModelKind, Phase};
use gpu_sim::GpuSpec;
use metrics::Table;
use sim_core::SimTime;
use workloads::{pair_workload, PaperWorkload};

use crate::cache;
use crate::runner::{run_system, System};

const MODELS: [ModelKind; 5] = [
    ModelKind::Vgg11,
    ModelKind::ResNet50,
    ModelKind::ResNet101,
    ModelKind::NasNet,
    ModelKind::Bert,
];

/// The ten unordered mutual pairs of the five models.
pub fn mutual_pairs() -> Vec<(ModelKind, ModelKind)> {
    let mut v = Vec::new();
    for (i, &a) in MODELS.iter().enumerate() {
        for &b in &MODELS[i + 1..] {
            v.push((a, b));
        }
    }
    v
}

/// Mean latency (ms) of `system` over the mutual pairs under `trace`.
pub fn trace_mean(
    system: &System,
    trace: PaperWorkload,
    quotas: (f64, f64),
    pairs: &[(ModelKind, ModelKind)],
) -> f64 {
    let spec = GpuSpec::a100();
    let horizon = SimTime::from_secs(2);
    let mut total = 0.0;
    for &(a, b) in pairs {
        let ws = pair_workload(
            cache::model(a, Phase::Inference),
            cache::model(b, Phase::Inference),
            quotas,
            trace,
            0,
            horizon,
            31,
        );
        let r = run_system(system, &ws, &spec, SimTime::from_secs(60), None);
        total += r.mean_ms();
    }
    total / pairs.len() as f64
}

/// Regenerates the §6.3 trace results.
pub fn run() -> Vec<Table> {
    let pairs = mutual_pairs();
    let mut out = Vec::new();
    for (trace, label, paper) in [
        (
            PaperWorkload::TraceTwitter,
            "Twitter-like trace (dense), 50/50 quotas",
            "-18.4% TEMPORAL, -20.5% MIG, -7.3% GSLICE",
        ),
        (
            PaperWorkload::TraceAzure,
            "Azure-like trace (sparse/bursty), 50/50 quotas",
            "-49.3% TEMPORAL, -41.2% MIG, -32.1% GSLICE",
        ),
    ] {
        let mut t = Table::new(
            format!("§6.3: {label}"),
            &["system", "avg latency ms", "BLESS reduction %"],
        );
        let systems = [
            System::Temporal,
            System::Mig,
            System::Gslice,
            System::Bless(bless::BlessParams::default()),
        ];
        let results: Vec<(String, f64)> = systems
            .iter()
            .map(|s| {
                (
                    s.name().to_string(),
                    trace_mean(s, trace, (0.5, 0.5), &pairs),
                )
            })
            .collect();
        let bless = crate::require(results.last(), "BLESS last").1;
        for (name, ms) in &results {
            let red = if name == "BLESS" {
                "-".to_string()
            } else {
                format!("{:.1}", (1.0 - bless / ms) * 100.0)
            };
            t.row(&[name.clone(), format!("{ms:.2}"), red]);
        }
        t.note(format!("paper: {paper}"));
        out.push(t);
    }

    // Uneven quotas with the Twitter-like trace: BLESS vs GSLICE and ISO.
    let mut t = Table::new(
        "§6.3: Twitter-like trace, uneven quotas (1/3, 2/3)",
        &["system", "avg latency ms", "avg deviation ms"],
    );
    let spec = GpuSpec::a100();
    for sys in [System::Gslice, System::Bless(bless::BlessParams::default())] {
        let mut total = 0.0;
        let mut dev = 0.0;
        for &(a, b) in &pairs {
            let ws = pair_workload(
                cache::model(a, Phase::Inference),
                cache::model(b, Phase::Inference),
                (1.0 / 3.0, 2.0 / 3.0),
                PaperWorkload::TraceTwitter,
                0,
                SimTime::from_secs(2),
                31,
            );
            let r = run_system(&sys, &ws, &spec, SimTime::from_secs(60), None);
            total += r.mean_ms();
            dev += r.deviation().as_millis_f64();
        }
        t.row(&[
            sys.name().to_string(),
            format!("{:.2}", total / pairs.len() as f64),
            format!("{:.2}", dev / pairs.len() as f64),
        ]);
    }
    t.note("paper: -14% latency vs GSLICE and no deviation vs ISO at (1/3, 2/3)");
    out.push(t);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use bless::BlessParams;

    #[test]
    fn azure_gains_exceed_twitter_gains() {
        // The sparse trace has more bubbles, so BLESS's edge over GSLICE
        // must be larger there — the paper's crossover structure.
        let pairs = [(ModelKind::Vgg11, ModelKind::ResNet50)];
        let reduction = |trace| {
            let g = trace_mean(&System::Gslice, trace, (0.5, 0.5), &pairs);
            let b = trace_mean(
                &System::Bless(BlessParams::default()),
                trace,
                (0.5, 0.5),
                &pairs,
            );
            1.0 - b / g
        };
        let twitter = reduction(PaperWorkload::TraceTwitter);
        let azure = reduction(PaperWorkload::TraceAzure);
        assert!(azure > twitter, "azure {azure:.3} vs twitter {twitter:.3}");
        assert!(
            azure > 0.10,
            "sparse-trace gains should be large: {azure:.3}"
        );
    }
}
