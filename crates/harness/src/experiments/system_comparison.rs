//! §6.1 head-to-head system comparison on a bursty trace, now including
//! the Tally baseline (priority tenant unimpeded, best-effort kernels
//! throttled).
//!
//! Every run goes through [`run_validated`]: the full trace stream is
//! captured and machine-checked against the scheduler invariants, so each
//! reported row is backed by a validator-clean execution.

use bless::BlessParams;
use dnn_models::{ModelKind, Phase};
use gpu_sim::GpuSpec;
use metrics::Table;
use sim_core::SimTime;
use workloads::{pair_workload, PaperWorkload, WorkloadSet};

use crate::cache;
use crate::runner::{run_validated, System};

/// The comparison scenario: a VGG-11 + ResNet-50 pair replaying the
/// Azure-like sparse/bursty trace — the workload shape where scheduling
/// policy differences are widest (§6.3). Under Tally the first tenant
/// (VGG-11) is the priority task.
fn workload() -> WorkloadSet {
    pair_workload(
        cache::model(ModelKind::Vgg11, Phase::Inference),
        cache::model(ModelKind::ResNet50, Phase::Inference),
        (0.5, 0.5),
        PaperWorkload::TraceAzure,
        0,
        SimTime::from_secs(2),
        31,
    )
}

/// The full §6.1 comparison roster: the latency target, the five
/// baselines, Tally, and BLESS.
pub fn comparison_set() -> Vec<System> {
    vec![
        System::Iso,
        System::Temporal,
        System::Mig,
        System::Gslice,
        System::Unbound,
        System::ReefPlus,
        System::Zico,
        System::Tally,
        System::Bless(BlessParams::default()),
    ]
}

/// Regenerates the system-comparison table.
pub fn run() -> Vec<Table> {
    let spec = GpuSpec::a100();
    let ws = workload();
    let horizon = SimTime::from_secs(60);

    let mut t = Table::new(
        "System comparison: VGG11 + R50, Azure-like trace (validator-checked runs)",
        &[
            "system",
            "avg latency ms",
            "p99 app0 ms",
            "p99 app1 ms",
            "deviation ms",
            "util %",
        ],
    );
    for sys in comparison_set() {
        let r = run_validated(&sys, &ws, &spec, horizon, None);
        let p99 = |app: usize| r.log.stats(app).p99.map_or(f64::NAN, |d| d.as_millis_f64());
        t.row(&[
            sys.name().to_string(),
            format!("{:.2}", r.mean_ms()),
            format!("{:.2}", p99(0)),
            format!("{:.2}", p99(1)),
            format!("{:.2}", r.deviation().as_millis_f64()),
            format!("{:.1}", r.utilization * 100.0),
        ]);
    }
    t.note("TALLY protects app 0 (priority); its p99 app0 column is the headline");
    vec![t]
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::RunOutcome;

    #[test]
    fn every_system_completes_validator_clean() {
        let spec = GpuSpec::a100();
        let ws = workload();
        for sys in comparison_set() {
            // `run_validated` panics on any trace-invariant violation.
            let r = run_validated(&sys, &ws, &spec, SimTime::from_secs(60), None);
            assert_eq!(r.outcome, RunOutcome::Completed, "{}", sys.name());
            for app in 0..2 {
                assert!(
                    r.log.completed_count(app) > 0,
                    "{} app {app} completed nothing",
                    sys.name()
                );
            }
        }
    }

    #[test]
    fn tally_priority_p99_beats_temporal() {
        let spec = GpuSpec::a100();
        let ws = workload();
        let tally = run_validated(&System::Tally, &ws, &spec, SimTime::from_secs(60), None);
        let temporal = run_validated(&System::Temporal, &ws, &spec, SimTime::from_secs(60), None);
        let p99 = |r: &crate::runner::RunResult| crate::require(r.log.stats(0).p99, "p99");
        assert!(
            p99(&tally) <= p99(&temporal),
            "priority p99 {:?} vs temporal {:?}",
            p99(&tally),
            p99(&temporal)
        );
    }
}
