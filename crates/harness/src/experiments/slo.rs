//! §6.5: guaranteeing SLOs.
//!
//! BLESS guarantees QoS targets by replacing the isolated latency in the
//! progress model with the target (§4.3.1). Two settings are evaluated:
//! tight targets (1.2× and 2× the *solo-run* latency) under medium load,
//! and loose targets (1.5× and 3×) under high load. Targets are relative
//! to the solo latency: that is what makes them binding — a 1.2× solo
//! target is *below* the 50%-quota isolated latency, so a static
//! partition (GSLICE) can never meet it and uncontrolled sharing
//! (UNBOUND) misses it whenever requests collide.
//!
//! Paper: UNBOUND violates 38.8% and GSLICE 50.1% of requests on average;
//! BLESS violates only 0.6%.

use dnn_models::{ModelKind, Phase};
use gpu_sim::GpuSpec;
use metrics::Table;
use sim_core::{SimDuration, SimTime};
use workloads::{pair_workload, PaperWorkload};

use crate::cache;
use crate::runner::{deployment, run_system, System};

const MODELS: [ModelKind; 5] = [
    ModelKind::Vgg11,
    ModelKind::ResNet50,
    ModelKind::ResNet101,
    ModelKind::NasNet,
    ModelKind::Bert,
];

/// Runs one SLO setting over symmetric pairs; returns (system, violation
/// rate) rows.
pub fn setting(
    factors: (f64, f64),
    load: PaperWorkload,
    models: &[ModelKind],
    requests: usize,
) -> Vec<(String, f64)> {
    let spec = GpuSpec::a100();
    let systems = [
        System::Unbound,
        System::Gslice,
        System::Bless(bless::BlessParams::default()),
    ];
    systems
        .iter()
        .map(|sys| {
            let mut violations = 0.0;
            let mut n = 0.0;
            for &m in models {
                let ws = pair_workload(
                    cache::model(m, Phase::Inference),
                    cache::model(m, Phase::Inference),
                    (0.5, 0.5),
                    load,
                    requests,
                    SimTime::from_secs(10),
                    61,
                );
                // QoS targets are multiples of the *solo* (full-GPU)
                // latency — tighter than the quota partition can deliver.
                let apps = deployment(&ws, &spec, None);
                let solo = apps[0].profile.iso_latency[profiler::PARTITIONS - 1];
                let targets: Vec<SimDuration> =
                    vec![solo.mul_f64(factors.0), solo.mul_f64(factors.1)];
                let r = run_system(sys, &ws, &spec, SimTime::from_secs(120), Some(&targets));
                for (app, target) in targets.iter().enumerate() {
                    violations += r.log.violation_rate(app, *target);
                    n += 1.0;
                }
            }
            (sys.name().to_string(), violations / n)
        })
        .collect()
}

/// Regenerates the §6.5 results.
pub fn run() -> Vec<Table> {
    let mut out = Vec::new();
    for (label, factors, load) in [
        (
            "(a) tight QoS (1.2x, 2.0x solo), medium load",
            (1.2, 2.0),
            PaperWorkload::MediumLoad,
        ),
        (
            "(b) loose QoS (1.5x, 3.0x solo), high load",
            (1.5, 3.0),
            PaperWorkload::HighLoad,
        ),
    ] {
        let mut t = Table::new(format!("§6.5 {label}"), &["system", "QoS violation %"]);
        for (name, v) in setting(factors, load, &MODELS, 10) {
            t.row(&[name, format!("{:.1}", v * 100.0)]);
        }
        t.note("paper averages over both settings: UNBOUND 38.8%, GSLICE 50.1%, BLESS 0.6%");
        out.push(t);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bless_meets_slos_where_baselines_fail() {
        // Loose targets (1.5x, 3x solo) under high load: the baselines
        // violate heavily, BLESS essentially never (paper: 38.8% / 50.1%
        // vs 0.6%).
        let rows = setting(
            (1.5, 3.0),
            PaperWorkload::HighLoad,
            &[ModelKind::ResNet50, ModelKind::Vgg11],
            8,
        );
        let get = |n: &str| rows.iter().find(|(name, _)| name == n).unwrap().1;
        let bless = get("BLESS");
        assert!(bless < 0.05, "BLESS violation rate {:.3}", bless);
        assert!(get("GSLICE") > 0.2, "GSLICE must violate: {rows:?}");
        assert!(get("UNBOUND") > 0.1, "UNBOUND must violate: {rows:?}");
    }

    #[test]
    fn tight_targets_keep_bless_ahead() {
        // Tight targets (1.2x solo) sit below what static partitioning can
        // ever deliver; BLESS still violates least.
        let rows = setting(
            (1.2, 2.0),
            PaperWorkload::MediumLoad,
            &[ModelKind::ResNet50],
            8,
        );
        let get = |n: &str| rows.iter().find(|(name, _)| name == n).unwrap().1;
        assert!(
            get("BLESS") <= get("GSLICE"),
            "BLESS must violate no more than GSLICE: {rows:?}"
        );
    }
}
