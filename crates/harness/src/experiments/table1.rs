//! Table 1: application properties — solo duration, kernel count, and
//! offline profiling cost for the five models, inference and training.

use dnn_models::{ModelKind, Phase};
use gpu_sim::GpuSpec;
use metrics::Table;

use crate::cache;

/// A Table 1 row: solo duration (ms), kernel count, profile cost (s).
pub type Table1Row = (f64, usize, f64);

/// Paper values per model: (model, inference row, training row).
pub const PAPER: [(ModelKind, Table1Row, Table1Row); 5] = [
    (ModelKind::Vgg11, (10.2, 31, 0.56), (11.2, 80, 0.49)),
    (ModelKind::ResNet50, (8.7, 80, 0.38), (25.2, 306, 0.59)),
    (ModelKind::ResNet101, (17.2, 148, 0.77), (40.1, 598, 0.82)),
    (ModelKind::NasNet, (32.7, 458, 1.61), (157.8, 2824, 6.31)),
    (ModelKind::Bert, (12.8, 382, 0.50), (186.1, 5035, 6.88)),
];

/// Regenerates Table 1.
pub fn run() -> Vec<Table> {
    let spec = GpuSpec::a100();
    let mut out = Vec::new();
    for (phase, label, col) in [
        (Phase::Inference, "Table 1 (inference rows)", 1usize),
        (Phase::Training, "Table 1 (training rows)", 2usize),
    ] {
        let mut t = Table::new(
            label,
            &[
                "model",
                "duration ms (paper)",
                "duration ms (ours)",
                "# kernels (paper)",
                "# kernels (ours)",
                "profile s (paper)",
                "profile s (ours)",
            ],
        );
        for &(kind, inf, tr) in &PAPER {
            let paper = if col == 1 { inf } else { tr };
            let p = cache::profile(kind, phase, &spec);
            let dur = p.iso_latency[profiler::PARTITIONS - 1].as_millis_f64();
            let kernels = p.kernels.iter().filter(|k| k.kind.is_compute()).count();
            t.row(&[
                kind.short_name().to_string(),
                format!("{:.1}", paper.0),
                format!("{dur:.1}"),
                paper.1.to_string(),
                kernels.to_string(),
                format!("{:.2}", paper.2),
                format!("{:.2}", p.profile_cost.as_secs_f64()),
            ]);
        }
        t.note("profile cost = simulated time of 1 unrestricted + 18 partitioned runs (§4.2.1)");
        out.push(t);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_matches_paper_counts_and_durations() {
        let tables = run();
        assert_eq!(tables.len(), 2);
        for t in &tables {
            assert_eq!(t.row_count(), 5);
            for r in 0..5 {
                let paper_ms: f64 = t.cell(r, 1).parse().unwrap();
                let ours_ms: f64 = t.cell(r, 2).parse().unwrap();
                assert!(
                    (paper_ms - ours_ms).abs() / paper_ms < 0.05,
                    "{}: {} vs {}",
                    t.cell(r, 0),
                    paper_ms,
                    ours_ms
                );
                assert_eq!(t.cell(r, 3), t.cell(r, 4), "kernel counts must match");
            }
        }
    }

    #[test]
    fn profile_costs_have_paper_magnitude() {
        // The simulated profiling cost should land within ~3x of the
        // paper's measured seconds (same order of magnitude and shape:
        // training NasNet/BERT cost the most).
        let tables = run();
        for t in &tables {
            for r in 0..5 {
                let paper: f64 = t.cell(r, 5).parse().unwrap();
                let ours: f64 = t.cell(r, 6).parse().unwrap();
                assert!(
                    ours / paper < 3.0 && paper / ours < 3.0,
                    "{}: paper {} ours {}",
                    t.cell(r, 0),
                    paper,
                    ours
                );
            }
        }
    }
}
