//! Fig. 19: hyper-parameter studies.
//!
//! (a) kernel-squad granularity: larger squads amortize switching (average
//!     latency drops from 24.2 to 20.6 ms in the paper) but sacrifice the
//!     flexibility to support large quotas (8/9 achievable at 20
//!     kernels/squad, only ≤3/4 at 100).
//! (b) split ratio: the semi-SP optimum sits at c% = 50%.
//! (c) SM count: with fewer SMs applications saturate the GPU and BLESS's
//!     reduction over GSLICE grows (54.4% at the smallest instance,
//!     40.2% at the largest in the paper).

use bless::{determine_config, BlessParams, DeployedApp, ExecConfig};
use dnn_models::{ModelKind, Phase};
use gpu_sim::GpuSpec;
use metrics::Table;
use sim_core::SimTime;
use workloads::{pair_workload, PaperWorkload};

use crate::cache;
use crate::runner::{run_system, System};
use crate::squadlab::{run_squad, slice_squad, SquadScheme};

/// Mean latency (ms) and 8/9-quota deviation (ms) for one squad size.
pub fn squad_size_point(max_kernels: usize, requests: usize) -> (f64, f64) {
    let spec = GpuSpec::a100();
    let params = BlessParams {
        max_kernels_per_squad: max_kernels,
        ..BlessParams::default()
    };
    // Average latency: symmetric R50 pair under high load.
    let ws = pair_workload(
        cache::model(ModelKind::ResNet50, Phase::Inference),
        cache::model(ModelKind::ResNet50, Phase::Inference),
        (0.5, 0.5),
        PaperWorkload::HighLoad,
        requests,
        SimTime::from_secs(10),
        91,
    );
    let r = run_system(
        &System::Bless(params.clone()),
        &ws,
        &spec,
        SimTime::from_secs(120),
        None,
    );
    let mean = r.mean_ms();

    // Quota flexibility: can an 8/9-quota app still hit its ISO target
    // while a 1/9 app hammers the GPU?
    let ws = pair_workload(
        cache::model(ModelKind::ResNet50, Phase::Inference),
        cache::model(ModelKind::ResNet50, Phase::Inference),
        (8.0 / 9.0, 1.0 / 9.0),
        PaperWorkload::HighLoad,
        requests,
        SimTime::from_secs(10),
        92,
    );
    let r = run_system(
        &System::Bless(params),
        &ws,
        &spec,
        SimTime::from_secs(120),
        None,
    );
    let lat = crate::require(r.log.stats(0).mean, "app ran").as_millis_f64();
    let iso = r.iso_targets[0].as_millis_f64();
    (mean, (lat - iso).max(0.0))
}

/// 8/9-quota deviation at one squad size with drain-on-arrival disabled
/// (squads run to completion, as in the paper's original design).
pub fn squad_size_deviation_no_drain(max_kernels: usize, requests: usize) -> f64 {
    let spec = GpuSpec::a100();
    let params = BlessParams {
        max_kernels_per_squad: max_kernels,
        drain_on_arrival: false,
        ..BlessParams::default()
    };
    let ws = pair_workload(
        cache::model(ModelKind::ResNet50, Phase::Inference),
        cache::model(ModelKind::ResNet50, Phase::Inference),
        (8.0 / 9.0, 1.0 / 9.0),
        PaperWorkload::HighLoad,
        requests,
        SimTime::from_secs(10),
        92,
    );
    let r = run_system(
        &System::Bless(params),
        &ws,
        &spec,
        SimTime::from_secs(120),
        None,
    );
    let lat = crate::require(r.log.stats(0).mean, "app ran").as_millis_f64();
    (lat - r.iso_targets[0].as_millis_f64()).max(0.0)
}

/// Regenerates Fig. 19(a).
pub fn run_a() -> Vec<Table> {
    let mut t = Table::new(
        "Fig. 19(a): kernel-squad granularity",
        &[
            "max kernels/squad",
            "avg latency ms",
            "8/9-quota deviation ms",
            "same, no drain",
        ],
    );
    for size in [10, 20, 50, 100, 200] {
        let (mean, dev) = squad_size_point(size, 10);
        let dev_nd = squad_size_deviation_no_drain(size, 10);
        t.row(&[
            size.to_string(),
            format!("{mean:.2}"),
            format!("{dev:.2}"),
            format!("{dev_nd:.2}"),
        ]);
    }
    t.note("paper: latency 24.2 -> 20.6 ms as squads grow; 8/9 quota feasible at 20, not at 100");
    t.note(
        "without drain-on-arrival, large squads block the big-quota tenant (the paper's tradeoff)",
    );
    vec![t]
}

/// Normalized squad duration at each split ratio, averaged over the
/// Fig. 17 pairs.
pub fn split_ratio_curve(ratios: &[f64], kernels_each: usize) -> Vec<f64> {
    let spec = GpuSpec::a100();
    let pairs = [
        (ModelKind::NasNet, ModelKind::Bert),
        (ModelKind::Bert, ModelKind::ResNet50),
        (ModelKind::NasNet, ModelKind::ResNet50),
    ];
    let mut sums = vec![0.0; ratios.len()];
    for (a, b) in pairs {
        let apps = vec![
            DeployedApp::new(cache::profile(a, Phase::Inference, &spec), 0.5, None),
            DeployedApp::new(cache::profile(b, Phase::Inference, &spec), 0.5, None),
        ];
        let squad = slice_squad(&apps, &[1, 1], &[kernels_each, kernels_each]);
        let choice = determine_config(&squad, &apps, spec.num_sms);
        let cfg = match &choice.config {
            c @ ExecConfig::Sp { .. } => c.clone(),
            ExecConfig::Nsp => ExecConfig::Sp {
                partitions: vec![9, 9],
            },
        };
        let base = run_squad(&squad, &apps, &spec, SquadScheme::Nsp, &cfg).as_nanos() as f64;
        for (i, &c) in ratios.iter().enumerate() {
            let d = run_squad(&squad, &apps, &spec, SquadScheme::SemiSp(c), &cfg);
            sums[i] += d.as_nanos() as f64 / base;
        }
    }
    sums.iter().map(|s| s / pairs.len() as f64).collect()
}

/// Regenerates Fig. 19(b).
pub fn run_b() -> Vec<Table> {
    let ratios = [0.0, 0.25, 0.5, 0.75, 1.0];
    let curve = split_ratio_curve(&ratios, 40);
    let mut t = Table::new(
        "Fig. 19(b): split ratio c% vs normalized squad duration",
        &["c%", "duration (normalized to NSP)"],
    );
    for (&c, &d) in ratios.iter().zip(&curve) {
        t.row(&[format!("{:.0}", c * 100.0), format!("{d:.3}")]);
    }
    t.note("paper: the optimum sits at c% = 50%");
    vec![t]
}

/// BLESS-vs-GSLICE latency reduction for a symmetric R50 pair at low load
/// on a GPU with `num_sms` SMs. The closed-loop think time is the solo
/// latency *on that GPU instance* (a smaller instance serves requests more
/// slowly, so its clients naturally issue more slowly too).
pub fn sm_count_point(num_sms: u32, requests: usize) -> f64 {
    let spec = GpuSpec::a100_with_sms(num_sms);
    let solo = cache::profile(ModelKind::ResNet50, Phase::Inference, &spec).iso_latency
        [profiler::PARTITIONS - 1];
    let pattern = workloads::ArrivalPattern::ClosedLoop {
        think: solo,
        count: requests,
    };
    let mk = |q| {
        workloads::TenantSpec::new(
            cache::model(ModelKind::ResNet50, Phase::Inference),
            q,
            pattern.clone(),
        )
    };
    let ws = workloads::WorkloadSet::new(vec![mk(0.5), mk(0.5)], 93);
    let g = run_system(&System::Gslice, &ws, &spec, SimTime::from_secs(600), None);
    let b = run_system(
        &System::Bless(BlessParams::default()),
        &ws,
        &spec,
        SimTime::from_secs(600),
        None,
    );
    1.0 - b.mean_ms() / g.mean_ms()
}

/// Regenerates Fig. 19(c).
pub fn run_c() -> Vec<Table> {
    let mut t = Table::new(
        "Fig. 19(c): SM count vs BLESS latency reduction over GSLICE",
        &["SMs", "reduction %"],
    );
    for sms in [27, 54, 81, 108] {
        let red = sm_count_point(sms, 8);
        t.row(&[sms.to_string(), format!("{:.1}", red * 100.0)]);
    }
    t.note("paper: reduction falls from 54.4% to 40.2% as SMs grow (MIG-carved instances)");
    vec![t]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn larger_squads_reduce_latency() {
        // The paper additionally reports that very large squads cannot
        // serve an 8/9 quota precisely; our runtime's drain-on-arrival
        // neutralizes most of that effect (see EXPERIMENTS.md), so only
        // the latency direction is asserted here.
        let (lat_small, _) = squad_size_point(10, 6);
        let (lat_large, dev_large) = squad_size_point(200, 6);
        assert!(
            lat_large < lat_small,
            "large squads amortize switching: {lat_large:.2} vs {lat_small:.2}"
        );
        assert!(
            dev_large < 5.0,
            "quota deviation stays bounded: {dev_large:.2}"
        );
    }

    #[test]
    fn without_drain_large_squads_lose_quota_precision() {
        // The paper's Fig. 19(a) flexibility tradeoff: with squads running
        // to completion, a 200-kernel squad blocks the 8/9-quota tenant
        // far longer than a 20-kernel one.
        let small = squad_size_deviation_no_drain(20, 6);
        let large = squad_size_deviation_no_drain(200, 6);
        assert!(
            large > small,
            "no-drain deviation must grow with squad size: {large:.2} vs {small:.2}"
        );
    }

    #[test]
    fn split_ratio_favors_spatial_restriction() {
        let curve = split_ratio_curve(&[0.0, 0.5, 1.0], 30);
        // The paper's U-shape has its optimum at c=50%; in our substrate
        // the deltas are flatter and keep improving toward strict SP, but
        // the paper's default c=50% must still beat no restriction
        // (see EXPERIMENTS.md).
        assert!(curve[1] < curve[0], "{curve:?}");
        assert!(curve[2] <= curve[1] + 0.10, "{curve:?}");
    }

    #[test]
    fn fewer_sms_mean_bigger_gains() {
        let small = sm_count_point(27, 5);
        let large = sm_count_point(108, 5);
        assert!(
            small > large,
            "reduction at 27 SMs ({small:.3}) must exceed 108 SMs ({large:.3})"
        );
        assert!(large > 0.0, "BLESS still wins at full size: {large:.3}");
    }
}
