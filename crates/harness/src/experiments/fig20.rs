//! Fig. 20: ablation study.
//!
//! Paper: removing the multi-task scheduler (progress-based selection)
//! extends average latency by 16.5%; additionally removing the execution
//! configuration determiner adds another 7.6%.

use bless::BlessParams;
use dnn_models::{ModelKind, Phase};
use gpu_sim::GpuSpec;
use metrics::Table;
use sim_core::SimTime;
use workloads::{pair_workload, PaperWorkload};

use crate::cache;
use crate::runner::{run_system, System};

const MODELS: [ModelKind; 5] = [
    ModelKind::Vgg11,
    ModelKind::ResNet50,
    ModelKind::ResNet101,
    ModelKind::NasNet,
    ModelKind::Bert,
];

/// Mean latency over the 5 symmetric pairs (workload B, even quotas)
/// under the given parameter set.
pub fn variant_mean(params: BlessParams, models: &[ModelKind], requests: usize) -> f64 {
    let spec = GpuSpec::a100();
    let mut total = 0.0;
    for &m in models {
        let ws = pair_workload(
            cache::model(m, Phase::Inference),
            cache::model(m, Phase::Inference),
            (0.5, 0.5),
            PaperWorkload::MediumLoad,
            requests,
            SimTime::from_secs(20),
            101,
        );
        let r = run_system(
            &System::Bless(params.clone()),
            &ws,
            &spec,
            SimTime::from_secs(300),
            None,
        );
        total += r.mean_ms();
    }
    total / models.len() as f64
}

/// Deviation (ms) under an uneven (2/3, 1/3) quota pair for one variant —
/// the setting where the multi-task scheduler's compensation is load
/// bearing.
pub fn variant_deviation(params: BlessParams, requests: usize) -> f64 {
    let spec = GpuSpec::a100();
    let mut total = 0.0;
    let models = [ModelKind::ResNet50, ModelKind::Bert];
    for &m in &models {
        let ws = pair_workload(
            cache::model(m, Phase::Inference),
            cache::model(m, Phase::Inference),
            (2.0 / 3.0, 1.0 / 3.0),
            PaperWorkload::HighLoad,
            requests,
            SimTime::from_secs(20),
            103,
        );
        let r = run_system(
            &System::Bless(params.clone()),
            &ws,
            &spec,
            SimTime::from_secs(300),
            None,
        );
        total += r.deviation().as_millis_f64();
    }
    total / models.len() as f64
}

/// Regenerates Fig. 20.
pub fn run() -> Vec<Table> {
    let full = variant_mean(BlessParams::default(), &MODELS, 10);
    let no_mt = variant_mean(
        BlessParams {
            disable_multitask: true,
            ..BlessParams::default()
        },
        &MODELS,
        10,
    );
    let no_det = variant_mean(
        BlessParams {
            disable_multitask: true,
            disable_determiner: true,
            ..BlessParams::default()
        },
        &MODELS,
        10,
    );
    let mut t = Table::new(
        "Fig. 20: ablation (5 symmetric pairs, workload B, even quotas)",
        &["variant", "avg latency ms", "vs full %"],
    );
    t.row(&[
        "BLESS (full)".to_string(),
        format!("{full:.2}"),
        "-".to_string(),
    ]);
    t.row(&[
        "w/o multi-task scheduler".to_string(),
        format!("{no_mt:.2}"),
        format!("{:+.1}", (no_mt / full - 1.0) * 100.0),
    ]);
    t.row(&[
        "w/o scheduler + determiner".to_string(),
        format!("{no_det:.2}"),
        format!("{:+.1}", (no_det / full - 1.0) * 100.0),
    ]);
    t.note("paper: +16.5% without the multi-task scheduler, +7.6% more without the determiner");
    t.note("in our substrate the even-quota latency effect is small; the components carry the quota guarantee (below)");

    // The components' load-bearing role in this reproduction: the quota
    // guarantee under uneven quotas.
    let mut t2 = Table::new(
        "Fig. 20 (cont.): quota-guarantee ablation, uneven (2/3, 1/3) quotas, high load",
        &["variant", "avg deviation ms"],
    );
    let dev_full = variant_deviation(BlessParams::default(), 10);
    let dev_no_mt = variant_deviation(
        BlessParams {
            disable_multitask: true,
            ..BlessParams::default()
        },
        10,
    );
    let dev_no_det = variant_deviation(
        BlessParams {
            disable_multitask: true,
            disable_determiner: true,
            ..BlessParams::default()
        },
        10,
    );
    t2.row(&["BLESS (full)".to_string(), format!("{dev_full:.2}")]);
    t2.row(&[
        "w/o multi-task scheduler".to_string(),
        format!("{dev_no_mt:.2}"),
    ]);
    t2.row(&[
        "w/o scheduler + determiner".to_string(),
        format!("{dev_no_det:.2}"),
    ]);
    t2.note("round-robin selection ignores quotas: the 2/3 tenant misses its target");
    vec![t, t2]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn multitask_scheduler_carries_the_quota_guarantee() {
        let full = variant_deviation(BlessParams::default(), 8);
        let no_mt = variant_deviation(
            BlessParams {
                disable_multitask: true,
                ..BlessParams::default()
            },
            8,
        );
        assert!(
            no_mt > full + 0.5,
            "without progress-based selection the 2/3 tenant must miss its              target: full {full:.2} ms vs ablated {no_mt:.2} ms"
        );
    }
}
