//! ROADMAP item 2: the 10k-GPU fleet fast path.
//!
//! A diurnally-modulated (Twitter-like) inference fleet at cluster scale:
//! 10,000 GPUs, two tenants per device, ~1M requests total, served
//! through the sharded streaming runner ([`cluster::run_cluster_stream`])
//! so memory stays O(shard) instead of O(fleet). The experiment verifies
//! the three fleet-path claims end to end:
//!
//! 1. **Determinism** — the streamed [`cluster::FleetSummary`] (including
//!    the fleet-wide request-log digest) is byte-identical at worker
//!    counts 1/2/4, because per-GPU results fold into commutative
//!    accumulators and per-GPU digest slots merged in placement order.
//! 2. **Throughput** — `gpus_per_sec` at full scale, for comparison with
//!    the 64-GPU rate in `BENCH_cluster.json` (the bench gates the ratio
//!    at ≥ 0.8×; this experiment prints the same figure to stderr — the
//!    stdout tables stay byte-stable across runs by convention).
//! 3. **Contention-aware placement** — scoring the top-k feasible hosts
//!    by predicted bottleneck-channel overlap
//!    ([`cluster::PlacementPolicy::ContentionAware`]) strictly lowers the
//!    fleet's predicted bottleneck slowdown vs first-fit on this trace.
//!
//! The tenant cycle is built so placement actually has choices: all
//! models are pinned to an equal memory footprint (FFD then keeps index
//! order instead of grouping by kind) and quotas cycle 0.6/0.6/0.4/0.4,
//! so each group of four opens two half-full devices before the two
//! 0.4-quota stragglers pick their host.
//!
//! `BENCH_QUICK=1` shrinks the fleet to 64 GPUs for CI smoke runs; the
//! checks are identical, only the scale differs.

use std::time::Instant;

use bless::BlessParams;
use cluster::{
    place_with, predicted_fleet_slowdown, run_cluster_stream, ClusterOptions, FleetSummary,
    PlacementPolicy, PlacementRequest,
};
use dnn_models::{AppModel, ModelKind, Phase};
use gpu_sim::{ChannelParams, GpuSpec};
use metrics::Table;
use profiler::{AdmissionPolicy, ProfiledApp, SharedProfile};
use sim_core::{SimDuration, SimTime};
use workloads::{ArrivalPattern, TenantSpec, WorkloadSet};

/// The tenant cycle: (model, quota), repeated per pair of GPUs. The two
/// 0.6-quota heavies each open a device; the two 0.4-quota lights then
/// have a genuine host choice for the contention-aware policy to score.
pub const CYCLE: [(ModelKind, f64); 4] = [
    (ModelKind::Bert, 0.6),
    (ModelKind::Vgg11, 0.6),
    (ModelKind::ResNet101, 0.4),
    (ModelKind::ResNet50, 0.4),
];

/// Equalized resident footprint (MiB) so FFD's memory-descending sort
/// degenerates to index order and the cycle above reaches placement
/// interleaved rather than grouped by model kind.
pub const EQUAL_MEMORY_MIB: u64 = 1_200;

/// Simulated span of the diurnal trace.
pub const TRACE_SPAN: SimDuration = SimDuration::from_secs(60);

/// Full-scale fleet: 10k GPUs × 2 tenants × ~50 requests ≈ 1M requests.
pub const FULL_GPUS: usize = 10_000;
/// Mean requests per tenant over the trace span (diurnal swing ±60%).
pub const FULL_REQS_PER_TENANT: usize = 50;

/// CI smoke scale (`BENCH_QUICK=1`).
pub const QUICK_GPUS: usize = 64;
pub const QUICK_REQS_PER_TENANT: usize = 6;

fn quick() -> bool {
    std::env::var_os("BENCH_QUICK").is_some()
}

/// The experiment's GPU model: per-resource channels, so profiled demand
/// vectors carry real L2/DRAM/PCIe pressure for the contention scorer.
pub fn gpu_spec() -> GpuSpec {
    GpuSpec::a100_per_resource()
}

/// Builds the diurnal fleet workload: `2 * gpus` tenants cycling
/// [`CYCLE`], each issuing a Twitter-like (diurnally modulated Poisson)
/// open-loop stream averaging `reqs_per_tenant` requests over
/// [`TRACE_SPAN`]. Returns the workload plus per-tenant shared profiles
/// (one profile per model kind, interned and shared fleet-wide).
pub fn workload(gpus: usize, reqs_per_tenant: usize) -> (WorkloadSet, Vec<SharedProfile>) {
    let spec = gpu_spec();
    let models: Vec<AppModel> = CYCLE
        .iter()
        .map(|&(kind, _)| {
            let mut m = AppModel::build(kind, Phase::Inference);
            m.memory_mib = EQUAL_MEMORY_MIB;
            m
        })
        .collect();
    let kind_profiles: Vec<SharedProfile> = models
        .iter()
        .map(|m| ProfiledApp::profile_shared(m, &spec))
        .collect();
    let mean_interval =
        SimDuration::from_nanos(TRACE_SPAN.as_nanos() / reqs_per_tenant.max(1) as u64);
    let horizon = SimTime::ZERO + TRACE_SPAN;
    let n = 2 * gpus;
    let tenants: Vec<TenantSpec> = (0..n)
        .map(|i| {
            let (_, quota) = CYCLE[i % CYCLE.len()];
            TenantSpec::new(
                models[i % CYCLE.len()].clone(),
                quota,
                ArrivalPattern::TwitterLike {
                    mean_interval,
                    cycle: SimDuration::from_secs(15),
                    horizon,
                },
            )
        })
        .collect();
    let profiles: Vec<SharedProfile> = (0..n)
        .map(|i| SharedProfile::clone(&kind_profiles[i % CYCLE.len()]))
        .collect();
    (WorkloadSet { tenants, seed: 77 }, profiles)
}

/// Placement requests mirroring [`workload`]'s tenants, for policy
/// comparisons that do not need to run the fleet.
pub fn placement_requests(gpus: usize) -> Vec<PlacementRequest> {
    let (_, profiles) = workload(gpus, 1);
    profiles
        .into_iter()
        .enumerate()
        .map(|(i, profile)| PlacementRequest {
            profile,
            quota: CYCLE[i % CYCLE.len()].1,
        })
        .collect()
}

/// Predicted fleet bottleneck slowdown under both placement policies on
/// the same request trace: `(first_fit, contention_aware)`.
pub fn policy_slowdowns(gpus: usize, fleet_size: usize) -> (f64, f64) {
    let requests = placement_requests(gpus);
    let spec = gpu_spec();
    let params = ChannelParams::a100();
    let admission = AdmissionPolicy::default();
    let ff = place_with(
        &requests,
        fleet_size,
        spec.memory_mib,
        &admission,
        &PlacementPolicy::FirstFit,
    )
    .map(|p| predicted_fleet_slowdown(&requests, &p, &params));
    let ca = place_with(
        &requests,
        fleet_size,
        spec.memory_mib,
        &admission,
        &PlacementPolicy::contention_aware(),
    )
    .map(|p| predicted_fleet_slowdown(&requests, &p, &params));
    match (ff, ca) {
        (Ok(f), Ok(c)) => (f, c),
        (f, c) => panic!("fleet10k placement failed: ff={f:?} ca={c:?}"),
    }
}

/// One streamed fleet run at the given worker count; returns the summary
/// and the wall-clock seconds it took.
pub fn streamed_run(
    ws: &WorkloadSet,
    profiles: &[SharedProfile],
    fleet_size: usize,
    workers: usize,
) -> (FleetSummary, f64) {
    let spec = gpu_spec();
    let t0 = Instant::now();
    let summary = run_cluster_stream(
        ws,
        profiles.to_vec(),
        fleet_size,
        &spec,
        &BlessParams::default(),
        SimTime::ZERO + TRACE_SPAN + TRACE_SPAN,
        &ClusterOptions {
            parallel: workers > 1,
            workers: Some(workers),
            ..ClusterOptions::default()
        },
    )
    .unwrap_or_else(|e| panic!("fleet10k run failed: {e}"));
    (summary, t0.elapsed().as_secs_f64())
}

/// Regenerates the fleet10k tables: streamed determinism across worker
/// counts, throughput, and the placement-policy comparison.
pub fn run() -> Vec<Table> {
    let (gpus, reqs) = if quick() {
        (QUICK_GPUS, QUICK_REQS_PER_TENANT)
    } else {
        (FULL_GPUS, FULL_REQS_PER_TENANT)
    };
    let (ws, profiles) = workload(gpus, reqs);

    let mut runs = Table::new(
        format!(
            "fleet10k: streamed {gpus}-GPU diurnal fleet ({} tenants, ~{} requests)",
            2 * gpus,
            2 * gpus * reqs
        ),
        &["workers", "gpus", "arrived", "completed", "digest"],
    );
    let mut first: Option<FleetSummary> = None;
    for workers in [1usize, 2, 4] {
        let (summary, secs) = streamed_run(&ws, &profiles, gpus, workers);
        // Wall-clock goes to stderr so stdout stays byte-stable across
        // runs (the md5 convention); BENCH_cluster.json records timing.
        eprintln!(
            "[fleet10k] workers={workers}: {secs:.2}s wall, {:.1} gpus/s",
            summary.completed_gpus as f64 / secs
        );
        runs.row(&[
            workers.to_string(),
            summary.completed_gpus.to_string(),
            summary.arrived_requests.to_string(),
            summary.completed_requests.to_string(),
            format!("{:#018x}", summary.digest),
        ]);
        match &first {
            None => first = Some(summary),
            Some(base) => assert_eq!(
                base, &summary,
                "streamed fleet summary must be byte-identical at any worker count"
            ),
        }
    }
    runs.note("summaries (counters + fleet digest) byte-identical across worker counts");
    runs.note("O(shard) memory: per-GPU results fold into streaming accumulators");

    let (ff, ca) = policy_slowdowns(gpus, gpus);
    let mut policy = Table::new(
        "fleet10k: predicted bottleneck slowdown by placement policy",
        &["policy", "predicted slowdown", "vs first-fit"],
    );
    policy.row(&["first-fit".into(), format!("{ff:.4}"), "—".into()]);
    policy.row(&[
        "contention-aware".into(),
        format!("{ca:.4}"),
        format!("{:+.2}%", (ca / ff - 1.0) * 100.0),
    ]);
    assert!(
        ca < ff,
        "contention-aware placement must strictly lower predicted fleet slowdown (ff={ff:.4}, ca={ca:.4})"
    );
    policy.note("scored over top-k feasible hosts by bottleneck-channel overlap (§ Zahaf et al.)");
    vec![runs, policy]
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Debug-build smoke: tiny fleet, but the full pipeline — streamed
    /// determinism across worker counts and the contention-aware win.
    #[test]
    fn quick_scale_fleet_is_deterministic_and_contention_aware_wins() {
        let (ws, profiles) = workload(16, 2);
        let (a, _) = streamed_run(&ws, &profiles, 16, 1);
        let (b, _) = streamed_run(&ws, &profiles, 16, 4);
        assert_eq!(a, b);
        assert!(a.arrived_requests > 0);
        let (ff, ca) = policy_slowdowns(16, 16);
        assert!(ca < ff, "ff={ff:.4} ca={ca:.4}");
    }
}
