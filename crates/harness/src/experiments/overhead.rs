//! §6.9: scheduling overheads.
//!
//! The simulator charges the paper's measured host costs explicitly; this
//! experiment reports those constants plus measured squad statistics from
//! a live BLESS run (squads launched, squad durations, and the break-even
//! kernel duration above which the host never starves the GPU).

use bless::{BlessDriver, BlessParams, DeployedApp};
use dnn_models::{ModelKind, Phase};
use gpu_sim::{GpuSpec, HostCosts};
use metrics::Table;
use sim_core::SimTime;
use workloads::{pair_workload, PaperWorkload};

use crate::cache;
use crate::runner::run_custom;

/// Regenerates the §6.9 numbers.
pub fn run() -> Vec<Table> {
    let costs = HostCosts::paper();
    let mut t = Table::new(
        "§6.9: host-side cost model (charged by the simulator)",
        &["operation", "cost"],
    );
    t.row(&["kernel launch".into(), format!("{}", costs.kernel_launch)]);
    t.row(&["squad switch sync".into(), format!("{}", costs.squad_sync)]);
    t.row(&[
        "GPU context switch vacuum".into(),
        format!("{}", costs.context_switch),
    ]);
    t.row(&[
        "multi-task scheduling / kernel".into(),
        format!("{}", costs.sched_per_kernel),
    ]);
    t.row(&[
        "config-space search / kernel".into(),
        format!("{}", costs.config_search_per_kernel),
    ]);
    t.row(&[
        "squad generation / kernel".into(),
        format!("{}", costs.squad_gen_per_kernel),
    ]);
    t.row(&["MPS context memory".into(), "230 MiB".into()]);
    let per_kernel =
        costs.sched_per_kernel + costs.config_search_per_kernel + costs.squad_gen_per_kernel;
    t.note(format!(
        "break-even: kernels longer than {per_kernel} never starve the GPU (paper: 6.7 µs)"
    ));

    // Live squad statistics from a BLESS run.
    let spec = GpuSpec::a100();
    let apps = vec![
        DeployedApp::new(
            cache::profile(ModelKind::NasNet, Phase::Inference, &spec),
            0.5,
            None,
        ),
        DeployedApp::new(
            cache::profile(ModelKind::Bert, Phase::Inference, &spec),
            0.5,
            None,
        ),
    ];
    let mut driver = BlessDriver::new(apps, BlessParams::default());
    driver.record_squads = true;
    let ws = pair_workload(
        cache::model(ModelKind::NasNet, Phase::Inference),
        cache::model(ModelKind::Bert, Phase::Inference),
        (0.5, 0.5),
        PaperWorkload::MediumLoad,
        8,
        SimTime::from_secs(10),
        111,
    );
    let (driver, _, _) = run_custom(driver, &ws, &spec, SimTime::from_secs(120));
    let durs: Vec<f64> = driver
        .squad_log
        .iter()
        .map(|s| s.finished_at.duration_since(s.launched_at).as_millis_f64())
        .collect();
    let mut t2 = Table::new(
        "§6.9: measured squad statistics (NAS+BERT, workload B)",
        &["metric", "value"],
    );
    t2.row(&["squads launched".into(), driver.squads_launched.to_string()]);
    t2.row(&[
        "spatially partitioned squads".into(),
        driver.sp_squads.to_string(),
    ]);
    if !durs.is_empty() {
        let mean = durs.iter().sum::<f64>() / durs.len() as f64;
        let min = durs.iter().cloned().fold(f64::MAX, f64::min);
        let max = durs.iter().cloned().fold(0.0, f64::max);
        t2.row(&["mean squad duration ms".into(), format!("{mean:.2}")]);
        t2.row(&[
            "min/max squad duration ms".into(),
            format!("{min:.2} / {max:.2}"),
        ]);
    }
    t2.note("paper: squad durations range from 0.7 ms to 10 ms across applications (§6.7)");
    vec![t, t2]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn squad_durations_are_in_paper_band() {
        let tables = run();
        let t2 = &tables[1];
        // Mean squad duration row exists and is within the paper's
        // 0.7-10 ms envelope (with slack for the boundary squads).
        let mut found = false;
        for r in 0..t2.row_count() {
            if t2.cell(r, 0) == "mean squad duration ms" {
                let v: f64 = t2.cell(r, 1).parse().unwrap();
                assert!((0.2..=12.0).contains(&v), "mean squad duration {v}");
                found = true;
            }
        }
        assert!(found, "squad statistics missing");
    }
}
