//! Fig. 12: latency charts — per-app average latencies of pair
//! deployments across the seven Table 2 quota assignments.
//!
//! The paper's headline: under BLESS every point lies inside the ISO
//! region (both apps at or below their isolated latencies) across all
//! quota assignments, and lower load moves points closer to the origin.

use bless::BlessParams;
use dnn_models::{ModelKind, Phase};
use gpu_sim::GpuSpec;
use metrics::Table;
use sim_core::SimTime;
use workloads::{pair_workload, PaperWorkload, TWO_MODEL_QUOTAS};

use crate::cache;
use crate::runner::{run_system, System};

/// The four panels of Fig. 12: (a)/(b) a symmetric pair under medium and
/// low load, (c) a homogeneous-kernel pair, (d) a heterogeneous pair.
const PANELS: [(&str, ModelKind, ModelKind, PaperWorkload); 4] = [
    (
        "(a) VGG+R50, medium load",
        ModelKind::Vgg11,
        ModelKind::ResNet50,
        PaperWorkload::MediumLoad,
    ),
    (
        "(b) VGG+R50, low load",
        ModelKind::Vgg11,
        ModelKind::ResNet50,
        PaperWorkload::LowLoad,
    ),
    (
        "(c) R50+R101 (homogeneous kernels), low load",
        ModelKind::ResNet50,
        ModelKind::ResNet101,
        PaperWorkload::LowLoad,
    ),
    (
        "(d) NAS+BERT (heterogeneous kernels), low load",
        ModelKind::NasNet,
        ModelKind::Bert,
        PaperWorkload::LowLoad,
    ),
];

/// Runs one panel; returns (quota label, lat0, lat1, iso0, iso1) rows.
pub fn panel(
    a: ModelKind,
    b: ModelKind,
    load: PaperWorkload,
    requests: usize,
) -> Vec<(String, f64, f64, f64, f64)> {
    let spec = GpuSpec::a100();
    let mut rows = Vec::new();
    for (qa, qb) in TWO_MODEL_QUOTAS {
        let ws = pair_workload(
            cache::model(a, Phase::Inference),
            cache::model(b, Phase::Inference),
            (qa, qb),
            load,
            requests,
            SimTime::from_secs(10),
            7,
        );
        let r = run_system(
            &System::Bless(BlessParams::default()),
            &ws,
            &spec,
            SimTime::from_secs(120),
            None,
        );
        let means = r.app_means();
        rows.push((
            format!("{:.2}/{:.2}", qa, qb),
            means[0].as_millis_f64(),
            means[1].as_millis_f64(),
            r.iso_targets[0].as_millis_f64(),
            r.iso_targets[1].as_millis_f64(),
        ));
    }
    rows
}

/// Regenerates Fig. 12.
pub fn run() -> Vec<Table> {
    let mut out = Vec::new();
    for (label, a, b, load) in PANELS {
        let mut t = Table::new(
            format!("Fig. 12 {label} — BLESS latencies across quota assignments"),
            &[
                "quota a/b",
                "app A ms",
                "app B ms",
                "ISO A ms",
                "ISO B ms",
                "inside ISO region",
            ],
        );
        for (q, la, lb, ia, ib) in panel(a, b, load, 12) {
            let inside = la <= ia * 1.02 && lb <= ib * 1.02;
            t.row(&[
                q,
                format!("{la:.2}"),
                format!("{lb:.2}"),
                format!("{ia:.2}"),
                format!("{ib:.2}"),
                inside.to_string(),
            ]);
        }
        t.note("paper: all BLESS points lie inside the mint-green ISO region");
        out.push(t);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn low_load_points_stay_inside_iso_region() {
        // Panel (b): low load leaves bubbles, so both apps must be at or
        // below their ISO latencies for every quota assignment.
        let rows = panel(
            ModelKind::Vgg11,
            ModelKind::ResNet50,
            PaperWorkload::LowLoad,
            8,
        );
        assert_eq!(rows.len(), 7);
        for (q, la, lb, ia, ib) in rows {
            assert!(la <= ia * 1.05, "{q}: app A {la:.2} vs ISO {ia:.2}");
            assert!(lb <= ib * 1.05, "{q}: app B {lb:.2} vs ISO {ib:.2}");
        }
    }

    #[test]
    fn lower_load_is_closer_to_origin() {
        let med = panel(
            ModelKind::Vgg11,
            ModelKind::ResNet50,
            PaperWorkload::MediumLoad,
            8,
        );
        let low = panel(
            ModelKind::Vgg11,
            ModelKind::ResNet50,
            PaperWorkload::LowLoad,
            8,
        );
        // Compare the even-quota point: lower load must give lower
        // latencies for both apps.
        let m = &med[3];
        let l = &low[3];
        assert!(
            l.1 <= m.1 * 1.02 && l.2 <= m.2 * 1.02,
            "low {l:?} vs med {m:?}"
        );
    }
}
