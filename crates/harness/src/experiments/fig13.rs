//! Fig. 13: average latency of two symmetric applications (same model,
//! even quotas) across workloads A/B/C, for every system — inference and
//! training.
//!
//! Paper: BLESS reduces inference latency on average by 37.3% vs TEMPORAL,
//! 34.2% vs MIG, 21.1% vs GSLICE, 16.5% vs UNBOUND and 13.5% vs REEF+.
//! For training: 26.5% vs TEMPORAL, 7.5% vs MIG, 12.5% vs UNBOUND, 9.9%
//! vs ZICO.

use dnn_models::{ModelKind, Phase};
use gpu_sim::GpuSpec;
use metrics::Table;
use sim_core::SimTime;
use workloads::{pair_workload, PaperWorkload};

use crate::cache;
use crate::runner::{run_system, System};

const INFER_MODELS: [ModelKind; 5] = [
    ModelKind::Vgg11,
    ModelKind::ResNet50,
    ModelKind::ResNet101,
    ModelKind::NasNet,
    ModelKind::Bert,
];

/// Training uses the three faster models (NasNet/BERT training iterations
/// are 158/186 ms; three pairs keep the suite responsive while preserving
/// the comparison).
const TRAIN_MODELS: [ModelKind; 3] = [ModelKind::Vgg11, ModelKind::ResNet50, ModelKind::ResNet101];

/// Mean latency (ms) of a symmetric pair of `model` under `load` for each
/// system in `systems`, averaged over the model set.
pub fn sweep(
    models: &[ModelKind],
    phase: Phase,
    load: PaperWorkload,
    systems: &[System],
    requests: usize,
) -> Vec<(String, f64)> {
    let spec = GpuSpec::a100();
    let mut out = Vec::new();
    for sys in systems {
        let mut total = 0.0;
        for &m in models {
            let ws = pair_workload(
                cache::model(m, phase),
                cache::model(m, phase),
                (0.5, 0.5),
                load,
                requests,
                SimTime::from_secs(20),
                11,
            );
            let r = run_system(sys, &ws, &spec, SimTime::from_secs(300), None);
            total += r.mean_ms();
        }
        out.push((sys.name().to_string(), total / models.len() as f64));
    }
    out
}

/// Builds a "system / latency / BLESS reduction" table from sweep rows
/// (the last row must be BLESS).
fn reduction_table(title: String, rows: &[(String, f64)], paper_note: &str) -> Table {
    let bless = crate::require(rows.last(), "BLESS last").1;
    let mut t = Table::new(title, &["system", "avg latency ms", "BLESS reduction %"]);
    for (name, ms) in rows {
        let red = if name == "BLESS" || *ms <= 0.0 {
            "-".to_string()
        } else {
            format!("{:.1}", (1.0 - bless / ms) * 100.0)
        };
        t.row(&[name.clone(), format!("{ms:.2}"), red]);
    }
    t.note(paper_note);
    t
}

/// Regenerates Fig. 13.
pub fn run() -> Vec<Table> {
    let mut out = Vec::new();

    // Inference: workloads A, B, C.
    for (wl, label) in [
        (PaperWorkload::HighLoad, "A (high load)"),
        (PaperWorkload::MediumLoad, "B (medium load)"),
        (PaperWorkload::LowLoad, "C (low load)"),
    ] {
        let mut systems = vec![System::Iso];
        systems.extend(System::inference_set());
        let rows = sweep(&INFER_MODELS, Phase::Inference, wl, &systems, 12);
        out.push(reduction_table(
            format!("Fig. 13 inference, workload {label}: mean latency over 5 symmetric pairs"),
            &rows,
            "paper averages: -37.3% TEMPORAL, -34.2% MIG, -21.1% GSLICE, -16.5% UNBOUND, -13.5% REEF+",
        ));
    }

    // Training: even sharing of two identical training jobs. Training
    // iterations run back-to-back (continuous epochs), unlike the
    // closed-loop inference clients.
    let mut systems = System::training_set();
    systems.insert(0, System::Iso);
    let rows = sweep(
        &TRAIN_MODELS,
        Phase::Training,
        PaperWorkload::BiasedDense,
        &systems,
        6,
    );
    out.push(reduction_table(
        "Fig. 13 training: mean epoch-iteration latency over symmetric pairs".to_string(),
        &rows,
        "paper averages: -26.5% TEMPORAL, -7.5% MIG, -12.5% UNBOUND, -9.9% ZICO",
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use bless::BlessParams;

    #[test]
    fn bless_wins_low_load_inference() {
        let systems = vec![
            System::Temporal,
            System::Gslice,
            System::Unbound,
            System::Bless(BlessParams::default()),
        ];
        // One representative model keeps the test fast.
        let rows = sweep(
            &[ModelKind::ResNet50],
            Phase::Inference,
            PaperWorkload::LowLoad,
            &systems,
            8,
        );
        let get = |n: &str| rows.iter().find(|(name, _)| name == n).unwrap().1;
        let bless = get("BLESS");
        assert!(bless < get("TEMPORAL"), "vs TEMPORAL");
        assert!(bless < get("GSLICE"), "vs GSLICE");
        assert!(bless < get("UNBOUND"), "vs UNBOUND");
        // TEMPORAL is the worst baseline, as in the paper.
        assert!(get("TEMPORAL") > get("GSLICE"));
    }

    #[test]
    fn bless_beats_zico_on_training() {
        // Training iterations run continuously; under full overlap
        // ZICO's unbounded (serialized) sharing loses to BLESS's
        // optimized spatial squads (paper: -9.9%).
        let systems = vec![System::Zico, System::Bless(BlessParams::default())];
        let rows = sweep(
            &[ModelKind::Vgg11],
            Phase::Training,
            PaperWorkload::BiasedDense,
            &systems,
            4,
        );
        assert!(
            rows[1].1 < rows[0].1,
            "BLESS {} vs ZICO {}",
            rows[1].1,
            rows[0].1
        );
    }
}
