//! §4.2.2: multi-GPU fleet deployment.
//!
//! A central controller places eight tenants across a fleet of A100s and
//! a replicated BLESS runtime serves each GPU, simulated on a worker
//! pool. Under `--trace` every GPU's stream is exported as its own
//! gpu-id-tagged Perfetto file and replayed through the
//! [`metrics::TraceValidator`], extending the trace-driven invariant
//! checks from single-GPU runs to the whole cluster.

use bless::BlessParams;
use cluster::{run_cluster_opts, ClusterOptions, ClusterRun};
use dnn_models::{ModelKind, Phase};
use gpu_sim::GpuSpec;
use metrics::Table;
use profiler::SharedProfile;
use sim_core::{SimDuration, SimTime};
use workloads::{ArrivalPattern, TenantSpec, WorkloadSet};

use crate::{cache, tracectl};

const TENANTS: [(ModelKind, f64); 8] = [
    (ModelKind::Vgg11, 0.5),
    (ModelKind::ResNet50, 0.5),
    (ModelKind::ResNet101, 0.6),
    (ModelKind::Bert, 0.4),
    (ModelKind::NasNet, 0.7),
    (ModelKind::ResNet50, 0.3),
    (ModelKind::Bert, 0.5),
    (ModelKind::Vgg11, 0.5),
];

/// Runs the eight-tenant fleet; trace capture follows the global
/// `--trace` switch.
pub fn fleet_run(fleet_size: usize, capture: bool) -> (GpuSpec, ClusterRun) {
    let spec = GpuSpec::a100();
    let tenants: Vec<TenantSpec> = TENANTS
        .iter()
        .map(|&(k, q)| {
            TenantSpec::new(
                cache::model(k, Phase::Inference),
                q,
                ArrivalPattern::ClosedLoop {
                    think: SimDuration::from_millis(5),
                    count: 6,
                },
            )
        })
        .collect();
    let profiles: Vec<SharedProfile> = TENANTS
        .iter()
        .map(|&(k, _)| cache::profile(k, Phase::Inference, &spec))
        .collect();
    let ws = WorkloadSet { tenants, seed: 23 };
    let run = run_cluster_opts(
        &ws,
        profiles,
        fleet_size,
        &spec,
        &BlessParams::default(),
        SimTime::from_secs(120),
        &ClusterOptions {
            capture_trace: capture,
            ..ClusterOptions::default()
        },
    )
    .unwrap_or_else(|e| panic!("fleet placement failed: {e}"));
    (spec, run)
}

/// Regenerates the fleet-deployment table; under `--trace`, also exports
/// and validates one trace per GPU.
pub fn run() -> Vec<Table> {
    let capture = tracectl::enabled();
    let (spec, run) = fleet_run(5, capture);

    if capture {
        for g in &run.gpus {
            // One Perfetto file per device, tagged by gpu id; validation
            // replays each GPU's stream against the structural invariants.
            tracectl::export_and_validate(&format!("gpu{}", g.gpu), spec.num_sms, None, &g.trace);
        }
    }

    let mut placement = Table::new(
        "§4.2.2: placement (8 tenants, fleet of 5 A100s)",
        &["tenant", "model", "quota", "gpu", "mean ms"],
    );
    for (t, &(k, q)) in TENANTS.iter().enumerate() {
        placement.row(&[
            t.to_string(),
            k.full_name().to_string(),
            format!("{:.0}%", q * 100.0),
            run.placement.assignments[t].to_string(),
            format!("{:.2}", run.tenant_mean_ms(t).unwrap_or(f64::NAN)),
        ]);
    }

    let mut per_gpu = Table::new(
        "§4.2.2: per-GPU runtimes (replicated BLESS, parallel simulation)",
        &["gpu", "tenants", "outcome", "utilization"],
    );
    for g in &run.gpus {
        per_gpu.row(&[
            g.gpu.to_string(),
            format!("{:?}", g.tenants),
            format!("{:?}", g.outcome),
            format!("{:.1}%", g.utilization * 100.0),
        ]);
    }
    per_gpu.note("GPUs are simulated on a worker pool; output is byte-identical to sequential");
    if capture {
        per_gpu.note("per-GPU traces exported (gpu-id tagged) and validator-clean");
    }
    vec![placement, per_gpu]
}

#[cfg(test)]
mod tests {
    use super::*;
    use metrics::{TraceValidator, ValidatorConfig};

    #[test]
    fn fleet_completes_and_every_tenant_is_served() {
        let (_, run) = fleet_run(5, false);
        assert!(run.all_completed());
        for t in 0..TENANTS.len() {
            let ms = run.tenant_mean_ms(t).expect("tenant served");
            assert!(ms.is_finite() && ms > 0.0, "tenant {t}: {ms}");
        }
    }

    #[test]
    fn per_gpu_traces_are_validator_clean() {
        let (spec, run) = fleet_run(5, true);
        for g in &run.gpus {
            assert!(!g.trace.is_empty(), "gpu {} captured nothing", g.gpu);
            let report = TraceValidator::new(ValidatorConfig {
                num_sms: spec.num_sms,
                iso_targets: None,
                fairness_spread: None,
                max_recovery_ns: None,
            })
            .validate(&g.trace);
            assert!(report.is_clean(), "gpu {}: {report:?}", g.gpu);
        }
    }
}
