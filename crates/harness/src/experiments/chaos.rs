//! Chaos experiment: seeded GPU kill/hang matrix over 4–64 GPU fleets
//! (see DESIGN.md §5i "Fleet-level fault tolerance").
//!
//! Each scenario places an open-loop tenant fleet, injects a seeded
//! schedule of permanent device failures and transient hangs via
//! [`cluster::run_chaos`], and machine-checks the recovery invariants:
//!
//! * the fleet survives — every surviving device drains to completion;
//! * **no request lost across migration**: the only unserved requests
//!   belong to tenants the run explicitly reports as stranded, with a
//!   typed [`PlacementError`] reason;
//! * bounded time-to-recover: every evacuation is matched by a
//!   restoration within `MAX_RECOVERY`, enforced twice — directly on
//!   the [`cluster::MigrationRecord`]s and independently by the
//!   [`metrics::TraceValidator`] replaying the synthesized fleet trace;
//! * per-tenant FIFO end-to-end: completions stay in request order even
//!   when a tenant's queue is checkpointed and replayed elsewhere.
//!
//! The whole schedule is a pure function of `(FAULT_SEED, FaultSpec)`,
//! so the matrix — including which tenants migrate, strand, or ride out
//! a hang — replays byte-identically at any worker count.

use bless::BlessParams;
use cluster::{run_chaos, ChaosOptions, ChaosRun, PlacementError};
use dnn_models::{ModelKind, Phase};
use gpu_sim::{GpuSpec, RunOutcome};
use metrics::{Table, TraceValidator, ValidatorConfig};
use profiler::SharedProfile;
use sim_core::{FaultSpec, SimDuration, SimTime};
use workloads::{ArrivalPattern, TenantSpec, WorkloadSet};

use crate::{cache, tracectl};

/// Seed for the kill/hang schedule (same seed ⇒ same chaos every run).
const FAULT_SEED: u64 = 42;

/// Workload seed, matching the fleet experiment.
const WORKLOAD_SEED: u64 = 23;

/// Per-tenant SM quota. With 2·N−1 tenants on an N-GPU fleet the
/// first-fit placer packs two per device and leaves the last GPU with a
/// single tenant — the only headroom a failure's evacuees can migrate
/// into, so every kill scenario exercises both the re-place and the
/// typed-strand path.
const QUOTA: f64 = 0.45;

/// Ceiling on any single tenant's time-to-recover. Transient hangs
/// dominate: 3 ms of hang plus the modeled device restart; permanent
/// failures only pay the 250 µs migration cost.
const MAX_RECOVERY: SimDuration = SimDuration::from_millis(5);

/// One row of the chaos matrix.
struct Scenario {
    name: &'static str,
    fleet: usize,
    faults: FaultSpec,
}

fn fault_spec(fails: u32, hangs: u32) -> FaultSpec {
    FaultSpec {
        // `num_gpus: 0` sizes the fault domain to the placement.
        gpu_fail_count: fails,
        gpu_fail_window: (SimTime::from_millis(5), SimTime::from_millis(25)),
        gpu_hang_count: hangs,
        gpu_hang_window: (SimTime::from_millis(5), SimTime::from_millis(25)),
        gpu_hang_len: SimDuration::from_millis(3),
        ..FaultSpec::default()
    }
}

/// The kill/hang matrix, smallest fleet first.
fn scenarios() -> Vec<Scenario> {
    vec![
        Scenario {
            name: "control-4",
            fleet: 4,
            faults: FaultSpec::default(),
        },
        Scenario {
            name: "kill-4",
            fleet: 4,
            faults: fault_spec(1, 0),
        },
        Scenario {
            name: "hang-4",
            fleet: 4,
            faults: fault_spec(0, 2),
        },
        Scenario {
            name: "mixed-16",
            fleet: 16,
            faults: fault_spec(2, 2),
        },
        Scenario {
            name: "mixed-64",
            fleet: 64,
            faults: fault_spec(4, 4),
        },
    ]
}

/// Open-loop tenant fleet: 2·N−1 VGG-11 inference tenants with staggered
/// periodic arrivals (closed-loop clients cannot be checkpointed across
/// a migration, so chaos runs are open-loop by construction).
fn workload(fleet: usize) -> WorkloadSet {
    let tenants = (0..2 * fleet - 1)
        .map(|i| {
            TenantSpec::new(
                cache::model(ModelKind::Vgg11, Phase::Inference),
                QUOTA,
                ArrivalPattern::Periodic {
                    period: SimDuration::from_millis(5),
                    count: 12,
                    offset: SimDuration::from_millis((i % 5) as u64),
                },
            )
        })
        .collect();
    WorkloadSet {
        tenants,
        seed: WORKLOAD_SEED,
    }
}

fn run_scenario(sc: &Scenario, spec: &GpuSpec) -> ChaosRun {
    let ws = workload(sc.fleet);
    let profiles: Vec<SharedProfile> = (0..ws.len())
        .map(|_| cache::profile(ModelKind::Vgg11, Phase::Inference, spec))
        .collect();
    let run = run_chaos(
        &ws,
        profiles,
        sc.fleet,
        spec,
        &BlessParams::default(),
        SimTime::from_secs(120),
        FAULT_SEED,
        &sc.faults,
        &ChaosOptions {
            capture_trace: true,
            ..ChaosOptions::default()
        },
    )
    .unwrap_or_else(|e| panic!("{}: placement failed: {e}", sc.name));

    // Invariant: every surviving device drains to completion.
    for (g, o) in run.outcomes.iter().enumerate() {
        if let Some(o) = o {
            assert_eq!(*o, RunOutcome::Completed, "{}: gpu {g} wedged", sc.name);
        }
    }
    // Invariant: no request lost across migration — the only unserved
    // requests belong to explicitly reported casualties, each with a
    // typed reason.
    let stranded_losses: usize = run.stranded.iter().map(|s| s.lost_requests).sum();
    assert_eq!(
        run.lost_requests(),
        stranded_losses,
        "{}: requests lost outside the stranded report",
        sc.name
    );
    for s in &run.stranded {
        assert!(
            matches!(s.reason, PlacementError::NoCapacity { .. }),
            "{}: tenant {} stranded with untyped reason {}",
            sc.name,
            s.tenant,
            s.reason
        );
    }
    // Invariant: bounded time-to-recover, checked on the records…
    for m in &run.migrations {
        assert!(
            m.recovery() <= MAX_RECOVERY,
            "{}: tenant {} recovery {:?} exceeds {:?}",
            sc.name,
            m.tenant,
            m.recovery(),
            MAX_RECOVERY
        );
    }
    // …and independently by the trace validator (which also enforces
    // evacuation closure and end-to-end per-tenant FIFO). The Perfetto
    // file is written *before* validation so a CI failure still leaves
    // the artifact behind.
    assert!(!run.trace.is_empty(), "{}: fleet trace empty", sc.name);
    let path = tracectl::write_perfetto(sc.name, &run.trace);
    let report = TraceValidator::new(ValidatorConfig {
        num_sms: spec.num_sms,
        iso_targets: None,
        fairness_spread: None,
        max_recovery_ns: Some(MAX_RECOVERY.as_nanos()),
    })
    .validate(&run.trace);
    if !report.is_clean() {
        if let Some(p) = &path {
            eprintln!("chaos trace with violations saved to {}", p.display());
        }
        report.assert_clean();
    }
    run
}

/// Regenerates the chaos matrix table.
pub fn run() -> Vec<Table> {
    let spec = GpuSpec::a100();
    let mut t = Table::new(
        "Chaos: seeded GPU kill/hang matrix over 4-64 GPU fleets (seed 42)",
        &[
            "scenario",
            "fleet",
            "tenants",
            "kills",
            "hangs",
            "migrated",
            "stranded",
            "skipped",
            "lost",
            "max rec (us)",
            "mean ms",
        ],
    );
    for sc in scenarios() {
        let r = run_scenario(&sc, &spec);
        if sc.name == "control-4" {
            // The fault-free control must be an untouched fleet run.
            assert!(r.migrations.is_empty() && r.stranded.is_empty() && r.skipped.is_empty());
            assert!(r.all_served(), "control lost requests");
        }
        let max_rec_us = r
            .migrations
            .iter()
            .map(|m| m.recovery().as_nanos())
            .max()
            .map_or(0.0, |ns| ns as f64 / 1_000.0);
        let mean_ms = r
            .log
            .mean_of_app_means()
            .map_or(f64::NAN, |d| d.as_millis_f64());
        t.row(&[
            sc.name.to_string(),
            sc.fleet.to_string(),
            (2 * sc.fleet - 1).to_string(),
            sc.faults.gpu_fail_count.to_string(),
            sc.faults.gpu_hang_count.to_string(),
            r.migrations.len().to_string(),
            r.stranded.len().to_string(),
            r.skipped.len().to_string(),
            r.lost_requests().to_string(),
            format!("{max_rec_us:.1}"),
            format!("{mean_ms:.2}"),
        ]);
    }
    t.note(format!(
        "invariants checked per scenario: survivors drain clean, no request lost \
         outside the typed stranded report, recovery <= {MAX_RECOVERY:?}, \
         trace validator clean (evacuation closure, FIFO, recovery bound)"
    ));
    vec![t]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chaos_matrix_upholds_recovery_invariants() {
        // `run` asserts every invariant internally; also pin the shape
        // and that the matrix actually exercises both recovery paths.
        let tables = run();
        assert_eq!(tables.len(), 1);
        let t = &tables[0];
        assert_eq!(t.row_count(), scenarios().len());
        let col = |row: usize, col: usize| -> u64 { t.cell(row, col).parse().unwrap() };
        // Control row is all-quiet.
        assert_eq!(t.cell(0, 0), "control-4");
        assert_eq!(col(0, 5) + col(0, 6) + col(0, 7) + col(0, 8), 0);
        // Across the fault rows, tenants both migrate successfully and
        // strand with a typed reason — both recovery paths are live.
        let migrated: u64 = (1..t.row_count()).map(|r| col(r, 5)).sum();
        let stranded: u64 = (1..t.row_count()).map(|r| col(r, 6)).sum();
        assert!(migrated > 0, "matrix never exercised a live migration");
        assert!(stranded > 0, "matrix never exercised the strand path");
        // Hang-only scenarios recover in place and serve everything.
        assert_eq!(t.cell(2, 0), "hang-4");
        assert_eq!(col(2, 6), 0, "hangs must not strand tenants");
        assert_eq!(col(2, 8), 0, "hangs must not lose requests");
    }
}
