//! Fig. 10: the two performance estimators across the full configuration
//! space of one {NasNet + ResNet-50} kernel squad.
//!
//! For each of the 17 strict SP configurations the interference-free
//! predictor (Eq. 1) is compared against the measured squad duration; the
//! NSP configuration is predicted by the workload-equivalence predictor
//! (Eq. 2). The determiner must identify the true optimum (the paper finds
//! 54 SMs / 54 SMs for its example squad).

use bless::{predict_interference_free, predict_workload_equivalence, DeployedApp, ExecConfig};
use dnn_models::{ModelKind, Phase};
use gpu_sim::GpuSpec;
use metrics::Table;

use crate::cache;
use crate::squadlab::{run_squad, slice_squad, SquadScheme};

/// Regenerates Fig. 10.
pub fn run() -> Vec<Table> {
    let spec = GpuSpec::a100();
    let apps = vec![
        DeployedApp::new(
            cache::profile(ModelKind::NasNet, Phase::Inference, &spec),
            0.5,
            None,
        ),
        DeployedApp::new(
            cache::profile(ModelKind::ResNet50, Phase::Inference, &spec),
            0.5,
            None,
        ),
    ];
    // The paper's example squad: 58 NasNet kernels + a comparable R50 slice.
    let squad = slice_squad(&apps, &[1, 1], &[58, 60]);

    let mut t = Table::new(
        "Fig. 10: {NasNet+R50} squad duration per configuration",
        &["config (SMs)", "predicted ms", "actual ms", "predictor"],
    );

    let mut best_pred: Option<(String, f64)> = None;
    let mut best_actual: Option<(String, f64)> = None;
    let upd = |slot: &mut Option<(String, f64)>, label: &str, v: f64| {
        if slot.as_ref().is_none_or(|(_, b)| v < *b) {
            *slot = Some((label.to_string(), v));
        }
    };

    for p in 1..=17u32 {
        let parts = vec![p, 18 - p];
        let label = format!("{}/{}", p * 6, (18 - p) * 6);
        let cfg = ExecConfig::Sp {
            partitions: parts.clone(),
        };
        let predicted = predict_interference_free(&squad, &apps, &parts).as_millis_f64();
        let actual = run_squad(&squad, &apps, &spec, SquadScheme::Sp, &cfg).as_millis_f64();
        upd(&mut best_pred, &label, predicted);
        upd(&mut best_actual, &label, actual);
        t.row(&[
            label,
            format!("{predicted:.2}"),
            format!("{actual:.2}"),
            "interference-free".to_string(),
        ]);
    }
    let nsp_pred = predict_workload_equivalence(&squad, &apps, spec.num_sms).as_millis_f64();
    let nsp_actual =
        run_squad(&squad, &apps, &spec, SquadScheme::Nsp, &ExecConfig::Nsp).as_millis_f64();
    upd(&mut best_pred, "NSP", nsp_pred);
    upd(&mut best_actual, "NSP", nsp_actual);
    t.row(&[
        "NSP".to_string(),
        format!("{nsp_pred:.2}"),
        format!("{nsp_actual:.2}"),
        "workload-equivalence".to_string(),
    ]);

    let (pred_cfg, _) = crate::require(best_pred, "configs evaluated");
    let (act_cfg, _) = crate::require(best_actual, "configs evaluated");
    t.note(format!(
        "predicted optimum: {pred_cfg}; actual optimum: {act_cfg}; match: {}",
        pred_cfg == act_cfg
    ));
    t.note("paper: predicted optimum 54SMs/54SMs matches the actual optimal split");
    vec![t]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn predicted_optimum_matches_actual() {
        let tables = run();
        let t = &tables[0];
        assert_eq!(t.row_count(), 18, "17 SP configs + NSP");
        // Parse mins from the table and verify the determiner's pick.
        let mut best_pred = (String::new(), f64::MAX);
        let mut best_act = (String::new(), f64::MAX);
        for r in 0..t.row_count() {
            let pred: f64 = t.cell(r, 1).parse().unwrap();
            let act: f64 = t.cell(r, 2).parse().unwrap();
            if pred < best_pred.1 {
                best_pred = (t.cell(r, 0).to_string(), pred);
            }
            if act < best_act.1 {
                best_act = (t.cell(r, 0).to_string(), act);
            }
        }
        assert_eq!(
            best_pred.0, best_act.0,
            "predicted optimum must match the measured optimum"
        );
    }

    #[test]
    fn predictions_track_actuals() {
        // Average relative error of the interference-free predictor should
        // be in the paper's single-digit-percent regime.
        let tables = run();
        let t = &tables[0];
        let mut err = 0.0;
        let mut n = 0;
        for r in 0..t.row_count() - 1 {
            let pred: f64 = t.cell(r, 1).parse().unwrap();
            let act: f64 = t.cell(r, 2).parse().unwrap();
            err += (pred - act).abs() / act;
            n += 1;
        }
        let mean = err / n as f64;
        assert!(mean < 0.15, "mean IF predictor error {:.1}%", mean * 100.0);
    }
}
