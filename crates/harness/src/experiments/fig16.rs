//! Fig. 16: the extremely biased workload (E) — App1 (ResNet-50) holds an
//! 8/9 quota but issues requests at low load, while App2 holds 1/9 and
//! hammers the GPU continuously.
//!
//! Paper: GSLICE extends App1's latency by ~6% (interference), BLESS by
//! ~9% (lazy squad-boundary waits) — and in exchange BLESS gives App2 an
//! average 2.2× throughput improvement over GSLICE.

use dnn_models::{ModelKind, Phase};
use gpu_sim::GpuSpec;
use metrics::Table;
use sim_core::SimTime;
use workloads::{ArrivalPattern, PaperWorkload, TenantSpec, WorkloadSet};

use crate::cache;
use crate::runner::{run_system, System};
use dnn_models::gen::CALIBRATION_PCIE;

/// Builds workload E: R50 at 8/9 low load + `other` at 1/9 dense.
pub fn workload_e(other: ModelKind, requests: usize) -> WorkloadSet {
    let r50 = cache::model(ModelKind::ResNet50, Phase::Inference);
    let app2 = cache::model(other, Phase::Inference);
    let p1 = PaperWorkload::LowLoad.pattern(
        r50.solo_duration(CALIBRATION_PCIE),
        requests,
        SimTime::from_secs(10),
    );
    let p2 = ArrivalPattern::ClosedLoop {
        think: sim_core::SimDuration::ZERO,
        count: requests * 12,
    };
    WorkloadSet::new(
        vec![
            TenantSpec::new(r50, 8.0 / 9.0, p1),
            TenantSpec::new(app2, 1.0 / 9.0, p2),
        ],
        53,
    )
}

/// Runs one App2 choice; returns (system, app1 slowdown vs ISO, app2
/// throughput rps).
pub fn biased_case(other: ModelKind, requests: usize) -> Vec<(String, f64, f64)> {
    let spec = GpuSpec::a100();
    [System::Gslice, System::Bless(bless::BlessParams::default())]
        .iter()
        .map(|sys| {
            let ws = workload_e(other, requests);
            let r = run_system(sys, &ws, &spec, SimTime::from_secs(120), None);
            let lat1 = crate::require(r.log.stats(0).mean, "app1 ran").as_nanos() as f64;
            let iso1 = r.iso_targets[0].as_nanos() as f64;
            let tput2 = r.log.throughput(1, sim_core::SimTime::ZERO, r.makespan);
            (sys.name().to_string(), lat1 / iso1 - 1.0, tput2)
        })
        .collect()
}

/// Regenerates Fig. 16.
pub fn run() -> Vec<Table> {
    let mut t = Table::new(
        "Fig. 16: workload E — App1 (R50, 8/9, low load) + App2 (1/9, dense)",
        &[
            "app2 model",
            "system",
            "app1 latency vs ISO %",
            "app2 throughput rps",
        ],
    );
    let mut ratio_sum = 0.0;
    let mut ratio_n = 0;
    for other in [
        ModelKind::Vgg11,
        ModelKind::ResNet101,
        ModelKind::NasNet,
        ModelKind::Bert,
    ] {
        let rows = biased_case(other, 10);
        let g_tput = rows[0].2;
        let b_tput = rows[1].2;
        if g_tput > 0.0 {
            ratio_sum += b_tput / g_tput;
            ratio_n += 1;
        }
        for (name, slow, tput) in rows {
            t.row(&[
                other.short_name().to_string(),
                name,
                format!("{:+.1}", slow * 100.0),
                format!("{tput:.1}"),
            ]);
        }
    }
    t.note(format!(
        "mean BLESS/GSLICE throughput ratio for App2: {:.2}x (paper: 2.2x)",
        ratio_sum / ratio_n.max(1) as f64
    ));
    t.note("paper: App1 +6% with GSLICE, +9% with BLESS");
    vec![t]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bless_trades_slight_app1_latency_for_app2_throughput() {
        let rows = biased_case(ModelKind::Vgg11, 8);
        let (g, b) = (&rows[0], &rows[1]);
        // App2 gets much more throughput under BLESS (GSLICE pins it to
        // 1/9 of the GPU; BLESS lets it fill App1's bubbles).
        assert!(
            b.2 > g.2 * 1.3,
            "BLESS app2 throughput {:.1} vs GSLICE {:.1}",
            b.2,
            g.2
        );
        // App1's latency stays within a modest envelope of ISO.
        assert!(
            b.1 < 0.25,
            "App1 slowdown under BLESS: {:+.1}%",
            b.1 * 100.0
        );
    }
}
