//! One module per paper artifact; the registry maps experiment ids to
//! runner functions.

pub mod chaos;
pub mod faults;
pub mod fig10;
pub mod fig12;
pub mod fig13;
pub mod fig14;
pub mod fig15;
pub mod fig16;
pub mod fig17;
pub mod fig18;
pub mod fig19;
pub mod fig20;
pub mod fig4b;
pub mod fig9;
pub mod fleet;
pub mod fleet10k;
pub mod graphs;
pub mod overhead;
pub mod predictor;
pub mod serve;
pub mod slo;
pub mod substrate;
pub mod system_comparison;
pub mod table1;
pub mod traces;

use metrics::Table;

/// A runnable experiment.
pub struct Experiment {
    /// Command-line id (e.g. `"fig13"`).
    pub id: &'static str,
    /// What paper artifact it regenerates.
    pub describes: &'static str,
    /// Runner.
    pub run: fn() -> Vec<Table>,
}

/// All experiments, in paper order.
pub fn registry() -> Vec<Experiment> {
    vec![
        Experiment {
            id: "table1",
            describes: "Table 1: application properties (duration, kernels, profile cost)",
            run: table1::run,
        },
        Experiment {
            id: "fig4b",
            describes: "Fig. 4(b): VGG11+R50 latency under each scheduling scheme",
            run: fig4b::run,
        },
        Experiment {
            id: "fig9a",
            describes: "Fig. 9(a): kernel-level interference vs memory pressure",
            run: fig9::run_a,
        },
        Experiment {
            id: "fig9b",
            describes: "Fig. 9(b): application-level interference in mutual pairs",
            run: fig9::run_b,
        },
        Experiment {
            id: "fig9c",
            describes: "Fig. 9(c): per-channel interference decomposition + collapse-twin equality",
            run: fig9::run_c,
        },
        Experiment {
            id: "system_comparison",
            describes: "§6.1: all systems (incl. Tally) on the Azure-like trace, validator-checked",
            run: system_comparison::run,
        },
        Experiment {
            id: "fig10",
            describes: "Fig. 10: predictor sweep over a NasNet+R50 squad's 18 configs",
            run: fig10::run,
        },
        Experiment {
            id: "predictor",
            describes: "§4.4.2: predictor accuracy and optimal-config hit rate",
            run: predictor::run,
        },
        Experiment {
            id: "fig12",
            describes: "Fig. 12: pair latency charts across quota assignments",
            run: fig12::run,
        },
        Experiment {
            id: "fig13",
            describes: "Fig. 13: symmetric co-location across workloads A/B/C (+training)",
            run: fig13::run,
        },
        Experiment {
            id: "fig14",
            describes: "Fig. 14: latency deviation of 9 pairs under 7 uneven quota configs",
            run: fig14::run,
        },
        Experiment {
            id: "traces",
            describes: "§6.3: real-world-trace workloads (Twitter-like, Azure-like)",
            run: traces::run,
        },
        Experiment {
            id: "fig15",
            describes: "Fig. 15: 4 and 8 co-located applications",
            run: fig15::run,
        },
        Experiment {
            id: "fig16",
            describes: "Fig. 16: extremely biased workload (E)",
            run: fig16::run,
        },
        Experiment {
            id: "slo",
            describes: "§6.5: SLO guarantees (QoS violation rates)",
            run: slo::run,
        },
        Experiment {
            id: "fig17",
            describes: "Fig. 17: kernel-squad duration under SEQ/NSP/SP/Semi-SP",
            run: fig17::run,
        },
        Experiment {
            id: "fig18",
            describes: "Fig. 18: fine-grained squad analysis + ZICO comparison",
            run: fig18::run,
        },
        Experiment {
            id: "fig19a",
            describes: "Fig. 19(a): kernel-squad granularity sweep",
            run: fig19::run_a,
        },
        Experiment {
            id: "fig19b",
            describes: "Fig. 19(b): split-ratio sweep",
            run: fig19::run_b,
        },
        Experiment {
            id: "fig19c",
            describes: "Fig. 19(c): SM-count sweep",
            run: fig19::run_c,
        },
        Experiment {
            id: "fig20",
            describes: "Fig. 20: ablation study",
            run: fig20::run,
        },
        Experiment {
            id: "overhead",
            describes: "§6.9: scheduling overheads",
            run: overhead::run,
        },
        Experiment {
            id: "substrate",
            describes: "substrate ablation: hardware-model knobs vs the headline results",
            run: substrate::run,
        },
        Experiment {
            id: "graphs",
            describes: "§6.10 extension: CUDA-graph scheduling granularity sweep",
            run: graphs::run,
        },
        Experiment {
            id: "faults",
            describes: "robustness: deterministic fault matrix (stragglers, drift, crashes, DMA)",
            run: faults::run,
        },
        Experiment {
            id: "chaos",
            describes: "robustness: seeded GPU kill/hang matrix with live migration (4-64 GPUs)",
            run: chaos::run,
        },
        Experiment {
            id: "fleet",
            describes:
                "§4.2.2: multi-GPU fleet (placement + replicated runtimes, parallel simulation)",
            run: fleet::run,
        },
        Experiment {
            id: "serve",
            describes:
                "DESIGN §5l: open-loop serving daemon (lock-free ingest, admission, shed sweep)",
            run: serve::run,
        },
        Experiment {
            id: "fleet10k",
            describes:
                "ROADMAP 2: 10k-GPU diurnal fleet via the sharded streaming runner (BENCH_QUICK shrinks it)",
            run: fleet10k::run,
        },
    ]
}

/// Looks up one experiment by id.
pub fn find(id: &str) -> Option<Experiment> {
    registry().into_iter().find(|e| e.id == id)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_ids_are_unique() {
        let reg = registry();
        let mut ids: Vec<&str> = reg.iter().map(|e| e.id).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), reg.len());
    }

    #[test]
    fn find_works() {
        assert!(find("table1").is_some());
        assert!(find("nope").is_none());
    }
}
