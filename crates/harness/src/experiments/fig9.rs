//! Fig. 9: the interference study.
//!
//! (a) kernel-level slowdown of victims under co-located memory pressure —
//! the paper observes slowdown ratios that stay below 2× even against a
//! highly memory-intensive aggressor.
//!
//! (b) application-level slowdown when co-locating mutual pairs of
//! ResNet-50, VGG-11, AlexNet, and BERT — the paper measures ≈7% average.

use dnn_models::micro;
use dnn_models::{ModelKind, Phase};
use gpu_sim::{CtxKind, Gpu, GpuSpec, HostCosts};
use metrics::Table;
use sim_core::{SimDuration, SimTime};
use workloads::{pair_workload, PaperWorkload};

use crate::cache;
use crate::runner::{run_system, System};

/// Runs a victim kernel against an aggressor and returns the slowdown.
pub fn kernel_slowdown(victim_mem: f64, aggressor_mem: f64, spec: &GpuSpec) -> f64 {
    let mut gpu = Gpu::new(spec.clone(), HostCosts::free());
    let ctx = crate::require_ok(gpu.create_context(CtxKind::Default), "create context");
    let q1 = crate::require_ok(gpu.create_queue(ctx), "create queue");
    let q2 = crate::require_ok(gpu.create_queue(ctx), "create queue");
    let base = SimDuration::from_micros(500);
    let half = spec.num_sms / 2;
    let v = crate::require_ok(
        gpu.launch(q1, micro::victim(base, half, victim_mem), 0),
        "launch",
    );
    crate::require_ok(
        gpu.launch(q2, micro::aggressor(half, aggressor_mem), 1),
        "launch",
    );
    while gpu.kernel_finished_at(v).is_none() {
        if gpu.step().is_none() && gpu.peek_event_time().is_none() {
            break;
        }
    }
    let t = crate::require(gpu.kernel_finished_at(v), "victim finished");
    t.duration_since(SimTime::ZERO).as_nanos() as f64 / base.as_nanos() as f64
}

/// Regenerates Fig. 9(a).
pub fn run_a() -> Vec<Table> {
    let spec = GpuSpec::a100();
    let mut t = Table::new(
        "Fig. 9(a): victim kernel slowdown vs aggressor memory pressure",
        &[
            "aggressor mem",
            "compute victim (mem 0.0)",
            "mixed victim (mem 0.5)",
            "memory victim (mem 1.0)",
        ],
    );
    for aggr in [0.0, 0.2, 0.4, 0.6, 0.8, 1.0] {
        t.row(&[
            format!("{aggr:.1}"),
            format!("{:.3}", kernel_slowdown(0.0, aggr, &spec)),
            format!("{:.3}", kernel_slowdown(0.5, aggr, &spec)),
            format!("{:.3}", kernel_slowdown(1.0, aggr, &spec)),
        ]);
    }
    t.note("paper: slowdown ratio no larger than 2 even against a highly memory-intensive kernel");
    vec![t]
}

/// The Fig. 9(b) model set: R50, VGG, AlexNet, BERT.
const PAIR_MODELS: [ModelKind; 4] = [
    ModelKind::ResNet50,
    ModelKind::Vgg11,
    ModelKind::AlexNet,
    ModelKind::Bert,
];

/// Application-level slowdown of a 50/50 MPS co-location of (a, b)
/// relative to each app's isolated 50% latency. Returns the mean of both
/// apps' slowdowns.
pub fn app_pair_slowdown(a: ModelKind, b: ModelKind, spec: &GpuSpec) -> f64 {
    let ws = pair_workload(
        cache::model(a, Phase::Inference),
        cache::model(b, Phase::Inference),
        (0.5, 0.5),
        PaperWorkload::HighLoad,
        8,
        SimTime::from_secs(5),
        3,
    );
    let r = run_system(&System::Gslice, &ws, spec, SimTime::from_secs(60), None);
    let mut total = 0.0;
    for app in 0..2 {
        let lat = crate::require(r.log.stats(app).mean, "app ran").as_nanos() as f64;
        let iso = r.iso_targets[app].as_nanos() as f64;
        total += lat / iso - 1.0;
    }
    total / 2.0
}

/// Regenerates Fig. 9(b).
pub fn run_b() -> Vec<Table> {
    let spec = GpuSpec::a100();
    let mut t = Table::new(
        "Fig. 9(b): application-level interference (mutual pairs, 50/50 MPS)",
        &["pair", "mean slowdown %"],
    );
    let mut total = 0.0;
    let mut n = 0;
    for (i, &a) in PAIR_MODELS.iter().enumerate() {
        for &b in &PAIR_MODELS[i..] {
            let s = app_pair_slowdown(a, b, &spec);
            total += s;
            n += 1;
            t.row(&[
                format!("{}+{}", a.short_name(), b.short_name()),
                format!("{:.1}", s * 100.0),
            ]);
        }
    }
    t.row(&[
        "AVERAGE".to_string(),
        format!("{:.1}", total / n as f64 * 100.0),
    ]);
    t.note("paper: average slowdown caused by interference is 7%");
    vec![t]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig9a_slowdown_capped_at_two_and_monotone() {
        let spec = GpuSpec::a100();
        let mut prev = 0.0;
        for aggr in [0.0, 0.5, 1.0] {
            let s = kernel_slowdown(1.0, aggr, &spec);
            assert!(s >= prev - 1e-9, "monotone in aggressor pressure");
            assert!(s <= 2.0 + 1e-9, "capped at 2x, got {s}");
            prev = s;
        }
        assert!(prev > 1.2, "worst case should be substantial: {prev}");
    }

    #[test]
    fn fig9b_average_is_single_digit_percent() {
        let spec = GpuSpec::a100();
        let s = app_pair_slowdown(ModelKind::ResNet50, ModelKind::Vgg11, &spec);
        assert!(
            (0.0..0.20).contains(&s),
            "pair slowdown should be a modest positive percentage: {s}"
        );
    }
}
