//! Fig. 9: the interference study.
//!
//! (a) kernel-level slowdown of victims under co-located memory pressure —
//! the paper observes slowdown ratios that stay below 2× even against a
//! highly memory-intensive aggressor.
//!
//! (b) application-level slowdown when co-locating mutual pairs of
//! ResNet-50, VGG-11, AlexNet, and BERT — the paper measures ≈7% average.

use dnn_models::micro;
use dnn_models::{ModelKind, Phase};
use gpu_sim::{Channel, ChannelDemand, CtxKind, Gpu, GpuSpec, HostCosts};
use metrics::Table;
use sim_core::{SimDuration, SimTime};
use workloads::{pair_workload, PaperWorkload};

use crate::cache;
use crate::runner::{run_system, System};

/// Runs a victim kernel against an aggressor and returns the slowdown.
pub fn kernel_slowdown(victim_mem: f64, aggressor_mem: f64, spec: &GpuSpec) -> f64 {
    let mut gpu = Gpu::new(spec.clone(), HostCosts::free());
    let ctx = crate::require_ok(gpu.create_context(CtxKind::Default), "create context");
    let q1 = crate::require_ok(gpu.create_queue(ctx), "create queue");
    let q2 = crate::require_ok(gpu.create_queue(ctx), "create queue");
    let base = SimDuration::from_micros(500);
    let half = spec.num_sms / 2;
    let v = crate::require_ok(
        gpu.launch(q1, micro::victim(base, half, victim_mem), 0),
        "launch",
    );
    crate::require_ok(
        gpu.launch(q2, micro::aggressor(half, aggressor_mem), 1),
        "launch",
    );
    while gpu.kernel_finished_at(v).is_none() {
        if gpu.step().is_none() && gpu.peek_event_time().is_none() {
            break;
        }
    }
    let t = crate::require(gpu.kernel_finished_at(v), "victim finished");
    t.duration_since(SimTime::ZERO).as_nanos() as f64 / base.as_nanos() as f64
}

/// Regenerates Fig. 9(a).
pub fn run_a() -> Vec<Table> {
    let spec = GpuSpec::a100();
    let mut t = Table::new(
        "Fig. 9(a): victim kernel slowdown vs aggressor memory pressure",
        &[
            "aggressor mem",
            "compute victim (mem 0.0)",
            "mixed victim (mem 0.5)",
            "memory victim (mem 1.0)",
        ],
    );
    for aggr in [0.0, 0.2, 0.4, 0.6, 0.8, 1.0] {
        t.row(&[
            format!("{aggr:.1}"),
            format!("{:.3}", kernel_slowdown(0.0, aggr, &spec)),
            format!("{:.3}", kernel_slowdown(0.5, aggr, &spec)),
            format!("{:.3}", kernel_slowdown(1.0, aggr, &spec)),
        ]);
    }
    t.note("paper: slowdown ratio no larger than 2 even against a highly memory-intensive kernel");
    vec![t]
}

/// Per-channel pair slowdown: victim and aggressor press with explicit
/// demand vectors under whatever channel model `spec` carries.
pub fn channel_kernel_slowdown(
    victim: ChannelDemand,
    aggressor: ChannelDemand,
    spec: &GpuSpec,
) -> f64 {
    let mut gpu = Gpu::new(spec.clone(), HostCosts::free());
    let ctx = crate::require_ok(gpu.create_context(CtxKind::Default), "create context");
    let q1 = crate::require_ok(gpu.create_queue(ctx), "create queue");
    let q2 = crate::require_ok(gpu.create_queue(ctx), "create queue");
    let base = SimDuration::from_micros(500);
    let half = spec.num_sms / 2;
    let v = crate::require_ok(
        gpu.launch(q1, micro::channel_victim(base, half, victim), 0),
        "launch",
    );
    crate::require_ok(
        gpu.launch(q2, micro::channel_aggressor(half, aggressor), 1),
        "launch",
    );
    while gpu.kernel_finished_at(v).is_none() {
        if gpu.step().is_none() && gpu.peek_event_time().is_none() {
            break;
        }
    }
    let t = crate::require(gpu.kernel_finished_at(v), "victim finished");
    t.duration_since(SimTime::ZERO).as_nanos() as f64 / base.as_nanos() as f64
}

/// Regenerates Fig. 9(c): the per-resource decomposition of Fig. 9(a).
/// Each cell co-locates a victim pressing 0.5 on one channel with an
/// aggressor pressing 1.0 on another, under the calibrated
/// [`GpuSpec::a100_per_resource`] model; the diagonal (same channel)
/// dominates every off-diagonal cell of its row, which only feels the
/// base-floor coupling.
pub fn run_c() -> Vec<Table> {
    let spec = GpuSpec::a100_per_resource();
    let mut t = Table::new(
        "Fig. 9(c): per-channel interference decomposition (victim 0.5 vs aggressor 1.0)",
        &[
            "aggressor channel",
            "compute victim",
            "l2 victim",
            "dram victim",
            "pcie victim",
        ],
    );
    for aggr_ch in Channel::ALL {
        let mut row = vec![aggr_ch.name().to_string()];
        for victim_ch in Channel::ALL {
            let s = channel_kernel_slowdown(
                ChannelDemand::collapsed(victim_ch, 0.5),
                ChannelDemand::collapsed(aggr_ch, 1.0),
                &spec,
            );
            row.push(format!("{s:.3}"));
        }
        t.row(&row);
    }
    t.note("diagonal = same-channel contention; off-diagonal = base-floor coupling only");

    // Collapse equality: the per-resource model with all demand on one
    // channel carrying the scalar curve reproduces the scalar model to the
    // last bit (the differential-twin invariant, DESIGN.md §5j).
    let scalar = GpuSpec::a100();
    let twin = scalar.collapse_twin(Channel::DramBw);
    let mut eq = Table::new(
        "Fig. 9(c) cont.: collapse-twin equality against the scalar model",
        &["victim mem", "scalar slowdown", "twin slowdown", "equal"],
    );
    for mem in [0.0, 0.5, 1.0] {
        let s = kernel_slowdown(mem, 1.0, &scalar);
        let c = channel_kernel_slowdown(
            ChannelDemand::collapsed(Channel::DramBw, mem),
            ChannelDemand::collapsed(Channel::DramBw, 1.0),
            &twin,
        );
        eq.row(&[
            format!("{mem:.1}"),
            format!("{s:.6}"),
            format!("{c:.6}"),
            if s == c { "yes" } else { "NO" }.to_string(),
        ]);
    }
    eq.note("equality is exact (bit-identical float sequences), not a tolerance");
    vec![t, eq]
}

/// The Fig. 9(b) model set: R50, VGG, AlexNet, BERT.
const PAIR_MODELS: [ModelKind; 4] = [
    ModelKind::ResNet50,
    ModelKind::Vgg11,
    ModelKind::AlexNet,
    ModelKind::Bert,
];

/// Application-level slowdown of a 50/50 MPS co-location of (a, b)
/// relative to each app's isolated 50% latency. Returns the mean of both
/// apps' slowdowns.
pub fn app_pair_slowdown(a: ModelKind, b: ModelKind, spec: &GpuSpec) -> f64 {
    let ws = pair_workload(
        cache::model(a, Phase::Inference),
        cache::model(b, Phase::Inference),
        (0.5, 0.5),
        PaperWorkload::HighLoad,
        8,
        SimTime::from_secs(5),
        3,
    );
    let r = run_system(&System::Gslice, &ws, spec, SimTime::from_secs(60), None);
    let mut total = 0.0;
    for app in 0..2 {
        let lat = crate::require(r.log.stats(app).mean, "app ran").as_nanos() as f64;
        let iso = r.iso_targets[app].as_nanos() as f64;
        total += lat / iso - 1.0;
    }
    total / 2.0
}

/// Regenerates Fig. 9(b).
pub fn run_b() -> Vec<Table> {
    let spec = GpuSpec::a100();
    let mut t = Table::new(
        "Fig. 9(b): application-level interference (mutual pairs, 50/50 MPS)",
        &["pair", "mean slowdown %"],
    );
    let mut total = 0.0;
    let mut n = 0;
    for (i, &a) in PAIR_MODELS.iter().enumerate() {
        for &b in &PAIR_MODELS[i..] {
            let s = app_pair_slowdown(a, b, &spec);
            total += s;
            n += 1;
            t.row(&[
                format!("{}+{}", a.short_name(), b.short_name()),
                format!("{:.1}", s * 100.0),
            ]);
        }
    }
    t.row(&[
        "AVERAGE".to_string(),
        format!("{:.1}", total / n as f64 * 100.0),
    ]);
    t.note("paper: average slowdown caused by interference is 7%");
    vec![t]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig9a_slowdown_capped_at_two_and_monotone() {
        let spec = GpuSpec::a100();
        let mut prev = 0.0;
        for aggr in [0.0, 0.5, 1.0] {
            let s = kernel_slowdown(1.0, aggr, &spec);
            assert!(s >= prev - 1e-9, "monotone in aggressor pressure");
            assert!(s <= 2.0 + 1e-9, "capped at 2x, got {s}");
            prev = s;
        }
        assert!(prev > 1.2, "worst case should be substantial: {prev}");
    }

    #[test]
    fn fig9c_same_channel_dominates_cross_channel() {
        let spec = GpuSpec::a100_per_resource();
        for ch in [Channel::L2, Channel::DramBw] {
            let same = channel_kernel_slowdown(
                ChannelDemand::collapsed(ch, 0.5),
                ChannelDemand::collapsed(ch, 1.0),
                &spec,
            );
            let cross_ch = if ch == Channel::L2 {
                Channel::DramBw
            } else {
                Channel::L2
            };
            let cross = channel_kernel_slowdown(
                ChannelDemand::collapsed(cross_ch, 0.5),
                ChannelDemand::collapsed(ch, 1.0),
                &spec,
            );
            assert!(same > cross, "{ch:?}: same {same:.3} vs cross {cross:.3}");
            assert!(cross > 1.0, "base floor still couples: {cross:.3}");
        }
    }

    /// Satellite of the per-resource model: on the Fig. 9(a) calibration
    /// grid with demand *split* across L2 and DRAM-BW, the channel-aware
    /// closed form predicts the engine-measured slowdown at least as well
    /// as the scalar closed form (which only sees the lumped intensity
    /// and cannot tell the channels apart).
    #[test]
    fn fig9c_channel_predictor_error_no_worse_than_scalar() {
        use gpu_sim::{ChannelParams, NUM_CHANNELS};
        let spec = GpuSpec::a100_per_resource();
        let params = ChannelParams::a100();
        let split = |m: f64| ChannelDemand::new(0.0, m / 2.0, m / 2.0, 0.0);
        for victim_mem in [0.3, 0.5, 0.7, 0.9] {
            for aggr_mem in [0.5, 1.0] {
                let vd = split(victim_mem);
                let ad = split(aggr_mem);
                let measured = channel_kernel_slowdown(vd, ad, &spec);

                // Channel closed form: the same per-channel pressure math
                // the engine runs (both kernels at half the device).
                let mut traffic = [0.0f64; NUM_CHANNELS];
                for d in [&vd, &ad] {
                    for (t, dv) in traffic.iter_mut().zip(&d.0) {
                        *t += dv * 0.5;
                    }
                }
                let chan_pred = params.slowdown(&vd, 0.5, &traffic);

                // Scalar closed form on the lumped intensities.
                let total = victim_mem * 0.5 + aggr_mem * 0.5;
                let pressure = (total - victim_mem * 0.5).max(0.0);
                let sens = spec.interference_base + (1.0 - spec.interference_base) * victim_mem;
                let scalar_pred =
                    (1.0 + spec.interference_alpha * pressure * sens).min(spec.interference_cap);

                let chan_err = (chan_pred - measured).abs();
                let scalar_err = (scalar_pred - measured).abs();
                assert!(
                    chan_err <= scalar_err + 1e-9,
                    "victim {victim_mem} aggr {aggr_mem}: channel err {chan_err:.4} \
                     (pred {chan_pred:.4}) vs scalar err {scalar_err:.4} \
                     (pred {scalar_pred:.4}), measured {measured:.4}"
                );
            }
        }
    }

    #[test]
    fn fig9c_collapse_twin_matches_scalar_exactly() {
        let scalar = GpuSpec::a100();
        let twin = scalar.collapse_twin(Channel::DramBw);
        for mem in [0.0, 0.5, 1.0] {
            let s = kernel_slowdown(mem, 1.0, &scalar);
            let c = channel_kernel_slowdown(
                ChannelDemand::collapsed(Channel::DramBw, mem),
                ChannelDemand::collapsed(Channel::DramBw, 1.0),
                &twin,
            );
            assert_eq!(s.to_bits(), c.to_bits(), "mem {mem}: {s} vs {c}");
        }
    }

    #[test]
    fn fig9b_average_is_single_digit_percent() {
        let spec = GpuSpec::a100();
        let s = app_pair_slowdown(ModelKind::ResNet50, ModelKind::Vgg11, &spec);
        assert!(
            (0.0..0.20).contains(&s),
            "pair slowdown should be a modest positive percentage: {s}"
        );
    }
}
