//! Fig. 4(b): the motivating comparison — a VGG-11 (quota 1/3) and a
//! ResNet-50 (quota 2/3) serving a partially overlapping request stream
//! under each scheduling scheme.
//!
//! Paper values (average latency of the two applications): static sharing
//! 16.8 ms, unbounded 13.1 ms, biased (REEF-style) 14.3 ms, BLESS 11.3 ms.

use dnn_models::{ModelKind, Phase};
use gpu_sim::GpuSpec;
use metrics::Table;
use sim_core::SimTime;
use workloads::{pair_workload, PaperWorkload};

use crate::cache;
use crate::runner::{run_system, System};

/// The Fig. 1/4 scenario: low-load closed-loop requests so that requests
/// partially overlap, leaving bubbles the schemes exploit differently.
fn workload() -> workloads::WorkloadSet {
    pair_workload(
        cache::model(ModelKind::Vgg11, Phase::Inference),
        cache::model(ModelKind::ResNet50, Phase::Inference),
        (1.0 / 3.0, 2.0 / 3.0),
        PaperWorkload::LowLoad,
        20,
        SimTime::from_secs(10),
        1,
    )
}

/// Paper's Fig. 4(b) numbers for the annotation column.
fn paper_value(name: &str) -> &'static str {
    match name {
        "GSLICE" => "16.8 (static)",
        "UNBOUND" => "13.1 (unbounded)",
        "REEF+" => "14.3 (biased)",
        "BLESS" => "11.3",
        _ => "-",
    }
}

/// Regenerates Fig. 4(b).
pub fn run() -> Vec<Table> {
    let spec = GpuSpec::a100();
    let ws = workload();
    let horizon = SimTime::from_secs(60);

    let mut t = Table::new(
        "Fig. 4(b): VGG11 (1/3) + R50 (2/3), low-load stream",
        &[
            "scheme",
            "avg latency ms",
            "VGG ms",
            "R50 ms",
            "util %",
            "paper ms",
        ],
    );
    let mut systems = vec![System::Iso];
    systems.extend(System::inference_set());
    for sys in systems {
        let r = run_system(&sys, &ws, &spec, horizon, None);
        let means = r.app_means();
        t.row(&[
            sys.name().to_string(),
            format!("{:.2}", r.mean_ms()),
            format!("{:.2}", means[0].as_millis_f64()),
            format!("{:.2}", means[1].as_millis_f64()),
            format!("{:.1}", r.utilization * 100.0),
            paper_value(sys.name()).to_string(),
        ]);
    }
    t.note("paper column: Fig. 4(b) measured on a real A100 with its scheme taxonomy");
    vec![t]
}

#[cfg(test)]
mod tests {
    use super::*;
    use bless::BlessParams;
    use gpu_sim::RunOutcome;

    #[test]
    fn bless_wins_figure_4b() {
        let spec = GpuSpec::a100();
        let ws = workload();
        let horizon = SimTime::from_secs(60);
        let bless = run_system(
            &System::Bless(BlessParams::default()),
            &ws,
            &spec,
            horizon,
            None,
        );
        assert_eq!(bless.outcome, RunOutcome::Completed);
        for sys in [System::Gslice, System::Temporal, System::Mig] {
            let other = run_system(&sys, &ws, &spec, horizon, None);
            assert!(
                bless.mean_ms() < other.mean_ms(),
                "BLESS {:.2} must beat {} {:.2}",
                bless.mean_ms(),
                sys.name(),
                other.mean_ms()
            );
        }
        // REEF+ lands close to BLESS at low load in our substrate (the
        // paper's gap is 27%; see EXPERIMENTS.md).
        let reef = run_system(&System::ReefPlus, &ws, &spec, horizon, None);
        assert!(
            bless.mean_ms() < reef.mean_ms() * 1.25,
            "BLESS {:.2} vs REEF+ {:.2}",
            bless.mean_ms(),
            reef.mean_ms()
        );
    }
}
