//! Experiment runner: regenerates the paper's tables and figures.
//!
//! ```text
//! experiments list              # show all experiment ids
//! experiments <id> [...]        # run one or more experiments
//! experiments all               # run everything, in paper order
//! experiments --csv <dir> <id>  # additionally export each table as CSV
//! ```

use harness::experiments::{find, registry};

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let mut csv_dir: Option<std::path::PathBuf> = None;
    if let Some(pos) = args.iter().position(|a| a == "--csv") {
        if pos + 1 >= args.len() {
            eprintln!("--csv requires a directory argument");
            std::process::exit(2);
        }
        csv_dir = Some(std::path::PathBuf::from(args.remove(pos + 1)));
        args.remove(pos);
    }
    if args.is_empty() || args[0] == "list" || args[0] == "--help" {
        println!("usage: experiments <id>... | all | list\n");
        println!("available experiments:");
        for e in registry() {
            println!("  {:<10} {}", e.id, e.describes);
        }
        return;
    }

    let ids: Vec<String> = if args[0] == "all" {
        registry().into_iter().map(|e| e.id.to_string()).collect()
    } else {
        args
    };

    for id in ids {
        match find(&id) {
            Some(exp) => {
                eprintln!("[experiments] running {id}: {}", exp.describes);
                let start = std::time::Instant::now();
                for table in (exp.run)() {
                    println!("{}", table.render());
                    if let Some(dir) = &csv_dir {
                        std::fs::create_dir_all(dir).expect("create csv dir");
                        let path = dir.join(format!("{}.csv", table.slug()));
                        std::fs::write(&path, table.to_csv()).expect("write csv");
                        eprintln!("[experiments]   wrote {}", path.display());
                    }
                }
                eprintln!("[experiments] {id} finished in {:.1?}\n", start.elapsed());
            }
            None => {
                eprintln!("unknown experiment '{id}'; try 'experiments list'");
                std::process::exit(2);
            }
        }
    }
}
