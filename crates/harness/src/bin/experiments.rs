//! Experiment runner: regenerates the paper's tables and figures.
//!
//! ```text
//! experiments list              # show all experiment ids
//! experiments <id> [...]        # run one or more experiments
//! experiments all               # run everything, in paper order
//! experiments --csv <dir> <id>  # additionally export each table as CSV
//! experiments --trace <dir> <id> # record every run: Perfetto JSON into
//!                                # <dir> + invariant validation (panics
//!                                # on any violation)
//! ```
//!
//! Multiple experiments run concurrently on worker threads (they are
//! independent simulations sharing only the profile cache). Rendered
//! tables are buffered per experiment and printed in the requested order,
//! so stdout is byte-for-byte identical to a serial run; only stderr
//! progress lines interleave.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;

use harness::experiments::{find, registry, Experiment};

/// Everything one finished experiment wants on stdout/disk, in order.
struct ExpOutput {
    /// `(rendered, slug, csv)` per table.
    tables: Vec<(String, String, String)>,
    elapsed: std::time::Duration,
}

fn run_one(exp: &Experiment) -> ExpOutput {
    let start = std::time::Instant::now();
    // Trace files produced by this experiment's runs carry its id; the
    // label is thread-local so concurrent experiments don't mislabel.
    harness::tracectl::set_label(exp.id);
    let tables = (exp.run)()
        .into_iter()
        .map(|t| (t.render(), t.slug(), t.to_csv()))
        .collect();
    ExpOutput {
        tables,
        elapsed: start.elapsed(),
    }
}

fn emit(id: &str, out: &ExpOutput, csv_dir: Option<&std::path::Path>) {
    for (rendered, slug, csv) in &out.tables {
        println!("{rendered}");
        if let Some(dir) = csv_dir {
            if let Err(e) = std::fs::create_dir_all(dir) {
                eprintln!("--csv: cannot create {}: {e}", dir.display());
                std::process::exit(2);
            }
            let path = dir.join(format!("{slug}.csv"));
            if let Err(e) = std::fs::write(&path, csv) {
                eprintln!("--csv: cannot write {}: {e}", path.display());
                std::process::exit(2);
            }
            eprintln!("[experiments]   wrote {}", path.display());
        }
    }
    eprintln!("[experiments] {id} finished in {:.1?}\n", out.elapsed);
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let mut csv_dir: Option<std::path::PathBuf> = None;
    if let Some(pos) = args.iter().position(|a| a == "--csv") {
        if pos + 1 >= args.len() {
            eprintln!("--csv requires a directory argument");
            std::process::exit(2);
        }
        csv_dir = Some(std::path::PathBuf::from(args.remove(pos + 1)));
        args.remove(pos);
    }
    if let Some(pos) = args.iter().position(|a| a == "--trace") {
        if pos + 1 >= args.len() {
            eprintln!("--trace requires a directory argument");
            std::process::exit(2);
        }
        let dir = std::path::PathBuf::from(args.remove(pos + 1));
        args.remove(pos);
        if let Err(e) = harness::tracectl::enable(&dir) {
            eprintln!("--trace: cannot use {}: {e}", dir.display());
            std::process::exit(2);
        }
        eprintln!(
            "[experiments] tracing on: Perfetto JSON into {} (open in ui.perfetto.dev)",
            dir.display()
        );
    }
    if args.is_empty() || args[0] == "list" || args[0] == "--help" {
        println!("usage: experiments <id>... | all | list\n");
        println!("available experiments:");
        for e in registry() {
            println!("  {:<10} {}", e.id, e.describes);
        }
        return;
    }

    let ids: Vec<String> = if args[0] == "all" {
        registry().into_iter().map(|e| e.id.to_string()).collect()
    } else {
        args
    };

    let exps: Vec<Experiment> = ids
        .iter()
        .map(|id| {
            find(id).unwrap_or_else(|| {
                eprintln!("unknown experiment '{id}'; try 'experiments list'");
                std::process::exit(2);
            })
        })
        .collect();

    let total = std::time::Instant::now();
    if exps.len() == 1 {
        // A single experiment gains nothing from workers: run it inline.
        let exp = &exps[0];
        eprintln!("[experiments] running {}: {}", exp.id, exp.describes);
        let out = run_one(exp);
        emit(exp.id, &out, csv_dir.as_deref());
        return;
    }

    let workers = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .min(exps.len());
    let next = AtomicUsize::new(0);
    let (tx, rx) = mpsc::channel::<(usize, ExpOutput)>();

    std::thread::scope(|scope| {
        for _ in 0..workers {
            let tx = tx.clone();
            let next = &next;
            let exps = &exps;
            scope.spawn(move || loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                let Some(exp) = exps.get(i) else { break };
                eprintln!("[experiments] running {}: {}", exp.id, exp.describes);
                if tx.send((i, run_one(exp))).is_err() {
                    break;
                }
            });
        }
        drop(tx);

        // Print strictly in request order as results arrive.
        let mut done: Vec<Option<ExpOutput>> = (0..exps.len()).map(|_| None).collect();
        let mut emitted = 0;
        for (i, out) in rx {
            done[i] = Some(out);
            while emitted < exps.len() {
                let Some(out) = done[emitted].take() else {
                    break;
                };
                emit(exps[emitted].id, &out, csv_dir.as_deref());
                emitted += 1;
            }
        }
    });
    eprintln!(
        "[experiments] total wall-clock: {:.1?} ({} experiments, {} workers)",
        total.elapsed(),
        exps.len(),
        workers
    );
}
