//! Uniform experiment runner: any system × any workload → a request log.

use baselines::{
    ReefPlusDriver, ShareMode, StaticShareDriver, TallyDriver, TemporalDriver, ZicoDriver,
};
use bless::{BlessDriver, BlessParams, DeployedApp};
use dnn_models::gen::CALIBRATION_PCIE;
use gpu_sim::{
    BufferSink, Gpu, GpuSpec, HostCosts, HostDriver, RunOutcome, Simulation, TraceEvent,
};
use metrics::{RequestLog, TraceValidator, ValidatorConfig};
use sim_core::{SimDuration, SimTime};
use workloads::{TenantSpec, WorkloadSet};

use crate::{cache, tracectl};

/// The systems under comparison (§6.1).
#[derive(Clone, Debug)]
pub enum System {
    /// BLESS with the given parameters.
    Bless(BlessParams),
    /// Round-robin time slicing.
    Temporal,
    /// Hard MIG partitions.
    Mig,
    /// Static MPS partitions at each quota.
    Gslice,
    /// Unrestricted sharing via the hardware scheduler.
    Unbound,
    /// Batched launching with even MPS partitioning.
    ReefPlus,
    /// Unbounded sharing with tick-tock staggering (training).
    Zico,
    /// Priority tenant unimpeded; best-effort kernels throttled (Tally).
    Tally,
    /// Each app alone on its quota partition (the latency target).
    Iso,
}

impl System {
    /// Display name used in report tables.
    pub fn name(&self) -> &'static str {
        match self {
            System::Bless(_) => "BLESS",
            System::Temporal => "TEMPORAL",
            System::Mig => "MIG",
            System::Gslice => "GSLICE",
            System::Unbound => "UNBOUND",
            System::ReefPlus => "REEF+",
            System::Zico => "ZICO",
            System::Tally => "TALLY",
            System::Iso => "ISO",
        }
    }

    /// The default comparison set for inference experiments.
    pub fn inference_set() -> Vec<System> {
        vec![
            System::Temporal,
            System::Mig,
            System::Gslice,
            System::Unbound,
            System::ReefPlus,
            System::Bless(BlessParams::default()),
        ]
    }

    /// The default comparison set for training experiments.
    pub fn training_set() -> Vec<System> {
        vec![
            System::Temporal,
            System::Mig,
            System::Unbound,
            System::Zico,
            System::Bless(BlessParams::default()),
        ]
    }
}

/// Outcome of one experiment run.
#[derive(Clone, Debug)]
pub struct RunResult {
    /// Per-app request log.
    pub log: RequestLog,
    /// ISO latency target per app at its quota.
    pub iso_targets: Vec<SimDuration>,
    /// Average GPU utilization over the makespan.
    pub utilization: f64,
    /// Simulation outcome.
    pub outcome: RunOutcome,
    /// Last event time observed.
    pub makespan: SimTime,
}

impl RunResult {
    /// Mean of per-app mean latencies, in milliseconds.
    pub fn mean_ms(&self) -> f64 {
        self.log
            .mean_of_app_means()
            .map_or(f64::NAN, |d| d.as_millis_f64())
    }

    /// Per-app mean latencies.
    pub fn app_means(&self) -> Vec<SimDuration> {
        (0..self.log.apps())
            .map(|a| self.log.stats(a).mean.unwrap_or(SimDuration::ZERO))
            .collect()
    }

    /// The §6.2 latency deviation against the ISO targets.
    pub fn deviation(&self) -> SimDuration {
        metrics::latency_deviation(&self.app_means(), &self.iso_targets)
    }
}

/// Mean GPU utilization over `[0, makespan]`.
fn mean_utilization(gpu: &Gpu, spec: &GpuSpec, makespan: SimTime) -> f64 {
    let secs = makespan.as_secs_f64();
    if secs > 0.0 {
        gpu.busy_sm_seconds() / (spec.num_sms as f64 * secs)
    } else {
        0.0
    }
}

/// Builds the deployment (profiles at this GPU's SM count + quotas).
pub fn deployment(
    ws: &WorkloadSet,
    spec: &GpuSpec,
    slos: Option<&[SimDuration]>,
) -> Vec<DeployedApp> {
    ws.tenants
        .iter()
        .enumerate()
        .map(|(i, t)| {
            let profile = cache::profile(t.model.kind, t.model.phase, spec);
            let slo = slos.and_then(|s| s.get(i).copied());
            DeployedApp::new(profile, t.quota, slo)
        })
        .collect()
}

/// Runs `system` on `ws` and collects the result.
///
/// When global trace capture is on (`experiments --trace`), the run is
/// also recorded, exported to Perfetto JSON, and machine-checked against
/// the scheduler invariants (panicking on a violation).
pub fn run_system(
    system: &System,
    ws: &WorkloadSet,
    spec: &GpuSpec,
    horizon: SimTime,
    slos: Option<&[SimDuration]>,
) -> RunResult {
    let capture = tracectl::enabled();
    let (result, events) = run_system_capture(system, ws, spec, horizon, slos, capture);
    if !events.is_empty() {
        tracectl::export_and_validate(
            system.name(),
            spec.num_sms,
            Some(&result.iso_targets),
            &events,
        );
    }
    result
}

/// [`run_system`] with forced trace capture: returns the run result and
/// the full event stream, regardless of the global `--trace` switch.
/// ([`System::Iso`] runs per-tenant solo simulations and returns an empty
/// stream.)
pub fn run_system_traced(
    system: &System,
    ws: &WorkloadSet,
    spec: &GpuSpec,
    horizon: SimTime,
    slos: Option<&[SimDuration]>,
) -> (RunResult, Vec<TraceEvent>) {
    run_system_capture(system, ws, spec, horizon, slos, true)
}

/// Runs `system` with trace capture and replays the stream through the
/// [`TraceValidator`], panicking on any invariant violation. This is the
/// entry point the integration suites use so every run is machine-checked.
pub fn run_validated(
    system: &System,
    ws: &WorkloadSet,
    spec: &GpuSpec,
    horizon: SimTime,
    slos: Option<&[SimDuration]>,
) -> RunResult {
    let (result, events) = run_system_capture(system, ws, spec, horizon, slos, true);
    if !events.is_empty() {
        let config = ValidatorConfig {
            num_sms: spec.num_sms,
            iso_targets: Some(
                result
                    .iso_targets
                    .iter()
                    .map(|d| d.as_nanos() as f64)
                    .collect(),
            ),
            fairness_spread: None,
            max_recovery_ns: None,
        };
        TraceValidator::new(config).validate(&events).assert_clean();
    }
    result
}

fn run_system_capture(
    system: &System,
    ws: &WorkloadSet,
    spec: &GpuSpec,
    horizon: SimTime,
    slos: Option<&[SimDuration]>,
    capture: bool,
) -> (RunResult, Vec<TraceEvent>) {
    let apps = deployment(ws, spec, slos);
    let iso_targets: Vec<SimDuration> = apps.iter().map(|a| a.iso_latency()).collect();

    if matches!(system, System::Iso) {
        return (run_iso(ws, spec, horizon, iso_targets), Vec::new());
    }

    let mut gpu = Gpu::new(spec.clone(), HostCosts::paper());
    // Long workloads retire millions of kernels; the drivers only consume
    // completion tags, never dereference handles afterwards, so finished
    // instance slots can be recycled instead of growing without bound.
    gpu.set_slot_recycling(true);
    let sink = if capture {
        let s = BufferSink::new();
        gpu.set_trace_sink(Box::new(s.clone()));
        Some(s)
    } else {
        None
    };
    let arrivals = ws.initial_arrivals();

    macro_rules! run {
        ($driver:expr, $extract:expr) => {{
            let mut sim =
                Simulation::new(gpu, $driver, arrivals).with_notice_handler(ws.notice_handler());
            let outcome = sim.run(horizon);
            let makespan = sim.gpu.now();
            let util = mean_utilization(&sim.gpu, spec, makespan);
            #[allow(clippy::redundant_closure_call)]
            let log = ($extract)(sim.driver);
            RunResult {
                log,
                iso_targets,
                utilization: util,
                outcome,
                makespan,
            }
        }};
    }

    let result = match system {
        System::Bless(params) => {
            run!(BlessDriver::new(apps, params.clone()), |d: BlessDriver| d
                .log)
        }
        System::Temporal => run!(TemporalDriver::new(apps), |d: TemporalDriver| d.tenants.log),
        System::Mig => run!(
            StaticShareDriver::new(apps, ShareMode::Mig),
            |d: StaticShareDriver| d.log
        ),
        System::Gslice => run!(
            StaticShareDriver::new(apps, ShareMode::QuotaMps),
            |d: StaticShareDriver| d.log
        ),
        System::Unbound => run!(
            StaticShareDriver::new(apps, ShareMode::Unbound),
            |d: StaticShareDriver| d.log
        ),
        System::ReefPlus => run!(ReefPlusDriver::new(apps), |d: ReefPlusDriver| d.tenants.log),
        System::Tally => run!(TallyDriver::new(apps), |d: TallyDriver| d.tenants.log),
        System::Zico => {
            // Tick-tock: the second tenant trails by half an iteration and
            // rounds are memory-coordinated (iteration barriers).
            let stagger = ws
                .tenants
                .get(1)
                .map(|t| t.model.solo_duration(CALIBRATION_PCIE).mul_f64(0.5))
                .unwrap_or(sim_core::SimDuration::ZERO);
            run!(ZicoDriver::new(apps, stagger), |d: ZicoDriver| d.log)
        }
        System::Iso => unreachable!("handled above"),
    };
    let events = sink.map(|s| s.take()).unwrap_or_default();
    (result, events)
}

/// Runs each tenant alone on its quota's MPS partition (the ISO target
/// measurement) and merges the logs.
fn run_iso(
    ws: &WorkloadSet,
    spec: &GpuSpec,
    horizon: SimTime,
    iso_targets: Vec<SimDuration>,
) -> RunResult {
    let mut merged = RequestLog::new(ws.len());
    let mut busy_total = 0.0;
    let mut makespan = SimTime::ZERO;
    let mut outcome = RunOutcome::Completed;

    // Use the *same* pre-generated arrival streams the co-located run
    // sees, so ISO latencies are measured on identical request timings.
    let all_arrivals = ws.initial_arrivals();
    for (i, tenant) in ws.tenants.iter().enumerate() {
        // A single-tenant workload preserving this tenant's pattern (the
        // closed-loop controller needs the think-time budget).
        let solo_ws = WorkloadSet::new(
            vec![TenantSpec::new(
                tenant.model.clone(),
                tenant.quota,
                tenant.pattern.clone(),
            )],
            ws.seed.wrapping_add(i as u64),
        );
        let arrivals: Vec<gpu_sim::RequestArrival> = all_arrivals
            .iter()
            .filter(|a| a.app == i)
            .map(|a| gpu_sim::RequestArrival { app: 0, ..*a })
            .collect();
        let apps = deployment(&solo_ws, spec, None);
        let driver = StaticShareDriver::new(apps, ShareMode::QuotaMps);
        let mut gpu = Gpu::new(spec.clone(), HostCosts::paper());
        gpu.set_slot_recycling(true);
        let mut sim =
            Simulation::new(gpu, driver, arrivals).with_notice_handler(solo_ws.notice_handler());
        let o = sim.run(horizon);
        if o != RunOutcome::Completed {
            outcome = o;
        }
        busy_total += sim.gpu.busy_sm_seconds();
        makespan = makespan.max(sim.gpu.now());
        for rec in sim.driver.log.records(0) {
            merged.arrived(i, rec.req, rec.arrival);
            if let Some(c) = rec.completion {
                merged.completed(i, rec.req, c);
            }
        }
    }

    let util = if makespan.as_secs_f64() > 0.0 {
        busy_total / (spec.num_sms as f64 * makespan.as_secs_f64())
    } else {
        0.0
    };
    RunResult {
        log: merged,
        iso_targets,
        utilization: util,
        outcome,
        makespan,
    }
}

/// Convenience wrapper: run a driver you constructed yourself (for
/// experiments that need driver internals such as squad logs).
pub fn run_custom<D: HostDriver>(
    driver: D,
    ws: &WorkloadSet,
    spec: &GpuSpec,
    horizon: SimTime,
) -> (D, RunOutcome, SimTime) {
    let (driver, outcome, now, _) =
        run_custom_faulted(driver, ws, spec, horizon, sim_core::FaultPlan::none());
    (driver, outcome, now)
}

/// [`run_custom`] with a deterministic [`sim_core::FaultPlan`] installed on
/// the device before the run; also returns the engine's fault counters.
/// `FaultPlan::none()` leaves the device byte-identical to an uninstalled
/// plan, so `run_custom` routes through here unchanged.
pub fn run_custom_faulted<D: HostDriver>(
    driver: D,
    ws: &WorkloadSet,
    spec: &GpuSpec,
    horizon: SimTime,
    plan: sim_core::FaultPlan,
) -> (D, RunOutcome, SimTime, gpu_sim::FaultCounters) {
    let mut gpu = Gpu::new(spec.clone(), HostCosts::paper());
    gpu.set_slot_recycling(true);
    gpu.set_fault_plan(plan);
    // Under `--trace`, custom runs (fault drills, squad labs) are captured
    // and checked against the structural invariants; fairness is skipped
    // since fault injection legitimately skews progress.
    let sink = if tracectl::enabled() {
        let s = BufferSink::new();
        gpu.set_trace_sink(Box::new(s.clone()));
        Some(s)
    } else {
        None
    };
    let mut sim = Simulation::new(gpu, driver, ws.initial_arrivals())
        .with_notice_handler(ws.notice_handler());
    let outcome = sim.run(horizon);
    let now = sim.gpu.now();
    let counters = sim.gpu.fault_counters();
    if let Some(s) = sink {
        let events = s.take();
        tracectl::export_and_validate("custom", spec.num_sms, None, &events);
    }
    (sim.driver, outcome, now, counters)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dnn_models::{ModelKind, Phase};
    use workloads::{pair_workload, PaperWorkload};

    fn ws() -> WorkloadSet {
        pair_workload(
            cache::model(ModelKind::Vgg11, Phase::Inference),
            cache::model(ModelKind::ResNet50, Phase::Inference),
            (0.5, 0.5),
            PaperWorkload::LowLoad,
            5,
            SimTime::from_secs(5),
            42,
        )
    }

    #[test]
    fn all_inference_systems_complete() {
        let spec = GpuSpec::a100();
        for sys in System::inference_set() {
            let r = run_system(&sys, &ws(), &spec, SimTime::from_secs(30), None);
            assert_eq!(r.outcome, RunOutcome::Completed, "{}", sys.name());
            assert_eq!(r.log.completed_count(0), 5, "{}", sys.name());
            assert_eq!(r.log.completed_count(1), 5, "{}", sys.name());
            assert!(r.mean_ms().is_finite());
            assert!(r.utilization > 0.0 && r.utilization <= 1.0);
        }
    }

    #[test]
    fn iso_runs_each_tenant_alone() {
        let spec = GpuSpec::a100();
        let r = run_system(&System::Iso, &ws(), &spec, SimTime::from_secs(30), None);
        assert_eq!(r.outcome, RunOutcome::Completed);
        // Solo closed-loop latency equals the quota's isolated latency
        // (within the launch-overhead noise).
        for app in 0..2 {
            let mean = r.log.stats(app).mean.unwrap().as_nanos() as f64;
            let target = r.iso_targets[app].as_nanos() as f64;
            assert!((mean - target).abs() / target < 0.10, "app {app}");
        }
    }

    #[test]
    fn bless_beats_gslice_on_low_load() {
        let spec = GpuSpec::a100();
        let bless = run_system(
            &System::Bless(BlessParams::default()),
            &ws(),
            &spec,
            SimTime::from_secs(30),
            None,
        );
        let gslice = run_system(&System::Gslice, &ws(), &spec, SimTime::from_secs(30), None);
        assert!(
            bless.mean_ms() < gslice.mean_ms(),
            "BLESS {} vs GSLICE {}",
            bless.mean_ms(),
            gslice.mean_ms()
        );
    }
}
