//! Global trace-capture control for the experiment harness.
//!
//! The `experiments` binary turns tracing on for every run with
//! `--trace [DIR]`; the runner then records each simulation into a
//! [`gpu_sim::BufferSink`], writes a Perfetto/Chrome JSON file into `DIR`, and
//! machine-checks the scheduler invariants with the
//! [`metrics::TraceValidator`]. The Perfetto file is written *before*
//! validation so that a CI failure still leaves the artifact behind for
//! inspection in <https://ui.perfetto.dev>.
//!
//! State is process-global (experiments fan out over worker threads); the
//! experiment label is thread-local so concurrent experiments name their
//! trace files correctly.

use std::cell::RefCell;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use gpu_sim::TraceEvent;
use metrics::{TraceValidator, ValidatorConfig};
use sim_core::SimDuration;

static TRACE_DIR: Mutex<Option<PathBuf>> = Mutex::new(None);
static FILE_COUNTER: AtomicU64 = AtomicU64::new(0);

thread_local! {
    static LABEL: RefCell<String> = const { RefCell::new(String::new()) };
}

/// Enables global trace capture, writing Perfetto JSON files into `dir`
/// (created if missing).
pub fn enable(dir: &Path) -> std::io::Result<()> {
    std::fs::create_dir_all(dir)?;
    if let Ok(mut d) = TRACE_DIR.lock() {
        *d = Some(dir.to_path_buf());
    }
    Ok(())
}

/// Whether global trace capture is on.
pub fn enabled() -> bool {
    TRACE_DIR.lock().map(|d| d.is_some()).unwrap_or(false)
}

/// Sets this thread's experiment label, used in trace file names.
pub fn set_label(label: &str) {
    let clean: String = label
        .chars()
        .map(|c| if c.is_ascii_alphanumeric() { c } else { '-' })
        .collect();
    LABEL.with(|l| *l.borrow_mut() = clean);
}

fn label() -> String {
    LABEL.with(|l| l.borrow().clone())
}

/// Writes `events` as Perfetto JSON under the trace dir; returns the path
/// (None when capture is off or the write failed).
pub fn write_perfetto(name: &str, events: &[TraceEvent]) -> Option<PathBuf> {
    let dir = TRACE_DIR.lock().ok()?.clone()?;
    let n = FILE_COUNTER.fetch_add(1, Ordering::Relaxed);
    let label = label();
    let stem = if label.is_empty() {
        format!("{name}-{n:03}")
    } else {
        format!("{label}-{name}-{n:03}")
    };
    let path = dir.join(format!("{stem}.json"));
    let json = crate::perfetto::export_chrome_trace(events);
    match std::fs::write(&path, json) {
        Ok(()) => Some(path),
        Err(e) => {
            eprintln!("warning: could not write trace {}: {e}", path.display());
            None
        }
    }
}

/// Exports `events` to Perfetto JSON (when capture is on) and replays them
/// through the [`TraceValidator`], panicking on any invariant violation.
///
/// `iso_targets` enables the relative-progress fairness check; pass `None`
/// for baselines and fault drills (structural invariants only).
pub fn export_and_validate(
    name: &str,
    num_sms: u32,
    iso_targets: Option<&[SimDuration]>,
    events: &[TraceEvent],
) {
    let path = write_perfetto(name, events);
    let config = ValidatorConfig {
        num_sms,
        iso_targets: iso_targets.map(|t| t.iter().map(|d| d.as_nanos() as f64).collect()),
        fairness_spread: None,
        max_recovery_ns: None,
    };
    let report = TraceValidator::new(config).validate(events);
    if !report.is_clean() {
        if let Some(p) = &path {
            eprintln!("trace with violations saved to {}", p.display());
        }
        report.assert_clean();
    }
}
