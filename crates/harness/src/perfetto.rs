//! Chrome/Perfetto `trace_event` JSON export of a scheduler trace.
//!
//! [`export_chrome_trace`] turns a [`TraceEvent`] stream into the legacy
//! Chrome JSON trace format, loadable directly in <https://ui.perfetto.dev>
//! (or `chrome://tracing`). The layout:
//!
//! * **Tenants** (pid 1) — one thread per tenant carrying its kernel
//!   executions as duration slices (`k<idx>`, restricted head kernels
//!   prefixed `r:`), plus instants for requests, mode shifts, crashes and
//!   retries.
//! * **Squads** (pid 2) — one slice per squad from formation to
//!   retirement, named `squad <id> SP|NSP`, with the determiner's
//!   prediction attached as arguments.
//! * **SM partitions** (pid 3) — one counter track per restricted
//!   context showing its MPS affinity cap over time.
//! * **SM allocation** (pid 4) — one counter track per tenant showing
//!   its aggregate SM share over time.
//!
//! Timestamps are microseconds with nanosecond precision (three decimal
//! places), rendered with integer math so export is byte-deterministic.

use std::collections::HashMap;

use sim_core::trace::TraceEvent;
use sim_core::SimTime;

const PID_TENANTS: u32 = 1;
const PID_SQUADS: u32 = 2;
const PID_PARTITIONS: u32 = 3;
const PID_ALLOC: u32 = 4;
const PID_FLEET: u32 = 5;

/// Formats a nanosecond instant as microseconds with three decimals.
fn us(t: SimTime) -> String {
    let ns = t.as_nanos();
    format!("{}.{:03}", ns / 1000, ns % 1000)
}

fn us_dur(ns: u64) -> String {
    format!("{}.{:03}", ns / 1000, ns % 1000)
}

/// One running kernel, from `KernelStart` to `KernelComplete`/`Failed`.
struct Open {
    app: u32,
    kernel: u32,
    queue: u32,
    restricted: bool,
    started: SimTime,
}

/// Renders `events` as a Chrome `trace_event` JSON document.
pub fn export_chrome_trace(events: &[TraceEvent]) -> String {
    let mut out = String::with_capacity(events.len() * 96 + 1024);
    out.push_str("{\"displayTimeUnit\":\"ns\",\"traceEvents\":[\n");
    let mut first = true;
    let mut push = |out: &mut String, line: &str| {
        if !std::mem::take(&mut first) {
            out.push_str(",\n");
        }
        out.push_str(line);
    };

    // seq -> launch info (app/kernel/queue/restricted), then -> open slice.
    let mut launched: HashMap<u64, (u32, u32, u32, bool)> = HashMap::new();
    let mut open: HashMap<u64, Open> = HashMap::new();
    // Per-app SM share (counter track 4) and per-ctx cap (track 3): only
    // emit samples on change.
    let mut alloc: HashMap<u64, (u32, f64)> = HashMap::new();
    let mut app_sms: HashMap<u32, f64> = HashMap::new();
    let mut squad_open: HashMap<u64, (SimTime, bool)> = HashMap::new();
    let mut seen_apps: Vec<u32> = Vec::new();
    let mut seen_ctxs: Vec<u32> = Vec::new();
    let last_at = events.last().map(|e| e.at()).unwrap_or(SimTime::ZERO);

    let counter_sample = |out: &mut String,
                          push: &mut dyn FnMut(&mut String, &str),
                          pid: u32,
                          name: &str,
                          at: SimTime,
                          value: f64| {
        push(
            out,
            &format!(
                "{{\"ph\":\"C\",\"pid\":{pid},\"tid\":0,\"ts\":{},\"name\":\"{name}\",\
                 \"args\":{{\"value\":{value}}}}}",
                us(at)
            ),
        );
    };

    // Re-emits the owning app's aggregate SM counter after `alloc` changed.
    macro_rules! app_counter {
        ($app:expr, $at:expr) => {{
            let app = $app;
            let total: f64 = alloc
                .values()
                .filter(|&&(a, _)| a == app)
                .map(|&(_, s)| s)
                .sum();
            if app_sms.get(&app) != Some(&total) {
                app_sms.insert(app, total);
                counter_sample(
                    &mut out,
                    &mut push,
                    PID_ALLOC,
                    &format!("app{app}.sms"),
                    $at,
                    total,
                );
            }
        }};
    }

    for ev in events {
        match ev {
            TraceEvent::KernelLaunch {
                seq,
                app,
                kernel,
                queue,
                restricted,
                ..
            } => {
                launched.insert(*seq, (*app, *kernel, *queue, *restricted));
                if !seen_apps.contains(app) {
                    seen_apps.push(*app);
                }
            }
            TraceEvent::KernelStart { at, seq, .. } => {
                if let Some(&(app, kernel, queue, restricted)) = launched.get(seq) {
                    open.insert(
                        *seq,
                        Open {
                            app,
                            kernel,
                            queue,
                            restricted,
                            started: *at,
                        },
                    );
                }
            }
            TraceEvent::SmAlloc { at, seq, sms, .. } => {
                let app = launched.get(seq).map(|&(a, ..)| a).unwrap_or(u32::MAX);
                alloc.insert(*seq, (app, *sms));
                app_counter!(app, *at);
            }
            TraceEvent::KernelComplete { at, seq, .. }
            | TraceEvent::KernelFailed { at, seq, .. } => {
                let failed = matches!(ev, TraceEvent::KernelFailed { .. });
                if let Some(o) = open.remove(seq) {
                    let dur = at.duration_since(o.started).as_nanos();
                    let prefix = if o.restricted { "r:" } else { "" };
                    let suffix = if failed { " FAILED" } else { "" };
                    push(
                        &mut out,
                        &format!(
                            "{{\"ph\":\"X\",\"pid\":{PID_TENANTS},\"tid\":{},\"ts\":{},\
                             \"dur\":{},\"name\":\"{prefix}k{}{suffix}\",\
                             \"args\":{{\"seq\":{seq},\"queue\":{}}}}}",
                            o.app,
                            us(o.started),
                            us_dur(dur),
                            o.kernel,
                            o.queue
                        ),
                    );
                }
                if let Some((app, _)) = alloc.remove(seq) {
                    app_counter!(app, *at);
                }
            }
            TraceEvent::CrashInjected {
                at,
                app,
                casualties,
            } => {
                push(
                    &mut out,
                    &format!(
                        "{{\"ph\":\"i\",\"s\":\"t\",\"pid\":{PID_TENANTS},\"tid\":{app},\
                         \"ts\":{},\"name\":\"crash ({casualties} killed)\"}}",
                        us(*at)
                    ),
                );
            }
            TraceEvent::DmaStall { at, factor, onset } => {
                let name = if *onset {
                    format!("dma stall /{factor}")
                } else {
                    "dma recovered".to_string()
                };
                push(
                    &mut out,
                    &format!(
                        "{{\"ph\":\"i\",\"s\":\"g\",\"pid\":{PID_SQUADS},\"tid\":0,\
                         \"ts\":{},\"name\":\"{name}\"}}",
                        us(*at)
                    ),
                );
            }
            TraceEvent::PartitionSet { at, ctx, sm_cap } => {
                if !seen_ctxs.contains(ctx) {
                    seen_ctxs.push(*ctx);
                }
                counter_sample(
                    &mut out,
                    &mut push,
                    PID_PARTITIONS,
                    &format!("ctx{ctx}.cap"),
                    *at,
                    *sm_cap as f64,
                );
            }
            TraceEvent::PartitionReleased { at, ctx } => {
                counter_sample(
                    &mut out,
                    &mut push,
                    PID_PARTITIONS,
                    &format!("ctx{ctx}.cap"),
                    *at,
                    0.0,
                );
            }
            TraceEvent::RequestArrival { at, app, req } => {
                push(
                    &mut out,
                    &format!(
                        "{{\"ph\":\"i\",\"s\":\"t\",\"pid\":{PID_TENANTS},\"tid\":{app},\
                         \"ts\":{},\"name\":\"req {req} arrive\"}}",
                        us(*at)
                    ),
                );
            }
            TraceEvent::RequestDone { at, app, req } => {
                push(
                    &mut out,
                    &format!(
                        "{{\"ph\":\"i\",\"s\":\"t\",\"pid\":{PID_TENANTS},\"tid\":{app},\
                         \"ts\":{},\"name\":\"req {req} done\"}}",
                        us(*at)
                    ),
                );
            }
            TraceEvent::SquadFormed {
                at, id, spatial, ..
            } => {
                // Squad slices are closed by SquadRetired below; remember
                // the opening edge via the launched map keyed off a squad
                // namespace that cannot collide with kernel seqs (which
                // start at 1): use a dedicated map instead.
                squad_open.insert(*id, (*at, *spatial));
            }
            TraceEvent::SquadRetired { at, id } => {
                if let Some((t0, spatial)) = squad_open.remove(id) {
                    let dur = at.duration_since(t0).as_nanos();
                    let kind = if spatial { "SP" } else { "NSP" };
                    push(
                        &mut out,
                        &format!(
                            "{{\"ph\":\"X\",\"pid\":{PID_SQUADS},\"tid\":0,\"ts\":{},\
                             \"dur\":{},\"name\":\"squad {id} {kind}\"}}",
                            us(t0),
                            us_dur(dur)
                        ),
                    );
                }
            }
            TraceEvent::ConfigChosen {
                at,
                squad,
                spatial,
                predicted_ns,
                evaluated,
            } => {
                let kind = if *spatial { "SP" } else { "NSP" };
                push(
                    &mut out,
                    &format!(
                        "{{\"ph\":\"i\",\"s\":\"t\",\"pid\":{PID_SQUADS},\"tid\":0,\"ts\":{},\
                         \"name\":\"config {kind} for squad {squad}\",\
                         \"args\":{{\"predicted_ns\":{predicted_ns},\"evaluated\":{evaluated}}}}}",
                        us(*at)
                    ),
                );
            }
            TraceEvent::ModeShift { at, app, from, to } => {
                push(
                    &mut out,
                    &format!(
                        "{{\"ph\":\"i\",\"s\":\"t\",\"pid\":{PID_TENANTS},\"tid\":{app},\
                         \"ts\":{},\"name\":\"mode {} -> {}\"}}",
                        us(*at),
                        mode_name(*from),
                        mode_name(*to)
                    ),
                );
            }
            TraceEvent::RetrySubmitted { at, app, kernel } => {
                push(
                    &mut out,
                    &format!(
                        "{{\"ph\":\"i\",\"s\":\"t\",\"pid\":{PID_TENANTS},\"tid\":{app},\
                         \"ts\":{},\"name\":\"retry k{kernel}\"}}",
                        us(*at)
                    ),
                );
            }
            TraceEvent::DeviceFailed { at, gpu, permanent } => {
                let kind = if *permanent { "died" } else { "hang" };
                push(
                    &mut out,
                    &format!(
                        "{{\"ph\":\"i\",\"s\":\"g\",\"pid\":{PID_FLEET},\"tid\":{gpu},\
                         \"ts\":{},\"name\":\"gpu {gpu} {kind}\"}}",
                        us(*at)
                    ),
                );
            }
            TraceEvent::TenantEvacuated {
                at,
                gpu,
                app,
                in_flight,
                queued,
            } => {
                push(
                    &mut out,
                    &format!(
                        "{{\"ph\":\"i\",\"s\":\"t\",\"pid\":{PID_FLEET},\"tid\":{gpu},\
                         \"ts\":{},\"name\":\"evacuate tenant {app}\",\
                         \"args\":{{\"in_flight\":{in_flight},\"queued\":{queued}}}}}",
                        us(*at)
                    ),
                );
            }
            TraceEvent::TenantRestored {
                at,
                gpu,
                app,
                recovery_ns,
            } => {
                push(
                    &mut out,
                    &format!(
                        "{{\"ph\":\"i\",\"s\":\"t\",\"pid\":{PID_FLEET},\"tid\":{gpu},\
                         \"ts\":{},\"name\":\"restore tenant {app}\",\
                         \"args\":{{\"recovery_ns\":{recovery_ns}}}}}",
                        us(*at)
                    ),
                );
            }
            TraceEvent::MigrationFailed { at, app, reason } => {
                let why = migration_reason(*reason);
                push(
                    &mut out,
                    &format!(
                        "{{\"ph\":\"i\",\"s\":\"g\",\"pid\":{PID_FLEET},\"tid\":0,\
                         \"ts\":{},\"name\":\"tenant {app} stranded: {why}\"}}",
                        us(*at)
                    ),
                );
            }
            TraceEvent::RequestAdmitted { at, app, req, seq } => {
                push(
                    &mut out,
                    &format!(
                        "{{\"ph\":\"i\",\"s\":\"t\",\"pid\":{PID_TENANTS},\"tid\":{app},\
                         \"ts\":{},\"name\":\"admit req {req}\",\"args\":{{\"seq\":{seq}}}}}",
                        us(*at)
                    ),
                );
            }
            TraceEvent::RequestShed {
                at,
                app,
                seq,
                reason,
            } => {
                let why = if *reason == 0 {
                    "rate limit"
                } else {
                    "backpressure"
                };
                push(
                    &mut out,
                    &format!(
                        "{{\"ph\":\"i\",\"s\":\"t\",\"pid\":{PID_TENANTS},\"tid\":{app},\
                         \"ts\":{},\"name\":\"shed seq {seq}: {why}\"}}",
                        us(*at)
                    ),
                );
            }
            TraceEvent::BackpressureOn {
                at,
                app,
                outstanding,
            } => {
                push(
                    &mut out,
                    &format!(
                        "{{\"ph\":\"i\",\"s\":\"t\",\"pid\":{PID_TENANTS},\"tid\":{app},\
                         \"ts\":{},\"name\":\"backpressure on\",\
                         \"args\":{{\"outstanding\":{outstanding}}}}}",
                        us(*at)
                    ),
                );
            }
            TraceEvent::BackpressureOff { at, app } => {
                push(
                    &mut out,
                    &format!(
                        "{{\"ph\":\"i\",\"s\":\"t\",\"pid\":{PID_TENANTS},\"tid\":{app},\
                         \"ts\":{},\"name\":\"backpressure off\"}}",
                        us(*at)
                    ),
                );
            }
        }
    }

    // Kernels still running at trace end: close them at the last instant
    // so the work is visible rather than silently dropped.
    let mut tail: Vec<(u64, Open)> = open.into_iter().collect();
    tail.sort_by_key(|&(seq, _)| seq);
    for (seq, o) in tail {
        let dur = last_at.duration_since(o.started).as_nanos();
        let prefix = if o.restricted { "r:" } else { "" };
        push(
            &mut out,
            &format!(
                "{{\"ph\":\"X\",\"pid\":{PID_TENANTS},\"tid\":{},\"ts\":{},\"dur\":{},\
                 \"name\":\"{prefix}k{} (unfinished)\",\"args\":{{\"seq\":{seq},\"queue\":{}}}}}",
                o.app,
                us(o.started),
                us_dur(dur),
                o.kernel,
                o.queue
            ),
        );
    }

    // Track metadata so Perfetto shows meaningful names.
    for (pid, name) in [
        (PID_TENANTS, "Tenants"),
        (PID_SQUADS, "Squads"),
        (PID_PARTITIONS, "SM partitions"),
        (PID_ALLOC, "SM allocation"),
        (PID_FLEET, "Fleet"),
    ] {
        push(
            &mut out,
            &format!(
                "{{\"ph\":\"M\",\"pid\":{pid},\"tid\":0,\"name\":\"process_name\",\
                 \"args\":{{\"name\":\"{name}\"}}}}"
            ),
        );
    }
    seen_apps.sort_unstable();
    for app in seen_apps {
        push(
            &mut out,
            &format!(
                "{{\"ph\":\"M\",\"pid\":{PID_TENANTS},\"tid\":{app},\"name\":\"thread_name\",\
                 \"args\":{{\"name\":\"tenant {app}\"}}}}"
            ),
        );
    }

    out.push_str("\n]}\n");
    out
}

fn mode_name(code: u8) -> &'static str {
    match code {
        0 => "semi-spatial",
        1 => "strict-spatial",
        _ => "temporal",
    }
}

fn migration_reason(code: u8) -> &'static str {
    match code {
        0 => "no capacity",
        1 => "source dead",
        _ => "unknown",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exports_slices_counters_and_metadata() {
        let t = SimTime::from_nanos;
        let ev = vec![
            TraceEvent::KernelLaunch {
                at: t(0),
                seq: 1,
                app: 0,
                kernel: 3,
                queue: 0,
                restricted: true,
            },
            TraceEvent::KernelStart {
                at: t(1500),
                seq: 1,
                queue: 0,
            },
            TraceEvent::SmAlloc {
                at: t(1500),
                seq: 1,
                sms: 54.0,
            },
            TraceEvent::KernelComplete {
                at: t(4500),
                seq: 1,
                queue: 0,
            },
            TraceEvent::PartitionSet {
                at: t(0),
                ctx: 2,
                sm_cap: 54,
            },
        ];
        let json = export_chrome_trace(&ev);
        assert!(json.contains("\"name\":\"r:k3\""));
        assert!(json.contains("\"ts\":1.500"));
        assert!(json.contains("\"dur\":3.000"));
        assert!(json.contains("\"name\":\"ctx2.cap\""));
        assert!(json.contains("\"name\":\"app0.sms\""));
        assert!(json.contains("\"process_name\""));
        // The document is plausible JSON: balanced braces, ends with ]}.
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count(),
            "balanced braces"
        );
        assert!(json.trim_end().ends_with("]}"));
    }
}
