//! Property tests for the SPSC ingest rings (`sim_core::spsc`), pinning
//! the correctness contract stated in the module docs:
//!
//! * FIFO per producer — items pop in push order,
//! * no loss under wraparound — a full ring rejects, never drops,
//! * batched drain ≡ one-at-a-time pop — identical sequences for any
//!   interleaving of the two consumption styles.

#![allow(clippy::unwrap_used, clippy::expect_used)] // test code

use proptest::prelude::*;
use sim_core::spsc;

/// Replays a push/pop script against a ring of `capacity` slots and a
/// model VecDeque, returning every popped item in order. `ops` alternate:
/// positive = push that many sequential items, zero/negative = pop that
/// many (saturating at empty). `batched` selects `drain_into` over `pop`.
fn replay(capacity: usize, ops: &[i32], batch: usize) -> (Vec<u64>, Vec<u64>) {
    let (mut p, mut c) = spsc::ring::<u64>(capacity);
    let mut model: std::collections::VecDeque<u64> = std::collections::VecDeque::new();
    let mut next = 0u64;
    let mut popped = Vec::new();
    let mut expected = Vec::new();
    let mut buf = Vec::with_capacity(batch.max(1));
    for &op in ops {
        if op > 0 {
            for _ in 0..op {
                match p.push(next) {
                    Ok(()) => {
                        model.push_back(next);
                        next += 1;
                    }
                    Err(v) => {
                        // Full ring: the exact rejected item comes back,
                        // and the model must agree the ring was full.
                        assert_eq!(v, next, "rejected item differs from pushed item");
                        assert_eq!(model.len(), c.capacity(), "rejection while not full");
                    }
                }
            }
        } else {
            let want = (-op) as usize;
            if batch > 0 {
                let mut got = 0;
                while got < want {
                    buf.clear();
                    let n = c.drain_into(&mut buf, batch.min(want - got));
                    if n == 0 {
                        break;
                    }
                    popped.extend_from_slice(&buf);
                    got += n;
                }
                for _ in 0..got {
                    expected.push(model.pop_front().unwrap());
                }
            } else {
                for _ in 0..want {
                    match c.pop() {
                        Some(v) => {
                            popped.push(v);
                            expected.push(model.pop_front().unwrap());
                        }
                        None => break,
                    }
                }
            }
        }
    }
    // Drain the tail so every surviving item is observed.
    while let Some(v) = c.pop() {
        popped.push(v);
        expected.push(model.pop_front().unwrap());
    }
    assert!(model.is_empty(), "ring lost {} items", model.len());
    (popped, expected)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// FIFO per producer and no loss under wraparound: any script of
    /// pushes and pops against any (tiny, wrap-heavy) capacity yields
    /// exactly the model queue's sequence.
    #[test]
    fn prop_fifo_and_no_loss(
        capacity in 1usize..20,
        ops in proptest::collection::vec(-12i32..12, 1..60),
    ) {
        let (popped, expected) = replay(capacity, &ops, 0);
        prop_assert_eq!(popped, expected);
    }

    /// Batched drain is observationally identical to one-at-a-time pop:
    /// the same script consumed via `drain_into` (any batch size) yields
    /// the same item sequence as `pop`.
    #[test]
    fn prop_batched_drain_equals_pop(
        capacity in 1usize..20,
        batch in 1usize..16,
        ops in proptest::collection::vec(-12i32..12, 1..60),
    ) {
        let (via_pop, expected_pop) = replay(capacity, &ops, 0);
        let (via_drain, expected_drain) = replay(capacity, &ops, batch);
        prop_assert_eq!(&via_pop, &expected_pop);
        prop_assert_eq!(&via_drain, &expected_drain);
        prop_assert_eq!(via_pop, via_drain);
    }

    /// Watermarks are monotone regardless of the mark script, and closing
    /// is terminal.
    #[test]
    fn prop_watermark_monotone(
        marks in proptest::collection::vec(0u64..1000, 0..40),
    ) {
        let (p, c) = spsc::ring::<u8>(4);
        let mut high = 0u64;
        for &m in &marks {
            p.set_watermark(m);
            high = high.max(m);
            prop_assert_eq!(c.watermark(), high);
        }
        p.close();
        prop_assert!(c.is_closed());
        prop_assert_eq!(c.watermark(), u64::MAX);
    }
}
