//! Simulated time with nanosecond resolution.
//!
//! [`SimTime`] is an absolute instant on the simulation clock and
//! [`SimDuration`] is a span between two instants. Both are thin wrappers
//! around `u64` nanoseconds so that arithmetic is exact; floating point is
//! only used at the edges (duration models) and converted once.

use core::fmt;
use core::iter::Sum;
use core::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// An absolute instant on the simulation clock, in nanoseconds since start.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of simulated time, in nanoseconds.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimTime {
    /// The simulation epoch (t = 0).
    pub const ZERO: SimTime = SimTime(0);
    /// The largest representable instant; used as an "infinite" sentinel.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Builds an instant from raw nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimTime(ns)
    }

    /// Builds an instant from microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us * 1_000)
    }

    /// Builds an instant from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000_000)
    }

    /// Builds an instant from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * 1_000_000_000)
    }

    /// Raw nanoseconds since the simulation epoch.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Seconds since the simulation epoch, as a float (for reporting only).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Milliseconds since the simulation epoch, as a float.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// The duration elapsed since `earlier`.
    ///
    /// # Panics
    ///
    /// Panics if `earlier` is later than `self`; simulation clocks never run
    /// backwards, so this indicates a logic error.
    pub fn duration_since(self, earlier: SimTime) -> SimDuration {
        match self.0.checked_sub(earlier.0) {
            Some(ns) => SimDuration(ns),
            None => panic!("SimTime::duration_since: earlier is after self"),
        }
    }

    /// The duration since `earlier`, or zero if `earlier` is in the future.
    pub fn saturating_duration_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Adds a duration, saturating at [`SimTime::MAX`].
    pub fn saturating_add(self, d: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(d.0))
    }
}

impl SimDuration {
    /// The zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);
    /// The largest representable duration; used as an "infinite" sentinel.
    pub const MAX: SimDuration = SimDuration(u64::MAX);

    /// Builds a duration from raw nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimDuration(ns)
    }

    /// Builds a duration from microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us * 1_000)
    }

    /// Builds a duration from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000_000)
    }

    /// Builds a duration from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000_000)
    }

    /// Builds a duration from fractional seconds, rounding to nanoseconds.
    ///
    /// Negative and non-finite inputs clamp to zero; durations cannot be
    /// negative in the simulator.
    pub fn from_secs_f64(s: f64) -> Self {
        if !s.is_finite() || s <= 0.0 {
            return SimDuration::ZERO;
        }
        SimDuration((s * 1e9).round().min(u64::MAX as f64) as u64)
    }

    /// Builds a duration from fractional milliseconds (clamping like
    /// [`SimDuration::from_secs_f64`]).
    pub fn from_millis_f64(ms: f64) -> Self {
        Self::from_secs_f64(ms / 1e3)
    }

    /// Builds a duration from fractional microseconds (clamping like
    /// [`SimDuration::from_secs_f64`]).
    pub fn from_micros_f64(us: f64) -> Self {
        Self::from_secs_f64(us / 1e6)
    }

    /// Raw nanoseconds.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// The duration in seconds, as a float (for rate math and reporting).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// The duration in milliseconds, as a float.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// The duration in microseconds, as a float.
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1e3
    }

    /// True if this is the zero duration.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Scales the duration by a non-negative factor, rounding to nanoseconds.
    pub fn mul_f64(self, factor: f64) -> SimDuration {
        debug_assert!(factor >= 0.0, "durations cannot be negative");
        SimDuration::from_secs_f64(self.as_secs_f64() * factor)
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }

    /// Returns the larger of two durations.
    pub fn max(self, other: SimDuration) -> SimDuration {
        if self.0 >= other.0 {
            self
        } else {
            other
        }
    }

    /// Returns the smaller of two durations.
    pub fn min(self, other: SimDuration) -> SimDuration {
        if self.0 <= other.0 {
            self
        } else {
            other
        }
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        match self.0.checked_add(rhs.0) {
            Some(ns) => SimTime(ns),
            None => panic!("SimTime overflow"),
        }
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        self.duration_since(rhs)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        match self.0.checked_add(rhs.0) {
            Some(ns) => SimDuration(ns),
            None => panic!("SimDuration overflow"),
        }
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        match self.0.checked_sub(rhs.0) {
            Some(ns) => SimDuration(ns),
            None => panic!("SimDuration underflow; use saturating_sub"),
        }
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        *self = *self - rhs;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        match self.0.checked_mul(rhs) {
            Some(ns) => SimDuration(ns),
            None => panic!("SimDuration overflow"),
        }
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl Sum for SimDuration {
    fn sum<I: Iterator<Item = SimDuration>>(iter: I) -> SimDuration {
        iter.fold(SimDuration::ZERO, Add::add)
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t+{:.3}ms", self.as_millis_f64())
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

impl fmt::Debug for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 < 1_000 {
            write!(f, "{}ns", self.0)
        } else if self.0 < 1_000_000 {
            write!(f, "{:.2}us", self.0 as f64 / 1e3)
        } else if self.0 < 1_000_000_000 {
            write!(f, "{:.3}ms", self.as_millis_f64())
        } else {
            write!(f, "{:.3}s", self.as_secs_f64())
        }
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_round_trips() {
        assert_eq!(SimTime::from_micros(3).as_nanos(), 3_000);
        assert_eq!(SimTime::from_millis(7).as_nanos(), 7_000_000);
        assert_eq!(SimDuration::from_secs(2).as_nanos(), 2_000_000_000);
        assert_eq!(SimDuration::from_millis(1).as_micros_f64(), 1_000.0);
    }

    #[test]
    fn arithmetic_is_exact() {
        let t = SimTime::from_micros(10) + SimDuration::from_micros(5);
        assert_eq!(t.as_nanos(), 15_000);
        assert_eq!((t - SimTime::from_micros(10)).as_nanos(), 5_000);
        let d = SimDuration::from_micros(9) - SimDuration::from_micros(4);
        assert_eq!(d.as_nanos(), 5_000);
    }

    #[test]
    #[should_panic(expected = "earlier is after self")]
    fn duration_since_panics_on_backwards_time() {
        let _ = SimTime::from_nanos(1).duration_since(SimTime::from_nanos(2));
    }

    #[test]
    fn saturating_ops_clamp() {
        let d = SimDuration::from_nanos(3).saturating_sub(SimDuration::from_nanos(5));
        assert!(d.is_zero());
        let t = SimTime::from_nanos(1).saturating_duration_since(SimTime::from_nanos(9));
        assert!(t.is_zero());
        assert_eq!(
            SimTime::MAX.saturating_add(SimDuration::from_nanos(1)),
            SimTime::MAX
        );
    }

    #[test]
    fn float_conversions_clamp_bad_inputs() {
        assert_eq!(SimDuration::from_secs_f64(-1.0), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(f64::NAN), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(f64::INFINITY), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(1.5e-9).as_nanos(), 2);
    }

    #[test]
    fn display_uses_adaptive_units() {
        assert_eq!(format!("{}", SimDuration::from_nanos(12)), "12ns");
        assert_eq!(format!("{}", SimDuration::from_micros(3)), "3.00us");
        assert_eq!(format!("{}", SimDuration::from_millis(8)), "8.000ms");
        assert_eq!(format!("{}", SimDuration::from_secs(2)), "2.000s");
    }

    #[test]
    fn sum_and_scale() {
        let total: SimDuration = [1u64, 2, 3]
            .iter()
            .map(|&ms| SimDuration::from_millis(ms))
            .sum();
        assert_eq!(total, SimDuration::from_millis(6));
        assert_eq!(total.mul_f64(0.5), SimDuration::from_millis(3));
        assert_eq!(total / 2, SimDuration::from_millis(3));
        assert_eq!(total * 2, SimDuration::from_millis(12));
    }
}
