//! Deterministic fault-injection plans.
//!
//! The scheduler experiments in this repo assume offline profiles are exact
//! and device contexts never die. A [`FaultPlan`] lets an experiment relax
//! those assumptions *deterministically*: the plan is expanded from a
//! [`FaultSpec`] and a 64-bit seed using [`SimRng`], so the same
//! `(seed, spec)` pair always yields a byte-identical fault schedule and —
//! because the simulator itself is deterministic — a byte-identical run.
//!
//! Six fault classes are modeled (see DESIGN.md "Fault model"):
//!
//! * **Stragglers** — an individual kernel runs `straggler_factor`× its
//!   profiled duration (decided per launch with `straggler_prob`).
//! * **Profile drift** — an application's kernels are *systematically*
//!   mis-predicted: every launch is scaled by a per-app factor drawn once
//!   at plan-build time.
//! * **Context crashes** — at a scheduled instant every live kernel of one
//!   victim application fails and must be re-submitted by the host.
//! * **DMA stalls** — during a scheduled window the copy engine's bandwidth
//!   is divided by `dma_slow_factor`.
//! * **GPU failures** — a whole device dies permanently at a scheduled
//!   instant; its tenants must be evacuated by a fleet controller.
//! * **GPU hangs** — a device freezes for a scheduled window and comes
//!   back; pending work rides out the outage on the same device.
//!
//! The GPU-level classes are *fleet* faults: a single-device simulation
//! ignores them, and the cluster chaos runner (`cluster::chaos`) consumes
//! the schedules. Their RNG streams are forked after every device-level
//! stream, so enabling GPU faults never perturbs the straggler, drift,
//! crash, or DMA schedules of the same seed.
//!
//! [`FaultPlan::none`] is the identity plan: installing it draws nothing
//! from any RNG and leaves the simulation bit-for-bit unchanged.

use crate::rng::SimRng;
use crate::time::{SimDuration, SimTime};

/// Declarative description of which faults to inject and how hard.
///
/// A spec is pure data; expand it into a concrete schedule with
/// [`FaultPlan::build`]. The [`Default`] spec injects nothing.
#[derive(Clone, Debug, PartialEq)]
pub struct FaultSpec {
    /// Number of applications in the workload. Crash victims and drift
    /// factors are drawn per application index in `0..num_apps`.
    pub num_apps: u32,
    /// Probability that any individual kernel launch becomes a straggler.
    pub straggler_prob: f64,
    /// Duration multiplier applied to straggler kernels (`> 1.0` slows).
    pub straggler_factor: f64,
    /// Probability that each application's profile drifts.
    pub drift_prob: f64,
    /// Uniform range the per-app drift factor is drawn from.
    pub drift_range: (f64, f64),
    /// Number of context crashes to schedule.
    pub crash_count: u32,
    /// Half-open window `[start, end)` crash instants are drawn from.
    pub crash_window: (SimTime, SimTime),
    /// Number of DMA stall windows to schedule.
    pub dma_stall_count: u32,
    /// Half-open window `[start, end)` stall onsets are drawn from.
    pub dma_stall_window: (SimTime, SimTime),
    /// Length of each DMA stall window.
    pub dma_stall_len: SimDuration,
    /// Copy-bandwidth divisor while a stall is active (`> 1.0` slows).
    pub dma_slow_factor: f64,
    /// Number of GPUs in the fleet. GPU-fault victims are drawn per device
    /// index in `0..num_gpus`; device-level plans may leave this 0.
    pub num_gpus: u32,
    /// Number of permanent device failures to schedule (at most one per
    /// device survives deduplication).
    pub gpu_fail_count: u32,
    /// Half-open window `[start, end)` failure instants are drawn from.
    pub gpu_fail_window: (SimTime, SimTime),
    /// Number of transient device hangs to schedule.
    pub gpu_hang_count: u32,
    /// Half-open window `[start, end)` hang onsets are drawn from.
    pub gpu_hang_window: (SimTime, SimTime),
    /// Length of each device hang.
    pub gpu_hang_len: SimDuration,
}

impl Default for FaultSpec {
    fn default() -> Self {
        FaultSpec {
            num_apps: 0,
            straggler_prob: 0.0,
            straggler_factor: 1.0,
            drift_prob: 0.0,
            drift_range: (1.0, 1.0),
            crash_count: 0,
            crash_window: (SimTime::ZERO, SimTime::ZERO),
            dma_stall_count: 0,
            dma_stall_window: (SimTime::ZERO, SimTime::ZERO),
            dma_stall_len: SimDuration::ZERO,
            dma_slow_factor: 1.0,
            num_gpus: 0,
            gpu_fail_count: 0,
            gpu_fail_window: (SimTime::ZERO, SimTime::ZERO),
            gpu_hang_count: 0,
            gpu_hang_window: (SimTime::ZERO, SimTime::ZERO),
            gpu_hang_len: SimDuration::ZERO,
        }
    }
}

/// A scheduled permanent device failure: at `at`, GPU `gpu` dies and never
/// comes back; a fleet controller must evacuate its tenants.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct GpuFailEvent {
    /// Instant the device dies.
    pub at: SimTime,
    /// Fleet device index.
    pub gpu: u32,
}

/// A scheduled transient device hang: in `[at, until)` GPU `gpu` freezes;
/// at `until` it restarts and pending work can resume on it.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct GpuHangEvent {
    /// Hang onset.
    pub at: SimTime,
    /// Instant the device comes back.
    pub until: SimTime,
    /// Fleet device index.
    pub gpu: u32,
}

/// A scheduled context crash: at `at`, every live kernel of application
/// `app` fails and must be re-submitted by the host.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CrashEvent {
    /// Instant the crash fires.
    pub at: SimTime,
    /// Victim application index (the low bits of the kernel tag).
    pub app: u32,
}

/// A scheduled DMA stall: in `[at, until)` copy bandwidth is divided by
/// `factor`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DmaStallEvent {
    /// Stall onset.
    pub at: SimTime,
    /// Stall end (bandwidth recovers here).
    pub until: SimTime,
    /// Bandwidth divisor while the stall is active.
    pub factor: f64,
}

/// A concrete, fully deterministic fault schedule.
///
/// Built once per run from `(seed, spec)`; the precomputed crash/stall
/// schedules plus the carried RNG for online straggler draws make the whole
/// fault stream a pure function of the seed. Two plans compare equal iff
/// they would inject exactly the same faults at the same instants.
#[derive(Clone, Debug, PartialEq)]
pub struct FaultPlan {
    straggler_prob: f64,
    straggler_factor: f64,
    /// Per-app duration multiplier from profile drift (1.0 = faithful).
    drift: Vec<f64>,
    crashes: Vec<CrashEvent>,
    dma_stalls: Vec<DmaStallEvent>,
    gpu_failures: Vec<GpuFailEvent>,
    gpu_hangs: Vec<GpuHangEvent>,
    /// Online stream for per-launch straggler decisions.
    rng: SimRng,
}

impl FaultPlan {
    /// The identity plan: injects nothing and draws nothing from any RNG.
    ///
    /// A simulation with `FaultPlan::none()` installed is bit-for-bit
    /// identical to one with no plan at all.
    pub fn none() -> Self {
        FaultPlan {
            straggler_prob: 0.0,
            straggler_factor: 1.0,
            drift: Vec::new(),
            crashes: Vec::new(),
            dma_stalls: Vec::new(),
            gpu_failures: Vec::new(),
            gpu_hangs: Vec::new(),
            rng: SimRng::new(0),
        }
    }

    /// Expands `spec` into a concrete schedule using a generator seeded
    /// with `seed`. Same `(seed, spec)` ⇒ identical plan, always.
    pub fn build(seed: u64, spec: &FaultSpec) -> Self {
        let mut master = SimRng::new(seed);

        // Per-app drift factors, one draw pair per app so adding crash or
        // stall knobs never perturbs the drift stream.
        let mut drift_rng = master.fork(0x0D12_F7D1);
        let drift: Vec<f64> = (0..spec.num_apps)
            .map(|_| {
                let hit = drift_rng.chance(spec.drift_prob);
                let f = drift_rng.uniform(spec.drift_range.0, spec.drift_range.1);
                if hit {
                    f
                } else {
                    1.0
                }
            })
            .collect();

        // Crash schedule: instants uniform in the window, victims uniform
        // over the app population. Sorted so consumers can walk it in time
        // order; ties keep draw order (stable sort).
        let mut crash_rng = master.fork(0x0C4A_5A1E);
        let mut crashes: Vec<CrashEvent> = (0..spec.crash_count)
            .filter(|_| spec.num_apps > 0)
            .map(|_| {
                let at = draw_instant(&mut crash_rng, spec.crash_window);
                let app = crash_rng.next_below(u64::from(spec.num_apps)) as u32;
                CrashEvent { at, app }
            })
            .collect();
        crashes.sort_by_key(|c| c.at);

        // DMA stall windows, also time-sorted.
        let mut stall_rng = master.fork(0x0D3A_57A1);
        let mut dma_stalls: Vec<DmaStallEvent> = (0..spec.dma_stall_count)
            .map(|_| {
                let at = draw_instant(&mut stall_rng, spec.dma_stall_window);
                DmaStallEvent {
                    at,
                    until: at + spec.dma_stall_len,
                    factor: spec.dma_slow_factor.max(1.0),
                }
            })
            .collect();
        dma_stalls.sort_by_key(|s| s.at);

        // The online straggler stream keeps its historical fork position:
        // everything below is forked *after* it, so plans that only add
        // GPU-level faults replay the exact same device-level schedule.
        let straggler_rng = master.fork(0x57A6_61E5);

        // Permanent device failures: at most one per device (a dead GPU
        // cannot die again), keeping the earliest draw per victim.
        let mut fail_rng = master.fork(0x06FA_DEAD);
        let mut gpu_failures: Vec<GpuFailEvent> = (0..spec.gpu_fail_count)
            .filter(|_| spec.num_gpus > 0)
            .map(|_| {
                let at = draw_instant(&mut fail_rng, spec.gpu_fail_window);
                let gpu = fail_rng.next_below(u64::from(spec.num_gpus)) as u32;
                GpuFailEvent { at, gpu }
            })
            .collect();
        gpu_failures.sort_by_key(|f| f.at);
        let mut seen = vec![false; spec.num_gpus as usize];
        gpu_failures.retain(|f| !std::mem::replace(&mut seen[f.gpu as usize], true));

        // Transient device hangs, time-sorted.
        let mut hang_rng = master.fork(0x06FA_4A16);
        let mut gpu_hangs: Vec<GpuHangEvent> = (0..spec.gpu_hang_count)
            .filter(|_| spec.num_gpus > 0)
            .map(|_| {
                let at = draw_instant(&mut hang_rng, spec.gpu_hang_window);
                let gpu = hang_rng.next_below(u64::from(spec.num_gpus)) as u32;
                GpuHangEvent {
                    at,
                    until: at + spec.gpu_hang_len,
                    gpu,
                }
            })
            .collect();
        gpu_hangs.sort_by_key(|h| h.at);

        FaultPlan {
            straggler_prob: spec.straggler_prob,
            straggler_factor: spec.straggler_factor.max(1.0),
            drift,
            crashes,
            dma_stalls,
            gpu_failures,
            gpu_hangs,
            rng: straggler_rng,
        }
    }

    /// True if this plan injects nothing (the [`FaultPlan::none`] case or a
    /// spec whose every knob is off).
    pub fn is_none(&self) -> bool {
        self.straggler_prob <= 0.0
            && self.crashes.is_empty()
            && self.dma_stalls.is_empty()
            && self.gpu_failures.is_empty()
            && self.gpu_hangs.is_empty()
            && self.drift.iter().all(|&f| f == 1.0)
    }

    /// Duration multiplier for the next launch of a kernel belonging to
    /// `app`: systematic drift times an online straggler draw.
    ///
    /// Consumes RNG state only when `straggler_prob > 0`, so drift-only
    /// plans stay insensitive to launch count.
    pub fn work_multiplier(&mut self, app: u32) -> f64 {
        let drift = self.drift.get(app as usize).copied().unwrap_or(1.0);
        let straggle = if self.straggler_prob > 0.0 && self.rng.chance(self.straggler_prob) {
            self.straggler_factor
        } else {
            1.0
        };
        drift * straggle
    }

    /// The time-sorted context-crash schedule.
    pub fn crashes(&self) -> &[CrashEvent] {
        &self.crashes
    }

    /// The time-sorted DMA-stall schedule.
    pub fn dma_stalls(&self) -> &[DmaStallEvent] {
        &self.dma_stalls
    }

    /// The time-sorted permanent device-failure schedule (at most one
    /// entry per device).
    pub fn gpu_failures(&self) -> &[GpuFailEvent] {
        &self.gpu_failures
    }

    /// The time-sorted transient device-hang schedule.
    pub fn gpu_hangs(&self) -> &[GpuHangEvent] {
        &self.gpu_hangs
    }

    /// The systematic drift factor for `app` (1.0 if the app is unknown or
    /// un-drifted). Useful for reports.
    pub fn drift_factor(&self, app: u32) -> f64 {
        self.drift.get(app as usize).copied().unwrap_or(1.0)
    }
}

/// Uniform instant in the half-open window, degenerating gracefully to the
/// window start when the window is empty or inverted.
fn draw_instant(rng: &mut SimRng, window: (SimTime, SimTime)) -> SimTime {
    let (lo, hi) = (window.0.as_nanos(), window.1.as_nanos());
    if hi <= lo {
        return window.0;
    }
    SimTime::from_nanos(lo + rng.next_below(hi - lo))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo_spec() -> FaultSpec {
        FaultSpec {
            num_apps: 4,
            straggler_prob: 0.1,
            straggler_factor: 3.0,
            drift_prob: 0.5,
            drift_range: (0.7, 1.6),
            crash_count: 5,
            crash_window: (SimTime::from_millis(1), SimTime::from_millis(50)),
            dma_stall_count: 3,
            dma_stall_window: (SimTime::ZERO, SimTime::from_millis(40)),
            dma_stall_len: SimDuration::from_millis(2),
            dma_slow_factor: 8.0,
            num_gpus: 6,
            gpu_fail_count: 3,
            gpu_fail_window: (SimTime::from_millis(2), SimTime::from_millis(30)),
            gpu_hang_count: 4,
            gpu_hang_window: (SimTime::from_millis(1), SimTime::from_millis(45)),
            gpu_hang_len: SimDuration::from_millis(5),
        }
    }

    #[test]
    fn same_seed_same_plan() {
        let a = FaultPlan::build(42, &demo_spec());
        let b = FaultPlan::build(42, &demo_spec());
        assert_eq!(a, b);
        // The online straggler stream is identical too.
        let (mut a, mut b) = (a, b);
        for app in 0..4 {
            for _ in 0..256 {
                assert_eq!(a.work_multiplier(app), b.work_multiplier(app));
            }
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = FaultPlan::build(1, &demo_spec());
        let b = FaultPlan::build(2, &demo_spec());
        assert_ne!(a, b);
    }

    #[test]
    fn none_is_none_and_identity() {
        let mut p = FaultPlan::none();
        assert!(p.is_none());
        assert!(p.crashes().is_empty());
        assert!(p.dma_stalls().is_empty());
        assert!(p.gpu_failures().is_empty());
        assert!(p.gpu_hangs().is_empty());
        for app in 0..8 {
            assert_eq!(p.work_multiplier(app), 1.0);
        }
        // An all-off spec expands to a plan that is also "none".
        assert!(FaultPlan::build(7, &FaultSpec::default()).is_none());
    }

    #[test]
    fn schedules_respect_windows_and_order() {
        let spec = demo_spec();
        let plan = FaultPlan::build(9, &spec);
        assert_eq!(plan.crashes().len(), 5);
        for w in plan.crashes().windows(2) {
            assert!(w[0].at <= w[1].at, "crash schedule must be time-sorted");
        }
        for c in plan.crashes() {
            assert!(c.at >= spec.crash_window.0 && c.at < spec.crash_window.1);
            assert!(c.app < spec.num_apps);
        }
        for s in plan.dma_stalls() {
            assert!(s.at >= spec.dma_stall_window.0 && s.at < spec.dma_stall_window.1);
            assert_eq!(s.until, s.at + spec.dma_stall_len);
            assert!(s.factor >= 1.0);
        }
        for w in plan.gpu_failures().windows(2) {
            assert!(w[0].at <= w[1].at, "failure schedule must be time-sorted");
        }
        for f in plan.gpu_failures() {
            assert!(f.at >= spec.gpu_fail_window.0 && f.at < spec.gpu_fail_window.1);
            assert!(f.gpu < spec.num_gpus);
        }
        for h in plan.gpu_hangs() {
            assert!(h.at >= spec.gpu_hang_window.0 && h.at < spec.gpu_hang_window.1);
            assert_eq!(h.until, h.at + spec.gpu_hang_len);
            assert!(h.gpu < spec.num_gpus);
        }
    }

    #[test]
    fn gpu_failures_are_deduped_per_device() {
        let spec = FaultSpec {
            num_gpus: 2,
            gpu_fail_count: 16,
            gpu_fail_window: (SimTime::from_millis(1), SimTime::from_millis(100)),
            ..FaultSpec::default()
        };
        let plan = FaultPlan::build(5, &spec);
        assert!(plan.gpu_failures().len() <= 2, "one death per device");
        let mut gpus: Vec<u32> = plan.gpu_failures().iter().map(|f| f.gpu).collect();
        gpus.sort_unstable();
        gpus.dedup();
        assert_eq!(gpus.len(), plan.gpu_failures().len());
        // Dedup keeps the earliest instant per device: the schedule is
        // still time-sorted and each survivor is the minimum of its draws.
        for w in plan.gpu_failures().windows(2) {
            assert!(w[0].at <= w[1].at);
        }
    }

    #[test]
    fn gpu_faults_do_not_perturb_device_level_streams() {
        // Same seed, same device-level knobs; only the GPU-level knobs
        // differ. Every device-level schedule (drift, crashes, stalls) and
        // the online straggler stream must be byte-identical.
        let device_only = demo_spec();
        let device_only = FaultSpec {
            num_gpus: 0,
            gpu_fail_count: 0,
            gpu_fail_window: (SimTime::ZERO, SimTime::ZERO),
            gpu_hang_count: 0,
            gpu_hang_window: (SimTime::ZERO, SimTime::ZERO),
            gpu_hang_len: SimDuration::ZERO,
            ..device_only
        };
        let mut a = FaultPlan::build(42, &device_only);
        let mut b = FaultPlan::build(42, &demo_spec());
        assert!(!b.gpu_failures().is_empty() || !b.gpu_hangs().is_empty());
        assert_eq!(a.crashes(), b.crashes());
        assert_eq!(a.dma_stalls(), b.dma_stalls());
        for app in 0..4 {
            assert_eq!(a.drift_factor(app), b.drift_factor(app));
        }
        for app in 0..4 {
            for _ in 0..256 {
                assert_eq!(a.work_multiplier(app), b.work_multiplier(app));
            }
        }
    }

    #[test]
    fn drift_only_plan_is_launch_count_insensitive() {
        let spec = FaultSpec {
            num_apps: 2,
            drift_prob: 1.0,
            drift_range: (1.5, 1.5),
            ..FaultSpec::default()
        };
        let mut a = FaultPlan::build(3, &spec);
        let mut b = FaultPlan::build(3, &spec);
        // Draw a different number of multipliers from each; with no
        // straggler probability the streams must stay aligned.
        for _ in 0..10 {
            assert_eq!(a.work_multiplier(0), 1.5);
        }
        for _ in 0..3 {
            assert_eq!(b.work_multiplier(0), 1.5);
        }
        assert_eq!(a, b);
    }

    #[test]
    fn empty_window_degenerates_to_start() {
        let spec = FaultSpec {
            num_apps: 1,
            crash_count: 2,
            crash_window: (SimTime::from_millis(5), SimTime::from_millis(5)),
            ..FaultSpec::default()
        };
        let plan = FaultPlan::build(0, &spec);
        for c in plan.crashes() {
            assert_eq!(c.at, SimTime::from_millis(5));
        }
    }
}
