#![warn(missing_docs)]

//! Deterministic discrete-event simulation primitives.
//!
//! This crate provides the foundation every other crate in the BLESS
//! reproduction builds on:
//!
//! * [`SimTime`] and [`SimDuration`] — nanosecond-resolution simulated time.
//! * [`EventQueue`] — a stable (FIFO-on-tie) priority queue of timed events.
//! * [`rng::SimRng`] — a small, seedable, fully deterministic PRNG so that
//!   every experiment is bit-for-bit reproducible without external crates.
//! * [`fault::FaultPlan`] — a deterministic fault schedule (stragglers,
//!   profile drift, context crashes, DMA stalls) expanded from a seed, so
//!   robustness experiments replay bit-for-bit like everything else.
//! * [`trace::TraceEvent`] / [`trace::TraceSink`] — a zero-cost-when-
//!   disabled structured trace stream of scheduler events in virtual time
//!   (see DESIGN.md §5e), consumed by the trace validator, the derived
//!   counters, and the Perfetto exporter in the upper layers.
//! * [`spsc::ring`] — bounded lock-free single-producer/single-consumer
//!   rings with batched drain and producer watermarks, the ingest handoff
//!   of the serving front-end (DESIGN.md §5l). Allocates only at
//!   construction, never in steady state.
//!
//! The simulator is single-threaded by design: GPU scheduling experiments
//! need deterministic replay far more than they need wall-clock speed, and
//! the fluid-model GPU simulation in `gpu-sim` is cheap enough that entire
//! paper-scale experiments complete in milliseconds of host time.

pub mod event;
pub mod fault;
pub mod rng;
pub mod spsc;
pub mod time;
pub mod trace;
pub mod wheel;

pub use event::EventQueue;
pub use fault::{CrashEvent, DmaStallEvent, FaultPlan, FaultSpec, GpuFailEvent, GpuHangEvent};
pub use rng::SimRng;
pub use time::{SimDuration, SimTime};
pub use trace::{BufferSink, JsonlSink, RingSink, TraceEvent, TraceSink, TraceSquadEntry};
pub use wheel::{DynEventQueue, EventQueueKind, TimingWheelQueue};
