//! A hierarchical timing-wheel event queue.
//!
//! [`TimingWheelQueue`] is a drop-in alternative to the flat four-ary
//! [`EventQueue`] with the *same observable contract*:
//! events pop in `(fire time, insertion order)` order, i.e. earliest time
//! first with FIFO tie-breaking. The heap pays `O(log n)` per operation on
//! the total population `n`; the wheel pays `O(1)` amortized per push and a
//! small bounded cascade per pop, which wins when per-lane queues carry
//! very high event volume with mostly near-future deadlines (the
//! microsecond-scale-scheduling regime).
//!
//! # Structure
//!
//! Eleven levels of 64 slots each. A slot at level `l` spans `64^l`
//! nanoseconds, so eleven levels (66 bits) cover the entire `u64`
//! nanosecond timeline. An event at time `t` is filed at the *lowest*
//! level whose slot, relative to the wheel's cursor, still distinguishes
//! `t` — computed from the highest 6-bit group in which `t` differs from
//! the cursor (`t ^ cursor`), exactly like the Linux kernel timer wheel,
//! but *without* its deadline rounding: BLESS needs exact pop order, so
//! entries cascade to lower levels as the cursor enters their window and
//! are only ever popped from level 0, where a slot holds exactly one
//! nanosecond instant.
//!
//! # Why pop order is exact
//!
//! * **Level-0 slots are mono-time.** Relative to the cursor, a level-0
//!   slot holds entries whose time agrees with the cursor in every higher
//!   6-bit group and equals the slot index in the lowest — a single exact
//!   nanosecond.
//! * **Every slot is ascending-seq.** A slot receives entries from direct
//!   pushes (monotonically increasing `seq`) and from cascades. A cascade
//!   into a slot happens at the pop where the cursor first enters that
//!   slot's parent window — before any direct push can target the slot
//!   (while the cursor is inside a window, pushes into that window file at
//!   a *lower* level). Cascaded batches preserve their source order, which
//!   is ascending-seq by induction. Hence the front of a level-0 slot is
//!   always the globally next `(time, seq)` among that instant's entries.
//! * **Late pushes go to an overdue heap.** A push at a time earlier than
//!   the cursor (the time of the last popped wheel entry) cannot be filed
//!   in the wheel; it goes to a small four-ary heap keyed `(time, seq)`.
//!   Every overdue time is strictly earlier than every wheel time (wheel
//!   times are `>= cursor`), so popping the overdue heap first preserves
//!   the global order.
//! * **The next wheel key is cached eagerly.** Push and pop maintain the
//!   exact `(time, seq)` of the wheel's earliest entry, so
//!   [`peek_time`](TimingWheelQueue::peek_time) needs `&self` only.
//!
//! The equivalence is pinned by property tests driving the wheel and the
//! four-ary heap through identical operation sequences — heavy on
//! same-tick ties and on times straddling slot, cascade, and level
//! boundaries — and asserting identical pops element for element.

use std::collections::VecDeque;

use crate::event::EventQueue;
use crate::time::SimTime;

/// Slots per level (one 6-bit group of the time).
const SLOTS: usize = 64;
/// Bits per level.
const SHIFT: u32 = 6;
/// Levels needed so `64^LEVELS` covers the full `u64` nanosecond range.
const LEVELS: usize = 11;

/// One pending entry: fire time, insertion sequence number, payload.
struct Entry<E> {
    at: u64,
    seq: u64,
    payload: E,
}

/// One wheel level: 64 slots plus an occupancy bitmask (bit `s` set when
/// slot `s` is non-empty) so the next occupied slot is a `trailing_zeros`
/// away.
struct Level<E> {
    slots: Vec<VecDeque<Entry<E>>>,
    occupied: u64,
}

impl<E> Level<E> {
    fn new() -> Self {
        let mut slots = Vec::with_capacity(SLOTS);
        for _ in 0..SLOTS {
            slots.push(VecDeque::new());
        }
        Level { slots, occupied: 0 }
    }
}

/// A hierarchical timing-wheel priority queue of `(SimTime, E)` pairs with
/// FIFO tie-breaking — pop order identical to [`EventQueue`].
pub struct TimingWheelQueue<E> {
    levels: Vec<Level<E>>,
    /// Time of the most recently popped wheel entry. Every wheel entry is
    /// at `>= cursor`; pushes below it are rerouted to `overdue`.
    cursor: u64,
    /// Exact `(time, seq)` of the earliest wheel entry, `None` when the
    /// wheel proper is empty. Maintained eagerly by push/pop.
    wheel_min: Option<(u64, u64)>,
    /// Pushes that arrived for instants earlier than `cursor`. All keys
    /// here are strictly earlier than every wheel key, so this heap always
    /// pops first. Its internal FIFO counter orders same-time entries in
    /// push order, which coincides with global `seq` order.
    overdue: EventQueue<Entry<E>>,
    /// Global insertion counter (FIFO tie-break).
    next_seq: u64,
    /// Total pending entries (wheel + overdue).
    len: usize,
}

impl<E> Default for TimingWheelQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> TimingWheelQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        let mut levels = Vec::with_capacity(LEVELS);
        for _ in 0..LEVELS {
            levels.push(Level::new());
        }
        TimingWheelQueue {
            levels,
            cursor: 0,
            wheel_min: None,
            overdue: EventQueue::new(),
            next_seq: 0,
            len: 0,
        }
    }

    /// The level at which a time `t >= self.cursor` files: the highest
    /// 6-bit group where `t` differs from the cursor (level 0 when equal).
    #[inline]
    fn level_of(&self, t: u64) -> usize {
        let diff = t ^ self.cursor;
        if diff == 0 {
            0
        } else {
            ((63 - diff.leading_zeros()) / SHIFT) as usize
        }
    }

    /// The slot index of time `t` at `level`.
    #[inline]
    fn slot_of(t: u64, level: usize) -> usize {
        ((t >> (SHIFT * level as u32)) & (SLOTS as u64 - 1)) as usize
    }

    /// Files an entry into the wheel (caller guarantees `at >= cursor`)
    /// and updates the cached minimum.
    fn file(&mut self, entry: Entry<E>) {
        let level = self.level_of(entry.at);
        let slot = Self::slot_of(entry.at, level);
        let key = (entry.at, entry.seq);
        let lv = &mut self.levels[level];
        lv.slots[slot].push_back(entry);
        lv.occupied |= 1u64 << slot;
        if self.wheel_min.is_none_or(|m| key < m) {
            self.wheel_min = Some(key);
        }
    }

    /// Schedules `payload` to fire at `at`.
    pub fn push(&mut self, at: SimTime, payload: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        let t = at.as_nanos();
        let entry = Entry {
            at: t,
            seq,
            payload,
        };
        if t < self.cursor {
            // Strictly earlier than every wheel entry: overdue heap.
            self.overdue.push(at, entry);
        } else {
            self.file(entry);
        }
        self.len += 1;
    }

    /// Removes and returns the earliest event, if any.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        // The overdue heap, when non-empty, always holds the global
        // minimum (all its times are strictly below the cursor, and wheel
        // times are at or above it).
        if let Some((at, entry)) = self.overdue.pop() {
            self.len -= 1;
            return Some((at, entry.payload));
        }
        let (t, _) = self.wheel_min?;
        // Advance the cursor to the instant being popped and cascade every
        // slot on its path down, top level first, so all entries at `t`
        // (and its 64-ns window) land in level 0.
        self.cursor = t;
        for level in (1..LEVELS).rev() {
            let slot = Self::slot_of(t, level);
            let lv = &mut self.levels[level];
            if lv.occupied & (1u64 << slot) == 0 {
                continue;
            }
            lv.occupied &= !(1u64 << slot);
            // Drain in stored order: the batch is ascending-seq and lands
            // ahead of any future direct push, preserving slot order.
            while let Some(entry) = self.levels[level].slots[slot].pop_front() {
                debug_assert!(entry.at >= self.cursor);
                let nl = self.level_of(entry.at);
                debug_assert!(nl < level);
                let ns = Self::slot_of(entry.at, nl);
                let nlv = &mut self.levels[nl];
                nlv.slots[ns].push_back(entry);
                nlv.occupied |= 1u64 << ns;
            }
        }
        let slot = Self::slot_of(t, 0);
        let lv = &mut self.levels[0];
        let entry = lv.slots[slot].pop_front()?;
        debug_assert_eq!(entry.at, t);
        if lv.slots[slot].is_empty() {
            lv.occupied &= !(1u64 << slot);
        }
        self.len -= 1;
        self.recompute_wheel_min();
        Some((SimTime::from_nanos(entry.at), entry.payload))
    }

    /// Recomputes the cached `(time, seq)` of the earliest wheel entry by
    /// scanning occupancy masks (and, when the earliest occupant sits at a
    /// higher level, that one slot). Each slot is scanned at most once per
    /// window entry: the following pop cascades it away.
    fn recompute_wheel_min(&mut self) {
        for level in 0..LEVELS {
            let group = Self::slot_of(self.cursor, level);
            // Slots below the cursor's group hold nothing (their windows
            // are in the past); the cursor's own group at levels >= 1 was
            // cascaded away on entry. The mask scan still includes it —
            // its bit is simply never set.
            let candidates = self.levels[level].occupied & (!0u64 << group);
            if candidates == 0 {
                continue;
            }
            let slot = candidates.trailing_zeros() as usize;
            let bucket = &self.levels[level].slots[slot];
            if level == 0 {
                // Mono-time slot: the exact instant is reconstructible
                // from the cursor window, and the front holds the minimum
                // seq.
                let t = (self.cursor & !(SLOTS as u64 - 1)) | slot as u64;
                if let Some(front) = bucket.front() {
                    debug_assert_eq!(front.at, t);
                    self.wheel_min = Some((t, front.seq));
                    return;
                }
            }
            // Higher-level slot: times within the bucket vary, so take the
            // true minimum key.
            let mut best: Option<(u64, u64)> = None;
            for e in bucket {
                let key = (e.at, e.seq);
                if best.is_none_or(|b| key < b) {
                    best = Some(key);
                }
            }
            debug_assert!(best.is_some());
            self.wheel_min = best;
            return;
        }
        self.wheel_min = None;
    }

    /// The firing time of the earliest pending event.
    pub fn peek_time(&self) -> Option<SimTime> {
        // Overdue keys are strictly earlier than wheel keys by invariant.
        self.overdue
            .peek_time()
            .or(self.wheel_min.map(|(t, _)| SimTime::from_nanos(t)))
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Drops all pending events. Keeps the backing capacity of every slot
    /// (and the overdue heap), so a steady-state refill does not allocate.
    pub fn clear(&mut self) {
        for level in &mut self.levels {
            let mut mask = level.occupied;
            while mask != 0 {
                let slot = mask.trailing_zeros() as usize;
                mask &= mask - 1;
                level.slots[slot].clear();
            }
            level.occupied = 0;
        }
        self.overdue.clear();
        self.wheel_min = None;
        self.len = 0;
    }
}

/// Which backing structure an event queue uses.
///
/// Both orderings are identical — earliest `(time, insertion order)` first
/// — so the choice is purely a performance knob, selectable per engine
/// instance.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum EventQueueKind {
    /// The flat four-ary min-heap ([`EventQueue`]): the default, best for
    /// moderate event volume.
    #[default]
    FourAryHeap,
    /// The hierarchical timing wheel ([`TimingWheelQueue`]): best at very
    /// high event volume with near-future deadlines.
    TimingWheel,
}

impl EventQueueKind {
    /// Steady-state queue depth above which the wheel is selected.
    ///
    /// Two measurements bracket the choice. In isolation (the ignored
    /// `print_queue_crossover` harness below: steady depth, near-future
    /// deadlines) the wheel's O(1) push beats the heap's O(log n) sift
    /// at every depth, by ~1.3× at 64 entries up to ~2.4× at 64k. But
    /// end-to-end engine runs at *shallow* depths tell the opposite
    /// story — BENCH_engine.json's `wheel_vs_heap` sits at 0.6–0.9 for
    /// the lane workloads, whose queues hold only tens of entries —
    /// because there queue ops are a sliver of each step and the wheel's
    /// cascade state is pure cache pressure. The threshold therefore
    /// stays conservative: only a queue seeded with thousands of entries
    /// (a fleet GPU replaying a long arrival schedule, where depth makes
    /// queue cost a first-order term) switches to the wheel. The
    /// backends pop in bit-identical order, so a miscalibrated pick
    /// costs only time, never determinism.
    ///
    /// Re-tune note (10× volume pass): the 64-slot/11-level geometry was
    /// revisited at fleet event volumes and kept — 64 slots is what a
    /// single `u64` occupancy mask can index with one `trailing_zeros`,
    /// and a wider fan-out (256 slots, 8 levels) would need a 4-word
    /// mask scan on exactly the hot path the mask exists to shorten.
    pub const WHEEL_DEPTH_THRESHOLD: usize = 4096;

    /// Picks the backend for an engine whose event queue is expected to
    /// hold about `expected` concurrent entries: the four-ary heap below
    /// [`Self::WHEEL_DEPTH_THRESHOLD`], the timing wheel at or above it.
    ///
    /// Depth here means *pending entries at one instant*, not total
    /// events over a run — a fleet GPU replaying a long open-loop arrival
    /// schedule seeds its whole schedule up front, so its arrival count
    /// is the natural estimate.
    pub fn for_depth(expected: usize) -> EventQueueKind {
        if expected >= Self::WHEEL_DEPTH_THRESHOLD {
            EventQueueKind::TimingWheel
        } else {
            EventQueueKind::FourAryHeap
        }
    }
}

/// An event queue whose backing structure is chosen at construction:
/// either the four-ary heap or the timing wheel, behind one API.
///
/// The two variants produce bit-identical pop orders, so engines can
/// switch between them without perturbing simulation results.
pub enum DynEventQueue<E> {
    /// Four-ary heap backend.
    Heap(EventQueue<E>),
    /// Timing-wheel backend.
    Wheel(TimingWheelQueue<E>),
}

impl<E> DynEventQueue<E> {
    /// Creates an empty queue with the given backend.
    pub fn new(kind: EventQueueKind) -> Self {
        match kind {
            EventQueueKind::FourAryHeap => DynEventQueue::Heap(EventQueue::new()),
            EventQueueKind::TimingWheel => DynEventQueue::Wheel(TimingWheelQueue::new()),
        }
    }

    /// The backend this queue was constructed with.
    pub fn kind(&self) -> EventQueueKind {
        match self {
            DynEventQueue::Heap(_) => EventQueueKind::FourAryHeap,
            DynEventQueue::Wheel(_) => EventQueueKind::TimingWheel,
        }
    }

    /// Schedules `payload` to fire at `at`.
    #[inline]
    pub fn push(&mut self, at: SimTime, payload: E) {
        match self {
            DynEventQueue::Heap(q) => q.push(at, payload),
            DynEventQueue::Wheel(q) => q.push(at, payload),
        }
    }

    /// Removes and returns the earliest event, if any.
    #[inline]
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        match self {
            DynEventQueue::Heap(q) => q.pop(),
            DynEventQueue::Wheel(q) => q.pop(),
        }
    }

    /// The firing time of the earliest pending event.
    #[inline]
    pub fn peek_time(&self) -> Option<SimTime> {
        match self {
            DynEventQueue::Heap(q) => q.peek_time(),
            DynEventQueue::Wheel(q) => q.peek_time(),
        }
    }

    /// Number of pending events.
    #[inline]
    pub fn len(&self) -> usize {
        match self {
            DynEventQueue::Heap(q) => q.len(),
            DynEventQueue::Wheel(q) => q.len(),
        }
    }

    /// True if no events are pending.
    #[inline]
    pub fn is_empty(&self) -> bool {
        match self {
            DynEventQueue::Heap(q) => q.is_empty(),
            DynEventQueue::Wheel(q) => q.is_empty(),
        }
    }

    /// Drops all pending events. Keeps backing capacity.
    pub fn clear(&mut self) {
        match self {
            DynEventQueue::Heap(q) => q.clear(),
            DynEventQueue::Wheel(q) => q.clear(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = TimingWheelQueue::new();
        q.push(SimTime::from_nanos(30), "c");
        q.push(SimTime::from_nanos(10), "a");
        q.push(SimTime::from_nanos(20), "b");
        assert_eq!(q.pop(), Some((SimTime::from_nanos(10), "a")));
        assert_eq!(q.pop(), Some((SimTime::from_nanos(20), "b")));
        assert_eq!(q.pop(), Some((SimTime::from_nanos(30), "c")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn same_tick_fifo_ties() {
        let mut q = TimingWheelQueue::new();
        let t = SimTime::from_micros(5);
        for i in 0..100 {
            q.push(t, i);
        }
        for i in 0..100 {
            assert_eq!(q.pop().unwrap().1, i);
        }
    }

    #[test]
    fn cascade_across_level_boundaries() {
        // Times chosen to straddle level-0 (64 ns), level-1 (4096 ns) and
        // level-2 (262144 ns) windows, forcing multi-level cascades.
        let mut q = TimingWheelQueue::new();
        let times = [
            0u64, 1, 63, 64, 65, 127, 128, 4095, 4096, 4097, 262143, 262144, 262145,
        ];
        for (i, &t) in times.iter().enumerate().rev() {
            q.push(SimTime::from_nanos(t), i);
        }
        let mut popped = Vec::new();
        while let Some((t, i)) = q.pop() {
            popped.push((t.as_nanos(), i));
        }
        let mut expect: Vec<(u64, usize)> = times
            .iter()
            .copied()
            .enumerate()
            .map(|(i, t)| (t, i))
            .collect();
        // Pushed in reverse index order; ties impossible (times distinct),
        // so sorted-by-time is the expected order.
        expect.sort_by_key(|&(t, _)| t);
        assert_eq!(popped, expect);
    }

    #[test]
    fn overdue_pushes_pop_before_wheel() {
        let mut q = TimingWheelQueue::new();
        q.push(SimTime::from_nanos(1000), "late");
        q.push(SimTime::from_nanos(500), "mid");
        assert_eq!(q.pop(), Some((SimTime::from_nanos(500), "mid")));
        // The cursor is now 500; these pushes are in the past and must
        // still pop in (time, insertion) order, ahead of the wheel.
        q.push(SimTime::from_nanos(10), "p1");
        q.push(SimTime::from_nanos(10), "p2");
        q.push(SimTime::from_nanos(700), "w");
        assert_eq!(q.pop(), Some((SimTime::from_nanos(10), "p1")));
        assert_eq!(q.pop(), Some((SimTime::from_nanos(10), "p2")));
        assert_eq!(q.pop(), Some((SimTime::from_nanos(700), "w")));
        assert_eq!(q.pop(), Some((SimTime::from_nanos(1000), "late")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn push_at_cursor_time_pops_after_earlier_seq() {
        let mut q = TimingWheelQueue::new();
        q.push(SimTime::from_nanos(42), 0);
        q.push(SimTime::from_nanos(42), 1);
        assert_eq!(q.pop(), Some((SimTime::from_nanos(42), 0)));
        // Same instant as the cursor: files in the wheel, after the
        // remaining same-time entry.
        q.push(SimTime::from_nanos(42), 2);
        assert_eq!(q.pop(), Some((SimTime::from_nanos(42), 1)));
        assert_eq!(q.pop(), Some((SimTime::from_nanos(42), 2)));
    }

    #[test]
    fn clear_keeps_queue_usable() {
        let mut q = TimingWheelQueue::new();
        for i in 0..100u64 {
            q.push(SimTime::from_nanos(i * 97), i);
        }
        q.pop();
        q.push(SimTime::from_nanos(3), 1000); // overdue
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.len(), 0);
        assert_eq!(q.peek_time(), None);
        assert_eq!(q.pop(), None);
        q.push(SimTime::from_nanos(7), 7u64);
        assert_eq!(q.pop(), Some((SimTime::from_nanos(7), 7)));
    }

    #[test]
    fn far_future_times_cover_u64_range() {
        let mut q = TimingWheelQueue::new();
        q.push(SimTime::from_nanos(u64::MAX), "max");
        q.push(SimTime::from_nanos(u64::MAX - 1), "pre");
        q.push(SimTime::from_nanos(1), "soon");
        assert_eq!(q.pop(), Some((SimTime::from_nanos(1), "soon")));
        assert_eq!(q.pop(), Some((SimTime::from_nanos(u64::MAX - 1), "pre")));
        assert_eq!(q.pop(), Some((SimTime::from_nanos(u64::MAX), "max")));
    }

    #[test]
    fn for_depth_switches_at_the_threshold() {
        assert_eq!(EventQueueKind::for_depth(0), EventQueueKind::FourAryHeap);
        assert_eq!(
            EventQueueKind::for_depth(EventQueueKind::WHEEL_DEPTH_THRESHOLD - 1),
            EventQueueKind::FourAryHeap
        );
        assert_eq!(
            EventQueueKind::for_depth(EventQueueKind::WHEEL_DEPTH_THRESHOLD),
            EventQueueKind::TimingWheel
        );
    }

    /// Calibration harness for [`EventQueueKind::WHEEL_DEPTH_THRESHOLD`]:
    /// holds each backend at a steady depth and measures push+pop pairs
    /// with near-future deadlines (the engine's regime). Run with
    /// `cargo test -p sim-core --release -- --ignored print_queue_crossover --nocapture`.
    #[test]
    #[ignore]
    fn print_queue_crossover() {
        fn measure(depth: usize, wheel: bool) -> f64 {
            let ops = 2_000_000usize;
            let mut rng_state = 0x5EED_u64;
            let mut rng = move || {
                rng_state ^= rng_state << 13;
                rng_state ^= rng_state >> 7;
                rng_state ^= rng_state << 17;
                rng_state
            };
            let mut heap = EventQueue::new();
            let mut wq = TimingWheelQueue::new();
            let mut now = 0u64;
            for _ in 0..depth {
                let t = now + rng() % 1_000_000;
                if wheel {
                    wq.push(SimTime::from_nanos(t), 0u64);
                } else {
                    heap.push(SimTime::from_nanos(t), 0u64);
                }
            }
            let start = std::time::Instant::now();
            for _ in 0..ops {
                let popped = if wheel { wq.pop() } else { heap.pop() };
                if let Some((t, _)) = popped {
                    now = t.as_nanos();
                }
                let t = now + 1 + rng() % 1_000_000;
                if wheel {
                    wq.push(SimTime::from_nanos(t), 0u64);
                } else {
                    heap.push(SimTime::from_nanos(t), 0u64);
                }
            }
            start.elapsed().as_nanos() as f64 / ops as f64
        }
        println!("depth  heap_ns/op  wheel_ns/op");
        for depth in [64, 256, 1024, 2048, 4096, 8192, 16384, 65536] {
            let h = measure(depth, false);
            let w = measure(depth, true);
            println!("{depth:>6}  {h:>9.1}  {w:>10.1}");
        }
    }

    #[test]
    fn dyn_queue_dispatches_both_kinds() {
        for kind in [EventQueueKind::FourAryHeap, EventQueueKind::TimingWheel] {
            let mut q = DynEventQueue::new(kind);
            assert_eq!(q.kind(), kind);
            assert!(q.is_empty());
            q.push(SimTime::from_nanos(2), "b");
            q.push(SimTime::from_nanos(1), "a");
            assert_eq!(q.len(), 2);
            assert_eq!(q.peek_time(), Some(SimTime::from_nanos(1)));
            assert_eq!(q.pop(), Some((SimTime::from_nanos(1), "a")));
            q.clear();
            assert!(q.is_empty());
        }
    }

    /// Times that straddle slot, cascade, and level boundaries: exact
    /// powers of the 64-slot fan-out plus small offsets, plus a far-future
    /// band, plus a dense tie band near zero (the vendored proptest shim
    /// has no `prop_oneof!`, so this is a hand-rolled union strategy).
    struct BoundaryTime;

    impl Strategy for BoundaryTime {
        type Value = u64;
        fn generate(&self, rng: &mut proptest::test_runner::TestRng) -> u64 {
            const BANDS: [(u64, u64); 6] = [
                (0, 16),               // dense ties
                (60, 10),              // level-0/1 boundary
                (4_090, 12),           // level-1/2 boundary
                (262_140, 10),         // level-2/3 boundary
                ((1u64 << 24) - 4, 8), // deep-level boundary
                (1u64 << 40, 8),       // far future
            ];
            let (base, span) = BANDS[(rng.next_u64() % BANDS.len() as u64) as usize];
            base + rng.next_u64() % span
        }
    }

    fn boundary_time() -> impl Strategy<Value = u64> {
        BoundaryTime
    }

    proptest! {
        /// Differential twin (satellite: queue equivalence): for any
        /// interleaving of pushes and pops with tie-heavy times, the wheel
        /// reproduces the four-ary heap's pops, peeks, and final drain
        /// element for element.
        #[test]
        fn prop_matches_heap_on_tie_heavy_schedules(
            ops in proptest::collection::vec((any::<bool>(), 0u64..16), 1..400),
        ) {
            let mut wheel = TimingWheelQueue::new();
            let mut heap = EventQueue::new();
            let mut payload = 0u64;
            for (is_push, t) in ops {
                if is_push {
                    wheel.push(SimTime::from_nanos(t), payload);
                    heap.push(SimTime::from_nanos(t), payload);
                    payload += 1;
                } else {
                    prop_assert_eq!(wheel.peek_time(), heap.peek_time());
                    prop_assert_eq!(wheel.pop(), heap.pop());
                }
            }
            loop {
                let (a, b) = (wheel.pop(), heap.pop());
                prop_assert_eq!(a, b);
                if a.is_none() {
                    break;
                }
            }
        }

        /// Same twin over boundary-straddling times: slot rollover, multi-
        /// level cascades, far-future entries, and overdue pushes (a pop
        /// can advance the cursor past a later push's time).
        #[test]
        fn prop_matches_heap_on_cascade_boundaries(
            ops in proptest::collection::vec(
                (any::<bool>(), boundary_time()), 1..400),
        ) {
            let mut wheel = TimingWheelQueue::new();
            let mut heap = EventQueue::new();
            let mut payload = 0u64;
            for (is_push, t) in ops {
                if is_push {
                    wheel.push(SimTime::from_nanos(t), payload);
                    heap.push(SimTime::from_nanos(t), payload);
                    payload += 1;
                } else {
                    prop_assert_eq!(wheel.peek_time(), heap.peek_time());
                    prop_assert_eq!(wheel.pop(), heap.pop());
                }
            }
            loop {
                let (a, b) = (wheel.pop(), heap.pop());
                prop_assert_eq!(a, b);
                if a.is_none() {
                    break;
                }
            }
        }

        /// Pop order is non-decreasing in time with FIFO ties, regardless
        /// of schedule shape.
        #[test]
        fn prop_stable_time_order(
            times in proptest::collection::vec(boundary_time(), 1..200),
        ) {
            let mut q = TimingWheelQueue::new();
            for (i, &t) in times.iter().enumerate() {
                q.push(SimTime::from_nanos(t), i);
            }
            let mut last: Option<(SimTime, usize)> = None;
            while let Some((t, idx)) = q.pop() {
                if let Some((lt, lidx)) = last {
                    prop_assert!(t >= lt);
                    if t == lt {
                        prop_assert!(idx > lidx);
                    }
                }
                last = Some((t, idx));
            }
        }
    }
}
