//! A small deterministic PRNG for workload generation.
//!
//! The simulator must replay bit-for-bit across runs and platforms, so we
//! carry our own generator instead of depending on external crates whose
//! stream may change between versions. The core is `xoshiro256**` seeded
//! via SplitMix64 — the standard, well-tested construction.

/// Deterministic pseudo-random number generator (xoshiro256\*\*).
///
/// Equality compares generator state: two generators are equal iff they
/// will produce identical streams from here on.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SimRng {
    s: [u64; 4],
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E3779B97F4A7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

impl SimRng {
    /// Creates a generator from a 64-bit seed.
    pub fn new(seed: u64) -> Self {
        let mut sm = seed;
        let mut s = [0u64; 4];
        for slot in &mut s {
            *slot = splitmix64(&mut sm);
        }
        // xoshiro requires a nonzero state; splitmix64 of any seed gives one
        // with overwhelming probability, but guard against the pathological
        // all-zero case anyway.
        if s == [0, 0, 0, 0] {
            s[0] = 0x9E3779B97F4A7C15;
        }
        SimRng { s }
    }

    /// Derives an independent child generator; useful for giving each
    /// application or trace its own stream while keeping one master seed.
    pub fn fork(&mut self, label: u64) -> SimRng {
        let seed = self.next_u64() ^ label.wrapping_mul(0xA24BAED4963EE407);
        SimRng::new(seed)
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform float in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        // 53 high bits -> uniform double in [0,1).
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform float in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    pub fn uniform(&mut self, lo: f64, hi: f64) -> f64 {
        assert!(lo <= hi, "uniform: empty range");
        lo + (hi - lo) * self.next_f64()
    }

    /// Uniform integer in `[0, n)` using Lemire's unbiased method.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn next_below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "next_below: n must be positive");
        // Rejection-free for most draws; loop handles the biased region.
        loop {
            let x = self.next_u64();
            let m = (x as u128).wrapping_mul(n as u128);
            let lo = m as u64;
            if lo >= n || lo >= n.wrapping_neg() % n {
                return (m >> 64) as u64;
            }
        }
    }

    /// Uniform integer in `[lo, hi]` inclusive.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    pub fn range_inclusive(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo <= hi, "range_inclusive: empty range");
        lo + self.next_below(hi - lo + 1)
    }

    /// Samples an exponential variate with the given mean.
    ///
    /// Used for Poisson arrival processes in the trace generators.
    pub fn exponential(&mut self, mean: f64) -> f64 {
        debug_assert!(mean > 0.0);
        // Avoid ln(0) by nudging the uniform sample away from zero.
        let u = self.next_f64().max(1e-12);
        -mean * u.ln()
    }

    /// Samples a log-normal-ish heavy-tailed variate with the given median
    /// and spread (sigma of the underlying normal).
    pub fn lognormal(&mut self, median: f64, sigma: f64) -> f64 {
        median * (sigma * self.standard_normal()).exp()
    }

    /// Samples a standard normal variate (Box–Muller).
    pub fn standard_normal(&mut self) -> f64 {
        let u1 = self.next_f64().max(1e-12);
        let u2 = self.next_f64();
        (-2.0 * u1.ln()).sqrt() * (2.0 * core::f64::consts::PI * u2).cos()
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        self.next_f64() < p.clamp(0.0, 1.0)
    }

    /// Picks a uniformly random element of `items`.
    ///
    /// # Panics
    ///
    /// Panics if `items` is empty.
    pub fn choose<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        assert!(!items.is_empty(), "choose: empty slice");
        &items[self.next_below(items.len() as u64) as usize]
    }

    /// Fisher–Yates shuffles `items` in place.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.next_below(i as u64 + 1) as usize;
            items.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::new(42);
        let mut b = SimRng::new(42);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SimRng::new(1);
        let mut b = SimRng::new(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4, "streams should be essentially uncorrelated");
    }

    #[test]
    fn fork_produces_independent_streams() {
        let mut root = SimRng::new(7);
        let mut c1 = root.fork(0);
        let mut c2 = root.fork(1);
        let same = (0..64).filter(|_| c1.next_u64() == c2.next_u64()).count();
        assert!(same < 4);
    }

    #[test]
    fn uniform_mean_is_half() {
        let mut rng = SimRng::new(9);
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| rng.next_f64()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean = {mean}");
    }

    #[test]
    fn exponential_mean_matches() {
        let mut rng = SimRng::new(11);
        let n = 50_000;
        let mean: f64 = (0..n).map(|_| rng.exponential(3.0)).sum::<f64>() / n as f64;
        assert!((mean - 3.0).abs() < 0.1, "mean = {mean}");
    }

    #[test]
    fn standard_normal_moments() {
        let mut rng = SimRng::new(13);
        let n = 50_000;
        let xs: Vec<f64> = (0..n).map(|_| rng.standard_normal()).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.03, "mean = {mean}");
        assert!((var - 1.0).abs() < 0.05, "var = {var}");
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = SimRng::new(5);
        let mut v: Vec<u32> = (0..100).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(
            v,
            (0..100).collect::<Vec<_>>(),
            "100 items staying put is ~impossible"
        );
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn uniform_panics_on_inverted_range() {
        SimRng::new(0).uniform(2.0, 1.0);
    }

    proptest! {
        #[test]
        fn prop_next_below_in_range(seed: u64, n in 1u64..10_000) {
            let mut rng = SimRng::new(seed);
            for _ in 0..32 {
                prop_assert!(rng.next_below(n) < n);
            }
        }

        #[test]
        fn prop_range_inclusive_in_bounds(seed: u64, lo in 0u64..1000, span in 0u64..1000) {
            let mut rng = SimRng::new(seed);
            let hi = lo + span;
            for _ in 0..16 {
                let x = rng.range_inclusive(lo, hi);
                prop_assert!(x >= lo && x <= hi);
            }
        }

        #[test]
        fn prop_f64_in_unit_interval(seed: u64) {
            let mut rng = SimRng::new(seed);
            for _ in 0..64 {
                let x = rng.next_f64();
                prop_assert!((0.0..1.0).contains(&x));
            }
        }
    }
}
