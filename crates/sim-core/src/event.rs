//! A stable timed event queue.
//!
//! [`EventQueue`] orders events by their firing time; events scheduled for
//! the same instant pop in insertion (FIFO) order. Stability matters for
//! determinism: GPU schedulers frequently enqueue several events for the
//! same nanosecond (e.g. a squad's kernels all arriving after the same
//! launch delay) and the pop order must not depend on heap internals.

use core::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::time::SimTime;

/// One pending entry: fire time, insertion sequence number, payload.
struct Entry<E> {
    at: SimTime,
    seq: u64,
    payload: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // `BinaryHeap` is a max-heap; invert so the earliest (and, on ties,
        // the first-inserted) entry is at the top.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// A priority queue of `(SimTime, E)` pairs with FIFO tie-breaking.
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    next_seq: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
        }
    }

    /// Schedules `payload` to fire at `at`.
    pub fn push(&mut self, at: SimTime, payload: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry { at, seq, payload });
    }

    /// Removes and returns the earliest event, if any.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.heap.pop().map(|e| (e.at, e.payload))
    }

    /// The firing time of the earliest pending event.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.at)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Drops all pending events.
    pub fn clear(&mut self) {
        self.heap.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_nanos(30), "c");
        q.push(SimTime::from_nanos(10), "a");
        q.push(SimTime::from_nanos(20), "b");
        assert_eq!(q.pop(), Some((SimTime::from_nanos(10), "a")));
        assert_eq!(q.pop(), Some((SimTime::from_nanos(20), "b")));
        assert_eq!(q.pop(), Some((SimTime::from_nanos(30), "c")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn ties_pop_in_insertion_order() {
        let mut q = EventQueue::new();
        let t = SimTime::from_micros(5);
        for i in 0..100 {
            q.push(t, i);
        }
        for i in 0..100 {
            assert_eq!(q.pop().unwrap().1, i);
        }
    }

    #[test]
    fn peek_does_not_consume() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_nanos(7), ());
        assert_eq!(q.peek_time(), Some(SimTime::from_nanos(7)));
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
    }

    #[test]
    fn interleaved_push_pop_preserves_order() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_nanos(5), 5);
        q.push(SimTime::from_nanos(1), 1);
        assert_eq!(q.pop().unwrap().1, 1);
        q.push(SimTime::from_nanos(2), 2);
        q.push(SimTime::from_nanos(9), 9);
        assert_eq!(q.pop().unwrap().1, 2);
        assert_eq!(q.pop().unwrap().1, 5);
        assert_eq!(q.pop().unwrap().1, 9);
    }

    proptest! {
        /// Popping the entire queue yields a non-decreasing time sequence,
        /// and equal-time events keep their relative insertion order.
        #[test]
        fn prop_stable_time_order(times in proptest::collection::vec(0u64..1_000, 1..200)) {
            let mut q = EventQueue::new();
            for (i, &t) in times.iter().enumerate() {
                q.push(SimTime::from_nanos(t), i);
            }
            let mut last: Option<(SimTime, usize)> = None;
            while let Some((t, idx)) = q.pop() {
                if let Some((lt, lidx)) = last {
                    prop_assert!(t >= lt);
                    if t == lt {
                        prop_assert!(idx > lidx);
                    }
                }
                last = Some((t, idx));
            }
        }
    }
}
