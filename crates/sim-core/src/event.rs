//! A stable timed event queue.
//!
//! [`EventQueue`] orders events by their firing time; events scheduled for
//! the same instant pop in insertion (FIFO) order. Stability matters for
//! determinism: GPU schedulers frequently enqueue several events for the
//! same nanosecond (e.g. a squad's kernels all arriving after the same
//! launch delay) and the pop order must not depend on heap internals.
//!
//! The queue is a flat four-ary min-heap over `(at, seq)` keys. Compared
//! to `std::collections::BinaryHeap` (binary, max-heap with inverted
//! `Ord`), the wider fan-out halves the tree depth, sift-down touches one
//! contiguous cache line of children per level, and the backing `Vec`
//! never shrinks — so a queue that has reached its steady-state high-water
//! mark pushes and pops without allocating. The original `BinaryHeap`
//! wrapper is retained (test-only) as `legacy::LegacyEventQueue`, and a
//! differential test drives both through random interleaved operation
//! sequences to pin the pop order bit-for-bit.

use crate::time::SimTime;

/// Children per node. Four keeps the tree shallow (depth log4 n) while a
/// node's children stay adjacent in memory.
const ARITY: usize = 4;

/// One pending entry: fire time, insertion sequence number, payload.
struct Entry<E> {
    at: SimTime,
    seq: u64,
    payload: E,
}

impl<E> Entry<E> {
    /// The heap key: earliest time first; FIFO (insertion order) on ties.
    #[inline]
    fn key(&self) -> (SimTime, u64) {
        (self.at, self.seq)
    }
}

/// A priority queue of `(SimTime, E)` pairs with FIFO tie-breaking.
pub struct EventQueue<E> {
    /// Flat four-ary min-heap: `heap[0]` is the earliest entry; the
    /// children of node `i` are nodes `4i + 1 ..= 4i + 4`.
    heap: Vec<Entry<E>>,
    next_seq: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: Vec::new(),
            next_seq: 0,
        }
    }

    /// Schedules `payload` to fire at `at`.
    pub fn push(&mut self, at: SimTime, payload: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry { at, seq, payload });
        self.sift_up(self.heap.len() - 1);
    }

    /// Removes and returns the earliest event, if any.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let last = self.heap.len().checked_sub(1)?;
        self.heap.swap(0, last);
        let e = self.heap.pop().map(|e| (e.at, e.payload));
        if !self.heap.is_empty() {
            self.sift_down(0);
        }
        e
    }

    /// The firing time of the earliest pending event.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.first().map(|e| e.at)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Drops all pending events. Keeps the backing capacity.
    pub fn clear(&mut self) {
        self.heap.clear();
    }

    /// Moves `heap[i]` toward the root until its parent's key is smaller.
    fn sift_up(&mut self, mut i: usize) {
        while i > 0 {
            let parent = (i - 1) / ARITY;
            if self.heap[parent].key() <= self.heap[i].key() {
                break;
            }
            self.heap.swap(parent, i);
            i = parent;
        }
    }

    /// Moves `heap[i]` toward the leaves, swapping with its smallest
    /// child while that child's key is smaller.
    fn sift_down(&mut self, mut i: usize) {
        let len = self.heap.len();
        loop {
            let first_child = ARITY * i + 1;
            if first_child >= len {
                break;
            }
            let mut best = first_child;
            let end = (first_child + ARITY).min(len);
            for c in first_child + 1..end {
                if self.heap[c].key() < self.heap[best].key() {
                    best = c;
                }
            }
            if self.heap[i].key() <= self.heap[best].key() {
                break;
            }
            self.heap.swap(i, best);
            i = best;
        }
    }
}

/// The pre-PR-5 `BinaryHeap`-backed implementation, kept as a differential
/// twin: the four-ary queue above must reproduce its pop order exactly for
/// any operation sequence. Compiled for tests only.
#[cfg(test)]
pub mod legacy {
    use core::cmp::Ordering;
    use std::collections::BinaryHeap;

    use crate::time::SimTime;

    struct Entry<E> {
        at: SimTime,
        seq: u64,
        payload: E,
    }

    impl<E> PartialEq for Entry<E> {
        fn eq(&self, other: &Self) -> bool {
            self.at == other.at && self.seq == other.seq
        }
    }
    impl<E> Eq for Entry<E> {}

    impl<E> Ord for Entry<E> {
        fn cmp(&self, other: &Self) -> Ordering {
            // `BinaryHeap` is a max-heap; invert so the earliest (and, on
            // ties, the first-inserted) entry is at the top.
            other
                .at
                .cmp(&self.at)
                .then_with(|| other.seq.cmp(&self.seq))
        }
    }
    impl<E> PartialOrd for Entry<E> {
        fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
            Some(self.cmp(other))
        }
    }

    /// The old queue: a max-`BinaryHeap` of inverted-`Ord` entries.
    pub struct LegacyEventQueue<E> {
        heap: BinaryHeap<Entry<E>>,
        next_seq: u64,
    }

    impl<E> Default for LegacyEventQueue<E> {
        fn default() -> Self {
            Self::new()
        }
    }

    impl<E> LegacyEventQueue<E> {
        /// Creates an empty queue.
        pub fn new() -> Self {
            LegacyEventQueue {
                heap: BinaryHeap::new(),
                next_seq: 0,
            }
        }

        /// Schedules `payload` to fire at `at`.
        pub fn push(&mut self, at: SimTime, payload: E) {
            let seq = self.next_seq;
            self.next_seq += 1;
            self.heap.push(Entry { at, seq, payload });
        }

        /// Removes and returns the earliest event, if any.
        pub fn pop(&mut self) -> Option<(SimTime, E)> {
            self.heap.pop().map(|e| (e.at, e.payload))
        }

        /// The firing time of the earliest pending event.
        pub fn peek_time(&self) -> Option<SimTime> {
            self.heap.peek().map(|e| e.at)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_nanos(30), "c");
        q.push(SimTime::from_nanos(10), "a");
        q.push(SimTime::from_nanos(20), "b");
        assert_eq!(q.pop(), Some((SimTime::from_nanos(10), "a")));
        assert_eq!(q.pop(), Some((SimTime::from_nanos(20), "b")));
        assert_eq!(q.pop(), Some((SimTime::from_nanos(30), "c")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn ties_pop_in_insertion_order() {
        let mut q = EventQueue::new();
        let t = SimTime::from_micros(5);
        for i in 0..100 {
            q.push(t, i);
        }
        for i in 0..100 {
            assert_eq!(q.pop().unwrap().1, i);
        }
    }

    #[test]
    fn peek_does_not_consume() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_nanos(7), ());
        assert_eq!(q.peek_time(), Some(SimTime::from_nanos(7)));
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
    }

    #[test]
    fn interleaved_push_pop_preserves_order() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_nanos(5), 5);
        q.push(SimTime::from_nanos(1), 1);
        assert_eq!(q.pop().unwrap().1, 1);
        q.push(SimTime::from_nanos(2), 2);
        q.push(SimTime::from_nanos(9), 9);
        assert_eq!(q.pop().unwrap().1, 2);
        assert_eq!(q.pop().unwrap().1, 5);
        assert_eq!(q.pop().unwrap().1, 9);
    }

    #[test]
    fn capacity_is_reused_across_refills() {
        let mut q = EventQueue::new();
        for i in 0..1024u64 {
            q.push(SimTime::from_nanos(i % 7), i);
        }
        let cap = q.heap.capacity();
        while q.pop().is_some() {}
        for i in 0..1024u64 {
            q.push(SimTime::from_nanos(i % 11), i);
        }
        assert_eq!(q.heap.capacity(), cap, "steady-state refill reallocated");
    }

    proptest! {
        /// Popping the entire queue yields a non-decreasing time sequence,
        /// and equal-time events keep their relative insertion order.
        #[test]
        fn prop_stable_time_order(times in proptest::collection::vec(0u64..1_000, 1..200)) {
            let mut q = EventQueue::new();
            for (i, &t) in times.iter().enumerate() {
                q.push(SimTime::from_nanos(t), i);
            }
            let mut last: Option<(SimTime, usize)> = None;
            while let Some((t, idx)) = q.pop() {
                if let Some((lt, lidx)) = last {
                    prop_assert!(t >= lt);
                    if t == lt {
                        prop_assert!(idx > lidx);
                    }
                }
                last = Some((t, idx));
            }
        }

        /// Differential twin: for any interleaving of pushes and pops
        /// (heavy on same-nanosecond ties), the four-ary heap and the old
        /// `BinaryHeap` implementation produce identical results — same
        /// pops, same peeks, same final drain, element for element.
        #[test]
        fn prop_matches_legacy_binary_heap(
            ops in proptest::collection::vec(
                // (is_push, time) — a small time range forces many ties.
                (any::<bool>(), 0u64..16), 1..400),
        ) {
            let mut new_q = EventQueue::new();
            let mut old_q = legacy::LegacyEventQueue::new();
            let mut payload = 0u64;
            for (is_push, t) in ops {
                if is_push {
                    new_q.push(SimTime::from_nanos(t), payload);
                    old_q.push(SimTime::from_nanos(t), payload);
                    payload += 1;
                } else {
                    prop_assert_eq!(new_q.peek_time(), old_q.peek_time());
                    prop_assert_eq!(new_q.pop(), old_q.pop());
                }
            }
            loop {
                let (a, b) = (new_q.pop(), old_q.pop());
                prop_assert_eq!(a, b);
                if a.is_none() {
                    break;
                }
            }
        }
    }
}
